#!/usr/bin/env python3
"""Prometheus exposition-format lint for the telemetry exporter.

Usage:
    check_metrics_format.py METRICS.txt

Validates the text `examples/telemetry_demo --prometheus` (or any scrape
of obs::PrometheusText) emits:

  * every sample line parses as  name{labels} value  with a legal metric
    name ([a-zA-Z_:][a-zA-Z0-9_:]*) and legal label names
    ([a-zA-Z_][a-zA-Z0-9_]*),
  * every family has a # TYPE line (counter|gauge|histogram) before its
    first sample, and at most one per family,
  * no duplicate series (same name + label set appears twice),
  * counters end in _total,
  * histograms are well-formed: _bucket le values parse and strictly
    increase, cumulative bucket counts never decrease, the last bucket is
    le="+Inf" and equals _count, and _sum/_count are present.

Exit codes: 0 ok, 1 malformed, 2 usage/IO error.
"""

import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(name, types):
    """The TYPE-declared family a sample belongs to: histogram samples use
    suffixed names, everything else is its own family."""
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return name


def parse_labels(block, errors, line_no):
    labels = []
    if not block:
        return labels
    inner = block[1:-1]
    consumed = 0
    for match in LABEL_PAIR_RE.finditer(inner):
        labels.append((match.group(1), match.group(2)))
        consumed = match.end()
        if consumed < len(inner) and inner[consumed] == ",":
            consumed += 1
    leftover = inner[consumed:].strip()
    if leftover:
        errors.append(f"line {line_no}: unparseable label block remnant "
                      f"'{leftover}' in {block!r}")
    for name, _ in labels:
        if not LABEL_NAME_RE.match(name):
            errors.append(f"line {line_no}: bad label name '{name}'")
    return labels


def main(argv):
    if len(argv) != 2:
        print(__doc__)
        return 2
    try:
        with open(argv[1], "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        print(f"cannot read {argv[1]}: {error}")
        return 2

    errors = []
    types = {}       # family -> declared type
    seen_series = {}  # (name, sorted labels) -> first line number
    samples = []     # (line_no, name, labels-list, value-string)

    for line_no, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4:
                errors.append(f"line {line_no}: malformed TYPE line: {line}")
                continue
            _, _, family, kind = parts
            if kind not in ("counter", "gauge", "histogram"):
                errors.append(f"line {line_no}: unknown type '{kind}' "
                              f"for {family}")
            if family in types:
                errors.append(f"line {line_no}: duplicate TYPE for {family}")
            types[family] = kind
            continue
        if line.startswith("#"):
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {line_no}: unparseable sample: {line}")
            continue
        name, label_block, value = match.groups()
        if not METRIC_NAME_RE.match(name):
            errors.append(f"line {line_no}: bad metric name '{name}'")
        labels = parse_labels(label_block, errors, line_no)
        try:
            float(value)
        except ValueError:
            errors.append(f"line {line_no}: non-numeric value '{value}' "
                          f"for {name}")
        key = (name, tuple(sorted(labels)))
        if key in seen_series:
            errors.append(f"line {line_no}: duplicate series {name}"
                          f"{dict(labels)} (first at line "
                          f"{seen_series[key]})")
        else:
            seen_series[key] = line_no
        samples.append((line_no, name, labels, value))

    # Every sample's family must have a TYPE declaration.
    for line_no, name, labels, _ in samples:
        family = family_of(name, types)
        if family not in types:
            errors.append(f"line {line_no}: sample {name} has no TYPE line")

    # Counters end in _total.
    for family, kind in types.items():
        if kind == "counter" and not family.endswith("_total"):
            errors.append(f"counter family '{family}' does not end in "
                          f"_total")

    # Histogram well-formedness, per (family, non-le labels) series.
    histograms = {}
    for line_no, name, labels, value in samples:
        family = family_of(name, types)
        if types.get(family) != "histogram":
            continue
        les = [v for k, v in labels if k == "le"]
        base_labels = tuple(sorted((k, v) for k, v in labels if k != "le"))
        entry = histograms.setdefault((family, base_labels),
                                      {"buckets": [], "sum": None,
                                       "count": None})
        if name.endswith("_bucket"):
            if len(les) != 1:
                errors.append(f"line {line_no}: _bucket sample without a "
                              f"single le label")
                continue
            entry["buckets"].append((line_no, les[0], float(value)))
        elif name.endswith("_sum"):
            entry["sum"] = float(value)
        elif name.endswith("_count"):
            entry["count"] = float(value)

    for (family, base_labels), entry in histograms.items():
        tag = f"{family}{dict(base_labels)}"
        buckets = entry["buckets"]
        if not buckets:
            errors.append(f"{tag}: histogram without _bucket samples")
            continue
        if entry["sum"] is None:
            errors.append(f"{tag}: histogram missing _sum")
        if entry["count"] is None:
            errors.append(f"{tag}: histogram missing _count")
        last_le = None
        last_cumulative = None
        for line_no, le, cumulative in buckets:
            if le == "+Inf":
                bound = float("inf")
            else:
                try:
                    bound = float(le)
                except ValueError:
                    errors.append(f"line {line_no}: unparseable le '{le}'")
                    continue
            if last_le is not None and bound <= last_le:
                errors.append(f"line {line_no}: {tag} le values not "
                              f"strictly increasing ({bound} after "
                              f"{last_le})")
            if last_cumulative is not None and cumulative < last_cumulative:
                errors.append(f"line {line_no}: {tag} cumulative bucket "
                              f"count decreased")
            last_le, last_cumulative = bound, cumulative
        if buckets and buckets[-1][1] != "+Inf":
            errors.append(f"{tag}: last bucket is le=\"{buckets[-1][1]}\", "
                          f"not +Inf")
        elif entry["count"] is not None and buckets[-1][2] != entry["count"]:
            errors.append(f"{tag}: +Inf bucket ({buckets[-1][2]:.0f}) != "
                          f"_count ({entry['count']:.0f})")

    if errors:
        print(f"MALFORMED: {len(errors)} problem(s) in {argv[1]}:")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"ok: {len(samples)} samples, {len(seen_series)} series, "
          f"{len(types)} families, {len(histograms)} histogram series")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
