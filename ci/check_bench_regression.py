#!/usr/bin/env python3
"""Bench regression gate: compare a CI --quick run against the committed
baseline and fail on a large single-thread throughput drop.

Usage:
    check_bench_regression.py QUICK.json BASELINE.json [--min-ratio 0.75]

Both files hold one JSON object per line (the bench binaries' format).
Rows are matched on their identity fields (everything except measured
metrics); only matched rows that

  * are single-thread (threads == 1, and callers == 1 when present), and
  * carry a throughput metric (rows_per_sec or queries_per_sec)

are gated — multi-thread rows depend on the machine's core count and the
committed baselines were measured on a different box, so they are reported
but never gated. The threshold is deliberately loose (default: fail below
0.75x baseline, i.e. a >25% regression) because CI runners and the
baseline machine differ; the gate exists to catch real algorithmic
regressions, not scheduling noise.

The gate also checks baseline coverage: every row *shape* in the baseline
(its descriptive identity — bench/variant/method/priority, size fields
dropped) must appear in the quick run. A bench that silently stops
emitting a variant would otherwise pass forever on the rows it no longer
measures.

Exit codes: 0 ok (or nothing to compare), 1 regression or lost coverage,
2 usage/IO error.
"""

import argparse
import json
import sys

# Measured outputs; every other field is identity. Keep in sync with the
# EmitJson writers in bench/.
METRIC_FIELDS = {
    "rows_per_sec",
    "queries_per_sec",
    "speedup_vs_seed",
    "speedup_vs_full",
    "speedup_vs_dense",
    "speedup_vs_separate",
    # Informational, not measured — but machine-dependent (the SIMD backend
    # the dispatcher picked), so it must not take part in row matching or a
    # baseline recorded on an AVX-512 box would never match an AVX2 runner.
    "backend",
    "seconds",
    "projection_seconds",
    "update_seconds",
    "iterations",
    "final_j",
    "j_rel_diff_vs_full",
    "max_score_diff_vs_full",
    "ranking_matches_full",
    "cold_seconds",
    "warm_seconds",
    "speedup_vs_cold",
    "refreshes",
    "p50_refresh_seconds",
    "p99_refresh_seconds",
    "replayed_records",
    "recover_seconds",
    "time_to_first_query_seconds",
    "replicated_records",
    "catchup_seconds",
    "standby_lag_events",
    "promote_seconds",
    "promotion_to_serving_seconds",
    "p50_us",
    "p99_us",
    "p999_us",
    "completed",
    "shed",
    "deadline_expired",
    "coalesced",
    "overhead_pct",
}

# Metrics the gate checks, in preference order (gate on the first present).
GATED_METRICS = ("rows_per_sec", "queries_per_sec")

# A row's *shape* keeps only the descriptive identity fields — which bench,
# which variant, which algorithm/class — and drops every size/scale field
# (n, d, threads, batch, shards, initial_rows, ...): quick runs shrink
# those freely and runners vary in core count, so coverage is checked per
# variant shape, not per exact configuration. A keep-list, not an
# exclude-list, so benches can grow new size knobs without breaking the
# coverage check.
SHAPE_FIELDS = ("bench", "variant", "method", "priority")


def load_rows(path):
    rows = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, 1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError as error:
                    print(f"{path}:{line_number}: unparseable line: {error}")
                    sys.exit(2)
    except OSError as error:
        print(f"cannot read {path}: {error}")
        sys.exit(2)
    return rows


def identity(row):
    return tuple(sorted((k, v) for k, v in row.items()
                        if k not in METRIC_FIELDS))


def shape(row):
    return tuple((k, row[k]) for k in SHAPE_FIELDS if k in row)


def is_single_thread(row):
    return row.get("threads") == 1 and row.get("callers", 1) == 1


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("quick", help="--quick run output (JSON lines)")
    parser.add_argument("baseline", help="committed BENCH_*.json baseline")
    parser.add_argument("--min-ratio", type=float, default=0.75,
                        help="fail when quick/baseline falls below this "
                             "(default: 0.75, i.e. a >25%% regression)")
    try:
        options = parser.parse_args(argv[1:])
    except SystemExit:
        sys.exit(2)
    min_ratio = options.min_ratio
    quick_path, baseline_path = options.quick, options.baseline

    quick_rows = load_rows(quick_path)
    baseline_rows = load_rows(baseline_path)
    baselines = {}
    for row in baseline_rows:
        baselines[identity(row)] = row

    # Coverage: a baseline shape the quick run no longer emits means a
    # variant was renamed or dropped without refreshing the baseline — the
    # gate would silently stop measuring it.
    quick_shapes = {shape(row) for row in quick_rows}
    missing_shapes = sorted(
        {shape(row) for row in baseline_rows} - quick_shapes)
    if missing_shapes:
        print(f"COVERAGE: {len(missing_shapes)} baseline row shape(s) "
              f"missing from {quick_path}:")
        for missing in missing_shapes:
            print("  " + " ".join(f"{k}={v}" for k, v in missing))
        print("(rename/drop of a bench variant must refresh "
              f"{baseline_path} in the same change)")
        return 1

    failures = []
    compared = 0
    skipped = 0
    for row in quick_rows:
        base = baselines.get(identity(row))
        if base is None or not is_single_thread(row):
            skipped += 1
            continue
        metric = next((m for m in GATED_METRICS
                       if m in row and m in base), None)
        if metric is None or not base[metric]:
            skipped += 1
            continue
        ratio = row[metric] / base[metric]
        compared += 1
        tag = " ".join(f"{k}={v}" for k, v in sorted(row.items())
                       if k not in METRIC_FIELDS)
        verdict = "FAIL" if ratio < min_ratio else "ok"
        print(f"[{verdict}] {tag}: {metric} {row[metric]:.0f} vs "
              f"baseline {base[metric]:.0f} (x{ratio:.2f})")
        if ratio < min_ratio:
            failures.append(tag)

    print(f"compared {compared} single-thread row(s), skipped {skipped} "
          f"(multi-thread / no baseline match), threshold x{min_ratio:.2f}")
    if failures:
        print(f"REGRESSION: {len(failures)} row(s) below x{min_ratio:.2f} "
              f"of the committed baseline:")
        for tag in failures:
            print(f"  {tag}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
