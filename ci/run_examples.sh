#!/usr/bin/env bash
# Builds nothing itself: runs every example binary under the given directory
# (default build/examples) so a bit-rotted example fails CI instead of only
# failing the next human who tries it. Binaries that need arguments get them
# synthesized here; everything else must succeed with none.
set -euo pipefail

dir="${1:-build/examples}"
if [ ! -d "$dir" ]; then
  echo "no such directory: $dir" >&2
  exit 2
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# A small complete CSV for rank_csv: label column + header, three benefit/
# cost attributes, enough distinct rows for a stable fit.
cat > "$tmp/toy.csv" <<'EOF'
name,gdp,life_expectancy,infant_mortality
Alphaland,42000,81.2,3.1
Betaville,28000,77.9,5.4
Gammastan,9000,66.0,31.0
Deltania,54000,82.8,2.5
Epsilonia,15000,71.3,17.2
Zetaburg,33000,79.5,4.8
Etaland,4800,60.1,48.3
Thetopia,21000,74.6,9.9
Iotastan,61000,83.4,2.1
Kappaville,12000,69.0,22.7
EOF

status=0
ran=0
for bin in "$dir"/*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  echo "::group::$name"
  case "$name" in
    rank_csv)
      if ! "$bin" "$tmp/toy.csv" "++-" "$tmp/ranked.csv"; then
        echo "FAILED: $name" >&2
        status=1
      fi
      ;;
    *)
      if ! "$bin"; then
        echo "FAILED: $name" >&2
        status=1
      fi
      ;;
  esac
  echo "::endgroup::"
  ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
  echo "no example binaries found in $dir" >&2
  exit 2
fi
echo "ran $ran example binaries, exit status $status"
exit "$status"
