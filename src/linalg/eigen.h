#ifndef RPC_LINALG_EIGEN_H_
#define RPC_LINALG_EIGEN_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace rpc::linalg {

/// Full eigendecomposition of a symmetric matrix: A = V diag(values) V^T.
/// `values` are sorted in descending order; column j of `vectors` is the
/// eigenvector for values[j].
struct SymmetricEigen {
  Vector values;
  Matrix vectors;
};

/// Cyclic Jacobi eigensolver for symmetric matrices. Robust and exact enough
/// for the small matrices this library needs (the 4x4 Gram matrix
/// (MZ)(MZ)^T of Eq. (27) and d x d covariance matrices).
/// Returns kInvalidArgument for non-square input and kNumericalError when
/// the sweep limit is exceeded (practically unreachable for symmetric input).
Result<SymmetricEigen> JacobiEigenSymmetric(const Matrix& a,
                                            int max_sweeps = 64,
                                            double tol = 1e-14);

/// Caller-owned scratch for repeated Jacobi eigendecompositions of
/// same-sized symmetric matrices. After Bind(n), Compute() performs no heap
/// allocation (every rotation and the final descending sort run in the
/// bound buffers) and produces exactly the JacobiEigenSymmetric eigenpairs
/// — that function is now a thin wrapper over this class. The fit
/// pipeline's Richardson step sizes and pseudo-inverse updates run their
/// per-iteration eigensolves through one of these.
class SymmetricEigenWorkspace {
 public:
  SymmetricEigenWorkspace() = default;

  /// Sizes every buffer for n x n inputs; reallocates only when n grows.
  void Bind(int n);
  bool bound() const { return n_ >= 0; }

  /// Eigendecomposition of `a` (must be n x n as bound) into the workspace;
  /// values()/vectors() stay valid until the next Compute or Bind.
  Status Compute(const Matrix& a, int max_sweeps = 64, double tol = 1e-14);

  /// Eigenvalues in descending order.
  const Vector& values() const { return values_; }
  /// Column j is the eigenvector for values()[j].
  const Matrix& vectors() const { return vectors_; }

 private:
  int n_ = -1;
  Matrix d_;        // working copy being diagonalised
  Matrix v_;        // accumulated rotations
  Matrix vectors_;  // sorted eigenvectors
  Vector values_;   // sorted eigenvalues
  std::vector<int> order_;
};

/// Smallest and largest eigenvalue of a symmetric matrix; convenience used
/// for the Richardson step size gamma = 2 / (lambda_min + lambda_max)
/// (Eq. 28).
struct EigenRange {
  double min = 0.0;
  double max = 0.0;
};
Result<EigenRange> SymmetricEigenRange(const Matrix& a);

/// 2-norm condition number of a symmetric positive semidefinite matrix
/// (lambda_max / lambda_min); returns infinity for singular input.
Result<double> SymmetricConditionNumber(const Matrix& a);

}  // namespace rpc::linalg

#endif  // RPC_LINALG_EIGEN_H_
