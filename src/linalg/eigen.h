#ifndef RPC_LINALG_EIGEN_H_
#define RPC_LINALG_EIGEN_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace rpc::linalg {

/// Full eigendecomposition of a symmetric matrix: A = V diag(values) V^T.
/// `values` are sorted in descending order; column j of `vectors` is the
/// eigenvector for values[j].
struct SymmetricEigen {
  Vector values;
  Matrix vectors;
};

/// Cyclic Jacobi eigensolver for symmetric matrices. Robust and exact enough
/// for the small matrices this library needs (the 4x4 Gram matrix
/// (MZ)(MZ)^T of Eq. (27) and d x d covariance matrices).
/// Returns kInvalidArgument for non-square input and kNumericalError when
/// the sweep limit is exceeded (practically unreachable for symmetric input).
Result<SymmetricEigen> JacobiEigenSymmetric(const Matrix& a,
                                            int max_sweeps = 64,
                                            double tol = 1e-14);

/// Smallest and largest eigenvalue of a symmetric matrix; convenience used
/// for the Richardson step size gamma = 2 / (lambda_min + lambda_max)
/// (Eq. 28).
struct EigenRange {
  double min = 0.0;
  double max = 0.0;
};
Result<EigenRange> SymmetricEigenRange(const Matrix& a);

/// 2-norm condition number of a symmetric positive semidefinite matrix
/// (lambda_max / lambda_min); returns infinity for singular input.
Result<double> SymmetricConditionNumber(const Matrix& a);

}  // namespace rpc::linalg

#endif  // RPC_LINALG_EIGEN_H_
