#ifndef RPC_LINALG_VECTOR_H_
#define RPC_LINALG_VECTOR_H_

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace rpc::linalg {

/// Dense real vector with value semantics. Sized at construction; all
/// arithmetic asserts on dimension agreement (dimension mismatches are
/// programming errors, not runtime conditions, so they are not Status).
class Vector {
 public:
  Vector() = default;
  explicit Vector(int size, double fill = 0.0)
      : data_(static_cast<size_t>(size), fill) {
    assert(size >= 0);
  }
  Vector(std::initializer_list<double> values) : data_(values) {}
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  int size() const { return static_cast<int>(data_.size()); }
  bool empty() const { return data_.empty(); }

  double& operator[](int i) {
    assert(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }
  double operator[](int i) const {
    assert(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double scalar);
  Vector& operator/=(double scalar);

  /// Euclidean norm.
  double Norm() const;
  /// Squared Euclidean norm.
  double SquaredNorm() const;
  /// Largest absolute entry (0 for the empty vector).
  double MaxAbs() const;
  /// Sum of entries.
  double Sum() const;

  /// Element-wise comparisons against another vector of the same size.
  bool AllFinite() const;

  std::string ToString(int digits = 6) const;

 private:
  std::vector<double> data_;
};

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(Vector v, double scalar);
Vector operator*(double scalar, Vector v);
Vector operator/(Vector v, double scalar);

/// Dot product; asserts equal sizes.
double Dot(const Vector& a, const Vector& b);

/// Euclidean distance ||a - b||.
double Distance(const Vector& a, const Vector& b);

/// True when ||a - b||_inf <= tol.
bool ApproxEqual(const Vector& a, const Vector& b, double tol = 1e-12);

}  // namespace rpc::linalg

#endif  // RPC_LINALG_VECTOR_H_
