#ifndef RPC_LINALG_SVD_H_
#define RPC_LINALG_SVD_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace rpc::linalg {

/// Thin singular value decomposition A = U diag(s) V^T with U (m x r),
/// V (n x r), r = min(m, n), singular values sorted descending.
struct Svd {
  Matrix u;
  Vector singular_values;
  Matrix v;
};

/// One-sided Jacobi SVD: numerically robust for the small dense matrices
/// this library handles, independent of the Gram-matrix route used by
/// pinv.h (and cross-checked against it in tests).
Result<Svd> JacobiSvd(const Matrix& a, int max_sweeps = 60,
                      double tol = 1e-13);

/// Moore-Penrose pseudo-inverse through the SVD (singular values below
/// rel_tol * s_max are treated as zero).
Result<Matrix> PseudoInverseViaSvd(const Matrix& a, double rel_tol = 1e-12);

/// Thin Householder QR factorisation A = Q R with Q (m x n,
/// orthonormal columns) and R (n x n upper triangular); requires m >= n.
struct Qr {
  Matrix q;
  Matrix r;
};
Result<Qr> HouseholderQr(const Matrix& a);

/// Minimum-norm least-squares solve of A x = b through the SVD (works for
/// any shape and rank).
Result<Vector> LeastSquares(const Matrix& a, const Vector& b,
                            double rel_tol = 1e-12);

}  // namespace rpc::linalg

#endif  // RPC_LINALG_SVD_H_
