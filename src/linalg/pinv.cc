#include "linalg/pinv.h"

#include <cmath>

#include "linalg/eigen.h"

namespace rpc::linalg {

void SymmetricPinvWorkspace::Bind(int n) { eigen_.Bind(n); }

Status SymmetricPinvWorkspace::Compute(const Matrix& a, Matrix* out,
                                       double rel_tol) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("PseudoInverseSymmetric: not square");
  }
  assert(out != &a);
  const Status eig = eigen_.Compute(a);
  if (!eig.ok()) return eig;
  const int n = a.rows();
  const Vector& values = eigen_.values();
  const Matrix& vectors = eigen_.vectors();
  double max_abs = 0.0;
  for (int i = 0; i < n; ++i) {
    max_abs = std::max(max_abs, std::fabs(values[i]));
  }
  const double cutoff = rel_tol * std::max(max_abs, 1e-300);
  out->Assign(n, n);
  for (int k = 0; k < n; ++k) {
    const double lambda = values[k];
    if (std::fabs(lambda) <= cutoff) continue;
    const double inv = 1.0 / lambda;
    for (int i = 0; i < n; ++i) {
      const double vik = vectors(i, k);
      for (int j = 0; j < n; ++j) {
        (*out)(i, j) += inv * vik * vectors(j, k);
      }
    }
  }
  return Status::Ok();
}

Result<Matrix> PseudoInverseSymmetric(const Matrix& a, double rel_tol) {
  SymmetricPinvWorkspace workspace;
  workspace.Bind(a.rows());
  Matrix out;
  const Status status = workspace.Compute(a, &out, rel_tol);
  if (!status.ok()) return status;
  return out;
}

Result<Matrix> PseudoInverse(const Matrix& b, double rel_tol) {
  if (b.rows() == 0 || b.cols() == 0) {
    return Status::InvalidArgument("PseudoInverse: empty matrix");
  }
  if (b.rows() <= b.cols()) {
    // Wide: B^+ = B^T (B B^T)^+.
    const Matrix gram = TimesTranspose(b, b);  // rows x rows
    RPC_ASSIGN_OR_RETURN(Matrix gram_pinv,
                         PseudoInverseSymmetric(gram, rel_tol));
    return b.Transposed() * gram_pinv;
  }
  // Tall: B^+ = (B^T B)^+ B^T.
  const Matrix gram = TransposeTimes(b, b);  // cols x cols
  RPC_ASSIGN_OR_RETURN(Matrix gram_pinv, PseudoInverseSymmetric(gram, rel_tol));
  return gram_pinv * b.Transposed();
}

}  // namespace rpc::linalg
