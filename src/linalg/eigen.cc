#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

namespace rpc::linalg {

void SymmetricEigenWorkspace::Bind(int n) {
  assert(n >= 0);
  n_ = n;
  d_.Assign(n, n);
  v_.Assign(n, n);
  vectors_.Assign(n, n);
  values_.data().assign(static_cast<size_t>(n), 0.0);
  order_.assign(static_cast<size_t>(n), 0);
}

Status SymmetricEigenWorkspace::Compute(const Matrix& a, int max_sweeps,
                                        double tol) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("JacobiEigenSymmetric: matrix not square");
  }
  assert(bound() && a.rows() == n_);
  const int n = n_;
  d_ = a;
  // Symmetrise defensively; callers sometimes pass numerically asymmetric
  // Gram matrices.
  for (int r = 0; r < n; ++r) {
    for (int c = r + 1; c < n; ++c) {
      const double avg = 0.5 * (d_(r, c) + d_(c, r));
      d_(r, c) = avg;
      d_(c, r) = avg;
    }
  }
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) v_(r, c) = r == c ? 1.0 : 0.0;
  }
  const double scale = std::max(1.0, d_.MaxAbs());
  const double threshold = tol * scale;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int r = 0; r < n; ++r) {
      for (int c = r + 1; c < n; ++c) off += d_(r, c) * d_(r, c);
    }
    if (std::sqrt(off) <= threshold) {
      // Sort eigenpairs descending by eigenvalue.
      std::iota(order_.begin(), order_.end(), 0);
      std::sort(order_.begin(), order_.end(), [&](int x, int y) {
        return d_(x, x) > d_(y, y);
      });
      for (int j = 0; j < n; ++j) {
        const int src = order_[static_cast<size_t>(j)];
        values_[j] = d_(src, src);
        for (int i = 0; i < n; ++i) vectors_(i, j) = v_(i, src);
      }
      return Status::Ok();
    }
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = d_(p, q);
        if (std::fabs(apq) <= threshold * 1e-3) continue;
        const double app = d_(p, p);
        const double aqq = d_(q, q);
        const double theta = 0.5 * (aqq - app) / apq;
        // Stable computation of tan of the rotation angle.
        const double t =
            (theta >= 0.0 ? 1.0 : -1.0) /
            (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int k = 0; k < n; ++k) {
          const double dkp = d_(k, p);
          const double dkq = d_(k, q);
          d_(k, p) = c * dkp - s * dkq;
          d_(k, q) = s * dkp + c * dkq;
        }
        for (int k = 0; k < n; ++k) {
          const double dpk = d_(p, k);
          const double dqk = d_(q, k);
          d_(p, k) = c * dpk - s * dqk;
          d_(q, k) = s * dpk + c * dqk;
        }
        for (int k = 0; k < n; ++k) {
          const double vkp = v_(k, p);
          const double vkq = v_(k, q);
          v_(k, p) = c * vkp - s * vkq;
          v_(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  return Status::NumericalError("JacobiEigenSymmetric: did not converge");
}

Result<SymmetricEigen> JacobiEigenSymmetric(const Matrix& a, int max_sweeps,
                                            double tol) {
  SymmetricEigenWorkspace workspace;
  workspace.Bind(a.rows());
  const Status status = workspace.Compute(a, max_sweeps, tol);
  if (!status.ok()) return status;
  SymmetricEigen out;
  out.values = workspace.values();
  out.vectors = workspace.vectors();
  return out;
}

Result<EigenRange> SymmetricEigenRange(const Matrix& a) {
  RPC_ASSIGN_OR_RETURN(SymmetricEigen eig, JacobiEigenSymmetric(a));
  EigenRange range;
  if (eig.values.size() == 0) return range;
  range.max = eig.values[0];
  range.min = eig.values[eig.values.size() - 1];
  return range;
}

Result<double> SymmetricConditionNumber(const Matrix& a) {
  RPC_ASSIGN_OR_RETURN(EigenRange range, SymmetricEigenRange(a));
  const double lo = std::fabs(range.min);
  const double hi = std::fabs(range.max);
  if (lo == 0.0) return std::numeric_limits<double>::infinity();
  return hi / lo;
}

}  // namespace rpc::linalg
