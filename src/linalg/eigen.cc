#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

namespace rpc::linalg {

Result<SymmetricEigen> JacobiEigenSymmetric(const Matrix& a, int max_sweeps,
                                            double tol) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("JacobiEigenSymmetric: matrix not square");
  }
  const int n = a.rows();
  Matrix d = a;
  // Symmetrise defensively; callers sometimes pass numerically asymmetric
  // Gram matrices.
  for (int r = 0; r < n; ++r) {
    for (int c = r + 1; c < n; ++c) {
      const double avg = 0.5 * (d(r, c) + d(c, r));
      d(r, c) = avg;
      d(c, r) = avg;
    }
  }
  Matrix v = Matrix::Identity(n);
  const double scale = std::max(1.0, d.MaxAbs());
  const double threshold = tol * scale;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int r = 0; r < n; ++r) {
      for (int c = r + 1; c < n; ++c) off += d(r, c) * d(r, c);
    }
    if (std::sqrt(off) <= threshold) {
      SymmetricEigen out;
      out.values = Vector(n);
      for (int i = 0; i < n; ++i) out.values[i] = d(i, i);
      // Sort eigenpairs descending by eigenvalue.
      std::vector<int> order(static_cast<size_t>(n));
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](int x, int y) {
        return out.values[x] > out.values[y];
      });
      Vector sorted_values(n);
      Matrix sorted_vectors(n, n);
      for (int j = 0; j < n; ++j) {
        sorted_values[j] = out.values[order[static_cast<size_t>(j)]];
        sorted_vectors.SetColumn(j, v.Column(order[static_cast<size_t>(j)]));
      }
      out.values = sorted_values;
      out.vectors = sorted_vectors;
      return out;
    }
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::fabs(apq) <= threshold * 1e-3) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = 0.5 * (aqq - app) / apq;
        // Stable computation of tan of the rotation angle.
        const double t =
            (theta >= 0.0 ? 1.0 : -1.0) /
            (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (int k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (int k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  return Status::NumericalError("JacobiEigenSymmetric: did not converge");
}

Result<EigenRange> SymmetricEigenRange(const Matrix& a) {
  RPC_ASSIGN_OR_RETURN(SymmetricEigen eig, JacobiEigenSymmetric(a));
  EigenRange range;
  if (eig.values.size() == 0) return range;
  range.max = eig.values[0];
  range.min = eig.values[eig.values.size() - 1];
  return range;
}

Result<double> SymmetricConditionNumber(const Matrix& a) {
  RPC_ASSIGN_OR_RETURN(EigenRange range, SymmetricEigenRange(a));
  const double lo = std::fabs(range.min);
  const double hi = std::fabs(range.max);
  if (lo == 0.0) return std::numeric_limits<double>::infinity();
  return hi / lo;
}

}  // namespace rpc::linalg
