#ifndef RPC_LINALG_SOLVE_H_
#define RPC_LINALG_SOLVE_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace rpc::linalg {

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Returns kNumericalError when A is (numerically) singular.
Result<Vector> SolveLinearSystem(const Matrix& a, const Vector& b);

/// Solves A X = B column-by-column (A square, B has matching row count).
Result<Matrix> SolveLinearSystem(const Matrix& a, const Matrix& b);

/// Cholesky factor L (lower triangular, A = L L^T) of a symmetric positive
/// definite matrix. Returns kNumericalError when A is not SPD within
/// tolerance.
Result<Matrix> CholeskyFactor(const Matrix& a);

/// Solves A x = b for symmetric positive definite A via Cholesky.
Result<Vector> SolveSpd(const Matrix& a, const Vector& b);

/// Inverse of a square matrix (Gaussian elimination on the identity).
Result<Matrix> Inverse(const Matrix& a);

/// Determinant via LU (partial pivoting); 0 rows -> 1.0.
double Determinant(const Matrix& a);

}  // namespace rpc::linalg

#endif  // RPC_LINALG_SOLVE_H_
