#ifndef RPC_LINALG_SOLVE_H_
#define RPC_LINALG_SOLVE_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace rpc::linalg {

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Returns kNumericalError when A is (numerically) singular.
Result<Vector> SolveLinearSystem(const Matrix& a, const Vector& b);

/// Solves A X = B column-by-column (A square, B has matching row count).
Result<Matrix> SolveLinearSystem(const Matrix& a, const Matrix& b);

/// Cholesky factor L (lower triangular, A = L L^T) of a symmetric positive
/// definite matrix. Returns kNumericalError when A is not SPD within
/// tolerance.
Result<Matrix> CholeskyFactor(const Matrix& a);

/// Caller-buffer variant: writes L into *l (reshaped in place, so a
/// correctly sized workspace matrix makes the call allocation-free). `l`
/// must not alias `a`. Same arithmetic and failure conditions as
/// CholeskyFactor, which is a thin wrapper over this.
Status CholeskyFactorInto(const Matrix& a, Matrix* l);

/// Solves A x = b for symmetric positive definite A via Cholesky.
Result<Vector> SolveSpd(const Matrix& a, const Vector& b);

/// In-place triangular solve against a CholeskyFactor result: on entry *x
/// holds the right-hand side b, on exit the solution of (L L^T) x = b.
/// Performs no heap allocation — the caller-buffer half of SolveSpd, which
/// is now factor-into + this.
Status CholeskySolveInPlace(const Matrix& l, Vector* x);

/// Inverse of a square matrix (Gaussian elimination on the identity).
Result<Matrix> Inverse(const Matrix& a);

/// Determinant via LU (partial pivoting); 0 rows -> 1.0.
double Determinant(const Matrix& a);

}  // namespace rpc::linalg

#endif  // RPC_LINALG_SOLVE_H_
