#include "linalg/solve.h"

#include <cmath>
#include <vector>

namespace rpc::linalg {
namespace {

// LU decomposition with partial pivoting, in place. Returns the permutation
// sign, or 0 if the matrix is singular beyond `tol`.
int LuDecompose(Matrix* a, std::vector<int>* pivots, double tol) {
  const int n = a->rows();
  pivots->resize(static_cast<size_t>(n));
  int sign = 1;
  for (int col = 0; col < n; ++col) {
    int pivot_row = col;
    double pivot_mag = std::fabs((*a)(col, col));
    for (int r = col + 1; r < n; ++r) {
      const double mag = std::fabs((*a)(r, col));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag <= tol) return 0;
    (*pivots)[static_cast<size_t>(col)] = pivot_row;
    if (pivot_row != col) {
      sign = -sign;
      for (int c = 0; c < n; ++c) {
        std::swap((*a)(col, c), (*a)(pivot_row, c));
      }
    }
    const double pivot = (*a)(col, col);
    for (int r = col + 1; r < n; ++r) {
      const double factor = (*a)(r, col) / pivot;
      (*a)(r, col) = factor;
      for (int c = col + 1; c < n; ++c) {
        (*a)(r, c) -= factor * (*a)(col, c);
      }
    }
  }
  return sign;
}

void LuSolveInPlace(const Matrix& lu, const std::vector<int>& pivots,
                    Vector* x) {
  const int n = lu.rows();
  for (int i = 0; i < n; ++i) {
    const int p = pivots[static_cast<size_t>(i)];
    if (p != i) std::swap((*x)[i], (*x)[p]);
  }
  // Forward substitution with unit lower triangle.
  for (int i = 1; i < n; ++i) {
    double sum = (*x)[i];
    for (int j = 0; j < i; ++j) sum -= lu(i, j) * (*x)[j];
    (*x)[i] = sum;
  }
  // Back substitution.
  for (int i = n - 1; i >= 0; --i) {
    double sum = (*x)[i];
    for (int j = i + 1; j < n; ++j) sum -= lu(i, j) * (*x)[j];
    (*x)[i] = sum / lu(i, i);
  }
}

constexpr double kSingularTol = 1e-13;

}  // namespace

Result<Vector> SolveLinearSystem(const Matrix& a, const Vector& b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveLinearSystem: matrix not square");
  }
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("SolveLinearSystem: size mismatch");
  }
  Matrix lu = a;
  std::vector<int> pivots;
  const double scale = std::max(1.0, a.MaxAbs());
  if (LuDecompose(&lu, &pivots, kSingularTol * scale) == 0) {
    return Status::NumericalError("SolveLinearSystem: singular matrix");
  }
  Vector x = b;
  LuSolveInPlace(lu, pivots, &x);
  return x;
}

Result<Matrix> SolveLinearSystem(const Matrix& a, const Matrix& b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveLinearSystem: matrix not square");
  }
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("SolveLinearSystem: size mismatch");
  }
  Matrix lu = a;
  std::vector<int> pivots;
  const double scale = std::max(1.0, a.MaxAbs());
  if (LuDecompose(&lu, &pivots, kSingularTol * scale) == 0) {
    return Status::NumericalError("SolveLinearSystem: singular matrix");
  }
  Matrix x(b.rows(), b.cols());
  for (int c = 0; c < b.cols(); ++c) {
    Vector col = b.Column(c);
    LuSolveInPlace(lu, pivots, &col);
    x.SetColumn(c, col);
  }
  return x;
}

Result<Matrix> CholeskyFactor(const Matrix& a) {
  Matrix l;
  const Status status = CholeskyFactorInto(a, &l);
  if (!status.ok()) return status;
  return l;
}

Status CholeskyFactorInto(const Matrix& a, Matrix* l) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("CholeskyFactor: matrix not square");
  }
  assert(l != &a);
  const int n = a.rows();
  l->Assign(n, n);
  for (int j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (int k = 0; k < j; ++k) diag -= (*l)(j, k) * (*l)(j, k);
    if (diag <= 0.0) {
      return Status::NumericalError(
          "CholeskyFactor: matrix not positive definite");
    }
    (*l)(j, j) = std::sqrt(diag);
    for (int i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (int k = 0; k < j; ++k) sum -= (*l)(i, k) * (*l)(j, k);
      (*l)(i, j) = sum / (*l)(j, j);
    }
  }
  return Status::Ok();
}

Status CholeskySolveInPlace(const Matrix& l, Vector* x) {
  if (l.rows() != l.cols() || l.rows() != x->size()) {
    return Status::InvalidArgument("CholeskySolveInPlace: size mismatch");
  }
  const int n = l.rows();
  // L y = b: the forward substitution overwrites x[0..i) with y values the
  // later rows read, so one buffer serves both solves.
  for (int i = 0; i < n; ++i) {
    double sum = (*x)[i];
    for (int j = 0; j < i; ++j) sum -= l(i, j) * (*x)[j];
    (*x)[i] = sum / l(i, i);
  }
  // L^T x = y, in place from the bottom.
  for (int i = n - 1; i >= 0; --i) {
    double sum = (*x)[i];
    for (int j = i + 1; j < n; ++j) sum -= l(j, i) * (*x)[j];
    (*x)[i] = sum / l(i, i);
  }
  return Status::Ok();
}

Result<Vector> SolveSpd(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("SolveSpd: size mismatch");
  }
  RPC_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  Vector x = b;
  const Status status = CholeskySolveInPlace(l, &x);
  if (!status.ok()) return status;
  return x;
}

Result<Matrix> Inverse(const Matrix& a) {
  return SolveLinearSystem(a, Matrix::Identity(a.rows()));
}

double Determinant(const Matrix& a) {
  assert(a.rows() == a.cols());
  if (a.rows() == 0) return 1.0;
  Matrix lu = a;
  std::vector<int> pivots;
  const double scale = std::max(1.0, a.MaxAbs());
  const int sign = LuDecompose(&lu, &pivots, kSingularTol * scale * 1e-2);
  if (sign == 0) return 0.0;
  double det = sign;
  for (int i = 0; i < a.rows(); ++i) det *= lu(i, i);
  return det;
}

}  // namespace rpc::linalg
