#include "linalg/vector.h"

#include <cmath>

#include "common/stringutil.h"

namespace rpc::linalg {

Vector& Vector::operator+=(const Vector& other) {
  assert(size() == other.size());
  for (int i = 0; i < size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  assert(size() == other.size());
  for (int i = 0; i < size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Vector& Vector::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

Vector& Vector::operator/=(double scalar) {
  for (double& x : data_) x /= scalar;
  return *this;
}

double Vector::Norm() const { return std::sqrt(SquaredNorm()); }

double Vector::SquaredNorm() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return sum;
}

double Vector::MaxAbs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::fabs(x));
  return best;
}

double Vector::Sum() const {
  double sum = 0.0;
  for (double x : data_) sum += x;
  return sum;
}

bool Vector::AllFinite() const {
  for (double x : data_) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

std::string Vector::ToString(int digits) const {
  std::string out = "[";
  for (int i = 0; i < size(); ++i) {
    if (i > 0) out += ", ";
    out += FormatDouble(data_[static_cast<size_t>(i)], digits);
  }
  out += "]";
  return out;
}

Vector operator+(Vector lhs, const Vector& rhs) {
  lhs += rhs;
  return lhs;
}

Vector operator-(Vector lhs, const Vector& rhs) {
  lhs -= rhs;
  return lhs;
}

Vector operator*(Vector v, double scalar) {
  v *= scalar;
  return v;
}

Vector operator*(double scalar, Vector v) {
  v *= scalar;
  return v;
}

Vector operator/(Vector v, double scalar) {
  v /= scalar;
  return v;
}

double Dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (int i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Distance(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (int i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

bool ApproxEqual(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (int i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace rpc::linalg
