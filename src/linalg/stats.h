#ifndef RPC_LINALG_STATS_H_
#define RPC_LINALG_STATS_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace rpc::linalg {

/// Column-wise mean of a data matrix (rows are observations).
Vector ColumnMeans(const Matrix& data);

/// Column-wise minimum / maximum.
Vector ColumnMins(const Matrix& data);
Vector ColumnMaxs(const Matrix& data);

/// Sample covariance matrix (divides by n - 1; by n when n == 1).
/// Rows of `data` are observations, columns are attributes.
Matrix Covariance(const Matrix& data);

/// Total variance sum_i ||x_i - mean||^2 — the denominator of the
/// explained-variance metric used in Section 6.2.1 (90% vs 86%).
double TotalScatter(const Matrix& data);

/// Pearson correlation between two equally sized vectors; 0 when either is
/// constant.
double PearsonCorrelation(const Vector& a, const Vector& b);

}  // namespace rpc::linalg

#endif  // RPC_LINALG_STATS_H_
