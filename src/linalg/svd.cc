#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace rpc::linalg {
namespace {

// One-sided Jacobi on a tall (m >= n) matrix: rotates column pairs until
// all are mutually orthogonal.
Result<Svd> JacobiSvdTall(const Matrix& a, int max_sweeps, double tol) {
  const int m = a.rows();
  const int n = a.cols();
  Matrix b = a;
  Matrix v = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (int i = 0; i < m; ++i) {
          app += b(i, p) * b(i, p);
          aqq += b(i, q) * b(i, q);
          apq += b(i, p) * b(i, q);
        }
        if (std::fabs(apq) <= tol * std::sqrt(app * aqq) ||
            (app == 0.0 && aqq == 0.0)) {
          continue;
        }
        rotated = true;
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t =
            (zeta >= 0.0 ? 1.0 : -1.0) /
            (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (int i = 0; i < m; ++i) {
          const double bip = b(i, p);
          const double biq = b(i, q);
          b(i, p) = c * bip - s * biq;
          b(i, q) = s * bip + c * biq;
        }
        for (int i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
    if (!rotated) break;
    if (sweep == max_sweeps - 1) {
      return Status::NumericalError("JacobiSvd: did not converge");
    }
  }

  // Singular values = column norms; columns of U = normalised columns.
  Vector sigma(n);
  Matrix u(m, n);
  for (int j = 0; j < n; ++j) {
    double norm = 0.0;
    for (int i = 0; i < m; ++i) norm += b(i, j) * b(i, j);
    norm = std::sqrt(norm);
    sigma[j] = norm;
    if (norm > 0.0) {
      for (int i = 0; i < m; ++i) u(i, j) = b(i, j) / norm;
    }
  }
  // Sort descending.
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int x, int y) { return sigma[x] > sigma[y]; });
  Svd out;
  out.singular_values = Vector(n);
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  for (int j = 0; j < n; ++j) {
    out.singular_values[j] = sigma[order[static_cast<size_t>(j)]];
    out.u.SetColumn(j, u.Column(order[static_cast<size_t>(j)]));
    out.v.SetColumn(j, v.Column(order[static_cast<size_t>(j)]));
  }
  return out;
}

}  // namespace

Result<Svd> JacobiSvd(const Matrix& a, int max_sweeps, double tol) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("JacobiSvd: empty matrix");
  }
  if (a.rows() >= a.cols()) return JacobiSvdTall(a, max_sweeps, tol);
  // Wide: decompose the transpose and swap U/V.
  RPC_ASSIGN_OR_RETURN(Svd t, JacobiSvdTall(a.Transposed(), max_sweeps, tol));
  Svd out;
  out.u = std::move(t.v);
  out.v = std::move(t.u);
  out.singular_values = std::move(t.singular_values);
  return out;
}

Result<Matrix> PseudoInverseViaSvd(const Matrix& a, double rel_tol) {
  RPC_ASSIGN_OR_RETURN(Svd svd, JacobiSvd(a));
  const int r = svd.singular_values.size();
  const double cutoff =
      rel_tol * std::max(r > 0 ? svd.singular_values[0] : 0.0, 1e-300);
  // A^+ = V diag(1/s) U^T over the significant singular values.
  Matrix out(a.cols(), a.rows());
  for (int k = 0; k < r; ++k) {
    const double s = svd.singular_values[k];
    if (s <= cutoff) continue;
    const double inv = 1.0 / s;
    for (int i = 0; i < a.cols(); ++i) {
      const double vik = svd.v(i, k);
      if (vik == 0.0) continue;
      for (int j = 0; j < a.rows(); ++j) {
        out(i, j) += inv * vik * svd.u(j, k);
      }
    }
  }
  return out;
}

Result<Qr> HouseholderQr(const Matrix& a) {
  const int m = a.rows();
  const int n = a.cols();
  if (m < n) {
    return Status::InvalidArgument("HouseholderQr: requires rows >= cols");
  }
  if (n == 0) return Status::InvalidArgument("HouseholderQr: empty matrix");
  Matrix r = a;
  Matrix q_full = Matrix::Identity(m);
  for (int col = 0; col < n; ++col) {
    // Householder vector for the column tail.
    double norm = 0.0;
    for (int i = col; i < m; ++i) norm += r(i, col) * r(i, col);
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;
    const double alpha = r(col, col) >= 0.0 ? -norm : norm;
    Vector v(m);
    for (int i = col; i < m; ++i) v[i] = r(i, col);
    v[col] -= alpha;
    const double vtv = v.SquaredNorm();
    if (vtv == 0.0) continue;
    // Apply H = I - 2 v v^T / (v^T v) to R and accumulate into Q.
    for (int j = 0; j < n; ++j) {
      double dot = 0.0;
      for (int i = col; i < m; ++i) dot += v[i] * r(i, j);
      const double factor = 2.0 * dot / vtv;
      for (int i = col; i < m; ++i) r(i, j) -= factor * v[i];
    }
    for (int j = 0; j < m; ++j) {
      double dot = 0.0;
      for (int i = col; i < m; ++i) dot += v[i] * q_full(j, i);
      const double factor = 2.0 * dot / vtv;
      for (int i = col; i < m; ++i) q_full(j, i) -= factor * v[i];
    }
  }
  Qr out;
  out.q = Matrix(m, n);
  for (int j = 0; j < n; ++j) out.q.SetColumn(j, q_full.Column(j));
  out.r = Matrix(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) out.r(i, j) = r(i, j);
  }
  return out;
}

Result<Vector> LeastSquares(const Matrix& a, const Vector& b,
                            double rel_tol) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("LeastSquares: size mismatch");
  }
  RPC_ASSIGN_OR_RETURN(Matrix pinv, PseudoInverseViaSvd(a, rel_tol));
  return pinv * b;
}

}  // namespace rpc::linalg
