#ifndef RPC_LINALG_MATRIX_H_
#define RPC_LINALG_MATRIX_H_

#include <cassert>
#include <initializer_list>
#include <string>
#include <vector>

#include "linalg/vector.h"

namespace rpc::linalg {

/// Dense row-major real matrix with value semantics. Dimensions are fixed at
/// construction. As with Vector, shape mismatches assert rather than return
/// Status: they indicate caller bugs.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {
    assert(rows >= 0 && cols >= 0);
  }
  /// Row-of-rows construction: Matrix{{1, 2}, {3, 4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Identity(int n);
  /// Diagonal matrix from the given entries.
  static Matrix Diagonal(const Vector& diag);
  /// Outer product a * b^T.
  static Matrix Outer(const Vector& a, const Vector& b);
  /// Builds a matrix whose columns are the given vectors (all same size).
  static Matrix FromColumns(const std::vector<Vector>& columns);
  /// Builds a matrix whose rows are the given vectors (all same size).
  static Matrix FromRows(const std::vector<Vector>& rows);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  /// Reshapes in place to rows x cols, discarding the old contents (every
  /// entry reset to `fill`). The heap buffer is reused whenever its capacity
  /// suffices, so re-Assigning a workspace matrix to the same (or a smaller)
  /// shape performs no allocation — the caller-buffer idiom the fit
  /// pipeline's persistent scratch relies on.
  void Assign(int rows, int cols, double fill = 0.0) {
    assert(rows >= 0 && cols >= 0);
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill);
  }

  double& operator()(int r, int c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  Vector Row(int r) const;
  Vector Column(int c) const;
  /// Raw pointer to row r's `cols()` contiguous entries (row-major
  /// storage). Hot-path accessor: lets per-row kernels read a row without
  /// materialising a Vector copy.
  const double* RowPtr(int r) const {
    assert(r >= 0 && r < rows_);
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  double* RowPtr(int r) {
    assert(r >= 0 && r < rows_);
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  void SetRow(int r, const Vector& values);
  void SetColumn(int c, const Vector& values);

  Matrix Transposed() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Frobenius norm.
  double FrobeniusNorm() const;
  /// Largest absolute entry.
  double MaxAbs() const;
  /// Sum of diagonal entries (requires square).
  double Trace() const;
  bool AllFinite() const;
  /// True when |a(i,j) - b(i,j)| <= tol for all entries and shapes match.
  bool IsSymmetric(double tol = 1e-12) const;

  std::string ToString(int digits = 6) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix m, double scalar);
Matrix operator*(double scalar, Matrix m);
/// Matrix product; asserts inner dimensions agree.
Matrix operator*(const Matrix& a, const Matrix& b);
/// Matrix-vector product; asserts dimensions agree.
Vector operator*(const Matrix& m, const Vector& v);

bool ApproxEqual(const Matrix& a, const Matrix& b, double tol = 1e-12);

/// a^T * b without forming transposes.
Matrix TransposeTimes(const Matrix& a, const Matrix& b);
/// a * b^T without forming transposes.
Matrix TimesTranspose(const Matrix& a, const Matrix& b);

/// Caller-buffer variants: the product is written into *out (reshaped in
/// place, so a correctly sized workspace matrix makes the call
/// allocation-free). `out` must not alias an operand. The allocating
/// functions above are thin wrappers over these.
void TransposeTimesInto(const Matrix& a, const Matrix& b, Matrix* out);
void TimesTransposeInto(const Matrix& a, const Matrix& b, Matrix* out);

}  // namespace rpc::linalg

#endif  // RPC_LINALG_MATRIX_H_
