#include "linalg/stats.h"

#include <cmath>

namespace rpc::linalg {

Vector ColumnMeans(const Matrix& data) {
  Vector mean(data.cols());
  if (data.rows() == 0) return mean;
  for (int r = 0; r < data.rows(); ++r) {
    for (int c = 0; c < data.cols(); ++c) mean[c] += data(r, c);
  }
  mean /= static_cast<double>(data.rows());
  return mean;
}

Vector ColumnMins(const Matrix& data) {
  Vector mins(data.cols());
  for (int c = 0; c < data.cols(); ++c) {
    double best = data.rows() > 0 ? data(0, c) : 0.0;
    for (int r = 1; r < data.rows(); ++r) best = std::min(best, data(r, c));
    mins[c] = best;
  }
  return mins;
}

Vector ColumnMaxs(const Matrix& data) {
  Vector maxs(data.cols());
  for (int c = 0; c < data.cols(); ++c) {
    double best = data.rows() > 0 ? data(0, c) : 0.0;
    for (int r = 1; r < data.rows(); ++r) best = std::max(best, data(r, c));
    maxs[c] = best;
  }
  return maxs;
}

Matrix Covariance(const Matrix& data) {
  const int n = data.rows();
  const int d = data.cols();
  Matrix cov(d, d);
  if (n == 0) return cov;
  const Vector mean = ColumnMeans(data);
  for (int r = 0; r < n; ++r) {
    for (int i = 0; i < d; ++i) {
      const double di = data(r, i) - mean[i];
      for (int j = i; j < d; ++j) {
        cov(i, j) += di * (data(r, j) - mean[j]);
      }
    }
  }
  const double denom = n > 1 ? static_cast<double>(n - 1)
                             : static_cast<double>(n);
  for (int i = 0; i < d; ++i) {
    for (int j = i; j < d; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  }
  return cov;
}

double TotalScatter(const Matrix& data) {
  const Vector mean = ColumnMeans(data);
  double total = 0.0;
  for (int r = 0; r < data.rows(); ++r) {
    for (int c = 0; c < data.cols(); ++c) {
      const double diff = data(r, c) - mean[c];
      total += diff * diff;
    }
  }
  return total;
}

double PearsonCorrelation(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  const int n = a.size();
  if (n == 0) return 0.0;
  double mean_a = a.Sum() / n;
  double mean_b = b.Sum() / n;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (int i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace rpc::linalg
