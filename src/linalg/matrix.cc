#include "linalg/matrix.h"

#include <cmath>

#include "common/stringutil.h"

namespace rpc::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<int>(rows.size());
  cols_ = rows_ > 0 ? static_cast<int>(rows.begin()->size()) : 0;
  data_.reserve(static_cast<size_t>(rows_) * static_cast<size_t>(cols_));
  for (const auto& row : rows) {
    assert(static_cast<int>(row.size()) == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(int n) {
  Matrix id(n, n);
  for (int i = 0; i < n; ++i) id(i, i) = 1.0;
  return id;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size());
  for (int i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Matrix Matrix::Outer(const Vector& a, const Vector& b) {
  Matrix m(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    for (int j = 0; j < b.size(); ++j) m(i, j) = a[i] * b[j];
  }
  return m;
}

Matrix Matrix::FromColumns(const std::vector<Vector>& columns) {
  if (columns.empty()) return Matrix();
  Matrix m(columns[0].size(), static_cast<int>(columns.size()));
  for (int c = 0; c < m.cols(); ++c) {
    assert(columns[static_cast<size_t>(c)].size() == m.rows());
    m.SetColumn(c, columns[static_cast<size_t>(c)]);
  }
  return m;
}

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(static_cast<int>(rows.size()), rows[0].size());
  for (int r = 0; r < m.rows(); ++r) {
    assert(rows[static_cast<size_t>(r)].size() == m.cols());
    m.SetRow(r, rows[static_cast<size_t>(r)]);
  }
  return m;
}

Vector Matrix::Row(int r) const {
  Vector v(cols_);
  for (int c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vector Matrix::Column(int c) const {
  Vector v(rows_);
  for (int r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::SetRow(int r, const Vector& values) {
  assert(values.size() == cols_);
  for (int c = 0; c < cols_; ++c) (*this)(r, c) = values[c];
}

void Matrix::SetColumn(int c, const Vector& values) {
  assert(values.size() == rows_);
  for (int r = 0; r < rows_; ++r) (*this)(r, c) = values[r];
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return std::sqrt(sum);
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::fabs(x));
  return best;
}

double Matrix::Trace() const {
  assert(rows_ == cols_);
  double sum = 0.0;
  for (int i = 0; i < rows_; ++i) sum += (*this)(i, i);
  return sum;
}

bool Matrix::AllFinite() const {
  for (double x : data_) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (int r = 0; r < rows_; ++r) {
    for (int c = r + 1; c < cols_; ++c) {
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

std::string Matrix::ToString(int digits) const {
  std::string out = "[";
  for (int r = 0; r < rows_; ++r) {
    out += (r == 0) ? "[" : " [";
    for (int c = 0; c < cols_; ++c) {
      if (c > 0) out += ", ";
      out += FormatDouble((*this)(r, c), digits);
    }
    out += (r + 1 < rows_) ? "]\n" : "]";
  }
  out += "]";
  return out;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) {
  lhs += rhs;
  return lhs;
}

Matrix operator-(Matrix lhs, const Matrix& rhs) {
  lhs -= rhs;
  return lhs;
}

Matrix operator*(Matrix m, double scalar) {
  m *= scalar;
  return m;
}

Matrix operator*(double scalar, Matrix m) {
  m *= scalar;
  return m;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (int j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

Vector operator*(const Matrix& m, const Vector& v) {
  assert(m.cols() == v.size());
  Vector out(m.rows());
  for (int i = 0; i < m.rows(); ++i) {
    double sum = 0.0;
    for (int j = 0; j < m.cols(); ++j) sum += m(i, j) * v[j];
    out[i] = sum;
  }
  return out;
}

bool ApproxEqual(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      if (std::fabs(a(r, c) - b(r, c)) > tol) return false;
    }
  }
  return true;
}

Matrix TransposeTimes(const Matrix& a, const Matrix& b) {
  Matrix out;
  TransposeTimesInto(a, b, &out);
  return out;
}

Matrix TimesTranspose(const Matrix& a, const Matrix& b) {
  Matrix out;
  TimesTransposeInto(a, b, &out);
  return out;
}

void TransposeTimesInto(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.rows() == b.rows());
  assert(out != &a && out != &b);
  out->Assign(a.cols(), b.cols());
  for (int k = 0; k < a.rows(); ++k) {
    for (int i = 0; i < a.cols(); ++i) {
      const double aki = a(k, i);
      if (aki == 0.0) continue;
      for (int j = 0; j < b.cols(); ++j) (*out)(i, j) += aki * b(k, j);
    }
  }
}

void TimesTransposeInto(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.cols());
  assert(out != &a && out != &b);
  out->Assign(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.rows(); ++j) {
      double sum = 0.0;
      for (int k = 0; k < a.cols(); ++k) sum += a(i, k) * b(j, k);
      (*out)(i, j) = sum;
    }
  }
}

}  // namespace rpc::linalg
