#ifndef RPC_LINALG_PINV_H_
#define RPC_LINALG_PINV_H_

#include "common/result.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"

namespace rpc::linalg {

/// Moore-Penrose pseudo-inverse of a symmetric matrix via its
/// eigendecomposition: eigenvalues below `rel_tol * lambda_max` are treated
/// as zero.
Result<Matrix> PseudoInverseSymmetric(const Matrix& a,
                                      double rel_tol = 1e-12);

/// Caller-owned scratch for repeated symmetric pseudo-inverses of one
/// matrix size. After Bind(n), Compute() writes A^+ into *out (reshaped in
/// place) with zero heap allocations — the eigendecomposition runs in a
/// bound SymmetricEigenWorkspace — and produces exactly the
/// PseudoInverseSymmetric result (that function is now a thin wrapper).
/// The fit pipeline's Eq. (26) update path holds one of these across outer
/// iterations.
class SymmetricPinvWorkspace {
 public:
  SymmetricPinvWorkspace() = default;

  /// Sizes the eigensolver scratch for n x n inputs.
  void Bind(int n);

  /// Pseudo-inverse of `a` (n x n as bound) into *out; `out` must not
  /// alias `a`.
  Status Compute(const Matrix& a, Matrix* out, double rel_tol = 1e-12);

 private:
  SymmetricEigenWorkspace eigen_;
};

/// Moore-Penrose pseudo-inverse of a general matrix B using the Gram-matrix
/// identity the paper cites below Eq. (26): B^+ = B^T (B B^T)^+ when B is
/// wide (rows <= cols), and B^+ = (B^T B)^+ B^T when tall. Only the small
/// Gram matrix is eigendecomposed, so B may have arbitrarily many samples in
/// the long dimension (e.g. the 4 x n matrix MZ).
Result<Matrix> PseudoInverse(const Matrix& b, double rel_tol = 1e-12);

}  // namespace rpc::linalg

#endif  // RPC_LINALG_PINV_H_
