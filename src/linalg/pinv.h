#ifndef RPC_LINALG_PINV_H_
#define RPC_LINALG_PINV_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace rpc::linalg {

/// Moore-Penrose pseudo-inverse of a symmetric matrix via its
/// eigendecomposition: eigenvalues below `rel_tol * lambda_max` are treated
/// as zero.
Result<Matrix> PseudoInverseSymmetric(const Matrix& a,
                                      double rel_tol = 1e-12);

/// Moore-Penrose pseudo-inverse of a general matrix B using the Gram-matrix
/// identity the paper cites below Eq. (26): B^+ = B^T (B B^T)^+ when B is
/// wide (rows <= cols), and B^+ = (B^T B)^+ B^T when tall. Only the small
/// Gram matrix is eigendecomposed, so B may have arbitrarily many samples in
/// the long dimension (e.g. the 4 x n matrix MZ).
Result<Matrix> PseudoInverse(const Matrix& b, double rel_tol = 1e-12);

}  // namespace rpc::linalg

#endif  // RPC_LINALG_PINV_H_
