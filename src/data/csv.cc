#include "data/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/stringutil.h"

namespace rpc::data {
namespace {

bool IsMissingToken(std::string_view token) {
  const std::string_view t = Trim(token);
  return t.empty() || t == "NA" || t == "na" || t == "NaN" || t == "nan" ||
         t == "?";
}

// Splits one CSV record honouring double-quote quoting.
std::vector<std::string> SplitCsvRecord(std::string_view line,
                                        char delimiter) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(current);
  return fields;
}

bool NeedsQuoting(const std::string& field, char delimiter) {
  return field.find(delimiter) != std::string::npos ||
         field.find('"') != std::string::npos ||
         field.find('\n') != std::string::npos;
}

std::string QuoteField(const std::string& field, char delimiter) {
  if (!NeedsQuoting(field, delimiter)) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += "\"\"";
    else quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

Result<Dataset> ParseCsv(std::string_view text, const CsvOptions& options) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!Trim(line).empty()) lines.push_back(line);
    if (end == text.size()) break;
    start = end + 1;
  }
  if (lines.empty()) {
    return Status::DataLoss("ParseCsv: no content");
  }

  size_t first_data_line = 0;
  std::vector<std::string> names;
  if (options.has_header) {
    std::vector<std::string> header =
        SplitCsvRecord(lines[0], options.delimiter);
    if (options.first_column_labels && !header.empty()) {
      header.erase(header.begin());
    }
    for (std::string& h : header) names.emplace_back(Trim(h));
    first_data_line = 1;
  }

  Dataset ds;
  bool first_row = true;
  int expected_fields = -1;
  for (size_t li = first_data_line; li < lines.size(); ++li) {
    std::vector<std::string> fields =
        SplitCsvRecord(lines[li], options.delimiter);
    if (expected_fields < 0) {
      expected_fields = static_cast<int>(fields.size());
    } else if (static_cast<int>(fields.size()) != expected_fields) {
      return Status::DataLoss(
          StrFormat("ParseCsv: line %zu has %zu fields, expected %d", li + 1,
                    fields.size(), expected_fields));
    }
    std::string label;
    size_t data_begin = 0;
    if (options.first_column_labels) {
      if (fields.empty()) return Status::DataLoss("ParseCsv: empty record");
      label = std::string(Trim(fields[0]));
      data_begin = 1;
    } else {
      label = StrFormat("obj%d", ds.num_objects());
    }
    const int d = static_cast<int>(fields.size() - data_begin);
    if (d == 0) return Status::DataLoss("ParseCsv: record with no data");
    linalg::Vector values(d);
    std::vector<bool> missing(static_cast<size_t>(d), false);
    for (int j = 0; j < d; ++j) {
      const std::string& token = fields[data_begin + static_cast<size_t>(j)];
      if (IsMissingToken(token)) {
        missing[static_cast<size_t>(j)] = true;
        values[j] = 0.0;
        continue;
      }
      double value = 0.0;
      if (!ParseDouble(token, &value)) {
        return Status::DataLoss(StrFormat(
            "ParseCsv: non-numeric cell '%s' at line %zu", token.c_str(),
            li + 1));
      }
      values[j] = value;
    }
    if (first_row && !names.empty() &&
        static_cast<int>(names.size()) != d) {
      return Status::DataLoss("ParseCsv: header/data width mismatch");
    }
    ds.AppendRow(std::move(label), values, missing);
    first_row = false;
  }
  if (!names.empty()) {
    RPC_RETURN_IF_ERROR(ds.SetAttributeNames(std::move(names)));
  }
  return ds;
}

Result<Dataset> ReadCsvFile(const std::string& path,
                            const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), options);
}

std::string WriteCsvString(const Dataset& dataset, const CsvOptions& options) {
  std::string out;
  const std::string delim(1, options.delimiter);
  if (options.has_header) {
    std::vector<std::string> header;
    if (options.first_column_labels) header.push_back("label");
    for (const std::string& name : dataset.attribute_names()) {
      header.push_back(QuoteField(name, options.delimiter));
    }
    out += Join(header, delim) + "\n";
  }
  for (int i = 0; i < dataset.num_objects(); ++i) {
    std::vector<std::string> fields;
    if (options.first_column_labels) {
      fields.push_back(QuoteField(dataset.label(i), options.delimiter));
    }
    for (int j = 0; j < dataset.num_attributes(); ++j) {
      fields.push_back(dataset.IsMissing(i, j)
                           ? ""
                           : StrFormat("%.12g", dataset.value(i, j)));
    }
    out += Join(fields, delim) + "\n";
  }
  return out;
}

Status WriteCsvFile(const Dataset& dataset, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound(StrFormat("cannot write '%s'", path.c_str()));
  }
  out << WriteCsvString(dataset, options);
  return Status::Ok();
}

}  // namespace rpc::data
