#ifndef RPC_DATA_GENERATORS_H_
#define RPC_DATA_GENERATORS_H_

#include <cstdint>

#include "common/result.h"
#include "curve/bezier.h"
#include "data/dataset.h"
#include "linalg/matrix.h"
#include "order/orientation.h"

namespace rpc::data {

/// A sample from the paper's own generative model x = f(s) + eps (Eq. 11)
/// with a *known* strictly monotone cubic Bezier f and latent scores s —
/// the workhorse for latent-order recovery experiments and property tests.
struct LatentCurveSample {
  linalg::Matrix data;      // n x d observations
  linalg::Vector latent;    // the true s_i in [0, 1]
  curve::BezierCurve truth; // the generating curve (in [0,1]^d)
};

struct LatentCurveOptions {
  int n = 200;
  double noise_sigma = 0.02;
  /// Interior control values are drawn from
  /// [control_margin, 1 - control_margin] per coordinate, which keeps the
  /// generating curve strictly monotone (Proposition 1).
  double control_margin = 0.1;
  uint64_t seed = 42;
};

/// Draws a random strictly monotone cubic Bezier oriented by `alpha`
/// (end points at the alpha corners) and samples n noisy points from it.
LatentCurveSample GenerateLatentCurveData(const order::Orientation& alpha,
                                          const LatentCurveOptions& options);

/// GAPMINDER-like life-quality table (Section 6.2.1 substitution): `n`
/// countries over {GDP, LEB, IMR, Tuberculosis} with a saturating monotone
/// dependency of the health indicators on GDP, plus the 15 country rows
/// printed in Table 2 embedded verbatim as anchors when requested.
/// alpha = (+1, +1, -1, -1).
Dataset GenerateCountryData(int n = 171, uint64_t seed = 7,
                            bool include_anchors = true);

/// JCR2012-like journal citation table (Section 6.2.2 substitution):
/// `total` journals over {IF, 5-year IF, Immediacy, Eigenfactor, Article
/// Influence}; `missing` of them get missing cells (the 58-of-451 path) and
/// the 10 journal rows printed in Table 3 are embedded verbatim as anchors
/// when requested. IF/5IF/AIS are strongly correlated; Eigenfactor is
/// driven mostly by an independent size factor, as the paper observes.
/// alpha = (+1, +1, +1, +1, +1).
Dataset GenerateJournalData(int total = 451, int missing = 58,
                            uint64_t seed = 11, bool include_anchors = true);

/// Two-dimensional crescent (monotone quarter-arc) cloud — the banana shape
/// of Fig. 5(a) that defeats the first PCA but not a monotone curve.
linalg::Matrix GenerateCrescent(int n, double noise_sigma, uint64_t seed);

/// Two-dimensional parabolic cloud x2 = 4 x1 (1 - x1) + eps whose principal
/// curve is non-monotone — the Fig. 2(b) failure case for general principal
/// curves used as ranking functions.
linalg::Matrix GenerateParabola(int n, double noise_sigma, uint64_t seed);

}  // namespace rpc::data

#endif  // RPC_DATA_GENERATORS_H_
