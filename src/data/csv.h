#ifndef RPC_DATA_CSV_H_
#define RPC_DATA_CSV_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "data/dataset.h"

namespace rpc::data {

/// CSV parsing options. The dialect is the practical one: a configurable
/// delimiter, double-quote quoting with "" escapes, optional header row, an
/// optional leading label column, and empty/NA/na/NaN cells treated as
/// missing values.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// When true, the first column holds object labels rather than data.
  bool first_column_labels = true;
};

/// Parses CSV text into a Dataset. Non-numeric data cells are an error
/// (kDataLoss) unless they spell a missing value.
Result<Dataset> ParseCsv(std::string_view text, const CsvOptions& options = {});

/// Reads and parses a CSV file (kNotFound when unreadable).
Result<Dataset> ReadCsvFile(const std::string& path,
                            const CsvOptions& options = {});

/// Serialises a Dataset to CSV text (missing cells become empty fields).
std::string WriteCsvString(const Dataset& dataset,
                           const CsvOptions& options = {});

/// Writes a Dataset to a file.
Status WriteCsvFile(const Dataset& dataset, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace rpc::data

#endif  // RPC_DATA_CSV_H_
