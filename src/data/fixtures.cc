#include "data/fixtures.h"

namespace rpc::data {

using linalg::Matrix;

const std::vector<ToyObject>& Table1a() {
  static const std::vector<ToyObject>* const kRows =
      new std::vector<ToyObject>{
          {"A", 0.30, 0.25, 1.5, 0.2329, 1},
          {"B", 0.25, 0.55, 1.5, 0.3304, 2},
          {"C", 0.70, 0.70, 3.0, 0.7300, 3},
      };
  return *kRows;
}

const std::vector<ToyObject>& Table1b() {
  static const std::vector<ToyObject>* const kRows =
      new std::vector<ToyObject>{
          {"A'", 0.35, 0.40, 1.5, 0.3708, 2},
          {"B", 0.25, 0.55, 1.5, 0.3431, 1},
          {"C", 0.70, 0.70, 3.0, 0.7318, 3},
      };
  return *kRows;
}

Matrix Table1aMatrix() {
  Matrix m(3, 2);
  const std::vector<ToyObject>& rows = Table1a();
  for (int i = 0; i < 3; ++i) {
    m(i, 0) = rows[static_cast<size_t>(i)].x1;
    m(i, 1) = rows[static_cast<size_t>(i)].x2;
  }
  return m;
}

Matrix Table1bMatrix() {
  Matrix m(3, 2);
  const std::vector<ToyObject>& rows = Table1b();
  for (int i = 0; i < 3; ++i) {
    m(i, 0) = rows[static_cast<size_t>(i)].x1;
    m(i, 1) = rows[static_cast<size_t>(i)].x2;
  }
  return m;
}

const std::vector<CountryAnchor>& Table2Anchors() {
  static const std::vector<CountryAnchor>* const kRows =
      new std::vector<CountryAnchor>{
          {"Luxembourg", 70014, 79.56, 6, 4, 0.892, 1, 1.0000, 1},
          {"Norway", 47551, 80.29, 3, 3, 0.647, 2, 0.8720, 2},
          {"Kuwait", 44947, 77.258, 11, 10, 0.608, 3, 0.8483, 3},
          {"Singapore", 41479, 79.627, 12, 2, 0.578, 4, 0.8305, 4},
          {"United States", 41674, 77.93, 2, 7, 0.575, 5, 0.8275, 5},
          {"Moldova", 2362, 67.923, 63, 17, 0.002, 97, 0.5139, 96},
          {"Vanuatu", 3477, 69.257, 37, 31, 0.011, 96, 0.5135, 97},
          {"Suriname", 7234, 68.425, 53, 30, 0.011, 95, 0.5133, 98},
          {"Morocco", 3547, 70.443, 44, 36, 0.002, 98, 0.5106, 99},
          {"Iraq", 3200, 68.495, 25, 37, -0.002, 100, 0.5032, 100},
          {"South Africa", 8477, 51.803, 349, 55, -0.652, 167, 0.0786, 167},
          {"Sierra Leone", 790, 46.365, 219, 160, -0.664, 169, 0.0541, 168},
          {"Djibouti", 1964, 54.456, 330, 88, -0.655, 168, 0.0524, 169},
          {"Zimbabwe", 538, 41.681, 311, 68, -0.680, 170, 0.0462, 170},
          {"Swaziland", 4384, 44.99, 422, 110, -0.876, 171, 0.0, 171},
      };
  return *kRows;
}

Matrix Table2ControlPoints() {
  // Rows p0..p3, columns GDP, LEB, IMR, Tuberculosis (original units).
  return Matrix{{44713.0, 81.218, 2.0, 0.0},
                {330.0, 80.4, 2.0, 0.0},
                {330.0, 59.7, 33.0, 43.0},
                {1581.824, 41.68, 290.0, 151.0}};
}

const std::vector<JournalAnchor>& Table3Anchors() {
  static const std::vector<JournalAnchor>* const kRows =
      new std::vector<JournalAnchor>{
          {"IEEE T PATTERN ANAL", 4.795, 6.144, 0.625, 0.05237, 3.235,
           7, 5, 26, 3, 6, 1.0000, 1},
          {"ENTERP INF SYST UK", 9.256, 4.771, 2.682, 0.00173, 0.907,
           1, 10, 2, 230, 86, 0.9505, 2},
          {"J STAT SOFTW", 4.910, 5.907, 0.753, 0.01744, 3.314,
           4, 6, 18, 20, 4, 0.9162, 3},
          {"MIS QUART", 4.659, 7.474, 0.705, 0.01036, 3.077,
           8, 2, 21, 49, 7, 0.9105, 4},
          {"ACM COMPUT SURV", 3.543, 7.854, 0.421, 0.00640, 4.097,
           21, 1, 56, 80, 1, 0.9092, 5},
          {"DECIS SUPPORT SYST", 2.201, 3.037, 0.196, 0.00994, 0.864,
           51, 43, 169, 52, 93, 0.4701, 65},
          {"COMPUT STAT DATA AN", 1.304, 1.449, 0.415, 0.02601, 0.918,
           156, 180, 61, 11, 83, 0.4665, 66},
          {"IEEE T KNOWL DATA EN", 1.892, 2.426, 0.217, 0.01256, 1.129,
           82, 72, 152, 37, 55, 0.4616, 67},
          {"MACH LEARN", 1.467, 2.143, 0.373, 0.00638, 1.528,
           133, 96, 70, 81, 20, 0.4490, 68},
          {"IEEE T SYST MAN CY A", 2.183, 2.44, 0.465, 0.00728, 0.767,
           53, 68, 46, 69, 111, 0.4466, 69},
      };
  return *kRows;
}

}  // namespace rpc::data
