#include "data/online_normalizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace rpc::data {

using linalg::Matrix;
using linalg::Vector;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void OnlineNormalizer::Reset(int dimension) {
  assert(dimension >= 0);
  count_ = 0;
  bounds_stale_ = false;
  mins_ = Vector(dimension, kInf);
  maxs_ = Vector(dimension, -kInf);
  mean_ = Vector(dimension, 0.0);
  m2_ = Vector(dimension, 0.0);
}

void OnlineNormalizer::Observe(const double* x) {
  const int d = dimension();
  ++count_;
  for (int j = 0; j < d; ++j) {
    mins_[j] = std::min(mins_[j], x[j]);
    maxs_[j] = std::max(maxs_[j], x[j]);
    // Welford: mean and M2 updated with the pre-update mean.
    const double delta = x[j] - mean_[j];
    mean_[j] += delta / static_cast<double>(count_);
    m2_[j] += delta * (x[j] - mean_[j]);
  }
}

void OnlineNormalizer::Observe(const Vector& x) {
  assert(x.size() == dimension());
  Observe(x.data().data());
}

void OnlineNormalizer::Observe(const Matrix& rows) {
  assert(rows.cols() == dimension() || rows.rows() == 0);
  for (int i = 0; i < rows.rows(); ++i) Observe(rows.RowPtr(i));
}

bool OnlineNormalizer::Remove(const double* x) {
  assert(count_ > 0);
  const int d = dimension();
  bool touched_bound = false;
  --count_;
  for (int j = 0; j < d; ++j) {
    if (x[j] <= mins_[j] || x[j] >= maxs_[j]) touched_bound = true;
    if (count_ == 0) {
      mean_[j] = 0.0;
      m2_[j] = 0.0;
      continue;
    }
    // Reverse Welford: exact inverse of the Observe update.
    const double mean_after =
        (static_cast<double>(count_ + 1) * mean_[j] - x[j]) /
        static_cast<double>(count_);
    m2_[j] -= (x[j] - mean_after) * (x[j] - mean_[j]);
    m2_[j] = std::max(m2_[j], 0.0);  // guard round-off from going negative
    mean_[j] = mean_after;
  }
  if (count_ == 0) {
    mins_ = Vector(d, kInf);
    maxs_ = Vector(d, -kInf);
    bounds_stale_ = false;
    return false;
  }
  if (touched_bound) bounds_stale_ = true;
  return touched_bound;
}

void OnlineNormalizer::RebuildBounds(const Matrix& rows) {
  assert(rows.cols() == dimension() || rows.rows() == 0);
  RebuildBounds(rows.rows() > 0 ? rows.RowPtr(0) : nullptr, rows.rows());
}

void OnlineNormalizer::RebuildBounds(const double* rows, std::int64_t n) {
  assert(n == count_);
  const int d = dimension();
  mins_ = Vector(d, kInf);
  maxs_ = Vector(d, -kInf);
  for (std::int64_t i = 0; i < n; ++i) {
    const double* x = rows + i * d;
    for (int j = 0; j < d; ++j) {
      mins_[j] = std::min(mins_[j], x[j]);
      maxs_[j] = std::max(maxs_[j], x[j]);
    }
  }
  bounds_stale_ = false;
}

Vector OnlineNormalizer::Means() const { return mean_; }

Vector OnlineNormalizer::StdDevs() const {
  Vector out(dimension(), 0.0);
  if (count_ < 2) return out;
  for (int j = 0; j < dimension(); ++j) {
    out[j] = std::sqrt(m2_[j] / static_cast<double>(count_));
  }
  return out;
}

double OnlineNormalizer::BoundsDrift(const Vector& ref_mins,
                                     const Vector& ref_maxs) const {
  assert(ref_mins.size() == dimension() && ref_maxs.size() == dimension());
  double drift = 0.0;
  for (int j = 0; j < dimension(); ++j) {
    const double range = ref_maxs[j] - ref_mins[j];
    if (!(range > 0.0)) return kInf;
    const double moved = std::fabs(mins_[j] - ref_mins[j]) +
                         std::fabs(maxs_[j] - ref_maxs[j]);
    drift = std::max(drift, moved / range);
  }
  return drift;
}

OnlineNormalizer::State OnlineNormalizer::ExportState() const {
  State state;
  state.count = count_;
  state.bounds_stale = bounds_stale_;
  state.mins = mins_.data();
  state.maxs = maxs_.data();
  state.mean = mean_.data();
  state.m2 = m2_.data();
  return state;
}

void OnlineNormalizer::ImportState(const State& state) {
  const int d = static_cast<int>(state.mins.size());
  assert(static_cast<int>(state.maxs.size()) == d &&
         static_cast<int>(state.mean.size()) == d &&
         static_cast<int>(state.m2.size()) == d);
  (void)d;
  count_ = state.count;
  bounds_stale_ = state.bounds_stale;
  mins_ = Vector(state.mins);
  maxs_ = Vector(state.maxs);
  mean_ = Vector(state.mean);
  m2_ = Vector(state.m2);
}

Result<Normalizer> OnlineNormalizer::ToNormalizer() const {
  if (bounds_stale_) {
    return Status::FailedPrecondition(
        "OnlineNormalizer: bounds are stale after a bound-touching removal; "
        "RebuildBounds first");
  }
  if (count_ == 0) {
    return Status::FailedPrecondition(
        "OnlineNormalizer: no rows observed");
  }
  return Normalizer::FromBounds(mins_, maxs_);
}

}  // namespace rpc::data
