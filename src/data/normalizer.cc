#include "data/normalizer.h"

#include "common/stringutil.h"
#include "linalg/stats.h"

namespace rpc::data {

using linalg::Matrix;
using linalg::Vector;

Result<Normalizer> Normalizer::Fit(const Matrix& data) {
  if (data.rows() < 2) {
    return Status::InvalidArgument("Normalizer: need at least 2 rows");
  }
  if (!data.AllFinite()) {
    return Status::InvalidArgument(
        "Normalizer: data contains NaN or infinity");
  }
  Vector mins = linalg::ColumnMins(data);
  Vector maxs = linalg::ColumnMaxs(data);
  for (int j = 0; j < data.cols(); ++j) {
    if (!(maxs[j] > mins[j])) {
      return Status::InvalidArgument(
          StrFormat("Normalizer: attribute %d is constant (value %g)", j,
                    mins[j]));
    }
  }
  return Normalizer(std::move(mins), std::move(maxs));
}

Result<Normalizer> Normalizer::FromBounds(Vector mins, Vector maxs) {
  if (mins.size() != maxs.size() || mins.size() == 0) {
    return Status::InvalidArgument(
        "Normalizer: bounds must be non-empty and equally sized");
  }
  if (!mins.AllFinite() || !maxs.AllFinite()) {
    return Status::InvalidArgument(
        "Normalizer: bounds contain NaN or infinity");
  }
  for (int j = 0; j < mins.size(); ++j) {
    if (!(maxs[j] > mins[j])) {
      return Status::InvalidArgument(
          StrFormat("Normalizer: attribute %d has max (%g) <= min (%g)", j,
                    maxs[j], mins[j]));
    }
  }
  return Normalizer(std::move(mins), std::move(maxs));
}

Vector Normalizer::Transform(const Vector& x) const {
  assert(x.size() == dimension());
  Vector out(x.size());
  for (int j = 0; j < x.size(); ++j) {
    out[j] = (x[j] - mins_[j]) / (maxs_[j] - mins_[j]);
  }
  return out;
}

Matrix Normalizer::Transform(const Matrix& data) const {
  assert(data.cols() == dimension());
  Matrix out(data.rows(), data.cols());
  for (int i = 0; i < data.rows(); ++i) {
    for (int j = 0; j < data.cols(); ++j) {
      out(i, j) = (data(i, j) - mins_[j]) / (maxs_[j] - mins_[j]);
    }
  }
  return out;
}

Vector Normalizer::InverseTransform(const Vector& x) const {
  assert(x.size() == dimension());
  Vector out(x.size());
  for (int j = 0; j < x.size(); ++j) {
    out[j] = mins_[j] + x[j] * (maxs_[j] - mins_[j]);
  }
  return out;
}

Matrix Normalizer::InverseTransform(const Matrix& data) const {
  assert(data.cols() == dimension());
  Matrix out(data.rows(), data.cols());
  for (int i = 0; i < data.rows(); ++i) {
    for (int j = 0; j < data.cols(); ++j) {
      out(i, j) = mins_[j] + data(i, j) * (maxs_[j] - mins_[j]);
    }
  }
  return out;
}

}  // namespace rpc::data
