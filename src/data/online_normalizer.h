#ifndef RPC_DATA_ONLINE_NORMALIZER_H_
#define RPC_DATA_ONLINE_NORMALIZER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/normalizer.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace rpc::data {

/// Streaming sufficient statistics for the Eq. (29) min-max normalisation:
/// per-attribute mins/maxs plus Welford mean/M2 (the z-score statistics),
/// all updated in O(d) per observed row. The streaming tier feeds every
/// ingested row through one of these so a model refresh can renormalise
/// with the *live* bounds instead of re-scanning the whole row store, and
/// so the drift of those live bounds against the bounds baked into the
/// currently served model — the quantity the refit-on-drift policy
/// watches — is always one BoundsDrift() call away.
///
/// Removal: mean/M2 are downdated exactly (reverse Welford), but min/max
/// are not reconstructible from sufficient statistics alone. Remove()
/// therefore reports whether the removed row touched a live bound; the
/// bounds are then flagged stale until RebuildBounds() re-scans the
/// surviving rows (the caller owns the row store). Interior removals keep
/// the bounds exact with no rescan — the common case for retirement.
///
/// Not thread-safe; the streaming tier serialises access through its
/// ingestion worker.
class OnlineNormalizer {
 public:
  OnlineNormalizer() = default;
  explicit OnlineNormalizer(int dimension) { Reset(dimension); }

  /// Drops every statistic and re-dimensions.
  void Reset(int dimension);

  int dimension() const { return mins_.size(); }
  std::int64_t count() const { return count_; }

  /// Folds one row (`dimension()` contiguous doubles) into every statistic.
  void Observe(const double* x);
  void Observe(const linalg::Vector& x);
  /// Folds every row of `rows` (n x dimension()), in row order.
  void Observe(const linalg::Matrix& rows);

  /// Exactly removes one previously observed row from the statistics.
  /// Returns true when the row touched a live min or max: the bounds are
  /// then stale (bounds_stale()) until RebuildBounds() runs. Mean/M2 and
  /// the count are always downdated exactly.
  bool Remove(const double* x);
  bool bounds_stale() const { return bounds_stale_; }

  /// Re-scans `rows` (the surviving row store) to restore exact mins/maxs
  /// after a bound-touching removal; clears bounds_stale().
  void RebuildBounds(const linalg::Matrix& rows);
  /// Flat row-major variant (`n` rows of dimension() contiguous doubles):
  /// lets the streaming tier rescan its store in place, without copying
  /// it into a Matrix under its ingestion lock.
  void RebuildBounds(const double* rows, std::int64_t n);

  /// Live bounds. Meaningless (and `bounds_stale()` aside, equal to the
  /// +/-inf sentinels) while count() == 0.
  const linalg::Vector& mins() const { return mins_; }
  const linalg::Vector& maxs() const { return maxs_; }

  /// Welford statistics: per-attribute running mean and the population
  /// standard deviation sqrt(M2 / n) (0 while count() < 2).
  linalg::Vector Means() const;
  linalg::Vector StdDevs() const;

  /// Renormalisation drift of the live bounds against a reference pair
  /// (typically the bounds baked into the currently served model):
  ///   max_j (|min_j - ref_min_j| + |max_j - ref_max_j|)
  ///         / (ref_max_j - ref_min_j).
  /// 0 means scoring new rows through the served model uses exactly the
  /// normalisation a refit would; large values mean the served curve is
  /// projecting in a stretched/shifted coordinate system (the Eq. 16
  /// invariance only holds when the affine map is the one the curve was
  /// fit under). Infinity when a reference range is degenerate.
  double BoundsDrift(const linalg::Vector& ref_mins,
                     const linalg::Vector& ref_maxs) const;

  /// Freezes the live bounds into a data::Normalizer (the Eq. 29 map the
  /// refit pipeline uses). Fails with kFailedPrecondition while the bounds
  /// are stale, no rows were observed, or an attribute is constant (zero
  /// range — same contract as Normalizer::Fit).
  Result<Normalizer> ToNormalizer() const;

  /// The complete internal state, for durable snapshots. ImportState
  /// followed by the same op sequence is bit-identical to never having
  /// exported: every statistic (including M2 round-off) round-trips
  /// exactly.
  struct State {
    std::int64_t count = 0;
    bool bounds_stale = false;
    std::vector<double> mins, maxs, mean, m2;
  };
  State ExportState() const;
  /// Replaces every statistic; all four vectors must share one length
  /// (the new dimension).
  void ImportState(const State& state);

 private:
  std::int64_t count_ = 0;
  bool bounds_stale_ = false;
  linalg::Vector mins_;
  linalg::Vector maxs_;
  linalg::Vector mean_;
  linalg::Vector m2_;
};

}  // namespace rpc::data

#endif  // RPC_DATA_ONLINE_NORMALIZER_H_
