#ifndef RPC_DATA_FIXTURES_H_
#define RPC_DATA_FIXTURES_H_

#include <vector>

#include "data/dataset.h"
#include "linalg/matrix.h"

namespace rpc::data {

/// Exact numeric rows printed in the paper, embedded as ground-truth
/// anchors for tests and paper-vs-measured comparisons.

/// Table 1(a)/(b): the three toy objects with their RankAgg aggregate and
/// published RPC scores/orders.
struct ToyObject {
  const char* name;
  double x1;
  double x2;
  double rankagg;      // kappa of Eq. (30)
  double rpc_score;    // published RPC score
  int rpc_order;       // published RPC order (1 = lowest score)
};
const std::vector<ToyObject>& Table1a();
const std::vector<ToyObject>& Table1b();

/// Table 1 as a 3 x 2 data matrix (rows A/B/C).
linalg::Matrix Table1aMatrix();
linalg::Matrix Table1bMatrix();

/// Table 2: the 15 country rows printed in the paper, with the Elmap [8]
/// comparison scores/orders and the published RPC scores/orders.
struct CountryAnchor {
  const char* name;
  double gdp;   // GDP/capita PPP, $
  double leb;   // life expectancy at birth, years
  double imr;   // infant mortality, as printed
  double tb;    // tuberculosis incidence, as printed
  double elmap_score;
  int elmap_order;
  double rpc_score;
  int rpc_order;
};
const std::vector<CountryAnchor>& Table2Anchors();

/// Table 2 bottom rows: the published control/end points of the learned
/// country RPC, in the original data space (rows p0..p3, columns
/// GDP/LEB/IMR/TB).
linalg::Matrix Table2ControlPoints();

/// Table 3: the 10 journal rows printed in the paper, with per-indicator
/// published orders and the published RPC scores/orders.
struct JournalAnchor {
  const char* name;
  double impact_factor;
  double five_year_if;
  double immediacy;
  double eigenfactor;
  double influence;
  int if_order;
  int if5_order;
  int imm_order;
  int ef_order;
  int ais_order;
  double rpc_score;
  int rpc_order;
};
const std::vector<JournalAnchor>& Table3Anchors();

/// Paper-reported explained variance (Section 6.2.1): RPC vs Elmap.
constexpr double kPaperRpcExplainedVariance = 0.90;
constexpr double kPaperElmapExplainedVariance = 0.86;

}  // namespace rpc::data

#endif  // RPC_DATA_FIXTURES_H_
