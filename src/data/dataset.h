#ifndef RPC_DATA_DATASET_H_
#define RPC_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace rpc::data {

/// A table of multi-attribute numerical observations: n labelled objects
/// (rows) by d named attributes (columns), with per-cell missing flags so
/// incomplete sources (e.g. the 58 dropped JCR2012 journals) can be
/// represented and filtered the way Section 6.2.2 describes.
class Dataset {
 public:
  Dataset() = default;

  /// Builds a complete (no missing cells) dataset. Label/row and name/col
  /// counts must match; empty label/name vectors get defaults.
  static Result<Dataset> FromMatrix(linalg::Matrix values,
                                    std::vector<std::string> attribute_names,
                                    std::vector<std::string> labels);

  int num_objects() const { return values_.rows(); }
  int num_attributes() const { return values_.cols(); }

  const linalg::Matrix& values() const { return values_; }
  double value(int row, int col) const { return values_(row, col); }
  linalg::Vector row(int i) const { return values_.Row(i); }

  const std::vector<std::string>& attribute_names() const { return names_; }
  const std::vector<std::string>& labels() const { return labels_; }
  const std::string& label(int i) const {
    return labels_[static_cast<size_t>(i)];
  }
  const std::string& attribute_name(int j) const {
    return names_[static_cast<size_t>(j)];
  }

  /// Column index by name.
  Result<int> AttributeIndex(const std::string& name) const;

  /// Row index by label (first match).
  Result<int> LabelIndex(const std::string& label) const;

  bool IsMissing(int row, int col) const {
    return missing_[static_cast<size_t>(row) * num_attributes() + col] != 0;
  }
  bool RowComplete(int row) const;
  int CountIncompleteRows() const;

  /// Appends a row; `missing` may be empty (all present) or size d.
  void AppendRow(std::string label, const linalg::Vector& values,
                 const std::vector<bool>& missing = {});

  /// Replaces attribute names (count must match).
  Status SetAttributeNames(std::vector<std::string> names);

  /// Dataset restricted to complete rows (the JCR2012 "58 out of 451
  /// removed" step).
  Dataset FilterCompleteRows() const;

  /// Dataset with only the given attribute columns.
  Result<Dataset> SelectAttributes(const std::vector<int>& columns) const;

 private:
  linalg::Matrix values_;
  std::vector<std::string> names_;
  std::vector<std::string> labels_;
  std::vector<uint8_t> missing_;  // row-major, 1 = missing
};

}  // namespace rpc::data

#endif  // RPC_DATA_DATASET_H_
