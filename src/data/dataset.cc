#include "data/dataset.h"

#include <cassert>

#include "common/stringutil.h"

namespace rpc::data {

using linalg::Matrix;
using linalg::Vector;

Result<Dataset> Dataset::FromMatrix(Matrix values,
                                    std::vector<std::string> attribute_names,
                                    std::vector<std::string> labels) {
  Dataset ds;
  const int n = values.rows();
  const int d = values.cols();
  if (!attribute_names.empty() &&
      static_cast<int>(attribute_names.size()) != d) {
    return Status::InvalidArgument("Dataset: attribute name count mismatch");
  }
  if (!labels.empty() && static_cast<int>(labels.size()) != n) {
    return Status::InvalidArgument("Dataset: label count mismatch");
  }
  if (attribute_names.empty()) {
    for (int j = 0; j < d; ++j) attribute_names.push_back(StrFormat("v%d", j));
  }
  if (labels.empty()) {
    for (int i = 0; i < n; ++i) labels.push_back(StrFormat("obj%d", i));
  }
  ds.values_ = std::move(values);
  ds.names_ = std::move(attribute_names);
  ds.labels_ = std::move(labels);
  ds.missing_.assign(static_cast<size_t>(n) * static_cast<size_t>(d), 0);
  return ds;
}

Result<int> Dataset::AttributeIndex(const std::string& name) const {
  for (size_t j = 0; j < names_.size(); ++j) {
    if (names_[j] == name) return static_cast<int>(j);
  }
  return Status::NotFound(StrFormat("attribute '%s'", name.c_str()));
}

Result<int> Dataset::LabelIndex(const std::string& label) const {
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) return static_cast<int>(i);
  }
  return Status::NotFound(StrFormat("label '%s'", label.c_str()));
}

bool Dataset::RowComplete(int row) const {
  for (int j = 0; j < num_attributes(); ++j) {
    if (IsMissing(row, j)) return false;
  }
  return true;
}

int Dataset::CountIncompleteRows() const {
  int count = 0;
  for (int i = 0; i < num_objects(); ++i) {
    if (!RowComplete(i)) ++count;
  }
  return count;
}

void Dataset::AppendRow(std::string label, const Vector& values,
                        const std::vector<bool>& missing) {
  const int d = values.size();
  assert(num_objects() == 0 || d == num_attributes());
  assert(missing.empty() || static_cast<int>(missing.size()) == d);
  if (num_objects() == 0 && names_.empty()) {
    for (int j = 0; j < d; ++j) names_.push_back(StrFormat("v%d", j));
  }
  Matrix grown(values_.rows() + 1, d);
  for (int i = 0; i < values_.rows(); ++i) grown.SetRow(i, values_.Row(i));
  grown.SetRow(values_.rows(), values);
  values_ = std::move(grown);
  labels_.push_back(std::move(label));
  for (int j = 0; j < d; ++j) {
    missing_.push_back(
        (!missing.empty() && missing[static_cast<size_t>(j)]) ? 1 : 0);
  }
}

Status Dataset::SetAttributeNames(std::vector<std::string> names) {
  if (static_cast<int>(names.size()) != num_attributes()) {
    return Status::InvalidArgument("SetAttributeNames: count mismatch");
  }
  names_ = std::move(names);
  return Status::Ok();
}

Dataset Dataset::FilterCompleteRows() const {
  Dataset filtered;
  filtered.names_ = names_;
  int complete = 0;
  for (int i = 0; i < num_objects(); ++i) {
    if (RowComplete(i)) ++complete;
  }
  filtered.values_ = Matrix(complete, num_attributes());
  int out = 0;
  for (int i = 0; i < num_objects(); ++i) {
    if (!RowComplete(i)) continue;
    filtered.values_.SetRow(out, values_.Row(i));
    filtered.labels_.push_back(labels_[static_cast<size_t>(i)]);
    ++out;
  }
  filtered.missing_.assign(
      static_cast<size_t>(complete) * static_cast<size_t>(num_attributes()),
      0);
  return filtered;
}

Result<Dataset> Dataset::SelectAttributes(
    const std::vector<int>& columns) const {
  Dataset selected;
  for (int c : columns) {
    if (c < 0 || c >= num_attributes()) {
      return Status::OutOfRange(StrFormat("attribute index %d", c));
    }
    selected.names_.push_back(names_[static_cast<size_t>(c)]);
  }
  selected.labels_ = labels_;
  selected.values_ = Matrix(num_objects(), static_cast<int>(columns.size()));
  for (int i = 0; i < num_objects(); ++i) {
    for (size_t k = 0; k < columns.size(); ++k) {
      selected.values_(i, static_cast<int>(k)) =
          values_(i, columns[k]);
    }
  }
  selected.missing_.resize(static_cast<size_t>(num_objects()) *
                           columns.size());
  for (int i = 0; i < num_objects(); ++i) {
    for (size_t k = 0; k < columns.size(); ++k) {
      selected.missing_[static_cast<size_t>(i) * columns.size() + k] =
          IsMissing(i, columns[k]) ? 1 : 0;
    }
  }
  return selected;
}

}  // namespace rpc::data
