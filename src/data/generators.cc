#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/stringutil.h"
#include "data/fixtures.h"

namespace rpc::data {

using linalg::Matrix;
using linalg::Vector;

LatentCurveSample GenerateLatentCurveData(const order::Orientation& alpha,
                                          const LatentCurveOptions& options) {
  Rng rng(options.seed);
  const int d = alpha.dimension();
  Matrix control(d, 4);
  const Vector p0 = alpha.WorstCorner();
  const Vector p3 = alpha.BestCorner();
  control.SetColumn(0, p0);
  control.SetColumn(3, p3);
  const double lo = options.control_margin;
  const double hi = 1.0 - options.control_margin;
  for (int j = 0; j < d; ++j) {
    // Interior control values expressed along the oriented axis, then
    // mapped into absolute coordinates. Both land strictly inside (0,1),
    // which by Proposition 1 keeps the curve strictly monotone.
    const double b1 = rng.Uniform(lo, hi);
    const double b2 = rng.Uniform(lo, hi);
    if (alpha.sign(j) > 0) {
      control(j, 1) = b1;
      control(j, 2) = b2;
    } else {
      control(j, 1) = 1.0 - b1;
      control(j, 2) = 1.0 - b2;
    }
  }
  LatentCurveSample sample{Matrix(options.n, d), Vector(options.n),
                           curve::BezierCurve(control)};
  for (int i = 0; i < options.n; ++i) {
    const double s = rng.Uniform();
    sample.latent[i] = s;
    const Vector point = sample.truth.Evaluate(s);
    for (int j = 0; j < d; ++j) {
      sample.data(i, j) = point[j] + rng.Gaussian(0.0, options.noise_sigma);
    }
  }
  return sample;
}

Dataset GenerateCountryData(int n, uint64_t seed, bool include_anchors) {
  Rng rng(seed);
  Dataset ds;
  int produced = 0;
  if (include_anchors) {
    for (const CountryAnchor& anchor : Table2Anchors()) {
      ds.AppendRow(anchor.name,
                   Vector{anchor.gdp, anchor.leb, anchor.imr, anchor.tb});
      ++produced;
      if (produced >= n) break;
    }
  }
  for (; produced < n; ++produced) {
    // Latent development level; the power tilts mass toward lower
    // development, matching the GAPMINDER distribution's long poor tail.
    const double t = std::pow(rng.Uniform(), 1.3);
    // GDP/capita (PPP $): ~300 at t=0 to ~70k at t=1, log-linear in t.
    const double gdp =
        300.0 * std::exp(5.45 * t) * rng.LogNormal(0.0, 0.25);
    // Life expectancy saturates: fast gains for poor countries, a ceiling
    // near the "limit of human evolution" the paper describes.
    const double leb = std::clamp(
        41.0 + 40.0 * std::pow(t, 0.45) + rng.Gaussian(0.0, 2.0), 38.0, 83.0);
    // Infant mortality and tuberculosis decay steeply with development and
    // have heavy right tails among the poorest countries.
    const double imr = std::clamp(
        2.0 + 430.0 * std::pow(1.0 - t, 2.4) * rng.LogNormal(0.0, 0.35), 2.0,
        450.0);
    const double tb = std::clamp(
        2.0 + 170.0 * std::pow(1.0 - t, 2.0) * rng.LogNormal(0.0, 0.45), 2.0,
        400.0);
    ds.AppendRow(StrFormat("Country-%03d", produced),
                 Vector{gdp, leb, imr, tb});
  }
  Status renamed = ds.SetAttributeNames({"GDP", "LEB", "IMR", "Tuberculosis"});
  (void)renamed;  // names always match the 4 columns appended above
  return ds;
}

Dataset GenerateJournalData(int total, int missing, uint64_t seed,
                            bool include_anchors) {
  Rng rng(seed);
  Dataset ds;
  int produced = 0;
  if (include_anchors) {
    for (const JournalAnchor& anchor : Table3Anchors()) {
      ds.AppendRow(anchor.name,
                   Vector{anchor.impact_factor, anchor.five_year_if,
                          anchor.immediacy, anchor.eigenfactor,
                          anchor.influence});
      ++produced;
      if (produced >= total) break;
    }
  }
  const int anchors = produced;
  for (; produced < total; ++produced) {
    // Latent journal quality (drives the frequency-count indices) and an
    // independent size factor (drives the PageRank-like Eigenfactor).
    const double quality = rng.LogNormal(0.2, 0.75);       // ~ IF scale
    const double size = rng.LogNormal(0.0, 1.0);           // article volume
    const double impact = std::min(quality, 20.0);
    const double five_year =
        std::min(impact * rng.LogNormal(0.12, 0.18), 30.0);
    const double immediacy = 0.18 * impact * rng.LogNormal(0.0, 0.45);
    const double eigenfactor =
        std::min(0.004 * size * std::pow(impact, 0.3) *
                     rng.LogNormal(0.0, 0.5),
                 0.12);
    const double influence = 0.65 * std::pow(impact, 0.95) *
                             rng.LogNormal(0.0, 0.3);
    ds.AppendRow(StrFormat("JOURNAL-%03d", produced),
                 Vector{impact, five_year, immediacy, eigenfactor,
                        influence});
  }
  // Inject missing cells into `missing` synthetic rows (never the anchors),
  // reproducing the 58-of-451 filtering path of Section 6.2.2.
  Dataset with_missing;
  const int first_missing = std::max(anchors, total - missing);
  for (int i = 0; i < ds.num_objects(); ++i) {
    std::vector<bool> mask(5, false);
    if (i >= first_missing) {
      mask[static_cast<size_t>(rng.UniformInt(5))] = true;
    }
    with_missing.AppendRow(ds.label(i), ds.row(i), mask);
  }
  Status renamed = with_missing.SetAttributeNames(
      {"ImpactFactor", "FiveYearIF", "Immediacy", "Eigenfactor",
       "InfluenceScore"});
  (void)renamed;
  return with_missing;
}

Matrix GenerateCrescent(int n, double noise_sigma, uint64_t seed) {
  Rng rng(seed);
  Matrix data(n, 2);
  for (int i = 0; i < n; ++i) {
    const double t = rng.Uniform();
    const double angle = 0.5 * M_PI * t;
    data(i, 0) = std::sin(angle) + rng.Gaussian(0.0, noise_sigma);
    data(i, 1) = 1.0 - std::cos(angle) + rng.Gaussian(0.0, noise_sigma);
  }
  return data;
}

Matrix GenerateParabola(int n, double noise_sigma, uint64_t seed) {
  Rng rng(seed);
  Matrix data(n, 2);
  for (int i = 0; i < n; ++i) {
    const double t = rng.Uniform();
    data(i, 0) = t + rng.Gaussian(0.0, noise_sigma);
    data(i, 1) = 4.0 * t * (1.0 - t) + rng.Gaussian(0.0, noise_sigma);
  }
  return data;
}

}  // namespace rpc::data
