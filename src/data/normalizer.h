#ifndef RPC_DATA_NORMALIZER_H_
#define RPC_DATA_NORMALIZER_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace rpc::data {

/// Min-max normalisation into [0,1]^d (Eq. 29), the Step 1 preprocessing of
/// Algorithm 1. By Eq. (16) this affine map only moves the Bezier control
/// points, never the scores, which is what makes the learned ranking scale
/// and translation invariant (meta-rule 1).
class Normalizer {
 public:
  /// Learns column mins/maxs from `data` (rows = observations). Returns
  /// kInvalidArgument when a column is constant — such an attribute carries
  /// no ordinal information and Eq. (29) would divide by zero; callers
  /// should drop it first.
  static Result<Normalizer> Fit(const linalg::Matrix& data);

  /// Builds a normalizer directly from known bounds (the streaming tier's
  /// OnlineNormalizer freezes its live statistics through here). Every max
  /// must strictly exceed its min and all entries must be finite, the same
  /// contract Fit() enforces.
  static Result<Normalizer> FromBounds(linalg::Vector mins,
                                       linalg::Vector maxs);

  int dimension() const { return mins_.size(); }
  const linalg::Vector& mins() const { return mins_; }
  const linalg::Vector& maxs() const { return maxs_; }

  /// x -> (x - min) / (max - min), per coordinate.
  linalg::Vector Transform(const linalg::Vector& x) const;
  linalg::Matrix Transform(const linalg::Matrix& data) const;

  /// Inverse map back to the original units (used to report control points
  /// "in the original data space" as in Table 2's bottom rows).
  linalg::Vector InverseTransform(const linalg::Vector& x) const;
  linalg::Matrix InverseTransform(const linalg::Matrix& data) const;

 private:
  Normalizer(linalg::Vector mins, linalg::Vector maxs)
      : mins_(std::move(mins)), maxs_(std::move(maxs)) {}

  linalg::Vector mins_;
  linalg::Vector maxs_;
};

}  // namespace rpc::data

#endif  // RPC_DATA_NORMALIZER_H_
