#ifndef RPC_STREAM_STREAMING_RANKER_H_
#define RPC_STREAM_STREAMING_RANKER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bounded_queue.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/model_io.h"
#include "core/rpc_learner.h"
#include "data/normalizer.h"
#include "data/online_normalizer.h"
#include "durable/event_log.h"
#include "durable/fault_injector.h"
#include "durable/snapshot.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/curve_projection.h"
#include "order/orientation.h"
#include "serve/ranking_service.h"

namespace rpc::stream {

/// Remaps Bezier control points across a normalisation-bound change: the
/// curve is the same object in raw data space, re-expressed in the new
/// [0,1]^d coordinates (Eq. 16 — affine maps move control points, never
/// scores). This is what lets a warm refresh re-use the live model's
/// geometry even when new rows stretched the min-max bounds.
linalg::Matrix RemapControlPoints(const linalg::Matrix& control_points,
                                  const linalg::Vector& old_mins,
                                  const linalg::Vector& old_maxs,
                                  const linalg::Vector& new_mins,
                                  const linalg::Vector& new_maxs);

/// When the streaming tier refreshes the served model.
struct DriftPolicy {
  /// Refresh after this many processed ingestion events (appends +
  /// retirements) since the last refresh snapshot; 0 disables.
  int refit_on_row_delta = 64;
  /// Refresh when the live min-max bounds have drifted from the served
  /// model's bounds by more than this fraction of the served range
  /// (data::OnlineNormalizer::BoundsDrift); 0 disables. Bound drift is the
  /// quantity that actually invalidates served scores — the curve projects
  /// in a coordinate system that no longer matches the data.
  double refit_on_normalizer_drift = 0.05;
  /// Unconditional refresh every this many processed events (the periodic
  /// backstop); 0 disables.
  int refit_period_events = 0;
  /// Background cold refit (full multi-restart Fit, not a warm Refit)
  /// every this many processed events; 0 disables. The result is adopted
  /// only when its objective J beats the live model's J on the same
  /// normalized rows (publish-if-better), so a cold fit that lands in a
  /// worse basin is discarded rather than served. Runs on the auxiliary
  /// pool lane and shares the single refresh slot, so it never delays
  /// event application and never races a warm refresh.
  int cold_refit_period_events = 0;
};

/// Crash durability for the streaming tier: a write-ahead event log plus
/// periodic checksummed snapshots in `dir`, giving bounded-replay recovery
/// via StreamingRanker::Recover(). Disabled while `dir` is empty.
struct DurabilityOptions {
  /// Directory for wal-*.log segments and snapshot-*.snap files. Empty
  /// disables durability entirely (zero overhead on the ingestion path).
  std::string dir;
  /// Event-log segment roll size (durable::EventLog::Options).
  std::int64_t segment_bytes = 4 << 20;
  /// Write a milestone snapshot (and truncate the log behind it) every
  /// this many applied events; 0 keeps only the Start/Stop snapshots.
  int snapshot_every_events = 512;
  /// Snapshots retained on disk (keep_n; values below 1 are clamped to
  /// 1). Two is the safe minimum: the log is only truncated through the
  /// *oldest* kept snapshot, so a corrupt newest snapshot still has a
  /// fallback with its full log suffix. Larger values buy deeper
  /// point-in-time fallback at the cost of disk and a longer retained
  /// log.
  int keep_snapshots = 2;
  /// Log-compaction policy: keep at least this many of the newest log
  /// records on disk even when a snapshot already covers them; 0 compacts
  /// as aggressively as the snapshot retention allows. A warm standby
  /// catches up from the log tail, so retaining a margin here lets a
  /// briefly partitioned replica resume with a tail fetch instead of a
  /// full snapshot re-ship. Truncation never strips a segment the oldest
  /// retained snapshot still needs, whatever this is set to.
  std::int64_t wal_keep_events = 0;
  /// Failpoint driver for kill-and-recover tests; shared so the test keeps
  /// a handle after the ranker is abandoned. Null in production.
  std::shared_ptr<durable::FaultInjector> injector;

  bool enabled() const { return !dir.empty(); }
};

struct StreamingRankerOptions {
  /// Learner configuration for the cold initial fit (Start). The warm
  /// refresh path derives its own configuration from this: restarts = 1
  /// (the seed pins the basin), warm-start reprojection with adaptive
  /// brackets, no J history, and `warm_refit_max_iterations` as the outer
  /// iteration cap.
  core::RpcLearnOptions learner;
  /// Outer-iteration cap for a warm refresh. A refresh whose data barely
  /// moved converges in a handful of warm iterations; the cap bounds the
  /// cost of one that moved a lot (the next refresh continues from its
  /// result).
  int warm_refit_max_iterations = 16;
  /// Capacity of the ingestion queue, in events. Full queue = Append
  /// blocks (backpressure), TryAppend rejects.
  int queue_capacity = 1024;
  /// Worker budget for the ingestion/refresh pool, common::ThreadPool
  /// convention. The default 2 gives one dedicated background worker, so
  /// ingestion and warm refreshes never run on the caller's thread; 1 runs
  /// everything inline in Append (fully serial mode). With more than 2,
  /// events can apply out of arrival order under load.
  int num_threads = 2;
  /// Serving policy attached to every model version this ranker publishes:
  /// queries on the dataset that do not set QueryOptions::priority are
  /// admitted under this class. Streamed datasets default to interactive —
  /// they exist to be served live.
  serve::DatasetOptions serving;
  DriftPolicy drift;
  DurabilityOptions durability;
};

/// Aggregate counters; a consistent snapshot of the ranker's state.
struct StreamStats {
  std::int64_t appended = 0;
  std::int64_t retired = 0;
  std::int64_t retire_misses = 0;    // retirements of unknown row ids
  std::int64_t events_processed = 0;
  std::int64_t refreshes = 0;        // published model versions - 1
  std::int64_t skipped_refreshes = 0;  // policy fired but refit impossible
  std::int64_t failed_refreshes = 0;   // learner error (model kept)
  std::int64_t publish_failures = 0;   // RankingService rejected a publish
  std::int64_t rows = 0;             // live rows
  std::uint64_t version = 0;         // current model version (0 = no model)
  double last_drift = 0.0;           // live-vs-model bounds drift
  double last_refresh_seconds = 0.0;
  int pending = 0;                   // ingestion backlog (queued events)
  // Durable tier (all zero while durability is disabled).
  std::int64_t snapshots = 0;        // milestone snapshots written
  std::int64_t durable_errors = 0;   // failed log syncs / snapshot writes
  std::int64_t wal_records = 0;      // event-log records staged
  std::int64_t cold_refits = 0;      // background cold fits adopted
  std::int64_t cold_rejected = 0;    // cold fits whose J did not improve
};

/// Streaming ingestion and online model-refresh tier: the bridge between
/// the batch fit pipeline and the serving tier for workloads where objects
/// keep arriving (and retiring) while the ranking is being served.
///
/// Lifecycle:
///   * Start() runs the ordinary cold fit (restarts and all) on the
///     initial rows and publishes the model as version 1.
///   * Append()/Retire() enqueue ingestion events into a bounded queue
///     (backpressure on Append, rejection on TryAppend) and return
///     immediately; a background worker drains the queue in FIFO order,
///     maintaining the row store, the per-row warm-start state (each
///     appended row is projected once onto the live curve), and the
///     data::OnlineNormalizer sufficient statistics.
///   * After each event the DriftPolicy decides whether to refresh. A
///     refresh snapshots the store under the lock, then — off the lock, so
///     ingestion continues — renormalises with the live bounds, remaps the
///     live control points into the new coordinates (Eq. 16), and runs
///     core::RpcLearner::Refit seeded with the remapped control points and
///     the per-row s* (imported into opt::IncrementalProjector), so the
///     refresh costs a few warm outer iterations instead of a cold
///     multi-restart fit.
///   * Each successful refresh is published as a new immutable version
///     through serve::RankingService::RegisterDataset — the copy-on-write
///     swap PR 3 built, so in-flight queries never see a torn model and
///     version N's scores are bit-identical whether served before or after
///     version N+1 lands. At most one refresh is in flight at a time and
///     publishes are ordered by version.
///
/// Determinism: with the default single background worker, events apply in
/// arrival order and every refresh is a pure function of (row store, warm
/// state, options) — Snapshot() after ForceRefresh() is bit-identical to
/// running RpcLearner::Refit by hand on the same state (the streaming
/// machinery adds no arithmetic).
///
/// Thread safety: all public methods may be called from any thread.
class StreamingRanker {
 public:
  /// `service` (nullable) receives every published model version under
  /// `dataset_id`; it must outlive the ranker.
  StreamingRanker(serve::RankingService* service, std::string dataset_id,
                  StreamingRankerOptions options = {});
  ~StreamingRanker();

  StreamingRanker(const StreamingRanker&) = delete;
  StreamingRanker& operator=(const StreamingRanker&) = delete;

  /// Cold-fits the initial rows (raw data space) and publishes version 1.
  /// Must be called exactly once, before any Append. With durability
  /// configured, also opens the event log and writes the bootstrap
  /// snapshot, so a crash at any later point is recoverable.
  Status Start(const linalg::Matrix& initial_rows,
               const order::Orientation& alpha);

  /// Rebuilds the exact pre-crash state from `durability.dir` instead of
  /// Start(): loads the newest readable snapshot (falling back across
  /// corrupt ones), replays the event-log suffix through the same apply
  /// path ingestion uses — so row ids, normalizer statistics and warm
  /// scores come back bit-identical — truncates any torn log tail, writes
  /// a fresh post-recovery snapshot, and re-publishes the recovered model
  /// version to the serving tier. Events that were applied and synced
  /// (anything before a successful Flush/Stop) are never lost; events
  /// still queued at the crash were never acknowledged as durable and must
  /// be resubmitted by the client.
  Status Recover();

  // -- Follower (warm-standby) mode -----------------------------------
  //
  // A replica::ReplicaApplier drives these: the standby's StreamingRanker
  // never ingests events of its own — it installs shipped snapshots and
  // applies shipped WAL records through the exact apply path Recover()
  // uses, so its rows, normalizer statistics, scores and served version
  // stay bit-identical to the primary at every applied offset. While in
  // follower mode the ranker is read-only (Append/Retire/ForceRefresh
  // refuse) and every published model version still flows through the
  // serving tier, so queries are served throughout — including while the
  // feed is lost (the standby then simply goes stale).

  /// Installs a shipped snapshot as the follower's complete state and
  /// publishes its model version. Legal before any start (bootstraps the
  /// follower) and again at any later point while in follower mode (the
  /// primary compacted past our offset and re-shipped).
  Status FollowerInstallSnapshot(const durable::SnapshotState& state);

  /// Applies one shipped WAL record (must be exactly the next sequence).
  /// kPublish records re-publish the new model version to the serving
  /// tier, exactly as the primary's own publish did.
  Status ApplyFollowerRecord(const durable::ReplayRecord& record);

  /// Rebuilds follower state from the standby's own durability dir
  /// (snapshot + replicated WAL) after a standby restart, truncating any
  /// torn tail — the resumable-catch-up entry point. kNotFound when the
  /// dir holds no snapshot yet (a never-fed standby starts empty).
  Status RecoverAsFollower();

  /// Failover: leaves follower mode, opens the (replicated) event log for
  /// writing at the next sequence, writes a fresh snapshot, and starts
  /// accepting Append/Retire — the standby is now the primary, serving
  /// and logging from exactly the last applied offset.
  Status PromoteToPrimary();

  bool is_follower() const;
  /// Sequence of the last WAL record applied in follower mode.
  std::uint64_t follower_applied_seq() const;
  /// The primary-side shipping cap: records on disk and fsynced.
  std::uint64_t wal_synced_seq() const;
  std::uint64_t wal_appended_seq() const;

  /// What the last successful Recover() did.
  struct RecoveryInfo {
    bool recovered = false;
    std::string snapshot_path;       // snapshot the state was loaded from
    std::uint64_t snapshot_seq = 0;  // its coverage (log replayed after it)
    int snapshot_fallbacks = 0;      // newer-but-corrupt snapshots skipped
    std::uint64_t replayed_records = 0;
    bool tail_truncated = false;     // a torn log tail was cut off
    std::uint64_t recovered_version = 0;
  };
  RecoveryInfo recovery_info() const;

  /// Enqueues a row (raw data space) for ingestion and returns its row id.
  /// Blocks while the ingestion queue is full (backpressure).
  Result<std::int64_t> Append(const linalg::Vector& raw_row);
  /// Like Append but refuses (kFailedPrecondition) instead of blocking.
  Result<std::int64_t> TryAppend(const linalg::Vector& raw_row);

  /// Enqueues the retirement of a previously appended row. Unknown ids
  /// (including ids whose append is still queued behind this event) are
  /// counted as retire_misses when processed, not errors here.
  Status Retire(std::int64_t row_id);

  /// Blocks until every enqueued event has been processed and no refresh
  /// is in flight; with durability on, then fsyncs the event log — the
  /// acknowledgment boundary: everything appended before a successful
  /// Flush survives any later crash.
  Status Flush();

  /// Flush, then run one warm refresh synchronously (whatever the drift
  /// policy says) and publish it.
  Status ForceRefresh();

  /// Consistent view of the live model + warm state.
  struct Snapshot {
    std::uint64_t version = 0;
    /// The served model: alpha, the *fit-time* bounds, control points.
    core::PortableRpcModel model;
    /// Per live row: the warm-start s* (the fit scores for rows covered by
    /// the last refresh; the projection onto the live curve for rows
    /// appended since).
    linalg::Vector scores;
    std::vector<std::int64_t> row_ids;
    /// The OnlineNormalizer's live bounds (these drift away from
    /// model.mins/maxs as data arrives; a refresh re-bases onto them).
    linalg::Vector live_mins;
    linalg::Vector live_maxs;
  };
  Snapshot snapshot() const;

  StreamStats stats() const;

  /// Wall-clock seconds of every completed refresh, oldest first (the
  /// bench derives p50/p99 refresh latency from this).
  std::vector<double> RefreshSecondsHistory() const;

  /// The derived warm-refresh learner configuration (tests replicate a
  /// refresh with exactly this).
  const core::RpcLearnOptions& warm_options() const { return warm_options_; }

  /// Refuses new events, drains the queue (BoundedQueue::CloseAndDrain —
  /// every admitted event is applied, none dropped, including any refresh
  /// the policy fires), then syncs the event log and writes a final
  /// clean-shutdown snapshot so the next Recover() replays nothing. The
  /// worker threads are joined by the destructor. Idempotent.
  void Stop();

 private:
  struct Event {
    enum class Kind { kAppend, kRetire };
    Kind kind = Kind::kAppend;
    std::int64_t row_id = 0;
    linalg::Vector row;  // kAppend only
    /// Steady-clock stamp taken at enqueue; the worker measures ingest lag
    /// (time spent queued) against it when it pops the event.
    std::int64_t enqueue_ns = 0;
  };

  /// Everything one refresh needs, snapshotted under the lock so the refit
  /// runs on an immutable copy while ingestion continues.
  struct RefreshJob {
    linalg::Matrix rows;
    std::vector<std::int64_t> row_ids;
    linalg::Vector seed_scores;
    linalg::Matrix seed_control;
    linalg::Vector old_mins, old_maxs;
    /// Live bounds frozen at snapshot time (optional only because
    /// Normalizer has no default constructor; always set by Prepare).
    std::optional<data::Normalizer> normalizer;
  };

  /// Everything one background cold refit needs, snapshotted under the
  /// lock (like RefreshJob, plus the live control points so the cold
  /// result's J can be compared against the live model's J on the same
  /// rows before it is adopted).
  struct ColdJob {
    linalg::Matrix rows;
    std::vector<std::int64_t> row_ids;
    linalg::Matrix live_control;
    linalg::Vector old_mins, old_maxs;
    std::optional<data::Normalizer> normalizer;
  };

  Result<std::int64_t> AppendImpl(const linalg::Vector& raw_row,
                                  bool blocking);
  void ProcessOneEvent();
  void ApplyEventLocked(const Event& event);
  bool PolicyFiresLocked();
  /// Snapshots the refresh inputs; false (with a reason in *status) when a
  /// refresh is impossible right now (too few rows, degenerate bounds).
  bool PrepareRefreshLocked(RefreshJob* job, Status* status);
  Status RunRefresh(RefreshJob* job);
  bool PrepareColdLocked(ColdJob* job);
  Status RunColdRefit(ColdJob* job);
  /// Re-evaluates the drift policy when a refresh finishes; returns a
  /// prepared follow-up job (refresh_in_flight_ stays set) or null.
  std::shared_ptr<RefreshJob> MaybeChainRefreshLocked();

  // Durable tier (all no-ops while log_ is null).
  void LogEventLocked(const Event& event);
  void LogBoundsLocked();
  void LogPublishLocked(std::uint32_t kind,
                        const core::PortableRpcModel& portable,
                        const std::vector<std::int64_t>& row_ids,
                        const linalg::Vector& scores);
  /// Coalescing group-commit driver: schedules one Sync on the aux lane
  /// unless one is already scheduled, so a burst of events shares a fsync.
  void ScheduleLogFlush();
  durable::SnapshotState BuildSnapshotStateLocked() const;
  /// Aux-lane snapshot job: write, rotate, truncate the log behind the
  /// oldest kept snapshot.
  void RunSnapshot(std::shared_ptr<durable::SnapshotState> state);
  /// Synchronous snapshot (Start bootstrap, Stop finale, post-recovery).
  Status WriteSnapshotNow();
  Status InstallSnapshotStateLocked(const durable::SnapshotState& state);
  Status ApplyReplayRecordLocked(const durable::ReplayRecord& record);
  /// Shared Recover()/RecoverAsFollower() body.
  Status RecoverImpl(bool as_follower);
  /// The log-compaction horizon: the oldest kept snapshot's seq, pulled
  /// back by the wal_keep_events retention margin. 0 = keep everything.
  std::uint64_t TruncateHorizon(std::uint64_t oldest_snapshot_seq,
                                std::uint64_t last_appended) const;
  double ProjectRowLocked(const double* raw_row);
  void RebindCurveLocked();
  linalg::Matrix StoreMatrixLocked() const;
  /// The live model as the portable {alpha, bounds, control points,
  /// version} struct — the single assembly point for publish/snapshot.
  core::PortableRpcModel PortableModelLocked() const;

  const std::string dataset_id_;
  StreamingRankerOptions options_;
  core::RpcLearnOptions warm_options_;
  serve::RankingService* service_;  // nullable

  std::unique_ptr<ThreadPool> pool_;
  /// Second lane for everything that may touch the disk or run long —
  /// log group-commits, snapshot writes, warm refreshes, cold refits — so
  /// the ingestion workers only ever apply events. Sized to stay inline
  /// (fully serial) when num_threads == 1.
  std::unique_ptr<ThreadPool> aux_pool_;
  /// Null while durability is disabled. The destructor drains both pools
  /// before this is destroyed, so aux-lane tasks never outlive the log.
  std::unique_ptr<durable::EventLog> log_;
  std::atomic<bool> log_flush_scheduled_{false};
  BoundedQueue<Event> queue_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;

  // Row store (flat row-major) + identity + warm state, all index-aligned.
  std::vector<double> rows_;
  std::vector<std::int64_t> row_ids_;
  std::vector<double> s_;
  std::unordered_map<std::int64_t, int> id_to_index_;
  std::int64_t next_row_id_ = 0;

  data::OnlineNormalizer online_;

  // Live model (normalised space of model_mins_/model_maxs_).
  bool started_ = false;
  bool stopped_ = false;
  order::Orientation alpha_ = order::Orientation::AllBenefit(1);
  linalg::Matrix control_;
  linalg::Vector model_mins_, model_maxs_;
  std::uint64_t version_ = 0;
  curve::BezierCurve live_curve_;
  opt::ProjectionWorkspace append_workspace_;
  std::vector<double> append_normalized_;  // d scratch

  // Ingestion/refresh bookkeeping.
  int d_ = 0;
  std::int64_t pending_ = 0;
  bool refresh_in_flight_ = false;
  std::int64_t events_since_refresh_ = 0;
  std::int64_t appended_ = 0;
  std::int64_t retired_ = 0;
  std::int64_t retire_misses_ = 0;
  std::int64_t events_processed_ = 0;
  std::int64_t refreshes_ = 0;
  std::int64_t skipped_refreshes_ = 0;
  std::int64_t failed_refreshes_ = 0;
  std::int64_t publish_failures_ = 0;
  double last_drift_ = 0.0;
  std::vector<double> refresh_seconds_;

  // Durable-tier bookkeeping.
  bool replaying_ = false;  // Recover() replay: don't re-log records
  bool follower_ = false;   // warm standby: read-only, fed by a replica feed
  std::uint64_t last_applied_seq_ = 0;  // follower mode: last WAL seq applied
  bool snapshot_in_flight_ = false;
  std::int64_t events_since_snapshot_ = 0;
  std::int64_t events_since_cold_ = 0;
  std::int64_t snapshots_ = 0;
  std::int64_t durable_errors_ = 0;
  std::int64_t cold_refits_ = 0;
  std::int64_t cold_rejected_ = 0;
  RecoveryInfo recovery_info_;

  // Telemetry. Counters/histograms are plain relaxed atomics (safe to
  // bump under mu_); the callback gauges lock mu_ when sampled, so no
  // registry call may ever run while mu_ is held (lock-order rule).
  obs::Counter append_events_;
  obs::Counter retire_events_;
  obs::Histogram ingest_lag_us_;
  obs::Histogram refresh_renormalize_us_;
  obs::Histogram refresh_refit_us_;
  obs::Histogram refresh_publish_us_;
  // Declared last: unregister (handle destructors) before the state the
  // callbacks sample is torn down.
  obs::Registry::CallbackHandle pending_gauge_;
  obs::Registry::CallbackHandle rows_gauge_;
  obs::Registry::CallbackHandle version_gauge_;
  obs::Registry::CallbackHandle drift_gauge_;
};

}  // namespace rpc::stream

#endif  // RPC_STREAM_STREAMING_RANKER_H_
