#include "stream/streaming_ranker.h"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/stringutil.h"
#include "durable/codec.h"
#include "durable/file_util.h"
#include "obs/buckets.h"

namespace rpc::stream {

using linalg::Matrix;
using linalg::Vector;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool BitEqual(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// kPublish payload kind tags (first u32 of the payload).
constexpr std::uint32_t kPublishWarm = 0;
constexpr std::uint32_t kPublishCold = 1;

}  // namespace

Matrix RemapControlPoints(const Matrix& control_points,
                          const Vector& old_mins, const Vector& old_maxs,
                          const Vector& new_mins, const Vector& new_maxs) {
  const int d = control_points.rows();
  assert(old_mins.size() == d && old_maxs.size() == d &&
         new_mins.size() == d && new_maxs.size() == d);
  Matrix remapped(d, control_points.cols());
  for (int j = 0; j < d; ++j) {
    const double old_range = old_maxs[j] - old_mins[j];
    const double new_range = new_maxs[j] - new_mins[j];
    assert(old_range > 0.0 && new_range > 0.0);
    for (int r = 0; r < control_points.cols(); ++r) {
      // Normalised-old -> raw -> normalised-new, per coordinate.
      const double raw = old_mins[j] + control_points(j, r) * old_range;
      remapped(j, r) = (raw - new_mins[j]) / new_range;
    }
  }
  return remapped;
}

StreamingRanker::StreamingRanker(serve::RankingService* service,
                                 std::string dataset_id,
                                 StreamingRankerOptions options)
    : dataset_id_(std::move(dataset_id)),
      options_(options),
      service_(service),
      pool_(std::make_unique<ThreadPool>(options.num_threads)),
      // One dedicated worker for disk/refit work — unless the ranker runs
      // fully serial (num_threads <= 1), in which case the aux lane is
      // inline too and the determinism contract is untouched.
      aux_pool_(std::make_unique<ThreadPool>(options.num_threads <= 1 ? 1
                                                                      : 2)),
      queue_(std::max(options.queue_capacity, 1)) {
  // The warm-refresh learner: same geometry/solver configuration as the
  // cold fit, but a single trajectory (the seed pins the basin) running
  // warm-started adaptive-bracket reprojection under a tight iteration
  // cap — the whole point is that a refresh near the live optimum costs a
  // few warm sweeps.
  warm_options_ = options_.learner;
  warm_options_.restarts = 1;
  warm_options_.reprojection = core::ReprojectionMode::kWarmStart;
  warm_options_.reprojection_adaptive_brackets = true;
  warm_options_.max_iterations = std::max(options_.warm_refit_max_iterations, 1);
  warm_options_.record_history = false;

  // One series set per ranker instance. The inst ordinal disambiguates two
  // rankers sharing a dataset id (primary + warm standby in failover
  // tests). Handles are created here — never lazily on a path that holds
  // mu_ — because the registry lock must always be taken outside mu_ (the
  // callback gauges below take them in that order at Snapshot time).
  static std::atomic<int> next_ranker_ordinal{0};
  const obs::Labels labels = {
      {"dataset", dataset_id_},
      {"inst", std::to_string(next_ranker_ordinal.fetch_add(
                   1, std::memory_order_relaxed))}};
  obs::Registry& registry = obs::Registry::Global();
  const auto kind_counter = [&](const char* kind) {
    obs::Labels kind_labels = labels;
    kind_labels.emplace_back("kind", kind);
    return registry.GetCounter("rpc_stream_events_total", kind_labels,
                               "Ingestion events applied, by kind");
  };
  append_events_ = kind_counter("append");
  retire_events_ = kind_counter("retire");
  ingest_lag_us_ = registry.GetHistogram(
      "rpc_stream_ingest_lag_us", obs::LatencyBucketUpperBoundsUs(), labels,
      "Queue residency of ingestion events, enqueue to pop (us)");
  const auto phase_histogram = [&](const char* phase) {
    obs::Labels phase_labels = labels;
    phase_labels.emplace_back("phase", phase);
    return registry.GetHistogram("rpc_stream_refresh_phase_us",
                                 obs::LatencyBucketUpperBoundsUs(),
                                 phase_labels,
                                 "Warm-refresh phase durations (us)");
  };
  refresh_renormalize_us_ = phase_histogram("renormalize");
  refresh_refit_us_ = phase_histogram("refit");
  refresh_publish_us_ = phase_histogram("publish");
  pending_gauge_ = registry.GetCallbackGauge(
      "rpc_stream_pending", labels,
      [this] {
        std::lock_guard<std::mutex> lock(mu_);
        return static_cast<double>(pending_);
      },
      "Events admitted but not yet applied");
  rows_gauge_ = registry.GetCallbackGauge(
      "rpc_stream_rows", labels,
      [this] {
        std::lock_guard<std::mutex> lock(mu_);
        return static_cast<double>(row_ids_.size());
      },
      "Live rows in the store");
  version_gauge_ = registry.GetCallbackGauge(
      "rpc_stream_version", labels,
      [this] {
        std::lock_guard<std::mutex> lock(mu_);
        return static_cast<double>(version_);
      },
      "Published model version");
  drift_gauge_ = registry.GetCallbackGauge(
      "rpc_stream_drift", labels,
      [this] {
        std::lock_guard<std::mutex> lock(mu_);
        return last_drift_;
      },
      "Normaliser-bounds drift at the last policy evaluation");
}

StreamingRanker::~StreamingRanker() {
  Stop();
  pool_.reset();      // joins the workers (and any straggler task)
  aux_pool_.reset();  // then the aux lane, whose tasks the workers feed
}

void StreamingRanker::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Refuse new events, then block until every admitted event has been
  // handed to a worker. This closes the Append-racing-Stop window: an
  // Append that pushed successfully but has not yet Submitted its task
  // cannot be dropped — CloseAndDrain waits until that late task (which
  // must land on the still-live pool; the destructor's WaitTasks is the
  // backstop) has popped the event, and the WaitTasks below then waits for
  // it to be fully applied. No accepted event is ever lost on Stop.
  queue_.CloseAndDrain();
  pool_->WaitTasks();
  // Let in-flight aux work (refresh, cold refit, snapshot, log flush)
  // finish before the final sync, so the shutdown snapshot sees it.
  aux_pool_->WaitTasks();
  durable::EventLog* log = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    log = log_.get();
  }
  if (log != nullptr) {
    const Status synced = log->Sync();
    const Status snapped =
        synced.ok() ? WriteSnapshotNow() : Status::Ok();
    if (!synced.ok() || !snapped.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++durable_errors_;
    }
  }
  cv_.notify_all();
}

Status StreamingRanker::Start(const Matrix& initial_rows,
                              const order::Orientation& alpha) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return Status::FailedPrecondition("StreamingRanker: stopped");
    if (started_) {
      return Status::FailedPrecondition("StreamingRanker: already started");
    }
  }
  RPC_ASSIGN_OR_RETURN(data::Normalizer normalizer,
                       data::Normalizer::Fit(initial_rows));
  const Matrix normalized = normalizer.Transform(initial_rows);
  const core::RpcLearner learner(options_.learner);
  RPC_ASSIGN_OR_RETURN(core::RpcFitResult fit,
                       learner.Fit(normalized, alpha));

  // Open the event log before events can flow: every applied event after
  // started_ becomes visible must be captured.
  std::unique_ptr<durable::EventLog> log;
  if (options_.durability.enabled()) {
    durable::EventLog::Options log_options;
    log_options.segment_bytes = options_.durability.segment_bytes;
    log_options.injector = options_.durability.injector.get();
    RPC_ASSIGN_OR_RETURN(
        log, durable::EventLog::Open(options_.durability.dir,
                                     initial_rows.cols(),
                                     /*next_seq=*/1, log_options));
  }

  core::PortableRpcModel portable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    d_ = initial_rows.cols();
    alpha_ = alpha;
    control_ = fit.curve.control_points();
    model_mins_ = normalizer.mins();
    model_maxs_ = normalizer.maxs();
    version_ = 1;
    const int n = initial_rows.rows();
    rows_.assign(initial_rows.RowPtr(0), initial_rows.RowPtr(0) +
                                             static_cast<size_t>(n) * d_);
    row_ids_.resize(static_cast<size_t>(n));
    s_.resize(static_cast<size_t>(n));
    id_to_index_.clear();
    for (int i = 0; i < n; ++i) {
      row_ids_[static_cast<size_t>(i)] = i;
      id_to_index_[i] = i;
      s_[static_cast<size_t>(i)] = fit.scores[i];
    }
    next_row_id_ = n;
    online_.Reset(d_);
    online_.Observe(initial_rows);
    RebindCurveLocked();
    log_ = std::move(log);
    started_ = true;
    // Hold the refresh slot across the version-1 publish: once started_
    // is visible, a concurrent Append can fire a policy refresh, and its
    // version-2 publish must not race (and be overwritten by) ours.
    refresh_in_flight_ = true;
    portable = PortableModelLocked();
  }
  // The bootstrap snapshot makes the Start state itself durable — the
  // initial cold fit is never logged as events, so without this a crash
  // before the first milestone snapshot would be unrecoverable. Its
  // last_seq is 0: recovery replays the entire log after it.
  if (options_.durability.enabled()) {
    RPC_RETURN_IF_ERROR(WriteSnapshotNow());
  }
  Status published = Status::Ok();
  if (service_ != nullptr) {
    published =
        service_->RegisterDataset(dataset_id_, portable, options_.serving);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    refresh_in_flight_ = false;
  }
  cv_.notify_all();
  return published;
}

Result<std::int64_t> StreamingRanker::AppendImpl(const Vector& raw_row,
                                                 bool blocking) {
  Event event;
  event.kind = Event::Kind::kAppend;
  event.row = raw_row;
  event.enqueue_ns = obs::TraceNowNs();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return Status::FailedPrecondition("StreamingRanker: stopped");
    if (!started_) {
      return Status::FailedPrecondition("StreamingRanker: Start first");
    }
    if (follower_) {
      return Status::FailedPrecondition(
          "StreamingRanker: read-only follower (promote first)");
    }
    if (raw_row.size() != d_) {
      return Status::InvalidArgument(
          StrFormat("StreamingRanker: row has %d attributes, expected %d",
                    raw_row.size(), d_));
    }
    // A rejected TryPush burns this id; ids are unique, not dense.
    event.row_id = next_row_id_++;
    ++pending_;
  }
  const std::int64_t id = event.row_id;
  const bool admitted = blocking ? queue_.Push(std::move(event))
                                 : queue_.TryPush(std::move(event));
  if (!admitted) {
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
    cv_.notify_all();
    return Status::FailedPrecondition(
        blocking ? "StreamingRanker: shutting down"
                 : "StreamingRanker: ingestion queue full");
  }
  pool_->Submit([this] { ProcessOneEvent(); });
  return id;
}

Result<std::int64_t> StreamingRanker::Append(const Vector& raw_row) {
  return AppendImpl(raw_row, /*blocking=*/true);
}

Result<std::int64_t> StreamingRanker::TryAppend(const Vector& raw_row) {
  return AppendImpl(raw_row, /*blocking=*/false);
}

Status StreamingRanker::Retire(std::int64_t row_id) {
  Event event;
  event.kind = Event::Kind::kRetire;
  event.row_id = row_id;
  event.enqueue_ns = obs::TraceNowNs();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return Status::FailedPrecondition("StreamingRanker: stopped");
    if (!started_) {
      return Status::FailedPrecondition("StreamingRanker: Start first");
    }
    if (follower_) {
      return Status::FailedPrecondition(
          "StreamingRanker: read-only follower (promote first)");
    }
    ++pending_;
  }
  if (!queue_.Push(std::move(event))) {
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
    cv_.notify_all();
    return Status::FailedPrecondition("StreamingRanker: shutting down");
  }
  pool_->Submit([this] { ProcessOneEvent(); });
  return Status::Ok();
}

Status StreamingRanker::Flush() {
  durable::EventLog* log = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return pending_ == 0 && !refresh_in_flight_; });
    log = log_.get();
  }
  // The durability acknowledgment point: everything applied above is now
  // also on disk. A crash after a successful Flush loses nothing.
  if (log != nullptr) {
    const Status synced = log->Sync();
    if (!synced.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++durable_errors_;
      return synced;
    }
  }
  return Status::Ok();
}

Status StreamingRanker::ForceRefresh() {
  RefreshJob job;
  {
    // Drain and claim the refresh slot in one critical section: a
    // concurrent Append processed between a separate Flush() and this
    // lock could otherwise fire a policy refresh and run concurrently
    // with ours, breaking the at-most-one-refresh / ordered-publish
    // invariant.
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return pending_ == 0 && !refresh_in_flight_; });
    if (stopped_) {
      return Status::FailedPrecondition("StreamingRanker: stopped");
    }
    if (!started_) {
      return Status::FailedPrecondition("StreamingRanker: Start first");
    }
    if (follower_) {
      return Status::FailedPrecondition(
          "StreamingRanker: read-only follower (promote first)");
    }
    Status reason = Status::Ok();
    if (!PrepareRefreshLocked(&job, &reason)) return reason;
  }
  return RunRefresh(&job);
}

StreamingRanker::Snapshot StreamingRanker::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.version = version_;
  snap.model = PortableModelLocked();
  snap.scores = Vector(static_cast<int>(s_.size()));
  for (size_t i = 0; i < s_.size(); ++i) {
    snap.scores[static_cast<int>(i)] = s_[i];
  }
  snap.row_ids = row_ids_;
  snap.live_mins = online_.mins();
  snap.live_maxs = online_.maxs();
  return snap;
}

StreamStats StreamingRanker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StreamStats stats;
  stats.appended = appended_;
  stats.retired = retired_;
  stats.retire_misses = retire_misses_;
  stats.events_processed = events_processed_;
  stats.refreshes = refreshes_;
  stats.skipped_refreshes = skipped_refreshes_;
  stats.failed_refreshes = failed_refreshes_;
  stats.publish_failures = publish_failures_;
  stats.rows = static_cast<std::int64_t>(row_ids_.size());
  stats.version = version_;
  stats.last_drift = last_drift_;
  stats.last_refresh_seconds =
      refresh_seconds_.empty() ? 0.0 : refresh_seconds_.back();
  stats.pending = static_cast<int>(pending_);
  stats.snapshots = snapshots_;
  stats.durable_errors = durable_errors_;
  stats.wal_records = log_ != nullptr ? log_->stats().records : 0;
  stats.cold_refits = cold_refits_;
  stats.cold_rejected = cold_rejected_;
  return stats;
}

std::vector<double> StreamingRanker::RefreshSecondsHistory() const {
  std::lock_guard<std::mutex> lock(mu_);
  return refresh_seconds_;
}

void StreamingRanker::ProcessOneEvent() {
  std::optional<Event> event = queue_.Pop();
  if (!event.has_value()) return;  // closed and drained
  if (event->enqueue_ns != 0) {
    // Ingest lag: time the event sat in the queue before a worker took it
    // (replayed events carry no stamp and are skipped).
    ingest_lag_us_.Record((obs::TraceNowNs() - event->enqueue_ns) / 1000);
  }
  std::shared_ptr<RefreshJob> refresh_job;
  std::shared_ptr<ColdJob> cold_job;
  std::shared_ptr<durable::SnapshotState> snapshot_state;
  bool durable = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ApplyEventLocked(*event);
    ++events_processed_;
    ++events_since_refresh_;
    ++events_since_cold_;
    durable = log_ != nullptr;
    if (started_ && !refresh_in_flight_ && PolicyFiresLocked()) {
      RefreshJob job;
      Status reason = Status::Ok();
      if (PrepareRefreshLocked(&job, &reason)) {
        refresh_job = std::make_shared<RefreshJob>(std::move(job));
      } else {
        ++skipped_refreshes_;
        events_since_refresh_ = 0;  // don't re-fire on every event
      }
    } else if (started_ && !refresh_in_flight_ &&
               options_.drift.cold_refit_period_events > 0 &&
               events_since_cold_ >=
                   options_.drift.cold_refit_period_events) {
      ColdJob job;
      if (PrepareColdLocked(&job)) {
        cold_job = std::make_shared<ColdJob>(std::move(job));
      } else {
        events_since_cold_ = 0;  // don't re-fire on every event
      }
    }
    if (durable && options_.durability.snapshot_every_events > 0) {
      ++events_since_snapshot_;
      if (!snapshot_in_flight_ &&
          events_since_snapshot_ >=
              options_.durability.snapshot_every_events) {
        snapshot_in_flight_ = true;
        events_since_snapshot_ = 0;
        snapshot_state = std::make_shared<durable::SnapshotState>(
            BuildSnapshotStateLocked());
      }
    }
    --pending_;
  }
  cv_.notify_all();
  // Off the lock and off this worker: the aux lane absorbs everything
  // slow (fsync, snapshot encode+write, warm/cold refits), so the
  // ingestion workers only ever apply events.
  if (durable) ScheduleLogFlush();
  if (snapshot_state != nullptr) {
    aux_pool_->Submit(
        [this, snapshot_state] { RunSnapshot(snapshot_state); });
  }
  if (refresh_job != nullptr) {
    aux_pool_->Submit(
        [this, refresh_job] { (void)RunRefresh(refresh_job.get()); });
  }
  if (cold_job != nullptr) {
    aux_pool_->Submit(
        [this, cold_job] { (void)RunColdRefit(cold_job.get()); });
  }
}

void StreamingRanker::ApplyEventLocked(const Event& event) {
  LogEventLocked(event);
  if (event.kind == Event::Kind::kAppend) {
    const double* x = event.row.data().data();
    rows_.insert(rows_.end(), x, x + d_);
    row_ids_.push_back(event.row_id);
    id_to_index_[event.row_id] = static_cast<int>(row_ids_.size()) - 1;
    online_.Observe(x);
    // One projection onto the live curve gives the new row its warm-start
    // s* (and its served score until the next refresh).
    s_.push_back(ProjectRowLocked(x));
    ++appended_;
    append_events_.Increment();  // relaxed atomic: safe under mu_
  } else {
    const auto it = id_to_index_.find(event.row_id);
    if (it == id_to_index_.end()) {
      ++retire_misses_;
      return;
    }
    // Swap-with-last: O(d) instead of shifting the whole store tail and
    // re-indexing every subsequent row under the lock. The store order
    // stays well-defined (a function of the event sequence), which is all
    // the determinism contract needs.
    const int index = it->second;
    const size_t offset = static_cast<size_t>(index) * d_;
    online_.Remove(&rows_[offset]);
    id_to_index_.erase(it);
    const int last = static_cast<int>(row_ids_.size()) - 1;
    if (index != last) {
      const size_t last_offset = static_cast<size_t>(last) * d_;
      std::copy(rows_.begin() + last_offset,
                rows_.begin() + last_offset + d_, rows_.begin() + offset);
      row_ids_[static_cast<size_t>(index)] =
          row_ids_[static_cast<size_t>(last)];
      s_[static_cast<size_t>(index)] = s_[static_cast<size_t>(last)];
      id_to_index_[row_ids_[static_cast<size_t>(index)]] = index;
    }
    rows_.resize(rows_.size() - static_cast<size_t>(d_));
    row_ids_.pop_back();
    s_.pop_back();
    if (online_.bounds_stale()) {
      // The retired row carried a live bound; one exact in-place rescan
      // of the survivors restores it (interior retirements skip this
      // entirely).
      online_.RebuildBounds(rows_.data(),
                            static_cast<std::int64_t>(row_ids_.size()));
      // Log the post-rescan bounds: replay re-derives them from the same
      // rescan, and this record lets recovery cross-check the rebuilt
      // bounds bit-for-bit (a divergence means the log is lying).
      LogBoundsLocked();
    }
    ++retired_;
    retire_events_.Increment();
  }
}

bool StreamingRanker::PolicyFiresLocked() {
  const DriftPolicy& policy = options_.drift;
  last_drift_ = online_.bounds_stale() || online_.count() == 0
                    ? last_drift_
                    : online_.BoundsDrift(model_mins_, model_maxs_);
  if (policy.refit_on_row_delta > 0 &&
      events_since_refresh_ >= policy.refit_on_row_delta) {
    return true;
  }
  if (policy.refit_on_normalizer_drift > 0.0 &&
      last_drift_ >= policy.refit_on_normalizer_drift) {
    return true;
  }
  if (policy.refit_period_events > 0 &&
      events_processed_ % policy.refit_period_events == 0) {
    return true;
  }
  return false;
}

bool StreamingRanker::PrepareRefreshLocked(RefreshJob* job, Status* status) {
  const int n = static_cast<int>(row_ids_.size());
  if (n < 4) {
    *status = Status::FailedPrecondition(
        "StreamingRanker: fewer than 4 live rows, refresh impossible");
    return false;
  }
  Result<data::Normalizer> normalizer = online_.ToNormalizer();
  if (!normalizer.ok()) {
    *status = normalizer.status();
    return false;
  }
  job->rows = StoreMatrixLocked();
  job->row_ids = row_ids_;
  job->seed_scores = Vector(n);
  for (int i = 0; i < n; ++i) {
    job->seed_scores[i] = s_[static_cast<size_t>(i)];
  }
  job->seed_control = control_;
  job->old_mins = model_mins_;
  job->old_maxs = model_maxs_;
  job->normalizer = std::move(normalizer).value();
  refresh_in_flight_ = true;
  events_since_refresh_ = 0;
  return true;
}

Status StreamingRanker::RunRefresh(RefreshJob* job) {
  const auto start = std::chrono::steady_clock::now();
  const obs::TraceId trace = obs::NewTraceId();
  const obs::Span refresh_span(trace, "stream.refresh");
  const std::int64_t t0 = obs::TraceNowNs();
  const data::Normalizer& normalizer = *job->normalizer;
  const Matrix normalized = normalizer.Transform(job->rows);
  core::RpcWarmStartState seed;
  seed.control_points =
      RemapControlPoints(job->seed_control, job->old_mins, job->old_maxs,
                         normalizer.mins(), normalizer.maxs());
  seed.scores = std::move(job->seed_scores);
  const std::int64_t t1 = obs::TraceNowNs();
  refresh_renormalize_us_.Record((t1 - t0) / 1000);
  obs::EmitSpan(trace, "stream.renormalize", t0, t1);
  core::RpcLearnOptions refit_options = warm_options_;
  refit_options.trace_id = trace;  // stage spans nest under this refresh
  const core::RpcLearner learner(refit_options);
  Result<core::RpcFitResult> fit = learner.Refit(normalized, alpha_, seed);
  const std::int64_t t2 = obs::TraceNowNs();
  refresh_refit_us_.Record((t2 - t1) / 1000);
  obs::EmitSpan(trace, "stream.refit", t1, t2);
  if (!fit.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++failed_refreshes_;
    refresh_in_flight_ = false;
    cv_.notify_all();
    return fit.status();
  }

  core::PortableRpcModel portable;
  bool durable = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    control_ = fit->curve.control_points();
    model_mins_ = normalizer.mins();
    model_maxs_ = normalizer.maxs();
    ++version_;
    ++refreshes_;
    // Refresh the warm state of every row the snapshot covered; rows
    // appended while the refit ran keep their append-time projection
    // (they are first-class citizens of the next refresh).
    for (size_t i = 0; i < job->row_ids.size(); ++i) {
      const auto it = id_to_index_.find(job->row_ids[i]);
      if (it == id_to_index_.end()) continue;  // retired mid-refresh
      s_[static_cast<size_t>(it->second)] = fit->scores[static_cast<int>(i)];
    }
    RebindCurveLocked();
    refresh_seconds_.push_back(SecondsSince(start));
    portable = PortableModelLocked();
    // Staged at exactly the point in the event order where the new
    // version took effect, so replay reproduces the same interleaving.
    LogPublishLocked(kPublishWarm, portable, job->row_ids, fit->scores);
    durable = log_ != nullptr;
  }
  if (durable) ScheduleLogFlush();
  // Publish before clearing refresh_in_flight_, so versions reach the
  // serving tier in order (at most one refresh exists at a time).
  Status published = Status::Ok();
  if (service_ != nullptr) {
    published =
        service_->RegisterDataset(dataset_id_, portable, options_.serving);
  }
  const std::int64_t t3 = obs::TraceNowNs();
  refresh_publish_us_.Record((t3 - t2) / 1000);
  obs::EmitSpan(trace, "stream.publish", t2, t3);
  std::shared_ptr<RefreshJob> chained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!published.ok()) ++publish_failures_;
    refresh_in_flight_ = false;
    chained = MaybeChainRefreshLocked();
  }
  cv_.notify_all();
  if (chained != nullptr) {
    aux_pool_->Submit([this, chained] { (void)RunRefresh(chained.get()); });
  }
  return published;
}

std::shared_ptr<StreamingRanker::RefreshJob>
StreamingRanker::MaybeChainRefreshLocked() {
  // Events keep applying while a refresh runs on the aux lane, so the
  // policy may have re-fired mid-refresh with nobody to act on it (the
  // ingestion path only fires when no refresh is in flight). Re-check at
  // completion: without this, a quiet stream leaves the accumulated
  // events unrefreshed until the next arrival. The events_since_refresh_
  // guard makes chains terminate — each one needs at least one event
  // applied since the previous refresh was prepared.
  if (stopped_ || !started_ || events_since_refresh_ <= 0 ||
      !PolicyFiresLocked()) {
    return nullptr;
  }
  RefreshJob job;
  Status reason = Status::Ok();
  if (!PrepareRefreshLocked(&job, &reason)) {
    ++skipped_refreshes_;
    events_since_refresh_ = 0;
    return nullptr;
  }
  return std::make_shared<RefreshJob>(std::move(job));
}

double StreamingRanker::ProjectRowLocked(const double* raw_row) {
  append_normalized_.resize(static_cast<size_t>(d_));
  for (int j = 0; j < d_; ++j) {
    append_normalized_[static_cast<size_t>(j)] =
        (raw_row[j] - model_mins_[j]) / (model_maxs_[j] - model_mins_[j]);
  }
  return append_workspace_.Project(append_normalized_.data()).s;
}

void StreamingRanker::RebindCurveLocked() {
  live_curve_.SetControlPoints(control_);
  append_workspace_.Bind(live_curve_, options_.learner.projection);
}

core::PortableRpcModel StreamingRanker::PortableModelLocked() const {
  core::PortableRpcModel portable;
  portable.alpha = alpha_;
  portable.mins = model_mins_;
  portable.maxs = model_maxs_;
  portable.control_points = control_;
  portable.version = version_;
  return portable;
}

Matrix StreamingRanker::StoreMatrixLocked() const {
  const int n = static_cast<int>(row_ids_.size());
  Matrix out(n, d_);
  if (n > 0) {
    std::copy(rows_.begin(), rows_.end(), out.RowPtr(0));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Background cold refit (publish-if-better).

bool StreamingRanker::PrepareColdLocked(ColdJob* job) {
  const int n = static_cast<int>(row_ids_.size());
  if (n < 4) return false;
  Result<data::Normalizer> normalizer = online_.ToNormalizer();
  if (!normalizer.ok()) return false;
  job->rows = StoreMatrixLocked();
  job->row_ids = row_ids_;
  job->live_control = control_;
  job->old_mins = model_mins_;
  job->old_maxs = model_maxs_;
  job->normalizer = std::move(normalizer).value();
  refresh_in_flight_ = true;  // shares the warm-refresh slot
  events_since_cold_ = 0;
  return true;
}

Status StreamingRanker::RunColdRefit(ColdJob* job) {
  const data::Normalizer& normalizer = *job->normalizer;
  const Matrix normalized = normalizer.Transform(job->rows);
  const core::RpcLearner learner(options_.learner);
  Result<core::RpcFitResult> fit = learner.Fit(normalized, alpha_);
  if (!fit.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++failed_refreshes_;
    refresh_in_flight_ = false;
    cv_.notify_all();
    return fit.status();
  }
  // The live model's objective J on the same rows, in the same (live)
  // coordinates: remap its control points (Eq. 16) and sum the squared
  // projection distances. Apples-to-apples with fit->final_j.
  const Matrix remapped =
      RemapControlPoints(job->live_control, job->old_mins, job->old_maxs,
                         normalizer.mins(), normalizer.maxs());
  curve::BezierCurve live;
  live.SetControlPoints(remapped);
  opt::ProjectionWorkspace workspace;
  workspace.Bind(live, options_.learner.projection);
  double live_j = 0.0;
  for (int i = 0; i < normalized.rows(); ++i) {
    live_j += workspace.Project(normalized.RowPtr(i)).squared_distance;
  }
  if (!(fit->final_j < live_j)) {
    // The cold fit found no better basin than the live (warm-maintained)
    // model; keep serving the incumbent.
    std::lock_guard<std::mutex> lock(mu_);
    ++cold_rejected_;
    refresh_in_flight_ = false;
    cv_.notify_all();
    return Status::Ok();
  }

  core::PortableRpcModel portable;
  bool durable = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    control_ = fit->curve.control_points();
    model_mins_ = normalizer.mins();
    model_maxs_ = normalizer.maxs();
    ++version_;
    ++cold_refits_;
    for (size_t i = 0; i < job->row_ids.size(); ++i) {
      const auto it = id_to_index_.find(job->row_ids[i]);
      if (it == id_to_index_.end()) continue;  // retired mid-fit
      s_[static_cast<size_t>(it->second)] = fit->scores[static_cast<int>(i)];
    }
    RebindCurveLocked();
    portable = PortableModelLocked();
    LogPublishLocked(kPublishCold, portable, job->row_ids, fit->scores);
    durable = log_ != nullptr;
  }
  if (durable) ScheduleLogFlush();
  Status published = Status::Ok();
  if (service_ != nullptr) {
    published =
        service_->RegisterDataset(dataset_id_, portable, options_.serving);
  }
  std::shared_ptr<RefreshJob> chained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!published.ok()) ++publish_failures_;
    refresh_in_flight_ = false;
    chained = MaybeChainRefreshLocked();
  }
  cv_.notify_all();
  if (chained != nullptr) {
    aux_pool_->Submit([this, chained] { (void)RunRefresh(chained.get()); });
  }
  return published;
}

// ---------------------------------------------------------------------------
// Durable tier: record staging, group commit, snapshots, recovery.

void StreamingRanker::LogEventLocked(const Event& event) {
  if (log_ == nullptr || replaying_) return;
  std::string payload;
  durable::PutI64(&payload, event.row_id);
  if (event.kind == Event::Kind::kAppend) {
    for (int j = 0; j < d_; ++j) durable::PutF64(&payload, event.row[j]);
    log_->Append(durable::RecordType::kAppend, payload);
  } else {
    log_->Append(durable::RecordType::kRetire, payload);
  }
}

void StreamingRanker::LogBoundsLocked() {
  if (log_ == nullptr || replaying_) return;
  std::string payload;
  for (int j = 0; j < d_; ++j) {
    durable::PutF64(&payload, online_.mins()[j]);
  }
  for (int j = 0; j < d_; ++j) {
    durable::PutF64(&payload, online_.maxs()[j]);
  }
  log_->Append(durable::RecordType::kBounds, payload);
}

void StreamingRanker::LogPublishLocked(
    std::uint32_t kind, const core::PortableRpcModel& portable,
    const std::vector<std::int64_t>& row_ids, const Vector& scores) {
  if (log_ == nullptr || replaying_) return;
  std::string payload;
  durable::PutU32(&payload, kind);
  durable::PutBytes(&payload, portable.Serialize());
  durable::PutU64(&payload, row_ids.size());
  for (size_t i = 0; i < row_ids.size(); ++i) {
    durable::PutI64(&payload, row_ids[i]);
    durable::PutF64(&payload, scores[static_cast<int>(i)]);
  }
  log_->Append(durable::RecordType::kPublish, payload);
}

void StreamingRanker::ScheduleLogFlush() {
  // One flush task in flight at a time: a burst of events sets the flag
  // once and shares the single write+fsync (group commit). The flag is
  // cleared before Sync, so records staged during the fsync get a fresh
  // flush instead of being stranded.
  if (log_flush_scheduled_.exchange(true)) return;
  aux_pool_->Submit([this] {
    log_flush_scheduled_.store(false);
    const Status synced = log_->Sync();
    if (!synced.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++durable_errors_;
    }
  });
}

durable::SnapshotState StreamingRanker::BuildSnapshotStateLocked() const {
  durable::SnapshotState state;
  state.d = d_;
  state.last_seq = log_ != nullptr ? log_->last_appended_seq() : 0;
  state.next_row_id = next_row_id_;
  state.model_text = PortableModelLocked().Serialize();
  const data::OnlineNormalizer::State norm = online_.ExportState();
  state.norm_count = norm.count;
  state.norm_bounds_stale = norm.bounds_stale;
  state.norm_mins = norm.mins;
  state.norm_maxs = norm.maxs;
  state.norm_mean = norm.mean;
  state.norm_m2 = norm.m2;
  state.row_ids = row_ids_;
  state.rows = rows_;
  state.s = s_;
  state.appended = appended_;
  state.retired = retired_;
  state.retire_misses = retire_misses_;
  state.events_processed = events_processed_;
  state.refreshes = refreshes_;
  state.skipped_refreshes = skipped_refreshes_;
  state.failed_refreshes = failed_refreshes_;
  state.publish_failures = publish_failures_;
  state.events_since_refresh = events_since_refresh_;
  state.events_since_cold = events_since_cold_;
  state.last_drift = last_drift_;
  return state;
}

void StreamingRanker::RunSnapshot(
    std::shared_ptr<durable::SnapshotState> state) {
  const DurabilityOptions& dur = options_.durability;
  Status status =
      durable::WriteSnapshot(dur.dir, *state, dur.injector.get());
  if (status.ok()) {
    status = durable::RemoveOldSnapshots(dur.dir,
                                         std::max(dur.keep_snapshots, 1));
  }
  if (status.ok()) {
    // Truncate only through the OLDEST kept snapshot: if the newest turns
    // out corrupt at recovery, the fallback still has its log suffix.
    const std::vector<std::uint64_t> seqs =
        durable::ListSnapshotSeqs(dur.dir);
    if (!seqs.empty()) {
      const std::uint64_t horizon =
          TruncateHorizon(seqs.front(), log_->last_appended_seq());
      if (horizon > 0) status = log_->TruncateThrough(horizon);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  snapshot_in_flight_ = false;
  if (status.ok()) {
    ++snapshots_;
  } else {
    ++durable_errors_;
  }
}

Status StreamingRanker::WriteSnapshotNow() {
  durable::SnapshotState state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    state = BuildSnapshotStateLocked();
  }
  const DurabilityOptions& dur = options_.durability;
  RPC_RETURN_IF_ERROR(
      durable::WriteSnapshot(dur.dir, state, dur.injector.get()));
  RPC_RETURN_IF_ERROR(durable::RemoveOldSnapshots(
      dur.dir, std::max(dur.keep_snapshots, 1)));
  const std::vector<std::uint64_t> seqs = durable::ListSnapshotSeqs(dur.dir);
  durable::EventLog* log = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    log = log_.get();
  }
  if (log != nullptr && !seqs.empty()) {
    const std::uint64_t horizon =
        TruncateHorizon(seqs.front(), log->last_appended_seq());
    if (horizon > 0) {
      RPC_RETURN_IF_ERROR(log->TruncateThrough(horizon));
    }
  }
  return Status::Ok();
}

std::uint64_t StreamingRanker::TruncateHorizon(
    std::uint64_t oldest_snapshot_seq, std::uint64_t last_appended) const {
  std::uint64_t horizon = oldest_snapshot_seq;
  const std::int64_t keep = options_.durability.wal_keep_events;
  if (keep > 0) {
    // Retain at least the newest `keep` records for standby catch-up —
    // never past the snapshot horizon, so the retention knob only ever
    // keeps MORE log, and a retained snapshot always has its suffix.
    const std::uint64_t kept_from =
        last_appended > static_cast<std::uint64_t>(keep)
            ? last_appended - static_cast<std::uint64_t>(keep)
            : 0;
    horizon = std::min(horizon, kept_from);
  }
  return horizon;
}

Status StreamingRanker::InstallSnapshotStateLocked(
    const durable::SnapshotState& state) {
  RPC_ASSIGN_OR_RETURN(core::PortableRpcModel model,
                       core::PortableRpcModel::Deserialize(state.model_text));
  d_ = state.d;
  alpha_ = model.alpha;
  control_ = model.control_points;
  model_mins_ = model.mins;
  model_maxs_ = model.maxs;
  version_ = model.version;
  next_row_id_ = state.next_row_id;
  rows_ = state.rows;
  row_ids_ = state.row_ids;
  s_ = state.s;
  id_to_index_.clear();
  for (size_t i = 0; i < row_ids_.size(); ++i) {
    id_to_index_[row_ids_[i]] = static_cast<int>(i);
  }
  data::OnlineNormalizer::State norm;
  norm.count = state.norm_count;
  norm.bounds_stale = state.norm_bounds_stale;
  norm.mins = state.norm_mins;
  norm.maxs = state.norm_maxs;
  norm.mean = state.norm_mean;
  norm.m2 = state.norm_m2;
  online_.ImportState(norm);
  appended_ = state.appended;
  retired_ = state.retired;
  retire_misses_ = state.retire_misses;
  events_processed_ = state.events_processed;
  refreshes_ = state.refreshes;
  skipped_refreshes_ = state.skipped_refreshes;
  failed_refreshes_ = state.failed_refreshes;
  publish_failures_ = state.publish_failures;
  events_since_refresh_ = state.events_since_refresh;
  events_since_cold_ = state.events_since_cold;
  last_drift_ = state.last_drift;
  RebindCurveLocked();
  return Status::Ok();
}

Status StreamingRanker::ApplyReplayRecordLocked(
    const durable::ReplayRecord& record) {
  durable::Cursor cursor(record.payload);
  switch (record.type) {
    case durable::RecordType::kAppend: {
      Event event;
      event.kind = Event::Kind::kAppend;
      event.row_id = cursor.I64();
      Vector row(d_);
      for (int j = 0; j < d_; ++j) row[j] = cursor.F64();
      if (!cursor.ok() || cursor.remaining() != 0) break;
      event.row = std::move(row);
      next_row_id_ = std::max(next_row_id_, event.row_id + 1);
      // The same apply path ingestion uses: identical arithmetic on an
      // identical op sequence means bit-identical store, scores and
      // normalizer statistics.
      ApplyEventLocked(event);
      ++events_processed_;
      ++events_since_refresh_;
      ++events_since_cold_;
      return Status::Ok();
    }
    case durable::RecordType::kRetire: {
      Event event;
      event.kind = Event::Kind::kRetire;
      event.row_id = cursor.I64();
      if (!cursor.ok() || cursor.remaining() != 0) break;
      ApplyEventLocked(event);
      ++events_processed_;
      ++events_since_refresh_;
      ++events_since_cold_;
      return Status::Ok();
    }
    case durable::RecordType::kPublish: {
      const std::uint32_t kind = cursor.U32();
      const std::string model_text(cursor.LengthPrefixedBytes());
      const std::uint64_t pairs = cursor.U64();
      if (!cursor.ok() || cursor.remaining() != pairs * 16) break;
      RPC_ASSIGN_OR_RETURN(core::PortableRpcModel model,
                           core::PortableRpcModel::Deserialize(model_text));
      control_ = model.control_points;
      model_mins_ = model.mins;
      model_maxs_ = model.maxs;
      version_ = model.version;
      for (std::uint64_t i = 0; i < pairs; ++i) {
        const std::int64_t row_id = cursor.I64();
        const double score = cursor.F64();
        const auto it = id_to_index_.find(row_id);
        if (it == id_to_index_.end()) continue;  // retired before publish
        s_[static_cast<size_t>(it->second)] = score;
      }
      RebindCurveLocked();
      if (kind == kPublishCold) {
        ++cold_refits_;
      } else {
        ++refreshes_;
      }
      return Status::Ok();
    }
    case durable::RecordType::kBounds: {
      // Integrity cross-check: the bounds the original rescan produced
      // must match the bounds our replayed rescan just produced, bit for
      // bit. A mismatch means the log and the snapshot disagree.
      for (int j = 0; j < 2 * d_; ++j) {
        const double logged = cursor.F64();
        const double live =
            j < d_ ? online_.mins()[j] : online_.maxs()[j - d_];
        if (cursor.ok() && !BitEqual(logged, live)) {
          return Status::DataLoss(StrFormat(
              "recovery: replayed normalizer bounds diverge from logged "
              "bounds at record seq %llu (attribute %d)",
              static_cast<unsigned long long>(record.seq), j % d_));
        }
      }
      if (!cursor.ok() || cursor.remaining() != 0) break;
      return Status::Ok();
    }
  }
  return Status::DataLoss(StrFormat(
      "recovery: malformed record payload at seq %llu (type %d)",
      static_cast<unsigned long long>(record.seq),
      static_cast<int>(record.type)));
}

Status StreamingRanker::Recover() { return RecoverImpl(/*as_follower=*/false); }

Status StreamingRanker::RecoverAsFollower() {
  return RecoverImpl(/*as_follower=*/true);
}

Status StreamingRanker::RecoverImpl(bool as_follower) {
  const DurabilityOptions& dur = options_.durability;
  if (!dur.enabled()) {
    return Status::FailedPrecondition(
        "StreamingRanker: durability not configured (empty dir)");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return Status::FailedPrecondition("StreamingRanker: stopped");
    if (started_) {
      return Status::FailedPrecondition("StreamingRanker: already started");
    }
  }
  RPC_ASSIGN_OR_RETURN(durable::LoadedSnapshot loaded,
                       durable::LoadLatestSnapshot(dur.dir));
  int d = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    RPC_RETURN_IF_ERROR(InstallSnapshotStateLocked(loaded.state));
    replaying_ = true;
    d = d_;
  }
  Result<durable::ReplayResult> replayed = durable::ReplayEventLog(
      dur.dir, d, loaded.state.last_seq,
      [this](const durable::ReplayRecord& record) {
        std::lock_guard<std::mutex> lock(mu_);
        return ApplyReplayRecordLocked(record);
      });
  {
    std::lock_guard<std::mutex> lock(mu_);
    replaying_ = false;
  }
  RPC_RETURN_IF_ERROR(replayed.status());
  if (replayed->tail_truncated) {
    // Cut the torn tail record so the reopened log appends after the last
    // valid one.
    if (::truncate(replayed->tail_segment_path.c_str(),
                   replayed->tail_valid_bytes) != 0) {
      return Status::DataLoss(StrFormat(
          "recovery: cannot truncate torn log tail '%s'",
          replayed->tail_segment_path.c_str()));
    }
  }
  if (as_follower) {
    // A standby stops here: same snapshot, same replay, same state — but
    // it does not take over the log for writing (the replication applier
    // owns the local WAL) and writes no snapshot of its own. It keeps
    // serving the recovered model read-only until promoted.
    core::PortableRpcModel follower_model;
    {
      std::lock_guard<std::mutex> lock(mu_);
      started_ = true;
      follower_ = true;
      last_applied_seq_ = replayed->last_seq;
      follower_model = PortableModelLocked();
      recovery_info_.recovered = true;
      recovery_info_.snapshot_path = loaded.path;
      recovery_info_.snapshot_seq = loaded.state.last_seq;
      recovery_info_.snapshot_fallbacks = loaded.fallbacks;
      recovery_info_.replayed_records = replayed->replayed;
      recovery_info_.tail_truncated = replayed->tail_truncated;
      recovery_info_.recovered_version = version_;
    }
    Status follower_published = Status::Ok();
    if (service_ != nullptr) {
      follower_published = service_->RegisterDataset(
          dataset_id_, follower_model, options_.serving);
    }
    if (!follower_published.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++publish_failures_;
    }
    return follower_published;
  }
  durable::EventLog::Options log_options;
  log_options.segment_bytes = dur.segment_bytes;
  log_options.injector = dur.injector.get();
  RPC_ASSIGN_OR_RETURN(std::unique_ptr<durable::EventLog> log,
                       durable::EventLog::Open(dur.dir, d,
                                               replayed->last_seq + 1,
                                               log_options));
  core::PortableRpcModel portable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    log_ = std::move(log);
    started_ = true;
    refresh_in_flight_ = true;  // hold the slot across the re-publish
    portable = PortableModelLocked();
    recovery_info_.recovered = true;
    recovery_info_.snapshot_path = loaded.path;
    recovery_info_.snapshot_seq = loaded.state.last_seq;
    recovery_info_.snapshot_fallbacks = loaded.fallbacks;
    recovery_info_.replayed_records = replayed->replayed;
    recovery_info_.tail_truncated = replayed->tail_truncated;
    recovery_info_.recovered_version = version_;
  }
  // A fresh post-recovery snapshot bounds the next crash's replay (and
  // absorbs the replayed suffix, so the truncated log can be rotated).
  const Status snapped = WriteSnapshotNow();
  if (!snapped.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++durable_errors_;
  }
  // Re-publish the recovered model version to the serving tier: queries
  // resume against exactly the version that was being served pre-crash.
  Status published = Status::Ok();
  if (service_ != nullptr) {
    published =
        service_->RegisterDataset(dataset_id_, portable, options_.serving);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!published.ok()) ++publish_failures_;
    refresh_in_flight_ = false;
  }
  cv_.notify_all();
  return published;
}

StreamingRanker::RecoveryInfo StreamingRanker::recovery_info() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovery_info_;
}

// ---------------------------------------------------------------------------
// Follower (replication standby) mode.

Status StreamingRanker::FollowerInstallSnapshot(
    const durable::SnapshotState& state) {
  core::PortableRpcModel portable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return Status::FailedPrecondition("StreamingRanker: stopped");
    if (started_ && !follower_) {
      return Status::FailedPrecondition(
          "StreamingRanker: already started as primary");
    }
    RPC_RETURN_IF_ERROR(InstallSnapshotStateLocked(state));
    started_ = true;
    follower_ = true;
    last_applied_seq_ = state.last_seq;
    portable = PortableModelLocked();
  }
  Status published = Status::Ok();
  if (service_ != nullptr) {
    published =
        service_->RegisterDataset(dataset_id_, portable, options_.serving);
  }
  if (!published.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++publish_failures_;
  }
  return published;
}

Status StreamingRanker::ApplyFollowerRecord(
    const durable::ReplayRecord& record) {
  core::PortableRpcModel portable;
  bool republish = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return Status::FailedPrecondition("StreamingRanker: stopped");
    if (!started_ || !follower_) {
      return Status::FailedPrecondition(
          "StreamingRanker: not a follower (install a snapshot or "
          "RecoverAsFollower first)");
    }
    if (record.seq != last_applied_seq_ + 1) {
      return Status::OutOfRange(StrFormat(
          "follower: expected seq %llu, got %llu",
          static_cast<unsigned long long>(last_applied_seq_ + 1),
          static_cast<unsigned long long>(record.seq)));
    }
    const std::uint64_t version_before = version_;
    RPC_RETURN_IF_ERROR(ApplyReplayRecordLocked(record));
    last_applied_seq_ = record.seq;
    if (version_ != version_before) {
      republish = true;
      portable = PortableModelLocked();
    }
  }
  // A replayed publish record changed the served model: push the new
  // version to the serving tier exactly as the primary did at this point
  // in the event order.
  Status published = Status::Ok();
  if (republish && service_ != nullptr) {
    published =
        service_->RegisterDataset(dataset_id_, portable, options_.serving);
    if (!published.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++publish_failures_;
    }
  }
  return published;
}

Status StreamingRanker::PromoteToPrimary() {
  const DurabilityOptions& dur = options_.durability;
  if (!dur.enabled()) {
    return Status::FailedPrecondition(
        "StreamingRanker: durability not configured (empty dir)");
  }
  int d = 0;
  std::uint64_t next_seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return Status::FailedPrecondition("StreamingRanker: stopped");
    if (!started_ || !follower_) {
      return Status::FailedPrecondition("StreamingRanker: not a follower");
    }
    d = d_;
    next_seq = last_applied_seq_ + 1;
  }
  // The standby's local WAL holds exactly the records it has applied
  // (seqs 1..last_applied_seq_, modulo snapshot-covered truncation), so
  // the promoted log continues the very same sequence chain. The caller
  // must have closed the replication sink first — two writers on one
  // segment file would interleave.
  durable::EventLog::Options log_options;
  log_options.segment_bytes = dur.segment_bytes;
  log_options.injector = dur.injector.get();
  RPC_ASSIGN_OR_RETURN(
      std::unique_ptr<durable::EventLog> log,
      durable::EventLog::Open(dur.dir, d, next_seq, log_options));
  core::PortableRpcModel portable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    log_ = std::move(log);
    follower_ = false;
    refresh_in_flight_ = true;  // hold the slot across the promote publish
    portable = PortableModelLocked();
  }
  // A promotion snapshot bounds the next crash's replay and marks the
  // takeover point on disk.
  const Status snapped = WriteSnapshotNow();
  if (!snapped.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++durable_errors_;
  }
  Status published = Status::Ok();
  if (service_ != nullptr) {
    published =
        service_->RegisterDataset(dataset_id_, portable, options_.serving);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!published.ok()) ++publish_failures_;
    refresh_in_flight_ = false;
  }
  cv_.notify_all();
  return published;
}

bool StreamingRanker::is_follower() const {
  std::lock_guard<std::mutex> lock(mu_);
  return follower_;
}

std::uint64_t StreamingRanker::follower_applied_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_applied_seq_;
}

std::uint64_t StreamingRanker::wal_synced_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_ != nullptr ? log_->last_synced_seq() : 0;
}

std::uint64_t StreamingRanker::wal_appended_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_ != nullptr ? log_->last_appended_seq() : 0;
}

}  // namespace rpc::stream
