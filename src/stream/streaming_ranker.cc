#include "stream/streaming_ranker.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/stringutil.h"

namespace rpc::stream {

using linalg::Matrix;
using linalg::Vector;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Matrix RemapControlPoints(const Matrix& control_points,
                          const Vector& old_mins, const Vector& old_maxs,
                          const Vector& new_mins, const Vector& new_maxs) {
  const int d = control_points.rows();
  assert(old_mins.size() == d && old_maxs.size() == d &&
         new_mins.size() == d && new_maxs.size() == d);
  Matrix remapped(d, control_points.cols());
  for (int j = 0; j < d; ++j) {
    const double old_range = old_maxs[j] - old_mins[j];
    const double new_range = new_maxs[j] - new_mins[j];
    assert(old_range > 0.0 && new_range > 0.0);
    for (int r = 0; r < control_points.cols(); ++r) {
      // Normalised-old -> raw -> normalised-new, per coordinate.
      const double raw = old_mins[j] + control_points(j, r) * old_range;
      remapped(j, r) = (raw - new_mins[j]) / new_range;
    }
  }
  return remapped;
}

StreamingRanker::StreamingRanker(serve::RankingService* service,
                                 std::string dataset_id,
                                 StreamingRankerOptions options)
    : dataset_id_(std::move(dataset_id)),
      options_(options),
      service_(service),
      pool_(std::make_unique<ThreadPool>(options.num_threads)),
      queue_(std::max(options.queue_capacity, 1)) {
  // The warm-refresh learner: same geometry/solver configuration as the
  // cold fit, but a single trajectory (the seed pins the basin) running
  // warm-started adaptive-bracket reprojection under a tight iteration
  // cap — the whole point is that a refresh near the live optimum costs a
  // few warm sweeps.
  warm_options_ = options_.learner;
  warm_options_.restarts = 1;
  warm_options_.reprojection = core::ReprojectionMode::kWarmStart;
  warm_options_.reprojection_adaptive_brackets = true;
  warm_options_.max_iterations = std::max(options_.warm_refit_max_iterations, 1);
  warm_options_.record_history = false;
}

StreamingRanker::~StreamingRanker() {
  Stop();
  pool_.reset();  // joins the workers (and any straggler task)
}

void StreamingRanker::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Refuse new events; already-admitted ones drain through their paired
  // Submit tasks (including any refresh the last event fires). The pool
  // itself stays alive until destruction: an Append racing this Stop may
  // have pushed successfully but not yet Submitted, and its late task
  // must land on a live pool (the destructor's WaitTasks catches it).
  queue_.Close();
  pool_->WaitTasks();
  cv_.notify_all();
}

Status StreamingRanker::Start(const Matrix& initial_rows,
                              const order::Orientation& alpha) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return Status::FailedPrecondition("StreamingRanker: stopped");
    if (started_) {
      return Status::FailedPrecondition("StreamingRanker: already started");
    }
  }
  RPC_ASSIGN_OR_RETURN(data::Normalizer normalizer,
                       data::Normalizer::Fit(initial_rows));
  const Matrix normalized = normalizer.Transform(initial_rows);
  const core::RpcLearner learner(options_.learner);
  RPC_ASSIGN_OR_RETURN(core::RpcFitResult fit,
                       learner.Fit(normalized, alpha));

  core::PortableRpcModel portable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    d_ = initial_rows.cols();
    alpha_ = alpha;
    control_ = fit.curve.control_points();
    model_mins_ = normalizer.mins();
    model_maxs_ = normalizer.maxs();
    version_ = 1;
    const int n = initial_rows.rows();
    rows_.assign(initial_rows.RowPtr(0), initial_rows.RowPtr(0) +
                                             static_cast<size_t>(n) * d_);
    row_ids_.resize(static_cast<size_t>(n));
    s_.resize(static_cast<size_t>(n));
    id_to_index_.clear();
    for (int i = 0; i < n; ++i) {
      row_ids_[static_cast<size_t>(i)] = i;
      id_to_index_[i] = i;
      s_[static_cast<size_t>(i)] = fit.scores[i];
    }
    next_row_id_ = n;
    online_.Reset(d_);
    online_.Observe(initial_rows);
    RebindCurveLocked();
    started_ = true;
    // Hold the refresh slot across the version-1 publish: once started_
    // is visible, a concurrent Append can fire a policy refresh, and its
    // version-2 publish must not race (and be overwritten by) ours.
    refresh_in_flight_ = true;
    portable = PortableModelLocked();
  }
  Status published = Status::Ok();
  if (service_ != nullptr) {
    published = service_->RegisterDataset(dataset_id_, portable);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    refresh_in_flight_ = false;
  }
  cv_.notify_all();
  return published;
}

Result<std::int64_t> StreamingRanker::AppendImpl(const Vector& raw_row,
                                                 bool blocking) {
  Event event;
  event.kind = Event::Kind::kAppend;
  event.row = raw_row;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return Status::FailedPrecondition("StreamingRanker: stopped");
    if (!started_) {
      return Status::FailedPrecondition("StreamingRanker: Start first");
    }
    if (raw_row.size() != d_) {
      return Status::InvalidArgument(
          StrFormat("StreamingRanker: row has %d attributes, expected %d",
                    raw_row.size(), d_));
    }
    // A rejected TryPush burns this id; ids are unique, not dense.
    event.row_id = next_row_id_++;
    ++pending_;
  }
  const std::int64_t id = event.row_id;
  const bool admitted = blocking ? queue_.Push(std::move(event))
                                 : queue_.TryPush(std::move(event));
  if (!admitted) {
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
    cv_.notify_all();
    return Status::FailedPrecondition(
        blocking ? "StreamingRanker: shutting down"
                 : "StreamingRanker: ingestion queue full");
  }
  pool_->Submit([this] { ProcessOneEvent(); });
  return id;
}

Result<std::int64_t> StreamingRanker::Append(const Vector& raw_row) {
  return AppendImpl(raw_row, /*blocking=*/true);
}

Result<std::int64_t> StreamingRanker::TryAppend(const Vector& raw_row) {
  return AppendImpl(raw_row, /*blocking=*/false);
}

Status StreamingRanker::Retire(std::int64_t row_id) {
  Event event;
  event.kind = Event::Kind::kRetire;
  event.row_id = row_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return Status::FailedPrecondition("StreamingRanker: stopped");
    if (!started_) {
      return Status::FailedPrecondition("StreamingRanker: Start first");
    }
    ++pending_;
  }
  if (!queue_.Push(std::move(event))) {
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
    cv_.notify_all();
    return Status::FailedPrecondition("StreamingRanker: shutting down");
  }
  pool_->Submit([this] { ProcessOneEvent(); });
  return Status::Ok();
}

Status StreamingRanker::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return pending_ == 0 && !refresh_in_flight_; });
  return Status::Ok();
}

Status StreamingRanker::ForceRefresh() {
  RefreshJob job;
  {
    // Drain and claim the refresh slot in one critical section: a
    // concurrent Append processed between a separate Flush() and this
    // lock could otherwise fire a policy refresh and run concurrently
    // with ours, breaking the at-most-one-refresh / ordered-publish
    // invariant.
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return pending_ == 0 && !refresh_in_flight_; });
    if (stopped_) {
      return Status::FailedPrecondition("StreamingRanker: stopped");
    }
    if (!started_) {
      return Status::FailedPrecondition("StreamingRanker: Start first");
    }
    Status reason = Status::Ok();
    if (!PrepareRefreshLocked(&job, &reason)) return reason;
  }
  return RunRefresh(&job);
}

StreamingRanker::Snapshot StreamingRanker::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.version = version_;
  snap.model = PortableModelLocked();
  snap.scores = Vector(static_cast<int>(s_.size()));
  for (size_t i = 0; i < s_.size(); ++i) {
    snap.scores[static_cast<int>(i)] = s_[i];
  }
  snap.row_ids = row_ids_;
  snap.live_mins = online_.mins();
  snap.live_maxs = online_.maxs();
  return snap;
}

StreamStats StreamingRanker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StreamStats stats;
  stats.appended = appended_;
  stats.retired = retired_;
  stats.retire_misses = retire_misses_;
  stats.events_processed = events_processed_;
  stats.refreshes = refreshes_;
  stats.skipped_refreshes = skipped_refreshes_;
  stats.failed_refreshes = failed_refreshes_;
  stats.publish_failures = publish_failures_;
  stats.rows = static_cast<std::int64_t>(row_ids_.size());
  stats.version = version_;
  stats.last_drift = last_drift_;
  stats.last_refresh_seconds =
      refresh_seconds_.empty() ? 0.0 : refresh_seconds_.back();
  stats.pending = static_cast<int>(pending_);
  return stats;
}

std::vector<double> StreamingRanker::RefreshSecondsHistory() const {
  std::lock_guard<std::mutex> lock(mu_);
  return refresh_seconds_;
}

void StreamingRanker::ProcessOneEvent() {
  std::optional<Event> event = queue_.Pop();
  if (!event.has_value()) return;  // closed and drained
  RefreshJob job;
  bool run_refresh = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ApplyEventLocked(*event);
    ++events_processed_;
    ++events_since_refresh_;
    if (started_ && !refresh_in_flight_ && PolicyFiresLocked()) {
      Status reason = Status::Ok();
      if (PrepareRefreshLocked(&job, &reason)) {
        run_refresh = true;
      } else {
        ++skipped_refreshes_;
        events_since_refresh_ = 0;  // don't re-fire on every event
      }
    }
    --pending_;
  }
  cv_.notify_all();
  // Off the lock: ingestion keeps flowing while the warm refit runs.
  if (run_refresh) (void)RunRefresh(&job);
}

void StreamingRanker::ApplyEventLocked(const Event& event) {
  if (event.kind == Event::Kind::kAppend) {
    const double* x = event.row.data().data();
    rows_.insert(rows_.end(), x, x + d_);
    row_ids_.push_back(event.row_id);
    id_to_index_[event.row_id] = static_cast<int>(row_ids_.size()) - 1;
    online_.Observe(x);
    // One projection onto the live curve gives the new row its warm-start
    // s* (and its served score until the next refresh).
    s_.push_back(ProjectRowLocked(x));
    ++appended_;
  } else {
    const auto it = id_to_index_.find(event.row_id);
    if (it == id_to_index_.end()) {
      ++retire_misses_;
      return;
    }
    // Swap-with-last: O(d) instead of shifting the whole store tail and
    // re-indexing every subsequent row under the lock. The store order
    // stays well-defined (a function of the event sequence), which is all
    // the determinism contract needs.
    const int index = it->second;
    const size_t offset = static_cast<size_t>(index) * d_;
    online_.Remove(&rows_[offset]);
    id_to_index_.erase(it);
    const int last = static_cast<int>(row_ids_.size()) - 1;
    if (index != last) {
      const size_t last_offset = static_cast<size_t>(last) * d_;
      std::copy(rows_.begin() + last_offset,
                rows_.begin() + last_offset + d_, rows_.begin() + offset);
      row_ids_[static_cast<size_t>(index)] =
          row_ids_[static_cast<size_t>(last)];
      s_[static_cast<size_t>(index)] = s_[static_cast<size_t>(last)];
      id_to_index_[row_ids_[static_cast<size_t>(index)]] = index;
    }
    rows_.resize(rows_.size() - static_cast<size_t>(d_));
    row_ids_.pop_back();
    s_.pop_back();
    if (online_.bounds_stale()) {
      // The retired row carried a live bound; one exact in-place rescan
      // of the survivors restores it (interior retirements skip this
      // entirely).
      online_.RebuildBounds(rows_.data(),
                            static_cast<std::int64_t>(row_ids_.size()));
    }
    ++retired_;
  }
}

bool StreamingRanker::PolicyFiresLocked() {
  const DriftPolicy& policy = options_.drift;
  last_drift_ = online_.bounds_stale() || online_.count() == 0
                    ? last_drift_
                    : online_.BoundsDrift(model_mins_, model_maxs_);
  if (policy.refit_on_row_delta > 0 &&
      events_since_refresh_ >= policy.refit_on_row_delta) {
    return true;
  }
  if (policy.refit_on_normalizer_drift > 0.0 &&
      last_drift_ >= policy.refit_on_normalizer_drift) {
    return true;
  }
  if (policy.refit_period_events > 0 &&
      events_processed_ % policy.refit_period_events == 0) {
    return true;
  }
  return false;
}

bool StreamingRanker::PrepareRefreshLocked(RefreshJob* job, Status* status) {
  const int n = static_cast<int>(row_ids_.size());
  if (n < 4) {
    *status = Status::FailedPrecondition(
        "StreamingRanker: fewer than 4 live rows, refresh impossible");
    return false;
  }
  Result<data::Normalizer> normalizer = online_.ToNormalizer();
  if (!normalizer.ok()) {
    *status = normalizer.status();
    return false;
  }
  job->rows = StoreMatrixLocked();
  job->row_ids = row_ids_;
  job->seed_scores = Vector(n);
  for (int i = 0; i < n; ++i) {
    job->seed_scores[i] = s_[static_cast<size_t>(i)];
  }
  job->seed_control = control_;
  job->old_mins = model_mins_;
  job->old_maxs = model_maxs_;
  job->normalizer = std::move(normalizer).value();
  refresh_in_flight_ = true;
  events_since_refresh_ = 0;
  return true;
}

Status StreamingRanker::RunRefresh(RefreshJob* job) {
  const auto start = std::chrono::steady_clock::now();
  const data::Normalizer& normalizer = *job->normalizer;
  const Matrix normalized = normalizer.Transform(job->rows);
  core::RpcWarmStartState seed;
  seed.control_points =
      RemapControlPoints(job->seed_control, job->old_mins, job->old_maxs,
                         normalizer.mins(), normalizer.maxs());
  seed.scores = std::move(job->seed_scores);
  const core::RpcLearner learner(warm_options_);
  Result<core::RpcFitResult> fit = learner.Refit(normalized, alpha_, seed);
  if (!fit.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++failed_refreshes_;
    refresh_in_flight_ = false;
    cv_.notify_all();
    return fit.status();
  }

  core::PortableRpcModel portable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    control_ = fit->curve.control_points();
    model_mins_ = normalizer.mins();
    model_maxs_ = normalizer.maxs();
    ++version_;
    ++refreshes_;
    // Refresh the warm state of every row the snapshot covered; rows
    // appended while the refit ran keep their append-time projection
    // (they are first-class citizens of the next refresh).
    for (size_t i = 0; i < job->row_ids.size(); ++i) {
      const auto it = id_to_index_.find(job->row_ids[i]);
      if (it == id_to_index_.end()) continue;  // retired mid-refresh
      s_[static_cast<size_t>(it->second)] = fit->scores[static_cast<int>(i)];
    }
    RebindCurveLocked();
    refresh_seconds_.push_back(SecondsSince(start));
    portable = PortableModelLocked();
  }
  // Publish before clearing refresh_in_flight_, so versions reach the
  // serving tier in order (at most one refresh exists at a time).
  Status published = Status::Ok();
  if (service_ != nullptr) {
    published = service_->RegisterDataset(dataset_id_, portable);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!published.ok()) ++publish_failures_;
    refresh_in_flight_ = false;
  }
  cv_.notify_all();
  return published;
}

double StreamingRanker::ProjectRowLocked(const double* raw_row) {
  append_normalized_.resize(static_cast<size_t>(d_));
  for (int j = 0; j < d_; ++j) {
    append_normalized_[static_cast<size_t>(j)] =
        (raw_row[j] - model_mins_[j]) / (model_maxs_[j] - model_mins_[j]);
  }
  return append_workspace_.Project(append_normalized_.data()).s;
}

void StreamingRanker::RebindCurveLocked() {
  live_curve_.SetControlPoints(control_);
  append_workspace_.Bind(live_curve_, options_.learner.projection);
}

core::PortableRpcModel StreamingRanker::PortableModelLocked() const {
  core::PortableRpcModel portable;
  portable.alpha = alpha_;
  portable.mins = model_mins_;
  portable.maxs = model_maxs_;
  portable.control_points = control_;
  portable.version = version_;
  return portable;
}

Matrix StreamingRanker::StoreMatrixLocked() const {
  const int n = static_cast<int>(row_ids_.size());
  Matrix out(n, d_);
  if (n > 0) {
    std::copy(rows_.begin(), rows_.end(), out.RowPtr(0));
  }
  return out;
}

}  // namespace rpc::stream
