#ifndef RPC_CURVE_BERNSTEIN_H_
#define RPC_CURVE_BERNSTEIN_H_

#include <cstdint>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace rpc::curve {

/// Degrees above this would overflow the fixed basis buffers used by
/// BernsteinDesign and BernsteinDesignAccumulator; RpcLearner caps the
/// curve degree at 10, comfortably below.
inline constexpr int kMaxBernsteinDegree = 15;

/// Binomial coefficient C(k, r) (Eq. 14). Exact for the small degrees used
/// here; asserts 0 <= r <= k <= 62.
uint64_t Binomial(int k, int r);

/// Bernstein basis polynomial B_r^k(s) = C(k,r) (1-s)^(k-r) s^r (Eq. 13).
double BernsteinBasis(int k, int r, double s);

/// All k+1 Bernstein basis values at s, computed with the numerically stable
/// de Casteljau-style recurrence. The values sum to 1 for s in [0, 1].
linalg::Vector AllBernstein(int k, double s);

/// Allocation-free variant: writes the k+1 values into out[0..k]. The hot
/// per-row loops of BernsteinDesign and BernsteinDesignAccumulator use this
/// with a stack buffer.
void AllBernstein(int k, double s, double* out);

/// Bernstein design matrix G ((k+1) x n) with G(r, i) = B_r^k(s_i). For
/// k = 3 this equals M Z of Eq. (23), generalised so the degree ablation can
/// reuse the same alternating scheme. The learner's streaming update no
/// longer materialises this matrix (see BernsteinDesignAccumulator); it
/// remains the reference the accumulator is validated against and the
/// explicit form offline analyses want.
linalg::Matrix BernsteinDesign(int degree, const linalg::Vector& scores);

/// Streaming accumulator for the Step 5 normal equations: folds one row
/// (s_i, x_i) at a time directly into the (k+1) x (k+1) Gram matrix
/// G = sum_i b(s_i) b(s_i)^T and the d x (k+1) cross matrix
/// C = sum_i x_i b(s_i)^T, where b(s) is the Bernstein basis column. The
/// (k+1) x n design matrix of Eq. (23) is never materialised, shrinking the
/// update stage's working set from O(n k) to O(k^2 + d k).
///
/// Accumulation order per entry matches the dense
/// TimesTranspose(BernsteinDesign, ...) path row for row, so a single
/// accumulator swept over rows 0..n-1 reproduces that path bit for bit.
/// For parallel use, accumulate disjoint fixed row segments into separate
/// accumulators and Merge() them in segment order — the deterministic
/// ordered reduction core::FitWorkspace builds on.
///
/// After Bind(), Reset/AccumulateRow/Merge perform no heap allocation.
class BernsteinDesignAccumulator {
 public:
  BernsteinDesignAccumulator() = default;

  /// Sizes the Gram/cross buffers for `degree` and `dim` attributes and
  /// zeroes them; reallocates only when the shape grows.
  void Bind(int degree, int dim);
  bool bound() const { return degree_ >= 0; }

  /// Zeroes the accumulated sums; shape is kept.
  void Reset();

  /// Folds one row: s in [0, 1], x pointing at `dim` contiguous doubles.
  void AccumulateRow(double s, const double* x);

  /// Entrywise adds another accumulator's sums (same Bind shape).
  void Merge(const BernsteinDesignAccumulator& other);

  int degree() const { return degree_; }
  int dim() const { return dim_; }
  const linalg::Matrix& gram() const { return gram_; }
  const linalg::Matrix& cross() const { return cross_; }

 private:
  int degree_ = -1;
  int dim_ = 0;
  linalg::Matrix gram_;   // (k+1) x (k+1)
  linalg::Matrix cross_;  // d x (k+1)
};

}  // namespace rpc::curve

#endif  // RPC_CURVE_BERNSTEIN_H_
