#ifndef RPC_CURVE_BERNSTEIN_H_
#define RPC_CURVE_BERNSTEIN_H_

#include <cstdint>

#include "linalg/vector.h"

namespace rpc::curve {

/// Binomial coefficient C(k, r) (Eq. 14). Exact for the small degrees used
/// here; asserts 0 <= r <= k <= 62.
uint64_t Binomial(int k, int r);

/// Bernstein basis polynomial B_r^k(s) = C(k,r) (1-s)^(k-r) s^r (Eq. 13).
double BernsteinBasis(int k, int r, double s);

/// All k+1 Bernstein basis values at s, computed with the numerically stable
/// de Casteljau-style recurrence. The values sum to 1 for s in [0, 1].
linalg::Vector AllBernstein(int k, double s);

/// Allocation-free variant: writes the k+1 values into out[0..k]. The hot
/// per-row loop of the learner's design-matrix build uses this with a stack
/// buffer.
void AllBernstein(int k, double s, double* out);

}  // namespace rpc::curve

#endif  // RPC_CURVE_BERNSTEIN_H_
