#include "curve/bernstein.h"

#include <cassert>
#include <cmath>

namespace rpc::curve {

uint64_t Binomial(int k, int r) {
  assert(k >= 0 && r >= 0 && r <= k && k <= 62);
  if (r > k - r) r = k - r;
  uint64_t result = 1;
  for (int i = 1; i <= r; ++i) {
    result = result * static_cast<uint64_t>(k - r + i) /
             static_cast<uint64_t>(i);
  }
  return result;
}

double BernsteinBasis(int k, int r, double s) {
  assert(k >= 0 && r >= 0 && r <= k);
  return static_cast<double>(Binomial(k, r)) * std::pow(1.0 - s, k - r) *
         std::pow(s, r);
}

linalg::Vector AllBernstein(int k, double s) {
  linalg::Vector basis(k + 1);
  AllBernstein(k, s, basis.data().data());
  return basis;
}

void AllBernstein(int k, double s, double* out) {
  out[0] = 1.0;
  const double u = 1.0 - s;
  // Triangular recurrence: at step j the prefix holds degree-j basis values.
  for (int j = 1; j <= k; ++j) {
    double saved = 0.0;
    for (int r = 0; r < j; ++r) {
      const double tmp = out[r];
      out[r] = saved + u * tmp;
      saved = s * tmp;
    }
    out[j] = saved;
  }
}

linalg::Matrix BernsteinDesign(int degree, const linalg::Vector& scores) {
  assert(degree >= 0 && degree <= kMaxBernsteinDegree);
  linalg::Matrix g(degree + 1, scores.size());
  double basis[kMaxBernsteinDegree + 1];
  for (int i = 0; i < scores.size(); ++i) {
    AllBernstein(degree, scores[i], basis);
    for (int r = 0; r <= degree; ++r) g(r, i) = basis[r];
  }
  return g;
}

void BernsteinDesignAccumulator::Bind(int degree, int dim) {
  assert(degree >= 0 && degree <= kMaxBernsteinDegree && dim >= 0);
  degree_ = degree;
  dim_ = dim;
  gram_.Assign(degree + 1, degree + 1);
  cross_.Assign(dim, degree + 1);
}

void BernsteinDesignAccumulator::Reset() {
  assert(bound());
  gram_.Assign(degree_ + 1, degree_ + 1);
  cross_.Assign(dim_, degree_ + 1);
}

void BernsteinDesignAccumulator::AccumulateRow(double s, const double* x) {
  assert(bound());
  double basis[kMaxBernsteinDegree + 1];
  AllBernstein(degree_, s, basis);
  const int cols = degree_ + 1;
  for (int r = 0; r < cols; ++r) {
    const double br = basis[r];
    double* gram_row = gram_.RowPtr(r);
    for (int c = 0; c < cols; ++c) gram_row[c] += br * basis[c];
  }
  for (int j = 0; j < dim_; ++j) {
    const double xj = x[j];
    double* cross_row = cross_.RowPtr(j);
    for (int r = 0; r < cols; ++r) cross_row[r] += xj * basis[r];
  }
}

void BernsteinDesignAccumulator::Merge(const BernsteinDesignAccumulator& other) {
  assert(bound() && other.degree_ == degree_ && other.dim_ == dim_);
  gram_ += other.gram_;
  cross_ += other.cross_;
}

}  // namespace rpc::curve
