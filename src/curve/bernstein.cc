#include "curve/bernstein.h"

#include <cassert>
#include <cmath>

namespace rpc::curve {

uint64_t Binomial(int k, int r) {
  assert(k >= 0 && r >= 0 && r <= k && k <= 62);
  if (r > k - r) r = k - r;
  uint64_t result = 1;
  for (int i = 1; i <= r; ++i) {
    result = result * static_cast<uint64_t>(k - r + i) /
             static_cast<uint64_t>(i);
  }
  return result;
}

double BernsteinBasis(int k, int r, double s) {
  assert(k >= 0 && r >= 0 && r <= k);
  return static_cast<double>(Binomial(k, r)) * std::pow(1.0 - s, k - r) *
         std::pow(s, r);
}

linalg::Vector AllBernstein(int k, double s) {
  linalg::Vector basis(k + 1);
  AllBernstein(k, s, basis.data().data());
  return basis;
}

void AllBernstein(int k, double s, double* out) {
  out[0] = 1.0;
  const double u = 1.0 - s;
  // Triangular recurrence: at step j the prefix holds degree-j basis values.
  for (int j = 1; j <= k; ++j) {
    double saved = 0.0;
    for (int r = 0; r < j; ++r) {
      const double tmp = out[r];
      out[r] = saved + u * tmp;
      saved = s * tmp;
    }
    out[j] = saved;
  }
}

}  // namespace rpc::curve
