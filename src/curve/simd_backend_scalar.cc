// The scalar backend: the reference loops themselves. Always compiled,
// always available — the fallback every other backend must match bit for
// bit and the backend the RPC_SIMD_BACKEND=scalar CI leg forces.
#include "curve/simd_backend.h"
#include "curve/simd_backend_ref.h"

namespace rpc::curve {

namespace {

constexpr SimdOps kScalarOps = {
    SimdBackendKind::kScalar,
    "scalar",
    &internal::RefTileSquaredDistancesFused,
    &internal::RefTileSquaredDistancesSeq,
    &internal::RefPowerSquaredDistanceFused,
    &internal::RefPowerSquaredDistancesMulti,
};

}  // namespace

const SimdOps* ScalarSimdOps() { return &kScalarOps; }

}  // namespace rpc::curve
