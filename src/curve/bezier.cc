#include "curve/bezier.h"

#include <cassert>
#include <cmath>

#include "curve/bernstein.h"

namespace rpc::curve {

using linalg::Matrix;
using linalg::Vector;

BezierCurve::BezierCurve(Matrix control_points)
    : points_(std::move(control_points)) {
  assert(points_.cols() >= 1);
}

Vector BezierCurve::Evaluate(double s) const {
  const int k = degree();
  const int d = dimension();
  // de Casteljau: repeated linear interpolation of the control polygon.
  std::vector<Vector> work;
  work.reserve(static_cast<size_t>(k) + 1);
  for (int r = 0; r <= k; ++r) work.push_back(points_.Column(r));
  for (int level = k; level >= 1; --level) {
    for (int r = 0; r < level; ++r) {
      for (int i = 0; i < d; ++i) {
        work[static_cast<size_t>(r)][i] =
            (1.0 - s) * work[static_cast<size_t>(r)][i] +
            s * work[static_cast<size_t>(r) + 1][i];
      }
    }
  }
  return work[0];
}

Vector BezierCurve::Derivative(double s) const {
  const int k = degree();
  const int d = dimension();
  if (k == 0) return Vector(d, 0.0);
  const Vector basis = AllBernstein(k - 1, s);
  Vector out(d);
  for (int j = 0; j < k; ++j) {
    const double w = k * basis[j];
    for (int i = 0; i < d; ++i) {
      out[i] += w * (points_(i, j + 1) - points_(i, j));
    }
  }
  return out;
}

BezierCurve BezierCurve::DerivativeCurve() const {
  const int k = degree();
  const int d = dimension();
  if (k == 0) return BezierCurve(Matrix(d, 1, 0.0));
  Matrix deriv_points(d, k);
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i < d; ++i) {
      deriv_points(i, j) = k * (points_(i, j + 1) - points_(i, j));
    }
  }
  return BezierCurve(std::move(deriv_points));
}

Matrix BezierCurve::PowerBasisCoefficients() const {
  const int k = degree();
  const int d = dimension();
  // a_j = C(k,j) * sum_{i=0}^{j} (-1)^(j-i) C(j,i) p_i.
  Matrix coeffs(d, k + 1);
  for (int j = 0; j <= k; ++j) {
    const double ckj = static_cast<double>(Binomial(k, j));
    for (int i = 0; i <= j; ++i) {
      const double sign = ((j - i) % 2 == 0) ? 1.0 : -1.0;
      const double w = ckj * sign * static_cast<double>(Binomial(j, i));
      for (int dim = 0; dim < d; ++dim) {
        coeffs(dim, j) += w * points_(dim, i);
      }
    }
  }
  return coeffs;
}

Matrix BezierCurve::Sample(int n) const {
  assert(n >= 1);
  Matrix samples(n + 1, dimension());
  for (int i = 0; i <= n; ++i) {
    const double s = static_cast<double>(i) / n;
    samples.SetRow(i, Evaluate(s));
  }
  return samples;
}

double BezierCurve::SquaredDistanceAt(const Vector& x, double s) const {
  assert(x.size() == dimension());
  const Vector f = Evaluate(s);
  double sum = 0.0;
  for (int i = 0; i < x.size(); ++i) {
    const double diff = x[i] - f[i];
    sum += diff * diff;
  }
  return sum;
}

BezierCurve BezierCurve::AffineTransformed(const Vector& scale,
                                           const Vector& shift) const {
  assert(scale.size() == dimension() && shift.size() == dimension());
  Matrix transformed = points_;
  for (int r = 0; r <= degree(); ++r) {
    for (int i = 0; i < dimension(); ++i) {
      transformed(i, r) = scale[i] * points_(i, r) + shift[i];
    }
  }
  return BezierCurve(std::move(transformed));
}

double BezierCurve::ApproximateLength(int samples) const {
  assert(samples >= 1);
  double length = 0.0;
  Vector prev = Evaluate(0.0);
  for (int i = 1; i <= samples; ++i) {
    const Vector cur = Evaluate(static_cast<double>(i) / samples);
    length += linalg::Distance(prev, cur);
    prev = cur;
  }
  return length;
}

std::pair<BezierCurve, BezierCurve> BezierCurve::Subdivide(double s) const {
  const int k = degree();
  const int d = dimension();
  // Run de Casteljau keeping the first point of each level (left curve)
  // and the last point of each level (right curve, reversed).
  std::vector<Vector> work;
  work.reserve(static_cast<size_t>(k) + 1);
  for (int r = 0; r <= k; ++r) work.push_back(points_.Column(r));
  Matrix left(d, k + 1);
  Matrix right(d, k + 1);
  left.SetColumn(0, work.front());
  right.SetColumn(k, work.back());
  for (int level = 1; level <= k; ++level) {
    for (int r = 0; r + level <= k; ++r) {
      for (int i = 0; i < d; ++i) {
        work[static_cast<size_t>(r)][i] =
            (1.0 - s) * work[static_cast<size_t>(r)][i] +
            s * work[static_cast<size_t>(r) + 1][i];
      }
    }
    left.SetColumn(level, work.front());
    right.SetColumn(k - level, work[static_cast<size_t>(k - level)]);
  }
  return {BezierCurve(std::move(left)), BezierCurve(std::move(right))};
}

BezierCurve BezierCurve::Elevated() const {
  const int k = degree();
  const int d = dimension();
  // q_0 = p_0, q_{k+1} = p_k, q_r = r/(k+1) p_{r-1} + (1 - r/(k+1)) p_r.
  Matrix elevated(d, k + 2);
  elevated.SetColumn(0, points_.Column(0));
  elevated.SetColumn(k + 1, points_.Column(k));
  for (int r = 1; r <= k; ++r) {
    const double w = static_cast<double>(r) / (k + 1);
    for (int i = 0; i < d; ++i) {
      elevated(i, r) = w * points_(i, r - 1) + (1.0 - w) * points_(i, r);
    }
  }
  return BezierCurve(std::move(elevated));
}

std::vector<std::vector<double>> BezierCurve::CoordinateExtrema(
    double tol) const {
  const int d = dimension();
  std::vector<std::vector<double>> extrema(static_cast<size_t>(d));
  const BezierCurve hodograph = DerivativeCurve();
  // f_j' is a degree k-1 polynomial: a grid finer than its root count
  // bracket every sign change; bisection then refines.
  const int grid = std::max(8, 16 * degree());
  for (int j = 0; j < d; ++j) {
    double prev_s = 0.0;
    double prev_v = hodograph.Evaluate(0.0)[j];
    for (int i = 1; i <= grid; ++i) {
      const double s = static_cast<double>(i) / grid;
      const double v = hodograph.Evaluate(s)[j];
      if (v == 0.0) {
        // Exact zero on a grid point (e.g. symmetric bumps peaking at 1/2).
        if (s > tol && s < 1.0 - tol) {
          extrema[static_cast<size_t>(j)].push_back(s);
        }
        prev_s = s;
        prev_v = v;
        continue;
      }
      if ((prev_v < 0.0 && v > 0.0) || (prev_v > 0.0 && v < 0.0)) {
        double lo = prev_s;
        double hi = s;
        double flo = prev_v;
        while (hi - lo > tol) {
          const double mid = 0.5 * (lo + hi);
          const double fmid = hodograph.Evaluate(mid)[j];
          if ((flo < 0.0) == (fmid < 0.0)) {
            lo = mid;
            flo = fmid;
          } else {
            hi = mid;
          }
        }
        const double root = 0.5 * (lo + hi);
        if (root > tol && root < 1.0 - tol) {
          extrema[static_cast<size_t>(j)].push_back(root);
        }
      }
      prev_s = s;
      prev_v = v;
    }
  }
  return extrema;
}

}  // namespace rpc::curve
