#include "curve/bezier.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "curve/bernstein.h"
#include "curve/simd_backend.h"
#include "curve/simd_backend_ref.h"

namespace {
// Dimension at which the per-point path switches from the inlined scalar
// reference to the active backend's vector kernel (see SquaredDistance).
constexpr int kSimdPerPointDim = 16;
}  // namespace

namespace rpc::curve {

using linalg::Matrix;
using linalg::Vector;

BezierCurve::BezierCurve(Matrix control_points)
    : points_(std::move(control_points)) {
  assert(points_.cols() >= 1);
}

void BezierCurve::SetControlPoints(const Matrix& control_points) {
  assert(control_points.cols() >= 1);
  points_ = control_points;
}

Vector BezierCurve::Evaluate(double s) const {
  BezierEvalWorkspace workspace;
  workspace.Bind(*this);
  Vector out(dimension());
  workspace.Evaluate(s, out.data().data());
  return out;
}

Vector BezierCurve::Derivative(double s) const {
  BezierEvalWorkspace workspace;
  workspace.Bind(*this);
  Vector out(dimension());
  workspace.Derivative(s, out.data().data());
  return out;
}

BezierCurve BezierCurve::DerivativeCurve() const {
  BezierCurve out;
  DerivativeCurveInto(&out);
  return out;
}

void BezierCurve::DerivativeCurveInto(BezierCurve* out) const {
  assert(out != this);
  const int k = degree();
  const int d = dimension();
  if (k == 0) {
    out->points_.Assign(d, 1, 0.0);
    return;
  }
  out->points_.Assign(d, k);
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i < d; ++i) {
      out->points_(i, j) = k * (points_(i, j + 1) - points_(i, j));
    }
  }
}

Matrix BezierCurve::PowerBasisCoefficients() const {
  Matrix coeffs;
  PowerBasisCoefficientsInto(&coeffs);
  return coeffs;
}

void BezierCurve::PowerBasisCoefficientsInto(Matrix* out) const {
  const int k = degree();
  const int d = dimension();
  // a_j = C(k,j) * sum_{i=0}^{j} (-1)^(j-i) C(j,i) p_i.
  out->Assign(d, k + 1);
  for (int j = 0; j <= k; ++j) {
    const double ckj = static_cast<double>(Binomial(k, j));
    for (int i = 0; i <= j; ++i) {
      const double sign = ((j - i) % 2 == 0) ? 1.0 : -1.0;
      const double w = ckj * sign * static_cast<double>(Binomial(j, i));
      for (int dim = 0; dim < d; ++dim) {
        (*out)(dim, j) += w * points_(dim, i);
      }
    }
  }
}

Matrix BezierCurve::Sample(int n) const {
  assert(n >= 1);
  BezierEvalWorkspace workspace;
  workspace.Bind(*this);
  Matrix samples(n + 1, dimension());
  for (int i = 0; i <= n; ++i) {
    const double s = static_cast<double>(i) / n;
    workspace.Evaluate(s, samples.RowPtr(i));
  }
  return samples;
}

double BezierCurve::SquaredDistanceAt(const Vector& x, double s) const {
  assert(x.size() == dimension());
  BezierEvalWorkspace workspace;
  workspace.Bind(*this);
  return workspace.SquaredDistance(x.data().data(), s);
}

BezierCurve BezierCurve::AffineTransformed(const Vector& scale,
                                           const Vector& shift) const {
  assert(scale.size() == dimension() && shift.size() == dimension());
  Matrix transformed = points_;
  for (int r = 0; r <= degree(); ++r) {
    for (int i = 0; i < dimension(); ++i) {
      transformed(i, r) = scale[i] * points_(i, r) + shift[i];
    }
  }
  return BezierCurve(std::move(transformed));
}

double BezierCurve::ApproximateLength(int samples) const {
  assert(samples >= 1);
  const int d = dimension();
  BezierEvalWorkspace workspace;
  workspace.Bind(*this);
  std::vector<double> prev(static_cast<size_t>(d));
  std::vector<double> cur(static_cast<size_t>(d));
  workspace.Evaluate(0.0, prev.data());
  double length = 0.0;
  for (int i = 1; i <= samples; ++i) {
    workspace.Evaluate(static_cast<double>(i) / samples, cur.data());
    double seg = 0.0;
    for (int j = 0; j < d; ++j) {
      const double diff = prev[static_cast<size_t>(j)] -
                          cur[static_cast<size_t>(j)];
      seg += diff * diff;
    }
    length += std::sqrt(seg);
    prev.swap(cur);
  }
  return length;
}

std::pair<BezierCurve, BezierCurve> BezierCurve::Subdivide(double s) const {
  const int k = degree();
  const int d = dimension();
  // Run de Casteljau keeping the first point of each level (left curve)
  // and the last point of each level (right curve, reversed).
  std::vector<Vector> work;
  work.reserve(static_cast<size_t>(k) + 1);
  for (int r = 0; r <= k; ++r) work.push_back(points_.Column(r));
  Matrix left(d, k + 1);
  Matrix right(d, k + 1);
  left.SetColumn(0, work.front());
  right.SetColumn(k, work.back());
  for (int level = 1; level <= k; ++level) {
    for (int r = 0; r + level <= k; ++r) {
      for (int i = 0; i < d; ++i) {
        work[static_cast<size_t>(r)][i] =
            (1.0 - s) * work[static_cast<size_t>(r)][i] +
            s * work[static_cast<size_t>(r) + 1][i];
      }
    }
    left.SetColumn(level, work.front());
    right.SetColumn(k - level, work[static_cast<size_t>(k - level)]);
  }
  return {BezierCurve(std::move(left)), BezierCurve(std::move(right))};
}

BezierCurve BezierCurve::Elevated() const {
  const int k = degree();
  const int d = dimension();
  // q_0 = p_0, q_{k+1} = p_k, q_r = r/(k+1) p_{r-1} + (1 - r/(k+1)) p_r.
  Matrix elevated(d, k + 2);
  elevated.SetColumn(0, points_.Column(0));
  elevated.SetColumn(k + 1, points_.Column(k));
  for (int r = 1; r <= k; ++r) {
    const double w = static_cast<double>(r) / (k + 1);
    for (int i = 0; i < d; ++i) {
      elevated(i, r) = w * points_(i, r - 1) + (1.0 - w) * points_(i, r);
    }
  }
  return BezierCurve(std::move(elevated));
}

std::vector<std::vector<double>> BezierCurve::CoordinateExtrema(
    double tol) const {
  const int d = dimension();
  std::vector<std::vector<double>> extrema(static_cast<size_t>(d));
  const BezierCurve hodograph = DerivativeCurve();
  // f_j' is a degree k-1 polynomial: a grid finer than its root count
  // bracket every sign change; bisection then refines.
  const int grid = std::max(8, 16 * degree());
  for (int j = 0; j < d; ++j) {
    double prev_s = 0.0;
    double prev_v = hodograph.Evaluate(0.0)[j];
    for (int i = 1; i <= grid; ++i) {
      const double s = static_cast<double>(i) / grid;
      const double v = hodograph.Evaluate(s)[j];
      if (v == 0.0) {
        // Exact zero on a grid point (e.g. symmetric bumps peaking at 1/2).
        if (s > tol && s < 1.0 - tol) {
          extrema[static_cast<size_t>(j)].push_back(s);
        }
        prev_s = s;
        prev_v = v;
        continue;
      }
      if ((prev_v < 0.0 && v > 0.0) || (prev_v > 0.0 && v < 0.0)) {
        double lo = prev_s;
        double hi = s;
        double flo = prev_v;
        while (hi - lo > tol) {
          const double mid = 0.5 * (lo + hi);
          const double fmid = hodograph.Evaluate(mid)[j];
          if ((flo < 0.0) == (fmid < 0.0)) {
            lo = mid;
            flo = fmid;
          } else {
            hi = mid;
          }
        }
        const double root = 0.5 * (lo + hi);
        if (root > tol && root < 1.0 - tol) {
          extrema[static_cast<size_t>(j)].push_back(root);
        }
      }
      prev_s = s;
      prev_v = v;
    }
  }
  return extrema;
}

void BezierEvalWorkspace::Bind(const BezierCurve& curve) {
  curve_ = &curve;
  simd_ = &ActiveSimd();
  k_ = curve.degree();
  d_ = curve.dimension();
  horner_ = (k_ == 3);
  value_.resize(static_cast<size_t>(d_));
  power_.resize(static_cast<size_t>(k_ + 1) * static_cast<size_t>(d_));
  dpower_.resize(static_cast<size_t>(std::max(k_, 1)) *
                 static_cast<size_t>(d_));
  const Matrix& p = curve.control_points();
  if (horner_) {
    // Power basis of the cubic: a_0 = p0, a_1 = 3(p1 - p0),
    // a_2 = 3(p0 - 2 p1 + p2), a_3 = -p0 + 3 p1 - 3 p2 + p3; f' then has
    // ascending coefficients a_1, 2 a_2, 3 a_3. Stored coefficient-major
    // (all a_0 first, then all a_1, ...) so the Horner loops below read
    // four stride-1 streams — the layout the autovectoriser wants. These
    // expressions are deliberately kept distinct from the general
    // conversion below (3.0 * (p1 - p0) and 3 * p1 - 3 * p0 differ in
    // ulps): cubic results must not move when the general path changes.
    double* a0 = power_.data();
    double* a1 = a0 + d_;
    double* a2 = a1 + d_;
    double* a3 = a2 + d_;
    double* b0 = dpower_.data();
    double* b1 = b0 + d_;
    double* b2 = b1 + d_;
    for (int i = 0; i < d_; ++i) {
      const double p0 = p(i, 0);
      const double p1 = p(i, 1);
      const double p2 = p(i, 2);
      const double p3 = p(i, 3);
      a0[i] = p0;
      a1[i] = 3.0 * (p1 - p0);
      a2[i] = 3.0 * (p0 - 2.0 * p1 + p2);
      a3[i] = -p0 + 3.0 * p1 - 3.0 * p2 + p3;
      b0[i] = a1[i];
      b1[i] = 2.0 * a2[i];
      b2[i] = 3.0 * a3[i];
    }
    return;
  }
  // General degree: a_j = C(k,j) sum_{i<=j} (-1)^(j-i) C(j,i) p_i (the
  // PowerBasisCoefficientsInto formula) in the same coefficient-major
  // layout, so every degree rides the same Horner loops — and, in the
  // batch engine, the same vector kernels — as the cubic fast path.
  std::fill(power_.begin(), power_.end(), 0.0);
  for (int j = 0; j <= k_; ++j) {
    double* aj = power_.data() + static_cast<size_t>(j) * d_;
    const double ckj = static_cast<double>(Binomial(k_, j));
    for (int i = 0; i <= j; ++i) {
      const double sign = ((j - i) % 2 == 0) ? 1.0 : -1.0;
      const double w = ckj * sign * static_cast<double>(Binomial(j, i));
      for (int dim = 0; dim < d_; ++dim) aj[dim] += w * p(dim, i);
    }
  }
  // f' coefficients b_j = (j + 1) a_{j+1}; a degree-0 curve keeps the
  // single zero lane so Derivative stays branch-free.
  std::fill(dpower_.begin(), dpower_.end(), 0.0);
  for (int j = 0; j < k_; ++j) {
    const double* aj1 = power_.data() + static_cast<size_t>(j + 1) * d_;
    double* bj = dpower_.data() + static_cast<size_t>(j) * d_;
    for (int dim = 0; dim < d_; ++dim) {
      bj[dim] = static_cast<double>(j + 1) * aj1[dim];
    }
  }
}

void BezierEvalWorkspace::Evaluate(double s, double* out) {
  assert(bound());
  if (s == 0.0 || s == 1.0) {
    // End points are the end control points exactly (both the de Casteljau
    // and the Horner form would drift by an ulp or two at s = 1).
    const Matrix& p = curve_->control_points();
    const int col = (s == 0.0) ? 0 : k_;
    for (int i = 0; i < d_; ++i) out[i] = p(i, col);
    return;
  }
  if (horner_) {
    // Four stride-1 coefficient streams, no aliasing with out: the loop
    // autovectorises (one Horner per SIMD lane).
    const double* __restrict a0 = power_.data();
    const double* __restrict a1 = a0 + d_;
    const double* __restrict a2 = a1 + d_;
    const double* __restrict a3 = a2 + d_;
    for (int i = 0; i < d_; ++i) {
      out[i] = ((a3[i] * s + a2[i]) * s + a1[i]) * s + a0[i];
    }
    return;
  }
  // General-degree Horner, one descending coefficient pass per level. The
  // per-coordinate operation sequence (start at a_k, then acc = acc * s +
  // a_j) is exactly the sequence SquaredDistanceGeneralInterior runs
  // inline, so a precomputed f (the batch kernels' shared grid values) is
  // bit-identical to the per-point path.
  const double* ak = power_.data() + static_cast<size_t>(k_) * d_;
  for (int i = 0; i < d_; ++i) out[i] = ak[i];
  for (int j = k_ - 1; j >= 0; --j) {
    const double* aj = power_.data() + static_cast<size_t>(j) * d_;
    for (int i = 0; i < d_; ++i) out[i] = out[i] * s + aj[i];
  }
}

void BezierEvalWorkspace::Derivative(double s, double* out) {
  assert(bound());
  if (k_ == 0) {
    for (int i = 0; i < d_; ++i) out[i] = 0.0;
    return;
  }
  if (horner_) {
    const double* __restrict b0 = dpower_.data();
    const double* __restrict b1 = b0 + d_;
    const double* __restrict b2 = b1 + d_;
    for (int i = 0; i < d_; ++i) {
      out[i] = (b2[i] * s + b1[i]) * s + b0[i];
    }
    return;
  }
  // General-degree Horner over the k derivative coefficient lanes.
  const double* bk = dpower_.data() + static_cast<size_t>(k_ - 1) * d_;
  for (int i = 0; i < d_; ++i) out[i] = bk[i];
  for (int j = k_ - 2; j >= 0; --j) {
    const double* bj = dpower_.data() + static_cast<size_t>(j) * d_;
    for (int i = 0; i < d_; ++i) out[i] = out[i] * s + bj[i];
  }
}

double BezierEvalWorkspace::SquaredDistance(const double* x, double s) {
  assert(bound());
  if (s != 0.0 && s != 1.0) {
    // Fused Horner + residual + reduction in the reference ordering: four
    // dim-strided accumulator lanes, each an independent descending Horner
    // chain (for cubics, ((a3 s + a2) s + a1) s + a0 is exactly that
    // pass), combined in the fixed ((lane0 + lane1) + (lane2 + lane3)) +
    // tail order. Every route below produces bit-identical results — the
    // SimdOps contract — so the choice is purely about speed: the
    // backend's vector kernel wins once enough dimension chunks amortise
    // the indirect call (~2x at d = 32), while below that the inlined
    // reference wins — an indirect call per evaluation costs more than
    // four-wide SIMD saves on one or two latency-bound chunks, and the
    // single-row serving path evaluates this dozens of times per query.
    if (d_ >= kSimdPerPointDim) {
      return simd_->power_squared_distance(power_.data(), k_, d_, s, x);
    }
    if (horner_) {
      // The historical inline cubic path, kept verbatim: __restrict
      // coefficient streams and fully unrolled Horner chains. The same
      // operation sequence as the reference below with k = 3, but the
      // explicit form is measurably faster at serving's d = 2..8 (the
      // compiler does not recover the __restrict-quality code from the
      // generic loop).
      const double* __restrict a0 = power_.data();
      const double* __restrict a1 = a0 + d_;
      const double* __restrict a2 = a1 + d_;
      const double* __restrict a3 = a2 + d_;
      double lane0 = 0.0;
      double lane1 = 0.0;
      double lane2 = 0.0;
      double lane3 = 0.0;
      int i = 0;
      for (; i + 4 <= d_; i += 4) {
        const double f0 = ((a3[i] * s + a2[i]) * s + a1[i]) * s + a0[i];
        const double f1 =
            ((a3[i + 1] * s + a2[i + 1]) * s + a1[i + 1]) * s + a0[i + 1];
        const double f2 =
            ((a3[i + 2] * s + a2[i + 2]) * s + a1[i + 2]) * s + a0[i + 2];
        const double f3 =
            ((a3[i + 3] * s + a2[i + 3]) * s + a1[i + 3]) * s + a0[i + 3];
        const double e0 = x[i] - f0;
        const double e1 = x[i + 1] - f1;
        const double e2 = x[i + 2] - f2;
        const double e3 = x[i + 3] - f3;
        lane0 += e0 * e0;
        lane1 += e1 * e1;
        lane2 += e2 * e2;
        lane3 += e3 * e3;
      }
      double tail = 0.0;
      for (; i < d_; ++i) {
        const double f = ((a3[i] * s + a2[i]) * s + a1[i]) * s + a0[i];
        const double diff = x[i] - f;
        tail += diff * diff;
      }
      return ((lane0 + lane1) + (lane2 + lane3)) + tail;
    }
    return internal::RefPowerSquaredDistanceFused(power_.data(), k_, d_, s,
                                                  x);
  }
  Evaluate(s, value_.data());
  double sum = 0.0;
  for (int i = 0; i < d_; ++i) {
    const double diff = x[i] - value_[static_cast<size_t>(i)];
    sum += diff * diff;
  }
  return sum;
}

void BezierEvalWorkspace::SquaredDistancesMulti(const double* xt,
                                                int lane_stride, int count,
                                                const double* s,
                                                double* dist) {
  assert(bound());
  simd_->power_squared_distances_multi(power_.data(), k_, d_, xt, lane_stride,
                                       count, s, dist);
}

}  // namespace rpc::curve
