#include "curve/bezier.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "curve/bernstein.h"

namespace rpc::curve {

using linalg::Matrix;
using linalg::Vector;

BezierCurve::BezierCurve(Matrix control_points)
    : points_(std::move(control_points)) {
  assert(points_.cols() >= 1);
}

void BezierCurve::SetControlPoints(const Matrix& control_points) {
  assert(control_points.cols() >= 1);
  points_ = control_points;
}

Vector BezierCurve::Evaluate(double s) const {
  BezierEvalWorkspace workspace;
  workspace.Bind(*this);
  Vector out(dimension());
  workspace.Evaluate(s, out.data().data());
  return out;
}

Vector BezierCurve::Derivative(double s) const {
  BezierEvalWorkspace workspace;
  workspace.Bind(*this);
  Vector out(dimension());
  workspace.Derivative(s, out.data().data());
  return out;
}

BezierCurve BezierCurve::DerivativeCurve() const {
  BezierCurve out;
  DerivativeCurveInto(&out);
  return out;
}

void BezierCurve::DerivativeCurveInto(BezierCurve* out) const {
  assert(out != this);
  const int k = degree();
  const int d = dimension();
  if (k == 0) {
    out->points_.Assign(d, 1, 0.0);
    return;
  }
  out->points_.Assign(d, k);
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i < d; ++i) {
      out->points_(i, j) = k * (points_(i, j + 1) - points_(i, j));
    }
  }
}

Matrix BezierCurve::PowerBasisCoefficients() const {
  Matrix coeffs;
  PowerBasisCoefficientsInto(&coeffs);
  return coeffs;
}

void BezierCurve::PowerBasisCoefficientsInto(Matrix* out) const {
  const int k = degree();
  const int d = dimension();
  // a_j = C(k,j) * sum_{i=0}^{j} (-1)^(j-i) C(j,i) p_i.
  out->Assign(d, k + 1);
  for (int j = 0; j <= k; ++j) {
    const double ckj = static_cast<double>(Binomial(k, j));
    for (int i = 0; i <= j; ++i) {
      const double sign = ((j - i) % 2 == 0) ? 1.0 : -1.0;
      const double w = ckj * sign * static_cast<double>(Binomial(j, i));
      for (int dim = 0; dim < d; ++dim) {
        (*out)(dim, j) += w * points_(dim, i);
      }
    }
  }
}

Matrix BezierCurve::Sample(int n) const {
  assert(n >= 1);
  BezierEvalWorkspace workspace;
  workspace.Bind(*this);
  Matrix samples(n + 1, dimension());
  for (int i = 0; i <= n; ++i) {
    const double s = static_cast<double>(i) / n;
    workspace.Evaluate(s, samples.RowPtr(i));
  }
  return samples;
}

double BezierCurve::SquaredDistanceAt(const Vector& x, double s) const {
  assert(x.size() == dimension());
  BezierEvalWorkspace workspace;
  workspace.Bind(*this);
  return workspace.SquaredDistance(x.data().data(), s);
}

BezierCurve BezierCurve::AffineTransformed(const Vector& scale,
                                           const Vector& shift) const {
  assert(scale.size() == dimension() && shift.size() == dimension());
  Matrix transformed = points_;
  for (int r = 0; r <= degree(); ++r) {
    for (int i = 0; i < dimension(); ++i) {
      transformed(i, r) = scale[i] * points_(i, r) + shift[i];
    }
  }
  return BezierCurve(std::move(transformed));
}

double BezierCurve::ApproximateLength(int samples) const {
  assert(samples >= 1);
  const int d = dimension();
  BezierEvalWorkspace workspace;
  workspace.Bind(*this);
  std::vector<double> prev(static_cast<size_t>(d));
  std::vector<double> cur(static_cast<size_t>(d));
  workspace.Evaluate(0.0, prev.data());
  double length = 0.0;
  for (int i = 1; i <= samples; ++i) {
    workspace.Evaluate(static_cast<double>(i) / samples, cur.data());
    double seg = 0.0;
    for (int j = 0; j < d; ++j) {
      const double diff = prev[static_cast<size_t>(j)] -
                          cur[static_cast<size_t>(j)];
      seg += diff * diff;
    }
    length += std::sqrt(seg);
    prev.swap(cur);
  }
  return length;
}

std::pair<BezierCurve, BezierCurve> BezierCurve::Subdivide(double s) const {
  const int k = degree();
  const int d = dimension();
  // Run de Casteljau keeping the first point of each level (left curve)
  // and the last point of each level (right curve, reversed).
  std::vector<Vector> work;
  work.reserve(static_cast<size_t>(k) + 1);
  for (int r = 0; r <= k; ++r) work.push_back(points_.Column(r));
  Matrix left(d, k + 1);
  Matrix right(d, k + 1);
  left.SetColumn(0, work.front());
  right.SetColumn(k, work.back());
  for (int level = 1; level <= k; ++level) {
    for (int r = 0; r + level <= k; ++r) {
      for (int i = 0; i < d; ++i) {
        work[static_cast<size_t>(r)][i] =
            (1.0 - s) * work[static_cast<size_t>(r)][i] +
            s * work[static_cast<size_t>(r) + 1][i];
      }
    }
    left.SetColumn(level, work.front());
    right.SetColumn(k - level, work[static_cast<size_t>(k - level)]);
  }
  return {BezierCurve(std::move(left)), BezierCurve(std::move(right))};
}

BezierCurve BezierCurve::Elevated() const {
  const int k = degree();
  const int d = dimension();
  // q_0 = p_0, q_{k+1} = p_k, q_r = r/(k+1) p_{r-1} + (1 - r/(k+1)) p_r.
  Matrix elevated(d, k + 2);
  elevated.SetColumn(0, points_.Column(0));
  elevated.SetColumn(k + 1, points_.Column(k));
  for (int r = 1; r <= k; ++r) {
    const double w = static_cast<double>(r) / (k + 1);
    for (int i = 0; i < d; ++i) {
      elevated(i, r) = w * points_(i, r - 1) + (1.0 - w) * points_(i, r);
    }
  }
  return BezierCurve(std::move(elevated));
}

std::vector<std::vector<double>> BezierCurve::CoordinateExtrema(
    double tol) const {
  const int d = dimension();
  std::vector<std::vector<double>> extrema(static_cast<size_t>(d));
  const BezierCurve hodograph = DerivativeCurve();
  // f_j' is a degree k-1 polynomial: a grid finer than its root count
  // bracket every sign change; bisection then refines.
  const int grid = std::max(8, 16 * degree());
  for (int j = 0; j < d; ++j) {
    double prev_s = 0.0;
    double prev_v = hodograph.Evaluate(0.0)[j];
    for (int i = 1; i <= grid; ++i) {
      const double s = static_cast<double>(i) / grid;
      const double v = hodograph.Evaluate(s)[j];
      if (v == 0.0) {
        // Exact zero on a grid point (e.g. symmetric bumps peaking at 1/2).
        if (s > tol && s < 1.0 - tol) {
          extrema[static_cast<size_t>(j)].push_back(s);
        }
        prev_s = s;
        prev_v = v;
        continue;
      }
      if ((prev_v < 0.0 && v > 0.0) || (prev_v > 0.0 && v < 0.0)) {
        double lo = prev_s;
        double hi = s;
        double flo = prev_v;
        while (hi - lo > tol) {
          const double mid = 0.5 * (lo + hi);
          const double fmid = hodograph.Evaluate(mid)[j];
          if ((flo < 0.0) == (fmid < 0.0)) {
            lo = mid;
            flo = fmid;
          } else {
            hi = mid;
          }
        }
        const double root = 0.5 * (lo + hi);
        if (root > tol && root < 1.0 - tol) {
          extrema[static_cast<size_t>(j)].push_back(root);
        }
      }
      prev_s = s;
      prev_v = v;
    }
  }
  return extrema;
}

void BezierEvalWorkspace::Bind(const BezierCurve& curve) {
  curve_ = &curve;
  k_ = curve.degree();
  d_ = curve.dimension();
  horner_ = (k_ == 3);
  value_.resize(static_cast<size_t>(d_));
  if (horner_) {
    // Power basis of the cubic: a_0 = p0, a_1 = 3(p1 - p0),
    // a_2 = 3(p0 - 2 p1 + p2), a_3 = -p0 + 3 p1 - 3 p2 + p3; f' then has
    // ascending coefficients a_1, 2 a_2, 3 a_3. Stored coefficient-major
    // (all a_0 first, then all a_1, ...) so the Horner loops below read
    // four stride-1 streams — the layout the autovectoriser wants.
    power_.resize(static_cast<size_t>(d_) * 4);
    dpower_.resize(static_cast<size_t>(d_) * 3);
    const Matrix& p = curve.control_points();
    double* a0 = power_.data();
    double* a1 = a0 + d_;
    double* a2 = a1 + d_;
    double* a3 = a2 + d_;
    double* b0 = dpower_.data();
    double* b1 = b0 + d_;
    double* b2 = b1 + d_;
    for (int i = 0; i < d_; ++i) {
      const double p0 = p(i, 0);
      const double p1 = p(i, 1);
      const double p2 = p(i, 2);
      const double p3 = p(i, 3);
      a0[i] = p0;
      a1[i] = 3.0 * (p1 - p0);
      a2[i] = 3.0 * (p0 - 2.0 * p1 + p2);
      a3[i] = -p0 + 3.0 * p1 - 3.0 * p2 + p3;
      b0[i] = a1[i];
      b1[i] = 2.0 * a2[i];
      b2[i] = 3.0 * a3[i];
    }
  } else {
    casteljau_.resize(static_cast<size_t>(k_ + 1) * static_cast<size_t>(d_));
    bern_.resize(static_cast<size_t>(std::max(k_, 1)));
  }
}

void BezierEvalWorkspace::Evaluate(double s, double* out) {
  assert(bound());
  if (s == 0.0 || s == 1.0) {
    // End points are the end control points exactly (both the de Casteljau
    // and the Horner form would drift by an ulp or two at s = 1).
    const Matrix& p = curve_->control_points();
    const int col = (s == 0.0) ? 0 : k_;
    for (int i = 0; i < d_; ++i) out[i] = p(i, col);
    return;
  }
  if (horner_) {
    // Four stride-1 coefficient streams, no aliasing with out: the loop
    // autovectorises (one Horner per SIMD lane).
    const double* __restrict a0 = power_.data();
    const double* __restrict a1 = a0 + d_;
    const double* __restrict a2 = a1 + d_;
    const double* __restrict a3 = a2 + d_;
    for (int i = 0; i < d_; ++i) {
      out[i] = ((a3[i] * s + a2[i]) * s + a1[i]) * s + a0[i];
    }
    return;
  }
  EvaluateGeneral(s, out);
}

void BezierEvalWorkspace::EvaluateGeneral(double s, double* out) {
  // de Casteljau in the preallocated triangle scratch, level r at
  // casteljau_[r * d .. r * d + d).
  const Matrix& p = curve_->control_points();
  for (int r = 0; r <= k_; ++r) {
    double* row = casteljau_.data() + static_cast<size_t>(r) * d_;
    for (int i = 0; i < d_; ++i) row[i] = p(i, r);
  }
  for (int level = k_; level >= 1; --level) {
    for (int r = 0; r < level; ++r) {
      double* lo = casteljau_.data() + static_cast<size_t>(r) * d_;
      const double* hi = lo + d_;
      for (int i = 0; i < d_; ++i) {
        lo[i] = (1.0 - s) * lo[i] + s * hi[i];
      }
    }
  }
  for (int i = 0; i < d_; ++i) out[i] = casteljau_[static_cast<size_t>(i)];
}

void BezierEvalWorkspace::Derivative(double s, double* out) {
  assert(bound());
  if (k_ == 0) {
    for (int i = 0; i < d_; ++i) out[i] = 0.0;
    return;
  }
  if (horner_) {
    const double* __restrict b0 = dpower_.data();
    const double* __restrict b1 = b0 + d_;
    const double* __restrict b2 = b1 + d_;
    for (int i = 0; i < d_; ++i) {
      out[i] = (b2[i] * s + b1[i]) * s + b0[i];
    }
    return;
  }
  // Degree k-1 Bernstein basis by the triangular recurrence, then the
  // forward-difference sum of Eq. 17 — same arithmetic as
  // BezierCurve::Derivative in the seed, minus the allocations.
  bern_[0] = 1.0;
  const double u = 1.0 - s;
  for (int j = 1; j <= k_ - 1; ++j) {
    double saved = 0.0;
    for (int r = 0; r < j; ++r) {
      const double tmp = bern_[static_cast<size_t>(r)];
      bern_[static_cast<size_t>(r)] = saved + u * tmp;
      saved = s * tmp;
    }
    bern_[static_cast<size_t>(j)] = saved;
  }
  for (int i = 0; i < d_; ++i) out[i] = 0.0;
  const Matrix& p = curve_->control_points();
  for (int j = 0; j < k_; ++j) {
    const double w = k_ * bern_[static_cast<size_t>(j)];
    for (int i = 0; i < d_; ++i) {
      out[i] += w * (p(i, j + 1) - p(i, j));
    }
  }
}

double BezierEvalWorkspace::SquaredDistance(const double* x, double s) {
  assert(bound());
  if (horner_ && s != 0.0 && s != 1.0) {
    // Fused Horner + residual + reduction: five stride-1 input streams and
    // four independent accumulators, so the projection hot loop both skips
    // the value_ round-trip and autovectorises (a single running sum would
    // serialise on the floating-point add chain). The lane sums combine in
    // a fixed order, so results are identical across thread counts.
    const double* __restrict a0 = power_.data();
    const double* __restrict a1 = a0 + d_;
    const double* __restrict a2 = a1 + d_;
    const double* __restrict a3 = a2 + d_;
    double lane0 = 0.0;
    double lane1 = 0.0;
    double lane2 = 0.0;
    double lane3 = 0.0;
    int i = 0;
    for (; i + 4 <= d_; i += 4) {
      const double f0 = ((a3[i] * s + a2[i]) * s + a1[i]) * s + a0[i];
      const double f1 =
          ((a3[i + 1] * s + a2[i + 1]) * s + a1[i + 1]) * s + a0[i + 1];
      const double f2 =
          ((a3[i + 2] * s + a2[i + 2]) * s + a1[i + 2]) * s + a0[i + 2];
      const double f3 =
          ((a3[i + 3] * s + a2[i + 3]) * s + a1[i + 3]) * s + a0[i + 3];
      const double e0 = x[i] - f0;
      const double e1 = x[i + 1] - f1;
      const double e2 = x[i + 2] - f2;
      const double e3 = x[i + 3] - f3;
      lane0 += e0 * e0;
      lane1 += e1 * e1;
      lane2 += e2 * e2;
      lane3 += e3 * e3;
    }
    double tail = 0.0;
    for (; i < d_; ++i) {
      const double f = ((a3[i] * s + a2[i]) * s + a1[i]) * s + a0[i];
      const double diff = x[i] - f;
      tail += diff * diff;
    }
    return ((lane0 + lane1) + (lane2 + lane3)) + tail;
  }
  Evaluate(s, value_.data());
  double sum = 0.0;
  for (int i = 0; i < d_; ++i) {
    const double diff = x[i] - value_[static_cast<size_t>(i)];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace rpc::curve
