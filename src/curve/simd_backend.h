#ifndef RPC_CURVE_SIMD_BACKEND_H_
#define RPC_CURVE_SIMD_BACKEND_H_

#include <vector>

namespace rpc::curve {

/// Vector instruction sets the projection grid kernels can run on. Every
/// binary carries kScalar; the others are compiled when the toolchain
/// supports their architecture flags and selected at load when the CPU
/// reports the feature (see ActiveSimd).
enum class SimdBackendKind {
  kScalar = 0,
  kAvx2,
  kAvx512,
  kNeon,
};

/// One backend's kernel table. All kernels operate on a structure-of-arrays
/// tile (opt::RowBlock layout): coordinate j of the block's rows is the
/// contiguous lane tile[j * lane_stride .. j * lane_stride + rows), so the
/// inner loops vectorise across rows — one row per SIMD lane — instead of
/// across dimensions.
///
/// Bit-identity contract: every kernel performs, per row, exactly the
/// floating-point operation sequence of the scalar reference (the orderings
/// BezierEvalWorkspace::SquaredDistance defines), with rows merely placed
/// in parallel lanes. No lane ever holds a partial sum that crosses rows,
/// no backend may reassociate the per-row reduction, and no backend may
/// contract multiply+add into an FMA (the reference never does). Under this
/// contract every backend's output is bit-identical to kScalar's, which is
/// what the cross-backend fuzz test asserts and what keeps the repo's
/// thread-count and serving bit-identity invariants backend-independent.
struct SimdOps {
  SimdBackendKind kind;
  /// Stable lowercase name ("scalar", "avx2", "avx512", "neon"); the
  /// RPC_SIMD_BACKEND override matches against it.
  const char* name;

  /// dist[i] = ||x_i - f||^2 for each row i of the tile, in the *fused
  /// reference ordering*: four dim-strided accumulators (lane p sums the
  /// squared residuals of dimensions p, p+4, p+8, ...) combined as
  /// ((l0 + l1) + (l2 + l3)), plus a sequential tail over the d % 4
  /// trailing dimensions. This is the ordering the scalar per-point hot
  /// path (BezierEvalWorkspace::SquaredDistance at interior s) uses, with
  /// the curve value f precomputed once per grid point instead of
  /// re-evaluated per row.
  void (*tile_squared_distances_fused)(const double* tile, int lane_stride,
                                       int d, int rows, const double* f,
                                       double* dist);

  /// dist[i] = ||x_i - f||^2 in the *sequential reference ordering*: one
  /// accumulator, dimensions in order. This is the ordering the scalar path
  /// uses at the s = 0 / s = 1 endpoints (where f is the exact end control
  /// point rather than a Horner value).
  void (*tile_squared_distances_seq)(const double* tile, int lane_stride,
                                     int d, int rows, const double* f,
                                     double* dist);

  /// ||x - f(s)||^2 for ONE point against the curve in coefficient-major
  /// power basis (`power` row j = the d coefficients of s^j, rows 0..k
  /// contiguous) at interior s — the per-point hot path the refinement
  /// stages (Golden Section, the grid fallback) evaluate dozens of times
  /// per row. Vectorises across *dimensions* rather than rows: the fused
  /// reference ordering's four dim-strided lanes each run an independent
  /// descending Horner (f = a_k; f = f * s + a_j), so a backend may place
  /// the four lanes of a chunk in parallel SIMD lanes — wider vectors gain
  /// nothing here, the lane structure is fixed by the reference — and must
  /// still combine ((l0 + l1) + (l2 + l3)) + tail in that exact order.
  double (*power_squared_distance)(const double* power, int k, int d,
                                   double s, const double* x);

  /// Batched form of power_squared_distance with a *per-lane parameter*:
  /// dist[t] = ||x_t - f(s[t])||^2 for `count` independent points, where
  /// point t's coordinates live in the task-major tile column
  /// xt[j * lane_stride + t]. This is the engine under the block path's
  /// lock-step Golden Section refinement (see
  /// ProjectionWorkspace::RefineGoldenBlock): every task evaluates its own
  /// probe parameter, so the kernel vectorises across *tasks* — per
  /// dimension a broadcast-coefficient descending Horner against the vector
  /// of s values. Per lane the operation sequence must equal
  /// power_squared_distance exactly: dim-strided accumulator classes
  /// combined ((l0 + l1) + (l2 + l3)) + sequential tail, no FMA, so a
  /// task's refinement trajectory is bit-identical whether it runs here or
  /// through the per-point scalar path.
  void (*power_squared_distances_multi)(const double* power, int k, int d,
                                        const double* xt, int lane_stride,
                                        int count, const double* s,
                                        double* dist);
};

/// The backend the process is using: chosen once, on first use, by CPU
/// feature detection (AVX-512 > AVX2 > NEON > scalar among the backends
/// compiled into the binary), overridable with the RPC_SIMD_BACKEND
/// environment variable ("scalar", "avx2", "avx512", "neon"; an
/// unavailable or unknown name falls back to auto-detection with a warning
/// on stderr). Thread-safe.
const SimdOps& ActiveSimd();
SimdBackendKind ActiveSimdKind();

/// Name of the active backend — deployments print this (see
/// examples/serving_demo.cpp) to verify what they are running.
const char* BackendName();

/// Stable name for a backend kind (whether or not it is available).
const char* SimdBackendName(SimdBackendKind kind);

/// Every backend compiled into this binary that the running CPU supports;
/// index 0 is always the scalar backend. The cross-backend equivalence
/// tests and the per-backend bench rows iterate this.
std::vector<const SimdOps*> AvailableSimdBackends();

/// Forces the active backend (benches and tests; the env override covers
/// deployments). Returns false — leaving the active backend unchanged —
/// when the requested backend is not compiled in or not supported by this
/// CPU. Not synchronised against concurrently running projections; call it
/// only between sweeps.
bool SetSimdBackend(SimdBackendKind kind);

}  // namespace rpc::curve

#endif  // RPC_CURVE_SIMD_BACKEND_H_
