#ifndef RPC_CURVE_CUBIC_BEZIER_H_
#define RPC_CURVE_CUBIC_BEZIER_H_

#include "curve/bezier.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace rpc::curve {

/// The constant 4x4 cubic Bernstein-to-power-basis matrix M of Eq. (15):
/// row r of M dotted with z = (1, s, s^2, s^3)^T gives B_r^3(s).
const linalg::Matrix& CubicM();

/// z(s) = (1, s, s^2, s^3)^T.
linalg::Vector CubicZ(double s);

/// The 4 x n matrix Z of Eq. (23) whose columns are z(s_i).
linalg::Matrix CubicZMatrix(const linalg::Vector& scores);

/// Evaluates f(s) = P M z for a d x 4 control-point matrix P. Matches
/// BezierCurve::Evaluate for degree 3; kept as the paper's matrix form and
/// used by the learner's vectorised updates.
linalg::Vector EvaluateCubic(const linalg::Matrix& p, double s);

/// Reconstruction matrix P M Z (d x n): column i is f(s_i).
linalg::Matrix ReconstructCubic(const linalg::Matrix& p,
                                const linalg::Vector& scores);

/// Sum of squared residuals J(P, s) = ||X^T - P M Z||_F^2 where rows of
/// `data` are observations (Eq. 24 up to transposition).
double CubicResidual(const linalg::Matrix& p, const linalg::Matrix& data,
                     const linalg::Vector& scores);

}  // namespace rpc::curve

#endif  // RPC_CURVE_CUBIC_BEZIER_H_
