#ifndef RPC_CURVE_BEZIER_H_
#define RPC_CURVE_BEZIER_H_

#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace rpc::curve {

struct SimdOps;

/// A degree-k Bezier curve in R^d, f(s) = sum_r B_r^k(s) p_r for s in [0,1]
/// (Eq. 12). Control points are stored as a d x (k+1) matrix whose columns
/// are p_0 .. p_k — the same layout as the paper's P in Eq. (15).
class BezierCurve {
 public:
  BezierCurve() = default;
  /// Columns of `control_points` are p_0 .. p_k. Degree is cols - 1.
  explicit BezierCurve(linalg::Matrix control_points);

  int degree() const { return points_.cols() - 1; }
  int dimension() const { return points_.rows(); }
  const linalg::Matrix& control_points() const { return points_; }
  linalg::Vector ControlPoint(int r) const { return points_.Column(r); }

  /// Replaces the control points in place, reusing the existing buffer when
  /// the new d x (k+1) shape fits its capacity — the learner's outer loop
  /// mutates its working curve this way every iteration instead of
  /// constructing a fresh BezierCurve. Any BezierEvalWorkspace or
  /// ProjectionWorkspace bound to this curve holds stale per-curve state
  /// afterwards and must re-Bind before its next evaluation.
  void SetControlPoints(const linalg::Matrix& control_points);

  /// Curve value f(s) via a precomputed power-basis Horner form (see
  /// BezierEvalWorkspace): equally accurate as de Casteljau on the
  /// library's normalised [0,1]^d domain, though it can lose digits to
  /// cancellation for control points of large magnitude or high degree.
  linalg::Vector Evaluate(double s) const;

  /// First derivative f'(s) = k * sum_j B_j^{k-1}(s) (p_{j+1} - p_j)
  /// (Eq. 17).
  linalg::Vector Derivative(double s) const;

  /// The derivative as a lower-degree Bezier curve (hodograph).
  BezierCurve DerivativeCurve() const;

  /// Caller-buffer variant: writes the hodograph into *out, reusing its
  /// buffers (allocation-free once shapes have settled). Same values as
  /// DerivativeCurve, which wraps this. ProjectionWorkspace rebinds its
  /// hodograph state through here every outer iteration.
  void DerivativeCurveInto(BezierCurve* out) const;

  /// Power-basis coefficients: column j of the returned d x (k+1) matrix is
  /// the vector a_j with f(s) = sum_j a_j s^j. Used by the exact quintic
  /// projection (Eq. 20).
  linalg::Matrix PowerBasisCoefficients() const;

  /// Caller-buffer variant of PowerBasisCoefficients (which wraps this);
  /// *out is reshaped in place.
  void PowerBasisCoefficientsInto(linalg::Matrix* out) const;

  /// n+1 evenly spaced samples f(0), f(1/n), ..., f(1), as rows.
  linalg::Matrix Sample(int n) const;

  /// Squared distance ||x - f(s)||^2; helper for projections.
  double SquaredDistanceAt(const linalg::Vector& x, double s) const;

  /// Applies the affine map x -> scale .* x + shift per coordinate; by the
  /// invariance property (Eq. 16) only control points change.
  BezierCurve AffineTransformed(const linalg::Vector& scale,
                                const linalg::Vector& shift) const;

  /// Polyline length of a dense sampling; adequate arc-length proxy.
  double ApproximateLength(int samples = 256) const;

  /// Splits the curve at parameter s into the two sub-curves covering
  /// [0, s] and [s, 1] (de Casteljau subdivision). Each sub-curve has the
  /// same degree and traces exactly the corresponding arc.
  std::pair<BezierCurve, BezierCurve> Subdivide(double s) const;

  /// The same curve expressed with degree k+1 (degree elevation): shape is
  /// unchanged, the control polygon moves toward the curve.
  BezierCurve Elevated() const;

  /// Per-coordinate parameter locations of interior extrema (roots of
  /// f_j'(s) in (0,1)); empty inner vectors mean the coordinate is
  /// monotone on [0,1]. A strictly monotone RPC has no interior extrema in
  /// any coordinate.
  std::vector<std::vector<double>> CoordinateExtrema(
      double tol = 1e-10) const;

 private:
  linalg::Matrix points_;  // d x (k+1)
};

/// Caller-owned scratch buffers for allocation-free curve evaluation.
///
/// `Bind` precomputes the power-basis coefficients of the curve and its
/// derivative — in the coefficient-major layout (all a_0, then all a_1,
/// ...) whose stride-1 streams the vector kernels want — so evaluation is
/// a k-step Horner loop per coordinate for every degree, with the paper's
/// fixed k = 3 additionally riding a fully unrolled cubic fast path. After
/// the Bind, Evaluate / Derivative / SquaredDistance perform no heap
/// allocation — this is the engine under the batch projection hot path,
/// where the per-call `Vector` returns of the BezierCurve methods cost
/// millions of allocations per fit.
///
/// The workspace holds a pointer to the bound curve; the curve must outlive
/// the binding. Rebinding to another curve (or the same curve after its
/// control points changed) is cheap and reuses the buffers.
class BezierEvalWorkspace {
 public:
  BezierEvalWorkspace() = default;

  void Bind(const BezierCurve& curve);
  bool bound() const { return curve_ != nullptr; }
  const BezierCurve* curve() const { return curve_; }

  /// Writes f(s) into out[0..d). Exactly the bound curve's end control
  /// points at s = 0 and s = 1.
  void Evaluate(double s, double* out);
  /// Writes f'(s) into out[0..d).
  void Derivative(double s, double* out);
  /// ||x - f(s)||^2 for a contiguous d-entry x. At interior s this runs
  /// the fused reference ordering — inlined for small d, through the
  /// active SIMD backend's power_squared_distance kernel (captured at
  /// Bind) for large d; both routes are bit-identical, see SimdOps in
  /// simd_backend.h.
  double SquaredDistance(const double* x, double s);
  /// Batched SquaredDistance with a per-task parameter: dist[t] =
  /// ||x_t - f(s[t])|| ^2 for `count` tasks whose coordinates live in the
  /// task-major column xt[j * lane_stride + t]. Every s[t] must be
  /// interior (not exactly 0.0 or 1.0); each lane is bit-identical to the
  /// corresponding SquaredDistance call. This is the lock-step refinement
  /// engine's evaluation primitive (see
  /// SimdOps::power_squared_distances_multi).
  void SquaredDistancesMulti(const double* xt, int lane_stride, int count,
                             const double* s, double* dist);

 private:
  const BezierCurve* curve_ = nullptr;
  const SimdOps* simd_ = nullptr;  // active backend, captured at Bind
  int k_ = -1;
  int d_ = 0;
  bool horner_ = false;         // degree-3 unrolled fast path
  // Coefficient-major (all a_0, then all a_1, ...): the Horner loops read
  // stride-1 streams so they autovectorise.
  std::vector<double> power_;   // (k+1) x d, f coefficients, ascending
  std::vector<double> dpower_;  // max(k,1) x d, f' coefficients, ascending
  std::vector<double> value_;   // d scratch for SquaredDistance
};

}  // namespace rpc::curve

#endif  // RPC_CURVE_BEZIER_H_
