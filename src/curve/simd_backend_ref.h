#ifndef RPC_CURVE_SIMD_BACKEND_REF_H_
#define RPC_CURVE_SIMD_BACKEND_REF_H_

#include <cstddef>

// Scalar reference implementations of the SimdOps kernels, shared by every
// backend translation unit: the scalar backend IS these loops, and the
// vector backends call them for their sub-register row remainders. They
// define the floating-point operation sequence every backend must
// reproduce bit for bit (see SimdOps in simd_backend.h); the per-row
// orderings mirror BezierEvalWorkspace::SquaredDistance exactly.
//
// Header-inline on purpose: each backend TU compiles its own copy under its
// own arch flags. That is safe for bit-identity because the loops contain
// no reduction a vectoriser may reassociate across iterations of a single
// row (each row's sum is a fixed sequential dependence chain) and every TU
// builds with -ffp-contract=off, so no compiler may fuse the explicit
// multiply+add pairs.

namespace rpc::curve::internal {

/// Fused reference ordering: four dim-strided accumulators + sequential
/// tail, combined ((l0 + l1) + (l2 + l3)) + tail.
inline void RefTileSquaredDistancesFused(const double* tile, int lane_stride,
                                         int d, int rows, const double* f,
                                         double* dist) {
  for (int r = 0; r < rows; ++r) {
    double lane0 = 0.0;
    double lane1 = 0.0;
    double lane2 = 0.0;
    double lane3 = 0.0;
    int j = 0;
    for (; j + 4 <= d; j += 4) {
      const double* lane = tile + static_cast<std::size_t>(j) * lane_stride + r;
      const double e0 = lane[0 * lane_stride] - f[j];
      const double e1 = lane[1 * lane_stride] - f[j + 1];
      const double e2 = lane[2 * lane_stride] - f[j + 2];
      const double e3 = lane[3 * lane_stride] - f[j + 3];
      lane0 += e0 * e0;
      lane1 += e1 * e1;
      lane2 += e2 * e2;
      lane3 += e3 * e3;
    }
    double tail = 0.0;
    for (; j < d; ++j) {
      const double e = tile[static_cast<std::size_t>(j) * lane_stride + r] - f[j];
      tail += e * e;
    }
    dist[r] = ((lane0 + lane1) + (lane2 + lane3)) + tail;
  }
}

/// Sequential reference ordering: one accumulator, dimensions in order.
inline void RefTileSquaredDistancesSeq(const double* tile, int lane_stride,
                                       int d, int rows, const double* f,
                                       double* dist) {
  for (int r = 0; r < rows; ++r) {
    double sum = 0.0;
    for (int j = 0; j < d; ++j) {
      const double e = tile[static_cast<std::size_t>(j) * lane_stride + r] - f[j];
      sum += e * e;
    }
    dist[r] = sum;
  }
}

/// Single-point squared distance against coefficient-major power-basis
/// coefficients (row j of `power` = the d coefficients of s^j), fused
/// reference ordering: four dim-strided lanes each running a descending
/// Horner, combined ((l0 + l1) + (l2 + l3)) + tail. This is verbatim the
/// ordering BezierEvalWorkspace::SquaredDistance historically ran inline
/// at interior s (for cubics, ((a3 s + a2) s + a1) s + a0 IS this
/// descending pass), so routing the per-point path through a backend's
/// implementation of it changes no result bit.
inline double RefPowerSquaredDistanceFused(const double* power, int k, int d,
                                           double s, const double* x) {
  const std::size_t stride = static_cast<std::size_t>(d);
  const double* top = power + static_cast<std::size_t>(k) * stride;
  double lane0 = 0.0;
  double lane1 = 0.0;
  double lane2 = 0.0;
  double lane3 = 0.0;
  int i = 0;
  for (; i + 4 <= d; i += 4) {
    double f0 = top[i];
    double f1 = top[i + 1];
    double f2 = top[i + 2];
    double f3 = top[i + 3];
    for (int j = k - 1; j >= 0; --j) {
      const double* aj = power + static_cast<std::size_t>(j) * stride;
      f0 = f0 * s + aj[i];
      f1 = f1 * s + aj[i + 1];
      f2 = f2 * s + aj[i + 2];
      f3 = f3 * s + aj[i + 3];
    }
    const double e0 = x[i] - f0;
    const double e1 = x[i + 1] - f1;
    const double e2 = x[i + 2] - f2;
    const double e3 = x[i + 3] - f3;
    lane0 += e0 * e0;
    lane1 += e1 * e1;
    lane2 += e2 * e2;
    lane3 += e3 * e3;
  }
  double tail = 0.0;
  for (; i < d; ++i) {
    double f = top[i];
    for (int j = k - 1; j >= 0; --j) {
      f = f * s + power[static_cast<std::size_t>(j) * stride + i];
    }
    const double diff = x[i] - f;
    tail += diff * diff;
  }
  return ((lane0 + lane1) + (lane2 + lane3)) + tail;
}

/// Batched per-lane-parameter squared distances: task t's coordinates in
/// the task-major column xt[j * lane_stride + t], its own parameter s[t].
/// Per task this is RefPowerSquaredDistanceFused verbatim — same lane
/// classes, same descending Horner, same combine — only the x loads are
/// strided. Vector backends run the same sequence with tasks in parallel
/// lanes and broadcast coefficients.
inline void RefPowerSquaredDistancesMulti(const double* power, int k, int d,
                                          const double* xt, int lane_stride,
                                          int count, const double* s,
                                          double* dist) {
  const std::size_t stride = static_cast<std::size_t>(d);
  const double* top = power + static_cast<std::size_t>(k) * stride;
  for (int t = 0; t < count; ++t) {
    const double st = s[t];
    double lane0 = 0.0;
    double lane1 = 0.0;
    double lane2 = 0.0;
    double lane3 = 0.0;
    int i = 0;
    for (; i + 4 <= d; i += 4) {
      double f0 = top[i];
      double f1 = top[i + 1];
      double f2 = top[i + 2];
      double f3 = top[i + 3];
      for (int j = k - 1; j >= 0; --j) {
        const double* aj = power + static_cast<std::size_t>(j) * stride;
        f0 = f0 * st + aj[i];
        f1 = f1 * st + aj[i + 1];
        f2 = f2 * st + aj[i + 2];
        f3 = f3 * st + aj[i + 3];
      }
      const double* xr = xt + static_cast<std::size_t>(i) * lane_stride + t;
      const double e0 = xr[0 * static_cast<std::size_t>(lane_stride)] - f0;
      const double e1 = xr[1 * static_cast<std::size_t>(lane_stride)] - f1;
      const double e2 = xr[2 * static_cast<std::size_t>(lane_stride)] - f2;
      const double e3 = xr[3 * static_cast<std::size_t>(lane_stride)] - f3;
      lane0 += e0 * e0;
      lane1 += e1 * e1;
      lane2 += e2 * e2;
      lane3 += e3 * e3;
    }
    double tail = 0.0;
    for (; i < d; ++i) {
      double f = top[i];
      for (int j = k - 1; j >= 0; --j) {
        f = f * st + power[static_cast<std::size_t>(j) * stride + i];
      }
      const double diff = xt[static_cast<std::size_t>(i) * lane_stride + t] - f;
      tail += diff * diff;
    }
    dist[t] = ((lane0 + lane1) + (lane2 + lane3)) + tail;
  }
}

}  // namespace rpc::curve::internal

#endif  // RPC_CURVE_SIMD_BACKEND_REF_H_
