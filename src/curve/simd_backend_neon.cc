// NEON backend (AArch64): 2 rows per float64x2_t lane-for-lane with the
// scalar reference. Same contract as the AVX2 backend: explicit mul/add
// intrinsics only (vmlaq_f64 would fuse on some cores), -ffp-contract=off,
// the odd-row remainder runs the shared scalar reference loops.
#include "curve/simd_backend.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "curve/simd_backend_ref.h"

namespace rpc::curve {
namespace {

void TileSquaredDistancesFused(const double* tile, int lane_stride, int d,
                               int rows, const double* f, double* dist) {
  int r = 0;
  for (; r + 2 <= rows; r += 2) {
    const double* base = tile + r;
    float64x2_t lane0 = vdupq_n_f64(0.0);
    float64x2_t lane1 = vdupq_n_f64(0.0);
    float64x2_t lane2 = vdupq_n_f64(0.0);
    float64x2_t lane3 = vdupq_n_f64(0.0);
    float64x2_t tail = vdupq_n_f64(0.0);
    int j = 0;
    for (; j + 4 <= d; j += 4) {
      const double* lane = base + static_cast<size_t>(j) * lane_stride;
      const float64x2_t e0 =
          vsubq_f64(vld1q_f64(lane), vdupq_n_f64(f[j]));
      const float64x2_t e1 =
          vsubq_f64(vld1q_f64(lane + 1 * static_cast<size_t>(lane_stride)),
                    vdupq_n_f64(f[j + 1]));
      const float64x2_t e2 =
          vsubq_f64(vld1q_f64(lane + 2 * static_cast<size_t>(lane_stride)),
                    vdupq_n_f64(f[j + 2]));
      const float64x2_t e3 =
          vsubq_f64(vld1q_f64(lane + 3 * static_cast<size_t>(lane_stride)),
                    vdupq_n_f64(f[j + 3]));
      lane0 = vaddq_f64(lane0, vmulq_f64(e0, e0));
      lane1 = vaddq_f64(lane1, vmulq_f64(e1, e1));
      lane2 = vaddq_f64(lane2, vmulq_f64(e2, e2));
      lane3 = vaddq_f64(lane3, vmulq_f64(e3, e3));
    }
    for (; j < d; ++j) {
      const float64x2_t e =
          vsubq_f64(vld1q_f64(base + static_cast<size_t>(j) * lane_stride),
                    vdupq_n_f64(f[j]));
      tail = vaddq_f64(tail, vmulq_f64(e, e));
    }
    const float64x2_t res = vaddq_f64(
        vaddq_f64(vaddq_f64(lane0, lane1), vaddq_f64(lane2, lane3)), tail);
    vst1q_f64(dist + r, res);
  }
  if (r < rows) {
    internal::RefTileSquaredDistancesFused(tile + r, lane_stride, d, rows - r,
                                           f, dist + r);
  }
}

void TileSquaredDistancesSeq(const double* tile, int lane_stride, int d,
                             int rows, const double* f, double* dist) {
  int r = 0;
  for (; r + 2 <= rows; r += 2) {
    const double* base = tile + r;
    float64x2_t sum = vdupq_n_f64(0.0);
    for (int j = 0; j < d; ++j) {
      const float64x2_t e =
          vsubq_f64(vld1q_f64(base + static_cast<size_t>(j) * lane_stride),
                    vdupq_n_f64(f[j]));
      sum = vaddq_f64(sum, vmulq_f64(e, e));
    }
    vst1q_f64(dist + r, sum);
  }
  if (r < rows) {
    internal::RefTileSquaredDistancesSeq(tile + r, lane_stride, d, rows - r,
                                         f, dist + r);
  }
}

// Per-point refinement kernel: the reference's four accumulator lanes
// split across two float64x2_t (lanes 0-1 and 2-3), each running its
// Horner chain with explicit mul/add. The combine extracts all four lanes
// and adds them in the reference's fixed order.
double PowerSquaredDistance(const double* power, int k, int d, double s,
                            const double* x) {
  const float64x2_t sv = vdupq_n_f64(s);
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  const double* top = power + static_cast<size_t>(k) * d;
  int i = 0;
  for (; i + 4 <= d; i += 4) {
    float64x2_t f01 = vld1q_f64(top + i);
    float64x2_t f23 = vld1q_f64(top + i + 2);
    for (int j = k - 1; j >= 0; --j) {
      const double* aj = power + static_cast<size_t>(j) * d;
      f01 = vaddq_f64(vmulq_f64(f01, sv), vld1q_f64(aj + i));
      f23 = vaddq_f64(vmulq_f64(f23, sv), vld1q_f64(aj + i + 2));
    }
    const float64x2_t e01 = vsubq_f64(vld1q_f64(x + i), f01);
    const float64x2_t e23 = vsubq_f64(vld1q_f64(x + i + 2), f23);
    acc01 = vaddq_f64(acc01, vmulq_f64(e01, e01));
    acc23 = vaddq_f64(acc23, vmulq_f64(e23, e23));
  }
  double tail = 0.0;
  for (; i < d; ++i) {
    double f = top[i];
    for (int j = k - 1; j >= 0; --j) {
      f = f * s + power[static_cast<size_t>(j) * d + i];
    }
    const double diff = x[i] - f;
    tail += diff * diff;
  }
  const double lane0 = vgetq_lane_f64(acc01, 0);
  const double lane1 = vgetq_lane_f64(acc01, 1);
  const double lane2 = vgetq_lane_f64(acc23, 0);
  const double lane3 = vgetq_lane_f64(acc23, 1);
  return ((lane0 + lane1) + (lane2 + lane3)) + tail;
}

// Batched refinement kernel: two tasks per float64x2_t, lane t holding
// task t's probe parameter. Same contract as the AVX2 version (see
// simd_backend_avx2.cc): broadcast coefficients, per-lane descending
// Horner, vector-wide accumulator classes, reference combine order; the
// odd-task remainder runs the shared reference.
void PowerSquaredDistancesMulti(const double* power, int k, int d,
                                const double* xt, int lane_stride,
                                int count, const double* s, double* dist) {
  const double* top = power + static_cast<size_t>(k) * d;
  int t = 0;
  for (; t + 2 <= count; t += 2) {
    const float64x2_t sv = vld1q_f64(s + t);
    float64x2_t acc0 = vdupq_n_f64(0.0);
    float64x2_t acc1 = vdupq_n_f64(0.0);
    float64x2_t acc2 = vdupq_n_f64(0.0);
    float64x2_t acc3 = vdupq_n_f64(0.0);
    float64x2_t tail = vdupq_n_f64(0.0);
    const double* xbase = xt + t;
    int i = 0;
    for (; i + 4 <= d; i += 4) {
      float64x2_t f0 = vdupq_n_f64(top[i]);
      float64x2_t f1 = vdupq_n_f64(top[i + 1]);
      float64x2_t f2 = vdupq_n_f64(top[i + 2]);
      float64x2_t f3 = vdupq_n_f64(top[i + 3]);
      for (int j = k - 1; j >= 0; --j) {
        const double* aj = power + static_cast<size_t>(j) * d;
        f0 = vaddq_f64(vmulq_f64(f0, sv), vdupq_n_f64(aj[i]));
        f1 = vaddq_f64(vmulq_f64(f1, sv), vdupq_n_f64(aj[i + 1]));
        f2 = vaddq_f64(vmulq_f64(f2, sv), vdupq_n_f64(aj[i + 2]));
        f3 = vaddq_f64(vmulq_f64(f3, sv), vdupq_n_f64(aj[i + 3]));
      }
      const double* xr = xbase + static_cast<size_t>(i) * lane_stride;
      const float64x2_t e0 = vsubq_f64(vld1q_f64(xr), f0);
      const float64x2_t e1 = vsubq_f64(
          vld1q_f64(xr + 1 * static_cast<size_t>(lane_stride)), f1);
      const float64x2_t e2 = vsubq_f64(
          vld1q_f64(xr + 2 * static_cast<size_t>(lane_stride)), f2);
      const float64x2_t e3 = vsubq_f64(
          vld1q_f64(xr + 3 * static_cast<size_t>(lane_stride)), f3);
      acc0 = vaddq_f64(acc0, vmulq_f64(e0, e0));
      acc1 = vaddq_f64(acc1, vmulq_f64(e1, e1));
      acc2 = vaddq_f64(acc2, vmulq_f64(e2, e2));
      acc3 = vaddq_f64(acc3, vmulq_f64(e3, e3));
    }
    for (; i < d; ++i) {
      float64x2_t f = vdupq_n_f64(top[i]);
      for (int j = k - 1; j >= 0; --j) {
        f = vaddq_f64(vmulq_f64(f, sv),
                      vdupq_n_f64(power[static_cast<size_t>(j) * d + i]));
      }
      const float64x2_t e = vsubq_f64(
          vld1q_f64(xbase + static_cast<size_t>(i) * lane_stride), f);
      tail = vaddq_f64(tail, vmulq_f64(e, e));
    }
    const float64x2_t res = vaddq_f64(
        vaddq_f64(vaddq_f64(acc0, acc1), vaddq_f64(acc2, acc3)), tail);
    vst1q_f64(dist + t, res);
  }
  if (t < count) {
    internal::RefPowerSquaredDistancesMulti(power, k, d, xt + t, lane_stride,
                                            count - t, s + t, dist + t);
  }
}

constexpr SimdOps kNeonOps = {
    SimdBackendKind::kNeon,
    "neon",
    &TileSquaredDistancesFused,
    &TileSquaredDistancesSeq,
    &PowerSquaredDistance,
    &PowerSquaredDistancesMulti,
};

}  // namespace

const SimdOps* NeonSimdOps() { return &kNeonOps; }

}  // namespace rpc::curve

#else  // !defined(__aarch64__)

namespace rpc::curve {
const SimdOps* NeonSimdOps() { return nullptr; }
}  // namespace rpc::curve

#endif
