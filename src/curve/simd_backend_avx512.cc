// AVX-512F backend: 8 rows per __m512d lane-for-lane with the scalar
// reference. Same contract and structure as the AVX2 backend (see
// simd_backend_avx2.cc): explicit mul/add only, -ffp-contract=off, the
// sub-register row remainder runs the shared scalar reference loops.
#include "curve/simd_backend.h"

#if defined(__AVX512F__)

#include <immintrin.h>

#include "curve/simd_backend_ref.h"

namespace rpc::curve {
namespace {

void TileSquaredDistancesFused(const double* tile, int lane_stride, int d,
                               int rows, const double* f, double* dist) {
  int r = 0;
  for (; r + 8 <= rows; r += 8) {
    const double* base = tile + r;
    __m512d lane0 = _mm512_setzero_pd();
    __m512d lane1 = _mm512_setzero_pd();
    __m512d lane2 = _mm512_setzero_pd();
    __m512d lane3 = _mm512_setzero_pd();
    __m512d tail = _mm512_setzero_pd();
    int j = 0;
    for (; j + 4 <= d; j += 4) {
      const double* lane = base + static_cast<size_t>(j) * lane_stride;
      const __m512d e0 = _mm512_sub_pd(_mm512_loadu_pd(lane),
                                       _mm512_set1_pd(f[j]));
      const __m512d e1 = _mm512_sub_pd(
          _mm512_loadu_pd(lane + 1 * static_cast<size_t>(lane_stride)),
          _mm512_set1_pd(f[j + 1]));
      const __m512d e2 = _mm512_sub_pd(
          _mm512_loadu_pd(lane + 2 * static_cast<size_t>(lane_stride)),
          _mm512_set1_pd(f[j + 2]));
      const __m512d e3 = _mm512_sub_pd(
          _mm512_loadu_pd(lane + 3 * static_cast<size_t>(lane_stride)),
          _mm512_set1_pd(f[j + 3]));
      lane0 = _mm512_add_pd(lane0, _mm512_mul_pd(e0, e0));
      lane1 = _mm512_add_pd(lane1, _mm512_mul_pd(e1, e1));
      lane2 = _mm512_add_pd(lane2, _mm512_mul_pd(e2, e2));
      lane3 = _mm512_add_pd(lane3, _mm512_mul_pd(e3, e3));
    }
    for (; j < d; ++j) {
      const __m512d e = _mm512_sub_pd(
          _mm512_loadu_pd(base + static_cast<size_t>(j) * lane_stride),
          _mm512_set1_pd(f[j]));
      tail = _mm512_add_pd(tail, _mm512_mul_pd(e, e));
    }
    const __m512d res = _mm512_add_pd(
        _mm512_add_pd(_mm512_add_pd(lane0, lane1), _mm512_add_pd(lane2, lane3)),
        tail);
    _mm512_storeu_pd(dist + r, res);
  }
  if (r < rows) {
    internal::RefTileSquaredDistancesFused(tile + r, lane_stride, d, rows - r,
                                           f, dist + r);
  }
}

void TileSquaredDistancesSeq(const double* tile, int lane_stride, int d,
                             int rows, const double* f, double* dist) {
  int r = 0;
  for (; r + 8 <= rows; r += 8) {
    const double* base = tile + r;
    __m512d sum = _mm512_setzero_pd();
    for (int j = 0; j < d; ++j) {
      const __m512d e = _mm512_sub_pd(
          _mm512_loadu_pd(base + static_cast<size_t>(j) * lane_stride),
          _mm512_set1_pd(f[j]));
      sum = _mm512_add_pd(sum, _mm512_mul_pd(e, e));
    }
    _mm512_storeu_pd(dist + r, sum);
  }
  if (r < rows) {
    internal::RefTileSquaredDistancesSeq(tile + r, lane_stride, d, rows - r,
                                         f, dist + r);
  }
}

// Per-point refinement kernel. The fused reference fixes exactly four
// dim-strided accumulator lanes, so a 512-bit vector gains nothing here:
// this is the same 256-bit kernel as the AVX2 backend (-mavx512f implies
// AVX2 in the compiler's ISA chain), lane p of the __m256d running the
// reference's lane-p Horner chain verbatim.
double PowerSquaredDistance(const double* power, int k, int d, double s,
                            const double* x) {
  const __m256d sv = _mm256_set1_pd(s);
  __m256d acc = _mm256_setzero_pd();
  const double* top = power + static_cast<size_t>(k) * d;
  int i = 0;
  for (; i + 4 <= d; i += 4) {
    __m256d f = _mm256_loadu_pd(top + i);
    for (int j = k - 1; j >= 0; --j) {
      const double* aj = power + static_cast<size_t>(j) * d;
      f = _mm256_add_pd(_mm256_mul_pd(f, sv), _mm256_loadu_pd(aj + i));
    }
    const __m256d e = _mm256_sub_pd(_mm256_loadu_pd(x + i), f);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(e, e));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double tail = 0.0;
  for (; i < d; ++i) {
    double f = top[i];
    for (int j = k - 1; j >= 0; --j) {
      f = f * s + power[static_cast<size_t>(j) * d + i];
    }
    const double diff = x[i] - f;
    tail += diff * diff;
  }
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail;
}

// Batched refinement kernel: eight tasks per __m512d, lane t holding task
// t's probe parameter. Same structure and contract as the AVX2 version
// (see simd_backend_avx2.cc): broadcast coefficients, per-lane descending
// Horner, vector-wide accumulator classes, reference combine order; the
// sub-register task remainder runs the shared reference.
void PowerSquaredDistancesMulti(const double* power, int k, int d,
                                const double* xt, int lane_stride,
                                int count, const double* s, double* dist) {
  const double* top = power + static_cast<size_t>(k) * d;
  int t = 0;
  for (; t + 8 <= count; t += 8) {
    const __m512d sv = _mm512_loadu_pd(s + t);
    __m512d acc0 = _mm512_setzero_pd();
    __m512d acc1 = _mm512_setzero_pd();
    __m512d acc2 = _mm512_setzero_pd();
    __m512d acc3 = _mm512_setzero_pd();
    __m512d tail = _mm512_setzero_pd();
    const double* xbase = xt + t;
    int i = 0;
    for (; i + 4 <= d; i += 4) {
      __m512d f0 = _mm512_set1_pd(top[i]);
      __m512d f1 = _mm512_set1_pd(top[i + 1]);
      __m512d f2 = _mm512_set1_pd(top[i + 2]);
      __m512d f3 = _mm512_set1_pd(top[i + 3]);
      for (int j = k - 1; j >= 0; --j) {
        const double* aj = power + static_cast<size_t>(j) * d;
        f0 = _mm512_add_pd(_mm512_mul_pd(f0, sv), _mm512_set1_pd(aj[i]));
        f1 = _mm512_add_pd(_mm512_mul_pd(f1, sv), _mm512_set1_pd(aj[i + 1]));
        f2 = _mm512_add_pd(_mm512_mul_pd(f2, sv), _mm512_set1_pd(aj[i + 2]));
        f3 = _mm512_add_pd(_mm512_mul_pd(f3, sv), _mm512_set1_pd(aj[i + 3]));
      }
      const double* xr = xbase + static_cast<size_t>(i) * lane_stride;
      const __m512d e0 = _mm512_sub_pd(_mm512_loadu_pd(xr), f0);
      const __m512d e1 = _mm512_sub_pd(
          _mm512_loadu_pd(xr + 1 * static_cast<size_t>(lane_stride)), f1);
      const __m512d e2 = _mm512_sub_pd(
          _mm512_loadu_pd(xr + 2 * static_cast<size_t>(lane_stride)), f2);
      const __m512d e3 = _mm512_sub_pd(
          _mm512_loadu_pd(xr + 3 * static_cast<size_t>(lane_stride)), f3);
      acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(e0, e0));
      acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(e1, e1));
      acc2 = _mm512_add_pd(acc2, _mm512_mul_pd(e2, e2));
      acc3 = _mm512_add_pd(acc3, _mm512_mul_pd(e3, e3));
    }
    for (; i < d; ++i) {
      __m512d f = _mm512_set1_pd(top[i]);
      for (int j = k - 1; j >= 0; --j) {
        f = _mm512_add_pd(_mm512_mul_pd(f, sv),
                          _mm512_set1_pd(power[static_cast<size_t>(j) * d + i]));
      }
      const __m512d e = _mm512_sub_pd(
          _mm512_loadu_pd(xbase + static_cast<size_t>(i) * lane_stride), f);
      tail = _mm512_add_pd(tail, _mm512_mul_pd(e, e));
    }
    const __m512d res = _mm512_add_pd(
        _mm512_add_pd(_mm512_add_pd(acc0, acc1), _mm512_add_pd(acc2, acc3)),
        tail);
    _mm512_storeu_pd(dist + t, res);
  }
  if (t < count) {
    internal::RefPowerSquaredDistancesMulti(power, k, d, xt + t, lane_stride,
                                            count - t, s + t, dist + t);
  }
}

constexpr SimdOps kAvx512Ops = {
    SimdBackendKind::kAvx512,
    "avx512",
    &TileSquaredDistancesFused,
    &TileSquaredDistancesSeq,
    &PowerSquaredDistance,
    &PowerSquaredDistancesMulti,
};

}  // namespace

const SimdOps* Avx512SimdOps() { return &kAvx512Ops; }

}  // namespace rpc::curve

#else  // !defined(__AVX512F__)

namespace rpc::curve {
const SimdOps* Avx512SimdOps() { return nullptr; }
}  // namespace rpc::curve

#endif
