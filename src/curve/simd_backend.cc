// Runtime backend selection: compiled-in backends x CPU features, resolved
// once on first use, overridable with RPC_SIMD_BACKEND.
#include "curve/simd_backend.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace rpc::curve {

// Defined in the per-backend translation units; a factory returns nullptr
// when its backend is not compiled into this binary.
const SimdOps* ScalarSimdOps();
const SimdOps* Avx2SimdOps();
const SimdOps* Avx512SimdOps();
const SimdOps* NeonSimdOps();

namespace {

bool CpuSupports(SimdBackendKind kind) {
  switch (kind) {
    case SimdBackendKind::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case SimdBackendKind::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case SimdBackendKind::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
#endif
#if defined(__aarch64__)
    case SimdBackendKind::kNeon:
      return true;  // NEON is mandatory on AArch64.
#endif
    default:
      return false;
  }
}

const SimdOps* CompiledOps(SimdBackendKind kind) {
  switch (kind) {
    case SimdBackendKind::kScalar:
      return ScalarSimdOps();
    case SimdBackendKind::kAvx2:
      return Avx2SimdOps();
    case SimdBackendKind::kAvx512:
      return Avx512SimdOps();
    case SimdBackendKind::kNeon:
      return NeonSimdOps();
  }
  return nullptr;
}

/// Compiled in AND supported by the running CPU.
const SimdOps* UsableOps(SimdBackendKind kind) {
  const SimdOps* ops = CompiledOps(kind);
  return (ops != nullptr && CpuSupports(kind)) ? ops : nullptr;
}

const SimdOps* AutoDetect() {
  // Widest usable vector first; scalar always exists.
  for (SimdBackendKind kind : {SimdBackendKind::kAvx512, SimdBackendKind::kAvx2,
                               SimdBackendKind::kNeon}) {
    if (const SimdOps* ops = UsableOps(kind)) return ops;
  }
  return ScalarSimdOps();
}

const SimdOps* ResolveInitialBackend() {
  const char* env = std::getenv("RPC_SIMD_BACKEND");
  if (env != nullptr && env[0] != '\0') {
    for (SimdBackendKind kind :
         {SimdBackendKind::kScalar, SimdBackendKind::kAvx2,
          SimdBackendKind::kAvx512, SimdBackendKind::kNeon}) {
      if (std::strcmp(env, SimdBackendName(kind)) != 0) continue;
      if (const SimdOps* ops = UsableOps(kind)) return ops;
      std::fprintf(stderr,
                   "rpc: RPC_SIMD_BACKEND=%s is not available in this build "
                   "or on this CPU; falling back to auto-detection\n",
                   env);
      return AutoDetect();
    }
    std::fprintf(stderr,
                 "rpc: unknown RPC_SIMD_BACKEND=%s (expected scalar, avx2, "
                 "avx512, or neon); falling back to auto-detection\n",
                 env);
  }
  return AutoDetect();
}

std::atomic<const SimdOps*> g_active{nullptr};
std::once_flag g_init_once;

void InitActive() {
  std::call_once(g_init_once, [] {
    g_active.store(ResolveInitialBackend(), std::memory_order_release);
  });
}

}  // namespace

const SimdOps& ActiveSimd() {
  const SimdOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    InitActive();
    ops = g_active.load(std::memory_order_acquire);
  }
  return *ops;
}

SimdBackendKind ActiveSimdKind() { return ActiveSimd().kind; }

const char* BackendName() { return ActiveSimd().name; }

const char* SimdBackendName(SimdBackendKind kind) {
  switch (kind) {
    case SimdBackendKind::kScalar:
      return "scalar";
    case SimdBackendKind::kAvx2:
      return "avx2";
    case SimdBackendKind::kAvx512:
      return "avx512";
    case SimdBackendKind::kNeon:
      return "neon";
  }
  return "unknown";
}

std::vector<const SimdOps*> AvailableSimdBackends() {
  std::vector<const SimdOps*> out;
  out.push_back(ScalarSimdOps());
  for (SimdBackendKind kind : {SimdBackendKind::kAvx2, SimdBackendKind::kAvx512,
                               SimdBackendKind::kNeon}) {
    if (const SimdOps* ops = UsableOps(kind)) out.push_back(ops);
  }
  return out;
}

bool SetSimdBackend(SimdBackendKind kind) {
  const SimdOps* ops = UsableOps(kind);
  if (ops == nullptr) return false;
  InitActive();  // Keep the env-override path from racing a later first use.
  g_active.store(ops, std::memory_order_release);
  return true;
}

}  // namespace rpc::curve
