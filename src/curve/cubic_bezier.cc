#include "curve/cubic_bezier.h"

#include <cassert>

namespace rpc::curve {

using linalg::Matrix;
using linalg::Vector;

const Matrix& CubicM() {
  static const Matrix* const kM = new Matrix{{1.0, -3.0, 3.0, -1.0},
                                             {0.0, 3.0, -6.0, 3.0},
                                             {0.0, 0.0, 3.0, -3.0},
                                             {0.0, 0.0, 0.0, 1.0}};
  return *kM;
}

Vector CubicZ(double s) {
  const double s2 = s * s;
  return Vector{1.0, s, s2, s2 * s};
}

Matrix CubicZMatrix(const Vector& scores) {
  Matrix z(4, scores.size());
  for (int i = 0; i < scores.size(); ++i) {
    const double s = scores[i];
    const double s2 = s * s;
    z(0, i) = 1.0;
    z(1, i) = s;
    z(2, i) = s2;
    z(3, i) = s2 * s;
  }
  return z;
}

Vector EvaluateCubic(const Matrix& p, double s) {
  assert(p.cols() == 4);
  return p * (CubicM() * CubicZ(s));
}

Matrix ReconstructCubic(const Matrix& p, const Vector& scores) {
  assert(p.cols() == 4);
  return p * (CubicM() * CubicZMatrix(scores));
}

double CubicResidual(const Matrix& p, const Matrix& data,
                     const Vector& scores) {
  assert(data.rows() == scores.size());
  assert(data.cols() == p.rows());
  const Matrix recon = ReconstructCubic(p, scores);  // d x n
  double j = 0.0;
  for (int i = 0; i < data.rows(); ++i) {
    for (int dim = 0; dim < data.cols(); ++dim) {
      const double diff = data(i, dim) - recon(dim, i);
      j += diff * diff;
    }
  }
  return j;
}

}  // namespace rpc::curve
