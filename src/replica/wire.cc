#include "replica/wire.h"

#include <cstring>

#include "common/crc32c.h"
#include "common/stringutil.h"
#include "durable/codec.h"

namespace rpc::replica {

namespace {

// "RPCR" little-endian.
constexpr std::uint32_t kFrameMagic = 0x52435052;
// magic + type + epoch + a + b + len + crc.
constexpr std::size_t kFrameHeaderSize = 4 + 1 + 8 + 8 + 8 + 4 + 4;

bool KnownType(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(MessageType::kCatchUpRequest) &&
         type <= static_cast<std::uint8_t>(MessageType::kFenced);
}

/// CRC over everything the frame protects: type, epoch, a, b, length,
/// payload — all fields after the magic except the checksum itself.
std::uint32_t FrameCrc(std::uint8_t type, std::uint64_t epoch,
                       std::uint64_t a, std::uint64_t b,
                       std::uint32_t payload_len, std::string_view payload) {
  std::uint32_t crc = Crc32cExtend(0, &type, 1);
  crc = Crc32cExtend(crc, &epoch, 8);
  crc = Crc32cExtend(crc, &a, 8);
  crc = Crc32cExtend(crc, &b, 8);
  crc = Crc32cExtend(crc, &payload_len, 4);
  return Crc32cExtend(crc, payload.data(), payload.size());
}

}  // namespace

std::string EncodeMessage(const Message& message) {
  const std::uint8_t type = static_cast<std::uint8_t>(message.type);
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(message.payload.size());
  std::string frame;
  frame.reserve(kFrameHeaderSize + message.payload.size());
  durable::PutU32(&frame, kFrameMagic);
  frame.push_back(static_cast<char>(type));
  durable::PutU64(&frame, message.epoch);
  durable::PutU64(&frame, message.a);
  durable::PutU64(&frame, message.b);
  durable::PutU32(&frame, payload_len);
  durable::PutU32(&frame, FrameCrc(type, message.epoch, message.a, message.b,
                                   payload_len, message.payload));
  frame.append(message.payload);
  return frame;
}

Result<Message> DecodeMessage(std::string_view frame) {
  if (frame.size() < kFrameHeaderSize) {
    return Status::DataLoss(
        StrFormat("replica: frame truncated to %zu bytes", frame.size()));
  }
  durable::Cursor cursor(frame);
  if (cursor.U32() != kFrameMagic) {
    return Status::DataLoss("replica: bad frame magic");
  }
  std::uint8_t type = 0;
  std::memcpy(&type, frame.data() + 4, 1);
  cursor.Bytes(1);  // skip the type byte the memcpy just read
  const std::uint64_t epoch = cursor.U64();
  const std::uint64_t a = cursor.U64();
  const std::uint64_t b = cursor.U64();
  const std::uint32_t payload_len = cursor.U32();
  const std::uint32_t stored_crc = cursor.U32();
  if (!KnownType(type)) {
    return Status::DataLoss(
        StrFormat("replica: unknown message type %d", static_cast<int>(type)));
  }
  if (cursor.remaining() != payload_len) {
    return Status::DataLoss(
        StrFormat("replica: frame payload is %zu bytes, header says %u",
                  cursor.remaining(), payload_len));
  }
  const std::string_view payload = cursor.Bytes(payload_len);
  if (FrameCrc(type, epoch, a, b, payload_len, payload) != stored_crc) {
    return Status::DataLoss("replica: frame checksum mismatch");
  }
  Message message;
  message.type = static_cast<MessageType>(type);
  message.epoch = epoch;
  message.a = a;
  message.b = b;
  message.payload.assign(payload.data(), payload.size());
  return message;
}

std::string EncodeWalRecords(
    const std::vector<durable::TailRecord>& records) {
  std::string out;
  durable::PutU32(&out, static_cast<std::uint32_t>(records.size()));
  for (const durable::TailRecord& record : records) {
    durable::PutU64(&out, record.seq);
    out.push_back(static_cast<char>(record.type));
    durable::PutBytes(&out, record.payload);
  }
  return out;
}

Result<std::vector<durable::TailRecord>> DecodeWalRecords(
    std::string_view payload) {
  durable::Cursor cursor(payload);
  const std::uint32_t count = cursor.U32();
  std::vector<durable::TailRecord> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    durable::TailRecord record;
    record.seq = cursor.U64();
    const std::string_view type_byte = cursor.Bytes(1);
    const std::string_view bytes = cursor.LengthPrefixedBytes();
    if (!cursor.ok()) break;
    record.type =
        static_cast<durable::RecordType>(static_cast<std::uint8_t>(
            type_byte[0]));
    record.payload.assign(bytes.data(), bytes.size());
    records.push_back(std::move(record));
  }
  if (!cursor.ok() || cursor.remaining() != 0 || records.size() != count) {
    return Status::DataLoss("replica: malformed wal batch payload");
  }
  return records;
}

}  // namespace rpc::replica
