#ifndef RPC_REPLICA_WIRE_H_
#define RPC_REPLICA_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "durable/event_log.h"

namespace rpc::replica {

/// Replication message kinds. The protocol is pull-based: the standby
/// drives with kCatchUpRequest, the primary answers with exactly one of
/// kSnapshot / kWalBatch / kFenced. A request's after_seq doubles as the
/// cumulative ack for everything before it, so the session needs no
/// separate ack stream and resumes from the standby's durable offset after
/// any interruption.
enum class MessageType : std::uint8_t {
  /// standby -> primary. a = after_seq (the standby's last durable WAL
  /// sequence), b = 1 when the standby already holds installed state (a
  /// snapshot it has recovered or received), 0 when it is stateless.
  kCatchUpRequest = 1,
  /// primary -> standby. a = the snapshot's last_seq; payload is the
  /// EncodeSnapshot bytes, shipped verbatim so the standby's on-disk
  /// snapshot is bit-identical to the primary's.
  kSnapshot = 2,
  /// primary -> standby. a = sequence of the last record in the batch
  /// (== request's after_seq for an empty heartbeat batch), b = the
  /// primary's last *synced* sequence (the standby's lag gauge); payload
  /// is EncodeWalRecords. Only synced records are ever shipped: a standby
  /// must not apply a record the primary itself could still lose.
  kWalBatch = 3,
  /// Either direction. a = the newer epoch that fenced the sender. A
  /// source that answers kFenced has permanently stopped serving.
  kFenced = 4,
};

/// One framed replication message. `epoch` implements fencing: every
/// message carries its sender's epoch, a receiver discards anything older
/// than the newest epoch it has ever seen, and a source is deposed (fenced)
/// the moment it hears a newer epoch than its own.
struct Message {
  MessageType type = MessageType::kCatchUpRequest;
  std::uint64_t epoch = 0;
  std::uint64_t a = 0;  // type-specific, see MessageType
  std::uint64_t b = 0;  // type-specific, see MessageType
  std::string payload;
};

/// Frame layout (little-endian):
///   u32 magic "RPCR" | u8 type | u64 epoch | u64 a | u64 b |
///   u32 payload_len | u32 crc32c | payload
/// The checksum covers type..payload, so a truncated or bit-flipped frame
/// is detected at the receiver and simply re-requested — the same CRC32C
/// the WAL uses, extended over the transport.
std::string EncodeMessage(const Message& message);

/// kDataLoss on bad magic, unknown type, length mismatch or checksum
/// failure. A failed decode is a transport-level event, never fatal to the
/// session: the standby re-requests from its unchanged durable offset.
Result<Message> DecodeMessage(std::string_view frame);

/// WAL-batch payload: u32 count | count * (u64 seq | u8 type | u32 len |
/// payload). Per-record checksums are not repeated here — the frame CRC
/// already covers every byte, and the standby's own EventLog re-stamps
/// record CRCs when it persists the batch.
std::string EncodeWalRecords(const std::vector<durable::TailRecord>& records);

Result<std::vector<durable::TailRecord>> DecodeWalRecords(
    std::string_view payload);

}  // namespace rpc::replica

#endif  // RPC_REPLICA_WIRE_H_
