#ifndef RPC_REPLICA_REPLICATION_H_
#define RPC_REPLICA_REPLICATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/retry.h"
#include "common/rng.h"
#include "durable/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replica/transport.h"
#include "replica/wire.h"
#include "stream/streaming_ranker.h"

namespace rpc::replica {

/// Replicated durability for the streaming ranker, pull-based:
///
///   standby                         primary
///   ---------                      ----------
///   CatchUpRequest(after=D) ---->  ReplicationSource
///                           <----  Snapshot | WalBatch | Fenced
///   persist + apply
///   CatchUpRequest(after=D') --->  ...
///
/// The standby's request carries its last *durable* offset, so the stream
/// is trivially resumable (a restart re-requests from disk) and idempotent
/// under every transport fault: a dropped reply times out and is
/// re-requested, a duplicated or reordered reply is discarded by the
/// seq-gap check, a truncated one fails the frame CRC. Only synced
/// primary records are ever shipped, so an acked standby prefix is always
/// a prefix of what an uncrashed primary would itself recover.

// ---------------------------------------------------------------------- //

struct ReplicationSourceOptions {
  /// The primary's durability directory (wal-*.log + snapshot-*.snap).
  std::string dir;
  /// Row dimension, checked against segment headers when reading the tail.
  int d = 0;
  /// This primary's fencing epoch.
  std::uint64_t epoch = 1;
  /// Per-reply WAL batch caps (kept modest so a catch-up streams in
  /// chunks and a slow standby never forces one giant frame).
  std::uint64_t max_batch_records = 256;
  std::int64_t max_batch_bytes = 1 << 20;
};

/// Primary-side shipper: answers standby catch-up requests with the newest
/// intact snapshot (when the standby is stateless or has fallen behind the
/// compacted log) or a WAL-tail batch read directly from the live log
/// files (ReadLogTail tolerates the concurrent group-commit writer).
/// Single-threaded per link: one source serves one standby session.
class ReplicationSource {
 public:
  /// `synced_seq` reports the primary's last fsynced WAL sequence — the
  /// shipping cap (typically StreamingRanker::wal_synced_seq). `link` and
  /// the callback must outlive the source.
  ReplicationSource(Link* link, std::function<std::uint64_t()> synced_seq,
                    ReplicationSourceOptions options);

  /// Waits up to `timeout_seconds` for one request and answers it.
  /// kDeadlineExceeded when none arrived, kUnavailable once the link is
  /// closed, kAborted once fenced (permanently: a newer epoch owns the
  /// lineage and this source must never ship another byte). A corrupt
  /// request frame is ignored (Ok) — the standby will retry.
  Status HandleOne(double timeout_seconds);

  /// Serves until the link closes or the source is fenced.
  Status Serve();

  /// Latched true forever once a request with a newer epoch arrives.
  bool fenced() const { return fenced_; }
  /// Highest after_seq any request has carried — everything at or below
  /// is durable on the standby (the protocol's implicit cumulative ack).
  std::uint64_t acked_seq() const { return acked_seq_; }
  std::int64_t snapshots_shipped() const { return snapshots_shipped_; }
  std::int64_t batches_shipped() const { return batches_shipped_; }

 private:
  Link* link_;
  std::function<std::uint64_t()> synced_seq_;
  const ReplicationSourceOptions options_;
  bool fenced_ = false;
  std::uint64_t acked_seq_ = 0;
  std::int64_t snapshots_shipped_ = 0;
  std::int64_t batches_shipped_ = 0;
  obs::Counter snapshots_counter_;
  obs::Counter batches_counter_;
};

// ---------------------------------------------------------------------- //

struct ReplicaApplierOptions {
  /// The standby's own durability directory: received snapshots and WAL
  /// records are persisted here before being applied, so the standby's
  /// dir is always a valid recovery dir in its own right.
  std::string dir;
  /// Row dimension (must match the primary's).
  int d = 0;
  /// Segment roll size for the local WAL sink.
  std::int64_t segment_bytes = 4 << 20;
  /// Snapshots retained locally (mirrors DurabilityOptions::keep_snapshots).
  int keep_snapshots = 2;
  /// Per-RPC deadline for one request/reply exchange.
  double request_timeout_seconds = 0.25;
  /// The feed lease: with no valid primary message for this long, the
  /// standby declares the feed lost (feed_lost()) and keeps serving its
  /// last published version read-only, reporting staleness.
  double lease_seconds = 2.0;
  /// Backoff schedule for CatchUpTo's retry loop.
  RetryPolicy retry;
  /// Seed for the retry jitter stream.
  std::uint64_t rng_seed = 0x5ca1ab1e;
  /// Injected monotonic clock (tests); default std::chrono::steady_clock.
  std::function<double()> now;
  /// Injected sleeper for backoff delays (tests collect instead of
  /// sleeping); default really sleeps.
  std::function<void(double)> sleep;
};

/// Standby-side session: drives the pull loop, persists every received
/// byte into a local EventLog (re-using the primary's exact record
/// framing, so the standby's WAL is byte-compatible), and feeds the
/// follower-mode StreamingRanker through the same apply path Recover()
/// uses. Single-threaded: one applier owns its ranker's follower life.
class ReplicaApplier {
 public:
  /// `ranker` must be fresh (never started) or already in follower mode;
  /// both it and `link` must outlive the applier.
  ReplicaApplier(stream::StreamingRanker* ranker, Link* link,
                 ReplicaApplierOptions options);

  /// Loads the persisted epoch and rebuilds local follower state (snapshot
  /// + replicated WAL) if any exists — the crash-resume path. Idempotent;
  /// must be called before pumping.
  Status Init();

  /// One request/reply exchange. Ok on progress or a clean heartbeat;
  /// kDeadlineExceeded when the reply timed out; kUnavailable on a closed
  /// link or a corrupt frame (both retryable); kAborted when a stale-epoch
  /// message was rejected (late write from a deposed primary).
  Status PumpOnce();

  /// Pumps with retry/backoff until the local durable offset reaches
  /// `target_seq`. Progress resets the backoff ladder; exhausting the
  /// retry budget surfaces the last error wrapped in
  /// kDeadlineExceeded/kUnavailable.
  Status CatchUpTo(std::uint64_t target_seq);

  /// Fenced failover: persists epoch+1 locally (fencing any late writes
  /// from the deposed lineage *before* the new primary exists), closes the
  /// local WAL sink, and promotes the ranker to primary. After this the
  /// applier is done; the promoted ranker logs into the replicated WAL.
  Status Promote();

  /// Last WAL sequence durable (fsynced) in the local sink — what the
  /// next catch-up request acks.
  std::uint64_t durable_seq() const { return durable_seq_; }
  std::uint64_t epoch() const { return epoch_; }
  bool has_state() const { return has_state_; }
  /// Seconds since the last valid primary message (0 before Init).
  double staleness_seconds() const;
  /// True once staleness exceeds the lease: the feed is considered lost
  /// and the standby is serving a stale-but-consistent version.
  bool feed_lost() const { return staleness_seconds() > options_.lease_seconds; }
  /// Primary's synced seq as of the last WalBatch — minus durable_seq()
  /// this is the standby's replication lag in events.
  std::uint64_t primary_synced_seq() const { return primary_synced_seq_; }
  std::int64_t stale_epoch_rejects() const { return stale_epoch_rejects_; }
  std::int64_t records_applied() const { return records_applied_; }

 private:
  Status HandleSnapshot(const Message& message);
  Status HandleWalBatch(const Message& message);
  Status OpenSinkAt(std::uint64_t next_seq);

  stream::StreamingRanker* ranker_;
  Link* link_;
  const ReplicaApplierOptions options_;
  std::function<double()> now_;
  std::function<void(double)> sleep_;
  Rng rng_;
  std::unique_ptr<durable::EventLog> sink_;
  std::uint64_t epoch_ = 0;
  std::uint64_t durable_seq_ = 0;
  std::uint64_t primary_synced_seq_ = 0;
  bool has_state_ = false;
  bool initialized_ = false;
  double last_good_time_ = 0.0;
  std::int64_t stale_epoch_rejects_ = 0;
  std::int64_t records_applied_ = 0;

  // Telemetry. The lag gauge is Set() on the (single) pump thread rather
  // than sampled by callback, so the exporter never reads these plain
  // members concurrently. The session trace groups every pump's span.
  obs::TraceId trace_ = 0;
  obs::Gauge lag_gauge_;
  obs::Counter retries_counter_;
  obs::Counter timeouts_counter_;
  obs::Counter stale_epoch_counter_;
};

}  // namespace rpc::replica

#endif  // RPC_REPLICA_REPLICATION_H_
