#include "replica/epoch.h"

#include <cerrno>
#include <cstdlib>

#include "common/stringutil.h"
#include "durable/file_util.h"

namespace rpc::replica {

namespace {
constexpr char kEpochFile[] = "EPOCH";
}  // namespace

Result<std::uint64_t> LoadEpoch(const std::string& dir) {
  Result<std::string> text = durable::ReadFile(dir + "/" + kEpochFile);
  if (!text.ok()) {
    if (text.status().code() == StatusCode::kNotFound) {
      return std::uint64_t{0};
    }
    return text.status();
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text->c_str(), &end, 10);
  if (errno != 0 || end == text->c_str() || (*end != '\0' && *end != '\n')) {
    return Status::DataLoss(
        StrFormat("replica: malformed EPOCH file in '%s'", dir.c_str()));
  }
  return static_cast<std::uint64_t>(value);
}

Status StoreEpoch(const std::string& dir, std::uint64_t epoch) {
  RPC_RETURN_IF_ERROR(durable::EnsureDirectory(dir));
  return durable::AtomicWriteFile(
      dir, kEpochFile,
      StrFormat("%llu\n", static_cast<unsigned long long>(epoch)),
      /*injector=*/nullptr);
}

}  // namespace rpc::replica
