#include "replica/replication.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "common/stringutil.h"
#include "durable/file_util.h"
#include "durable/snapshot.h"
#include "replica/epoch.h"
#include "replica/wire.h"

namespace rpc::replica {

namespace {

double SteadyNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RealSleep(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

// One series set per source/applier instance (tests run several at once).
obs::Labels InstanceLabels(std::atomic<int>* ordinal) {
  return {{"inst", std::to_string(
                       ordinal->fetch_add(1, std::memory_order_relaxed))}};
}

}  // namespace

// ------------------------------------------------------------- source -- //

ReplicationSource::ReplicationSource(Link* link,
                                     std::function<std::uint64_t()> synced_seq,
                                     ReplicationSourceOptions options)
    : link_(link),
      synced_seq_(std::move(synced_seq)),
      options_(std::move(options)) {
  static std::atomic<int> next_ordinal{0};
  const obs::Labels labels = InstanceLabels(&next_ordinal);
  obs::Registry& registry = obs::Registry::Global();
  snapshots_counter_ =
      registry.GetCounter("rpc_replica_snapshots_shipped_total", labels,
                          "Full snapshots shipped to the standby");
  batches_counter_ =
      registry.GetCounter("rpc_replica_batches_shipped_total", labels,
                          "WAL-tail batches shipped to the standby");
}

Status ReplicationSource::HandleOne(double timeout_seconds) {
  Result<std::string> frame = link_->Receive(timeout_seconds);
  RPC_RETURN_IF_ERROR(frame.status());
  Result<Message> request = DecodeMessage(*frame);
  if (!request.ok()) {
    // Corrupt request: drop it. The standby's deadline will expire and it
    // will simply ask again.
    return Status::Ok();
  }
  if (request->epoch > options_.epoch) {
    // A newer lineage exists. Depose ourselves permanently and tell the
    // peer why — a fenced primary must never ship another byte, or a
    // standby could apply writes from a dead timeline.
    fenced_ = true;
    Message fenced;
    fenced.type = MessageType::kFenced;
    fenced.epoch = options_.epoch;
    fenced.a = request->epoch;
    (void)link_->Send(EncodeMessage(fenced));
  }
  if (fenced_) {
    return Status::Aborted(
        StrFormat("replica: source fenced (epoch %llu superseded)",
                  static_cast<unsigned long long>(options_.epoch)));
  }
  if (request->type != MessageType::kCatchUpRequest) {
    return Status::Ok();  // not ours to answer; ignore
  }
  const std::uint64_t after = request->a;
  const bool standby_has_state = request->b != 0;
  if (after > acked_seq_) acked_seq_ = after;

  // Ship a snapshot when the standby cannot be served from the log: it is
  // stateless (the Start state is never logged, only snapshotted), or
  // compaction already dropped the records right after its offset.
  const std::uint64_t oldest = durable::OldestWalSeq(options_.dir);
  const bool log_serves =
      standby_has_state && (oldest == 0 || after + 1 >= oldest);
  if (!log_serves) {
    RPC_ASSIGN_OR_RETURN(durable::LoadedSnapshot loaded,
                         durable::LoadLatestSnapshot(options_.dir));
    Message reply;
    reply.type = MessageType::kSnapshot;
    reply.epoch = options_.epoch;
    reply.a = loaded.state.last_seq;
    reply.payload = durable::EncodeSnapshot(loaded.state);
    ++snapshots_shipped_;
    snapshots_counter_.Increment();
    return link_->Send(EncodeMessage(reply));
  }

  durable::TailLimits limits;
  limits.max_records = options_.max_batch_records;
  limits.max_bytes = options_.max_batch_bytes;
  limits.max_seq = synced_seq_();
  RPC_ASSIGN_OR_RETURN(
      durable::TailBatch batch,
      durable::ReadLogTail(options_.dir, options_.d, after, limits));
  Message reply;
  reply.type = MessageType::kWalBatch;
  reply.epoch = options_.epoch;
  reply.a = batch.records.empty() ? after : batch.last_seq;
  reply.b = limits.max_seq;
  reply.payload = EncodeWalRecords(batch.records);
  ++batches_shipped_;
  batches_counter_.Increment();
  return link_->Send(EncodeMessage(reply));
}

Status ReplicationSource::Serve() {
  while (true) {
    const Status status = HandleOne(/*timeout_seconds=*/0.05);
    if (status.ok() || status.code() == StatusCode::kDeadlineExceeded) {
      continue;
    }
    return status;  // closed link or fenced
  }
}

// ------------------------------------------------------------ applier -- //

ReplicaApplier::ReplicaApplier(stream::StreamingRanker* ranker, Link* link,
                               ReplicaApplierOptions options)
    : ranker_(ranker),
      link_(link),
      options_(std::move(options)),
      now_(options_.now ? options_.now : SteadyNow),
      sleep_(options_.sleep ? options_.sleep : RealSleep),
      rng_(options_.rng_seed) {
  static std::atomic<int> next_ordinal{0};
  const obs::Labels labels = InstanceLabels(&next_ordinal);
  obs::Registry& registry = obs::Registry::Global();
  lag_gauge_ = registry.GetGauge(
      "rpc_replica_lag_records", labels,
      "Primary synced seq minus local durable seq (catch-up backlog)");
  retries_counter_ =
      registry.GetCounter("rpc_replica_retries_total", labels,
                          "Backoff retries in CatchUpTo's pump loop");
  timeouts_counter_ =
      registry.GetCounter("rpc_replica_rpc_timeouts_total", labels,
                          "Catch-up exchanges whose reply timed out");
  stale_epoch_counter_ =
      registry.GetCounter("rpc_replica_stale_epoch_rejects_total", labels,
                          "Messages rejected for carrying a fenced epoch");
}

Status ReplicaApplier::OpenSinkAt(std::uint64_t next_seq) {
  durable::EventLog::Options log_options;
  log_options.segment_bytes = options_.segment_bytes;
  RPC_ASSIGN_OR_RETURN(sink_, durable::EventLog::Open(options_.dir, options_.d,
                                                      next_seq, log_options));
  return Status::Ok();
}

Status ReplicaApplier::Init() {
  if (initialized_) return Status::Ok();
  RPC_RETURN_IF_ERROR(durable::EnsureDirectory(options_.dir));
  RPC_ASSIGN_OR_RETURN(epoch_, LoadEpoch(options_.dir));
  // Crash resume: if this dir already holds replicated state, rebuild the
  // follower from it — snapshot plus local WAL suffix, torn tail cut —
  // and continue catching up from that offset instead of from scratch.
  const Status recovered = ranker_->RecoverAsFollower();
  if (recovered.ok()) {
    has_state_ = true;
    durable_seq_ = ranker_->follower_applied_seq();
    RPC_RETURN_IF_ERROR(OpenSinkAt(durable_seq_ + 1));
  } else if (recovered.code() != StatusCode::kNotFound) {
    return recovered;  // real corruption, not just an empty dir
  }
  last_good_time_ = now_();
  initialized_ = true;
  // One trace for the whole standby session: every PumpOnce emits a
  // "replica.pump" span under it, so the catch-up cadence is reconstructable.
  trace_ = obs::NewTraceId();
  return Status::Ok();
}

double ReplicaApplier::staleness_seconds() const {
  if (!initialized_) return 0.0;
  return now_() - last_good_time_;
}

Status ReplicaApplier::HandleSnapshot(const Message& message) {
  RPC_ASSIGN_OR_RETURN(durable::SnapshotState state,
                       durable::DecodeSnapshot(message.payload));
  if (has_state_ && state.last_seq <= durable_seq_) {
    return Status::Ok();  // duplicate or stale re-ship; already ahead
  }
  // Persist before applying: the standby's dir must always recover to at
  // least what it has acked. The snapshot supersedes every local WAL
  // record (all have seq <= durable_seq_ < state.last_seq), so the old
  // segments go away and the sink restarts right after the snapshot —
  // keeping the on-disk sequence chain contiguous for RecoverAsFollower.
  RPC_RETURN_IF_ERROR(
      durable::WriteSnapshot(options_.dir, state, /*injector=*/nullptr));
  RPC_RETURN_IF_ERROR(durable::RemoveOldSnapshots(
      options_.dir, std::max(options_.keep_snapshots, 1)));
  sink_.reset();
  for (const std::string& name :
       durable::ListFiles(options_.dir, "wal-", ".log")) {
    const std::string path = options_.dir + "/" + name;
    if (::remove(path.c_str()) != 0) {
      return Status::Internal(
          StrFormat("replica: cannot remove stale wal segment '%s'",
                    path.c_str()));
    }
  }
  RPC_RETURN_IF_ERROR(durable::SyncDirectory(options_.dir));
  RPC_RETURN_IF_ERROR(OpenSinkAt(state.last_seq + 1));
  RPC_RETURN_IF_ERROR(ranker_->FollowerInstallSnapshot(state));
  durable_seq_ = state.last_seq;
  has_state_ = true;
  lag_gauge_.Set(primary_synced_seq_ > durable_seq_
                     ? static_cast<double>(primary_synced_seq_ - durable_seq_)
                     : 0.0);
  return Status::Ok();
}

Status ReplicaApplier::HandleWalBatch(const Message& message) {
  if (!has_state_) {
    // Records without a base snapshot are unusable; re-request and let
    // the source notice has_state=0 and ship the snapshot.
    return Status::Ok();
  }
  RPC_ASSIGN_OR_RETURN(std::vector<durable::TailRecord> records,
                       DecodeWalRecords(message.payload));
  if (message.b > primary_synced_seq_) primary_synced_seq_ = message.b;
  std::uint64_t applied_through = durable_seq_;
  for (const durable::TailRecord& record : records) {
    if (record.seq <= applied_through) continue;  // duplicate delivery
    if (record.seq != applied_through + 1) break;  // gap: reordered batch
    durable::ReplayRecord replay;
    replay.seq = record.seq;
    replay.type = record.type;
    replay.payload = record.payload;
    RPC_RETURN_IF_ERROR(ranker_->ApplyFollowerRecord(replay));
    // Persist with the identical framing the primary used: the sink was
    // opened at our durable offset + 1 and assigns sequence numbers in
    // append order, so the seq it stamps must equal the shipped one.
    const std::uint64_t assigned = sink_->Append(record.type, record.payload);
    if (assigned != record.seq) {
      return Status::Internal(StrFormat(
          "replica: sink assigned seq %llu to shipped record %llu",
          static_cast<unsigned long long>(assigned),
          static_cast<unsigned long long>(record.seq)));
    }
    applied_through = record.seq;
  }
  if (applied_through != durable_seq_) {
    // The durability ack point: only after the local fsync does the next
    // request's after_seq move forward.
    RPC_RETURN_IF_ERROR(sink_->Sync());
    durable_seq_ = applied_through;
  }
  lag_gauge_.Set(primary_synced_seq_ > durable_seq_
                     ? static_cast<double>(primary_synced_seq_ - durable_seq_)
                     : 0.0);
  return Status::Ok();
}

Status ReplicaApplier::PumpOnce() {
  if (!initialized_) {
    return Status::FailedPrecondition("replica: applier not initialized");
  }
  const obs::Span span(trace_, "replica.pump");
  Message request;
  request.type = MessageType::kCatchUpRequest;
  request.epoch = epoch_;
  request.a = durable_seq_;
  request.b = has_state_ ? 1 : 0;
  RPC_RETURN_IF_ERROR(link_->Send(EncodeMessage(request)));
  Result<std::string> frame =
      link_->Receive(options_.request_timeout_seconds);
  if (!frame.ok()) {
    if (frame.status().code() == StatusCode::kDeadlineExceeded) {
      timeouts_counter_.Increment();
    }
    return frame.status();
  }
  Result<Message> reply = DecodeMessage(*frame);
  if (!reply.ok()) {
    // Truncated/corrupt frame — a transport event, not data loss: our
    // durable offset is unchanged and the next request re-fetches.
    return Status::Unavailable(
        StrFormat("replica: corrupt frame: %s",
                  reply.status().message().c_str()));
  }
  if (reply->epoch < epoch_) {
    // A late write from a deposed primary. Rejecting (rather than
    // applying) is the whole point of fencing: this lineage ended.
    ++stale_epoch_rejects_;
    stale_epoch_counter_.Increment();
    return Status::Aborted(
        StrFormat("replica: rejected message from stale epoch %llu (ours %llu)",
                  static_cast<unsigned long long>(reply->epoch),
                  static_cast<unsigned long long>(epoch_)));
  }
  if (reply->epoch > epoch_) {
    // The feed moved to a newer lineage (we re-attached after a failover
    // elsewhere); adopt its epoch durably before applying anything from it.
    RPC_RETURN_IF_ERROR(StoreEpoch(options_.dir, reply->epoch));
    epoch_ = reply->epoch;
  }
  switch (reply->type) {
    case MessageType::kSnapshot:
      RPC_RETURN_IF_ERROR(HandleSnapshot(*reply));
      break;
    case MessageType::kWalBatch:
      RPC_RETURN_IF_ERROR(HandleWalBatch(*reply));
      break;
    case MessageType::kFenced:
      // Our own epoch fenced the source (it is stale, we are newer):
      // nothing further will ever come from it.
      return Status::Unavailable("replica: source reports itself fenced");
    case MessageType::kCatchUpRequest:
      return Status::Ok();  // not addressed to us; ignore
  }
  last_good_time_ = now_();
  return Status::Ok();
}

Status ReplicaApplier::CatchUpTo(std::uint64_t target_seq) {
  RetryState retry(options_.retry, &rng_, now_);
  Status last = Status::Ok();
  while (durable_seq_ < target_seq) {
    const std::uint64_t before = durable_seq_;
    const Status status = PumpOnce();
    if (status.code() == StatusCode::kAborted) return status;  // fenced
    if (status.ok() && durable_seq_ > before) {
      retry.Reset();  // progress: a fresh outage gets a fresh budget
      continue;
    }
    last = status.ok()
               ? Status::Unavailable("replica: no progress (empty heartbeat)")
               : status;
    double delay = 0.0;
    RPC_RETURN_IF_ERROR(retry.NextDelayOr(last, &delay));
    retries_counter_.Increment();
    sleep_(delay);
  }
  return Status::Ok();
}

Status ReplicaApplier::Promote() {
  if (!initialized_ || !has_state_) {
    return Status::FailedPrecondition(
        "replica: cannot promote a standby with no installed state");
  }
  // Epoch first, durably: the moment the new lineage exists on disk, any
  // message from the old primary compares lower and is rejected — even if
  // we crash between here and the ranker promotion.
  RPC_RETURN_IF_ERROR(StoreEpoch(options_.dir, epoch_ + 1));
  epoch_ += 1;
  if (sink_ != nullptr) {
    RPC_RETURN_IF_ERROR(sink_->Sync());
    sink_.reset();  // the promoted ranker takes over the same segment files
  }
  return ranker_->PromoteToPrimary();
}

}  // namespace rpc::replica
