#ifndef RPC_REPLICA_EPOCH_H_
#define RPC_REPLICA_EPOCH_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace rpc::replica {

/// Fencing epochs, persisted per durable directory as `<dir>/EPOCH`.
///
/// The rules (classic monotonic-term fencing):
///  - a primary serves replication at the epoch it was started with;
///  - every message carries its sender's epoch;
///  - promotion bumps the standby's persisted epoch *before* the standby
///    starts accepting writes, so the new lineage is on disk first;
///  - any node that observes an epoch newer than its own is deposed: a
///    source stops serving (kAborted), an applier discards the message.
/// Together these guarantee a deposed primary's late writes can never
/// reach a standby that has joined a newer lineage.

/// Reads the persisted epoch; 0 when the file does not exist yet (a node
/// that has never been part of a promotion).
Result<std::uint64_t> LoadEpoch(const std::string& dir);

/// Crash-atomically persists `epoch` (temp + fsync + rename).
Status StoreEpoch(const std::string& dir, std::uint64_t epoch);

}  // namespace rpc::replica

#endif  // RPC_REPLICA_EPOCH_H_
