#ifndef RPC_REPLICA_TRANSPORT_H_
#define RPC_REPLICA_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"

namespace rpc::replica {

/// One direction-agnostic message pipe between a primary and a standby.
/// Frames are opaque byte strings (wire.h encodings); delivery is
/// at-most-once and unordered as far as the protocol is concerned — the
/// loopback implementation happens to be reliable and FIFO, and the fault
/// wrapper deliberately is not. Implementations must be safe for one
/// sender thread and one receiver thread per side.
class Link {
 public:
  virtual ~Link() = default;

  /// Enqueues one frame for the peer. kUnavailable once either side closed.
  virtual Status Send(std::string frame) = 0;

  /// Blocks for up to `timeout_seconds` for the next frame from the peer.
  /// kDeadlineExceeded when the deadline lapses with nothing delivered —
  /// the per-RPC timeout every session-layer wait is built on.
  /// kUnavailable once the link is closed and drained.
  virtual Result<std::string> Receive(double timeout_seconds) = 0;

  /// Closes both directions; blocked Receives wake with kUnavailable once
  /// drained. Idempotent. Models the peer process dying.
  virtual void Close() = 0;
};

struct LinkPair {
  std::unique_ptr<Link> primary;  // the source's end
  std::unique_ptr<Link> standby;  // the applier's end
};

/// In-process pipe pair: what one end Sends, the other Receives, FIFO and
/// loss-free. Closing either end closes the pair.
LinkPair MakeLoopbackPair();

/// Stochastic fault model applied to *sent* frames. Each probability is
/// evaluated independently per frame from a deterministic seeded stream,
/// so a given (plan, message sequence) replays the exact same fault
/// pattern — the property-test matrix depends on that.
struct FaultPlan {
  double drop = 0.0;       // frame silently discarded
  double duplicate = 0.0;  // frame delivered twice
  double reorder = 0.0;    // frame held back and swapped with the next one
  double delay = 0.0;      // frame held back, delivered before the next one
  double truncate = 0.0;   // frame cut in half (fails the frame CRC)
  std::uint64_t seed = 1;
};

/// Wraps a link's Send side with the fault plan; Receive and Close pass
/// through. Held-back frames (reorder/delay) flush ahead of the next send,
/// or are lost on Close — exactly like packets in a dying kernel buffer.
std::unique_ptr<Link> WrapWithFaults(std::unique_ptr<Link> inner,
                                     const FaultPlan& plan);

}  // namespace rpc::replica

#endif  // RPC_REPLICA_TRANSPORT_H_
