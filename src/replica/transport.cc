#include "replica/transport.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/rng.h"

namespace rpc::replica {

namespace {

/// One direction of the loopback pipe: an unbounded FIFO with a shared
/// closed flag. Unbounded is deliberate — a bounded queue could deadlock a
/// single-threaded request/response test, and the session layer's
/// pull-based protocol keeps at most a handful of frames in flight anyway.
struct Channel {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> frames;
  bool closed = false;
};

class LoopbackLink final : public Link {
 public:
  LoopbackLink(std::shared_ptr<Channel> out, std::shared_ptr<Channel> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  ~LoopbackLink() override { Close(); }

  Status Send(std::string frame) override {
    std::lock_guard<std::mutex> lock(out_->mu);
    if (out_->closed) return Status::Unavailable("loopback link closed");
    out_->frames.push_back(std::move(frame));
    out_->cv.notify_one();
    return Status::Ok();
  }

  Result<std::string> Receive(double timeout_seconds) override {
    std::unique_lock<std::mutex> lock(in_->mu);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_seconds));
    while (in_->frames.empty()) {
      if (in_->closed) return Status::Unavailable("loopback link closed");
      if (in_->cv.wait_until(lock, deadline) == std::cv_status::timeout &&
          in_->frames.empty()) {
        return in_->closed
                   ? Status::Unavailable("loopback link closed")
                   : Status::DeadlineExceeded("loopback receive timed out");
      }
    }
    std::string frame = std::move(in_->frames.front());
    in_->frames.pop_front();
    return frame;
  }

  void Close() override {
    for (const std::shared_ptr<Channel>& channel : {out_, in_}) {
      std::lock_guard<std::mutex> lock(channel->mu);
      channel->closed = true;
      channel->cv.notify_all();
    }
  }

 private:
  std::shared_ptr<Channel> out_;
  std::shared_ptr<Channel> in_;
};

class FaultyLink final : public Link {
 public:
  FaultyLink(std::unique_ptr<Link> inner, const FaultPlan& plan)
      : inner_(std::move(inner)), plan_(plan), rng_(plan.seed) {}

  Status Send(std::string frame) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (rng_.Uniform() < plan_.truncate && frame.size() > 1) {
      frame.resize(frame.size() / 2);  // the frame CRC catches this
    }
    if (rng_.Uniform() < plan_.drop) {
      return Status::Ok();  // the network ate it; sender never knows
    }
    if (held_.has_value()) {
      // A frame is already held back. reorder delivered it *after* the
      // current frame; delay delivers it first (late but in order).
      std::string held = std::move(*held_);
      held_.reset();
      if (held_reorder_) {
        RPC_RETURN_IF_ERROR(inner_->Send(std::move(frame)));
        return inner_->Send(std::move(held));
      }
      RPC_RETURN_IF_ERROR(inner_->Send(std::move(held)));
      return inner_->Send(std::move(frame));
    }
    if (rng_.Uniform() < plan_.reorder) {
      held_ = std::move(frame);
      held_reorder_ = true;
      return Status::Ok();
    }
    if (rng_.Uniform() < plan_.delay) {
      held_ = std::move(frame);
      held_reorder_ = false;
      return Status::Ok();
    }
    if (rng_.Uniform() < plan_.duplicate) {
      RPC_RETURN_IF_ERROR(inner_->Send(frame));
    }
    return inner_->Send(std::move(frame));
  }

  Result<std::string> Receive(double timeout_seconds) override {
    return inner_->Receive(timeout_seconds);
  }

  void Close() override {
    {
      // A held frame dies with the connection, like any unflushed buffer.
      std::lock_guard<std::mutex> lock(mu_);
      held_.reset();
    }
    inner_->Close();
  }

 private:
  std::unique_ptr<Link> inner_;
  const FaultPlan plan_;
  std::mutex mu_;  // serializes the rng and the held-frame slot
  Rng rng_;
  std::optional<std::string> held_;
  bool held_reorder_ = false;
};

}  // namespace

LinkPair MakeLoopbackPair() {
  auto to_standby = std::make_shared<Channel>();
  auto to_primary = std::make_shared<Channel>();
  LinkPair pair;
  pair.primary = std::make_unique<LoopbackLink>(to_standby, to_primary);
  pair.standby = std::make_unique<LoopbackLink>(to_primary, to_standby);
  return pair;
}

std::unique_ptr<Link> WrapWithFaults(std::unique_ptr<Link> inner,
                                     const FaultPlan& plan) {
  return std::make_unique<FaultyLink>(std::move(inner), plan);
}

}  // namespace rpc::replica
