#ifndef RPC_RANK_RANK_AGGREGATION_H_
#define RPC_RANK_RANK_AGGREGATION_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace rpc::rank {

/// How per-list rank positions are combined into an aggregate.
enum class AggregationMethod {
  /// kappa(i) = mean_j tau_j(i) — exactly Eq. (30). (The paper calls this
  /// median rank aggregation after Dwork et al. [34]; the formula printed
  /// and the Table 1 values 1.5/1.5/3 are the mean.)
  kMeanRank,
  /// True median of the positions.
  kMedianRank,
  /// Borda count: sum of (position - 1); same ordering as kMeanRank, kept
  /// for the generalized-Borda comparison of [17].
  kBordaCount,
};

/// Tie-aware rank positions (1-based, average ranks for ties) induced by a
/// score vector. With `ascending` the smallest score gets position 1 — this
/// matches the per-attribute "Order" columns of Table 1, where position n
/// is the best object.
linalg::Vector RanksFromScores(const linalg::Vector& scores,
                               bool ascending = true);

/// Aggregates m rank lists (each a vector of 1-based positions for the same
/// n objects, position n = best) into one aggregate value per object.
/// Higher aggregate = ranked better for every method. Returns
/// kInvalidArgument when lists are empty or sizes disagree.
Result<linalg::Vector> AggregateRanks(
    const std::vector<linalg::Vector>& rank_lists,
    AggregationMethod method = AggregationMethod::kMeanRank);

/// Convenience: builds per-attribute rank lists from the columns of `data`
/// (orientation-corrected: for benefit attributes, sign +1, larger values
/// get larger positions; for cost attributes smaller values do) and
/// aggregates them. This is the RankAgg comparator of Table 1.
Result<linalg::Vector> AggregateAttributeRanks(
    const linalg::Matrix& data, const std::vector<int>& signs,
    AggregationMethod method = AggregationMethod::kMeanRank);

/// Options for Markov-chain rank aggregation.
struct Mc4Options {
  /// Teleportation weight making the chain ergodic (PageRank-style).
  double damping = 0.15;
  int max_iterations = 500;
  double tolerance = 1e-12;
};

/// MC4 Markov-chain rank aggregation from the paper's reference [34]
/// (Dwork, Kumar, Naor, Sivakumar, WWW'01): from state i, pick a random
/// object j; move there when a majority of the input lists rank j above i.
/// The stationary distribution (computed by power iteration with damping)
/// scores the objects; higher mass = ranked better. Like Eq. (30) it uses
/// only the orderings, so it inherits the same meta-rule failures — it is
/// here as the strongest member of the aggregation family.
/// `rank_lists` follow the same convention as AggregateRanks (position n =
/// best). Returns the stationary probabilities.
Result<linalg::Vector> AggregateRanksMc4(
    const std::vector<linalg::Vector>& rank_lists,
    const Mc4Options& options = {});

}  // namespace rpc::rank

#endif  // RPC_RANK_RANK_AGGREGATION_H_
