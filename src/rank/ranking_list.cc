#include "rank/ranking_list.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/stringutil.h"

namespace rpc::rank {

RankingList::RankingList(const linalg::Vector& scores,
                         std::vector<std::string> labels,
                         bool higher_is_better) {
  assert(labels.empty() ||
         static_cast<int>(labels.size()) == scores.size());
  items_.resize(static_cast<size_t>(scores.size()));
  for (int i = 0; i < scores.size(); ++i) {
    items_[static_cast<size_t>(i)].index = i;
    items_[static_cast<size_t>(i)].score = scores[i];
    if (!labels.empty()) {
      items_[static_cast<size_t>(i)].label = labels[static_cast<size_t>(i)];
    }
  }
  Build(scores, higher_is_better);
}

RankingList::RankingList(const linalg::Vector& scores, bool higher_is_better)
    : RankingList(scores, {}, higher_is_better) {}

void RankingList::Build(const linalg::Vector& scores, bool higher_is_better) {
  std::stable_sort(items_.begin(), items_.end(),
                   [&](const RankedItem& a, const RankedItem& b) {
                     if (a.score != b.score) {
                       return higher_is_better ? a.score > b.score
                                               : a.score < b.score;
                     }
                     return a.index < b.index;
                   });
  position_of_.assign(static_cast<size_t>(scores.size()), 0);
  for (size_t pos = 0; pos < items_.size(); ++pos) {
    items_[pos].position = static_cast<int>(pos) + 1;
    position_of_[static_cast<size_t>(items_[pos].index)] =
        static_cast<int>(pos) + 1;
  }
  // Tie-aware average ranks: equal scores share the mean position.
  average_ranks_.assign(static_cast<size_t>(scores.size()), 0.0);
  size_t i = 0;
  while (i < items_.size()) {
    size_t j = i;
    while (j + 1 < items_.size() &&
           items_[j + 1].score == items_[i].score) {
      ++j;
    }
    const double avg =
        0.5 * (static_cast<double>(i + 1) + static_cast<double>(j + 1));
    for (size_t k = i; k <= j; ++k) {
      average_ranks_[static_cast<size_t>(items_[k].index)] = avg;
    }
    i = j + 1;
  }
}

int RankingList::PositionOf(int index) const {
  assert(index >= 0 && index < size());
  return position_of_[static_cast<size_t>(index)];
}

double RankingList::AverageRankOf(int index) const {
  assert(index >= 0 && index < size());
  return average_ranks_[static_cast<size_t>(index)];
}

std::vector<int> RankingList::OrderedIndices() const {
  std::vector<int> order;
  order.reserve(items_.size());
  for (const RankedItem& item : items_) order.push_back(item.index);
  return order;
}

std::string RankingList::ToTableString(int top) const {
  const int limit =
      top <= 0 ? size() : std::min(top, size());
  std::string out = StrFormat("%-6s %-28s %12s\n", "rank", "object", "score");
  for (int i = 0; i < limit; ++i) {
    const RankedItem& item = items_[static_cast<size_t>(i)];
    const std::string label =
        item.label.empty() ? StrFormat("#%d", item.index) : item.label;
    out += StrFormat("%-6d %-28s %12.6f\n", item.position, label.c_str(),
                     item.score);
  }
  return out;
}

}  // namespace rpc::rank
