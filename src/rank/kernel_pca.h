#ifndef RPC_RANK_KERNEL_PCA_H_
#define RPC_RANK_KERNEL_PCA_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "order/orientation.h"
#include "rank/ranking_function.h"

namespace rpc::rank {

/// Options for the RBF kernel PCA ranker.
struct KernelPcaOptions {
  /// RBF bandwidth sigma; <= 0 selects the median pairwise distance
  /// heuristic.
  double sigma = 0.0;
  /// Hard cap on training size: the eigenproblem is n x n and the Jacobi
  /// solver is O(n^3) per sweep.
  int max_rows = 800;
};

/// The kernel-PCA scoring rule the introduction discusses: data are mapped
/// into an RBF feature space and scored by the first kernel principal
/// component, with the standard double-centering and out-of-sample
/// extension. It can follow curved clouds that defeat the linear PCA, but
/// the feature map is not order-preserving, so it breaks strict
/// monotonicity (the paper's Section 1 critique), and its parameter size
/// grows with n (no explicitness).
class KernelPcaRanker : public RankingFunction {
 public:
  static Result<KernelPcaRanker> Fit(const linalg::Matrix& data,
                                     const order::Orientation& alpha,
                                     const KernelPcaOptions& options = {});

  double Score(const linalg::Vector& x) const override;
  std::string name() const override { return "KernelPCA"; }
  /// Nonparametric: the coefficient vector grows with the training set, so
  /// there is no fixed explicit parameter size (meta-rule 5 fails).
  std::optional<int> ParameterCount() const override { return std::nullopt; }

  double sigma() const { return sigma_; }
  /// Share of (centred) kernel variance along the first component.
  double explained_kernel_variance() const {
    return explained_kernel_variance_;
  }

 private:
  KernelPcaRanker() = default;

  double Kernel(const linalg::Vector& a, const linalg::Vector& b) const;

  linalg::Matrix train_;        // normalised training rows
  linalg::Vector coefficients_; // alpha weights of the first component
  linalg::Vector mins_;
  linalg::Vector ranges_;
  linalg::Vector train_kernel_means_;  // column means of the kernel matrix
  double kernel_grand_mean_ = 0.0;
  double sigma_ = 1.0;
  double sign_ = 1.0;
  double explained_kernel_variance_ = 0.0;
};

}  // namespace rpc::rank

#endif  // RPC_RANK_KERNEL_PCA_H_
