#include "rank/first_pca.h"

#include <cmath>
#include <limits>

#include "linalg/eigen.h"
#include "linalg/stats.h"

namespace rpc::rank {

using linalg::Matrix;
using linalg::Vector;

Result<FirstPcaRanker> FirstPcaRanker::Fit(const Matrix& data,
                                           const order::Orientation& alpha) {
  if (data.rows() < 2) {
    return Status::InvalidArgument("FirstPcaRanker: need at least 2 rows");
  }
  if (data.cols() != alpha.dimension()) {
    return Status::InvalidArgument("FirstPcaRanker: alpha dimension");
  }
  FirstPcaRanker ranker;
  ranker.mins_ = linalg::ColumnMins(data);
  const Vector maxs = linalg::ColumnMaxs(data);
  ranker.ranges_ = Vector(data.cols());
  for (int j = 0; j < data.cols(); ++j) {
    ranker.ranges_[j] = maxs[j] - ranker.mins_[j];
    if (ranker.ranges_[j] <= 0.0) {
      return Status::InvalidArgument("FirstPcaRanker: constant attribute");
    }
  }
  Matrix normalized(data.rows(), data.cols());
  for (int i = 0; i < data.rows(); ++i) {
    for (int j = 0; j < data.cols(); ++j) {
      normalized(i, j) = (data(i, j) - ranker.mins_[j]) / ranker.ranges_[j];
    }
  }
  ranker.mean_ = linalg::ColumnMeans(normalized);
  const Matrix cov = linalg::Covariance(normalized);
  RPC_ASSIGN_OR_RETURN(linalg::SymmetricEigen eig,
                       linalg::JacobiEigenSymmetric(cov));
  Vector w = eig.vectors.Column(0);
  // Orient toward the best corner so higher scores mean better.
  if (linalg::Dot(w, alpha.AsVector()) < 0.0) w *= -1.0;
  ranker.direction_ = w;
  const double total = eig.values.Sum();
  ranker.explained_variance_ratio_ =
      total > 0.0 ? eig.values[0] / total : 0.0;

  // Record the observed score span for skeleton sampling.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < data.rows(); ++i) {
    const double s = ranker.Score(data.Row(i));
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  ranker.score_lo_ = lo;
  ranker.score_hi_ = hi;
  return ranker;
}

double FirstPcaRanker::Score(const Vector& x) const {
  assert(x.size() == direction_.size());
  double score = 0.0;
  for (int j = 0; j < x.size(); ++j) {
    const double normalized = (x[j] - mins_[j]) / ranges_[j];
    score += direction_[j] * (normalized - mean_[j]);
  }
  return score;
}

Matrix FirstPcaRanker::SampleSkeleton(int grid) const {
  Matrix samples(grid + 1, direction_.size());
  for (int i = 0; i <= grid; ++i) {
    const double s =
        score_lo_ + (score_hi_ - score_lo_) * static_cast<double>(i) / grid;
    for (int j = 0; j < direction_.size(); ++j) {
      const double normalized = mean_[j] + s * direction_[j];
      samples(i, j) = mins_[j] + normalized * ranges_[j];
    }
  }
  return samples;
}

}  // namespace rpc::rank
