#ifndef RPC_RANK_FIRST_PCA_H_
#define RPC_RANK_FIRST_PCA_H_

#include "common/result.h"
#include "linalg/vector.h"
#include "order/orientation.h"
#include "rank/ranking_function.h"

namespace rpc::rank {

/// The first-principal-component ranking rule of Section 4.1: data are
/// summarised by the line mu + s w through the mean along the direction of
/// maximal variance; phi(x) = w^T (x - mu). The sign of w is chosen so that
/// higher scores point toward the orientation's best corner.
///
/// This is the linear special case the RPC generalises; it fails on curved
/// skeletons (Fig. 5a) and can lose strict monotonicity when w is parallel
/// to a coordinate axis (Example 1).
class FirstPcaRanker : public RankingFunction {
 public:
  /// Fits mean and leading eigenvector on normalised data (min-max per
  /// column, Eq. 29), which makes the rule scale/translation invariant.
  static Result<FirstPcaRanker> Fit(const linalg::Matrix& data,
                                    const order::Orientation& alpha);

  double Score(const linalg::Vector& x) const override;
  std::string name() const override { return "FirstPCA"; }
  /// w and mu: 2d parameters.
  std::optional<int> ParameterCount() const override {
    return 2 * direction_.size();
  }

  /// Leading direction in normalised space.
  const linalg::Vector& direction() const { return direction_; }
  /// Fraction of total variance explained by the first component.
  double explained_variance_ratio() const {
    return explained_variance_ratio_;
  }

  /// Points of the ranking skeleton (the principal line) in the raw space,
  /// spanning the data's score range; rows are samples.
  linalg::Matrix SampleSkeleton(int grid) const;

 private:
  FirstPcaRanker() = default;

  linalg::Vector direction_;  // unit vector in normalised space
  linalg::Vector mean_;       // mean in normalised space
  linalg::Vector mins_;
  linalg::Vector ranges_;
  double explained_variance_ratio_ = 0.0;
  double score_lo_ = 0.0;  // observed score range for skeleton sampling
  double score_hi_ = 0.0;
};

}  // namespace rpc::rank

#endif  // RPC_RANK_FIRST_PCA_H_
