#include "rank/rank_aggregation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/stringutil.h"

namespace rpc::rank {

using linalg::Matrix;
using linalg::Vector;

Vector RanksFromScores(const Vector& scores, bool ascending) {
  const int n = scores.size();
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return ascending ? scores[a] < scores[b] : scores[a] > scores[b];
  });
  Vector ranks(n);
  int i = 0;
  while (i < n) {
    int j = i;
    while (j + 1 < n &&
           scores[order[static_cast<size_t>(j + 1)]] ==
               scores[order[static_cast<size_t>(i)]]) {
      ++j;
    }
    const double avg = 0.5 * ((i + 1) + (j + 1));
    for (int k = i; k <= j; ++k) {
      ranks[order[static_cast<size_t>(k)]] = avg;
    }
    i = j + 1;
  }
  return ranks;
}

Result<Vector> AggregateRanks(const std::vector<Vector>& rank_lists,
                              AggregationMethod method) {
  if (rank_lists.empty()) {
    return Status::InvalidArgument("AggregateRanks: no rank lists");
  }
  const int n = rank_lists[0].size();
  for (const Vector& list : rank_lists) {
    if (list.size() != n) {
      return Status::InvalidArgument("AggregateRanks: size mismatch");
    }
  }
  const int m = static_cast<int>(rank_lists.size());
  Vector aggregate(n);
  for (int i = 0; i < n; ++i) {
    switch (method) {
      case AggregationMethod::kMeanRank: {
        double sum = 0.0;
        for (const Vector& list : rank_lists) sum += list[i];
        aggregate[i] = sum / m;
        break;
      }
      case AggregationMethod::kMedianRank: {
        std::vector<double> positions;
        positions.reserve(static_cast<size_t>(m));
        for (const Vector& list : rank_lists) positions.push_back(list[i]);
        std::sort(positions.begin(), positions.end());
        aggregate[i] =
            (m % 2 == 1)
                ? positions[static_cast<size_t>(m / 2)]
                : 0.5 * (positions[static_cast<size_t>(m / 2 - 1)] +
                         positions[static_cast<size_t>(m / 2)]);
        break;
      }
      case AggregationMethod::kBordaCount: {
        double sum = 0.0;
        for (const Vector& list : rank_lists) sum += list[i] - 1.0;
        aggregate[i] = sum;
        break;
      }
    }
  }
  return aggregate;
}

Result<Vector> AggregateRanksMc4(const std::vector<Vector>& rank_lists,
                                 const Mc4Options& options) {
  if (rank_lists.empty()) {
    return Status::InvalidArgument("AggregateRanksMc4: no rank lists");
  }
  const int n = rank_lists[0].size();
  for (const Vector& list : rank_lists) {
    if (list.size() != n) {
      return Status::InvalidArgument("AggregateRanksMc4: size mismatch");
    }
  }
  if (n == 0) return Vector();
  if (options.damping <= 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("AggregateRanksMc4: damping in (0,1)");
  }
  const int m = static_cast<int>(rank_lists.size());

  // Row-stochastic transition matrix of the MC4 walk: from i, propose a
  // uniform j != i and accept when a strict majority of lists place j
  // better (larger position); otherwise stay.
  Matrix transition(n, n);
  for (int i = 0; i < n; ++i) {
    double move_mass = 0.0;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      int prefer_j = 0;
      for (const Vector& list : rank_lists) {
        if (list[j] > list[i]) ++prefer_j;
      }
      if (2 * prefer_j > m) {
        transition(i, j) = 1.0 / n;
        move_mass += 1.0 / n;
      }
    }
    transition(i, i) = 1.0 - move_mass;
  }

  // Damped power iteration for the stationary distribution.
  Vector pi(n, 1.0 / n);
  const double teleport = options.damping / n;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    Vector next(n, teleport);
    for (int i = 0; i < n; ++i) {
      const double mass = (1.0 - options.damping) * pi[i];
      if (mass == 0.0) continue;
      for (int j = 0; j < n; ++j) {
        if (transition(i, j) > 0.0) next[j] += mass * transition(i, j);
      }
    }
    double delta = 0.0;
    for (int i = 0; i < n; ++i) delta += std::fabs(next[i] - pi[i]);
    pi = std::move(next);
    if (delta < options.tolerance) break;
  }
  return pi;
}

Result<Vector> AggregateAttributeRanks(const Matrix& data,
                                       const std::vector<int>& signs,
                                       AggregationMethod method) {
  if (static_cast<int>(signs.size()) != data.cols()) {
    return Status::InvalidArgument(
        "AggregateAttributeRanks: sign count != attribute count");
  }
  std::vector<Vector> rank_lists;
  rank_lists.reserve(signs.size());
  for (int j = 0; j < data.cols(); ++j) {
    if (signs[static_cast<size_t>(j)] != 1 &&
        signs[static_cast<size_t>(j)] != -1) {
      return Status::InvalidArgument(
          StrFormat("AggregateAttributeRanks: bad sign at %d", j));
    }
    const bool ascending = signs[static_cast<size_t>(j)] == 1;
    rank_lists.push_back(RanksFromScores(data.Column(j), ascending));
  }
  return AggregateRanks(rank_lists, method);
}

}  // namespace rpc::rank
