#ifndef RPC_RANK_METRICS_H_
#define RPC_RANK_METRICS_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "order/orientation.h"

namespace rpc::rank {

/// Kendall rank correlation tau-b between two score vectors (tie-corrected;
/// in [-1, 1], 1 = identical orderings). O(n^2), fine for the data sizes of
/// the paper's experiments.
double KendallTauB(const linalg::Vector& a, const linalg::Vector& b);

/// Kendall tau-a (no tie correction): (concordant - discordant) / C(n, 2).
double KendallTauA(const linalg::Vector& a, const linalg::Vector& b);

/// Spearman rank correlation (Pearson on tie-averaged ranks).
double SpearmanRho(const linalg::Vector& a, const linalg::Vector& b);

/// Spearman footrule distance between the orderings induced by two score
/// vectors: sum_i |rank_a(i) - rank_b(i)|.
double SpearmanFootrule(const linalg::Vector& a, const linalg::Vector& b);

/// Order-preservation audit of a score vector against the cone order of the
/// raw observations: counts strictly comparable row pairs whose scores are
/// discordant or tied (Example 1's failure cases).
struct OrderViolationReport {
  int comparable_pairs = 0;
  int violations = 0;
  int ties = 0;
  double violation_rate() const {
    return comparable_pairs > 0
               ? static_cast<double>(violations + ties) / comparable_pairs
               : 0.0;
  }
};
OrderViolationReport CountOrderViolations(const linalg::Matrix& data,
                                          const linalg::Vector& scores,
                                          const order::Orientation& alpha,
                                          double tol = 1e-9);

/// Fraction of total variance explained by a curve fit:
/// 1 - J / sum_i ||x_i - mean||^2, the Section 6.2.1 metric (90% vs 86%).
double ExplainedVariance(double residual_j, const linalg::Matrix& data);

}  // namespace rpc::rank

#endif  // RPC_RANK_METRICS_H_
