#ifndef RPC_RANK_WEIGHTED_SUM_H_
#define RPC_RANK_WEIGHTED_SUM_H_

#include "common/result.h"
#include "linalg/vector.h"
#include "order/orientation.h"
#include "rank/ranking_function.h"

namespace rpc::rank {

/// The classical expert-weighted linear scoring rule discussed in the
/// introduction: phi(x) = sum_j w_j * xhat_j on min-max normalised,
/// orientation-corrected attributes. Strictly monotone and invariant, but
/// linear-only (fails meta-rule 3's nonlinear half).
class WeightedSumRanker : public RankingFunction {
 public:
  /// Fits the normalisation on `data`; `weights` must be positive and match
  /// the data dimension (they are rescaled to sum to 1). Cost attributes
  /// (alpha_j = -1) contribute via (1 - xhat_j).
  static Result<WeightedSumRanker> Fit(const linalg::Matrix& data,
                                       const order::Orientation& alpha,
                                       const linalg::Vector& weights);

  /// Equal-weight convenience.
  static Result<WeightedSumRanker> FitEqualWeights(
      const linalg::Matrix& data, const order::Orientation& alpha);

  double Score(const linalg::Vector& x) const override;
  std::string name() const override { return "WeightedSum"; }
  std::optional<int> ParameterCount() const override {
    return weights_.size();
  }

  const linalg::Vector& weights() const { return weights_; }

 private:
  WeightedSumRanker(linalg::Vector weights, linalg::Vector mins,
                    linalg::Vector ranges, order::Orientation alpha)
      : weights_(std::move(weights)),
        mins_(std::move(mins)),
        ranges_(std::move(ranges)),
        alpha_(std::move(alpha)) {}

  linalg::Vector weights_;
  linalg::Vector mins_;
  linalg::Vector ranges_;
  order::Orientation alpha_;
};

}  // namespace rpc::rank

#endif  // RPC_RANK_WEIGHTED_SUM_H_
