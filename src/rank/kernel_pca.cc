#include "rank/kernel_pca.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "linalg/eigen.h"
#include "linalg/stats.h"

namespace rpc::rank {

using linalg::Matrix;
using linalg::Vector;

Result<KernelPcaRanker> KernelPcaRanker::Fit(const Matrix& data,
                                             const order::Orientation& alpha,
                                             const KernelPcaOptions& options) {
  const int n = data.rows();
  const int d = data.cols();
  if (n < 3) {
    return Status::InvalidArgument("KernelPcaRanker: need at least 3 rows");
  }
  if (n > options.max_rows) {
    return Status::InvalidArgument(
        "KernelPcaRanker: training set exceeds max_rows (O(n^3) eigsolve)");
  }
  if (d != alpha.dimension()) {
    return Status::InvalidArgument("KernelPcaRanker: alpha dimension");
  }

  KernelPcaRanker model;
  model.mins_ = linalg::ColumnMins(data);
  const Vector maxs = linalg::ColumnMaxs(data);
  model.ranges_ = Vector(d);
  for (int j = 0; j < d; ++j) {
    model.ranges_[j] = maxs[j] - model.mins_[j];
    if (model.ranges_[j] <= 0.0) {
      return Status::InvalidArgument("KernelPcaRanker: constant attribute");
    }
  }
  model.train_ = Matrix(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) {
      model.train_(i, j) = (data(i, j) - model.mins_[j]) / model.ranges_[j];
    }
  }

  // Median pairwise distance bandwidth heuristic.
  if (options.sigma > 0.0) {
    model.sigma_ = options.sigma;
  } else {
    std::vector<double> distances;
    distances.reserve(static_cast<size_t>(n) * (n - 1) / 2);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        distances.push_back(
            linalg::Distance(model.train_.Row(i), model.train_.Row(j)));
      }
    }
    std::nth_element(distances.begin(),
                     distances.begin() + distances.size() / 2,
                     distances.end());
    model.sigma_ = std::max(distances[distances.size() / 2], 1e-6);
  }

  // Kernel matrix and double centering: K' = K - 1K - K1 + 1K1.
  Matrix kernel(n, n);
  for (int i = 0; i < n; ++i) {
    kernel(i, i) = 1.0;
    for (int j = i + 1; j < n; ++j) {
      const double value =
          model.Kernel(model.train_.Row(i), model.train_.Row(j));
      kernel(i, j) = value;
      kernel(j, i) = value;
    }
  }
  model.train_kernel_means_ = Vector(n);
  for (int j = 0; j < n; ++j) {
    model.train_kernel_means_[j] = kernel.Column(j).Sum() / n;
  }
  model.kernel_grand_mean_ = model.train_kernel_means_.Sum() / n;
  Matrix centered(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      centered(i, j) = kernel(i, j) - model.train_kernel_means_[i] -
                       model.train_kernel_means_[j] +
                       model.kernel_grand_mean_;
    }
  }

  RPC_ASSIGN_OR_RETURN(linalg::SymmetricEigen eig,
                       linalg::JacobiEigenSymmetric(centered));
  const double lambda = eig.values[0];
  if (lambda <= 0.0) {
    return Status::NumericalError("KernelPcaRanker: degenerate kernel");
  }
  // Normalise so the feature-space component has unit norm:
  // alpha = v / sqrt(lambda).
  model.coefficients_ = eig.vectors.Column(0) / std::sqrt(lambda);
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += std::max(eig.values[i], 0.0);
  model.explained_kernel_variance_ = total > 0.0 ? lambda / total : 0.0;

  // Orient scores toward the best corner.
  Vector scores(n);
  Vector oriented(n);
  model.sign_ = 1.0;
  for (int i = 0; i < n; ++i) {
    scores[i] = model.Score(data.Row(i));
    double sum = 0.0;
    for (int j = 0; j < d; ++j) sum += alpha.sign(j) * model.train_(i, j);
    oriented[i] = sum;
  }
  if (linalg::PearsonCorrelation(scores, oriented) < 0.0) model.sign_ = -1.0;
  return model;
}

double KernelPcaRanker::Kernel(const Vector& a, const Vector& b) const {
  double dist2 = 0.0;
  for (int j = 0; j < a.size(); ++j) {
    const double diff = a[j] - b[j];
    dist2 += diff * diff;
  }
  return std::exp(-dist2 / (2.0 * sigma_ * sigma_));
}

double KernelPcaRanker::Score(const Vector& x) const {
  assert(x.size() == train_.cols());
  Vector normalized(x.size());
  for (int j = 0; j < x.size(); ++j) {
    normalized[j] = (x[j] - mins_[j]) / ranges_[j];
  }
  const int n = train_.rows();
  // Out-of-sample centring: k'(x)_i = k(x, x_i) - mean_j k(x, x_j)
  //                                  - mean_j k(x_i, x_j) + grand mean.
  Vector kx(n);
  double mean_kx = 0.0;
  for (int i = 0; i < n; ++i) {
    kx[i] = Kernel(normalized, train_.Row(i));
    mean_kx += kx[i];
  }
  mean_kx /= n;
  double score = 0.0;
  for (int i = 0; i < n; ++i) {
    score += coefficients_[i] * (kx[i] - mean_kx - train_kernel_means_[i] +
                                 kernel_grand_mean_);
  }
  return sign_ * score;
}

}  // namespace rpc::rank
