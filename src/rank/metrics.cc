#include "rank/metrics.h"

#include <cassert>
#include <cmath>

#include "linalg/stats.h"
#include "rank/rank_aggregation.h"

namespace rpc::rank {

using linalg::Matrix;
using linalg::Vector;

namespace {

struct PairCounts {
  double concordant = 0;
  double discordant = 0;
  double ties_a = 0;   // tied in a only
  double ties_b = 0;   // tied in b only
  double ties_ab = 0;  // tied in both
  double total = 0;
};

PairCounts CountPairs(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  PairCounts counts;
  const int n = a.size();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      ++counts.total;
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      if (da == 0.0 && db == 0.0) {
        ++counts.ties_ab;
      } else if (da == 0.0) {
        ++counts.ties_a;
      } else if (db == 0.0) {
        ++counts.ties_b;
      } else if ((da > 0.0) == (db > 0.0)) {
        ++counts.concordant;
      } else {
        ++counts.discordant;
      }
    }
  }
  return counts;
}

}  // namespace

double KendallTauB(const Vector& a, const Vector& b) {
  const PairCounts c = CountPairs(a, b);
  const double n0 = c.total;
  if (n0 == 0) return 0.0;
  const double n1 = c.ties_a + c.ties_ab;
  const double n2 = c.ties_b + c.ties_ab;
  const double denom = std::sqrt((n0 - n1) * (n0 - n2));
  if (denom == 0.0) return 0.0;
  return (c.concordant - c.discordant) / denom;
}

double KendallTauA(const Vector& a, const Vector& b) {
  const PairCounts c = CountPairs(a, b);
  if (c.total == 0) return 0.0;
  return (c.concordant - c.discordant) / c.total;
}

double SpearmanRho(const Vector& a, const Vector& b) {
  const Vector ranks_a = RanksFromScores(a, /*ascending=*/true);
  const Vector ranks_b = RanksFromScores(b, /*ascending=*/true);
  return linalg::PearsonCorrelation(ranks_a, ranks_b);
}

double SpearmanFootrule(const Vector& a, const Vector& b) {
  const Vector ranks_a = RanksFromScores(a, /*ascending=*/true);
  const Vector ranks_b = RanksFromScores(b, /*ascending=*/true);
  double total = 0.0;
  for (int i = 0; i < ranks_a.size(); ++i) {
    total += std::fabs(ranks_a[i] - ranks_b[i]);
  }
  return total;
}

OrderViolationReport CountOrderViolations(const Matrix& data,
                                          const Vector& scores,
                                          const order::Orientation& alpha,
                                          double tol) {
  assert(data.rows() == scores.size());
  OrderViolationReport report;
  const int n = data.rows();
  std::vector<Vector> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) rows.push_back(data.Row(i));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const bool ij = alpha.StrictlyPrecedes(rows[static_cast<size_t>(i)],
                                             rows[static_cast<size_t>(j)]);
      const bool ji = alpha.StrictlyPrecedes(rows[static_cast<size_t>(j)],
                                             rows[static_cast<size_t>(i)]);
      if (!ij && !ji) continue;
      ++report.comparable_pairs;
      const double lo = ij ? scores[i] : scores[j];
      const double hi = ij ? scores[j] : scores[i];
      if (lo > hi + tol) {
        ++report.violations;
      } else if (std::fabs(hi - lo) <= tol) {
        ++report.ties;
      }
    }
  }
  return report;
}

double ExplainedVariance(double residual_j, const Matrix& data) {
  const double scatter = linalg::TotalScatter(data);
  if (scatter <= 0.0) return 0.0;
  return 1.0 - residual_j / scatter;
}

}  // namespace rpc::rank
