#include "rank/weighted_sum.h"

#include <cmath>

#include "common/stringutil.h"
#include "linalg/stats.h"

namespace rpc::rank {

using linalg::Matrix;
using linalg::Vector;

Result<WeightedSumRanker> WeightedSumRanker::Fit(
    const Matrix& data, const order::Orientation& alpha,
    const Vector& weights) {
  if (data.cols() != alpha.dimension()) {
    return Status::InvalidArgument("WeightedSumRanker: alpha dimension");
  }
  if (weights.size() != data.cols()) {
    return Status::InvalidArgument("WeightedSumRanker: weight dimension");
  }
  double total = 0.0;
  for (int j = 0; j < weights.size(); ++j) {
    if (weights[j] <= 0.0) {
      return Status::InvalidArgument(
          StrFormat("WeightedSumRanker: weight %d not positive", j));
    }
    total += weights[j];
  }
  Vector normalized = weights;
  normalized /= total;

  const Vector mins = linalg::ColumnMins(data);
  const Vector maxs = linalg::ColumnMaxs(data);
  Vector ranges(data.cols());
  for (int j = 0; j < data.cols(); ++j) {
    ranges[j] = maxs[j] - mins[j];
    if (ranges[j] <= 0.0) {
      return Status::InvalidArgument(
          StrFormat("WeightedSumRanker: constant attribute %d", j));
    }
  }
  return WeightedSumRanker(std::move(normalized), mins, ranges, alpha);
}

Result<WeightedSumRanker> WeightedSumRanker::FitEqualWeights(
    const Matrix& data, const order::Orientation& alpha) {
  return Fit(data, alpha, Vector(data.cols(), 1.0));
}

double WeightedSumRanker::Score(const Vector& x) const {
  assert(x.size() == weights_.size());
  double score = 0.0;
  for (int j = 0; j < x.size(); ++j) {
    const double normalized = (x[j] - mins_[j]) / ranges_[j];
    const double oriented =
        alpha_.sign(j) > 0 ? normalized : 1.0 - normalized;
    score += weights_[j] * oriented;
  }
  return score;
}

}  // namespace rpc::rank
