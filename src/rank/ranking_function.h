#ifndef RPC_RANK_RANKING_FUNCTION_H_
#define RPC_RANK_RANKING_FUNCTION_H_

#include <optional>
#include <string>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace rpc::rank {

/// Interface for a fitted ranking function phi : R^d -> R (Section 2).
/// Higher scores always mean "ranked better" for every implementation in
/// this library.
class RankingFunction {
 public:
  virtual ~RankingFunction() = default;

  /// Score of a single raw observation.
  virtual double Score(const linalg::Vector& x) const = 0;

  /// Scores for each row of `data`.
  linalg::Vector ScoreRows(const linalg::Matrix& data) const {
    linalg::Vector scores(data.rows());
    for (int i = 0; i < data.rows(); ++i) scores[i] = Score(data.Row(i));
    return scores;
  }

  /// Implementation name for reports.
  virtual std::string name() const = 0;

  /// Explicit parameter size (meta-rule 5); nullopt for nonparametric
  /// models.
  virtual std::optional<int> ParameterCount() const { return std::nullopt; }
};

}  // namespace rpc::rank

#endif  // RPC_RANK_RANKING_FUNCTION_H_
