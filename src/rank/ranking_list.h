#ifndef RPC_RANK_RANKING_LIST_H_
#define RPC_RANK_RANKING_LIST_H_

#include <string>
#include <vector>

#include "linalg/vector.h"

namespace rpc::rank {

/// One entry of a ranking list.
struct RankedItem {
  int index = 0;        // row index in the original data
  std::string label;    // object name (may be empty)
  double score = 0.0;
  int position = 0;     // 1-based position in the sorted list
};

/// A totally ordered ranking list built from scores. By convention position
/// 1 is the best object (highest score); pass higher_is_better = false to
/// invert. Ties are broken by original index to keep the list deterministic,
/// but tie-aware average ranks are available for metrics (Eq. 30 feeds on
/// them).
class RankingList {
 public:
  RankingList(const linalg::Vector& scores, std::vector<std::string> labels,
              bool higher_is_better = true);
  explicit RankingList(const linalg::Vector& scores,
                       bool higher_is_better = true);

  int size() const { return static_cast<int>(items_.size()); }
  /// Items in ranked order (best first).
  const std::vector<RankedItem>& items() const { return items_; }
  /// 1-based position of original row `index` in the list.
  int PositionOf(int index) const;
  /// Tie-aware average rank of original row `index` (1-based; equal scores
  /// share the mean of the positions they occupy).
  double AverageRankOf(int index) const;
  /// All average ranks indexed by original row.
  const std::vector<double>& average_ranks() const { return average_ranks_; }
  /// The permutation of original indices in ranked order.
  std::vector<int> OrderedIndices() const;

  /// Pretty table of the first `top` rows (all when top <= 0).
  std::string ToTableString(int top = 0) const;

 private:
  void Build(const linalg::Vector& scores, bool higher_is_better);

  std::vector<RankedItem> items_;            // sorted, best first
  std::vector<int> position_of_;             // original index -> position
  std::vector<double> average_ranks_;        // original index -> avg rank
};

}  // namespace rpc::rank

#endif  // RPC_RANK_RANKING_LIST_H_
