#include "baselines/polyline_geometry.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace rpc::baselines {

using linalg::Matrix;
using linalg::Vector;

double PolylineLength(const Matrix& nodes) {
  double length = 0.0;
  for (int i = 0; i + 1 < nodes.rows(); ++i) {
    length += linalg::Distance(nodes.Row(i), nodes.Row(i + 1));
  }
  return length;
}

PolylineProjection ProjectOntoPolyline(const Matrix& nodes, const Vector& x) {
  assert(nodes.rows() >= 1);
  PolylineProjection best;
  best.squared_distance = std::numeric_limits<double>::infinity();

  // Precompute cumulative arc length.
  std::vector<double> cumulative(static_cast<size_t>(nodes.rows()), 0.0);
  for (int i = 1; i < nodes.rows(); ++i) {
    cumulative[static_cast<size_t>(i)] =
        cumulative[static_cast<size_t>(i - 1)] +
        linalg::Distance(nodes.Row(i - 1), nodes.Row(i));
  }
  const double total = cumulative.back() > 0.0 ? cumulative.back() : 1.0;

  if (nodes.rows() == 1) {
    best.t = 0.0;
    best.squared_distance = (x - nodes.Row(0)).SquaredNorm();
    best.segment = 0;
    return best;
  }

  for (int i = 0; i + 1 < nodes.rows(); ++i) {
    const Vector a = nodes.Row(i);
    const Vector b = nodes.Row(i + 1);
    const Vector ab = b - a;
    const double len2 = ab.SquaredNorm();
    double u = 0.0;
    if (len2 > 0.0) u = std::clamp(linalg::Dot(x - a, ab) / len2, 0.0, 1.0);
    const Vector closest = a + u * ab;
    const double dist2 = (x - closest).SquaredNorm();
    const double t =
        (cumulative[static_cast<size_t>(i)] + u * std::sqrt(len2)) / total;
    // Strictly better, or equal within tolerance and larger t (sup rule).
    // The first segment is always accepted (the infinite sentinel would
    // otherwise poison the slack arithmetic with inf - inf).
    const double slack = std::isfinite(best.squared_distance)
                             ? 1e-12 * (1.0 + best.squared_distance)
                             : 0.0;
    if (!std::isfinite(best.squared_distance) ||
        dist2 < best.squared_distance - slack ||
        (dist2 <= best.squared_distance + slack && t > best.t)) {
      best.squared_distance = dist2;
      best.t = t;
      best.segment = i;
    }
  }
  return best;
}

Matrix SamplePolyline(const Matrix& nodes, int grid) {
  assert(grid >= 1);
  Matrix samples(grid + 1, nodes.cols());
  if (nodes.rows() == 1) {
    for (int i = 0; i <= grid; ++i) samples.SetRow(i, nodes.Row(0));
    return samples;
  }
  std::vector<double> cumulative(static_cast<size_t>(nodes.rows()), 0.0);
  for (int i = 1; i < nodes.rows(); ++i) {
    cumulative[static_cast<size_t>(i)] =
        cumulative[static_cast<size_t>(i - 1)] +
        linalg::Distance(nodes.Row(i - 1), nodes.Row(i));
  }
  const double total = cumulative.back();
  int seg = 0;
  for (int i = 0; i <= grid; ++i) {
    const double target = total * static_cast<double>(i) / grid;
    while (seg + 2 < nodes.rows() &&
           cumulative[static_cast<size_t>(seg + 1)] < target) {
      ++seg;
    }
    const double seg_len = cumulative[static_cast<size_t>(seg + 1)] -
                           cumulative[static_cast<size_t>(seg)];
    const double u =
        seg_len > 0.0
            ? (target - cumulative[static_cast<size_t>(seg)]) / seg_len
            : 0.0;
    samples.SetRow(i, nodes.Row(seg) +
                          std::clamp(u, 0.0, 1.0) *
                              (nodes.Row(seg + 1) - nodes.Row(seg)));
  }
  return samples;
}

double PolylineResidual(const Matrix& nodes, const Matrix& data) {
  double total = 0.0;
  for (int i = 0; i < data.rows(); ++i) {
    total += ProjectOntoPolyline(nodes, data.Row(i)).squared_distance;
  }
  return total;
}

}  // namespace rpc::baselines
