#include "baselines/polyline_curve.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "baselines/polyline_geometry.h"
#include "linalg/eigen.h"
#include "linalg/stats.h"

namespace rpc::baselines {

using linalg::Matrix;
using linalg::Vector;

Result<PolylineCurve> PolylineCurve::Fit(const Matrix& data,
                                         const order::Orientation& alpha,
                                         const PolylineCurveOptions& options) {
  if (data.rows() < 3) {
    return Status::InvalidArgument("PolylineCurve: need at least 3 rows");
  }
  if (data.cols() != alpha.dimension()) {
    return Status::InvalidArgument("PolylineCurve: alpha dimension mismatch");
  }
  if (options.num_vertices < 2) {
    return Status::InvalidArgument("PolylineCurve: need >= 2 vertices");
  }
  const int n = data.rows();
  const int d = data.cols();
  const int k = options.num_vertices;

  PolylineCurve model;
  model.mins_ = linalg::ColumnMins(data);
  const Vector maxs = linalg::ColumnMaxs(data);
  model.ranges_ = Vector(d);
  for (int j = 0; j < d; ++j) {
    model.ranges_[j] = maxs[j] - model.mins_[j];
    if (model.ranges_[j] <= 0.0) {
      return Status::InvalidArgument("PolylineCurve: constant attribute");
    }
  }
  Matrix normalized(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) {
      normalized(i, j) = (data(i, j) - model.mins_[j]) / model.ranges_[j];
    }
  }

  // Initialise along the first principal component.
  const Vector mean = linalg::ColumnMeans(normalized);
  const Matrix cov = linalg::Covariance(normalized);
  RPC_ASSIGN_OR_RETURN(linalg::SymmetricEigen eig,
                       linalg::JacobiEigenSymmetric(cov));
  const Vector w = eig.vectors.Column(0);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; ++i) {
    const double s = linalg::Dot(normalized.Row(i) - mean, w);
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  Matrix vertices(k, d);
  for (int v = 0; v < k; ++v) {
    const double s = lo + (hi - lo) * static_cast<double>(v) / (k - 1);
    vertices.SetRow(v, mean + s * w);
  }

  // Alternate: project points, then move each vertex to the mean of the
  // points whose projection parameter falls in its cell.
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::vector<Vector> sums(static_cast<size_t>(k), Vector(d));
    std::vector<int> counts(static_cast<size_t>(k), 0);
    for (int i = 0; i < n; ++i) {
      const PolylineProjection proj =
          ProjectOntoPolyline(vertices, normalized.Row(i));
      int cell = static_cast<int>(std::lround(proj.t * (k - 1)));
      cell = std::clamp(cell, 0, k - 1);
      sums[static_cast<size_t>(cell)] += normalized.Row(i);
      ++counts[static_cast<size_t>(cell)];
    }
    Matrix next = vertices;
    for (int v = 0; v < k; ++v) {
      if (counts[static_cast<size_t>(v)] > 0) {
        next.SetRow(v, sums[static_cast<size_t>(v)] /
                           static_cast<double>(
                               counts[static_cast<size_t>(v)]));
      } else if (v > 0 && v + 1 < k) {
        next.SetRow(v, 0.5 * (vertices.Row(v - 1) + vertices.Row(v + 1)));
      }
      // Light smoothing keeps the chain ordered without erasing kinks.
      if (v > 0 && v + 1 < k && options.smoothing > 0.0) {
        next.SetRow(
            v, (1.0 - options.smoothing) * next.Row(v) +
                   options.smoothing * 0.5 *
                       (next.Row(v - 1) + vertices.Row(v + 1)));
      }
    }
    double movement = 0.0;
    for (int v = 0; v < k; ++v) {
      movement += (next.Row(v) - vertices.Row(v)).SquaredNorm();
    }
    vertices = std::move(next);
    if (movement < options.tolerance * k) break;
  }

  model.vertices_ = vertices;
  // Orientation of the arc-length parameter.
  Vector ts(n);
  Vector oriented_sum(n);
  for (int i = 0; i < n; ++i) {
    ts[i] = ProjectOntoPolyline(vertices, normalized.Row(i)).t;
    double sum = 0.0;
    for (int j = 0; j < d; ++j) sum += alpha.sign(j) * normalized(i, j);
    oriented_sum[i] = sum;
  }
  model.sign_ = linalg::PearsonCorrelation(ts, oriented_sum) >= 0.0 ? 1.0
                                                                    : -1.0;
  model.residual_j_ = PolylineResidual(vertices, normalized);
  return model;
}

double PolylineCurve::Score(const Vector& x) const {
  assert(x.size() == vertices_.cols());
  Vector normalized(x.size());
  for (int j = 0; j < x.size(); ++j) {
    normalized[j] = (x[j] - mins_[j]) / ranges_[j];
  }
  const PolylineProjection proj = ProjectOntoPolyline(vertices_, normalized);
  return sign_ > 0.0 ? proj.t : 1.0 - proj.t;
}

Matrix PolylineCurve::SampleSkeletonRaw(int grid) const {
  Matrix samples = SamplePolyline(vertices_, grid);
  for (int i = 0; i < samples.rows(); ++i) {
    for (int j = 0; j < samples.cols(); ++j) {
      samples(i, j) = mins_[j] + samples(i, j) * ranges_[j];
    }
  }
  return samples;
}

}  // namespace rpc::baselines
