#ifndef RPC_BASELINES_POLYLINE_GEOMETRY_H_
#define RPC_BASELINES_POLYLINE_GEOMETRY_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace rpc::baselines {

/// Projection of a point onto a polyline (rows of `nodes` are the ordered
/// vertices).
struct PolylineProjection {
  /// Normalised arc-length parameter of the projection in [0, 1].
  double t = 0.0;
  double squared_distance = 0.0;
  int segment = 0;  // index of the segment containing the projection
};

/// Total length of the polyline.
double PolylineLength(const linalg::Matrix& nodes);

/// Nearest point on the polyline; ties broken toward larger t (matching the
/// sup convention of Eq. A-2).
PolylineProjection ProjectOntoPolyline(const linalg::Matrix& nodes,
                                       const linalg::Vector& x);

/// grid+1 evenly spaced (in arc length) samples along the polyline, as rows.
linalg::Matrix SamplePolyline(const linalg::Matrix& nodes, int grid);

/// Summed squared projection distance of all rows of `data` — the polyline
/// analogue of J (Eq. 19).
double PolylineResidual(const linalg::Matrix& nodes,
                        const linalg::Matrix& data);

}  // namespace rpc::baselines

#endif  // RPC_BASELINES_POLYLINE_GEOMETRY_H_
