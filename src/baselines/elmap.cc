#include "baselines/elmap.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "baselines/polyline_geometry.h"
#include "linalg/eigen.h"
#include "linalg/solve.h"
#include "linalg/stats.h"

namespace rpc::baselines {

using linalg::Matrix;
using linalg::Vector;

namespace {

// Initial node chain: evenly spaced along the first principal component
// segment spanning the data's projections.
Result<Matrix> InitialChain(const Matrix& data, int num_nodes) {
  const Vector mean = linalg::ColumnMeans(data);
  const Matrix cov = linalg::Covariance(data);
  RPC_ASSIGN_OR_RETURN(linalg::SymmetricEigen eig,
                       linalg::JacobiEigenSymmetric(cov));
  const Vector w = eig.vectors.Column(0);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < data.rows(); ++i) {
    const double s = linalg::Dot(data.Row(i) - mean, w);
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  Matrix nodes(num_nodes, data.cols());
  for (int k = 0; k < num_nodes; ++k) {
    const double s = lo + (hi - lo) * static_cast<double>(k) /
                              (num_nodes - 1);
    nodes.SetRow(k, mean + s * w);
  }
  return nodes;
}

// Builds the (K x K) elastic system matrix W + lambda*E + mu*R where W is
// diag(cluster mass / n), E the edge Laplacian, and R = S^T S with S the
// second-difference operator over the chain.
Matrix ElasticSystem(const std::vector<double>& mass, double lambda,
                     double mu) {
  const int k = static_cast<int>(mass.size());
  Matrix a(k, k);
  for (int i = 0; i < k; ++i) a(i, i) = mass[static_cast<size_t>(i)];
  // Stretch term: for each edge (i, i+1), add [[1,-1],[-1,1]] * lambda.
  for (int i = 0; i + 1 < k; ++i) {
    a(i, i) += lambda;
    a(i + 1, i + 1) += lambda;
    a(i, i + 1) -= lambda;
    a(i + 1, i) -= lambda;
  }
  // Bend term: for each rib (i-1, i, i+1), add mu * rr^T with
  // r = (1, -2, 1).
  for (int i = 1; i + 1 < k; ++i) {
    const int idx[3] = {i - 1, i, i + 1};
    const double r[3] = {1.0, -2.0, 1.0};
    for (int a_i = 0; a_i < 3; ++a_i) {
      for (int b_i = 0; b_i < 3; ++b_i) {
        a(idx[a_i], idx[b_i]) += mu * r[a_i] * r[b_i];
      }
    }
  }
  return a;
}

}  // namespace

Result<ElmapCurve> ElmapCurve::Fit(const Matrix& data,
                                   const order::Orientation& alpha,
                                   const ElmapOptions& options) {
  if (data.rows() < 3) {
    return Status::InvalidArgument("ElmapCurve: need at least 3 rows");
  }
  if (data.cols() != alpha.dimension()) {
    return Status::InvalidArgument("ElmapCurve: alpha dimension mismatch");
  }
  if (options.num_nodes < 3) {
    return Status::InvalidArgument("ElmapCurve: need at least 3 nodes");
  }
  const int n = data.rows();
  const int d = data.cols();
  const int k = options.num_nodes;

  ElmapCurve model;
  model.mins_ = linalg::ColumnMins(data);
  const Vector maxs = linalg::ColumnMaxs(data);
  model.ranges_ = Vector(d);
  for (int j = 0; j < d; ++j) {
    model.ranges_[j] = maxs[j] - model.mins_[j];
    if (model.ranges_[j] <= 0.0) {
      return Status::InvalidArgument("ElmapCurve: constant attribute");
    }
  }
  Matrix normalized(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) {
      normalized(i, j) = (data(i, j) - model.mins_[j]) / model.ranges_[j];
    }
  }

  RPC_ASSIGN_OR_RETURN(Matrix nodes, InitialChain(normalized, k));

  std::vector<int> assignment(static_cast<size_t>(n), 0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // E step: assign each point to its nearest node.
    for (int i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_node = 0;
      for (int node = 0; node < k; ++node) {
        const double dist2 =
            (normalized.Row(i) - nodes.Row(node)).SquaredNorm();
        if (dist2 < best) {
          best = dist2;
          best_node = node;
        }
      }
      assignment[static_cast<size_t>(i)] = best_node;
    }
    // Annealed elasticity: start stiff, relax to the target moduli.
    double anneal = 1.0;
    if (iter < options.anneal_iterations) {
      const double frac =
          static_cast<double>(iter) / options.anneal_iterations;
      anneal = options.anneal_factor *
                   std::pow(1.0 / options.anneal_factor, frac);
    }
    const double lambda = options.lambda * anneal;
    const double mu = options.mu * anneal;

    // M step: solve the elastic system per dimension.
    std::vector<double> mass(static_cast<size_t>(k), 0.0);
    Matrix rhs(k, d);
    for (int i = 0; i < n; ++i) {
      const int node = assignment[static_cast<size_t>(i)];
      mass[static_cast<size_t>(node)] += 1.0 / n;
      for (int j = 0; j < d; ++j) {
        rhs(node, j) += normalized(i, j) / n;
      }
    }
    const Matrix system = ElasticSystem(mass, lambda, mu);
    RPC_ASSIGN_OR_RETURN(Matrix next_nodes, linalg::SolveLinearSystem(
                                                system, rhs));
    double movement = 0.0;
    for (int node = 0; node < k; ++node) {
      movement += (next_nodes.Row(node) - nodes.Row(node)).SquaredNorm();
    }
    nodes = std::move(next_nodes);
    model.iterations_ = iter + 1;
    if (movement < options.tolerance * k) break;
  }

  model.nodes_ = nodes;

  // Orient increasing arc length toward the best corner: correlate the
  // projection parameter with the oriented coordinate sum.
  double corr = 0.0;
  Vector ts(n);
  for (int i = 0; i < n; ++i) {
    ts[i] = ProjectOntoPolyline(nodes, normalized.Row(i)).t;
  }
  Vector oriented_sum(n);
  for (int i = 0; i < n; ++i) {
    double sum = 0.0;
    for (int j = 0; j < d; ++j) {
      sum += alpha.sign(j) * normalized(i, j);
    }
    oriented_sum[i] = sum;
  }
  corr = linalg::PearsonCorrelation(ts, oriented_sum);
  model.sign_ = corr >= 0.0 ? 1.0 : -1.0;

  double mean_t = 0.0;
  for (int i = 0; i < n; ++i) mean_t += ts[i];
  mean_t /= n;
  model.mean_t_ = mean_t;
  model.residual_j_ = PolylineResidual(nodes, normalized);
  return model;
}

double ElmapCurve::Score(const Vector& x) const {
  assert(x.size() == nodes_.cols());
  Vector normalized(x.size());
  for (int j = 0; j < x.size(); ++j) {
    normalized[j] = (x[j] - mins_[j]) / ranges_[j];
  }
  const PolylineProjection proj = ProjectOntoPolyline(nodes_, normalized);
  return sign_ * (proj.t - mean_t_);
}

Matrix ElmapCurve::SampleSkeletonRaw(int grid) const {
  Matrix samples = SamplePolyline(nodes_, grid);
  for (int i = 0; i < samples.rows(); ++i) {
    for (int j = 0; j < samples.cols(); ++j) {
      samples(i, j) = mins_[j] + samples(i, j) * ranges_[j];
    }
  }
  return samples;
}

}  // namespace rpc::baselines
