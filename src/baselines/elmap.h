#ifndef RPC_BASELINES_ELMAP_H_
#define RPC_BASELINES_ELMAP_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "linalg/matrix.h"
#include "order/orientation.h"
#include "rank/ranking_function.h"

namespace rpc::baselines {

/// Configuration of the elastic principal curve (Gorban-Zinovyev Elmap
/// [8][19]): a chain of `num_nodes` nodes fit by expectation-maximisation
/// of the elastic energy
///   U = (1/n) sum_i ||x_i - y_{k(i)}||^2
///     + lambda * sum_edges ||y_{j+1} - y_j||^2
///     + mu * sum_ribs ||y_{j-1} - 2 y_j + y_{j+1}||^2.
struct ElmapOptions {
  int num_nodes = 20;
  double lambda = 0.01;  // stretching elasticity
  double mu = 0.1;       // bending elasticity
  int max_iterations = 100;
  double tolerance = 1e-8;  // relative node-movement stopping threshold
  /// Softening schedule: elasticity moduli are annealed from
  /// anneal_factor * (lambda, mu) down to the targets over the first
  /// iterations, the standard Elmap trick to avoid poor local optima.
  double anneal_factor = 10.0;
  int anneal_iterations = 20;
};

/// Fitted elastic principal curve used as a ranking function, replicating
/// the comparator of Table 2. Scores are the *centred* normalised
/// arc-length positions of projections — the paper's point that Elmap
/// "assigns the zero score to no country" and lacks [0,1] anchoring is
/// visible directly in these values.
class ElmapCurve : public rank::RankingFunction {
 public:
  static Result<ElmapCurve> Fit(const linalg::Matrix& data,
                                const order::Orientation& alpha,
                                const ElmapOptions& options = {});

  /// Centred score of a raw observation (higher = better).
  double Score(const linalg::Vector& x) const override;
  std::string name() const override { return "Elmap"; }
  /// Node positions are the parameters, but the right node count is not
  /// known a priori — the explicitness critique of Section 6.2.1. We
  /// surface the fitted size anyway.
  std::optional<int> ParameterCount() const override {
    return nodes_.rows() * nodes_.cols();
  }

  /// Node chain in normalised space (rows = nodes).
  const linalg::Matrix& nodes() const { return nodes_; }
  /// Skeleton samples in the raw space.
  linalg::Matrix SampleSkeletonRaw(int grid) const;
  /// Summed squared residual of the fitted data (for explained variance).
  double residual_j() const { return residual_j_; }
  int iterations() const { return iterations_; }

 private:
  ElmapCurve() = default;

  linalg::Matrix nodes_;   // K x d in normalised space
  linalg::Vector mins_;    // normalisation parameters
  linalg::Vector ranges_;
  double mean_t_ = 0.5;    // mean projection parameter (for centring)
  double sign_ = 1.0;      // orientation of increasing t
  double residual_j_ = 0.0;
  int iterations_ = 0;
};

}  // namespace rpc::baselines

#endif  // RPC_BASELINES_ELMAP_H_
