#ifndef RPC_BASELINES_HASTIE_STUETZLE_H_
#define RPC_BASELINES_HASTIE_STUETZLE_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "linalg/matrix.h"
#include "order/orientation.h"
#include "rank/ranking_function.h"

namespace rpc::baselines {

/// Options for the Hastie-Stuetzle principal curve.
struct HastieStuetzleOptions {
  /// Discretisation nodes of the curve.
  int num_nodes = 50;
  /// Gaussian kernel bandwidth of the scatterplot smoother, in units of
  /// the arc-length parameter (0..1).
  double bandwidth = 0.08;
  int max_iterations = 40;
  double tolerance = 1e-9;
};

/// The original principal curve of Hastie and Stuetzle [10] that the
/// paper's Appendix A reviews: alternate projecting points onto the curve
/// and replacing each curve point by the kernel-smoothed conditional mean
/// E(x | s_f(x) = s), discretised on an arc-length grid. Smooth-ish but
/// with no monotonicity constraint: on bent clouds it produces exactly the
/// non-order-preserving behaviour of Fig. 2(b), which is what makes it a
/// baseline here rather than a ranking function.
class HastieStuetzleCurve : public rank::RankingFunction {
 public:
  static Result<HastieStuetzleCurve> Fit(
      const linalg::Matrix& data, const order::Orientation& alpha,
      const HastieStuetzleOptions& options = {});

  /// Normalised arc-length projection parameter, oriented toward the best
  /// corner (higher = better).
  double Score(const linalg::Vector& x) const override;
  std::string name() const override { return "HastieStuetzle"; }
  /// Nonparametric (the 'black box' critique of Appendix A).
  std::optional<int> ParameterCount() const override { return std::nullopt; }

  const linalg::Matrix& nodes() const { return nodes_; }
  linalg::Matrix SampleSkeletonRaw(int grid) const;
  double residual_j() const { return residual_j_; }
  int iterations() const { return iterations_; }

 private:
  HastieStuetzleCurve() = default;

  linalg::Matrix nodes_;  // num_nodes x d, normalised space
  linalg::Vector mins_;
  linalg::Vector ranges_;
  double sign_ = 1.0;
  double residual_j_ = 0.0;
  int iterations_ = 0;
};

}  // namespace rpc::baselines

#endif  // RPC_BASELINES_HASTIE_STUETZLE_H_
