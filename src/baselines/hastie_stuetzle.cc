#include "baselines/hastie_stuetzle.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "baselines/polyline_geometry.h"
#include "linalg/eigen.h"
#include "linalg/stats.h"

namespace rpc::baselines {

using linalg::Matrix;
using linalg::Vector;

Result<HastieStuetzleCurve> HastieStuetzleCurve::Fit(
    const Matrix& data, const order::Orientation& alpha,
    const HastieStuetzleOptions& options) {
  const int n = data.rows();
  const int d = data.cols();
  if (n < 5) {
    return Status::InvalidArgument("HastieStuetzleCurve: need >= 5 rows");
  }
  if (d != alpha.dimension()) {
    return Status::InvalidArgument("HastieStuetzleCurve: alpha dimension");
  }
  if (options.num_nodes < 5) {
    return Status::InvalidArgument("HastieStuetzleCurve: need >= 5 nodes");
  }
  if (options.bandwidth <= 0.0) {
    return Status::InvalidArgument("HastieStuetzleCurve: bandwidth <= 0");
  }

  HastieStuetzleCurve model;
  model.mins_ = linalg::ColumnMins(data);
  const Vector maxs = linalg::ColumnMaxs(data);
  model.ranges_ = Vector(d);
  for (int j = 0; j < d; ++j) {
    model.ranges_[j] = maxs[j] - model.mins_[j];
    if (model.ranges_[j] <= 0.0) {
      return Status::InvalidArgument(
          "HastieStuetzleCurve: constant attribute");
    }
  }
  Matrix normalized(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) {
      normalized(i, j) = (data(i, j) - model.mins_[j]) / model.ranges_[j];
    }
  }

  // Initialise on the first principal component segment (the HS paper's
  // starting curve).
  const Vector mean = linalg::ColumnMeans(normalized);
  const Matrix cov = linalg::Covariance(normalized);
  RPC_ASSIGN_OR_RETURN(linalg::SymmetricEigen eig,
                       linalg::JacobiEigenSymmetric(cov));
  const Vector w = eig.vectors.Column(0);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; ++i) {
    const double s = linalg::Dot(normalized.Row(i) - mean, w);
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  const int g = options.num_nodes;
  Matrix nodes(g, d);
  for (int k = 0; k < g; ++k) {
    const double s = lo + (hi - lo) * static_cast<double>(k) / (g - 1);
    nodes.SetRow(k, mean + s * w);
  }

  // Expectation (smoothing) / projection iterations.
  Vector params(n);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    for (int i = 0; i < n; ++i) {
      params[i] = ProjectOntoPolyline(nodes, normalized.Row(i)).t;
    }
    // Conditional expectation via a Gaussian kernel smoother in s.
    Matrix next(g, d);
    const double h = options.bandwidth;
    for (int k = 0; k < g; ++k) {
      const double u = static_cast<double>(k) / (g - 1);
      double weight_sum = 0.0;
      Vector acc(d);
      for (int i = 0; i < n; ++i) {
        const double z = (params[i] - u) / h;
        const double weight = std::exp(-0.5 * z * z);
        weight_sum += weight;
        acc += weight * normalized.Row(i);
      }
      if (weight_sum > 1e-12) {
        next.SetRow(k, acc / weight_sum);
      } else {
        next.SetRow(k, nodes.Row(k));
      }
    }
    // Re-sample the smoothed chain uniformly in arc length so the grid does
    // not collapse into dense regions.
    next = SamplePolyline(next, g - 1);
    double movement = 0.0;
    for (int k = 0; k < g; ++k) {
      movement += (next.Row(k) - nodes.Row(k)).SquaredNorm();
    }
    nodes = std::move(next);
    model.iterations_ = iter + 1;
    if (movement < options.tolerance * g) break;
  }

  model.nodes_ = nodes;
  // Orient and collect the residual.
  Vector ts(n);
  Vector oriented(n);
  for (int i = 0; i < n; ++i) {
    ts[i] = ProjectOntoPolyline(nodes, normalized.Row(i)).t;
    double sum = 0.0;
    for (int j = 0; j < d; ++j) sum += alpha.sign(j) * normalized(i, j);
    oriented[i] = sum;
  }
  model.sign_ = linalg::PearsonCorrelation(ts, oriented) >= 0.0 ? 1.0 : -1.0;
  model.residual_j_ = PolylineResidual(nodes, normalized);
  return model;
}

double HastieStuetzleCurve::Score(const Vector& x) const {
  assert(x.size() == nodes_.cols());
  Vector normalized(x.size());
  for (int j = 0; j < x.size(); ++j) {
    normalized[j] = (x[j] - mins_[j]) / ranges_[j];
  }
  const PolylineProjection proj = ProjectOntoPolyline(nodes_, normalized);
  return sign_ > 0.0 ? proj.t : 1.0 - proj.t;
}

Matrix HastieStuetzleCurve::SampleSkeletonRaw(int grid) const {
  Matrix samples = SamplePolyline(nodes_, grid);
  for (int i = 0; i < samples.rows(); ++i) {
    for (int j = 0; j < samples.cols(); ++j) {
      samples(i, j) = mins_[j] + samples(i, j) * ranges_[j];
    }
  }
  return samples;
}

}  // namespace rpc::baselines
