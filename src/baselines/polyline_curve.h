#ifndef RPC_BASELINES_POLYLINE_CURVE_H_
#define RPC_BASELINES_POLYLINE_CURVE_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "linalg/matrix.h"
#include "order/orientation.h"
#include "rank/ranking_function.h"

namespace rpc::baselines {

/// Options for the polygonal-line principal curve in the spirit of Kegl et
/// al. [11]: a fixed number of vertices fit by alternating projection and
/// local vertex averaging (no bending penalty — the point of this baseline
/// is precisely that its skeleton is C0 but not C1, Fig. 2(a)/5(b)).
struct PolylineCurveOptions {
  int num_vertices = 8;
  int max_iterations = 60;
  double tolerance = 1e-9;
  /// Blend weight pulling empty-cell vertices toward their neighbours'
  /// midpoint so the chain never degenerates.
  double smoothing = 0.05;
};

/// Polyline principal curve used as a ranking function. Scores are the
/// normalised arc-length projection parameters oriented toward the best
/// corner. Exhibits the meta-rule failures the paper attributes to polyline
/// approximations: kinks (no C1) and flat segments that tie distinct
/// objects.
class PolylineCurve : public rank::RankingFunction {
 public:
  static Result<PolylineCurve> Fit(const linalg::Matrix& data,
                                   const order::Orientation& alpha,
                                   const PolylineCurveOptions& options = {});

  double Score(const linalg::Vector& x) const override;
  std::string name() const override { return "PolylinePC"; }
  std::optional<int> ParameterCount() const override {
    return vertices_.rows() * vertices_.cols();
  }

  const linalg::Matrix& vertices() const { return vertices_; }
  linalg::Matrix SampleSkeletonRaw(int grid) const;
  double residual_j() const { return residual_j_; }

 private:
  PolylineCurve() = default;

  linalg::Matrix vertices_;  // K x d, normalised space
  linalg::Vector mins_;
  linalg::Vector ranges_;
  double sign_ = 1.0;
  double residual_j_ = 0.0;
};

}  // namespace rpc::baselines

#endif  // RPC_BASELINES_POLYLINE_CURVE_H_
