#include "serve/ranking_service.h"

#include <algorithm>
#include <condition_variable>
#include <utility>

#include "common/stringutil.h"
#include "curve/bezier.h"
#include "rank/ranking_list.h"

namespace rpc::serve {

using linalg::Matrix;
using linalg::Vector;

/// Completion latch for one query, living on the ScoreBatch caller's stack:
/// segments count down as they finish and the caller waits for zero.
struct RankingService::BatchState {
  std::mutex mu;
  std::condition_variable done_cv;
  int remaining = 0;

  void Finish() {
    std::lock_guard<std::mutex> lock(mu);
    if (--remaining == 0) done_cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
};

/// Everything one dataset needs to answer queries, built whole before it is
/// published (copy-on-write) and immutable afterwards except the free list
/// and counters, which are internally synchronised.
struct RankingService::Shard {
  core::PortableRpcModel model;
  /// The validated curve behind a shared_ptr: workspaces co-own it via
  /// BindShared, so even a workspace observed mid-checkout during an evict
  /// keeps the geometry alive.
  std::shared_ptr<const curve::BezierCurve> curve;

  /// One bound workspace + normalisation scratch per slot. ProjectionWorkspace
  /// is neither copyable nor movable, hence the unique_ptr indirection.
  struct Slot {
    opt::ProjectionWorkspace workspace;
    std::vector<double> normalized;  // d scratch: the row in curve space
  };
  std::vector<std::unique_ptr<Slot>> slots;
  /// Free slot indices; checkout = Pop (blocks only while every slot is
  /// held by a segment that is actively running on some thread, so the wait
  /// is always finite), return = Push (never blocks: capacity == slots).
  mutable BoundedQueue<int> free_slots;

  explicit Shard(int num_slots) : free_slots(num_slots) {}
};

RankingService::RankingService(const Options& options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(options.num_threads)),
      queue_(std::max(options.queue_capacity, 1)) {
  options_.queue_capacity = std::max(options.queue_capacity, 1);
  if (options_.workspaces_per_shard <= 0) {
    options_.workspaces_per_shard = pool_->parallelism();
  }
  if (options_.segment_rows < 1) options_.segment_rows = 1;
}

RankingService::~RankingService() {
  // Refuse new admissions, then let the pool drain what was admitted (its
  // destructor runs WaitTasks); every drain task pops the segment admitted
  // before it, so nothing is left referencing caller memory.
  queue_.Close();
  pool_.reset();
}

Result<std::shared_ptr<const RankingService::Shard>>
RankingService::BuildShard(const core::PortableRpcModel& model) const {
  RPC_ASSIGN_OR_RETURN(core::RpcCurve curve, model.BuildCurve());
  // Deserialize enforces these for file-loaded models; an in-memory model
  // handed straight to RegisterDataset must meet the same contract, or the
  // hot loop would divide by (max - min) <= 0 and serve NaN scores.
  if (model.mins.size() != curve.dimension() ||
      model.maxs.size() != curve.dimension()) {
    return Status::InvalidArgument(StrFormat(
        "RankingService: model has %d-dimensional curve but %d mins / %d "
        "maxs",
        curve.dimension(), model.mins.size(), model.maxs.size()));
  }
  for (int j = 0; j < curve.dimension(); ++j) {
    if (!(model.maxs[j] > model.mins[j])) {
      return Status::InvalidArgument(StrFormat(
          "RankingService: attribute %d has max (%g) <= min (%g)", j,
          model.maxs[j], model.mins[j]));
    }
  }
  auto shard = std::make_shared<Shard>(options_.workspaces_per_shard);
  shard->model = model;
  shard->curve = std::make_shared<const curve::BezierCurve>(curve.bezier());
  const int d = shard->curve->dimension();
  shard->slots.reserve(static_cast<size_t>(options_.workspaces_per_shard));
  for (int i = 0; i < options_.workspaces_per_shard; ++i) {
    auto slot = std::make_unique<Shard::Slot>();
    slot->workspace.BindShared(shard->curve, options_.projection);
    slot->normalized.resize(static_cast<size_t>(d));
    shard->slots.push_back(std::move(slot));
    shard->free_slots.Push(i);
  }
  return std::shared_ptr<const Shard>(std::move(shard));
}

Status RankingService::RegisterDataset(const std::string& dataset_id,
                                       const core::PortableRpcModel& model) {
  if (dataset_id.empty()) {
    return Status::InvalidArgument("RankingService: empty dataset id");
  }
  // Build the complete replacement outside the lock — registration cost
  // (curve validation, workspace binds) never stalls queries — then swap.
  RPC_ASSIGN_OR_RETURN(std::shared_ptr<const Shard> shard, BuildShard(model));
  registrations_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(shards_mu_);
  shards_[dataset_id] = std::move(shard);
  return Status::Ok();
}

Result<std::uint64_t> RankingService::DatasetVersion(
    const std::string& dataset_id) const {
  const std::shared_ptr<const Shard> shard = FindShard(dataset_id);
  if (shard == nullptr) {
    return Status::NotFound(
        StrFormat("RankingService: no dataset '%s'", dataset_id.c_str()));
  }
  return shard->model.version;
}

Status RankingService::RegisterDatasetFromFile(const std::string& dataset_id,
                                              const std::string& path) {
  RPC_ASSIGN_OR_RETURN(core::PortableRpcModel model, core::LoadModel(path));
  return RegisterDataset(dataset_id, model);
}

Status RankingService::EvictDataset(const std::string& dataset_id) {
  std::lock_guard<std::mutex> lock(shards_mu_);
  if (shards_.erase(dataset_id) == 0) {
    return Status::NotFound(
        StrFormat("RankingService: no dataset '%s'", dataset_id.c_str()));
  }
  return Status::Ok();
}

bool RankingService::HasDataset(const std::string& dataset_id) const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  return shards_.count(dataset_id) != 0;
}

std::vector<std::string> RankingService::DatasetIds() const {
  std::vector<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    ids.reserve(shards_.size());
    for (const auto& [id, shard] : shards_) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::shared_ptr<const RankingService::Shard> RankingService::FindShard(
    const std::string& dataset_id) const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  const auto it = shards_.find(dataset_id);
  return it == shards_.end() ? nullptr : it->second;
}

void RankingService::RunOneSegment() const {
  // By construction one Submit follows each successful queue push, so this
  // Pop always finds the matching (not necessarily the same) segment.
  std::optional<Segment> seg = queue_.Pop();
  if (!seg.has_value()) return;  // closed and drained during shutdown

  const Shard& shard = *seg->shard;
  const std::optional<int> slot_index = shard.free_slots.Pop();
  if (!slot_index.has_value()) return;  // unreachable: free_slots never closes
  Shard::Slot& slot = *shard.slots[static_cast<size_t>(*slot_index)];

  const Vector& mins = shard.model.mins;
  const Vector& maxs = shard.model.maxs;
  const int d = static_cast<int>(slot.normalized.size());
  // Hot loop: normalise into the slot scratch, project, store s. The same
  // arithmetic as data::Normalizer::Transform + ProjectionWorkspace::Project,
  // so served scores are bit-identical to RpcRanker::Score; and like the
  // fitting engine's batch loop it allocates nothing per row.
  for (int i = seg->begin; i < seg->end; ++i) {
    const double* raw = seg->rows->RowPtr(i);
    for (int j = 0; j < d; ++j) {
      slot.normalized[static_cast<size_t>(j)] =
          (raw[j] - mins[j]) / (maxs[j] - mins[j]);
    }
    seg->scores_out[i] = slot.workspace.Project(slot.normalized.data()).s;
  }

  shard.free_slots.Push(*slot_index);
  seg->state->Finish();
}

Result<RankedBatch> RankingService::ScoreBatchImpl(
    const std::string& dataset_id, const Matrix& raw_rows,
    bool blocking) const {
  const std::shared_ptr<const Shard> shard = FindShard(dataset_id);
  if (shard == nullptr) {
    return Status::NotFound(
        StrFormat("RankingService: no dataset '%s'", dataset_id.c_str()));
  }
  const int d = shard->curve->dimension();
  if (raw_rows.cols() != d && raw_rows.rows() > 0) {
    return Status::InvalidArgument(
        StrFormat("RankingService: query has %d columns, dataset '%s' has "
                  "dimension %d",
                  raw_rows.cols(), dataset_id.c_str(), d));
  }

  RankedBatch batch;
  const int n = raw_rows.rows();
  batch.scores = Vector(n);
  if (n == 0) return batch;

  const int segment_rows = options_.segment_rows;
  const int num_segments = (n + segment_rows - 1) / segment_rows;

  BatchState state;
  state.remaining = num_segments;
  // Admit every segment before waiting; each successful push is paired
  // with exactly one Submit so pushes and pops stay balanced.
  for (int s = 0; s < num_segments; ++s) {
    Segment seg;
    seg.shard = shard;
    seg.rows = &raw_rows;
    seg.scores_out = batch.scores.data().data();
    seg.begin = s * segment_rows;
    seg.end = std::min(n, seg.begin + segment_rows);
    seg.state = &state;
    bool admitted;
    if (blocking) {
      admitted = queue_.Push(std::move(seg));
    } else {
      admitted = queue_.TryPush(std::move(seg));
    }
    if (!admitted) {
      // Non-blocking rejection (or shutdown): withdraw the segments not yet
      // admitted and wait out the ones that were.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(state.mu);
        state.remaining -= num_segments - s;
      }
      state.Wait();
      return Status::FailedPrecondition(
          blocking ? "RankingService: shutting down"
                   : "RankingService: admission queue full");
    }
    segments_.fetch_add(1, std::memory_order_relaxed);
    pool_->Submit([this] { RunOneSegment(); });
  }
  state.Wait();

  // Ranks within the batch, with RankingList's deterministic tie-break.
  const rank::RankingList list(batch.scores, /*higher_is_better=*/true);
  batch.ranks.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    batch.ranks[static_cast<size_t>(i)] = list.PositionOf(i);
  }

  queries_.fetch_add(1, std::memory_order_relaxed);
  rows_.fetch_add(n, std::memory_order_relaxed);
  return batch;
}

Result<RankedBatch> RankingService::ScoreBatch(const std::string& dataset_id,
                                               const Matrix& raw_rows) const {
  return ScoreBatchImpl(dataset_id, raw_rows, /*blocking=*/true);
}

Result<RankedBatch> RankingService::TryScoreBatch(
    const std::string& dataset_id, const Matrix& raw_rows) const {
  return ScoreBatchImpl(dataset_id, raw_rows, /*blocking=*/false);
}

ServiceStats RankingService::stats() const {
  ServiceStats stats;
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.rows = rows_.load(std::memory_order_relaxed);
  stats.segments = segments_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.registrations = registrations_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    stats.datasets = static_cast<int>(shards_.size());
  }
  stats.peak_queue_depth = queue_.peak_size();
  return stats;
}

}  // namespace rpc::serve
