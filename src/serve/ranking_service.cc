#include "serve/ranking_service.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <utility>

#include "common/stringutil.h"
#include "curve/bezier.h"
#include "obs/export.h"
#include "rank/ranking_list.h"

namespace rpc::serve {

using linalg::Matrix;
using linalg::Vector;

namespace {

using Clock = std::chrono::steady_clock;

/// Rows between cooperative deadline checks in the execution hot loop:
/// rare enough that the clock read is noise (a row costs ~1 us), frequent
/// enough that an expired query stops burning pool time within ~100 us.
/// Deliberately the SoA block capacity: the hot loop scores one packed
/// block per deadline check, so the SIMD batch layout leaves cancellation
/// granularity unchanged.
constexpr int kDeadlineCheckStride = opt::RowBlock::kMaxRows;

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

std::int64_t TpNs(Clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

const char* PriorityLabel(int priority) {
  switch (static_cast<QueryPriority>(priority)) {
    case QueryPriority::kInteractive:
      return "interactive";
    case QueryPriority::kBatch:
      return "batch";
    case QueryPriority::kBackground:
      return "background";
  }
  return "unknown";
}

}  // namespace

int LatencyHistogram::BucketFor(std::chrono::nanoseconds latency) {
  return obs::LatencyBucketForUs(latency.count() / 1000);
}

std::int64_t LatencyHistogram::total() const {
  std::int64_t n = 0;
  for (const std::int64_t count : buckets) n += count;
  return n;
}

double LatencyHistogram::QuantileUpperBoundUs(double q) const {
  const std::int64_t n = total();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::int64_t rank =
      std::min<std::int64_t>(n - 1, static_cast<std::int64_t>(q * n));
  std::int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets[static_cast<size_t>(i)];
    if (seen > rank) return obs::LatencyBucketUpperUs(i);
  }
  return obs::LatencyBucketUpperUs(kNumBuckets - 1);
}

/// Completion latch plus cancellation state for one query, living on the
/// Query caller's stack: segments count down as they finish (or bail) and
/// the caller waits for zero. The deadline is re-checked here by workers —
/// at dequeue and between rows — so expired work cancels cooperatively
/// instead of running to completion for a caller that already gave up.
struct RankingService::BatchState {
  std::mutex mu;
  std::condition_variable done_cv;
  int remaining = 0;

  Clock::time_point deadline;
  bool has_deadline = false;
  /// Latched once the deadline is first observed as passed; every segment
  /// of this query checks it and bails instead of scoring further rows.
  std::atomic<bool> expired{false};
  /// Set when the service shut down before the query could be admitted.
  std::atomic<bool> shutdown{false};
  /// Steady-clock nanos at which the query's last segment was admitted;
  /// written by whichever thread admitted it (the caller, or a coalesced
  /// group's sealer), read by the caller for QueryTrace — relaxed atomics
  /// because the split is observability, not synchronisation.
  std::atomic<std::int64_t> admitted_ns{0};
  /// Written by the group sealer under the coalesce mutex before the group
  /// is pushed, read by the caller after Wait (ordered by the push/pop and
  /// latch mutexes).
  bool coalesced = false;
  /// Trace-context for this query's spans (0 = untraced); written by the
  /// caller before admission, read by whichever worker executes it.
  obs::TraceId trace_id = 0;

  bool Expired(Clock::time_point now) {
    if (expired.load(std::memory_order_relaxed)) return true;
    if (has_deadline && now >= deadline) {
      expired.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Expired(now) without the clock read on the deadline-free fast path —
  /// the common case must not pay for the feature it does not use.
  bool ExpiredNow() { return has_deadline && Expired(Clock::now()); }

  void Finish() {
    std::lock_guard<std::mutex> lock(mu);
    if (--remaining == 0) done_cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
};

/// A pending micro-batch: several small queries on one shard riding a
/// single execution segment (one workspace checkout, one dispatch). Joins
/// happen under the shard's coalesce mutex while the group is the shard's
/// open group; sealing (clearing that slot) claims the right to admit it.
struct RankingService::CoalesceGroup {
  struct Entry {
    const linalg::Matrix* rows = nullptr;
    double* scores_out = nullptr;
    int n = 0;
    BatchState* state = nullptr;
  };
  std::vector<Entry> entries;
  int total_rows = 0;
  int lane = 0;  // most important lane among the riders
  Clock::time_point flush_at;
  /// When the leader opened the group; start of every rider's
  /// "serve.coalesce" span.
  std::int64_t opened_ns = 0;
  bool sealed = false;
  std::condition_variable sealed_cv;  // the leader waits here
};

/// Everything one dataset needs to answer queries, built whole before it is
/// published (copy-on-write) and immutable afterwards except the free list,
/// the coalescing slot and counters, which are internally synchronised.
struct RankingService::Shard {
  core::PortableRpcModel model;
  /// The validated curve behind a shared_ptr: workspaces co-own it via
  /// BindShared, so even a workspace observed mid-checkout during an evict
  /// keeps the geometry alive.
  std::shared_ptr<const curve::BezierCurve> curve;
  /// Priority class for queries that do not set QueryOptions::priority.
  QueryPriority default_priority = QueryPriority::kInteractive;

  /// One bound workspace + normalisation scratch per slot. ProjectionWorkspace
  /// is neither copyable nor movable, hence the unique_ptr indirection.
  struct Slot {
    opt::ProjectionWorkspace workspace;
    /// kDeadlineCheckStride x d scratch: one block of rows in curve space,
    /// normalised then projected as a unit (ScoreRows).
    std::vector<double> normalized;
  };
  std::vector<std::unique_ptr<Slot>> slots;
  /// Free slot indices; checkout = Pop (blocks only while every slot is
  /// held by a segment that is actively running on some thread, so the wait
  /// is always finite), return = Push (never blocks: capacity == slots).
  mutable BoundedQueue<int> free_slots;

  /// At most one open coalescing group per shard snapshot; guarded by
  /// coalesce_mu together with every group's membership and sealed flag.
  mutable std::mutex coalesce_mu;
  mutable std::shared_ptr<CoalesceGroup> open_group;

  explicit Shard(int num_slots) : free_slots(num_slots) {}
};

RankingService::RankingService(const Options& options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(options.num_threads)),
      queue_(std::max(options.queue_capacity, 1), kNumPriorities) {
  options_.queue_capacity = std::max(options.queue_capacity, 1);
  if (options_.workspaces_per_shard <= 0) {
    options_.workspaces_per_shard = pool_->parallelism();
  }
  if (options_.segment_rows < 1) options_.segment_rows = 1;
  options_.coalesce_max_rows = std::max(options_.coalesce_max_rows, 1);
  options_.coalesce_flush_rows =
      std::max(options_.coalesce_flush_rows, options_.coalesce_max_rows);
  for (int p = 0; p < kNumPriorities; ++p) {
    const double share = options_.shedding.queue_share[static_cast<size_t>(p)];
    queue_.SetLaneLimit(
        p, static_cast<int>(share * options_.queue_capacity));
  }

  // One series set per service instance: the svc label keeps concurrent
  // services (tests, embedded tools) from pooling their counts, and stats()
  // reads back exactly the cells this instance owns.
  static std::atomic<int> next_service_ordinal{0};
  const obs::Labels labels = {
      {"svc", std::to_string(next_service_ordinal.fetch_add(
                  1, std::memory_order_relaxed))}};
  obs::Registry& registry = obs::Registry::Global();
  queries_ = registry.GetCounter("rpc_serve_queries_total", labels,
                                 "Batches fully served");
  rows_ = registry.GetCounter("rpc_serve_rows_total", labels,
                              "Rows scored across all queries");
  segments_ = registry.GetCounter("rpc_serve_segments_total", labels,
                                  "Execution segments dispatched");
  rejected_ = registry.GetCounter("rpc_serve_rejected_total", labels,
                                  "Admissions refused (shed or shutdown)");
  registrations_ =
      registry.GetCounter("rpc_serve_registrations_total", labels,
                          "Shards published (incl. replacements)");
  deadline_expired_ =
      registry.GetCounter("rpc_serve_deadline_expired_total", labels,
                          "Queries failed with kDeadlineExceeded");
  expired_segments_ =
      registry.GetCounter("rpc_serve_expired_segments_total", labels,
                          "Segments skipped or abandoned past their deadline");
  coalesced_queries_ =
      registry.GetCounter("rpc_serve_coalesced_queries_total", labels,
                          "Queries served inside a shared coalesced group");
  for (int p = 0; p < kNumPriorities; ++p) {
    obs::Labels shed_labels = labels;
    shed_labels.emplace_back("priority", PriorityLabel(p));
    shed_by_priority_[static_cast<size_t>(p)] =
        registry.GetCounter("rpc_serve_shed_total", shed_labels,
                            "Admissions refused per priority class");
  }
  latency_us_ = registry.GetHistogram(
      "rpc_serve_latency_us", obs::LatencyBucketUpperBoundsUs(), labels,
      "End-to-end latency of answered queries (us)");
  admission_wait_us_ = registry.GetHistogram(
      "rpc_serve_admission_wait_us", obs::LatencyBucketUpperBoundsUs(), labels,
      "Time from entering Query until the last segment was admitted (us)");
  queue_depth_gauge_ = registry.GetCallbackGauge(
      "rpc_serve_queue_depth", labels,
      [this] { return static_cast<double>(queue_.size()); },
      "Admission-queue occupancy (segments)");
  queue_peak_gauge_ = registry.GetCallbackGauge(
      "rpc_serve_queue_depth_peak", labels,
      [this] { return static_cast<double>(queue_.peak_size()); },
      "Admission-queue high-water mark (segments)");
  datasets_gauge_ = registry.GetCallbackGauge(
      "rpc_serve_datasets", labels,
      [this] {
        std::lock_guard<std::mutex> lock(shards_mu_);
        return static_cast<double>(shards_.size());
      },
      "Shards currently resident");
}

RankingService::~RankingService() {
  // Refuse new admissions, then let the pool drain what was admitted (its
  // destructor runs WaitTasks); every drain task pops the segment admitted
  // before it, so nothing is left referencing caller memory.
  queue_.Close();
  pool_.reset();
}

Result<std::shared_ptr<const RankingService::Shard>>
RankingService::BuildShard(const core::PortableRpcModel& model,
                           const DatasetOptions& dataset) const {
  RPC_ASSIGN_OR_RETURN(core::RpcCurve curve, model.BuildCurve());
  // Deserialize enforces these for file-loaded models; an in-memory model
  // handed straight to RegisterDataset must meet the same contract, or the
  // hot loop would divide by (max - min) <= 0 and serve NaN scores.
  if (model.mins.size() != curve.dimension() ||
      model.maxs.size() != curve.dimension()) {
    return Status::InvalidArgument(StrFormat(
        "RankingService: model has %d-dimensional curve but %d mins / %d "
        "maxs",
        curve.dimension(), model.mins.size(), model.maxs.size()));
  }
  for (int j = 0; j < curve.dimension(); ++j) {
    if (!(model.maxs[j] > model.mins[j])) {
      return Status::InvalidArgument(StrFormat(
          "RankingService: attribute %d has max (%g) <= min (%g)", j,
          model.maxs[j], model.mins[j]));
    }
  }
  auto shard = std::make_shared<Shard>(options_.workspaces_per_shard);
  shard->model = model;
  shard->default_priority = dataset.default_priority;
  shard->curve = std::make_shared<const curve::BezierCurve>(curve.bezier());
  const int d = shard->curve->dimension();
  shard->slots.reserve(static_cast<size_t>(options_.workspaces_per_shard));
  for (int i = 0; i < options_.workspaces_per_shard; ++i) {
    auto slot = std::make_unique<Shard::Slot>();
    slot->workspace.BindShared(shard->curve, options_.projection);
    slot->normalized.resize(static_cast<size_t>(kDeadlineCheckStride) * d);
    shard->slots.push_back(std::move(slot));
    shard->free_slots.Push(i);
  }
  return std::shared_ptr<const Shard>(std::move(shard));
}

Status RankingService::RegisterDataset(const std::string& dataset_id,
                                       const core::PortableRpcModel& model,
                                       const DatasetOptions& dataset) {
  if (dataset_id.empty()) {
    return Status::InvalidArgument("RankingService: empty dataset id");
  }
  // Build the complete replacement outside the lock — registration cost
  // (curve validation, workspace binds) never stalls queries — then swap.
  RPC_ASSIGN_OR_RETURN(std::shared_ptr<const Shard> shard,
                       BuildShard(model, dataset));
  registrations_.Increment();
  std::lock_guard<std::mutex> lock(shards_mu_);
  shards_[dataset_id] = std::move(shard);
  return Status::Ok();
}

Result<std::uint64_t> RankingService::DatasetVersion(
    const std::string& dataset_id) const {
  const std::shared_ptr<const Shard> shard = FindShard(dataset_id);
  if (shard == nullptr) {
    return Status::NotFound(
        StrFormat("RankingService: no dataset '%s'", dataset_id.c_str()));
  }
  return shard->model.version;
}

Status RankingService::RegisterDatasetFromFile(const std::string& dataset_id,
                                               const std::string& path,
                                               const DatasetOptions& dataset) {
  RPC_ASSIGN_OR_RETURN(core::PortableRpcModel model, core::LoadModel(path));
  return RegisterDataset(dataset_id, model, dataset);
}

Status RankingService::EvictDataset(const std::string& dataset_id) {
  std::lock_guard<std::mutex> lock(shards_mu_);
  if (shards_.erase(dataset_id) == 0) {
    return Status::NotFound(
        StrFormat("RankingService: no dataset '%s'", dataset_id.c_str()));
  }
  return Status::Ok();
}

bool RankingService::HasDataset(const std::string& dataset_id) const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  return shards_.count(dataset_id) != 0;
}

std::vector<std::string> RankingService::DatasetIds() const {
  std::vector<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    ids.reserve(shards_.size());
    for (const auto& [id, shard] : shards_) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::shared_ptr<const RankingService::Shard> RankingService::FindShard(
    const std::string& dataset_id) const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  const auto it = shards_.find(dataset_id);
  return it == shards_.end() ? nullptr : it->second;
}

bool RankingService::ScoreRows(const Shard& shard, int slot_index,
                               const Matrix& rows, int begin, int end,
                               double* scores_out, BatchState& state) const {
  Shard::Slot& slot = *shard.slots[static_cast<size_t>(slot_index)];
  const Vector& mins = shard.model.mins;
  const Vector& maxs = shard.model.maxs;
  const int d = shard.curve->dimension();
  // Hot loop: normalise one block of rows into the slot scratch, project
  // the block through the SIMD grid kernels, store s. The same arithmetic
  // as data::Normalizer::Transform + ProjectionWorkspace::Project (the
  // block path is bit-identical to the per-row path), so served scores
  // stay bit-identical to RpcRanker::Score; and like the fitting engine's
  // batch loop it allocates nothing per row. The deadline re-check sits
  // between blocks — the same stride the per-row loop used.
  for (int block_begin = begin; block_begin < end;
       block_begin += kDeadlineCheckStride) {
    if (block_begin != begin && state.ExpiredNow()) {
      return false;  // caller gave up; stop burning pool time
    }
    const int block_end = std::min(end, block_begin + kDeadlineCheckStride);
    for (int i = block_begin; i < block_end; ++i) {
      const double* raw = rows.RowPtr(i);
      double* norm =
          slot.normalized.data() + static_cast<size_t>(i - block_begin) * d;
      for (int j = 0; j < d; ++j) {
        norm[j] = (raw[j] - mins[j]) / (maxs[j] - mins[j]);
      }
    }
    slot.workspace.ProjectBlock(slot.normalized.data(),
                                block_end - block_begin, d,
                                scores_out + block_begin,
                                /*squared_out=*/nullptr);
  }
  return true;
}

void RankingService::RunGroup(const Segment& seg) const {
  const Shard& shard = *seg.shard;
  const std::optional<int> slot_index = shard.free_slots.Pop();
  if (!slot_index.has_value()) return;  // unreachable: free_slots never closes
  // One checkout for every rider — the amortisation coalescing exists for.
  for (const CoalesceGroup::Entry& entry : seg.group->entries) {
    BatchState& state = *entry.state;
    const obs::TraceId trace = state.trace_id;
    if (state.ExpiredNow()) {
      expired_segments_.Increment();
      state.Finish();
      continue;
    }
    std::int64_t run_start_ns = 0;
    if (trace != 0) {
      run_start_ns = obs::TraceNowNs();
      const std::int64_t admitted =
          state.admitted_ns.load(std::memory_order_relaxed);
      obs::EmitSpan(trace, "serve.queued",
                    admitted > 0 && admitted <= run_start_ns ? admitted
                                                             : run_start_ns,
                    run_start_ns);
    }
    if (!ScoreRows(shard, *slot_index, *entry.rows, 0, entry.n,
                   entry.scores_out, state)) {
      expired_segments_.Increment();
    }
    if (trace != 0) {
      obs::EmitSpan(trace, "serve.execute", run_start_ns, obs::TraceNowNs());
    }
    state.Finish();
  }
  shard.free_slots.Push(*slot_index);
}

void RankingService::RunOneSegment() const {
  // By construction one Submit follows each successful queue push, so this
  // Pop always finds the matching (not necessarily the same) segment.
  std::optional<Segment> seg = queue_.Pop();
  if (!seg.has_value()) return;  // closed and drained during shutdown

  if (seg->group != nullptr) {
    RunGroup(*seg);
    return;
  }

  BatchState& state = *seg->state;
  // Deadline re-check at dequeue: a segment that sat out its budget in the
  // queue is accounted and dropped, not executed.
  if (state.ExpiredNow()) {
    expired_segments_.Increment();
    state.Finish();
    return;
  }

  // Span timestamps reuse one clock read per edge; untraced queries (the
  // common case when auto-tracing is off) skip both reads entirely.
  const obs::TraceId trace = state.trace_id;
  std::int64_t run_start_ns = 0;
  if (trace != 0) {
    run_start_ns = obs::TraceNowNs();
    const std::int64_t admitted =
        state.admitted_ns.load(std::memory_order_relaxed);
    // admitted_ns lands after the pushes; a worker can pop first, in which
    // case the queued span collapses to zero length at dequeue time.
    obs::EmitSpan(trace, "serve.queued",
                  admitted > 0 && admitted <= run_start_ns ? admitted
                                                           : run_start_ns,
                  run_start_ns);
  }

  const Shard& shard = *seg->shard;
  const std::optional<int> slot_index = shard.free_slots.Pop();
  if (!slot_index.has_value()) return;  // unreachable: free_slots never closes
  const bool completed = ScoreRows(shard, *slot_index, *seg->rows, seg->begin,
                                   seg->end, seg->scores_out, state);
  shard.free_slots.Push(*slot_index);
  if (!completed) expired_segments_.Increment();
  if (trace != 0) {
    obs::EmitSpan(trace, "serve.execute", run_start_ns, obs::TraceNowNs());
  }
  state.Finish();
}

Status RankingService::AdmitSegmented(
    const std::shared_ptr<const Shard>& shard, const Matrix& raw_rows,
    double* scores_out, int lane, const QueryOptions& options,
    BatchState& state, QueryTrace& trace) const {
  const int n = raw_rows.rows();
  const int segment_rows = options_.segment_rows;
  const int num_segments = (n + segment_rows - 1) / segment_rows;
  state.remaining = num_segments;
  trace.segments = num_segments;

  const bool blocking = options.admission == AdmissionPolicy::kBlock;
  // Admit every segment before waiting; each successful push is paired
  // with exactly one Submit so pushes and pops stay balanced.
  for (int s = 0; s < num_segments; ++s) {
    Segment seg;
    seg.shard = shard;
    seg.rows = &raw_rows;
    seg.scores_out = scores_out;
    seg.begin = s * segment_rows;
    seg.end = std::min(n, seg.begin + segment_rows);
    seg.state = &state;
    const QueuePushResult pushed =
        blocking ? queue_.PushUntil(std::move(seg), lane, options.deadline)
                 : queue_.TryPush(std::move(seg), lane);
    if (pushed != QueuePushResult::kOk) {
      // Shed, shutdown or deadline: withdraw the segments not yet admitted
      // and wait out the ones that were (they still reference the caller's
      // rows and result memory).
      {
        std::lock_guard<std::mutex> lock(state.mu);
        state.remaining -= num_segments - s;
      }
      state.Wait();
      switch (pushed) {
        case QueuePushResult::kTimeout:
          deadline_expired_.Increment();
          return Status::DeadlineExceeded(
              "RankingService: deadline expired while blocked on a full "
              "admission queue");
        case QueuePushResult::kClosed:
          rejected_.Increment();
          return Status::FailedPrecondition("RankingService: shutting down");
        default:
          rejected_.Increment();
          shed_by_priority_[static_cast<size_t>(lane)].Increment();
          return Status::FailedPrecondition(
              "RankingService: admission queue full");
      }
    }
    segments_.Increment();
    pool_->Submit([this] { RunOneSegment(); });
  }
  state.admitted_ns.store(NowNs(), std::memory_order_relaxed);
  return Status::Ok();
}

void RankingService::SealAndAdmitGroup(
    const std::shared_ptr<const Shard>& shard,
    const std::shared_ptr<CoalesceGroup>& group) const {
  {
    std::lock_guard<std::mutex> lock(shard->coalesce_mu);
    group->sealed = true;
    const bool shared_ride = group->entries.size() > 1;
    for (const CoalesceGroup::Entry& entry : group->entries) {
      entry.state->coalesced = shared_ride;
    }
  }
  group->sealed_cv.notify_all();

  Segment seg;
  seg.shard = shard;
  seg.group = group;
  // Blocking, deadline-free admission: riders already paid their admission
  // deadline check on entry, and an expired rider is dropped at dequeue.
  const QueuePushResult pushed = queue_.Push(std::move(seg), group->lane);
  if (pushed == QueuePushResult::kOk) {
    const std::int64_t now_ns = NowNs();
    for (const CoalesceGroup::Entry& entry : group->entries) {
      entry.state->admitted_ns.store(now_ns, std::memory_order_relaxed);
      // Every rider gets the gather window on its own timeline: group open
      // to sealed-and-admitted, the price paid for the shared ride.
      if (entry.state->trace_id != 0 && group->opened_ns > 0) {
        obs::EmitSpan(entry.state->trace_id, "serve.coalesce",
                      group->opened_ns, now_ns);
      }
    }
    segments_.Increment();
    pool_->Submit([this] { RunOneSegment(); });
    return;
  }
  // kClosed (a blocking push only fails on shutdown): fail every rider.
  rejected_.Increment();
  for (const CoalesceGroup::Entry& entry : group->entries) {
    entry.state->shutdown.store(true, std::memory_order_relaxed);
    entry.state->Finish();
  }
}

Status RankingService::AdmitCoalesced(const std::shared_ptr<const Shard>& shard,
                                      const Matrix& raw_rows,
                                      double* scores_out, int lane,
                                      BatchState& state) const {
  state.remaining = 1;
  std::shared_ptr<CoalesceGroup> group;
  bool leader = false;
  bool sealer = false;
  {
    std::lock_guard<std::mutex> lock(shard->coalesce_mu);
    if (shard->open_group == nullptr) {
      group = std::make_shared<CoalesceGroup>();
      const Clock::time_point opened = Clock::now();
      group->flush_at = opened + options_.max_coalesce_delay;
      group->opened_ns = TpNs(opened);
      group->lane = lane;
      shard->open_group = group;
      leader = true;
    } else {
      group = shard->open_group;
      group->lane = std::min(group->lane, lane);
    }
    group->entries.push_back({&raw_rows, scores_out, raw_rows.rows(), &state});
    group->total_rows += raw_rows.rows();
    if (!leader && group->total_rows >= options_.coalesce_flush_rows) {
      shard->open_group = nullptr;  // claim: this thread seals the group
      sealer = true;
    }
  }
  if (leader) {
    // The leader donates its own latency budget (at most
    // max_coalesce_delay) waiting for co-riders, then flushes whatever
    // gathered. A rider that filled the group meanwhile seals it instead;
    // clearing the shard's open slot under the mutex is the claim, so
    // exactly one thread admits each group.
    std::unique_lock<std::mutex> lock(shard->coalesce_mu);
    group->sealed_cv.wait_until(lock, group->flush_at,
                                [&] { return group->sealed; });
    if (!group->sealed && shard->open_group == group) {
      shard->open_group = nullptr;
      sealer = true;
    }
  }
  if (sealer) SealAndAdmitGroup(shard, group);
  return Status::Ok();
}

Result<RankedBatch> RankingService::QueryImpl(const std::string& dataset_id,
                                              const Matrix& raw_rows,
                                              const QueryOptions& options) const {
  const Clock::time_point start = Clock::now();
  const bool has_deadline = options.deadline != Clock::time_point::max();
  // Deadline check #1, at admission: an already-expired query never touches
  // the queue (or even the shard map).
  if (has_deadline && start >= options.deadline) {
    deadline_expired_.Increment();
    return Status::DeadlineExceeded(
        "RankingService: deadline expired before admission");
  }

  const std::shared_ptr<const Shard> shard = FindShard(dataset_id);
  if (shard == nullptr) {
    return Status::NotFound(
        StrFormat("RankingService: no dataset '%s'", dataset_id.c_str()));
  }
  const int d = shard->curve->dimension();
  if (raw_rows.cols() != d && raw_rows.rows() > 0) {
    return Status::InvalidArgument(
        StrFormat("RankingService: query has %d columns, dataset '%s' has "
                  "dimension %d",
                  raw_rows.cols(), dataset_id.c_str(), d));
  }

  RankedBatch batch;
  const int n = raw_rows.rows();
  batch.scores = Vector(n);
  if (n == 0) return batch;

  const int lane =
      static_cast<int>(options.priority.value_or(shard->default_priority));

  // Trace-context: thread the caller's id through, or mint one while
  // auto-tracing is runtime-enabled (NewTraceId returns 0 otherwise, which
  // turns every span site on this query's path into a no-op).
  const obs::TraceId trace_id =
      options.trace_id != 0 ? options.trace_id : obs::NewTraceId();
  batch.trace.trace_id = trace_id;

  BatchState state;
  state.deadline = options.deadline;
  state.has_deadline = has_deadline;
  state.trace_id = trace_id;

  double* scores_out = batch.scores.data().data();
  // Small blocking queries ride a shared group when coalescing is on;
  // kReject queries never coalesce (a group is admitted as one blocking
  // push, which cannot honour per-rider rejection).
  const bool coalesce = options_.max_coalesce_delay.count() > 0 &&
                        options.allow_coalesce &&
                        options.admission == AdmissionPolicy::kBlock &&
                        n <= options_.coalesce_max_rows;
  if (coalesce) {
    batch.trace.segments = 1;
    RPC_RETURN_IF_ERROR(
        AdmitCoalesced(shard, raw_rows, scores_out, lane, state));
  } else {
    RPC_RETURN_IF_ERROR(AdmitSegmented(shard, raw_rows, scores_out, lane,
                                       options, state, batch.trace));
  }
  state.Wait();

  if (state.shutdown.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("RankingService: shutting down");
  }
  if (state.expired.load(std::memory_order_relaxed)) {
    // Deadline checks #2 (dequeue) and #3 (between rows) funnel here: some
    // worker observed the deadline pass before the result was complete.
    deadline_expired_.Increment();
    return Status::DeadlineExceeded(
        "RankingService: deadline expired during execution");
  }

  const Clock::time_point done = Clock::now();
  const std::int64_t admitted_ns =
      state.admitted_ns.load(std::memory_order_relaxed);
  Clock::time_point admitted =
      admitted_ns > 0
          ? Clock::time_point(std::chrono::nanoseconds(admitted_ns))
          : start;
  admitted = std::clamp(admitted, start, done);
  batch.trace.admission_wait = admitted - start;
  batch.trace.execution_time = done - admitted;
  batch.trace.coalesced = state.coalesced;

  // Caller-side spans reuse the timestamps QueryTrace already measured —
  // no extra clock reads on the serving hot path.
  if (trace_id != 0) {
    obs::EmitSpan(trace_id, "serve.admission", TpNs(start), TpNs(admitted));
    obs::EmitSpan(trace_id, "serve.query", TpNs(start), TpNs(done));
  }

  // Ranks within the batch, with RankingList's deterministic tie-break.
  const rank::RankingList list(batch.scores, /*higher_is_better=*/true);
  batch.ranks.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    batch.ranks[static_cast<size_t>(i)] = list.PositionOf(i);
  }

  queries_.Increment();
  rows_.Add(n);
  if (state.coalesced) coalesced_queries_.Increment();
  RecordLatency(done - start);
  admission_wait_us_.Record(
      static_cast<double>(batch.trace.admission_wait.count() / 1000));

  const std::chrono::nanoseconds slow_threshold =
      options.slow_query_threshold.value_or(options_.slow_query_threshold);
  if (options_.telemetry_sink != nullptr && slow_threshold.count() > 0 &&
      done - start >= slow_threshold) {
    EmitSlowQuery(dataset_id, batch.trace, n, done - start);
  }
  return batch;
}

void RankingService::RecordLatency(std::chrono::nanoseconds total) const {
  latency_us_.Record(static_cast<double>(total.count() / 1000));
}

void RankingService::EmitSlowQuery(const std::string& dataset_id,
                                   const QueryTrace& trace, int rows,
                                   std::chrono::nanoseconds total) const {
  std::string payload = "{\"dataset\":\"";
  obs::AppendJsonEscaped(&payload, dataset_id);
  payload += StrFormat(
      "\",\"rows\":%d,\"total_us\":%.3f,\"admission_wait_us\":%.3f,"
      "\"execution_us\":%.3f,\"segments\":%d,\"coalesced\":%s,"
      "\"trace_id\":\"%llu\",\"spans\":",
      rows, static_cast<double>(total.count()) / 1e3,
      static_cast<double>(trace.admission_wait.count()) / 1e3,
      static_cast<double>(trace.execution_time.count()) / 1e3, trace.segments,
      trace.coalesced ? "true" : "false",
      static_cast<unsigned long long>(trace.trace_id));
  payload += obs::SpansToJson(obs::CollectTrace(trace.trace_id));
  payload += '}';
  options_.telemetry_sink->Emit("slow_query", payload);
}

Result<RankedBatch> RankingService::Query(const std::string& dataset_id,
                                          const Matrix& raw_rows,
                                          const QueryOptions& options) const {
  return QueryImpl(dataset_id, raw_rows, options);
}

Result<RankedBatch> RankingService::ScoreBatch(const std::string& dataset_id,
                                               const Matrix& raw_rows) const {
  return Query(dataset_id, raw_rows, QueryOptions());
}

Result<RankedBatch> RankingService::TryScoreBatch(
    const std::string& dataset_id, const Matrix& raw_rows) const {
  QueryOptions options;
  options.admission = AdmissionPolicy::kReject;
  return Query(dataset_id, raw_rows, options);
}

ServiceStats RankingService::stats() const {
  // Assembled from the same registry cells the exporters publish — the
  // legacy struct is a view, not a second set of books.
  ServiceStats stats;
  stats.queries = queries_.Value();
  stats.rows = rows_.Value();
  stats.segments = segments_.Value();
  stats.rejected = rejected_.Value();
  stats.registrations = registrations_.Value();
  stats.deadline_expired = deadline_expired_.Value();
  stats.expired_segments = expired_segments_.Value();
  stats.coalesced_queries = coalesced_queries_.Value();
  for (int p = 0; p < kNumPriorities; ++p) {
    stats.shed_by_priority[static_cast<size_t>(p)] =
        shed_by_priority_[static_cast<size_t>(p)].Value();
  }
  const obs::HistogramSnapshot latency = latency_us_.Merge();
  for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    stats.latency.buckets[static_cast<size_t>(b)] =
        latency.counts[static_cast<size_t>(b)];
  }
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    stats.datasets = static_cast<int>(shards_.size());
  }
  stats.peak_queue_depth = queue_.peak_size();
  return stats;
}

}  // namespace rpc::serve
