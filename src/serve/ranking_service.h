#ifndef RPC_SERVE_RANKING_SERVICE_H_
#define RPC_SERVE_RANKING_SERVICE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bounded_queue.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/model_io.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "obs/buckets.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/curve_projection.h"

namespace rpc::obs {
class TelemetrySink;
}  // namespace rpc::obs

namespace rpc::serve {

/// Priority classes for admitted work; lower value = more important. The
/// admission queue serves kInteractive before kBatch before kBackground,
/// and the shedding policy drops the deep classes first under saturation.
enum class QueryPriority : int {
  kInteractive = 0,  // latency-sensitive user traffic
  kBatch = 1,        // bulk scoring with relaxed latency needs
  kBackground = 2,   // best-effort fill (re-scoring, analytics)
};
inline constexpr int kNumPriorities = 3;

/// What happens when the admission queue cannot take the query right now.
enum class AdmissionPolicy {
  kBlock,   // wait for room (backpressure); bounded by the deadline if set
  kReject,  // refuse immediately with kFailedPrecondition (load shedding)
};

/// Returns an absolute deadline `budget` from now, for QueryOptions.
inline std::chrono::steady_clock::time_point QueryDeadline(
    std::chrono::nanoseconds budget) {
  return std::chrono::steady_clock::now() + budget;
}

/// Per-query policy for RankingService::Query. The default is exactly the
/// legacy ScoreBatch behaviour: block for admission, no deadline, the
/// dataset's default priority class.
struct QueryOptions {
  /// Absolute wall-clock bound (steady clock). Checked at admission, at
  /// segment dequeue and between rows; once it passes the query fails with
  /// kDeadlineExceeded and its remaining work is cancelled cooperatively.
  /// time_point::max() = no deadline.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Full-queue behaviour; see AdmissionPolicy.
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Priority class; unset = the dataset's default (DatasetOptions).
  std::optional<QueryPriority> priority;
  /// Opt this query out of micro-batch coalescing even when the service
  /// enables it (Options::max_coalesce_delay). Queries admitted with
  /// kReject never coalesce regardless.
  bool allow_coalesce = true;
  /// Trace-context propagation: 0 (the default) allocates a fresh trace id
  /// per query while obs tracing is runtime-enabled; a nonzero id threads
  /// an external trace through this query (and forces span emission even
  /// when auto-tracing is off). The id used is reported back in
  /// QueryTrace::trace_id; its spans are readable via obs::CollectTrace.
  obs::TraceId trace_id = 0;
  /// Per-query override of Options::slow_query_threshold; unset = the
  /// service default.
  std::optional<std::chrono::nanoseconds> slow_query_threshold;
};

/// Per-dataset serving policy, fixed at registration.
struct DatasetOptions {
  /// Priority class used for queries that do not set QueryOptions::priority.
  QueryPriority default_priority = QueryPriority::kInteractive;
};

/// How much of the admission queue each priority class may fill: a push of
/// class p is admitted only while total queue occupancy is below
/// queue_share[p] * capacity (clamped to at least one slot). Class 0 at
/// share 1.0 may always use the whole queue; deeper classes hit their
/// watermark first, so under saturation low-priority load sheds (kReject)
/// or waits (kBlock) while interactive traffic still gets through.
struct SheddingPolicy {
  std::array<double, kNumPriorities> queue_share{1.0, 0.75, 0.5};
};

/// Observability for one answered query, filled by Query on success.
struct QueryTrace {
  /// Time from entering Query until the last segment was admitted to the
  /// execution queue (for coalesced queries: until the group was sealed
  /// and admitted — measured best-effort, may read as zero on the rare
  /// race where execution finishes before the sealer's clock store lands).
  std::chrono::nanoseconds admission_wait{0};
  /// Remaining time until the result was complete (execution + ranking).
  std::chrono::nanoseconds execution_time{0};
  /// Execution segments this query was split into (1 for a coalesced one).
  int segments = 0;
  /// True when the query was executed inside a shared coalesced group with
  /// at least one other query.
  bool coalesced = false;
  /// The obs trace id this query's spans were emitted under (0 = untraced).
  obs::TraceId trace_id = 0;
};

/// The answer to one Query.
struct RankedBatch {
  /// Projection score s in [0,1] per input row (higher = ranked better);
  /// bit-identical to RpcRanker::Score on the same raw row for the model
  /// the shard was loaded from.
  linalg::Vector scores;
  /// 1-based rank per input row within this batch (best = 1); ties broken
  /// toward the lower row index, exactly like rank::RankingList.
  std::vector<int> ranks;
  /// Where this query's latency went; see QueryTrace.
  QueryTrace trace;
};

/// Fixed-bucket latency histogram: bucket i counts queries whose total
/// latency fell in [2^i, 2^(i+1)) microseconds (bucket 0 additionally
/// holds sub-microsecond queries; the last bucket is unbounded above, at
/// 2^19 us ~ 0.5 s). Coarse by design: enough to read p50/p99 drift from
/// stats() without a profiler, cheap enough for one relaxed atomic
/// increment per query. The bucket scheme itself lives in obs/buckets.h —
/// one definition shared with the registry histograms, so this struct is a
/// plain view over the same distribution the exporters publish.
struct LatencyHistogram {
  static constexpr int kNumBuckets = obs::kLatencyBuckets;
  std::array<std::int64_t, kNumBuckets> buckets{};

  static int BucketFor(std::chrono::nanoseconds latency);
  std::int64_t total() const;
  /// Upper bucket edge (in us) of the bucket containing quantile q in
  /// [0, 1]; 0 when the histogram is empty.
  double QuantileUpperBoundUs(double q) const;
};

/// Service-wide counters; monotone except datasets/peak_queue_depth.
struct ServiceStats {
  std::int64_t queries = 0;        // batches fully served
  std::int64_t rows = 0;           // rows scored across all queries
  std::int64_t segments = 0;       // execution segments dispatched
  std::int64_t rejected = 0;       // admissions refused (shed or shutdown)
  std::int64_t registrations = 0;  // shards published (incl. replacements)
  std::int64_t deadline_expired = 0;   // queries failed with kDeadlineExceeded
  std::int64_t expired_segments = 0;   // segments skipped/abandoned once their
                                       // query's deadline had passed
  std::int64_t coalesced_queries = 0;  // queries served inside a shared group
  /// Admissions refused per priority class (indexed by QueryPriority).
  std::array<std::int64_t, kNumPriorities> shed_by_priority{};
  /// Total latency distribution of successfully answered queries.
  LatencyHistogram latency;
  int datasets = 0;                // shards currently resident
  int peak_queue_depth = 0;        // admission-queue high-water mark
};

/// Multi-dataset ranking serving tier: the read-heavy half of the paper's
/// workload. A model is fit (and persisted) once, then queried many times —
/// new objects are ranked by projecting them onto the already-learned
/// principal curve. RankingService holds N independent shards, one per
/// registered dataset id, each owning
///
///   * a loaded core::PortableRpcModel (the {alpha, mins, maxs, control
///     points} white box from core/model_io),
///   * its validated curve plus the per-curve state opt::ProjectionWorkspace
///     precomputes at bind time (hodograph, coefficient-major power basis),
///   * a pool of workspaces bound to that curve (BindShared, so the model
///     outlives any swap/evict while checked out), sized to the thread pool.
///
/// Queries enter through one entry point — Query(dataset_id, rows,
/// QueryOptions) — where the options carry the whole admission policy:
///
///   * deadline: checked at admission, again when a segment is dequeued,
///     and between rows while executing; expired work is cancelled
///     cooperatively and accounted (no zombie segments burning pool time
///     after the caller has given up).
///   * admission: kBlock waits for queue room (backpressure), kReject
///     refuses immediately (load shedding).
///   * priority: three classes routed through a priority-lane admission
///     queue (interactive overtakes batch overtakes background) with
///     per-class occupancy watermarks (Options::shedding) so low-priority
///     load is dropped first under saturation.
///
/// Small queries (<= Options::coalesce_max_rows rows) on the same shard
/// are additionally coalesced into one execution group under a latency
/// budget (Options::max_coalesce_delay): the group pays one workspace
/// checkout and one segment dispatch instead of one each, which is what
/// makes single-row traffic cheap at scale. Coalescing never changes the
/// arithmetic — each row runs the identical normalise + project kernel, so
/// scores stay bit-identical to RpcRanker.
///
/// Execution: admitted segments run on the shared common::ThreadPool. Each
/// segment checks a workspace out of its shard's free list, scores its rows
/// — normalise, project, done, with no heap allocation per row — and
/// returns the workspace. Lifecycle is copy-on-write: RegisterDataset
/// builds the complete replacement shard before atomically swapping the map
/// entry, and EvictDataset only drops the map reference, so an in-flight
/// query always finishes against the exact model snapshot it was admitted
/// with — never a torn one.
///
/// Thread safety: every public method may be called concurrently from any
/// number of threads. Destroying the service while queries are in flight is
/// a caller error (the destructor drains the queue first, but the caller
/// threads blocked in Query must have returned).
class RankingService {
 public:
  struct Options {
    /// Worker-thread budget for the shared execution pool; same convention
    /// as common::ThreadPool — 0 = hardware concurrency, 1 = fully serial
    /// (queries then execute inline in the calling thread).
    int num_threads = 0;
    /// Capacity of the admission queue, counted in segments. Full queue =
    /// backpressure.
    int queue_capacity = 256;
    /// Bound workspaces per shard; 0 sizes the pool to the thread pool's
    /// parallelism (the most that can ever be checked out concurrently by
    /// pool workers alone).
    int workspaces_per_shard = 0;
    /// Queries with more rows than this are split into that many-row
    /// segments so one large batch spreads across the pool.
    int segment_rows = 1024;
    /// Per-priority admission watermarks; see SheddingPolicy.
    SheddingPolicy shedding;
    /// Longest a small query may wait for co-riders before its coalesced
    /// group executes anyway. 0 (the default) disables coalescing, which
    /// keeps the legacy single-query latency profile.
    std::chrono::microseconds max_coalesce_delay{0};
    /// Queries with at most this many rows are eligible for coalescing.
    int coalesce_max_rows = 4;
    /// A pending group is sealed early once it has gathered this many rows.
    int coalesce_flush_rows = 64;
    /// Projection solver for the serving hot path. Must match the options
    /// the model was fit/validated with for scores to be bit-identical to
    /// the in-process RpcRanker.
    opt::ProjectionOptions projection;
    /// Destination for slow-query events (see slow_query_threshold). Not
    /// owned; must outlive the service. nullptr = slow-query log off.
    obs::TelemetrySink* telemetry_sink = nullptr;
    /// Queries whose end-to-end latency meets or exceeds this emit their
    /// full QueryTrace plus span timeline ("slow_query" events) through
    /// telemetry_sink. 0 = disabled. Overridable per query via
    /// QueryOptions::slow_query_threshold.
    std::chrono::nanoseconds slow_query_threshold{0};
  };

  RankingService() : RankingService(Options()) {}
  explicit RankingService(const Options& options);
  ~RankingService();

  RankingService(const RankingService&) = delete;
  RankingService& operator=(const RankingService&) = delete;

  /// Loads `model` into a new shard under `dataset_id`, replacing any
  /// existing shard with that id (copy-on-write swap: in-flight queries on
  /// the old shard finish undisturbed). Fails with kInvalidArgument when
  /// the model's geometry does not validate. `dataset` fixes the shard's
  /// serving policy (default priority class) until the next registration.
  Status RegisterDataset(const std::string& dataset_id,
                         const core::PortableRpcModel& model,
                         const DatasetOptions& dataset = DatasetOptions());

  /// LoadModel(path) + RegisterDataset.
  Status RegisterDatasetFromFile(const std::string& dataset_id,
                                 const std::string& path,
                                 const DatasetOptions& dataset =
                                     DatasetOptions());

  /// Drops the shard; kNotFound when the id is unknown. In-flight queries
  /// keep their snapshot alive until they finish.
  Status EvictDataset(const std::string& dataset_id);

  bool HasDataset(const std::string& dataset_id) const;
  std::vector<std::string> DatasetIds() const;  // sorted

  /// The PortableRpcModel::version of the shard currently serving
  /// `dataset_id` (kNotFound for an unknown id). The streaming tier bumps
  /// the version on every published warm refresh, so a caller can observe
  /// the atomic copy-on-write swap: queries admitted before a swap finish
  /// against the old version, queries admitted after it see the new one,
  /// and no query ever sees a mixture.
  Result<std::uint64_t> DatasetVersion(const std::string& dataset_id) const;

  /// Scores every row of `raw_rows` (original data space, n x d) against
  /// the dataset's model and ranks them within the batch, under the policy
  /// in `options` (deadline, admission, priority; see QueryOptions).
  /// Blocks until the result is complete or the policy fails the query:
  /// kNotFound for an unknown dataset id, kInvalidArgument on a column
  /// mismatch, kDeadlineExceeded once the deadline passes (at admission,
  /// queued, or mid-execution), kFailedPrecondition when kReject admission
  /// is shed or the service is shutting down. An empty batch
  /// short-circuits to an empty result after the deadline check.
  Result<RankedBatch> Query(const std::string& dataset_id,
                            const linalg::Matrix& raw_rows,
                            const QueryOptions& options = QueryOptions()) const;

  /// Legacy wrapper, kept so existing call sites compile unchanged:
  /// exactly Query with default options (block for admission, no deadline,
  /// dataset-default priority). Prefer Query.
  Result<RankedBatch> ScoreBatch(const std::string& dataset_id,
                                 const linalg::Matrix& raw_rows) const;

  /// Legacy wrapper: exactly Query with AdmissionPolicy::kReject — refuses
  /// (kFailedPrecondition) instead of blocking when the admission queue
  /// cannot take the whole query right now. Prefer Query.
  Result<RankedBatch> TryScoreBatch(const std::string& dataset_id,
                                    const linalg::Matrix& raw_rows) const;

  ServiceStats stats() const;

  int parallelism() const { return pool_->parallelism(); }

 private:
  struct Shard;
  struct BatchState;
  struct CoalesceGroup;

  /// One admitted unit of work, pinned to its shard snapshot: either a
  /// contiguous row range of one query, or a sealed coalesced group of
  /// several small queries. Value type so the admission queue owns its
  /// items outright (std::deque requires a complete type).
  struct Segment {
    std::shared_ptr<const Shard> shard;
    const linalg::Matrix* rows = nullptr;  // caller-owned query rows
    double* scores_out = nullptr;          // into the caller's result
    int begin = 0;
    int end = 0;
    BatchState* state = nullptr;  // caller-stack completion latch
    std::shared_ptr<CoalesceGroup> group;  // set for coalesced segments
  };

  std::shared_ptr<const Shard> FindShard(const std::string& dataset_id) const;
  Result<std::shared_ptr<const Shard>> BuildShard(
      const core::PortableRpcModel& model,
      const DatasetOptions& dataset) const;
  Result<RankedBatch> QueryImpl(const std::string& dataset_id,
                                const linalg::Matrix& raw_rows,
                                const QueryOptions& options) const;
  /// The segmented (non-coalesced) admission path: split into row ranges,
  /// admit each, wait for completion.
  Status AdmitSegmented(const std::shared_ptr<const Shard>& shard,
                        const linalg::Matrix& raw_rows, double* scores_out,
                        int lane, const QueryOptions& options,
                        BatchState& state, QueryTrace& trace) const;
  /// The coalescing path for small queries: join (or open) the shard's
  /// pending group and make sure exactly one participant seals + admits it.
  Status AdmitCoalesced(const std::shared_ptr<const Shard>& shard,
                        const linalg::Matrix& raw_rows, double* scores_out,
                        int lane, BatchState& state) const;
  /// Seals `group` (caller must have removed it from the shard's open slot
  /// under the coalesce mutex) and admits it as one segment.
  void SealAndAdmitGroup(const std::shared_ptr<const Shard>& shard,
                         const std::shared_ptr<CoalesceGroup>& group) const;
  /// Pops one admitted segment and executes it: deadline re-check,
  /// workspace checkout, normalise + project each row (with cooperative
  /// cancellation between rows), workspace return, completion countdown.
  void RunOneSegment() const;
  void RunGroup(const Segment& seg) const;
  /// Scores rows [begin, end) of `rows` into scores_out using `slot`,
  /// checking the query's cancellation flag between rows; returns false if
  /// the deadline expired mid-way (the segment is then abandoned).
  bool ScoreRows(const Shard& shard, int slot_index,
                 const linalg::Matrix& rows, int begin, int end,
                 double* scores_out, BatchState& state) const;
  void RecordLatency(std::chrono::nanoseconds total) const;
  /// Formats QueryTrace + the trace's span timeline as one JSON object and
  /// emits it ("slow_query") through Options::telemetry_sink.
  void EmitSlowQuery(const std::string& dataset_id, const QueryTrace& trace,
                     int rows, std::chrono::nanoseconds total) const;

  Options options_;
  std::unique_ptr<ThreadPool> pool_;
  mutable PriorityBoundedQueue<Segment> queue_;

  mutable std::mutex shards_mu_;
  std::unordered_map<std::string, std::shared_ptr<const Shard>> shards_;

  // Service counters live on the process-wide obs registry (one series per
  // service instance, labelled svc="<ordinal>"); ServiceStats is assembled
  // from these same cells, so the legacy struct stays a bit-identical view
  // of what the exporters publish.
  obs::Counter queries_;
  obs::Counter rows_;
  obs::Counter segments_;
  obs::Counter rejected_;
  obs::Counter registrations_;
  obs::Counter deadline_expired_;
  obs::Counter expired_segments_;
  obs::Counter coalesced_queries_;
  std::array<obs::Counter, kNumPriorities> shed_by_priority_;
  obs::Histogram latency_us_;
  obs::Histogram admission_wait_us_;
  // Callback gauges read queue_/shards_; declared last so they unregister
  // (reverse member order) before anything they sample is destroyed.
  obs::Registry::CallbackHandle queue_depth_gauge_;
  obs::Registry::CallbackHandle queue_peak_gauge_;
  obs::Registry::CallbackHandle datasets_gauge_;
};

}  // namespace rpc::serve

#endif  // RPC_SERVE_RANKING_SERVICE_H_
