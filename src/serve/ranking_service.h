#ifndef RPC_SERVE_RANKING_SERVICE_H_
#define RPC_SERVE_RANKING_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bounded_queue.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/model_io.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "opt/curve_projection.h"

namespace rpc::serve {

/// The answer to one ScoreBatch query.
struct RankedBatch {
  /// Projection score s in [0,1] per input row (higher = ranked better);
  /// bit-identical to RpcRanker::Score on the same raw row for the model
  /// the shard was loaded from.
  linalg::Vector scores;
  /// 1-based rank per input row within this batch (best = 1); ties broken
  /// toward the lower row index, exactly like rank::RankingList.
  std::vector<int> ranks;
};

/// Service-wide counters; monotone except datasets/peak_queue_depth.
struct ServiceStats {
  std::int64_t queries = 0;        // batches fully served
  std::int64_t rows = 0;           // rows scored across all queries
  std::int64_t segments = 0;       // execution segments dispatched
  std::int64_t rejected = 0;       // TryScoreBatch admissions refused
  std::int64_t registrations = 0;  // shards published (incl. replacements)
  int datasets = 0;                // shards currently resident
  int peak_queue_depth = 0;        // admission-queue high-water mark
};

/// Multi-dataset ranking serving tier: the read-heavy half of the paper's
/// workload. A model is fit (and persisted) once, then queried many times —
/// new objects are ranked by projecting them onto the already-learned
/// principal curve. RankingService holds N independent shards, one per
/// registered dataset id, each owning
///
///   * a loaded core::PortableRpcModel (the {alpha, mins, maxs, control
///     points} white box from core/model_io),
///   * its validated curve plus the per-curve state opt::ProjectionWorkspace
///     precomputes at bind time (hodograph, coefficient-major power basis),
///   * a pool of workspaces bound to that curve (BindShared, so the model
///     outlives any swap/evict while checked out), sized to the thread pool.
///
/// Queries are routed by dataset id, admitted through a bounded MPMC
/// request queue (backpressure: ScoreBatch blocks when the backlog is full,
/// TryScoreBatch is rejected), split into row segments and executed on the
/// shared common::ThreadPool. Each segment checks a workspace out of its
/// shard's free list, scores its rows — normalise, project, done, with no
/// heap allocation per row — and returns the workspace. Lifecycle is
/// copy-on-write: RegisterDataset builds the complete replacement shard
/// before atomically swapping the map entry, and EvictDataset only drops
/// the map reference, so an in-flight query always finishes against the
/// exact model snapshot it was admitted with — never a torn one.
///
/// Thread safety: every public method may be called concurrently from any
/// number of threads. Destroying the service while queries are in flight is
/// a caller error (the destructor drains the queue first, but the caller
/// threads blocked in ScoreBatch must have returned).
class RankingService {
 public:
  struct Options {
    /// Worker-thread budget for the shared execution pool; same convention
    /// as common::ThreadPool — 0 = hardware concurrency, 1 = fully serial
    /// (queries then execute inline in the calling thread).
    int num_threads = 0;
    /// Capacity of the admission queue, counted in segments. Full queue =
    /// backpressure.
    int queue_capacity = 256;
    /// Bound workspaces per shard; 0 sizes the pool to the thread pool's
    /// parallelism (the most that can ever be checked out concurrently by
    /// pool workers alone).
    int workspaces_per_shard = 0;
    /// Queries with more rows than this are split into that many-row
    /// segments so one large batch spreads across the pool.
    int segment_rows = 1024;
    /// Projection solver for the serving hot path. Must match the options
    /// the model was fit/validated with for scores to be bit-identical to
    /// the in-process RpcRanker.
    opt::ProjectionOptions projection;
  };

  RankingService() : RankingService(Options()) {}
  explicit RankingService(const Options& options);
  ~RankingService();

  RankingService(const RankingService&) = delete;
  RankingService& operator=(const RankingService&) = delete;

  /// Loads `model` into a new shard under `dataset_id`, replacing any
  /// existing shard with that id (copy-on-write swap: in-flight queries on
  /// the old shard finish undisturbed). Fails with kInvalidArgument when
  /// the model's geometry does not validate.
  Status RegisterDataset(const std::string& dataset_id,
                         const core::PortableRpcModel& model);

  /// LoadModel(path) + RegisterDataset.
  Status RegisterDatasetFromFile(const std::string& dataset_id,
                                 const std::string& path);

  /// Drops the shard; kNotFound when the id is unknown. In-flight queries
  /// keep their snapshot alive until they finish.
  Status EvictDataset(const std::string& dataset_id);

  bool HasDataset(const std::string& dataset_id) const;
  std::vector<std::string> DatasetIds() const;  // sorted

  /// The PortableRpcModel::version of the shard currently serving
  /// `dataset_id` (kNotFound for an unknown id). The streaming tier bumps
  /// the version on every published warm refresh, so a caller can observe
  /// the atomic copy-on-write swap: queries admitted before a swap finish
  /// against the old version, queries admitted after it see the new one,
  /// and no query ever sees a mixture.
  Result<std::uint64_t> DatasetVersion(const std::string& dataset_id) const;

  /// Scores every row of `raw_rows` (original data space, n x d) against
  /// the dataset's model and ranks them within the batch. Blocks until the
  /// result is complete; admission blocks while the queue is full.
  /// kNotFound for an unknown dataset id, kInvalidArgument on a column
  /// mismatch. An empty batch short-circuits to an empty result.
  Result<RankedBatch> ScoreBatch(const std::string& dataset_id,
                                 const linalg::Matrix& raw_rows) const;

  /// Like ScoreBatch but refuses (kFailedPrecondition) instead of blocking
  /// when the admission queue cannot take the whole query right now.
  Result<RankedBatch> TryScoreBatch(const std::string& dataset_id,
                                    const linalg::Matrix& raw_rows) const;

  ServiceStats stats() const;

  int parallelism() const { return pool_->parallelism(); }

 private:
  struct Shard;
  struct BatchState;

  /// One admitted unit of work: a contiguous row range of one query,
  /// pinned to its shard snapshot. Value type so the admission queue owns
  /// its items outright (std::deque requires a complete type).
  struct Segment {
    std::shared_ptr<const Shard> shard;
    const linalg::Matrix* rows = nullptr;  // caller-owned query rows
    double* scores_out = nullptr;          // into the caller's result
    int begin = 0;
    int end = 0;
    BatchState* state = nullptr;  // caller-stack completion latch
  };

  std::shared_ptr<const Shard> FindShard(const std::string& dataset_id) const;
  Result<std::shared_ptr<const Shard>> BuildShard(
      const core::PortableRpcModel& model) const;
  Result<RankedBatch> ScoreBatchImpl(const std::string& dataset_id,
                                     const linalg::Matrix& raw_rows,
                                     bool blocking) const;
  /// Pops one admitted segment and executes it: workspace checkout,
  /// normalise + project each row, workspace return, completion countdown.
  void RunOneSegment() const;

  Options options_;
  std::unique_ptr<ThreadPool> pool_;
  mutable BoundedQueue<Segment> queue_;

  mutable std::mutex shards_mu_;
  std::unordered_map<std::string, std::shared_ptr<const Shard>> shards_;

  mutable std::atomic<std::int64_t> queries_{0};
  mutable std::atomic<std::int64_t> rows_{0};
  mutable std::atomic<std::int64_t> segments_{0};
  mutable std::atomic<std::int64_t> rejected_{0};
  std::atomic<std::int64_t> registrations_{0};
};

}  // namespace rpc::serve

#endif  // RPC_SERVE_RANKING_SERVICE_H_
