#include "order/dominance.h"

#include <cassert>

namespace rpc::order {

using linalg::Matrix;
using linalg::Vector;

DominanceStats ComputeDominanceStats(const Matrix& data,
                                     const Orientation& alpha) {
  assert(data.cols() == alpha.dimension());
  DominanceStats stats;
  stats.points = data.rows();
  const int n = data.rows();
  std::vector<Vector> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) rows.push_back(data.Row(i));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (alpha.Comparable(rows[static_cast<size_t>(i)],
                           rows[static_cast<size_t>(j)])) {
        ++stats.comparable_pairs;
      } else {
        ++stats.incomparable_pairs;
      }
    }
  }
  const long long total = stats.comparable_pairs + stats.incomparable_pairs;
  stats.comparability =
      total > 0 ? static_cast<double>(stats.comparable_pairs) / total : 1.0;
  return stats;
}

std::vector<int> ParetoFront(const Matrix& data, const Orientation& alpha) {
  assert(data.cols() == alpha.dimension());
  const int n = data.rows();
  std::vector<Vector> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) rows.push_back(data.Row(i));
  std::vector<int> front;
  for (int i = 0; i < n; ++i) {
    bool dominated = false;
    for (int j = 0; j < n && !dominated; ++j) {
      if (j == i) continue;
      dominated = alpha.StrictlyPrecedes(rows[static_cast<size_t>(i)],
                                         rows[static_cast<size_t>(j)]);
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::vector<int> DominanceCounts(const Matrix& data,
                                 const Orientation& alpha) {
  assert(data.cols() == alpha.dimension());
  const int n = data.rows();
  std::vector<Vector> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) rows.push_back(data.Row(i));
  std::vector<int> counts(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && alpha.StrictlyPrecedes(rows[static_cast<size_t>(j)],
                                           rows[static_cast<size_t>(i)])) {
        ++counts[static_cast<size_t>(i)];
      }
    }
  }
  return counts;
}

std::vector<int> ParetoLayers(const Matrix& data, const Orientation& alpha) {
  assert(data.cols() == alpha.dimension());
  const int n = data.rows();
  std::vector<Vector> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) rows.push_back(data.Row(i));
  std::vector<int> layer(static_cast<size_t>(n), -1);
  int assigned = 0;
  int current = 0;
  while (assigned < n) {
    // A row joins the current layer when every row dominating it already
    // belongs to an earlier layer.
    std::vector<int> this_layer;
    for (int i = 0; i < n; ++i) {
      if (layer[static_cast<size_t>(i)] >= 0) continue;
      bool blocked = false;
      for (int j = 0; j < n && !blocked; ++j) {
        if (j == i || layer[static_cast<size_t>(j)] >= 0) continue;
        blocked = alpha.StrictlyPrecedes(rows[static_cast<size_t>(i)],
                                         rows[static_cast<size_t>(j)]);
      }
      if (!blocked) this_layer.push_back(i);
    }
    if (this_layer.empty()) break;  // unreachable for a strict order
    for (int i : this_layer) {
      layer[static_cast<size_t>(i)] = current;
      ++assigned;
    }
    ++current;
  }
  return layer;
}

}  // namespace rpc::order
