#ifndef RPC_ORDER_DOMINANCE_H_
#define RPC_ORDER_DOMINANCE_H_

#include <vector>

#include "linalg/matrix.h"
#include "order/orientation.h"

namespace rpc::order {

/// Structure of the cone partial order (Eq. 1) over a finite point set —
/// the order-theoretic backdrop of Section 2. Unsupervised ranking is only
/// "hard" on the incomparable pairs; these diagnostics quantify how much
/// of a dataset the order already decides.
struct DominanceStats {
  int points = 0;
  long long comparable_pairs = 0;
  long long incomparable_pairs = 0;
  /// comparable / total pairs, in [0, 1]; 1 means the data are already a
  /// chain and any monotone scorer yields the same list.
  double comparability = 0.0;
};

/// Counts comparable vs incomparable row pairs.
DominanceStats ComputeDominanceStats(const linalg::Matrix& data,
                                     const Orientation& alpha);

/// Indices of the Pareto-optimal rows: rows not strictly preceded by any
/// other row (the "best" frontier of the cone order). Duplicated optimal
/// points are all reported.
std::vector<int> ParetoFront(const linalg::Matrix& data,
                             const Orientation& alpha);

/// Number of rows each row strictly dominates (a classical scalar summary;
/// monotone w.r.t. the cone order but only weakly — ties abound, which is
/// why it is a diagnostic, not a ranking function).
std::vector<int> DominanceCounts(const linalg::Matrix& data,
                                 const Orientation& alpha);

/// Peels successive Pareto fronts and returns the 0-based layer index of
/// every row (layer 0 = the front). Non-dominated sorting; any strictly
/// monotone score must rank layer k strictly above every point of layer
/// k+1 that it dominates.
std::vector<int> ParetoLayers(const linalg::Matrix& data,
                              const Orientation& alpha);

}  // namespace rpc::order

#endif  // RPC_ORDER_DOMINANCE_H_
