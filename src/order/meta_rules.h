#ifndef RPC_ORDER_META_RULES_H_
#define RPC_ORDER_META_RULES_H_

#include <functional>
#include <optional>
#include <string>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "order/orientation.h"

namespace rpc::order {

/// A fitted scoring function on the raw attribute space.
using ScoreFn = std::function<double(const linalg::Vector&)>;

/// An unsupervised ranking *method*: fits on raw data (+ orientation) and
/// returns a score function. Meta-rule 1 (invariance) is a property of the
/// method, not of a single fitted function, which is why the evaluator needs
/// the fitting procedure itself.
using FitFn =
    std::function<ScoreFn(const linalg::Matrix&, const Orientation&)>;

/// Optional hook returning `grid + 1` samples (rows) of the method's ranking
/// skeleton after fitting on the given data — i.e. points of the principal
/// curve/line it scores along. Used by the smoothness and capacity rules.
using SkeletonFn = std::function<linalg::Matrix(
    const linalg::Matrix&, const Orientation&, int grid)>;

/// A ranking method under meta-rule audit.
struct MethodUnderTest {
  std::string name;
  FitFn fit;
  /// Null when the method has no geometric skeleton (e.g. rank aggregation).
  SkeletonFn skeleton;
  /// Explicit parameter count (meta-rule 5); nullopt = nonparametric or
  /// unknown size.
  std::optional<int> parameter_count;
};

/// Outcome of a single meta-rule check.
struct MetaRuleResult {
  bool passed = false;
  bool applicable = true;  // false when the method exposes no skeleton
  std::string detail;
};

/// The five meta-rules of Section 3.
struct MetaRuleReport {
  std::string method_name;
  MetaRuleResult scale_translation_invariance;  // Definition 2
  MetaRuleResult strict_monotonicity;           // Definition 3
  MetaRuleResult capacity;                      // Definition 4
  MetaRuleResult smoothness;                    // Definition 5
  MetaRuleResult explicitness;                  // Definition 6

  bool AllPassed() const;
  std::string ToString() const;
};

struct MetaRuleOptions {
  uint64_t seed = 17;
  /// Invariance: number of random positive affine transforms tried.
  int invariance_trials = 3;
  /// Monotonicity: number of sampled comparable pairs.
  int monotonicity_pairs = 400;
  /// Smoothness/capacity: skeleton sampling resolution.
  int skeleton_grid = 128;
  /// Score agreement tolerance when comparing rankings.
  double tol = 1e-7;
};

/// Rule 1: refits on randomly scaled+translated copies of `data` and
/// demands the identical ranking list (Definition 2).
MetaRuleResult CheckScaleTranslationInvariance(const FitFn& fit,
                                               const linalg::Matrix& data,
                                               const Orientation& alpha,
                                               const MetaRuleOptions& options);

/// Rule 2: samples strictly comparable pairs from the bounding box of
/// `data` and demands strictly increasing scores (Definition 3).
MetaRuleResult CheckStrictMonotonicityRule(const ScoreFn& score,
                                           const linalg::Matrix& data,
                                           const Orientation& alpha,
                                           const MetaRuleOptions& options);

/// Rule 3: fits the method on noise-free linear data and on a noise-free
/// nonlinear (S-shaped) monotone cloud, both inside the data's bounding
/// box, and checks the skeleton reproduces each shape (Definition 4).
/// Not applicable without a skeleton.
MetaRuleResult CheckCapacityRule(const MethodUnderTest& method,
                                 const linalg::Matrix& data,
                                 const Orientation& alpha,
                                 const MetaRuleOptions& options);

/// Rule 4: probes the skeleton's C1 continuity with a second-difference
/// refinement test; kinks (polylines) and jumps fail (Definition 5).
/// Falls back to probing the score function along random segments when no
/// skeleton is available.
MetaRuleResult CheckSmoothnessRule(const MethodUnderTest& method,
                                   const linalg::Matrix& data,
                                   const Orientation& alpha,
                                   const MetaRuleOptions& options);

/// Rule 5: a known, finite parameter size (Definition 6).
MetaRuleResult CheckExplicitnessRule(std::optional<int> parameter_count);

/// Runs all five checks.
MetaRuleReport EvaluateMetaRules(const MethodUnderTest& method,
                                 const linalg::Matrix& data,
                                 const Orientation& alpha,
                                 const MetaRuleOptions& options = {});

}  // namespace rpc::order

#endif  // RPC_ORDER_META_RULES_H_
