#include "order/orientation.h"

#include "common/stringutil.h"

namespace rpc::order {

Orientation Orientation::AllBenefit(int dimension) {
  return Orientation(std::vector<int>(static_cast<size_t>(dimension), 1));
}

Result<Orientation> Orientation::FromSigns(std::vector<int> signs) {
  if (signs.empty()) {
    return Status::InvalidArgument("Orientation: empty sign vector");
  }
  for (int s : signs) {
    if (s != 1 && s != -1) {
      return Status::InvalidArgument(
          StrFormat("Orientation: sign must be +1 or -1, got %d", s));
    }
  }
  return Orientation(std::move(signs));
}

linalg::Vector Orientation::AsVector() const {
  linalg::Vector v(dimension());
  for (int j = 0; j < dimension(); ++j) v[j] = sign(j);
  return v;
}

linalg::Vector Orientation::WorstCorner() const {
  linalg::Vector v(dimension());
  for (int j = 0; j < dimension(); ++j) v[j] = 0.5 * (1.0 - sign(j));
  return v;
}

linalg::Vector Orientation::BestCorner() const {
  linalg::Vector v(dimension());
  for (int j = 0; j < dimension(); ++j) v[j] = 0.5 * (1.0 + sign(j));
  return v;
}

bool Orientation::Precedes(const linalg::Vector& x,
                           const linalg::Vector& y) const {
  assert(x.size() == dimension() && y.size() == dimension());
  for (int j = 0; j < dimension(); ++j) {
    if (sign(j) * (y[j] - x[j]) < 0.0) return false;
  }
  return true;
}

bool Orientation::StrictlyPrecedes(const linalg::Vector& x,
                                   const linalg::Vector& y) const {
  if (!Precedes(x, y)) return false;
  for (int j = 0; j < dimension(); ++j) {
    if (x[j] != y[j]) return true;
  }
  return false;
}

bool Orientation::Comparable(const linalg::Vector& x,
                             const linalg::Vector& y) const {
  return Precedes(x, y) || Precedes(y, x);
}

Orientation Orientation::Flipped(int j) const {
  std::vector<int> signs = signs_;
  signs[static_cast<size_t>(j)] = -signs[static_cast<size_t>(j)];
  return Orientation(std::move(signs));
}

std::string Orientation::ToString() const {
  std::string out = "(";
  for (int j = 0; j < dimension(); ++j) {
    if (j > 0) out += ", ";
    out += sign(j) > 0 ? "+1" : "-1";
  }
  out += ")";
  return out;
}

}  // namespace rpc::order
