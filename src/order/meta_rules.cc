#include "order/meta_rules.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/stringutil.h"
#include "linalg/eigen.h"
#include "linalg/stats.h"

namespace rpc::order {

using linalg::Matrix;
using linalg::Vector;

namespace {

// Ascending order of indices by score.
std::vector<int> OrderOf(const std::vector<double>& scores) {
  std::vector<int> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return scores[static_cast<size_t>(a)] < scores[static_cast<size_t>(b)];
  });
  return order;
}

std::vector<double> ScoreRows(const ScoreFn& score, const Matrix& data) {
  std::vector<double> scores(static_cast<size_t>(data.rows()));
  for (int i = 0; i < data.rows(); ++i) {
    scores[static_cast<size_t>(i)] = score(data.Row(i));
  }
  return scores;
}

// Bounding box of the data, oriented so `lo` is the ranking-worst corner.
void OrientedBox(const Matrix& data, const Orientation& alpha, Vector* worst,
                 Vector* best) {
  const Vector mins = linalg::ColumnMins(data);
  const Vector maxs = linalg::ColumnMaxs(data);
  *worst = Vector(data.cols());
  *best = Vector(data.cols());
  for (int j = 0; j < data.cols(); ++j) {
    if (alpha.sign(j) > 0) {
      (*worst)[j] = mins[j];
      (*best)[j] = maxs[j];
    } else {
      (*worst)[j] = maxs[j];
      (*best)[j] = mins[j];
    }
  }
}

// Minimum distance from a point to the polyline through `samples` rows.
double PointToPolylineDistance(const Vector& x, const Matrix& samples) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i + 1 < samples.rows(); ++i) {
    const Vector a = samples.Row(i);
    const Vector b = samples.Row(i + 1);
    const Vector ab = b - a;
    const double len2 = ab.SquaredNorm();
    double t = 0.0;
    if (len2 > 0.0) {
      t = std::clamp(linalg::Dot(x - a, ab) / len2, 0.0, 1.0);
    }
    best = std::min(best, linalg::Distance(x, a + t * ab));
  }
  if (samples.rows() == 1) best = linalg::Distance(x, samples.Row(0));
  return best;
}

double MeanPolylineResidual(const Matrix& data, const Matrix& skeleton) {
  double total = 0.0;
  for (int i = 0; i < data.rows(); ++i) {
    total += PointToPolylineDistance(data.Row(i), skeleton);
  }
  return data.rows() > 0 ? total / data.rows() : 0.0;
}

// Mean distance of rows to the best least-squares line (first principal
// component) — the yardstick for nonlinear capacity.
double MeanBestLineResidual(const Matrix& data) {
  const Vector mean = linalg::ColumnMeans(data);
  const Matrix cov = linalg::Covariance(data);
  auto eig = linalg::JacobiEigenSymmetric(cov);
  if (!eig.ok()) return 0.0;
  const Vector w = eig->vectors.Column(0);
  double total = 0.0;
  for (int i = 0; i < data.rows(); ++i) {
    const Vector centered = data.Row(i) - mean;
    const double along = linalg::Dot(centered, w);
    total += std::sqrt(
        std::max(0.0, centered.SquaredNorm() - along * along));
  }
  return data.rows() > 0 ? total / data.rows() : 0.0;
}

// Monotone S-shaped profile used by the capacity rule: a 1-D cubic Bezier
// with interior control values pulled toward the ends, giving the slow-fast-
// slow shape of Fig. 4 while staying strictly monotone.
double SShape(double t) {
  const double u = 1.0 - t;
  // Control values 0, 0.05, 0.95, 1.
  return 3.0 * u * u * t * 0.05 + 3.0 * u * t * t * 0.95 + t * t * t;
}

Matrix LinearCloud(const Vector& worst, const Vector& best, int n) {
  Matrix data(n, worst.size());
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / (n - 1);
    for (int j = 0; j < worst.size(); ++j) {
      data(i, j) = worst[j] + t * (best[j] - worst[j]);
    }
  }
  return data;
}

Matrix SCloud(const Vector& worst, const Vector& best, int n) {
  Matrix data(n, worst.size());
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / (n - 1);
    for (int j = 0; j < worst.size(); ++j) {
      // Alternate plain and S profiles across coordinates so the cloud is
      // genuinely curved (identical profiles would again be a straight
      // line in R^d).
      const double h = (j % 2 == 0) ? t : SShape(t);
      data(i, j) = worst[j] + h * (best[j] - worst[j]);
    }
  }
  return data;
}

// Largest second difference of consecutive skeleton samples.
double MaxSecondDifference(const Matrix& samples) {
  double best = 0.0;
  for (int i = 1; i + 1 < samples.rows(); ++i) {
    const Vector second =
        samples.Row(i + 1) - 2.0 * samples.Row(i) + samples.Row(i - 1);
    best = std::max(best, second.Norm());
  }
  return best;
}

}  // namespace

bool MetaRuleReport::AllPassed() const {
  return scale_translation_invariance.passed && strict_monotonicity.passed &&
         capacity.passed && smoothness.passed && explicitness.passed;
}

std::string MetaRuleReport::ToString() const {
  const auto line = [](const char* rule, const MetaRuleResult& r) {
    return StrFormat("  %-28s %-5s %s\n", rule,
                     !r.applicable ? "n/a" : (r.passed ? "PASS" : "FAIL"),
                     r.detail.c_str());
  };
  std::string out = StrFormat("MetaRuleReport[%s]\n", method_name.c_str());
  out += line("scale/translation invariance",
              scale_translation_invariance);
  out += line("strict monotonicity", strict_monotonicity);
  out += line("linear/nonlinear capacity", capacity);
  out += line("smoothness (C1)", smoothness);
  out += line("explicit parameter size", explicitness);
  return out;
}

MetaRuleResult CheckScaleTranslationInvariance(
    const FitFn& fit, const Matrix& data, const Orientation& alpha,
    const MetaRuleOptions& options) {
  MetaRuleResult result;
  Rng rng(options.seed);
  const ScoreFn base_score = fit(data, alpha);
  const std::vector<int> base_order = OrderOf(ScoreRows(base_score, data));

  for (int trial = 0; trial < options.invariance_trials; ++trial) {
    Vector scale(data.cols());
    Vector shift(data.cols());
    for (int j = 0; j < data.cols(); ++j) {
      scale[j] = rng.Uniform(0.2, 5.0);
      shift[j] = rng.Uniform(-10.0, 10.0);
    }
    Matrix transformed(data.rows(), data.cols());
    for (int i = 0; i < data.rows(); ++i) {
      for (int j = 0; j < data.cols(); ++j) {
        transformed(i, j) = scale[j] * data(i, j) + shift[j];
      }
    }
    const ScoreFn refit_score = fit(transformed, alpha);
    const std::vector<int> order =
        OrderOf(ScoreRows(refit_score, transformed));
    if (order != base_order) {
      result.passed = false;
      result.detail = StrFormat(
          "ranking list changed under positive affine transform (trial %d)",
          trial);
      return result;
    }
  }
  result.passed = true;
  result.detail = StrFormat("%d random affine refits preserved the list",
                            options.invariance_trials);
  return result;
}

MetaRuleResult CheckStrictMonotonicityRule(const ScoreFn& score,
                                           const Matrix& data,
                                           const Orientation& alpha,
                                           const MetaRuleOptions& options) {
  MetaRuleResult result;
  Rng rng(options.seed + 1);
  Vector worst, best;
  OrientedBox(data, alpha, &worst, &best);
  const int d = data.cols();

  int violations = 0;
  int ties = 0;
  for (int t = 0; t < options.monotonicity_pairs; ++t) {
    Vector x(d);
    Vector y(d);
    for (int j = 0; j < d; ++j) {
      const double u = rng.Uniform();
      x[j] = worst[j] + u * (best[j] - worst[j]);
      y[j] = x[j];
    }
    // Bump a random nonempty subset of coordinates toward `best` — including
    // the single-coordinate bumps of Example 1 (t alternates to guarantee
    // axis-aligned pairs are covered).
    const int bump_count =
        (t % 2 == 0) ? 1 : 1 + static_cast<int>(rng.UniformInt(d));
    for (int b = 0; b < bump_count; ++b) {
      const int j = static_cast<int>(rng.UniformInt(d));
      const double room = best[j] - y[j];
      y[j] += rng.Uniform(0.05, 1.0) * room;
    }
    if (!alpha.StrictlyPrecedes(x, y)) continue;
    const double sx = score(x);
    const double sy = score(y);
    if (sx > sy + options.tol) {
      ++violations;
    } else if (std::fabs(sy - sx) <= options.tol) {
      ++ties;
    }
  }
  result.passed = violations == 0 && ties == 0;
  result.detail = StrFormat(
      "%d sampled comparable pairs: %d order violations, %d strict ties",
      options.monotonicity_pairs, violations, ties);
  return result;
}

MetaRuleResult CheckCapacityRule(const MethodUnderTest& method,
                                 const Matrix& data, const Orientation& alpha,
                                 const MetaRuleOptions& options) {
  MetaRuleResult result;
  if (!method.skeleton) {
    result.applicable = false;
    result.passed = false;
    result.detail = "method exposes no ranking skeleton";
    return result;
  }
  Vector worst, best;
  OrientedBox(data, alpha, &worst, &best);
  const double diag = linalg::Distance(worst, best);
  const int n = 64;

  const Matrix linear_cloud = LinearCloud(worst, best, n);
  const Matrix linear_skeleton =
      method.skeleton(linear_cloud, alpha, options.skeleton_grid);
  const double linear_residual =
      MeanPolylineResidual(linear_cloud, linear_skeleton) / diag;

  const Matrix s_cloud = SCloud(worst, best, n);
  const Matrix s_skeleton =
      method.skeleton(s_cloud, alpha, options.skeleton_grid);
  const double s_residual = MeanPolylineResidual(s_cloud, s_skeleton);
  const double line_residual = MeanBestLineResidual(s_cloud);

  const bool linear_ok = linear_residual < 1e-3;
  const bool nonlinear_ok =
      line_residual > 0.0 && s_residual < 0.25 * line_residual;
  result.passed = linear_ok && nonlinear_ok;
  result.detail = StrFormat(
      "linear residual %.2e (rel), S-curve residual %.3g vs best-line %.3g",
      linear_residual, s_residual, line_residual);
  return result;
}

MetaRuleResult CheckSmoothnessRule(const MethodUnderTest& method,
                                   const Matrix& data,
                                   const Orientation& alpha,
                                   const MetaRuleOptions& options) {
  MetaRuleResult result;
  const int g = options.skeleton_grid;
  if (method.skeleton) {
    // Second differences of a C1-smooth arc shrink ~4x when the sampling
    // doubles; a kinked polyline only halves them.
    const Matrix coarse = method.skeleton(data, alpha, g);
    const Matrix fine = method.skeleton(data, alpha, 2 * g);
    const double m_coarse = MaxSecondDifference(coarse);
    const double m_fine = MaxSecondDifference(fine);
    const double scale = std::max(1e-300, coarse.MaxAbs());
    if (m_fine <= 1e-9 * scale) {
      result.passed = true;
      result.detail = "skeleton second differences vanish (straight line)";
      return result;
    }
    const double ratio = m_fine / m_coarse;
    result.passed = ratio < 0.35;
    result.detail = StrFormat(
        "second-difference refinement ratio %.3f (C1 ~ 0.25, kink ~ 0.5)",
        ratio);
    return result;
  }

  // Fallback: probe the score function for jumps along random segments.
  Rng rng(options.seed + 2);
  const ScoreFn score = method.fit(data, alpha);
  Vector worst, best;
  OrientedBox(data, alpha, &worst, &best);
  double worst_ratio = 0.0;
  for (int seg = 0; seg < 4; ++seg) {
    Vector a(data.cols());
    Vector b(data.cols());
    for (int j = 0; j < data.cols(); ++j) {
      a[j] = worst[j] + rng.Uniform() * (best[j] - worst[j]);
      b[j] = worst[j] + rng.Uniform() * (best[j] - worst[j]);
    }
    const auto max_step = [&](int steps) {
      double prev = score(a);
      double biggest = 0.0;
      for (int i = 1; i <= steps; ++i) {
        const double t = static_cast<double>(i) / steps;
        const double cur = score(a + t * (b - a));
        biggest = std::max(biggest, std::fabs(cur - prev));
        prev = cur;
      }
      return biggest;
    };
    const double coarse = max_step(g);
    const double fine = max_step(2 * g);
    if (coarse <= 0.0) continue;
    worst_ratio = std::max(worst_ratio, fine / coarse);
  }
  // Continuous scores roughly halve the largest step; jumps keep it.
  result.passed = worst_ratio < 0.8;
  result.detail = StrFormat(
      "largest score step refinement ratio %.3f (continuous ~ 0.5, jump ~ 1)",
      worst_ratio);
  return result;
}

MetaRuleResult CheckExplicitnessRule(std::optional<int> parameter_count) {
  MetaRuleResult result;
  if (parameter_count.has_value()) {
    result.passed = true;
    result.detail = StrFormat("parameter size known: %d", *parameter_count);
  } else {
    result.passed = false;
    result.detail = "parameter size unknown (nonparametric/black-box)";
  }
  return result;
}

MetaRuleReport EvaluateMetaRules(const MethodUnderTest& method,
                                 const Matrix& data, const Orientation& alpha,
                                 const MetaRuleOptions& options) {
  MetaRuleReport report;
  report.method_name = method.name;
  report.scale_translation_invariance =
      CheckScaleTranslationInvariance(method.fit, data, alpha, options);
  const ScoreFn score = method.fit(data, alpha);
  report.strict_monotonicity =
      CheckStrictMonotonicityRule(score, data, alpha, options);
  report.capacity = CheckCapacityRule(method, data, alpha, options);
  report.smoothness = CheckSmoothnessRule(method, data, alpha, options);
  report.explicitness = CheckExplicitnessRule(method.parameter_count);
  return report;
}

}  // namespace rpc::order
