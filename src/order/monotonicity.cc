#include "order/monotonicity.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "common/stringutil.h"

namespace rpc::order {

std::string CurveMonotonicityReport::ToString() const {
  if (strictly_monotone) {
    return StrFormat("strictly monotone (min oriented derivative %.3g)",
                     min_oriented_derivative);
  }
  return StrFormat(
      "NOT strictly monotone: %d grid violations, worst at dim %d, s=%.4f "
      "(oriented derivative %.3g)",
      violations, worst_dimension, worst_s, min_oriented_derivative);
}

CurveMonotonicityReport CheckCurveMonotonicity(const curve::BezierCurve& f,
                                               const Orientation& alpha,
                                               int grid) {
  assert(f.dimension() == alpha.dimension());
  CurveMonotonicityReport report;
  report.min_oriented_derivative = std::numeric_limits<double>::infinity();
  for (int i = 0; i <= grid; ++i) {
    const double s = static_cast<double>(i) / grid;
    const linalg::Vector deriv = f.Derivative(s);
    for (int j = 0; j < alpha.dimension(); ++j) {
      const double oriented = alpha.sign(j) * deriv[j];
      if (oriented < report.min_oriented_derivative) {
        report.min_oriented_derivative = oriented;
        report.worst_dimension = j;
        report.worst_s = s;
      }
      if (oriented <= 0.0) ++report.violations;
    }
  }
  report.strictly_monotone = report.violations == 0;
  return report;
}

std::string ScoreMonotonicityReport::ToString() const {
  return StrFormat(
      "comparable pairs: %d, order violations: %d, strict-tie breaks: %d -> "
      "%s",
      comparable_pairs, violations, ties,
      strictly_monotone() ? "strictly monotone" : "NOT strictly monotone");
}

ScoreMonotonicityReport CheckScoreMonotonicity(
    const std::function<double(const linalg::Vector&)>& score,
    const linalg::Matrix& points, const Orientation& alpha, double tol) {
  ScoreMonotonicityReport report;
  const int n = points.rows();
  std::vector<linalg::Vector> rows;
  std::vector<double> scores;
  rows.reserve(static_cast<size_t>(n));
  scores.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    rows.push_back(points.Row(i));
    scores.push_back(score(rows.back()));
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const linalg::Vector& x = rows[static_cast<size_t>(i)];
      const linalg::Vector& y = rows[static_cast<size_t>(j)];
      const bool xy = alpha.StrictlyPrecedes(x, y);
      const bool yx = alpha.StrictlyPrecedes(y, x);
      if (!xy && !yx) continue;
      ++report.comparable_pairs;
      const double lo = xy ? scores[static_cast<size_t>(i)]
                           : scores[static_cast<size_t>(j)];
      const double hi = xy ? scores[static_cast<size_t>(j)]
                           : scores[static_cast<size_t>(i)];
      if (lo > hi + tol) {
        ++report.violations;
      } else if (std::fabs(hi - lo) <= tol) {
        ++report.ties;
      }
    }
  }
  return report;
}

}  // namespace rpc::order
