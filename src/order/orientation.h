#ifndef RPC_ORDER_ORIENTATION_H_
#define RPC_ORDER_ORIENTATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/vector.h"

namespace rpc::order {

/// The task-specific orientation vector alpha of Eq. (2)-(3): delta_j = +1
/// for benefit attributes (set E, higher is better) and -1 for cost
/// attributes (set F, lower is better). Together with the componentwise
/// cone order of Eq. (1) it makes R^d a (partially) ordered space for the
/// ranking task.
class Orientation {
 public:
  /// All-benefit orientation (alpha = (+1, ..., +1)).
  static Orientation AllBenefit(int dimension);

  /// Builds from explicit signs; every entry must be +1 or -1.
  static Result<Orientation> FromSigns(std::vector<int> signs);

  int dimension() const { return static_cast<int>(signs_.size()); }
  int sign(int j) const { return signs_[static_cast<size_t>(j)]; }
  const std::vector<int>& signs() const { return signs_; }

  /// alpha as a real vector.
  linalg::Vector AsVector() const;

  /// The ranking-worst corner of the unit hypercube, p0 = (1 - alpha)/2
  /// (Section 4.2): 0 for benefit coordinates, 1 for cost coordinates.
  linalg::Vector WorstCorner() const;

  /// The ranking-best corner, p3 = (1 + alpha)/2.
  linalg::Vector BestCorner() const;

  /// x precedes y in the total preorder of Eq. (1):
  /// delta_j (y_j - x_j) >= 0 for every j. (Despite the paper's wording the
  /// componentwise relation on R^d is a partial order; comparability holds
  /// on totally ordered subsets such as points of a monotone curve.)
  bool Precedes(const linalg::Vector& x, const linalg::Vector& y) const;

  /// Precedes and differs in at least one coordinate.
  bool StrictlyPrecedes(const linalg::Vector& x,
                        const linalg::Vector& y) const;

  /// Either x ⪯ y or y ⪯ x.
  bool Comparable(const linalg::Vector& x, const linalg::Vector& y) const;

  /// Flips the sign of attribute j.
  Orientation Flipped(int j) const;

  /// "(+1, -1, ...)".
  std::string ToString() const;

  bool operator==(const Orientation& other) const {
    return signs_ == other.signs_;
  }

 private:
  explicit Orientation(std::vector<int> signs) : signs_(std::move(signs)) {}

  std::vector<int> signs_;
};

}  // namespace rpc::order

#endif  // RPC_ORDER_ORIENTATION_H_
