#ifndef RPC_ORDER_MONOTONICITY_H_
#define RPC_ORDER_MONOTONICITY_H_

#include <functional>
#include <string>

#include "curve/bezier.h"
#include "linalg/matrix.h"
#include "order/orientation.h"

namespace rpc::order {

/// Verdict of a curve monotonicity certification (Theorem 1 via Lemma 1:
/// f is strictly monotone iff alpha_j * f_j'(s) > 0 for all j, s).
struct CurveMonotonicityReport {
  bool strictly_monotone = false;
  /// Smallest oriented derivative alpha_j f_j'(s) seen over the grid; > 0
  /// certifies strict monotonicity on the grid.
  double min_oriented_derivative = 0.0;
  /// Grid point count with a non-positive oriented derivative.
  int violations = 0;
  /// Location of the worst violation (when violations > 0).
  int worst_dimension = -1;
  double worst_s = -1.0;

  std::string ToString() const;
};

/// Certifies strict monotonicity of a Bezier curve against `alpha` by
/// evaluating the derivative on a uniform grid of `grid + 1` points in
/// [0, 1]. Because each coordinate derivative of a degree-k Bezier is a
/// degree-(k-1) polynomial, a dense grid (default 512) is a reliable
/// certificate for the shapes this library produces.
CurveMonotonicityReport CheckCurveMonotonicity(const curve::BezierCurve& f,
                                               const Orientation& alpha,
                                               int grid = 512);

/// Verdict of an empirical order-preservation check on a scoring function
/// (Definition 3): for sampled comparable pairs x ≺ y the score must
/// strictly increase.
struct ScoreMonotonicityReport {
  int comparable_pairs = 0;
  /// Pairs with score(x) > score(y) + tol for x strictly preceding y.
  int violations = 0;
  /// Distinct comparable pairs mapped to (numerically) equal scores — these
  /// break *strict* monotonicity (Example 1's x1/x2, x3/x4 cases).
  int ties = 0;

  bool strictly_monotone() const { return violations == 0 && ties == 0; }
  std::string ToString() const;
};

/// Checks all comparable pairs among the rows of `points`.
ScoreMonotonicityReport CheckScoreMonotonicity(
    const std::function<double(const linalg::Vector&)>& score,
    const linalg::Matrix& points, const Orientation& alpha,
    double tol = 1e-9);

}  // namespace rpc::order

#endif  // RPC_ORDER_MONOTONICITY_H_
