#ifndef RPC_DURABLE_CODEC_H_
#define RPC_DURABLE_CODEC_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace rpc::durable {

/// Little-endian wire codec for the durable tier's binary payloads.
/// Doubles travel as their IEEE-754 bit pattern (std::bit_cast), so every
/// value — normalizer M2, projection scores — survives bit-for-bit; the
/// formats are only read back on the machine family that wrote them
/// (little-endian, like every deployment target of this repo).

inline void PutU32(std::string* out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

inline void PutU64(std::string* out, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

inline void PutI64(std::string* out, std::int64_t v) {
  PutU64(out, static_cast<std::uint64_t>(v));
}

inline void PutF64(std::string* out, double v) {
  PutU64(out, std::bit_cast<std::uint64_t>(v));
}

inline void PutBytes(std::string* out, std::string_view bytes) {
  PutU32(out, static_cast<std::uint32_t>(bytes.size()));
  out->append(bytes.data(), bytes.size());
}

/// Bounds-checked sequential reader. Every getter returns a default on
/// overrun and latches ok() false, so a parser can decode a whole struct
/// and check validity once at the end.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return data_.size() - offset_; }

  std::uint32_t U32() {
    std::uint32_t v = 0;
    Take(&v, 4);
    return v;
  }

  std::uint64_t U64() {
    std::uint64_t v = 0;
    Take(&v, 8);
    return v;
  }

  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }

  double F64() { return std::bit_cast<double>(U64()); }

  std::string_view Bytes(std::size_t length) {
    if (!ok_ || remaining() < length) {
      ok_ = false;
      return {};
    }
    const std::string_view view = data_.substr(offset_, length);
    offset_ += length;
    return view;
  }

  /// Length-prefixed counterpart of PutBytes.
  std::string_view LengthPrefixedBytes() {
    const std::uint32_t length = U32();
    return Bytes(length);
  }

 private:
  void Take(void* out, std::size_t length) {
    if (!ok_ || remaining() < length) {
      ok_ = false;
      return;
    }
    std::memcpy(out, data_.data() + offset_, length);
    offset_ += length;
  }

  std::string_view data_;
  std::size_t offset_ = 0;
  bool ok_ = true;
};

}  // namespace rpc::durable

#endif  // RPC_DURABLE_CODEC_H_
