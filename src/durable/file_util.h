#ifndef RPC_DURABLE_FILE_UTIL_H_
#define RPC_DURABLE_FILE_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "durable/fault_injector.h"

namespace rpc::durable {

/// POSIX plumbing shared by the event log and the snapshot writer. All
/// paths are plain byte strings; errors carry errno text.

/// mkdir -p.
Status EnsureDirectory(const std::string& dir);

/// Reads a whole file; kNotFound when it cannot be opened.
Result<std::string> ReadFile(const std::string& path);

/// Crash-atomic publication: writes `payload` to `<dir>/<name>.tmp`,
/// fsyncs it, renames it to `<dir>/<name>` and fsyncs the directory so the
/// rename itself is durable. A crash at any point leaves either no file or
/// the complete old/new file — never a half-visible one.
///
/// Failpoints (when `injector` is non-null): kPartialSnapshot dies after
/// writing half the temp file; kCrashBetweenFsyncAndRename dies with the
/// temp complete and fsynced but never renamed.
Status AtomicWriteFile(const std::string& dir, const std::string& name,
                       const std::string& payload, FaultInjector* injector);

/// Names (not paths) of directory entries matching prefix/suffix, sorted
/// ascending. Missing directory = empty list.
std::vector<std::string> ListFiles(const std::string& dir,
                                   const std::string& prefix,
                                   const std::string& suffix);

/// fsync on a directory fd, making previous renames/unlinks in it durable.
Status SyncDirectory(const std::string& dir);

}  // namespace rpc::durable

#endif  // RPC_DURABLE_FILE_UTIL_H_
