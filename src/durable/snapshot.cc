#include "durable/snapshot.h"

#include <cstdio>
#include <cstring>

#include "common/crc32c.h"
#include "common/stringutil.h"
#include "durable/codec.h"
#include "durable/file_util.h"

namespace rpc::durable {

namespace {

constexpr char kMagic[8] = {'R', 'P', 'C', 'S', 'N', 'A', 'P', '1'};
constexpr std::uint32_t kFormatVersion = 1;

std::string SnapshotName(std::uint64_t last_seq) {
  return StrFormat("snapshot-%016llx.snap",
                   static_cast<unsigned long long>(last_seq));
}

void PutF64Vector(std::string* out, const std::vector<double>& values) {
  PutU64(out, values.size());
  for (const double v : values) PutF64(out, v);
}

void PutI64Vector(std::string* out, const std::vector<std::int64_t>& values) {
  PutU64(out, values.size());
  for (const std::int64_t v : values) PutI64(out, v);
}

bool TakeF64Vector(Cursor* cursor, std::vector<double>* out) {
  const std::uint64_t n = cursor->U64();
  if (!cursor->ok() || n * 8 > cursor->remaining()) return false;
  out->resize(n);
  for (std::uint64_t i = 0; i < n; ++i) (*out)[i] = cursor->F64();
  return cursor->ok();
}

bool TakeI64Vector(Cursor* cursor, std::vector<std::int64_t>* out) {
  const std::uint64_t n = cursor->U64();
  if (!cursor->ok() || n * 8 > cursor->remaining()) return false;
  out->resize(n);
  for (std::uint64_t i = 0; i < n; ++i) (*out)[i] = cursor->I64();
  return cursor->ok();
}

Status Corrupt(std::size_t offset, const char* what) {
  return Status::DataLoss(
      StrFormat("snapshot: %s at offset %zu", what, offset));
}

}  // namespace

std::string EncodeSnapshot(const SnapshotState& state) {
  std::string out(kMagic, sizeof(kMagic));
  PutU32(&out, kFormatVersion);
  PutU32(&out, static_cast<std::uint32_t>(state.d));
  PutU64(&out, state.last_seq);
  PutI64(&out, state.next_row_id);
  PutBytes(&out, state.model_text);
  PutI64(&out, state.norm_count);
  PutU32(&out, state.norm_bounds_stale ? 1 : 0);
  PutF64Vector(&out, state.norm_mins);
  PutF64Vector(&out, state.norm_maxs);
  PutF64Vector(&out, state.norm_mean);
  PutF64Vector(&out, state.norm_m2);
  PutI64Vector(&out, state.row_ids);
  PutF64Vector(&out, state.rows);
  PutF64Vector(&out, state.s);
  PutI64(&out, state.appended);
  PutI64(&out, state.retired);
  PutI64(&out, state.retire_misses);
  PutI64(&out, state.events_processed);
  PutI64(&out, state.refreshes);
  PutI64(&out, state.skipped_refreshes);
  PutI64(&out, state.failed_refreshes);
  PutI64(&out, state.publish_failures);
  PutI64(&out, state.events_since_refresh);
  PutI64(&out, state.events_since_cold);
  PutF64(&out, state.last_drift);
  PutU32(&out, Crc32c(out.data(), out.size()));
  return out;
}

Result<SnapshotState> DecodeSnapshot(std::string_view data) {
  if (data.size() < sizeof(kMagic) + 8) {
    return Corrupt(data.size(), "truncated header");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(0, "bad magic");
  }
  const std::size_t body = data.size() - 4;
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data.data() + body, 4);
  if (Crc32c(data.data(), body) != stored_crc) {
    return Corrupt(body, "checksum mismatch");
  }

  Cursor cursor(data.substr(sizeof(kMagic), body - sizeof(kMagic)));
  const std::uint32_t version = cursor.U32();
  if (version != kFormatVersion) {
    return Status::DataLoss(StrFormat(
        "snapshot: unknown format version %u (expected %u)", version,
        kFormatVersion));
  }
  SnapshotState state;
  state.d = static_cast<int>(cursor.U32());
  state.last_seq = cursor.U64();
  state.next_row_id = cursor.I64();
  state.model_text = std::string(cursor.LengthPrefixedBytes());
  state.norm_count = cursor.I64();
  state.norm_bounds_stale = cursor.U32() != 0;
  bool vectors_ok = TakeF64Vector(&cursor, &state.norm_mins) &&
                    TakeF64Vector(&cursor, &state.norm_maxs) &&
                    TakeF64Vector(&cursor, &state.norm_mean) &&
                    TakeF64Vector(&cursor, &state.norm_m2) &&
                    TakeI64Vector(&cursor, &state.row_ids) &&
                    TakeF64Vector(&cursor, &state.rows) &&
                    TakeF64Vector(&cursor, &state.s);
  state.appended = cursor.I64();
  state.retired = cursor.I64();
  state.retire_misses = cursor.I64();
  state.events_processed = cursor.I64();
  state.refreshes = cursor.I64();
  state.skipped_refreshes = cursor.I64();
  state.failed_refreshes = cursor.I64();
  state.publish_failures = cursor.I64();
  state.events_since_refresh = cursor.I64();
  state.events_since_cold = cursor.I64();
  state.last_drift = cursor.F64();
  if (!vectors_ok || !cursor.ok()) {
    return Corrupt(sizeof(kMagic) + cursor.offset(), "truncated field");
  }
  if (cursor.remaining() != 0) {
    return Corrupt(sizeof(kMagic) + cursor.offset(), "trailing garbage");
  }

  const std::size_t n = state.row_ids.size();
  const std::size_t d = static_cast<std::size_t>(state.d);
  if (state.rows.size() != n * d || state.s.size() != n ||
      state.norm_mins.size() != d || state.norm_maxs.size() != d ||
      state.norm_mean.size() != d || state.norm_m2.size() != d) {
    return Status::DataLoss(
        "snapshot: internally inconsistent field sizes");
  }
  return state;
}

Status WriteSnapshot(const std::string& dir, const SnapshotState& state,
                     FaultInjector* injector) {
  RPC_RETURN_IF_ERROR(EnsureDirectory(dir));
  return AtomicWriteFile(dir, SnapshotName(state.last_seq),
                         EncodeSnapshot(state), injector);
}

Result<LoadedSnapshot> LoadLatestSnapshot(const std::string& dir) {
  const std::vector<std::string> names =
      ListFiles(dir, "snapshot-", ".snap");
  LoadedSnapshot loaded;
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    const std::string path = dir + "/" + *it;
    Result<std::string> data = ReadFile(path);
    if (data.ok()) {
      Result<SnapshotState> state = DecodeSnapshot(*data);
      if (state.ok()) {
        loaded.state = *std::move(state);
        loaded.path = path;
        return loaded;
      }
    }
    ++loaded.fallbacks;
  }
  return Status::NotFound(
      StrFormat("no readable snapshot in '%s'", dir.c_str()));
}

std::vector<std::uint64_t> ListSnapshotSeqs(const std::string& dir) {
  std::vector<std::uint64_t> seqs;
  for (const std::string& name : ListFiles(dir, "snapshot-", ".snap")) {
    unsigned long long seq = 0;
    if (std::sscanf(name.c_str(), "snapshot-%16llx.snap", &seq) == 1) {
      seqs.push_back(seq);
    }
  }
  return seqs;
}

Status RemoveOldSnapshots(const std::string& dir, int keep) {
  const std::vector<std::string> names =
      ListFiles(dir, "snapshot-", ".snap");
  if (static_cast<int>(names.size()) <= keep) return Status::Ok();
  bool removed = false;
  for (std::size_t i = 0; i + static_cast<std::size_t>(keep) < names.size();
       ++i) {
    const std::string path = dir + "/" + names[i];
    if (std::remove(path.c_str()) != 0) {
      return Status::DataLoss(
          StrFormat("snapshot: cannot remove '%s'", path.c_str()));
    }
    removed = true;
  }
  if (removed) RPC_RETURN_IF_ERROR(SyncDirectory(dir));
  return Status::Ok();
}

}  // namespace rpc::durable
