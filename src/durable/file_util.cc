#include "durable/file_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/stringutil.h"

namespace rpc::durable {

namespace {

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::DataLoss(
      StrFormat("durable: %s '%s': %s", op, path.c_str(),
                std::strerror(errno)));
}

Status WriteAll(int fd, const char* data, size_t length,
                const std::string& path) {
  size_t written = 0;
  while (written < length) {
    const ssize_t n = ::write(fd, data + written, length - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status EnsureDirectory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::DataLoss(StrFormat("durable: mkdir '%s': %s",
                                      dir.c_str(), ec.message().c_str()));
  }
  return Status::Ok();
}

Result<std::string> ReadFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound(StrFormat("durable: cannot open '%s': %s",
                                      path.c_str(), std::strerror(errno)));
  }
  std::string out;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = ErrnoStatus("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    out.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status AtomicWriteFile(const std::string& dir, const std::string& name,
                       const std::string& payload, FaultInjector* injector) {
  const std::string tmp_path = dir + "/" + name + ".tmp";
  const std::string final_path = dir + "/" + name;
  const int fd = ::open(tmp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("create", tmp_path);

  if (injector != nullptr && injector->Fire(FailPoint::kPartialSnapshot)) {
    // Die mid-write: half the payload reaches the temp file, which is
    // never renamed and must be invisible to recovery.
    (void)WriteAll(fd, payload.data(), payload.size() / 2, tmp_path);
    ::close(fd);
    return Status::DataLoss("durable: injected crash (partial_snapshot)");
  }

  Status written = WriteAll(fd, payload.data(), payload.size(), tmp_path);
  if (written.ok() && ::fsync(fd) != 0) {
    written = ErrnoStatus("fsync", tmp_path);
  }
  ::close(fd);
  if (!written.ok()) return written;

  if (injector != nullptr &&
      injector->Fire(FailPoint::kCrashBetweenFsyncAndRename)) {
    // The temp file is complete and durable but the rename never happens:
    // recovery must fall back to the previous snapshot.
    return Status::DataLoss(
        "durable: injected crash (crash_between_fsync_and_rename)");
  }

  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return ErrnoStatus("rename", final_path);
  }
  return SyncDirectory(dir);
}

std::vector<std::string> ListFiles(const std::string& dir,
                                   const std::string& prefix,
                                   const std::string& suffix) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status SyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open dir", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("fsync dir", dir);
  return Status::Ok();
}

}  // namespace rpc::durable
