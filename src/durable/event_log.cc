#include "durable/event_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/crc32c.h"
#include "common/stringutil.h"
#include "durable/codec.h"
#include "durable/file_util.h"
#include "obs/buckets.h"
#include "obs/trace.h"

namespace rpc::durable {

namespace {

constexpr char kMagic[8] = {'R', 'P', 'C', 'W', 'A', 'L', '0', '1'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kSegmentHeaderSize = 24;  // magic + version + d + base
constexpr std::size_t kRecordHeaderSize = 17;   // seq + type + len + crc
constexpr std::uint32_t kMaxPayload = 1u << 30;

std::string SegmentName(std::uint64_t base_seq) {
  return StrFormat("wal-%016llx.log",
                   static_cast<unsigned long long>(base_seq));
}

/// Base sequence parsed back out of a segment file name; 0 on mismatch.
std::uint64_t SegmentBase(const std::string& name) {
  unsigned long long base = 0;
  if (std::sscanf(name.c_str(), "wal-%16llx.log", &base) != 1) return 0;
  return base;
}

std::string SegmentHeader(int d, std::uint64_t base_seq) {
  std::string header(kMagic, sizeof(kMagic));
  PutU32(&header, kFormatVersion);
  PutU32(&header, static_cast<std::uint32_t>(d));
  PutU64(&header, base_seq);
  return header;
}

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::DataLoss(StrFormat("event log: %s '%s': %s", op,
                                    path.c_str(), std::strerror(errno)));
}

Status WriteAll(int fd, const char* data, std::size_t length,
                const std::string& path) {
  std::size_t written = 0;
  while (written < length) {
    const ssize_t n = ::write(fd, data + written, length - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

EventLog::EventLog(std::string dir, int d, std::uint64_t next_seq,
                   Options options)
    : dir_(std::move(dir)), d_(d), options_(options), next_seq_(next_seq) {
  last_synced_seq_ = next_seq_ - 1;
  // One series set per log instance (tests run several logs at once).
  static std::atomic<int> next_log_ordinal{0};
  const obs::Labels labels = {
      {"log", std::to_string(next_log_ordinal.fetch_add(
                  1, std::memory_order_relaxed))}};
  obs::Registry& registry = obs::Registry::Global();
  fsync_us_ = registry.GetHistogram(
      "rpc_durable_fsync_us", obs::LatencyBucketUpperBoundsUs(), labels,
      "fsync(2) latency at the group-commit point (us)");
  batch_records_ = registry.GetHistogram(
      "rpc_durable_commit_batch_records",
      {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0},
      labels, "Records sharing one group commit (write+fsync)");
}

EventLog::~EventLog() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<EventLog>> EventLog::Open(const std::string& dir,
                                                 int d,
                                                 std::uint64_t next_seq,
                                                 const Options& options) {
  RPC_RETURN_IF_ERROR(EnsureDirectory(dir));
  std::unique_ptr<EventLog> log(new EventLog(dir, d, next_seq, options));

  const std::vector<std::string> segments = ListFiles(dir, "wal-", ".log");
  if (!segments.empty()) {
    // Continue the newest segment: recovery has already validated (and,
    // after a torn write, truncated) its tail.
    const std::string path = dir + "/" + segments.back();
    const int probe = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (probe < 0) return ErrnoStatus("open", path);
    char header[kSegmentHeaderSize];
    const ssize_t header_read = ::read(probe, header, sizeof(header));
    ::close(probe);
    if (header_read == static_cast<ssize_t>(kSegmentHeaderSize) &&
        std::memcmp(header, kMagic, sizeof(kMagic)) == 0) {
      Cursor cursor(std::string_view(header + 8, kSegmentHeaderSize - 8));
      const std::uint32_t version = cursor.U32();
      const std::uint32_t dim = cursor.U32();
      if (version != kFormatVersion || dim != static_cast<std::uint32_t>(d)) {
        return Status::DataLoss(StrFormat(
            "event log: segment '%s' has version %u dimension %u, "
            "expected version %u dimension %d",
            path.c_str(), version, dim, kFormatVersion, d));
      }
      const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
      if (fd < 0) return ErrnoStatus("open", path);
      struct stat st;
      if (::fstat(fd, &st) != 0) {
        ::close(fd);
        return ErrnoStatus("stat", path);
      }
      log->fd_ = fd;
      log->segment_size_ = st.st_size;
      return log;
    }
    // A segment too short to even hold its header: created in the instant
    // before a crash, holds no records — replace it.
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path);
  }
  RPC_RETURN_IF_ERROR(log->EnsureSegmentLocked(next_seq));
  return log;
}

Status EventLog::EnsureSegmentLocked(std::uint64_t base_seq) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const std::string path = dir_ + "/" + SegmentName(base_seq);
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("create", path);
  const std::string header = SegmentHeader(d_, base_seq);
  Status written = WriteAll(fd, header.data(), header.size(), path);
  if (written.ok() && ::fsync(fd) != 0) written = ErrnoStatus("fsync", path);
  if (!written.ok()) {
    ::close(fd);
    return written;
  }
  RPC_RETURN_IF_ERROR(SyncDirectory(dir_));
  fd_ = fd;
  segment_size_ = static_cast<std::int64_t>(header.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.segments_created;
  }
  return Status::Ok();
}

std::uint64_t EventLog::Append(RecordType type, std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t seq = next_seq_++;
  char header[kRecordHeaderSize];
  std::memcpy(header, &seq, 8);
  header[8] = static_cast<char>(type);
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  std::memcpy(header + 9, &length, 4);
  std::uint32_t crc = Crc32c(header, 13);
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  std::memcpy(header + 13, &crc, 4);
  pending_last_record_offset_ = pending_.size();
  if (pending_.empty()) pending_first_seq_ = seq;
  pending_.append(header, kRecordHeaderSize);
  pending_.append(payload.data(), payload.size());
  ++stats_.records;
  return seq;
}

Status EventLog::Sync() {
  // One sync at a time; the staging lock (mu_) is held only long enough to
  // swap the batch out, so Append — called under the ingestion lock —
  // never waits on an fsync.
  std::lock_guard<std::mutex> sync_lock(sync_mu_);
  std::string batch;
  std::uint64_t batch_last_seq = 0;
  std::uint64_t batch_first_seq = 0;
  std::size_t last_record_offset = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) {
      return Status::FailedPrecondition(
          "event log: dead after an injected crash or I/O error");
    }
    if (pending_.empty()) return Status::Ok();
    batch.swap(pending_);
    batch_last_seq = next_seq_ - 1;
    batch_first_seq = pending_first_seq_;
    last_record_offset = pending_last_record_offset_;
    pending_last_record_offset_ = 0;
  }
  batch_records_.Record(
      static_cast<std::int64_t>(batch_last_seq - batch_first_seq + 1));
  const Status written =
      WriteBatchLocked(std::move(batch), batch_first_seq, last_record_offset);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!written.ok()) {
      dead_ = true;
      return written;
    }
    last_synced_seq_ = batch_last_seq;
    ++stats_.syncs;
  }
  return Status::Ok();
}

Status EventLog::WriteBatchLocked(std::string batch,
                                  std::uint64_t batch_first_seq,
                                  std::size_t last_record_offset) {
  FaultInjector* injector = options_.injector;
  if (injector != nullptr && injector->Fire(FailPoint::kTornTailWrite)) {
    // Crash mid-write: only a prefix reaches the disk, cutting the final
    // record of the batch somewhere inside it.
    const std::size_t cut =
        last_record_offset + (batch.size() - last_record_offset) / 2;
    (void)WriteAll(fd_, batch.data(), cut, dir_);
    return Status::DataLoss("event log: injected crash (torn_tail_write)");
  }
  const bool flip =
      injector != nullptr && injector->Fire(FailPoint::kChecksumFlip);
  if (flip && !batch.empty()) {
    // Bit rot on the tail record: the full batch lands on disk but one
    // bit of the last record is wrong, so its CRC32C cannot verify.
    batch[batch.size() - 1] = static_cast<char>(batch.back() ^ 0x10);
  }

  if (segment_size_ >= options_.segment_bytes) {
    RPC_RETURN_IF_ERROR(EnsureSegmentLocked(batch_first_seq));
  }
  const std::string path = dir_;  // for error text; fd_ is the segment
  RPC_RETURN_IF_ERROR(WriteAll(fd_, batch.data(), batch.size(), path));
  const std::int64_t fsync_start = obs::TraceNowNs();
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path);
  fsync_us_.Record((obs::TraceNowNs() - fsync_start) / 1000);
  segment_size_ += static_cast<std::int64_t>(batch.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.bytes_written += static_cast<std::int64_t>(batch.size());
  }
  if (flip) {
    return Status::DataLoss("event log: injected crash (checksum_flip)");
  }
  return Status::Ok();
}

Status EventLog::TruncateThrough(std::uint64_t seq) {
  std::lock_guard<std::mutex> sync_lock(sync_mu_);
  const std::vector<std::string> segments = ListFiles(dir_, "wal-", ".log");
  bool removed = false;
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    // Segment i holds records [base(i), base(i+1) - 1]; it is fully
    // covered by the snapshot exactly when base(i+1) <= seq + 1.
    if (SegmentBase(segments[i + 1]) > seq + 1) break;
    const std::string path = dir_ + "/" + segments[i];
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path);
    removed = true;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.segments_deleted;
  }
  if (removed) RPC_RETURN_IF_ERROR(SyncDirectory(dir_));
  return Status::Ok();
}

std::uint64_t EventLog::last_appended_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

std::uint64_t EventLog::last_synced_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_synced_seq_;
}

EventLog::Stats EventLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

namespace {

/// Shared segment scanner behind ReplayEventLog and ReadLogTail. `handle`
/// sees each valid record past after_seq in order and may stop the scan
/// early by setting *stop (the scan then returns cleanly with what it
/// has). Tail-tolerance and the sequence-chain check are identical for
/// both callers.
Result<ReplayResult> ScanLog(
    const std::string& dir, int d, std::uint64_t after_seq,
    const std::function<Status(const ReplayRecord&, bool* stop)>& handle) {
  ReplayResult result;
  result.last_seq = after_seq;
  const std::vector<std::string> segments = ListFiles(dir, "wal-", ".log");
  std::uint64_t expected = after_seq + 1;
  for (std::size_t segment_index = 0; segment_index < segments.size();
       ++segment_index) {
    const bool is_last = segment_index + 1 == segments.size();
    // Whole segments below the snapshot horizon need no read: their
    // successor's base proves every record is covered.
    if (!is_last &&
        SegmentBase(segments[segment_index + 1]) <= after_seq + 1) {
      continue;
    }
    const std::string path = dir + "/" + segments[segment_index];
    RPC_ASSIGN_OR_RETURN(const std::string data, ReadFile(path));

    const auto torn = [&](std::size_t valid_bytes,
                          const char* what) -> Status {
      if (!is_last) {
        return Status::DataLoss(StrFormat(
            "event log: %s at offset %zu of non-tail segment '%s'", what,
            valid_bytes, path.c_str()));
      }
      result.tail_truncated = true;
      result.tail_segment_path = path;
      result.tail_valid_bytes = static_cast<std::int64_t>(valid_bytes);
      return Status::Ok();
    };

    if (data.size() < kSegmentHeaderSize) {
      RPC_RETURN_IF_ERROR(torn(0, "truncated segment header"));
      continue;
    }
    if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
      return Status::DataLoss(
          StrFormat("event log: bad magic in segment '%s'", path.c_str()));
    }
    Cursor header(std::string_view(data).substr(8, kSegmentHeaderSize - 8));
    const std::uint32_t version = header.U32();
    const std::uint32_t dim = header.U32();
    if (version != kFormatVersion || dim != static_cast<std::uint32_t>(d)) {
      return Status::DataLoss(StrFormat(
          "event log: segment '%s' has version %u dimension %u, expected "
          "version %u dimension %d",
          path.c_str(), version, dim, kFormatVersion, d));
    }

    std::size_t offset = kSegmentHeaderSize;
    while (offset < data.size()) {
      if (data.size() - offset < kRecordHeaderSize) {
        RPC_RETURN_IF_ERROR(torn(offset, "torn record header"));
        break;
      }
      std::uint64_t seq = 0;
      std::uint32_t length = 0;
      std::uint32_t stored_crc = 0;
      std::memcpy(&seq, data.data() + offset, 8);
      const auto type = static_cast<RecordType>(data[offset + 8]);
      std::memcpy(&length, data.data() + offset + 9, 4);
      std::memcpy(&stored_crc, data.data() + offset + 13, 4);
      if (length > kMaxPayload ||
          data.size() - offset - kRecordHeaderSize < length) {
        RPC_RETURN_IF_ERROR(torn(offset, "torn record payload"));
        break;
      }
      std::uint32_t crc = Crc32c(data.data() + offset, 13);
      crc = Crc32cExtend(crc, data.data() + offset + kRecordHeaderSize,
                         length);
      if (crc != stored_crc) {
        RPC_RETURN_IF_ERROR(torn(offset, "checksum mismatch"));
        break;
      }
      if (seq > after_seq) {
        if (seq != expected) {
          return Status::DataLoss(StrFormat(
              "event log: sequence gap in '%s': found %llu, expected %llu",
              path.c_str(), static_cast<unsigned long long>(seq),
              static_cast<unsigned long long>(expected)));
        }
        ReplayRecord record;
        record.seq = seq;
        record.type = type;
        record.payload = std::string_view(data).substr(
            offset + kRecordHeaderSize, length);
        bool stop = false;
        RPC_RETURN_IF_ERROR(handle(record, &stop));
        ++result.replayed;
        result.last_seq = seq;
        ++expected;
        if (stop) return result;
      }
      offset += kRecordHeaderSize + length;
    }
  }
  return result;
}

}  // namespace

Result<ReplayResult> ReplayEventLog(
    const std::string& dir, int d, std::uint64_t after_seq,
    const std::function<Status(const ReplayRecord&)>& apply) {
  // Fetched here, where no caller lock is held (the apply callback may
  // lock the recovering subsystem per record, and bare Increment on the
  // handle is just a relaxed atomic add).
  obs::Counter replayed = obs::Registry::Global().GetCounter(
      "rpc_durable_replay_records_total", {},
      "WAL records handed to recovery replay, across all logs");
  return ScanLog(dir, d, after_seq,
                 [&](const ReplayRecord& record, bool* /*stop*/) {
                   replayed.Increment();
                   return apply(record);
                 });
}

Result<TailBatch> ReadLogTail(const std::string& dir, int d,
                              std::uint64_t after_seq,
                              const TailLimits& limits) {
  TailBatch batch;
  batch.last_seq = after_seq;
  std::int64_t payload_bytes = 0;
  Result<ReplayResult> scanned = ScanLog(
      dir, d, after_seq,
      [&](const ReplayRecord& record, bool* stop) {
        if (limits.max_seq != 0 && record.seq > limits.max_seq) {
          // Not yet synced on the writer's side: pretend the log ends
          // here. Unlike the limits below this is not "more to read" —
          // re-reading before the writer syncs would return nothing new.
          *stop = true;
          return Status::Ok();
        }
        TailRecord copied;
        copied.seq = record.seq;
        copied.type = record.type;
        copied.payload = std::string(record.payload);
        payload_bytes += static_cast<std::int64_t>(copied.payload.size());
        batch.records.push_back(std::move(copied));
        batch.last_seq = record.seq;
        if ((limits.max_records != 0 &&
             batch.records.size() >= limits.max_records) ||
            (limits.max_bytes != 0 && payload_bytes >= limits.max_bytes)) {
          batch.hit_limit = true;
          *stop = true;
        }
        return Status::Ok();
      });
  RPC_RETURN_IF_ERROR(scanned.status());
  // A record past max_seq was collected by ScanLog's bookkeeping but not
  // by us; trust our own last_seq, not the scan's.
  return batch;
}

std::uint64_t OldestWalSeq(const std::string& dir) {
  const std::vector<std::string> segments = ListFiles(dir, "wal-", ".log");
  if (segments.empty()) return 0;
  return SegmentBase(segments.front());
}

}  // namespace rpc::durable
