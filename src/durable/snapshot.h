#ifndef RPC_DURABLE_SNAPSHOT_H_
#define RPC_DURABLE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "durable/fault_injector.h"

namespace rpc::durable {

/// Everything the streaming tier needs to rebuild its exact pre-crash
/// state, captured under the ingestion lock at one event boundary. The
/// doubles are persisted bit-for-bit (IEEE-754 bit patterns), so a
/// recovered ranker's normalizer statistics, warm scores and served model
/// are identical to the originals — not merely close.
struct SnapshotState {
  int d = 0;
  /// The event-log sequence number this snapshot covers: every record with
  /// seq <= last_seq is already folded in; recovery replays only those
  /// after it (bounded replay).
  std::uint64_t last_seq = 0;
  std::int64_t next_row_id = 0;
  /// The served model, core::SerializeModel text (carries alpha, bounds,
  /// control points and the published version).
  std::string model_text;

  // data::OnlineNormalizer sufficient statistics (ExportState order).
  std::int64_t norm_count = 0;
  bool norm_bounds_stale = false;
  std::vector<double> norm_mins, norm_maxs, norm_mean, norm_m2;

  // Row store, index-aligned: n row ids, n*d raw values, n warm scores.
  std::vector<std::int64_t> row_ids;
  std::vector<double> rows;
  std::vector<double> s;

  // Aggregate counters, so StreamStats survives a crash too.
  std::int64_t appended = 0;
  std::int64_t retired = 0;
  std::int64_t retire_misses = 0;
  std::int64_t events_processed = 0;
  std::int64_t refreshes = 0;
  std::int64_t skipped_refreshes = 0;
  std::int64_t failed_refreshes = 0;
  std::int64_t publish_failures = 0;
  std::int64_t events_since_refresh = 0;
  std::int64_t events_since_cold = 0;
  double last_drift = 0.0;
};

/// Binary encoding: magic "RPCSNAP1", u32 format version, the fields in
/// declaration order (little-endian, length-prefixed buffers), and a
/// trailing CRC32C over everything before it.
std::string EncodeSnapshot(const SnapshotState& state);

/// Rejects bad magic, unknown version, checksum mismatch, truncation and
/// trailing garbage with kDataLoss naming the byte offset.
Result<SnapshotState> DecodeSnapshot(std::string_view data);

/// Atomically publishes `<dir>/snapshot-<last_seq, 16 hex>.snap` (temp +
/// fsync + rename + directory fsync). Honors the snapshot failpoints via
/// AtomicWriteFile.
Status WriteSnapshot(const std::string& dir, const SnapshotState& state,
                     FaultInjector* injector);

struct LoadedSnapshot {
  SnapshotState state;
  std::string path;
  /// Snapshots that were newer but unreadable (corrupt/truncated) and were
  /// skipped to reach this one.
  int fallbacks = 0;
};

/// Loads the newest decodable snapshot, falling back across corrupt ones;
/// kNotFound when the directory holds no readable snapshot at all.
Result<LoadedSnapshot> LoadLatestSnapshot(const std::string& dir);

/// The last_seq values of every snapshot file present, ascending.
std::vector<std::uint64_t> ListSnapshotSeqs(const std::string& dir);

/// Deletes the oldest snapshots until at most `keep` remain. Keeping two
/// is the recovery contract: the event log is only truncated through the
/// *oldest* kept snapshot's seq, so if the newest turns out corrupt the
/// fallback snapshot still has its log suffix.
Status RemoveOldSnapshots(const std::string& dir, int keep);

}  // namespace rpc::durable

#endif  // RPC_DURABLE_SNAPSHOT_H_
