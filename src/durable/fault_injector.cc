#include "durable/fault_injector.h"

#include "common/stringutil.h"

namespace rpc::durable {

const char* FailPointName(FailPoint point) {
  switch (point) {
    case FailPoint::kTornTailWrite:
      return "torn_tail_write";
    case FailPoint::kChecksumFlip:
      return "checksum_flip";
    case FailPoint::kPartialSnapshot:
      return "partial_snapshot";
    case FailPoint::kCrashBetweenFsyncAndRename:
      return "crash_between_fsync_and_rename";
  }
  return "unknown";
}

void FaultInjector::Arm(FailPoint point, int countdown) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = true;
  point_ = point;
  countdown_ = countdown < 1 ? 1 : countdown;
}

bool FaultInjector::Fire(FailPoint point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_ || crashed_.load(std::memory_order_relaxed) ||
      point != point_) {
    return false;
  }
  if (--countdown_ > 0) return false;
  armed_ = false;
  crashed_.store(true, std::memory_order_release);
  return true;
}

void FaultInjector::Kill() {
  crashed_.store(true, std::memory_order_release);
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  std::string name = spec;
  int countdown = 1;
  const size_t colon = spec.find(':');
  if (colon != std::string::npos) {
    name = spec.substr(0, colon);
    double parsed = 0.0;
    if (!ParseDouble(spec.substr(colon + 1), &parsed) || parsed < 1.0) {
      return Status::InvalidArgument(
          StrFormat("FaultInjector: bad countdown in spec '%s'",
                    spec.c_str()));
    }
    countdown = static_cast<int>(parsed);
  }
  for (const FailPoint point :
       {FailPoint::kTornTailWrite, FailPoint::kChecksumFlip,
        FailPoint::kPartialSnapshot,
        FailPoint::kCrashBetweenFsyncAndRename}) {
    if (name == FailPointName(point)) {
      Arm(point, countdown);
      return Status::Ok();
    }
  }
  return Status::InvalidArgument(
      StrFormat("FaultInjector: unknown failpoint '%s'", name.c_str()));
}

}  // namespace rpc::durable
