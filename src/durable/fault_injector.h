#ifndef RPC_DURABLE_FAULT_INJECTOR_H_
#define RPC_DURABLE_FAULT_INJECTOR_H_

#include <atomic>
#include <mutex>
#include <string>

#include "common/result.h"

namespace rpc::durable {

/// Where the durable tier can be made to fail. Each point models one real
/// crash shape the recovery path must survive:
///
///   kTornTailWrite — the process dies mid-write: only a prefix of the
///     group-commit batch reaches the log file, cutting the last record in
///     half. Recovery must treat the torn record as never written.
///   kChecksumFlip — a bit of the last log record rots between write and
///     read (disk/firmware corruption). Recovery must detect it via CRC32C
///     and, because it is the tail, drop the record like a torn write.
///   kPartialSnapshot — the process dies while the snapshot temp file is
///     being written; the half-written `.tmp` must be ignored and the
///     previous snapshot + log used instead.
///   kCrashBetweenFsyncAndRename — the snapshot temp file is complete and
///     fsynced but the atomic rename never happened. Same recovery story:
///     the `.tmp` is invisible, the previous snapshot wins.
enum class FailPoint {
  kTornTailWrite,
  kChecksumFlip,
  kPartialSnapshot,
  kCrashBetweenFsyncAndRename,
};

/// Returns e.g. "torn_tail_write" (the spelling the env variable uses).
const char* FailPointName(FailPoint point);

/// Deterministic failpoint driver for kill-and-recover tests. Arm() loads
/// one failpoint with a countdown; the durable writers call Fire() at the
/// matching site and, on the countdown-th hit, simulate the crash effect on
/// disk and then behave as a dead process: crashed() flips true and every
/// subsequent durable operation no-ops with an error. The in-memory object
/// is then abandoned by the test and a fresh one runs Recover() against the
/// directory — exactly a kill -9 without needing a child process.
///
/// Kill() is the blunt form: no disk mutation, just "the process is gone
/// now" (used by the demo/bench to crash between two fsync points).
///
/// Thread-safe: Fire() may race with Arm()/Kill() from other threads.
class FaultInjector {
 public:
  FaultInjector() = default;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms `point` to fire on the `countdown`-th Fire(point) call
  /// (countdown >= 1). Re-arming replaces the previous arming; a crashed
  /// injector stays crashed.
  void Arm(FailPoint point, int countdown);

  /// True exactly once: on the armed countdown-th call for the armed
  /// point. The caller then performs the crash effect and must treat the
  /// injector as crashed (it already does — crashed() is set here).
  bool Fire(FailPoint point);

  /// Simulates an immediate process death with no associated disk effect.
  void Kill();

  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// Parses "name:count" (e.g. "torn_tail_write:2"; ":count" optional,
  /// default 1) as used by the RPC_DURABLE_FAILPOINT env variable and arms
  /// the injector. Unknown names are an InvalidArgument.
  Status ArmFromSpec(const std::string& spec);

 private:
  mutable std::mutex mu_;
  bool armed_ = false;
  FailPoint point_ = FailPoint::kTornTailWrite;
  int countdown_ = 0;
  std::atomic<bool> crashed_{false};
};

}  // namespace rpc::durable

#endif  // RPC_DURABLE_FAULT_INJECTOR_H_
