#ifndef RPC_DURABLE_EVENT_LOG_H_
#define RPC_DURABLE_EVENT_LOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/result.h"
#include "durable/fault_injector.h"
#include "obs/metrics.h"

namespace rpc::durable {

/// Record kinds the streaming tier logs. The log itself is agnostic — it
/// moves (seq, type, payload) triples — but the type tags live here so the
/// writer and the recovery reader agree on one registry.
enum class RecordType : std::uint8_t {
  kAppend = 1,   // row_id + d raw doubles
  kRetire = 2,   // row_id
  kPublish = 3,  // serialized PortableRpcModel + refreshed (row_id, s*) pairs
  kBounds = 4,   // post-rescan live mins/maxs (replay integrity check)
};

/// A segmented, CRC32C-checksummed write-ahead log.
///
/// On-disk layout: `<dir>/wal-<base_seq, 16 hex>.log` files, each starting
/// with a 24-byte header (magic "RPCWAL01", format version, row dimension,
/// base sequence) followed by records:
///
///   u64 seq | u8 type | u32 payload_len | u32 crc32c | payload
///
/// with the checksum covering seq, type, length and payload, so a bit flip
/// anywhere in a record is detected. Sequence numbers are assigned by
/// Append in arrival order, start at 1, and are globally contiguous across
/// segments — recovery verifies the chain and treats any gap as data loss.
///
/// Group commit: Append only stages the record into an in-memory batch
/// (cheap — called under the ingestion lock so the log order is exactly
/// the apply order); Sync() writes the whole batch with one write(2) and
/// one fsync. The streaming tier schedules Sync on its auxiliary pool lane
/// after each drained event, so under load many events share one fsync and
/// the ingestion hot path never waits on the disk.
///
/// Torn-write contract: a crash during Sync can leave a prefix of the
/// batch on disk, cutting the final record. Replay detects the torn (or
/// checksum-failing) tail record, drops it, and reports where the valid
/// prefix ends so recovery can truncate the file; a corrupt record that is
/// *not* at the tail of the log is unrecoverable corruption and fails
/// replay with kDataLoss.
class EventLog {
 public:
  struct Options {
    /// Roll to a new segment once the current one exceeds this many bytes
    /// (checked at Sync batch granularity; records never span segments).
    std::int64_t segment_bytes = 4 << 20;
    /// Failpoint driver for crash tests; nullable.
    FaultInjector* injector = nullptr;
  };

  struct Stats {
    std::int64_t records = 0;
    std::int64_t syncs = 0;
    std::int64_t bytes_written = 0;  // record bytes, excluding headers
    std::int64_t segments_created = 0;
    std::int64_t segments_deleted = 0;
  };

  /// Opens the log for appending with the given next sequence number:
  /// continues the newest existing segment (whose tail recovery has
  /// already validated/truncated) or creates the first one. `d` is stamped
  /// into every segment header and checked on replay.
  static Result<std::unique_ptr<EventLog>> Open(const std::string& dir,
                                                int d,
                                                std::uint64_t next_seq,
                                                const Options& options);

  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Stages one record and returns its assigned sequence number. Never
  /// touches the disk; the record becomes durable at the next Sync().
  std::uint64_t Append(RecordType type, std::string_view payload);

  /// Writes every staged record to the current segment and fsyncs — the
  /// group-commit point. Idempotent when nothing is staged. Returns the
  /// injected-crash error when a failpoint fires (the log is then dead:
  /// every later Append/Sync fails).
  Status Sync();

  /// Deletes whole segments whose records are all <= `seq` (covered by a
  /// durable snapshot). The segment currently being written survives.
  Status TruncateThrough(std::uint64_t seq);

  /// Sequence number of the most recently staged record (0 = none yet).
  std::uint64_t last_appended_seq() const;
  /// Sequence number through which records are on disk and fsynced.
  std::uint64_t last_synced_seq() const;

  Stats stats() const;

 private:
  EventLog(std::string dir, int d, std::uint64_t next_seq, Options options);

  Status EnsureSegmentLocked(std::uint64_t base_seq);
  Status WriteBatchLocked(std::string batch, std::uint64_t batch_first_seq,
                          std::size_t last_record_offset);

  const std::string dir_;
  const int d_;
  const Options options_;

  /// Two locks so the disk never blocks ingestion: mu_ guards the staging
  /// buffer and counters (held by Append, microseconds); sync_mu_
  /// serializes segment I/O and is held across write+fsync.
  mutable std::mutex mu_;
  std::mutex sync_mu_;
  int fd_ = -1;                    // guarded by sync_mu_
  std::int64_t segment_size_ = 0;  // guarded by sync_mu_
  std::string pending_;
  std::uint64_t pending_first_seq_ = 0;
  std::size_t pending_last_record_offset_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t last_synced_seq_ = 0;
  bool dead_ = false;  // injected crash or unrecoverable I/O error
  Stats stats_;

  // Telemetry handles, created in the constructor (Open runs outside any
  // caller lock; creating them lazily on the Sync path would take the
  // registry lock under the streaming tier's, inverting the lock order).
  obs::Histogram fsync_us_;
  obs::Histogram batch_records_;
};

/// One record handed to the replay callback. The payload view borrows the
/// segment buffer; copy it if it must outlive the callback.
struct ReplayRecord {
  std::uint64_t seq = 0;
  RecordType type = RecordType::kAppend;
  std::string_view payload;
};

struct ReplayResult {
  std::uint64_t last_seq = 0;   // highest sequence applied (or after_seq)
  std::uint64_t replayed = 0;   // records handed to the callback
  bool tail_truncated = false;  // a torn/corrupt tail record was dropped
  std::string tail_segment_path;          // segment holding the torn tail
  std::int64_t tail_valid_bytes = 0;      // valid prefix length of it
};

/// Replays every record with seq > after_seq, in order, through `apply`;
/// stops with the callback's error if it fails. Verifies the segment
/// headers (magic, dimension) and the global sequence chain.
Result<ReplayResult> ReplayEventLog(
    const std::string& dir, int d, std::uint64_t after_seq,
    const std::function<Status(const ReplayRecord&)>& apply);

/// One record copied out of the log by ReadLogTail. Owning (unlike
/// ReplayRecord, whose payload borrows the segment buffer), because a
/// shipped batch outlives the read.
struct TailRecord {
  std::uint64_t seq = 0;
  RecordType type = RecordType::kAppend;
  std::string payload;
};

struct TailLimits {
  /// Stop after this many records (0 = unlimited).
  std::uint64_t max_records = 256;
  /// Stop once the collected payload bytes exceed this (0 = unlimited).
  std::int64_t max_bytes = 1 << 20;
  /// Ship only records with seq <= max_seq (0 = no cap). A live primary
  /// caps at its last *synced* sequence so a standby never applies a
  /// record the primary itself could still lose.
  std::uint64_t max_seq = 0;
};

struct TailBatch {
  std::vector<TailRecord> records;
  /// Sequence of the last collected record (== after_seq when empty).
  std::uint64_t last_seq = 0;
  /// True when collection stopped at a limit rather than the end of the
  /// log — the caller should read again from last_seq.
  bool hit_limit = false;
};

/// The WAL shipper's read path: collects records with seq > after_seq, in
/// order, while the EventLog writer may be appending concurrently. A
/// torn or checksum-failing record at the very tail is treated as
/// end-of-log, never an error — it is simply a group commit that has not
/// finished landing; the next read picks it up once complete. Corruption
/// anywhere else is still kDataLoss.
Result<TailBatch> ReadLogTail(const std::string& dir, int d,
                              std::uint64_t after_seq,
                              const TailLimits& limits);

/// Base sequence of the oldest wal segment on disk — the earliest record
/// the log can still replay or ship. 0 when no segments exist. A standby
/// whose durable offset has fallen behind this needs a full snapshot.
std::uint64_t OldestWalSeq(const std::string& dir);

}  // namespace rpc::durable

#endif  // RPC_DURABLE_EVENT_LOG_H_
