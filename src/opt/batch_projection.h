#ifndef RPC_OPT_BATCH_PROJECTION_H_
#define RPC_OPT_BATCH_PROJECTION_H_

#include <vector>

#include "common/thread_pool.h"
#include "curve/bernstein.h"
#include "curve/bezier.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "opt/curve_projection.h"

namespace rpc::opt {

/// Batch projection engine: projects every row of `data` (n x d) onto the
/// curve, partitioning rows across `pool` with one ProjectionWorkspace per
/// worker so the per-point hot loop performs no heap allocation.
///
/// Guarantees:
///   * Scores are bit-identical to the serial path (ProjectOntoCurve row by
///     row) for every ProjectionMethod and any thread count — each row runs
///     the exact same arithmetic, independent of partitioning.
///   * `total_squared_distance` (J of Eq. 19) is reduced sequentially in
///     row order from a per-row buffer, so it too is bit-identical across
///     thread counts.
///
/// `pool` may be null (or have parallelism 1): the loop then runs inline on
/// the calling thread, which is the serial ProjectRows behaviour.
linalg::Vector ProjectRowsBatch(const curve::BezierCurve& curve,
                                const linalg::Matrix& data,
                                const ProjectionOptions& options,
                                ThreadPool* pool,
                                double* total_squared_distance = nullptr);

/// ProjectRowsBatch fused with the Step 5 normal-equation accumulation:
/// each projected row (s_i, x_i) is streamed straight into the
/// curve::BernsteinDesignAccumulator of its fixed `segment_rows`-row
/// segment, saving the separate O(n) accumulation sweep the fit loop would
/// otherwise run over the same rows one stage later. The unit of parallel
/// work is one segment — exactly one worker fills each accumulator,
/// sweeping its rows in order — so merging the segments in segment order
/// afterwards reproduces the separate sweep (and any thread count
/// reproduces any other) bit for bit. `segments` must hold at least
/// ceil(n / segment_rows) accumulators already Bind()-ed to the curve's
/// degree/dimension; each is Reset() before filling. Scores and J carry
/// the exact ProjectRowsBatch guarantees.
linalg::Vector ProjectRowsBatchFused(
    const curve::BezierCurve& curve, const linalg::Matrix& data,
    const ProjectionOptions& options, ThreadPool* pool,
    std::vector<curve::BernsteinDesignAccumulator>* segments,
    int segment_rows, double* total_squared_distance = nullptr);

/// Batch-of-curves evaluation: projects every row of `data` onto each of
/// the M `curves` in one sweep. Each RowBlock of rows is transposed into
/// the SoA tile once and scored against all M bound workspaces while the
/// tile is hot (ProjectionWorkspace::ProjectPackedBlock), so comparing
/// model candidates — or serving several model versions over one feature
/// batch — pays the pack and the row traffic once instead of M times.
/// Element m of the result is bit-identical to
/// ProjectRowsBatch(*curves[m], data, ...) with the same options (and
/// thus to the per-row serial path), as is totals' element m when
/// `total_squared_distances` is non-null (resized to M, row-ordered
/// reductions). All curves must share data.cols() as their dimension.
std::vector<linalg::Vector> ProjectRowsBatchMultiCurve(
    const std::vector<const curve::BezierCurve*>& curves,
    const linalg::Matrix& data, const ProjectionOptions& options,
    ThreadPool* pool, std::vector<double>* total_squared_distances = nullptr);

}  // namespace rpc::opt

#endif  // RPC_OPT_BATCH_PROJECTION_H_
