#ifndef RPC_OPT_RICHARDSON_H_
#define RPC_OPT_RICHARDSON_H_

#include <optional>

#include "common/result.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"

namespace rpc::opt {

/// Options for the preconditioned Richardson update of Eq. (27).
struct RichardsonOptions {
  /// Apply the diagonal preconditioner D (column L2 norms of the Gram
  /// matrix) from Section 5. Turning this off reproduces the ill-conditioned
  /// behaviour the paper reports for the raw update (ablation E11).
  bool use_preconditioner = true;
  /// Fixed step size; when unset, gamma = 2 / (lambda_min + lambda_max) of
  /// the Gram matrix (Eq. 28).
  std::optional<double> gamma;
};

/// Caller-owned scratch for allocation-free Richardson steps: the residual,
/// the preconditioned iteration matrix and the eigensolver scratch behind
/// the Eq. (28) step size all live in bound buffers, and the step writes
/// straight into the caller's control-point matrix. One of these persists
/// inside core::FitWorkspace across outer iterations and restarts.
class RichardsonWorkspace {
 public:
  RichardsonWorkspace() = default;

  /// Sizes the scratch for a dim x (degree+1) control matrix.
  void Bind(int dim, int degree);
  bool bound() const { return degree_ >= 0; }

  /// One Richardson step for the least-squares problem
  /// min_P ||X^T - P (MZ)||_F^2, in place on *control:
  ///   P' = P - gamma (P A - B) D^{-1},
  /// where A = `gram` ((k+1) x (k+1)) and B = `cross` (d x (k+1)). The
  /// arithmetic matches the historical allocating RichardsonStep operation
  /// for operation, so results are bit-identical to it. Returns
  /// kNumericalError when the Gram eigen range cannot be computed or the
  /// updated control matrix is non-finite (the error path may leave
  /// *control partially updated; callers abort the fit on error).
  Status Step(const linalg::Matrix& gram, const linalg::Matrix& cross,
              const RichardsonOptions& options, linalg::Matrix* control);

 private:
  int dim_ = 0;
  int degree_ = -1;
  linalg::Matrix iteration_;  // (k+1)^2: D^{-1/2} A D^{-1/2} spectrum probe
  linalg::Matrix residual_;   // d x (k+1)
  linalg::Vector precond_;    // k+1 column norms of the Gram matrix
  linalg::SymmetricEigenWorkspace eigen_;
};

/// One Richardson step as a pure function: copies `p`, runs
/// RichardsonWorkspace::Step on the copy and returns it. Convenience for
/// tests and offline analyses; hot paths hold a workspace instead.
Result<linalg::Matrix> RichardsonStep(const linalg::Matrix& p,
                                      const linalg::Matrix& gram,
                                      const linalg::Matrix& cross,
                                      const RichardsonOptions& options = {});

/// The diagonal preconditioner D of Section 5: entry j is the L2 norm of
/// column j of the Gram matrix (guarded below by 1e-300).
linalg::Vector RichardsonPreconditioner(const linalg::Matrix& gram);

}  // namespace rpc::opt

#endif  // RPC_OPT_RICHARDSON_H_
