#ifndef RPC_OPT_RICHARDSON_H_
#define RPC_OPT_RICHARDSON_H_

#include <optional>

#include "common/result.h"
#include "linalg/matrix.h"

namespace rpc::opt {

/// Options for the preconditioned Richardson update of Eq. (27).
struct RichardsonOptions {
  /// Apply the diagonal preconditioner D (column L2 norms of the Gram
  /// matrix) from Section 5. Turning this off reproduces the ill-conditioned
  /// behaviour the paper reports for the raw update (ablation E11).
  bool use_preconditioner = true;
  /// Fixed step size; when unset, gamma = 2 / (lambda_min + lambda_max) of
  /// the Gram matrix (Eq. 28).
  std::optional<double> gamma;
};

/// One Richardson step for the least-squares problem
/// min_P ||X^T - P (MZ)||_F^2:
///   P' = P - gamma (P A - B) D^{-1},
/// where A = (MZ)(MZ)^T (4x4 Gram matrix) and B = X^T (MZ)^T (the d x 4
/// cross matrix). Returns kNumericalError when the Gram eigen range cannot
/// be computed or the implied step is non-finite.
Result<linalg::Matrix> RichardsonStep(const linalg::Matrix& p,
                                      const linalg::Matrix& gram,
                                      const linalg::Matrix& cross,
                                      const RichardsonOptions& options = {});

/// The diagonal preconditioner D of Section 5: entry j is the L2 norm of
/// column j of the Gram matrix (guarded below by 1e-300).
linalg::Vector RichardsonPreconditioner(const linalg::Matrix& gram);

}  // namespace rpc::opt

#endif  // RPC_OPT_RICHARDSON_H_
