#ifndef RPC_OPT_GOLDEN_SECTION_H_
#define RPC_OPT_GOLDEN_SECTION_H_

#include <functional>

namespace rpc::opt {

/// Result of a one-dimensional minimisation.
struct ScalarMinResult {
  double x = 0.0;       // minimiser
  double fx = 0.0;      // objective at the minimiser
  int evaluations = 0;  // number of objective evaluations
};

/// Golden Section Search on [lo, hi] (Step 4 of Algorithm 1, following
/// Bazaraa et al.). Assumes f is unimodal on the bracket; for multimodal
/// objectives callers should bracket local minima first (see
/// curve_projection.h). Terminates when the bracket width is below
/// `tol` or after `max_iterations`.
ScalarMinResult GoldenSectionMinimize(const std::function<double(double)>& f,
                                      double lo, double hi,
                                      double tol = 1e-10,
                                      int max_iterations = 200);

}  // namespace rpc::opt

#endif  // RPC_OPT_GOLDEN_SECTION_H_
