#ifndef RPC_OPT_GOLDEN_SECTION_H_
#define RPC_OPT_GOLDEN_SECTION_H_

#include <cassert>
#include <cmath>
#include <functional>

namespace rpc::opt {

/// Result of a one-dimensional minimisation.
struct ScalarMinResult {
  double x = 0.0;       // minimiser
  double fx = 0.0;      // objective at the minimiser
  int evaluations = 0;  // number of objective evaluations
};

/// Generic core of Golden Section Search, callable with any functor so hot
/// paths avoid the std::function indirection (a capturing lambda too large
/// for the small-buffer optimisation heap-allocates on every call — per
/// projected point in the batch engine). Same arithmetic as
/// GoldenSectionMinimize below; results are bit-identical.
template <typename F>
ScalarMinResult GoldenSectionMinimizeWith(F&& f, double lo, double hi,
                                          double tol = 1e-10,
                                          int max_iterations = 200) {
  assert(lo <= hi);
  const double kInvPhi = (std::sqrt(5.0) - 1.0) / 2.0;   // 1/phi
  const double kInvPhi2 = (3.0 - std::sqrt(5.0)) / 2.0;  // 1/phi^2

  ScalarMinResult result;
  double a = lo;
  double b = hi;
  double h = b - a;
  if (h <= tol) {
    result.x = 0.5 * (a + b);
    result.fx = f(result.x);
    result.evaluations = 1;
    return result;
  }

  double c = a + kInvPhi2 * h;
  double d = a + kInvPhi * h;
  double fc = f(c);
  double fd = f(d);
  int evals = 2;

  for (int iter = 0; iter < max_iterations && h > tol; ++iter) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      h = b - a;
      c = a + kInvPhi2 * h;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      h = b - a;
      d = a + kInvPhi * h;
      fd = f(d);
    }
    ++evals;
  }

  result.x = fc < fd ? c : d;
  result.fx = fc < fd ? fc : fd;
  result.evaluations = evals;
  return result;
}

/// Golden Section Search on [lo, hi] (Step 4 of Algorithm 1, following
/// Bazaraa et al.). Assumes f is unimodal on the bracket; for multimodal
/// objectives callers should bracket local minima first (see
/// curve_projection.h). Terminates when the bracket width is below
/// `tol` or after `max_iterations`.
ScalarMinResult GoldenSectionMinimize(const std::function<double(double)>& f,
                                      double lo, double hi,
                                      double tol = 1e-10,
                                      int max_iterations = 200);

}  // namespace rpc::opt

#endif  // RPC_OPT_GOLDEN_SECTION_H_
