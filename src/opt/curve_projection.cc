#include "opt/curve_projection.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "opt/golden_section.h"
#include "opt/polynomial.h"

namespace rpc::opt {

using curve::BezierCurve;
using linalg::Matrix;
using linalg::Vector;

namespace {

// Relative slack when comparing candidate minima; within this the larger s
// wins (the sup tie-break of Eq. A-2).
constexpr double kTieRelTol = 1e-9;

void ConsiderCandidate(const BezierCurve& curve, const Vector& x, double s,
                       ProjectionResult* best) {
  const double dist = curve.SquaredDistanceAt(x, s);
  const double slack = kTieRelTol * (1.0 + best->squared_distance);
  if (dist < best->squared_distance - slack ||
      (dist <= best->squared_distance + slack && s > best->s)) {
    best->squared_distance = dist;
    best->s = s;
  }
  ++best->evaluations;
}

ProjectionResult ProjectViaGrid(const BezierCurve& curve, const Vector& x,
                                const ProjectionOptions& options,
                                bool refine) {
  const int g = std::max(options.grid_points, 2);
  std::vector<double> dist(static_cast<size_t>(g) + 1);
  for (int i = 0; i <= g; ++i) {
    dist[static_cast<size_t>(i)] =
        curve.SquaredDistanceAt(x, static_cast<double>(i) / g);
  }

  ProjectionResult best;
  best.squared_distance = dist[0];
  best.s = 0.0;
  best.evaluations = g + 1;
  for (int i = 1; i <= g; ++i) {
    const double s = static_cast<double>(i) / g;
    const double slack = kTieRelTol * (1.0 + best.squared_distance);
    if (dist[static_cast<size_t>(i)] < best.squared_distance - slack ||
        (dist[static_cast<size_t>(i)] <= best.squared_distance + slack &&
         s > best.s)) {
      best.squared_distance = dist[static_cast<size_t>(i)];
      best.s = s;
    }
  }
  if (!refine) return best;

  // Refine every grid-local minimum bracket with Golden Section Search and
  // keep the global best. Brackets at the boundary are included so that
  // projections landing on s = 0 or s = 1 are found.
  const auto objective = [&](double s) {
    return curve.SquaredDistanceAt(x, s);
  };
  for (int i = 0; i <= g; ++i) {
    const bool left_ok = i == 0 || dist[static_cast<size_t>(i)] <=
                                       dist[static_cast<size_t>(i - 1)];
    const bool right_ok = i == g || dist[static_cast<size_t>(i)] <=
                                        dist[static_cast<size_t>(i + 1)];
    if (!left_ok || !right_ok) continue;
    const double lo = std::max(0.0, static_cast<double>(i - 1) / g);
    const double hi = std::min(1.0, static_cast<double>(i + 1) / g);
    const ScalarMinResult gss =
        GoldenSectionMinimize(objective, lo, hi, options.tol);
    best.evaluations += gss.evaluations;
    ConsiderCandidate(curve, x, gss.x, &best);
  }
  return best;
}

// Safeguarded Newton refinement of every grid-local minimum: iterates on
// g(s) = d/ds ||x - f(s)||^2 / -2 = f'(s).(x - f(s)), with derivative
// g'(s) = f''(s).(x - f(s)) - ||f'(s)||^2, falling back to bisection when a
// step leaves the bracket.
ProjectionResult ProjectViaNewton(const BezierCurve& curve, const Vector& x,
                                  const ProjectionOptions& options) {
  const int g = std::max(options.grid_points, 2);
  const BezierCurve hodograph = curve.DerivativeCurve();
  const BezierCurve second = hodograph.DerivativeCurve();

  const auto stationarity = [&](double s) {
    const Vector deriv = hodograph.Evaluate(s);
    const Vector residual = x - curve.Evaluate(s);
    return linalg::Dot(deriv, residual);
  };
  const auto stationarity_derivative = [&](double s) {
    const Vector deriv = hodograph.Evaluate(s);
    const Vector curvature = second.Evaluate(s);
    const Vector residual = x - curve.Evaluate(s);
    return linalg::Dot(curvature, residual) - deriv.SquaredNorm();
  };

  std::vector<double> dist(static_cast<size_t>(g) + 1);
  for (int i = 0; i <= g; ++i) {
    dist[static_cast<size_t>(i)] =
        curve.SquaredDistanceAt(x, static_cast<double>(i) / g);
  }
  ProjectionResult best;
  best.s = 0.0;
  best.squared_distance = dist[0];
  best.evaluations = g + 1;
  ConsiderCandidate(curve, x, 1.0, &best);

  for (int i = 0; i <= g; ++i) {
    const bool left_ok = i == 0 || dist[static_cast<size_t>(i)] <=
                                       dist[static_cast<size_t>(i - 1)];
    const bool right_ok = i == g || dist[static_cast<size_t>(i)] <=
                                        dist[static_cast<size_t>(i + 1)];
    if (!left_ok || !right_ok) continue;
    double lo = std::max(0.0, static_cast<double>(i - 1) / g);
    double hi = std::min(1.0, static_cast<double>(i + 1) / g);
    // g is decreasing through a minimum: g(lo) >= 0 >= g(hi) is the usual
    // situation; when signs do not bracket (boundary minima) Newton from
    // the midpoint with clamping still behaves.
    double s = 0.5 * (lo + hi);
    for (int iter = 0; iter < 50; ++iter) {
      const double value = stationarity(s);
      ++best.evaluations;
      if (std::fabs(value) < options.tol) break;
      // Shrink the safeguard bracket using the sign of g.
      if (value > 0.0) {
        lo = s;
      } else {
        hi = s;
      }
      const double slope = stationarity_derivative(s);
      double next = (slope < 0.0) ? s - value / slope : 0.5 * (lo + hi);
      if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
      if (std::fabs(next - s) < options.tol) {
        s = next;
        break;
      }
      s = next;
    }
    ConsiderCandidate(curve, x, std::clamp(s, 0.0, 1.0), &best);
  }
  return best;
}

ProjectionResult ProjectViaPolynomialRoots(const BezierCurve& curve,
                                           const Vector& x,
                                           const ProjectionOptions& options) {
  const int k = curve.degree();
  const int d = curve.dimension();
  assert(x.size() == d);

  // f(s) = sum_j a_j s^j (column j of `coeffs`), so
  // r(s) = x - f(s) has coefficients r_0 = x - a_0, r_j = -a_j (j >= 1) and
  // f'(s) has coefficients (j+1) a_{j+1}. The stationarity condition
  // g(s) = f'(s) . (x - f(s)) = 0 is a degree 2k-1 polynomial (Eq. 20).
  const Matrix coeffs = curve.PowerBasisCoefficients();
  std::vector<double> g(static_cast<size_t>(2 * k), 0.0);
  for (int dim = 0; dim < d; ++dim) {
    for (int i = 0; i + 1 <= k; ++i) {
      const double fprime_i = (i + 1) * coeffs(dim, i + 1);
      for (int j = 0; j <= k; ++j) {
        const double r_j =
            (j == 0) ? (x[dim] - coeffs(dim, 0)) : -coeffs(dim, j);
        g[static_cast<size_t>(i + j)] += fprime_i * r_j;
      }
    }
  }
  const Polynomial stationarity{std::vector<double>(g)};

  ProjectionResult best;
  best.s = 0.0;
  best.squared_distance = curve.SquaredDistanceAt(x, 0.0);
  best.evaluations = 1;
  ConsiderCandidate(curve, x, 1.0, &best);
  for (double root : stationarity.RealRootsInInterval(0.0, 1.0, options.tol)) {
    ConsiderCandidate(curve, x, root, &best);
  }
  return best;
}

}  // namespace

ProjectionResult ProjectOntoCurve(const BezierCurve& curve, const Vector& x,
                                  const ProjectionOptions& options) {
  switch (options.method) {
    case ProjectionMethod::kGoldenSection:
      return ProjectViaGrid(curve, x, options, /*refine=*/true);
    case ProjectionMethod::kGridOnly:
      return ProjectViaGrid(curve, x, options, /*refine=*/false);
    case ProjectionMethod::kQuinticRoots:
      return ProjectViaPolynomialRoots(curve, x, options);
    case ProjectionMethod::kNewton:
      return ProjectViaNewton(curve, x, options);
  }
  return ProjectViaGrid(curve, x, options, /*refine=*/true);
}

Vector ProjectRows(const BezierCurve& curve, const Matrix& data,
                   const ProjectionOptions& options,
                   double* total_squared_distance) {
  Vector scores(data.rows());
  double total = 0.0;
  for (int i = 0; i < data.rows(); ++i) {
    const ProjectionResult proj =
        ProjectOntoCurve(curve, data.Row(i), options);
    scores[i] = proj.s;
    total += proj.squared_distance;
  }
  if (total_squared_distance != nullptr) *total_squared_distance = total;
  return scores;
}

}  // namespace rpc::opt
