#include "opt/curve_projection.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "opt/batch_projection.h"
#include "opt/golden_section.h"
#include "opt/polynomial.h"

namespace rpc::opt {

using curve::BezierCurve;
using linalg::Matrix;
using linalg::Vector;

namespace {

// Relative slack when comparing candidate minima; within this the larger s
// wins (the sup tie-break of Eq. A-2).
constexpr double kTieRelTol = 1e-9;

// Interior grid cells ProjectLocal places across a warm-start bracket before
// refining the best one: two cells probe the bracket ends and its centre
// (the previous s* for an unclipped bracket) — enough to detect the
// minimiser escaping while keeping the warm path a handful of evaluations.
constexpr int kLocalGridCells = 2;

}  // namespace

// Function object handed to Golden Section Search; a named struct (instead
// of a capturing lambda wrapped in std::function) keeps the refinement loop
// allocation-free.
struct ProjectionObjective {
  ProjectionWorkspace* workspace;
  const double* x;
  double operator()(double s) const { return workspace->ObjectiveAt(x, s); }
};

void ProjectionWorkspace::BindShared(
    std::shared_ptr<const BezierCurve> curve,
    const ProjectionOptions& options) {
  assert(curve != nullptr);
  // Bind first: it must not observe the new shared_curve_ (it resets state
  // from scratch), and the old reference must survive until the rebind to
  // the new curve is complete in case both point into the same shard.
  std::shared_ptr<const BezierCurve> keep_alive = std::move(shared_curve_);
  Bind(*curve, options);
  shared_curve_ = std::move(curve);
}

void ProjectionWorkspace::Bind(const BezierCurve& curve,
                               const ProjectionOptions& options) {
  shared_curve_.reset();
  curve_ = &curve;
  options_ = options;
  eval_.Bind(curve);
  const int d = curve.dimension();
  const int g = std::max(options.grid_points, 2);
  grid_dist_.resize(static_cast<size_t>(g) + 1);
  // Hodograph + second derivative: kNewton's solver needs them, as does the
  // warm-start ProjectLocal refinement for every refining method — but a
  // global-search-only bind (the kFull hot path rebinding every outer
  // iteration) should not pay for curves it never evaluates.
  if (options.method == ProjectionMethod::kNewton ||
      options.enable_local_refinement) {
    // In-place rebinds: the warm-start engine re-Binds every outer
    // iteration, so the hodograph state must reuse its buffers rather than
    // reallocate (the steady-state zero-allocation contract).
    curve.DerivativeCurveInto(&hodograph_);
    hodograph_.DerivativeCurveInto(&second_);
    hodograph_eval_.Bind(hodograph_);
    second_eval_.Bind(second_);
    deriv_.resize(static_cast<size_t>(d));
    curvature_.resize(static_cast<size_t>(d));
    point_.resize(static_cast<size_t>(d));
  }
  if (options.method == ProjectionMethod::kQuinticRoots) {
    curve.PowerBasisCoefficientsInto(&power_);
    stationarity_coeffs_.resize(static_cast<size_t>(2 * curve.degree()));
  }
  ResetEvaluationCounts();
}

void ProjectionWorkspace::ResetEvaluationCounts() {
  objective_evals_ = 0;
  stationarity_evals_ = 0;
  root_workspace_.ResetEvaluationCount();
}

double ProjectionWorkspace::ObjectiveAt(const double* x, double s) {
  ++objective_evals_;
  return eval_.SquaredDistance(x, s);
}

double ProjectionWorkspace::StationarityAt(const double* x, double s) {
  // g(s) = f'(s) . (x - f(s)).
  ++stationarity_evals_;
  hodograph_eval_.Evaluate(s, deriv_.data());
  eval_.Evaluate(s, point_.data());
  const int d = curve_->dimension();
  double dot = 0.0;
  for (int i = 0; i < d; ++i) {
    dot += deriv_[static_cast<size_t>(i)] *
           (x[i] - point_[static_cast<size_t>(i)]);
  }
  return dot;
}

double ProjectionWorkspace::StationarityWithSlopeAt(const double* x, double s,
                                                    double* slope) {
  // Fused g(s) and g'(s): f(s), f'(s) and f''(s) are each evaluated once,
  // where the StationarityAt + StationarityDerivativeAt pair evaluated f
  // and f' twice. Each accumulator runs in the same order as the unfused
  // helpers, so the values are bit-identical. Counts as one stationarity
  // evaluation (the slope was never counted separately).
  ++stationarity_evals_;
  hodograph_eval_.Evaluate(s, deriv_.data());
  second_eval_.Evaluate(s, curvature_.data());
  eval_.Evaluate(s, point_.data());
  const int d = curve_->dimension();
  double value = 0.0;
  double dot = 0.0;
  double deriv_sq = 0.0;
  for (int i = 0; i < d; ++i) {
    const double residual = x[i] - point_[static_cast<size_t>(i)];
    value += deriv_[static_cast<size_t>(i)] * residual;
    dot += curvature_[static_cast<size_t>(i)] * residual;
    deriv_sq += deriv_[static_cast<size_t>(i)] *
                deriv_[static_cast<size_t>(i)];
  }
  *slope = dot - deriv_sq;
  return value;
}

double ProjectionWorkspace::StationarityDerivativeAt(const double* x,
                                                     double s) {
  // g'(s) = f''(s) . (x - f(s)) - ||f'(s)||^2.
  hodograph_eval_.Evaluate(s, deriv_.data());
  second_eval_.Evaluate(s, curvature_.data());
  eval_.Evaluate(s, point_.data());
  const int d = curve_->dimension();
  double dot = 0.0;
  double deriv_sq = 0.0;
  for (int i = 0; i < d; ++i) {
    dot += curvature_[static_cast<size_t>(i)] *
           (x[i] - point_[static_cast<size_t>(i)]);
    deriv_sq += deriv_[static_cast<size_t>(i)] *
                deriv_[static_cast<size_t>(i)];
  }
  return dot - deriv_sq;
}

void ProjectionWorkspace::ConsiderCandidate(const double* x, double s,
                                            ProjectionResult* best) {
  const double dist = ObjectiveAt(x, s);
  const double slack = kTieRelTol * (1.0 + best->squared_distance);
  if (dist < best->squared_distance - slack ||
      (dist <= best->squared_distance + slack && s > best->s)) {
    best->squared_distance = dist;
    best->s = s;
  }
  ++best->evaluations;
}

void ProjectionWorkspace::ConsiderPrecomputed(double s, double dist,
                                              ProjectionResult* best) {
  const double slack = kTieRelTol * (1.0 + best->squared_distance);
  if (dist < best->squared_distance - slack ||
      (dist <= best->squared_distance + slack && s > best->s)) {
    best->squared_distance = dist;
    best->s = s;
  }
}

ProjectionResult ProjectionWorkspace::ProjectViaGrid(const double* x,
                                                     bool refine) {
  const int g = std::max(options_.grid_points, 2);
  for (int i = 0; i <= g; ++i) {
    grid_dist_[static_cast<size_t>(i)] =
        ObjectiveAt(x, static_cast<double>(i) / g);
  }

  ProjectionResult best;
  best.squared_distance = grid_dist_[0];
  best.s = 0.0;
  best.evaluations = g + 1;
  for (int i = 1; i <= g; ++i) {
    ConsiderPrecomputed(static_cast<double>(i) / g,
                        grid_dist_[static_cast<size_t>(i)], &best);
  }
  if (!refine) return best;

  // Refine every grid-local minimum bracket with Golden Section Search and
  // keep the global best. Brackets at the boundary are included so that
  // projections landing on s = 0 or s = 1 are found.
  const ProjectionObjective objective{this, x};
  for (int i = 0; i <= g; ++i) {
    const bool left_ok = i == 0 || grid_dist_[static_cast<size_t>(i)] <=
                                       grid_dist_[static_cast<size_t>(i - 1)];
    const bool right_ok = i == g || grid_dist_[static_cast<size_t>(i)] <=
                                        grid_dist_[static_cast<size_t>(i + 1)];
    if (!left_ok || !right_ok) continue;
    const double lo = std::max(0.0, static_cast<double>(i - 1) / g);
    const double hi = std::min(1.0, static_cast<double>(i + 1) / g);
    const ScalarMinResult gss =
        GoldenSectionMinimizeWith(objective, lo, hi, options_.tol);
    best.evaluations += gss.evaluations;
    // gss.fx is the objective at gss.x, already evaluated (and counted)
    // inside the search — reuse it rather than paying a second evaluation.
    ConsiderPrecomputed(gss.x, gss.fx, &best);
  }
  return best;
}

// Safeguarded Newton refinement of every grid-local minimum: iterates on
// g(s) = d/ds ||x - f(s)||^2 / -2 = f'(s).(x - f(s)), with derivative
// g'(s) = f''(s).(x - f(s)) - ||f'(s)||^2, falling back to bisection when a
// step leaves the bracket.
ProjectionResult ProjectionWorkspace::ProjectViaNewton(const double* x) {
  const int g = std::max(options_.grid_points, 2);
  for (int i = 0; i <= g; ++i) {
    grid_dist_[static_cast<size_t>(i)] =
        ObjectiveAt(x, static_cast<double>(i) / g);
  }
  ProjectionResult best;
  best.s = 0.0;
  best.squared_distance = grid_dist_[0];
  best.evaluations = g + 1;
  // The s = 1 boundary candidate was already evaluated by the grid pass;
  // reuse grid_dist_[g] so the evaluation is not double-counted.
  ConsiderPrecomputed(1.0, grid_dist_[static_cast<size_t>(g)], &best);

  for (int i = 0; i <= g; ++i) {
    const bool left_ok = i == 0 || grid_dist_[static_cast<size_t>(i)] <=
                                       grid_dist_[static_cast<size_t>(i - 1)];
    const bool right_ok = i == g || grid_dist_[static_cast<size_t>(i)] <=
                                        grid_dist_[static_cast<size_t>(i + 1)];
    if (!left_ok || !right_ok) continue;
    const double lo = std::max(0.0, static_cast<double>(i - 1) / g);
    const double hi = std::min(1.0, static_cast<double>(i + 1) / g);
    const double s = NewtonRefine(x, lo, hi, &best);
    ConsiderCandidate(x, std::clamp(s, 0.0, 1.0), &best);
  }
  return best;
}

double ProjectionWorkspace::NewtonRefine(const double* x, double lo,
                                         double hi, ProjectionResult* best) {
  // g is decreasing through a minimum: g(lo) >= 0 >= g(hi) is the usual
  // situation; when signs do not bracket (boundary minima) Newton from
  // the midpoint with clamping still behaves.
  double s = 0.5 * (lo + hi);
  for (int iter = 0; iter < 50; ++iter) {
    double slope = 0.0;
    const double value = StationarityWithSlopeAt(x, s, &slope);
    ++best->evaluations;
    if (std::fabs(value) < options_.tol) break;
    // Shrink the safeguard bracket using the sign of g.
    if (value > 0.0) {
      lo = s;
    } else {
      hi = s;
    }
    double next = (slope < 0.0) ? s - value / slope : 0.5 * (lo + hi);
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::fabs(next - s) < options_.tol) {
      s = next;
      break;
    }
    s = next;
  }
  return s;
}

ProjectionResult ProjectionWorkspace::ProjectLocal(const double* x, double lo,
                                                   double hi,
                                                   bool* hit_edge) {
  assert(bound());
  *hit_edge = false;
  // Grid-only has no refinement stage to localise; a warm start degenerates
  // to the full grid argmin.
  if (options_.method == ProjectionMethod::kGridOnly) return Project(x);
  // Requires a bind with kNewton or enable_local_refinement set.
  assert(hodograph_eval_.bound());
  lo = std::clamp(lo, 0.0, 1.0);
  hi = std::clamp(hi, 0.0, 1.0);
  assert(hi > lo);

  // Interior grid over the bracket, argmin with the sup tie-break.
  const double width = hi - lo;
  ProjectionResult best;
  best.s = lo;
  best.squared_distance = ObjectiveAt(x, lo);
  best.evaluations = 1;
  int best_idx = 0;
  for (int j = 1; j <= kLocalGridCells; ++j) {
    const double s =
        (j == kLocalGridCells) ? hi : lo + width * j / kLocalGridCells;
    const double dist = ObjectiveAt(x, s);
    ++best.evaluations;
    const double slack = kTieRelTol * (1.0 + best.squared_distance);
    if (dist < best.squared_distance - slack ||
        (dist <= best.squared_distance + slack && s > best.s)) {
      best.squared_distance = dist;
      best.s = s;
      best_idx = j;
    }
  }
  // An argmin on a bracket edge that is not a domain boundary means the
  // true minimiser may sit outside the bracket: report and let the caller
  // run the global search instead of refining a likely-wrong cell.
  if ((best_idx == 0 && lo > 0.0) ||
      (best_idx == kLocalGridCells && hi < 1.0)) {
    *hit_edge = true;
    return best;
  }
  const double cell_lo =
      (best_idx == 0) ? lo : lo + width * (best_idx - 1) / kLocalGridCells;
  const double cell_hi = (best_idx == kLocalGridCells)
                             ? hi
                             : lo + width * (best_idx + 1) / kLocalGridCells;
  const double s = NewtonRefine(x, cell_lo, cell_hi, &best);
  ConsiderCandidate(x, std::clamp(s, 0.0, 1.0), &best);
  return best;
}

ProjectionResult ProjectionWorkspace::ProjectSeeded(const double* x,
                                                    double seed, double lo,
                                                    double hi) {
  assert(bound());
  // Grid-only has no refinement stage; degenerate to the full grid argmin,
  // exactly like ProjectLocal.
  if (options_.method == ProjectionMethod::kGridOnly) return Project(x);
  assert(hodograph_eval_.bound());
  lo = std::clamp(lo, 0.0, 1.0);
  hi = std::clamp(hi, 0.0, 1.0);
  assert(hi > lo);
  seed = std::clamp(seed, lo, hi);

  ProjectionResult best;
  best.s = seed;
  best.squared_distance = ObjectiveAt(x, seed);
  best.evaluations = 1;
  const double s = NewtonRefine(x, lo, hi, &best);
  ConsiderCandidate(x, std::clamp(s, 0.0, 1.0), &best);
  return best;
}

ProjectionResult ProjectionWorkspace::ProjectViaPolynomialRoots(
    const double* x) {
  const int k = curve_->degree();
  const int d = curve_->dimension();

  // f(s) = sum_j a_j s^j (column j of `power_`), so
  // r(s) = x - f(s) has coefficients r_0 = x - a_0, r_j = -a_j (j >= 1) and
  // f'(s) has coefficients (j+1) a_{j+1}. The stationarity condition
  // g(s) = f'(s) . (x - f(s)) = 0 is a degree 2k-1 polynomial (Eq. 20).
  std::fill(stationarity_coeffs_.begin(), stationarity_coeffs_.end(), 0.0);
  for (int dim = 0; dim < d; ++dim) {
    for (int i = 0; i + 1 <= k; ++i) {
      const double fprime_i = (i + 1) * power_(dim, i + 1);
      for (int j = 0; j <= k; ++j) {
        const double r_j =
            (j == 0) ? (x[dim] - power_(dim, 0)) : -power_(dim, j);
        stationarity_coeffs_[static_cast<size_t>(i + j)] += fprime_i * r_j;
      }
    }
  }
  ProjectionResult best;
  best.s = 0.0;
  best.squared_distance = ObjectiveAt(x, 0.0);
  best.evaluations = 1;
  ConsiderCandidate(x, 1.0, &best);
  const std::int64_t sturm_before = root_workspace_.polynomial_evaluations();
  const int num_roots = root_workspace_.RealRootsInInterval(
      stationarity_coeffs_.data(),
      static_cast<int>(stationarity_coeffs_.size()), 0.0, 1.0, options_.tol,
      roots_, PolynomialRootWorkspace::kMaxDegree);
  if (num_roots >= 0) {
    // The chain evaluations are evaluations of the stationarity polynomial
    // g(s): account for them like kNewton's stationarity probes so the
    // methods' ProjectionResult::evaluations are comparable.
    const std::int64_t sturm =
        root_workspace_.polynomial_evaluations() - sturm_before;
    stationarity_evals_ += sturm;
    best.evaluations += static_cast<int>(sturm);
    for (int i = 0; i < num_roots; ++i) {
      ConsiderCandidate(x, roots_[i], &best);
    }
    return best;
  }
  // Degree beyond the fixed workspace capacity (k > 10): allocating
  // fallback, identical roots.
  const Polynomial stationarity{std::vector<double>(stationarity_coeffs_)};
  for (double root :
       stationarity.RealRootsInInterval(0.0, 1.0, options_.tol)) {
    ConsiderCandidate(x, root, &best);
  }
  return best;
}

ProjectionResult ProjectionWorkspace::Project(const double* x) {
  assert(bound());
  switch (options_.method) {
    case ProjectionMethod::kGoldenSection:
      return ProjectViaGrid(x, /*refine=*/true);
    case ProjectionMethod::kGridOnly:
      return ProjectViaGrid(x, /*refine=*/false);
    case ProjectionMethod::kQuinticRoots:
      return ProjectViaPolynomialRoots(x);
    case ProjectionMethod::kNewton:
      return ProjectViaNewton(x);
  }
  return ProjectViaGrid(x, /*refine=*/true);
}

ProjectionResult ProjectOntoCurve(const BezierCurve& curve, const Vector& x,
                                  const ProjectionOptions& options) {
  assert(x.size() == curve.dimension());
  ProjectionWorkspace workspace;
  workspace.Bind(curve, options);
  return workspace.Project(x.data().data());
}

Vector ProjectRows(const BezierCurve& curve, const Matrix& data,
                   const ProjectionOptions& options,
                   double* total_squared_distance) {
  return ProjectRowsBatch(curve, data, options, /*pool=*/nullptr,
                          total_squared_distance);
}

}  // namespace rpc::opt
