#include "opt/curve_projection.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "opt/batch_projection.h"
#include "opt/golden_section.h"
#include "opt/polynomial.h"

namespace rpc::opt {

using curve::BezierCurve;
using linalg::Matrix;
using linalg::Vector;

namespace {

// Relative slack when comparing candidate minima; within this the larger s
// wins (the sup tie-break of Eq. A-2).
constexpr double kTieRelTol = 1e-9;

}  // namespace

// Function object handed to Golden Section Search; a named struct (instead
// of a capturing lambda wrapped in std::function) keeps the refinement loop
// allocation-free.
struct ProjectionObjective {
  ProjectionWorkspace* workspace;
  const double* x;
  double operator()(double s) const { return workspace->ObjectiveAt(x, s); }
};

void ProjectionWorkspace::Bind(const BezierCurve& curve,
                               const ProjectionOptions& options) {
  curve_ = &curve;
  options_ = options;
  eval_.Bind(curve);
  const int d = curve.dimension();
  const int g = std::max(options.grid_points, 2);
  grid_dist_.resize(static_cast<size_t>(g) + 1);
  if (options.method == ProjectionMethod::kNewton) {
    hodograph_ = curve.DerivativeCurve();
    second_ = hodograph_.DerivativeCurve();
    hodograph_eval_.Bind(hodograph_);
    second_eval_.Bind(second_);
    deriv_.resize(static_cast<size_t>(d));
    curvature_.resize(static_cast<size_t>(d));
    point_.resize(static_cast<size_t>(d));
  }
  if (options.method == ProjectionMethod::kQuinticRoots) {
    power_ = curve.PowerBasisCoefficients();
    stationarity_coeffs_.resize(static_cast<size_t>(2 * curve.degree()));
  }
  ResetEvaluationCounts();
}

void ProjectionWorkspace::ResetEvaluationCounts() {
  objective_evals_ = 0;
  stationarity_evals_ = 0;
}

double ProjectionWorkspace::ObjectiveAt(const double* x, double s) {
  ++objective_evals_;
  return eval_.SquaredDistance(x, s);
}

double ProjectionWorkspace::StationarityAt(const double* x, double s) {
  // g(s) = f'(s) . (x - f(s)).
  ++stationarity_evals_;
  hodograph_eval_.Evaluate(s, deriv_.data());
  eval_.Evaluate(s, point_.data());
  const int d = curve_->dimension();
  double dot = 0.0;
  for (int i = 0; i < d; ++i) {
    dot += deriv_[static_cast<size_t>(i)] *
           (x[i] - point_[static_cast<size_t>(i)]);
  }
  return dot;
}

double ProjectionWorkspace::StationarityDerivativeAt(const double* x,
                                                     double s) {
  // g'(s) = f''(s) . (x - f(s)) - ||f'(s)||^2.
  hodograph_eval_.Evaluate(s, deriv_.data());
  second_eval_.Evaluate(s, curvature_.data());
  eval_.Evaluate(s, point_.data());
  const int d = curve_->dimension();
  double dot = 0.0;
  double deriv_sq = 0.0;
  for (int i = 0; i < d; ++i) {
    dot += curvature_[static_cast<size_t>(i)] *
           (x[i] - point_[static_cast<size_t>(i)]);
    deriv_sq += deriv_[static_cast<size_t>(i)] *
                deriv_[static_cast<size_t>(i)];
  }
  return dot - deriv_sq;
}

void ProjectionWorkspace::ConsiderCandidate(const double* x, double s,
                                            ProjectionResult* best) {
  const double dist = ObjectiveAt(x, s);
  const double slack = kTieRelTol * (1.0 + best->squared_distance);
  if (dist < best->squared_distance - slack ||
      (dist <= best->squared_distance + slack && s > best->s)) {
    best->squared_distance = dist;
    best->s = s;
  }
  ++best->evaluations;
}

void ProjectionWorkspace::ConsiderPrecomputed(double s, double dist,
                                              ProjectionResult* best) {
  const double slack = kTieRelTol * (1.0 + best->squared_distance);
  if (dist < best->squared_distance - slack ||
      (dist <= best->squared_distance + slack && s > best->s)) {
    best->squared_distance = dist;
    best->s = s;
  }
}

ProjectionResult ProjectionWorkspace::ProjectViaGrid(const double* x,
                                                     bool refine) {
  const int g = std::max(options_.grid_points, 2);
  for (int i = 0; i <= g; ++i) {
    grid_dist_[static_cast<size_t>(i)] =
        ObjectiveAt(x, static_cast<double>(i) / g);
  }

  ProjectionResult best;
  best.squared_distance = grid_dist_[0];
  best.s = 0.0;
  best.evaluations = g + 1;
  for (int i = 1; i <= g; ++i) {
    ConsiderPrecomputed(static_cast<double>(i) / g,
                        grid_dist_[static_cast<size_t>(i)], &best);
  }
  if (!refine) return best;

  // Refine every grid-local minimum bracket with Golden Section Search and
  // keep the global best. Brackets at the boundary are included so that
  // projections landing on s = 0 or s = 1 are found.
  const ProjectionObjective objective{this, x};
  for (int i = 0; i <= g; ++i) {
    const bool left_ok = i == 0 || grid_dist_[static_cast<size_t>(i)] <=
                                       grid_dist_[static_cast<size_t>(i - 1)];
    const bool right_ok = i == g || grid_dist_[static_cast<size_t>(i)] <=
                                        grid_dist_[static_cast<size_t>(i + 1)];
    if (!left_ok || !right_ok) continue;
    const double lo = std::max(0.0, static_cast<double>(i - 1) / g);
    const double hi = std::min(1.0, static_cast<double>(i + 1) / g);
    const ScalarMinResult gss =
        GoldenSectionMinimizeWith(objective, lo, hi, options_.tol);
    best.evaluations += gss.evaluations;
    // gss.fx is the objective at gss.x, already evaluated (and counted)
    // inside the search — reuse it rather than paying a second evaluation.
    ConsiderPrecomputed(gss.x, gss.fx, &best);
  }
  return best;
}

// Safeguarded Newton refinement of every grid-local minimum: iterates on
// g(s) = d/ds ||x - f(s)||^2 / -2 = f'(s).(x - f(s)), with derivative
// g'(s) = f''(s).(x - f(s)) - ||f'(s)||^2, falling back to bisection when a
// step leaves the bracket.
ProjectionResult ProjectionWorkspace::ProjectViaNewton(const double* x) {
  const int g = std::max(options_.grid_points, 2);
  for (int i = 0; i <= g; ++i) {
    grid_dist_[static_cast<size_t>(i)] =
        ObjectiveAt(x, static_cast<double>(i) / g);
  }
  ProjectionResult best;
  best.s = 0.0;
  best.squared_distance = grid_dist_[0];
  best.evaluations = g + 1;
  // The s = 1 boundary candidate was already evaluated by the grid pass;
  // reuse grid_dist_[g] so the evaluation is not double-counted.
  ConsiderPrecomputed(1.0, grid_dist_[static_cast<size_t>(g)], &best);

  for (int i = 0; i <= g; ++i) {
    const bool left_ok = i == 0 || grid_dist_[static_cast<size_t>(i)] <=
                                       grid_dist_[static_cast<size_t>(i - 1)];
    const bool right_ok = i == g || grid_dist_[static_cast<size_t>(i)] <=
                                        grid_dist_[static_cast<size_t>(i + 1)];
    if (!left_ok || !right_ok) continue;
    double lo = std::max(0.0, static_cast<double>(i - 1) / g);
    double hi = std::min(1.0, static_cast<double>(i + 1) / g);
    // g is decreasing through a minimum: g(lo) >= 0 >= g(hi) is the usual
    // situation; when signs do not bracket (boundary minima) Newton from
    // the midpoint with clamping still behaves.
    double s = 0.5 * (lo + hi);
    for (int iter = 0; iter < 50; ++iter) {
      const double value = StationarityAt(x, s);
      ++best.evaluations;
      if (std::fabs(value) < options_.tol) break;
      // Shrink the safeguard bracket using the sign of g.
      if (value > 0.0) {
        lo = s;
      } else {
        hi = s;
      }
      const double slope = StationarityDerivativeAt(x, s);
      double next = (slope < 0.0) ? s - value / slope : 0.5 * (lo + hi);
      if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
      if (std::fabs(next - s) < options_.tol) {
        s = next;
        break;
      }
      s = next;
    }
    ConsiderCandidate(x, std::clamp(s, 0.0, 1.0), &best);
  }
  return best;
}

ProjectionResult ProjectionWorkspace::ProjectViaPolynomialRoots(
    const double* x) {
  const int k = curve_->degree();
  const int d = curve_->dimension();

  // f(s) = sum_j a_j s^j (column j of `power_`), so
  // r(s) = x - f(s) has coefficients r_0 = x - a_0, r_j = -a_j (j >= 1) and
  // f'(s) has coefficients (j+1) a_{j+1}. The stationarity condition
  // g(s) = f'(s) . (x - f(s)) = 0 is a degree 2k-1 polynomial (Eq. 20).
  std::fill(stationarity_coeffs_.begin(), stationarity_coeffs_.end(), 0.0);
  for (int dim = 0; dim < d; ++dim) {
    for (int i = 0; i + 1 <= k; ++i) {
      const double fprime_i = (i + 1) * power_(dim, i + 1);
      for (int j = 0; j <= k; ++j) {
        const double r_j =
            (j == 0) ? (x[dim] - power_(dim, 0)) : -power_(dim, j);
        stationarity_coeffs_[static_cast<size_t>(i + j)] += fprime_i * r_j;
      }
    }
  }
  const Polynomial stationarity{std::vector<double>(stationarity_coeffs_)};

  ProjectionResult best;
  best.s = 0.0;
  best.squared_distance = ObjectiveAt(x, 0.0);
  best.evaluations = 1;
  ConsiderCandidate(x, 1.0, &best);
  for (double root :
       stationarity.RealRootsInInterval(0.0, 1.0, options_.tol)) {
    ConsiderCandidate(x, root, &best);
  }
  return best;
}

ProjectionResult ProjectionWorkspace::Project(const double* x) {
  assert(bound());
  switch (options_.method) {
    case ProjectionMethod::kGoldenSection:
      return ProjectViaGrid(x, /*refine=*/true);
    case ProjectionMethod::kGridOnly:
      return ProjectViaGrid(x, /*refine=*/false);
    case ProjectionMethod::kQuinticRoots:
      return ProjectViaPolynomialRoots(x);
    case ProjectionMethod::kNewton:
      return ProjectViaNewton(x);
  }
  return ProjectViaGrid(x, /*refine=*/true);
}

ProjectionResult ProjectOntoCurve(const BezierCurve& curve, const Vector& x,
                                  const ProjectionOptions& options) {
  assert(x.size() == curve.dimension());
  ProjectionWorkspace workspace;
  workspace.Bind(curve, options);
  return workspace.Project(x.data().data());
}

Vector ProjectRows(const BezierCurve& curve, const Matrix& data,
                   const ProjectionOptions& options,
                   double* total_squared_distance) {
  return ProjectRowsBatch(curve, data, options, /*pool=*/nullptr,
                          total_squared_distance);
}

}  // namespace rpc::opt
