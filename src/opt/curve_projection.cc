#include "opt/curve_projection.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "curve/simd_backend.h"
#include "opt/batch_projection.h"
#include "opt/golden_section.h"
#include "opt/polynomial.h"

namespace rpc::opt {

using curve::BezierCurve;
using linalg::Matrix;
using linalg::Vector;

namespace {

// Relative slack when comparing candidate minima; within this the larger s
// wins (the sup tie-break of Eq. A-2).
constexpr double kTieRelTol = 1e-9;

// Interior grid cells ProjectLocal places across a warm-start bracket before
// refining the best one: two cells probe the bracket ends and its centre
// (the previous s* for an unclipped bracket) — enough to detect the
// minimiser escaping while keeping the warm path a handful of evaluations.
constexpr int kLocalGridCells = 2;

}  // namespace

// Function object handed to Golden Section Search; a named struct (instead
// of a capturing lambda wrapped in std::function) keeps the refinement loop
// allocation-free.
struct ProjectionObjective {
  ProjectionWorkspace* workspace;
  const double* x;
  double operator()(double s) const { return workspace->ObjectiveAt(x, s); }
};

void ProjectionWorkspace::BindShared(
    std::shared_ptr<const BezierCurve> curve,
    const ProjectionOptions& options) {
  assert(curve != nullptr);
  // Bind first: it must not observe the new shared_curve_ (it resets state
  // from scratch), and the old reference must survive until the rebind to
  // the new curve is complete in case both point into the same shard.
  std::shared_ptr<const BezierCurve> keep_alive = std::move(shared_curve_);
  Bind(*curve, options);
  shared_curve_ = std::move(curve);
}

void ProjectionWorkspace::Bind(const BezierCurve& curve,
                               const ProjectionOptions& options) {
  shared_curve_.reset();
  curve_ = &curve;
  options_ = options;
  eval_.Bind(curve);
  const int d = curve.dimension();
  const int g = std::max(options.grid_points, 2);
  grid_dist_.resize(static_cast<size_t>(g) + 1);
  // Hodograph + second derivative: kNewton's solver needs them, as does the
  // warm-start ProjectLocal refinement for every refining method — but a
  // global-search-only bind (the kFull hot path rebinding every outer
  // iteration) should not pay for curves it never evaluates.
  if (options.method == ProjectionMethod::kNewton ||
      options.enable_local_refinement) {
    // In-place rebinds: the warm-start engine re-Binds every outer
    // iteration, so the hodograph state must reuse its buffers rather than
    // reallocate (the steady-state zero-allocation contract).
    curve.DerivativeCurveInto(&hodograph_);
    hodograph_.DerivativeCurveInto(&second_);
    hodograph_eval_.Bind(hodograph_);
    second_eval_.Bind(second_);
    deriv_.resize(static_cast<size_t>(d));
    curvature_.resize(static_cast<size_t>(d));
    point_.resize(static_cast<size_t>(d));
  }
  if (options.method == ProjectionMethod::kQuinticRoots) {
    curve.PowerBasisCoefficientsInto(&power_);
    stationarity_coeffs_.resize(static_cast<size_t>(2 * curve.degree()));
  } else {
    // Block-path buffers for the grid methods; sized here so ProjectBlock
    // allocates nothing. grid_f_ is filled lazily on the first block (the
    // per-point path never needs it).
    block_.Bind(d);
    grid_f_.resize((static_cast<size_t>(g) + 1) * static_cast<size_t>(d));
    grid_dist_block_.resize((static_cast<size_t>(g) + 1) *
                            RowBlock::kLaneStride);
    golden_xt_.resize(static_cast<size_t>(d) * RowBlock::kMaxRows);
    golden_s_.resize(RowBlock::kMaxRows);
    golden_dist_.resize(RowBlock::kMaxRows);
    block_results_.resize(RowBlock::kMaxRows);
    // One bracket per row is the common case; a capacity of two per row
    // keeps the task list allocation-free for every non-pathological block.
    golden_tasks_.reserve(static_cast<size_t>(RowBlock::kMaxRows) * 2);
  }
  grid_f_ready_ = false;
  ResetEvaluationCounts();
}

void ProjectionWorkspace::ResetEvaluationCounts() {
  objective_evals_ = 0;
  stationarity_evals_ = 0;
  root_workspace_.ResetEvaluationCount();
}

double ProjectionWorkspace::ObjectiveAt(const double* x, double s) {
  ++objective_evals_;
  return eval_.SquaredDistance(x, s);
}

double ProjectionWorkspace::StationarityAt(const double* x, double s) {
  // g(s) = f'(s) . (x - f(s)).
  ++stationarity_evals_;
  hodograph_eval_.Evaluate(s, deriv_.data());
  eval_.Evaluate(s, point_.data());
  const int d = curve_->dimension();
  double dot = 0.0;
  for (int i = 0; i < d; ++i) {
    dot += deriv_[static_cast<size_t>(i)] *
           (x[i] - point_[static_cast<size_t>(i)]);
  }
  return dot;
}

double ProjectionWorkspace::StationarityWithSlopeAt(const double* x, double s,
                                                    double* slope) {
  // Fused g(s) and g'(s): f(s), f'(s) and f''(s) are each evaluated once,
  // where the StationarityAt + StationarityDerivativeAt pair evaluated f
  // and f' twice. Each accumulator runs in the same order as the unfused
  // helpers, so the values are bit-identical. Counts as one stationarity
  // evaluation (the slope was never counted separately).
  ++stationarity_evals_;
  hodograph_eval_.Evaluate(s, deriv_.data());
  second_eval_.Evaluate(s, curvature_.data());
  eval_.Evaluate(s, point_.data());
  const int d = curve_->dimension();
  double value = 0.0;
  double dot = 0.0;
  double deriv_sq = 0.0;
  for (int i = 0; i < d; ++i) {
    const double residual = x[i] - point_[static_cast<size_t>(i)];
    value += deriv_[static_cast<size_t>(i)] * residual;
    dot += curvature_[static_cast<size_t>(i)] * residual;
    deriv_sq += deriv_[static_cast<size_t>(i)] *
                deriv_[static_cast<size_t>(i)];
  }
  *slope = dot - deriv_sq;
  return value;
}

double ProjectionWorkspace::StationarityDerivativeAt(const double* x,
                                                     double s) {
  // g'(s) = f''(s) . (x - f(s)) - ||f'(s)||^2.
  hodograph_eval_.Evaluate(s, deriv_.data());
  second_eval_.Evaluate(s, curvature_.data());
  eval_.Evaluate(s, point_.data());
  const int d = curve_->dimension();
  double dot = 0.0;
  double deriv_sq = 0.0;
  for (int i = 0; i < d; ++i) {
    dot += curvature_[static_cast<size_t>(i)] *
           (x[i] - point_[static_cast<size_t>(i)]);
    deriv_sq += deriv_[static_cast<size_t>(i)] *
                deriv_[static_cast<size_t>(i)];
  }
  return dot - deriv_sq;
}

void ProjectionWorkspace::ConsiderCandidate(const double* x, double s,
                                            ProjectionResult* best) {
  const double dist = ObjectiveAt(x, s);
  const double slack = kTieRelTol * (1.0 + best->squared_distance);
  if (dist < best->squared_distance - slack ||
      (dist <= best->squared_distance + slack && s > best->s)) {
    best->squared_distance = dist;
    best->s = s;
  }
  ++best->evaluations;
}

void ProjectionWorkspace::ConsiderPrecomputed(double s, double dist,
                                              ProjectionResult* best) {
  const double slack = kTieRelTol * (1.0 + best->squared_distance);
  if (dist < best->squared_distance - slack ||
      (dist <= best->squared_distance + slack && s > best->s)) {
    best->squared_distance = dist;
    best->s = s;
  }
}

ProjectionResult ProjectionWorkspace::ProjectViaGrid(const double* x,
                                                     bool refine) {
  const int g = std::max(options_.grid_points, 2);
  for (int i = 0; i <= g; ++i) {
    grid_dist_[static_cast<size_t>(i)] =
        ObjectiveAt(x, static_cast<double>(i) / g);
  }
  return FinishGridFromDists(x, grid_dist_.data(), /*stride=*/1, refine);
}

ProjectionResult ProjectionWorkspace::FinishGridFromDists(const double* x,
                                                          const double* gd,
                                                          int stride,
                                                          bool refine) {
  const int g = std::max(options_.grid_points, 2);
  ProjectionResult best;
  best.squared_distance = gd[0];
  best.s = 0.0;
  best.evaluations = g + 1;
  for (int i = 1; i <= g; ++i) {
    ConsiderPrecomputed(static_cast<double>(i) / g,
                        gd[static_cast<size_t>(i) * stride], &best);
  }
  if (!refine) return best;

  // Refine every grid-local minimum bracket with Golden Section Search and
  // keep the global best. Brackets at the boundary are included so that
  // projections landing on s = 0 or s = 1 are found.
  const ProjectionObjective objective{this, x};
  for (int i = 0; i <= g; ++i) {
    const bool left_ok =
        i == 0 || gd[static_cast<size_t>(i) * stride] <=
                      gd[static_cast<size_t>(i - 1) * stride];
    const bool right_ok =
        i == g || gd[static_cast<size_t>(i) * stride] <=
                      gd[static_cast<size_t>(i + 1) * stride];
    if (!left_ok || !right_ok) continue;
    const double lo = std::max(0.0, static_cast<double>(i - 1) / g);
    const double hi = std::min(1.0, static_cast<double>(i + 1) / g);
    const ScalarMinResult gss =
        GoldenSectionMinimizeWith(objective, lo, hi, options_.tol);
    best.evaluations += gss.evaluations;
    // gss.fx is the objective at gss.x, already evaluated (and counted)
    // inside the search — reuse it rather than paying a second evaluation.
    ConsiderPrecomputed(gss.x, gss.fx, &best);
  }
  return best;
}

// Safeguarded Newton refinement of every grid-local minimum: iterates on
// g(s) = d/ds ||x - f(s)||^2 / -2 = f'(s).(x - f(s)), with derivative
// g'(s) = f''(s).(x - f(s)) - ||f'(s)||^2, falling back to bisection when a
// step leaves the bracket.
ProjectionResult ProjectionWorkspace::ProjectViaNewton(const double* x) {
  const int g = std::max(options_.grid_points, 2);
  for (int i = 0; i <= g; ++i) {
    grid_dist_[static_cast<size_t>(i)] =
        ObjectiveAt(x, static_cast<double>(i) / g);
  }
  return FinishNewtonFromDists(x, grid_dist_.data(), /*stride=*/1);
}

ProjectionResult ProjectionWorkspace::FinishNewtonFromDists(const double* x,
                                                            const double* gd,
                                                            int stride) {
  const int g = std::max(options_.grid_points, 2);
  ProjectionResult best;
  best.s = 0.0;
  best.squared_distance = gd[0];
  best.evaluations = g + 1;
  // The s = 1 boundary candidate was already evaluated by the grid pass;
  // reuse its grid entry so the evaluation is not double-counted.
  ConsiderPrecomputed(1.0, gd[static_cast<size_t>(g) * stride], &best);

  for (int i = 0; i <= g; ++i) {
    const bool left_ok =
        i == 0 || gd[static_cast<size_t>(i) * stride] <=
                      gd[static_cast<size_t>(i - 1) * stride];
    const bool right_ok =
        i == g || gd[static_cast<size_t>(i) * stride] <=
                      gd[static_cast<size_t>(i + 1) * stride];
    if (!left_ok || !right_ok) continue;
    const double lo = std::max(0.0, static_cast<double>(i - 1) / g);
    const double hi = std::min(1.0, static_cast<double>(i + 1) / g);
    const double s = NewtonRefine(x, lo, hi, &best);
    ConsiderCandidate(x, std::clamp(s, 0.0, 1.0), &best);
  }
  return best;
}

double ProjectionWorkspace::NewtonRefine(const double* x, double lo,
                                         double hi, ProjectionResult* best) {
  // g is decreasing through a minimum: g(lo) >= 0 >= g(hi) is the usual
  // situation; when signs do not bracket (boundary minima) Newton from
  // the midpoint with clamping still behaves.
  double s = 0.5 * (lo + hi);
  for (int iter = 0; iter < 50; ++iter) {
    double slope = 0.0;
    const double value = StationarityWithSlopeAt(x, s, &slope);
    ++best->evaluations;
    if (std::fabs(value) < options_.tol) break;
    // Shrink the safeguard bracket using the sign of g.
    if (value > 0.0) {
      lo = s;
    } else {
      hi = s;
    }
    double next = (slope < 0.0) ? s - value / slope : 0.5 * (lo + hi);
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::fabs(next - s) < options_.tol) {
      s = next;
      break;
    }
    s = next;
  }
  return s;
}

ProjectionResult ProjectionWorkspace::ProjectLocal(const double* x, double lo,
                                                   double hi,
                                                   bool* hit_edge) {
  assert(bound());
  *hit_edge = false;
  // Grid-only has no refinement stage to localise; a warm start degenerates
  // to the full grid argmin.
  if (options_.method == ProjectionMethod::kGridOnly) return Project(x);
  // Requires a bind with kNewton or enable_local_refinement set.
  assert(hodograph_eval_.bound());
  lo = std::clamp(lo, 0.0, 1.0);
  hi = std::clamp(hi, 0.0, 1.0);
  assert(hi > lo);

  // Interior grid over the bracket, argmin with the sup tie-break.
  const double width = hi - lo;
  ProjectionResult best;
  best.s = lo;
  best.squared_distance = ObjectiveAt(x, lo);
  best.evaluations = 1;
  int best_idx = 0;
  for (int j = 1; j <= kLocalGridCells; ++j) {
    const double s =
        (j == kLocalGridCells) ? hi : lo + width * j / kLocalGridCells;
    const double dist = ObjectiveAt(x, s);
    ++best.evaluations;
    const double slack = kTieRelTol * (1.0 + best.squared_distance);
    if (dist < best.squared_distance - slack ||
        (dist <= best.squared_distance + slack && s > best.s)) {
      best.squared_distance = dist;
      best.s = s;
      best_idx = j;
    }
  }
  // An argmin on a bracket edge that is not a domain boundary means the
  // true minimiser may sit outside the bracket: report and let the caller
  // run the global search instead of refining a likely-wrong cell.
  if ((best_idx == 0 && lo > 0.0) ||
      (best_idx == kLocalGridCells && hi < 1.0)) {
    *hit_edge = true;
    return best;
  }
  const double cell_lo =
      (best_idx == 0) ? lo : lo + width * (best_idx - 1) / kLocalGridCells;
  const double cell_hi = (best_idx == kLocalGridCells)
                             ? hi
                             : lo + width * (best_idx + 1) / kLocalGridCells;
  const double s = NewtonRefine(x, cell_lo, cell_hi, &best);
  ConsiderCandidate(x, std::clamp(s, 0.0, 1.0), &best);
  return best;
}

ProjectionResult ProjectionWorkspace::ProjectSeeded(const double* x,
                                                    double seed, double lo,
                                                    double hi) {
  assert(bound());
  // Grid-only has no refinement stage; degenerate to the full grid argmin,
  // exactly like ProjectLocal.
  if (options_.method == ProjectionMethod::kGridOnly) return Project(x);
  assert(hodograph_eval_.bound());
  lo = std::clamp(lo, 0.0, 1.0);
  hi = std::clamp(hi, 0.0, 1.0);
  assert(hi > lo);
  seed = std::clamp(seed, lo, hi);

  ProjectionResult best;
  best.s = seed;
  best.squared_distance = ObjectiveAt(x, seed);
  best.evaluations = 1;
  const double s = NewtonRefine(x, lo, hi, &best);
  ConsiderCandidate(x, std::clamp(s, 0.0, 1.0), &best);
  return best;
}

ProjectionResult ProjectionWorkspace::ProjectViaPolynomialRoots(
    const double* x) {
  const int k = curve_->degree();
  const int d = curve_->dimension();

  // f(s) = sum_j a_j s^j (column j of `power_`), so
  // r(s) = x - f(s) has coefficients r_0 = x - a_0, r_j = -a_j (j >= 1) and
  // f'(s) has coefficients (j+1) a_{j+1}. The stationarity condition
  // g(s) = f'(s) . (x - f(s)) = 0 is a degree 2k-1 polynomial (Eq. 20).
  std::fill(stationarity_coeffs_.begin(), stationarity_coeffs_.end(), 0.0);
  for (int dim = 0; dim < d; ++dim) {
    for (int i = 0; i + 1 <= k; ++i) {
      const double fprime_i = (i + 1) * power_(dim, i + 1);
      for (int j = 0; j <= k; ++j) {
        const double r_j =
            (j == 0) ? (x[dim] - power_(dim, 0)) : -power_(dim, j);
        stationarity_coeffs_[static_cast<size_t>(i + j)] += fprime_i * r_j;
      }
    }
  }
  ProjectionResult best;
  best.s = 0.0;
  best.squared_distance = ObjectiveAt(x, 0.0);
  best.evaluations = 1;
  ConsiderCandidate(x, 1.0, &best);
  const std::int64_t sturm_before = root_workspace_.polynomial_evaluations();
  const int num_roots = root_workspace_.RealRootsInInterval(
      stationarity_coeffs_.data(),
      static_cast<int>(stationarity_coeffs_.size()), 0.0, 1.0, options_.tol,
      roots_, PolynomialRootWorkspace::kMaxDegree);
  if (num_roots >= 0) {
    // The chain evaluations are evaluations of the stationarity polynomial
    // g(s): account for them like kNewton's stationarity probes so the
    // methods' ProjectionResult::evaluations are comparable.
    const std::int64_t sturm =
        root_workspace_.polynomial_evaluations() - sturm_before;
    stationarity_evals_ += sturm;
    best.evaluations += static_cast<int>(sturm);
    for (int i = 0; i < num_roots; ++i) {
      ConsiderCandidate(x, roots_[i], &best);
    }
    return best;
  }
  // Degree beyond the fixed workspace capacity (k > 10): allocating
  // fallback, identical roots.
  const Polynomial stationarity{std::vector<double>(stationarity_coeffs_)};
  for (double root :
       stationarity.RealRootsInInterval(0.0, 1.0, options_.tol)) {
    ConsiderCandidate(x, root, &best);
  }
  return best;
}

ProjectionResult ProjectionWorkspace::Project(const double* x) {
  assert(bound());
  switch (options_.method) {
    case ProjectionMethod::kGoldenSection:
      return ProjectViaGrid(x, /*refine=*/true);
    case ProjectionMethod::kGridOnly:
      return ProjectViaGrid(x, /*refine=*/false);
    case ProjectionMethod::kQuinticRoots:
      return ProjectViaPolynomialRoots(x);
    case ProjectionMethod::kNewton:
      return ProjectViaNewton(x);
  }
  return ProjectViaGrid(x, /*refine=*/true);
}

void ProjectionWorkspace::EnsureGridCurveValues() {
  if (grid_f_ready_) return;
  const int g = std::max(options_.grid_points, 2);
  const int d = curve_->dimension();
  // eval_.Evaluate runs the exact per-coordinate operation sequence the
  // per-point SquaredDistance paths run inline (including the exact end
  // control points at s = 0 / s = 1), so distances computed from these
  // shared values are bit-identical to the per-point path.
  for (int i = 0; i <= g; ++i) {
    eval_.Evaluate(static_cast<double>(i) / g,
                   grid_f_.data() + static_cast<size_t>(i) * d);
  }
  grid_f_ready_ = true;
}

void ProjectionWorkspace::ProjectPackedBlock(const RowBlock& block,
                                             const double* rows,
                                             int row_stride, double* s_out,
                                             double* squared_out) {
  assert(bound());
  const int count = block.rows();
  if (count == 0) return;
  assert(block.dim() == curve_->dimension());
  assert(options_.method != ProjectionMethod::kQuinticRoots);
  const int g = std::max(options_.grid_points, 2);
  const int d = curve_->dimension();
  EnsureGridCurveValues();

  // Grid stage, one kernel sweep over the whole block per grid point: the
  // interior points use the fused reference ordering (the per-point hot
  // path's), the endpoints the sequential ordering (the per-point endpoint
  // branch's) — see SimdOps. Each row's g+1 distances land in a column of
  // grid_dist_block_ and are accounted exactly like g+1 ObjectiveAt calls.
  const curve::SimdOps& simd = curve::ActiveSimd();
  for (int i = 0; i <= g; ++i) {
    const double* f = grid_f_.data() + static_cast<size_t>(i) * d;
    double* dist =
        grid_dist_block_.data() + static_cast<size_t>(i) * RowBlock::kLaneStride;
    if (i == 0 || i == g) {
      simd.tile_squared_distances_seq(block.tile(), RowBlock::kLaneStride, d,
                                      count, f, dist);
    } else {
      simd.tile_squared_distances_fused(block.tile(), RowBlock::kLaneStride, d,
                                        count, f, dist);
    }
  }
  objective_evals_ += static_cast<std::int64_t>(g + 1) * count;

  // Blocks too small to fill vector lanes pay the lock-step driver's
  // per-round bookkeeping for nothing — single-row serving queries land
  // here — as does the scalar backend at any size.
  constexpr int kGoldenLockStepMinRows = 16;
  if (options_.method == ProjectionMethod::kGoldenSection &&
      simd.kind != curve::SimdBackendKind::kScalar &&
      count >= kGoldenLockStepMinRows) {
    // Grid scan per row first (refinement deferred), then every bracket of
    // every row refines in lock step through the batched per-lane-s kernel
    // — the refinement evaluations vectorise across tasks instead of
    // running one scalar search per row. The per-row driver (below) and
    // this one produce bit-identical results and counters, so the routing
    // is purely a speed choice.
    for (int i = 0; i < count; ++i) {
      const double* x = rows + static_cast<size_t>(i) * row_stride;
      block_results_[static_cast<size_t>(i)] = FinishGridFromDists(
          x, grid_dist_block_.data() + i, RowBlock::kLaneStride,
          /*refine=*/false);
    }
    RefineGoldenBlock(rows, row_stride, count, block_results_.data());
    for (int i = 0; i < count; ++i) {
      s_out[i] = block_results_[static_cast<size_t>(i)].s;
      if (squared_out != nullptr) {
        squared_out[i] = block_results_[static_cast<size_t>(i)].squared_distance;
      }
    }
    return;
  }

  // Newton refinement (divergent solver state), the refinement-free grid
  // scan and the scalar backend's Golden Section stay per row, fed by each
  // row's column of kernel-computed grid distances.
  for (int i = 0; i < count; ++i) {
    const double* x = rows + static_cast<size_t>(i) * row_stride;
    const double* gd = grid_dist_block_.data() + i;
    ProjectionResult result;
    switch (options_.method) {
      case ProjectionMethod::kGoldenSection:
        result = FinishGridFromDists(x, gd, RowBlock::kLaneStride,
                                     /*refine=*/true);
        break;
      case ProjectionMethod::kGridOnly:
        result = FinishGridFromDists(x, gd, RowBlock::kLaneStride,
                                     /*refine=*/false);
        break;
      case ProjectionMethod::kNewton:
        result = FinishNewtonFromDists(x, gd, RowBlock::kLaneStride);
        break;
      case ProjectionMethod::kQuinticRoots:
        break;  // unreachable: asserted above
    }
    s_out[i] = result.s;
    if (squared_out != nullptr) squared_out[i] = result.squared_distance;
  }
}

void ProjectionWorkspace::RefineGoldenBlock(const double* rows, int row_stride,
                                            int count,
                                            ProjectionResult* results) {
  const int g = std::max(options_.grid_points, 2);
  const int d = curve_->dimension();
  const double tol = options_.tol;
  constexpr int kMaxIterations = 200;  // GoldenSectionMinimizeWith's default
  const double kInvPhi = (std::sqrt(5.0) - 1.0) / 2.0;   // 1/phi
  const double kInvPhi2 = (3.0 - std::sqrt(5.0)) / 2.0;  // 1/phi^2

  // Bracket detection in the per-row path's order (rows ascending, grid
  // index ascending), so each row's refined candidates apply with exactly
  // FinishGridFromDists' tie-break sequence.
  golden_tasks_.clear();
  for (int r = 0; r < count; ++r) {
    const double* gd = grid_dist_block_.data() + r;
    for (int i = 0; i <= g; ++i) {
      const bool left_ok =
          i == 0 || gd[static_cast<size_t>(i) * RowBlock::kLaneStride] <=
                        gd[static_cast<size_t>(i - 1) * RowBlock::kLaneStride];
      const bool right_ok =
          i == g || gd[static_cast<size_t>(i) * RowBlock::kLaneStride] <=
                        gd[static_cast<size_t>(i + 1) * RowBlock::kLaneStride];
      if (!left_ok || !right_ok) continue;
      GoldenTask task;
      task.row = r;
      task.x = rows + static_cast<size_t>(r) * row_stride;
      task.a = std::max(0.0, static_cast<double>(i - 1) / g);
      task.b = std::min(1.0, static_cast<double>(i + 1) / g);
      golden_tasks_.push_back(task);
    }
  }

  // Waves of up to kMaxRows tasks share the task-major transpose buffer;
  // within a wave, every round advances each still-active search by one
  // evaluation and batches all of the round's probes into one kernel call.
  // Lanes of already-finished tasks keep their last probe: the kernel
  // still computes them (harmlessly — iteration counts across a wave
  // differ by at most a few rounds), the results are simply not consumed
  // and not counted.
  for (size_t wave = 0; wave < golden_tasks_.size();
       wave += RowBlock::kMaxRows) {
    const int t_count = static_cast<int>(
        std::min<size_t>(RowBlock::kMaxRows, golden_tasks_.size() - wave));
    GoldenTask* tasks = golden_tasks_.data() + wave;
    for (int t = 0; t < t_count; ++t) {
      const double* x = tasks[t].x;
      for (int j = 0; j < d; ++j) {
        golden_xt_[static_cast<size_t>(j) * RowBlock::kMaxRows + t] = x[j];
      }
    }
    int active = 0;
    for (int t = 0; t < t_count; ++t) {
      GoldenTask& task = tasks[t];
      task.h = task.b - task.a;
      task.evaluations = 0;
      task.iterations = 0;
      task.active = true;
      ++active;
      if (task.h <= tol) {
        task.stage = GoldenStage::kNarrow;
      } else {
        task.c = task.a + kInvPhi2 * task.h;
        task.d = task.a + kInvPhi * task.h;
        task.stage = GoldenStage::kInitC;
      }
      golden_s_[static_cast<size_t>(t)] = 0.5;  // benign until first probe
    }
    while (active > 0) {
      // Emit: pick each active task's next probe — applying the loop's
      // branch update exactly as GoldenSectionMinimizeWith does before its
      // evaluation — or finalise tasks whose loop has terminated.
      int emitted = 0;
      for (int t = 0; t < t_count; ++t) {
        GoldenTask& task = tasks[t];
        task.pending = false;
        if (!task.active) continue;
        switch (task.stage) {
          case GoldenStage::kNarrow:
            task.probe = 0.5 * (task.a + task.b);
            break;
          case GoldenStage::kInitC:
            task.probe = task.c;
            break;
          case GoldenStage::kInitD:
            task.probe = task.d;
            break;
          case GoldenStage::kDecide:
            if (task.iterations < kMaxIterations && task.h > tol) {
              if (task.fc < task.fd) {
                task.b = task.d;
                task.d = task.c;
                task.fd = task.fc;
                task.h = task.b - task.a;
                task.c = task.a + kInvPhi2 * task.h;
                task.probe = task.c;
                task.stage = GoldenStage::kEvalC;
              } else {
                task.a = task.c;
                task.c = task.d;
                task.fc = task.fd;
                task.h = task.b - task.a;
                task.d = task.a + kInvPhi * task.h;
                task.probe = task.d;
                task.stage = GoldenStage::kEvalD;
              }
            } else {
              task.result_x = task.fc < task.fd ? task.c : task.d;
              task.result_fx = task.fc < task.fd ? task.fc : task.fd;
              task.active = false;
              --active;
              continue;
            }
            break;
          case GoldenStage::kEvalC:
          case GoldenStage::kEvalD:
            break;  // unreachable: consume always advances to kDecide
        }
        golden_s_[static_cast<size_t>(t)] = task.probe;
        task.pending = true;
        ++emitted;
      }
      if (emitted == 0) break;  // every remaining task finalised this round

      eval_.SquaredDistancesMulti(golden_xt_.data(), RowBlock::kMaxRows,
                                  t_count, golden_s_.data(),
                                  golden_dist_.data());
      objective_evals_ += emitted;

      // Consume: write each pending probe's value into its search state.
      for (int t = 0; t < t_count; ++t) {
        GoldenTask& task = tasks[t];
        if (!task.pending) continue;
        double value = golden_dist_[static_cast<size_t>(t)];
        if (task.probe == 0.0 || task.probe == 1.0) {
          // The per-point path takes the exact-endpoint branch here; the
          // interior kernel value for this lane is discarded. (Brackets are
          // at least half a grid cell wide, so this effectively never
          // happens — it is kept for exact equivalence.)
          value = eval_.SquaredDistance(task.x, task.probe);
        }
        ++task.evaluations;
        switch (task.stage) {
          case GoldenStage::kNarrow:
            task.result_x = task.probe;
            task.result_fx = value;
            task.active = false;
            --active;
            break;
          case GoldenStage::kInitC:
            task.fc = value;
            task.stage = GoldenStage::kInitD;
            break;
          case GoldenStage::kInitD:
            task.fd = value;
            task.stage = GoldenStage::kDecide;
            break;
          case GoldenStage::kEvalC:
            task.fc = value;
            ++task.iterations;
            task.stage = GoldenStage::kDecide;
            break;
          case GoldenStage::kEvalD:
            task.fd = value;
            ++task.iterations;
            task.stage = GoldenStage::kDecide;
            break;
          case GoldenStage::kDecide:
            break;  // unreachable: kDecide never emits a probe
        }
      }
    }
  }

  // Apply every task's refined candidate in collection order: per row this
  // is ascending bracket order, the per-row path's exact sequence.
  for (const GoldenTask& task : golden_tasks_) {
    ProjectionResult& best = results[task.row];
    best.evaluations += task.evaluations;
    ConsiderPrecomputed(task.result_x, task.result_fx, &best);
  }
}

void ProjectionWorkspace::ProjectBlock(const double* rows, int count,
                                       int row_stride, double* s_out,
                                       double* squared_out) {
  assert(bound());
  // The tile kernels vectorise across rows, so below a vector's worth of
  // rows the block path is pure overhead (packing plus one indirect kernel
  // call per grid point, each processing a near-empty tile) — single-row
  // serving queries are the common case here. The per-row path is
  // bit-identical (see ProjectPackedBlock), so this is purely a speed
  // choice. Exact root solving has no grid stage to batch at any size.
  constexpr int kBlockMinRows = 8;
  if (options_.method == ProjectionMethod::kQuinticRoots ||
      count < kBlockMinRows) {
    for (int i = 0; i < count; ++i) {
      const ProjectionResult result =
          Project(rows + static_cast<size_t>(i) * row_stride);
      s_out[i] = result.s;
      if (squared_out != nullptr) squared_out[i] = result.squared_distance;
    }
    return;
  }
  for (int begin = 0; begin < count; begin += RowBlock::kMaxRows) {
    const int chunk = std::min(RowBlock::kMaxRows, count - begin);
    const double* chunk_rows = rows + static_cast<size_t>(begin) * row_stride;
    block_.Pack(chunk_rows, chunk, row_stride);
    ProjectPackedBlock(block_, chunk_rows, row_stride, s_out + begin,
                       squared_out == nullptr ? nullptr : squared_out + begin);
  }
}

ProjectionResult ProjectOntoCurve(const BezierCurve& curve, const Vector& x,
                                  const ProjectionOptions& options) {
  assert(x.size() == curve.dimension());
  ProjectionWorkspace workspace;
  workspace.Bind(curve, options);
  return workspace.Project(x.data().data());
}

Vector ProjectRows(const BezierCurve& curve, const Matrix& data,
                   const ProjectionOptions& options,
                   double* total_squared_distance) {
  return ProjectRowsBatch(curve, data, options, /*pool=*/nullptr,
                          total_squared_distance);
}

}  // namespace rpc::opt
