#ifndef RPC_OPT_ROW_BLOCK_H_
#define RPC_OPT_ROW_BLOCK_H_

#include <cstddef>
#include <vector>

namespace rpc::opt {

/// A structure-of-arrays tile of up to kMaxRows data rows: coordinate j of
/// every packed row lives in the contiguous lane
/// tile()[j * kLaneStride .. j * kLaneStride + rows()). The projection grid
/// kernels (curve::SimdOps) sweep one lane per coordinate, so their inner
/// loops vectorise across rows — one row per SIMD lane — instead of across
/// the d dimensions of a single row.
///
/// The block capacity matches the serving tier's deadline-check stride: a
/// shard scores one block, checks the deadline, scores the next, keeping
/// cancellation granularity unchanged by the batch layout.
class RowBlock {
 public:
  static constexpr int kMaxRows = 64;
  /// Lane pitch in doubles; lanes are padded to the full capacity so the
  /// tile never reallocates between blocks of different row counts.
  static constexpr int kLaneStride = kMaxRows;

  RowBlock() = default;

  /// Sizes the tile for `dim`-dimensional rows. Allocation happens here
  /// only; Pack is allocation-free afterwards (the batch hot-loop contract).
  void Bind(int dim);

  /// Transposes `count` row-major rows (row i at rows + i * row_stride,
  /// coordinates contiguous) into the column-major tile. count must be in
  /// [0, kMaxRows].
  void Pack(const double* rows, int count, int row_stride);

  int dim() const { return dim_; }
  int rows() const { return rows_; }
  const double* tile() const { return tile_.data(); }
  const double* Lane(int j) const {
    return tile_.data() + static_cast<std::size_t>(j) * kLaneStride;
  }

 private:
  int dim_ = 0;
  int rows_ = 0;
  std::vector<double> tile_;  // dim_ lanes of kLaneStride doubles
};

}  // namespace rpc::opt

#endif  // RPC_OPT_ROW_BLOCK_H_
