#ifndef RPC_OPT_POLYNOMIAL_H_
#define RPC_OPT_POLYNOMIAL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rpc::opt {

/// Caller-owned scratch for Sturm-sequence real-root isolation with zero
/// heap allocation per call. The whole degree <= kMaxDegree chain (the
/// polynomial, its derivative, and every remainder) lives in fixed-capacity
/// member arrays, so a ProjectionWorkspace can solve the per-point quintic
/// stationarity condition (Eq. 20) without touching the allocator — the
/// last allocating projection method after PR 1.
///
/// The arithmetic is a faithful replica of the allocating
/// Polynomial::RealRootsInInterval path (same scaling, trimming, Sturm
/// recursion, bisection + Newton refinement, deduplication), so the roots
/// are bit-identical; tests assert this over a battery of quintics.
///
/// One workspace per thread: calls mutate the scratch.
class PolynomialRootWorkspace {
 public:
  /// Highest supported degree: the stationarity polynomial of a degree-k
  /// Bezier has degree 2k - 1 and RpcLearner caps k at 10.
  static constexpr int kMaxDegree = 19;
  static constexpr int kMaxCoeffs = kMaxDegree + 1;

  PolynomialRootWorkspace() = default;

  /// All real roots of p(x) = coeffs[0] + ... + coeffs[n-1] x^(n-1) in
  /// [lo, hi], each reported once, sorted ascending, written to `roots`
  /// (capacity >= kMaxDegree suffices for any supported input). Returns the
  /// root count, or -1 when the (trimmed) degree exceeds kMaxDegree — the
  /// caller should then use the allocating Polynomial path.
  int RealRootsInInterval(const double* coeffs, int num_coeffs, double lo,
                          double hi, double tol, double* roots, int capacity);

  /// Number of Horner evaluations of chain polynomials performed since the
  /// last Reset — the Sturm sign-change counts plus the bisection/Newton
  /// refinement. ProjectionResult::evaluations for kQuinticRoots includes
  /// these so method cost comparisons are honest.
  std::int64_t polynomial_evaluations() const { return evals_; }
  void ResetEvaluationCount() { evals_ = 0; }

 private:
  static constexpr int kMaxChain = kMaxDegree + 2;

  double EvalCounted(const double* c, int n, double x);
  int SignChangesAt(double x);
  double RefineRoot(double lo, double hi, double tol);
  void IsolateRoots(double lo, double hi, int count_lo, int count_hi,
                    double tol, double* roots, int capacity, int* count);
  void BuildSturmChain();

  // Sturm chain: chain_[0] is the (scaled, trimmed) polynomial, chain_[1]
  // its derivative, then the negated remainders.
  double chain_[kMaxChain][kMaxCoeffs];
  int chain_len_[kMaxChain];
  int chain_size_ = 0;
  double dp_[kMaxCoeffs];  // derivative of chain_[0], for Newton refinement
  int dp_len_ = 0;

  std::int64_t evals_ = 0;
};

/// A real univariate polynomial with coefficients in ascending powers:
/// p(x) = c[0] + c[1] x + ... + c[n] x^n.
///
/// The real-root machinery (Sturm sequences + bisection + Newton polish)
/// stands in for the Jenkins-Traub solver [32] the paper cites as an
/// alternative way of solving the quintic stationarity condition Eq. (20).
class Polynomial {
 public:
  Polynomial() : coeffs_{0.0} {}
  explicit Polynomial(std::vector<double> coeffs);

  /// Degree after trimming numerically zero leading coefficients; the zero
  /// polynomial has degree 0.
  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }
  const std::vector<double>& coefficients() const { return coeffs_; }
  bool IsZero() const;

  /// Horner evaluation.
  double Evaluate(double x) const;

  Polynomial Derivative() const;

  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator-(const Polynomial& other) const;
  Polynomial operator*(const Polynomial& other) const;
  Polynomial operator*(double scalar) const;

  /// Polynomial remainder of *this divided by `divisor` (degree of divisor
  /// must be >= 0 and divisor non-zero).
  Polynomial Remainder(const Polynomial& divisor) const;

  std::string ToString() const;

  /// All real roots in [lo, hi], each reported once (multiple roots are
  /// collapsed), sorted ascending. Uses a Sturm sequence on the square-free
  /// part to isolate roots, then bisection refined by Newton. Allocates
  /// per call; hot paths should use the PolynomialRootWorkspace overload
  /// (identical results for degree <= PolynomialRootWorkspace::kMaxDegree).
  std::vector<double> RealRootsInInterval(double lo, double hi,
                                          double tol = 1e-12) const;

  /// Allocation-free variant: isolates the roots inside `workspace` and
  /// writes them to `roots`, returning the count. Falls back to the
  /// allocating path above (copying into `roots`, truncating at `capacity`)
  /// when the degree exceeds the workspace's fixed capacity.
  int RealRootsInInterval(double lo, double hi, double tol,
                          PolynomialRootWorkspace* workspace, double* roots,
                          int capacity) const;

 private:
  void Trim();

  std::vector<double> coeffs_;
};

}  // namespace rpc::opt

#endif  // RPC_OPT_POLYNOMIAL_H_
