#ifndef RPC_OPT_POLYNOMIAL_H_
#define RPC_OPT_POLYNOMIAL_H_

#include <string>
#include <vector>

namespace rpc::opt {

/// A real univariate polynomial with coefficients in ascending powers:
/// p(x) = c[0] + c[1] x + ... + c[n] x^n.
///
/// The real-root machinery (Sturm sequences + bisection + Newton polish)
/// stands in for the Jenkins-Traub solver [32] the paper cites as an
/// alternative way of solving the quintic stationarity condition Eq. (20).
class Polynomial {
 public:
  Polynomial() : coeffs_{0.0} {}
  explicit Polynomial(std::vector<double> coeffs);

  /// Degree after trimming numerically zero leading coefficients; the zero
  /// polynomial has degree 0.
  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }
  const std::vector<double>& coefficients() const { return coeffs_; }
  bool IsZero() const;

  /// Horner evaluation.
  double Evaluate(double x) const;

  Polynomial Derivative() const;

  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator-(const Polynomial& other) const;
  Polynomial operator*(const Polynomial& other) const;
  Polynomial operator*(double scalar) const;

  /// Polynomial remainder of *this divided by `divisor` (degree of divisor
  /// must be >= 0 and divisor non-zero).
  Polynomial Remainder(const Polynomial& divisor) const;

  std::string ToString() const;

  /// All real roots in [lo, hi], each reported once (multiple roots are
  /// collapsed), sorted ascending. Uses a Sturm sequence on the square-free
  /// part to isolate roots, then bisection refined by Newton.
  std::vector<double> RealRootsInInterval(double lo, double hi,
                                          double tol = 1e-12) const;

 private:
  void Trim();

  std::vector<double> coeffs_;
};

}  // namespace rpc::opt

#endif  // RPC_OPT_POLYNOMIAL_H_
