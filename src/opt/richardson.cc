#include "opt/richardson.h"

#include <cassert>
#include <cmath>

namespace rpc::opt {

using linalg::Matrix;
using linalg::Vector;

Vector RichardsonPreconditioner(const Matrix& gram) {
  Vector d(gram.cols());
  for (int c = 0; c < gram.cols(); ++c) {
    d[c] = std::max(gram.Column(c).Norm(), 1e-300);
  }
  return d;
}

void RichardsonWorkspace::Bind(int dim, int degree) {
  assert(dim >= 0 && degree >= 0);
  dim_ = dim;
  degree_ = degree;
  iteration_.Assign(degree + 1, degree + 1);
  residual_.Assign(dim, degree + 1);
  precond_.data().assign(static_cast<size_t>(degree) + 1, 0.0);
  eigen_.Bind(degree + 1);
}

Status RichardsonWorkspace::Step(const Matrix& gram, const Matrix& cross,
                                 const RichardsonOptions& options,
                                 Matrix* control) {
  if (gram.rows() != gram.cols()) {
    return Status::InvalidArgument("RichardsonStep: Gram matrix not square");
  }
  if (control->cols() != gram.rows() || cross.rows() != control->rows() ||
      cross.cols() != control->cols()) {
    return Status::InvalidArgument("RichardsonStep: shape mismatch");
  }
  assert(bound() && control->rows() == dim_ && gram.rows() == degree_ + 1);
  const int k1 = degree_ + 1;

  // Column L2 norms of the Gram matrix (Section 5's diagonal
  // preconditioner), same summation order as RichardsonPreconditioner.
  if (options.use_preconditioner) {
    for (int c = 0; c < k1; ++c) {
      double sum = 0.0;
      for (int r = 0; r < k1; ++r) sum += gram(r, c) * gram(r, c);
      precond_[c] = std::max(std::sqrt(sum), 1e-300);
    }
  }

  double gamma;
  if (options.gamma.has_value()) {
    gamma = *options.gamma;
  } else {
    // Eq. (28): gamma = 2 / (lambda_min + lambda_max) of the iteration
    // matrix. With the preconditioner the error evolves through A D^{-1},
    // whose spectrum equals that of the symmetric D^{-1/2} A D^{-1/2}; the
    // step must be sized for *that* matrix or the iteration can diverge.
    if (options.use_preconditioner) {
      for (int r = 0; r < k1; ++r) {
        for (int c = 0; c < k1; ++c) {
          iteration_(r, c) = gram(r, c) / std::sqrt(precond_[r] * precond_[c]);
        }
      }
    } else {
      iteration_ = gram;
    }
    const Status eig = eigen_.Compute(iteration_);
    if (!eig.ok()) return eig;
    const double denom =
        eigen_.values()[k1 - 1] + eigen_.values()[0];  // min + max
    if (!(denom > 0.0) || !std::isfinite(denom)) {
      return Status::NumericalError(
          "RichardsonStep: non-positive eigenvalue sum");
    }
    gamma = 2.0 / denom;
  }

  // residual = P A - B, accumulated with operator*'s loop order so the
  // entries match the historical two-temporary formulation bit for bit.
  residual_.Assign(dim_, k1);
  for (int i = 0; i < dim_; ++i) {
    for (int k = 0; k < k1; ++k) {
      const double pik = (*control)(i, k);
      if (pik == 0.0) continue;
      double* residual_row = residual_.RowPtr(i);
      for (int j = 0; j < k1; ++j) residual_row[j] += pik * gram(k, j);
    }
  }
  residual_ -= cross;
  if (options.use_preconditioner) {
    for (int r = 0; r < dim_; ++r) {
      for (int c = 0; c < k1; ++c) residual_(r, c) /= precond_[c];
    }
  }
  for (int r = 0; r < dim_; ++r) {
    for (int c = 0; c < k1; ++c) {
      (*control)(r, c) -= gamma * residual_(r, c);
    }
  }
  if (!control->AllFinite()) {
    return Status::NumericalError("RichardsonStep: non-finite update");
  }
  return Status::Ok();
}

Result<Matrix> RichardsonStep(const Matrix& p, const Matrix& gram,
                              const Matrix& cross,
                              const RichardsonOptions& options) {
  if (gram.rows() != gram.cols()) {
    return Status::InvalidArgument("RichardsonStep: Gram matrix not square");
  }
  if (p.cols() != gram.rows() || cross.rows() != p.rows() ||
      cross.cols() != p.cols()) {
    return Status::InvalidArgument("RichardsonStep: shape mismatch");
  }
  RichardsonWorkspace workspace;
  workspace.Bind(p.rows(), gram.rows() - 1);
  Matrix next = p;
  const Status status = workspace.Step(gram, cross, options, &next);
  if (!status.ok()) return status;
  return next;
}

}  // namespace rpc::opt
