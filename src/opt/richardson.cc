#include "opt/richardson.h"

#include <cmath>

#include "linalg/eigen.h"

namespace rpc::opt {

using linalg::Matrix;
using linalg::Vector;

Vector RichardsonPreconditioner(const Matrix& gram) {
  Vector d(gram.cols());
  for (int c = 0; c < gram.cols(); ++c) {
    d[c] = std::max(gram.Column(c).Norm(), 1e-300);
  }
  return d;
}

Result<Matrix> RichardsonStep(const Matrix& p, const Matrix& gram,
                              const Matrix& cross,
                              const RichardsonOptions& options) {
  if (gram.rows() != gram.cols()) {
    return Status::InvalidArgument("RichardsonStep: Gram matrix not square");
  }
  if (p.cols() != gram.rows() || cross.rows() != p.rows() ||
      cross.cols() != p.cols()) {
    return Status::InvalidArgument("RichardsonStep: shape mismatch");
  }

  double gamma;
  if (options.gamma.has_value()) {
    gamma = *options.gamma;
  } else {
    // Eq. (28): gamma = 2 / (lambda_min + lambda_max) of the iteration
    // matrix. With the preconditioner the error evolves through A D^{-1},
    // whose spectrum equals that of the symmetric D^{-1/2} A D^{-1/2}; the
    // step must be sized for *that* matrix or the iteration can diverge.
    Matrix iteration_matrix = gram;
    if (options.use_preconditioner) {
      const Vector d = RichardsonPreconditioner(gram);
      for (int r = 0; r < gram.rows(); ++r) {
        for (int c = 0; c < gram.cols(); ++c) {
          iteration_matrix(r, c) =
              gram(r, c) / std::sqrt(d[r] * d[c]);
        }
      }
    }
    RPC_ASSIGN_OR_RETURN(linalg::EigenRange range,
                         linalg::SymmetricEigenRange(iteration_matrix));
    const double denom = range.min + range.max;
    if (!(denom > 0.0) || !std::isfinite(denom)) {
      return Status::NumericalError(
          "RichardsonStep: non-positive eigenvalue sum");
    }
    gamma = 2.0 / denom;
  }

  Matrix residual = p * gram - cross;  // d x 4
  if (options.use_preconditioner) {
    const Vector d = RichardsonPreconditioner(gram);
    for (int r = 0; r < residual.rows(); ++r) {
      for (int c = 0; c < residual.cols(); ++c) {
        residual(r, c) /= d[c];
      }
    }
  }
  Matrix next = p - gamma * residual;
  if (!next.AllFinite()) {
    return Status::NumericalError("RichardsonStep: non-finite update");
  }
  return next;
}

}  // namespace rpc::opt
