#ifndef RPC_OPT_INCREMENTAL_PROJECTOR_H_
#define RPC_OPT_INCREMENTAL_PROJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "curve/bezier.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "opt/curve_projection.h"

namespace rpc::opt {

struct IncrementalProjectorOptions {
  /// Per-point solver configuration; shared by the warm and the full path.
  ProjectionOptions projection;
  /// Safety resync cadence: every `resync_period`-th Project() call (and
  /// always the first) runs the full global search for every row, so a row
  /// whose warm-started local refinement silently tracked the wrong local
  /// minimum is repaired within a bounded number of iterations. Values
  /// <= 1 resync on every call (degenerating to the full path).
  int resync_period = 8;
  /// Half-width of the warm-start bracket around each row's previous s*,
  /// in units of one global grid cell (1 / projection.grid_points). The
  /// default mirrors the cell size the full search refines, so a minimiser
  /// drifting less than one cell per iteration stays inside the bracket.
  double bracket_cells = 1.0;
};

/// Stateful re-projection engine for Step 4 of Algorithm 1: owns per-row
/// state (last s*, last squared distance) across outer iterations, so that
/// near convergence — when the curve barely moves and each row's optimal s*
/// shifts only slightly (Eq. 19-20; the locality Hastie-Stuetzle-style
/// alternating schemes exploit) — each row is re-projected by a cheap local
/// refinement on a shrunken bracket instead of the full grid + per-bracket
/// search.
///
/// A row falls back to the full global search whenever the local result is
/// suspect:
///   * the local bracket's argmin landed on a bracket edge that is not a
///     domain boundary (the minimiser may have left the bracket), or
///   * the refined squared distance exceeds the certified bound
///     (sqrt(previous distance) + delta)^2, where delta bounds the curve's
///     movement between iterations via the control-point displacement
///     (convex-hull property: max_s |f_t(s) - f_{t-1}(s)| <=
///     max_r |p_r^t - p_r^{t-1}|), or
///   * the call is a periodic safety resync (`resync_period`).
///
/// Determinism: per-row results depend only on that row's own state, the
/// reduction of J runs in row order, and the fallback counter is summed per
/// worker slot — so scores and J are bit-identical for every thread count,
/// matching the ProjectRowsBatch contract. Full-path calls produce exactly
/// the ProjectRowsBatch results.
class IncrementalProjector {
 public:
  IncrementalProjector() = default;
  IncrementalProjector(const IncrementalProjector&) = delete;
  IncrementalProjector& operator=(const IncrementalProjector&) = delete;

  /// Binds to a data matrix (must outlive the projector) and resets all
  /// per-row state; the next Project() call is a full projection. `pool`
  /// may be null (serial).
  void Bind(const linalg::Matrix& data,
            const IncrementalProjectorOptions& options, ThreadPool* pool);
  bool bound() const { return data_ != nullptr; }

  /// Projects every bound row onto `curve`, warm-starting from the previous
  /// call's per-row results (full global search on the first call, on every
  /// `resync_period`-th call, and per-row on fallback). Returns the scores;
  /// accumulates J (Eq. 19) into `total_squared_distance` when non-null.
  linalg::Vector Project(const curve::BezierCurve& curve,
                         double* total_squared_distance);

  /// Caller-buffer variant (Project wraps it): writes the scores into
  /// *scores, resized in place. Once its capacity has settled — after the
  /// first call — the whole projection pass performs zero heap allocations,
  /// the contract the learner's steady-state outer loop is built on.
  void ProjectInto(const curve::BezierCurve& curve, linalg::Vector* scores,
                   double* total_squared_distance);

  /// Diagnostics for the most recent Project() call.
  bool last_was_full() const { return last_was_full_; }
  std::int64_t last_fallback_count() const { return last_fallbacks_; }
  int calls() const { return calls_; }

 private:
  void ProjectRange(ProjectionWorkspace* workspace, bool full, double delta,
                    std::int64_t begin, std::int64_t end, double* scores,
                    double* squared, std::int64_t* fallbacks);

  const linalg::Matrix* data_ = nullptr;
  IncrementalProjectorOptions options_;
  ThreadPool* pool_ = nullptr;

  // One workspace per worker; workspaces are rebound to the (mutated) curve
  // at the start of every Project call.
  std::vector<ProjectionWorkspace> workspaces_;

  std::vector<double> s_;       // per-row last s*
  std::vector<double> dist_;    // per-row last squared distance
  std::vector<double> squared_; // per-call row-ordered J reduction buffer
  std::vector<std::int64_t> fallback_slots_;  // per-worker fallback counts
  linalg::Matrix prev_control_; // control points seen by the previous call

  int calls_ = 0;
  bool last_was_full_ = false;
  std::int64_t last_fallbacks_ = 0;
};

}  // namespace rpc::opt

#endif  // RPC_OPT_INCREMENTAL_PROJECTOR_H_
