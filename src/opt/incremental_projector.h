#ifndef RPC_OPT_INCREMENTAL_PROJECTOR_H_
#define RPC_OPT_INCREMENTAL_PROJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "curve/bernstein.h"
#include "curve/bezier.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "opt/curve_projection.h"

namespace rpc::opt {

struct IncrementalProjectorOptions {
  /// Per-point solver configuration; shared by the warm and the full path.
  ProjectionOptions projection;
  /// Safety resync cadence: every `resync_period`-th Project() call (and
  /// always the first) runs the full global search for every row, so a row
  /// whose warm-started local refinement silently tracked the wrong local
  /// minimum is repaired within a bounded number of iterations. Values
  /// <= 1 resync on every call (degenerating to the full path).
  int resync_period = 8;
  /// Half-width of the warm-start bracket around each row's previous s*,
  /// in units of one global grid cell (1 / projection.grid_points). The
  /// default mirrors the cell size the full search refines, so a minimiser
  /// drifting less than one cell per iteration stays inside the bracket.
  double bracket_cells = 1.0;
  /// Adaptive warm-start brackets: shrink each row's bracket from its
  /// observed per-iteration s* drift instead of always probing the full
  /// `bracket_cells` half-width, and skip the bracket probe entirely
  /// (ProjectionWorkspace::ProjectSeeded — no interior grid, straight to
  /// the safeguarded Newton refinement guarded by the certified distance
  /// bound) for rows whose drift has fallen below `drift_skip_tol`. Near
  /// convergence most rows barely move, so this is the main lever on the
  /// streaming tier's warm-refresh cost. Off by default: the trajectory it
  /// produces is equivalent (same fallback safety net, same final full
  /// verification in the learner) but not bit-identical to the fixed
  /// bracket, so callers opt in where refresh latency matters.
  bool adaptive_brackets = false;
  /// Adaptive bracket half-width = clamp(bracket_drift_factor * drift,
  /// min_bracket_cells / grid, bracket_cells / grid).
  double bracket_drift_factor = 4.0;
  /// Floor of the adaptive bracket, in grid cells.
  double min_bracket_cells = 0.25;
  /// Rows whose last observed s* drift is at or below this skip the
  /// bracket probe (see adaptive_brackets).
  double drift_skip_tol = 1e-8;
};

/// Stateful re-projection engine for Step 4 of Algorithm 1: owns per-row
/// state (last s*, last squared distance, last s* drift) across outer
/// iterations, so that near convergence — when the curve barely moves and
/// each row's optimal s* shifts only slightly (Eq. 19-20; the locality
/// Hastie-Stuetzle-style alternating schemes exploit) — each row is
/// re-projected by a cheap local refinement on a shrunken bracket instead
/// of the full grid + per-bracket search.
///
/// A row falls back to the full global search whenever the local result is
/// suspect:
///   * the local bracket's argmin landed on a bracket edge that is not a
///     domain boundary (the minimiser may have left the bracket), or
///   * the refined squared distance exceeds the certified bound
///     (sqrt(previous distance) + delta)^2, where delta bounds the curve's
///     movement between iterations via the control-point displacement
///     (convex-hull property: max_s |f_t(s) - f_{t-1}(s)| <=
///     max_r |p_r^t - p_r^{t-1}|), or
///   * the call is a periodic safety resync (`resync_period`).
///
/// Warm-start state can be exported after a fit and re-imported before the
/// next one (ImportState/ExportState): the streaming tier seeds a model
/// refresh with the live model's per-row s* so the refreshed fit starts
/// from warm local refinements instead of a cold full search. An imported
/// row's previous distance is unknown (sentinel infinity), so its first
/// warm projection is guarded by the bracket-edge check alone; the
/// certified bound re-arms from the second iteration on, and the learner's
/// final full verification pass measures the result exactly either way.
///
/// Fused accumulation (SetFusedAccumulators): the Step 5 normal equations
/// need every (s_i, x_i) pair the projection just produced, and the
/// separate accumulation sweep re-reads the whole dataset one iteration
/// later. When fused accumulators are attached, ProjectInto streams each
/// projected row straight into its fixed-size segment's
/// curve::BernsteinDesignAccumulator — one worker owns one segment and
/// sweeps its rows in order, so merging the segments in segment order
/// afterwards (core::FitWorkspace::ReduceFusedSegments) reproduces the
/// separate sweep bit for bit — saving one O(n) pass per outer iteration.
///
/// Determinism: per-row results depend only on that row's own state, the
/// reduction of J runs in row order, and the fallback counter is summed per
/// worker slot — so scores and J are bit-identical for every thread count,
/// matching the ProjectRowsBatch contract. Full-path calls produce exactly
/// the ProjectRowsBatch results.
class IncrementalProjector {
 public:
  IncrementalProjector() = default;
  IncrementalProjector(const IncrementalProjector&) = delete;
  IncrementalProjector& operator=(const IncrementalProjector&) = delete;

  /// Binds to a data matrix (must outlive the projector) and resets all
  /// per-row state; the next Project() call is a full projection. `pool`
  /// may be null (serial).
  void Bind(const linalg::Matrix& data,
            const IncrementalProjectorOptions& options, ThreadPool* pool);
  bool bound() const { return data_ != nullptr; }

  /// Seeds the per-row warm-start state from a previous model: `s` holds
  /// one projection index per bound row and `control_points` the curve
  /// those indices were projected against (the certified-bound reference
  /// for the first warm call). The next Project() call then runs warm
  /// local refinements instead of the cold full search — the streaming
  /// tier's refresh path. Must be called after Bind (Bind resets it).
  void ImportState(const linalg::Vector& s,
                   const linalg::Matrix& control_points);

  /// Copies the per-row state of the most recent Project() call out:
  /// projection indices into *s and squared distances into *dist (either
  /// may be null). This is the state a later ImportState (on a projector
  /// bound to the same rows) warm-starts from.
  void ExportState(linalg::Vector* s, linalg::Vector* dist) const;

  /// Attaches per-segment Step 5 accumulators: every subsequent
  /// ProjectInto also streams (s_i, row_i) into the accumulator of row i's
  /// fixed `segment_rows`-row segment, fusing the normal-equation sweep
  /// into the projection workers. `segments` must hold at least
  /// ceil(n / segment_rows) accumulators, already Bind()-ed to the curve
  /// degree/dimension; the pass Reset()s each before filling it. Pass
  /// nullptr to detach.
  void SetFusedAccumulators(
      std::vector<curve::BernsteinDesignAccumulator>* segments,
      int segment_rows);

  /// Projects every bound row onto `curve`, warm-starting from the previous
  /// call's per-row results (full global search on the first call, on every
  /// `resync_period`-th call, and per-row on fallback). Returns the scores;
  /// accumulates J (Eq. 19) into `total_squared_distance` when non-null.
  linalg::Vector Project(const curve::BezierCurve& curve,
                         double* total_squared_distance);

  /// Caller-buffer variant (Project wraps it): writes the scores into
  /// *scores, resized in place. Once its capacity has settled — after the
  /// first call — the whole projection pass performs zero heap allocations,
  /// the contract the learner's steady-state outer loop is built on.
  void ProjectInto(const curve::BezierCurve& curve, linalg::Vector* scores,
                   double* total_squared_distance);

  /// Diagnostics for the most recent Project() call.
  bool last_was_full() const { return last_was_full_; }
  std::int64_t last_fallback_count() const { return last_fallbacks_; }
  /// Rows the adaptive fast path served without a bracket probe.
  std::int64_t last_probe_skip_count() const { return last_probe_skips_; }
  int calls() const { return calls_; }

 private:
  struct RangeCounters {
    std::int64_t fallbacks = 0;
    std::int64_t probe_skips = 0;
  };

  void ProjectRange(ProjectionWorkspace* workspace, bool full, double delta,
                    std::int64_t begin, std::int64_t end, double* scores,
                    double* squared, RangeCounters* counters,
                    curve::BernsteinDesignAccumulator* accumulator);

  const linalg::Matrix* data_ = nullptr;
  IncrementalProjectorOptions options_;
  ThreadPool* pool_ = nullptr;

  // One workspace per worker; workspaces are rebound to the (mutated) curve
  // at the start of every Project call.
  std::vector<ProjectionWorkspace> workspaces_;

  std::vector<double> s_;       // per-row last s*
  std::vector<double> dist_;    // per-row last squared distance
  std::vector<double> drift_;   // per-row last |s* - previous s*|
  std::vector<double> squared_; // per-call row-ordered J reduction buffer
  std::vector<RangeCounters> counter_slots_;  // per-worker diagnostics

  // Fused Step 5 accumulation (null = detached).
  std::vector<curve::BernsteinDesignAccumulator>* fused_segments_ = nullptr;
  int fused_segment_rows_ = 0;

  linalg::Matrix prev_control_; // control points seen by the previous call

  int calls_ = 0;
  bool last_was_full_ = false;
  std::int64_t last_fallbacks_ = 0;
  std::int64_t last_probe_skips_ = 0;
};

}  // namespace rpc::opt

#endif  // RPC_OPT_INCREMENTAL_PROJECTOR_H_
