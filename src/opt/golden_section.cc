#include "opt/golden_section.h"

#include <cassert>
#include <cmath>

namespace rpc::opt {

ScalarMinResult GoldenSectionMinimize(const std::function<double(double)>& f,
                                      double lo, double hi, double tol,
                                      int max_iterations) {
  assert(lo <= hi);
  static const double kInvPhi = (std::sqrt(5.0) - 1.0) / 2.0;   // 1/phi
  static const double kInvPhi2 = (3.0 - std::sqrt(5.0)) / 2.0;  // 1/phi^2

  ScalarMinResult result;
  double a = lo;
  double b = hi;
  double h = b - a;
  if (h <= tol) {
    result.x = 0.5 * (a + b);
    result.fx = f(result.x);
    result.evaluations = 1;
    return result;
  }

  double c = a + kInvPhi2 * h;
  double d = a + kInvPhi * h;
  double fc = f(c);
  double fd = f(d);
  int evals = 2;

  for (int iter = 0; iter < max_iterations && h > tol; ++iter) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      h = b - a;
      c = a + kInvPhi2 * h;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      h = b - a;
      d = a + kInvPhi * h;
      fd = f(d);
    }
    ++evals;
  }

  result.x = fc < fd ? c : d;
  result.fx = fc < fd ? fc : fd;
  result.evaluations = evals;
  return result;
}

}  // namespace rpc::opt
