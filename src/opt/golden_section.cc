#include "opt/golden_section.h"

namespace rpc::opt {

ScalarMinResult GoldenSectionMinimize(const std::function<double(double)>& f,
                                      double lo, double hi, double tol,
                                      int max_iterations) {
  return GoldenSectionMinimizeWith(f, lo, hi, tol, max_iterations);
}

}  // namespace rpc::opt
