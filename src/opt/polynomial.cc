#include "opt/polynomial.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/stringutil.h"

namespace rpc::opt {
namespace {

// Relative magnitude below which a coefficient counts as zero.
constexpr double kCoeffEps = 1e-12;

double MaxAbsCoeff(const std::vector<double>& coeffs) {
  double best = 0.0;
  for (double c : coeffs) best = std::max(best, std::fabs(c));
  return best;
}

// Sturm sequence: p0 = p, p1 = p', p_{k+1} = -rem(p_{k-1}, p_k).
std::vector<Polynomial> SturmSequence(const Polynomial& p) {
  std::vector<Polynomial> seq;
  seq.push_back(p);
  Polynomial deriv = p.Derivative();
  if (deriv.IsZero()) return seq;
  seq.push_back(deriv);
  while (true) {
    const Polynomial& a = seq[seq.size() - 2];
    const Polynomial& b = seq.back();
    if (b.degree() == 0) break;
    Polynomial rem = a.Remainder(b);
    if (rem.IsZero()) break;
    seq.push_back(rem * -1.0);
    if (seq.back().degree() == 0) break;
  }
  return seq;
}

// Number of sign changes of the Sturm sequence at x (zeros are skipped).
int SignChangesAt(const std::vector<Polynomial>& seq, double x) {
  int changes = 0;
  int prev_sign = 0;
  for (const Polynomial& p : seq) {
    const double value = p.Evaluate(x);
    const int sign = value > 0.0 ? 1 : (value < 0.0 ? -1 : 0);
    if (sign == 0) continue;
    if (prev_sign != 0 && sign != prev_sign) ++changes;
    prev_sign = sign;
  }
  return changes;
}

// Refines a root bracketed in [lo, hi] (f(lo), f(hi) of opposite sign or one
// of them zero) by bisection with Newton acceleration.
double RefineRoot(const Polynomial& p, const Polynomial& dp, double lo,
                  double hi, double tol) {
  double flo = p.Evaluate(lo);
  if (flo == 0.0) return lo;
  double fhi = p.Evaluate(hi);
  if (fhi == 0.0) return hi;
  double x = 0.5 * (lo + hi);
  for (int iter = 0; iter < 200 && hi - lo > tol; ++iter) {
    // Newton step from the midpoint; fall back to bisection when it leaves
    // the bracket or the derivative vanishes.
    const double fx = p.Evaluate(x);
    if (fx == 0.0) return x;
    const double dfx = dp.Evaluate(x);
    double next;
    if (dfx != 0.0) {
      next = x - fx / dfx;
      if (next <= lo || next >= hi) next = 0.5 * (lo + hi);
    } else {
      next = 0.5 * (lo + hi);
    }
    // Maintain the bracket.
    if ((fx > 0.0) == (flo > 0.0)) {
      lo = x;
      flo = fx;
    } else {
      hi = x;
      fhi = fx;
    }
    x = next;
    if (x <= lo || x >= hi) x = 0.5 * (lo + hi);
  }
  return 0.5 * (lo + hi);
}

// Recursively isolates roots using Sturm counts.
void IsolateRoots(const std::vector<Polynomial>& seq, const Polynomial& p,
                  const Polynomial& dp, double lo, double hi, int count_lo,
                  int count_hi, double tol, std::vector<double>* roots) {
  const int num_roots = count_lo - count_hi;
  if (num_roots <= 0) return;
  if (num_roots == 1) {
    roots->push_back(RefineRoot(p, dp, lo, hi, tol));
    return;
  }
  if (hi - lo <= tol) {
    // Cluster of roots tighter than the tolerance: report the midpoint once.
    roots->push_back(0.5 * (lo + hi));
    return;
  }
  const double mid = 0.5 * (lo + hi);
  const int count_mid = SignChangesAt(seq, mid);
  IsolateRoots(seq, p, dp, lo, mid, count_lo, count_mid, tol, roots);
  IsolateRoots(seq, p, dp, mid, hi, count_mid, count_hi, tol, roots);
}

}  // namespace

Polynomial::Polynomial(std::vector<double> coeffs)
    : coeffs_(std::move(coeffs)) {
  if (coeffs_.empty()) coeffs_.push_back(0.0);
  Trim();
}

void Polynomial::Trim() {
  const double scale = MaxAbsCoeff(coeffs_);
  const double cutoff = scale * kCoeffEps;
  while (coeffs_.size() > 1 && std::fabs(coeffs_.back()) <= cutoff) {
    coeffs_.pop_back();
  }
}

bool Polynomial::IsZero() const {
  return coeffs_.size() == 1 && coeffs_[0] == 0.0;
}

double Polynomial::Evaluate(double x) const {
  double value = 0.0;
  for (size_t i = coeffs_.size(); i-- > 0;) {
    value = value * x + coeffs_[i];
  }
  return value;
}

Polynomial Polynomial::Derivative() const {
  if (coeffs_.size() <= 1) return Polynomial({0.0});
  std::vector<double> deriv(coeffs_.size() - 1);
  for (size_t i = 1; i < coeffs_.size(); ++i) {
    deriv[i - 1] = static_cast<double>(i) * coeffs_[i];
  }
  return Polynomial(std::move(deriv));
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  std::vector<double> sum(std::max(coeffs_.size(), other.coeffs_.size()), 0.0);
  for (size_t i = 0; i < coeffs_.size(); ++i) sum[i] += coeffs_[i];
  for (size_t i = 0; i < other.coeffs_.size(); ++i) sum[i] += other.coeffs_[i];
  return Polynomial(std::move(sum));
}

Polynomial Polynomial::operator-(const Polynomial& other) const {
  return *this + (other * -1.0);
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  std::vector<double> prod(coeffs_.size() + other.coeffs_.size() - 1, 0.0);
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i] == 0.0) continue;
    for (size_t j = 0; j < other.coeffs_.size(); ++j) {
      prod[i + j] += coeffs_[i] * other.coeffs_[j];
    }
  }
  return Polynomial(std::move(prod));
}

Polynomial Polynomial::operator*(double scalar) const {
  std::vector<double> scaled = coeffs_;
  for (double& c : scaled) c *= scalar;
  return Polynomial(std::move(scaled));
}

Polynomial Polynomial::Remainder(const Polynomial& divisor) const {
  assert(!divisor.IsZero());
  std::vector<double> rem = coeffs_;
  const std::vector<double>& div = divisor.coeffs_;
  const double lead = div.back();
  while (rem.size() >= div.size()) {
    const double factor = rem.back() / lead;
    const size_t offset = rem.size() - div.size();
    for (size_t i = 0; i < div.size(); ++i) {
      rem[offset + i] -= factor * div[i];
    }
    rem.pop_back();
    // Trim any zero coefficients newly exposed at the top.
    const double scale = std::max(MaxAbsCoeff(rem), MaxAbsCoeff(coeffs_));
    while (rem.size() > 1 && std::fabs(rem.back()) <= scale * kCoeffEps) {
      rem.pop_back();
    }
    if (rem.empty()) {
      rem.push_back(0.0);
      break;
    }
  }
  return Polynomial(std::move(rem));
}

std::string Polynomial::ToString() const {
  std::string out;
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    if (i > 0) out += " + ";
    out += FormatDouble(coeffs_[i]);
    if (i >= 1) out += StrFormat("*x^%zu", i);
  }
  return out;
}

// ---- PolynomialRootWorkspace ----------------------------------------------
// Span-based replica of the allocating machinery above. Every helper mirrors
// its std::vector counterpart operation for operation (including the trimming
// scales), so the isolated roots are bit-identical — the differential test in
// tests/opt/polynomial_test.cc holds the two paths together.

namespace {

double SpanMaxAbs(const double* c, int n) {
  double best = 0.0;
  for (int i = 0; i < n; ++i) best = std::max(best, std::fabs(c[i]));
  return best;
}

// Polynomial-constructor-style trim: drop numerically zero leading
// coefficients relative to the span's own magnitude, keeping at least one.
void SpanTrim(double* c, int* n) {
  const double cutoff = SpanMaxAbs(c, *n) * kCoeffEps;
  while (*n > 1 && std::fabs(c[*n - 1]) <= cutoff) --*n;
}

bool SpanIsZero(const double* c, int n) { return n == 1 && c[0] == 0.0; }

double SpanEval(const double* c, int n, double x) {
  double value = 0.0;
  for (int i = n; i-- > 0;) value = value * x + c[i];
  return value;
}

// Polynomial::Derivative without the allocation (including its trim).
int SpanDerivative(const double* c, int n, double* out) {
  if (n <= 1) {
    out[0] = 0.0;
    return 1;
  }
  for (int i = 1; i < n; ++i) out[i - 1] = static_cast<double>(i) * c[i];
  int len = n - 1;
  SpanTrim(out, &len);
  return len;
}

// Polynomial::Remainder without the allocation: rem starts as a copy of the
// dividend a; the trim inside the division loop uses the dividend's
// magnitude (exactly as the member function's MaxAbsCoeff(coeffs_) does),
// the final trim the remainder's own.
int SpanRemainder(const double* a, int na, const double* b, int nb,
                  double* rem) {
  assert(!SpanIsZero(b, nb));
  for (int i = 0; i < na; ++i) rem[i] = a[i];
  int nr = na;
  const double lead = b[nb - 1];
  const double a_max = SpanMaxAbs(a, na);
  while (nr >= nb) {
    const double factor = rem[nr - 1] / lead;
    const int offset = nr - nb;
    for (int i = 0; i < nb; ++i) rem[offset + i] -= factor * b[i];
    --nr;
    const double scale = std::max(SpanMaxAbs(rem, nr), a_max);
    while (nr > 1 && std::fabs(rem[nr - 1]) <= scale * kCoeffEps) --nr;
    if (nr == 0) {
      rem[0] = 0.0;
      nr = 1;
      break;
    }
  }
  SpanTrim(rem, &nr);
  return nr;
}

}  // namespace

double PolynomialRootWorkspace::EvalCounted(const double* c, int n,
                                            double x) {
  ++evals_;
  return SpanEval(c, n, x);
}

void PolynomialRootWorkspace::BuildSturmChain() {
  // chain_[0] (the polynomial) is already in place; append the derivative
  // and the negated remainders, stopping at a constant or a zero remainder.
  dp_len_ = SpanDerivative(chain_[0], chain_len_[0], dp_);
  chain_size_ = 1;
  if (SpanIsZero(dp_, dp_len_)) return;
  for (int i = 0; i < dp_len_; ++i) chain_[1][i] = dp_[i];
  chain_len_[1] = dp_len_;
  chain_size_ = 2;
  while (chain_size_ < kMaxChain) {
    const double* a = chain_[chain_size_ - 2];
    const int na = chain_len_[chain_size_ - 2];
    const double* b = chain_[chain_size_ - 1];
    const int nb = chain_len_[chain_size_ - 1];
    if (nb - 1 == 0) break;
    double* rem = chain_[chain_size_];
    int nr = SpanRemainder(a, na, b, nb, rem);
    if (SpanIsZero(rem, nr)) break;
    for (int i = 0; i < nr; ++i) rem[i] = -rem[i];
    chain_len_[chain_size_] = nr;
    ++chain_size_;
    if (nr - 1 == 0) break;
  }
}

int PolynomialRootWorkspace::SignChangesAt(double x) {
  int changes = 0;
  int prev_sign = 0;
  for (int i = 0; i < chain_size_; ++i) {
    const double value = EvalCounted(chain_[i], chain_len_[i], x);
    const int sign = value > 0.0 ? 1 : (value < 0.0 ? -1 : 0);
    if (sign == 0) continue;
    if (prev_sign != 0 && sign != prev_sign) ++changes;
    prev_sign = sign;
  }
  return changes;
}

double PolynomialRootWorkspace::RefineRoot(double lo, double hi, double tol) {
  const double* p = chain_[0];
  const int np = chain_len_[0];
  double flo = EvalCounted(p, np, lo);
  if (flo == 0.0) return lo;
  double fhi = EvalCounted(p, np, hi);
  if (fhi == 0.0) return hi;
  double x = 0.5 * (lo + hi);
  for (int iter = 0; iter < 200 && hi - lo > tol; ++iter) {
    const double fx = EvalCounted(p, np, x);
    if (fx == 0.0) return x;
    const double dfx = EvalCounted(dp_, dp_len_, x);
    double next;
    if (dfx != 0.0) {
      next = x - fx / dfx;
      if (next <= lo || next >= hi) next = 0.5 * (lo + hi);
    } else {
      next = 0.5 * (lo + hi);
    }
    if ((fx > 0.0) == (flo > 0.0)) {
      lo = x;
      flo = fx;
    } else {
      hi = x;
      fhi = fx;
    }
    x = next;
    if (x <= lo || x >= hi) x = 0.5 * (lo + hi);
  }
  return 0.5 * (lo + hi);
}

void PolynomialRootWorkspace::IsolateRoots(double lo, double hi, int count_lo,
                                           int count_hi, double tol,
                                           double* roots, int capacity,
                                           int* count) {
  const int num_roots = count_lo - count_hi;
  if (num_roots <= 0 || *count >= capacity) return;
  if (num_roots == 1) {
    roots[(*count)++] = RefineRoot(lo, hi, tol);
    return;
  }
  if (hi - lo <= tol) {
    roots[(*count)++] = 0.5 * (lo + hi);
    return;
  }
  const double mid = 0.5 * (lo + hi);
  const int count_mid = SignChangesAt(mid);
  IsolateRoots(lo, mid, count_lo, count_mid, tol, roots, capacity, count);
  IsolateRoots(mid, hi, count_mid, count_hi, tol, roots, capacity, count);
}

int PolynomialRootWorkspace::RealRootsInInterval(const double* coeffs,
                                                 int num_coeffs, double lo,
                                                 double hi, double tol,
                                                 double* roots, int capacity) {
  if (lo > hi || capacity <= 0) return 0;
  // Polynomial-constructor normalisation of the input, then the same
  // unit-magnitude scaling the allocating path applies.
  double* p = chain_[0];
  int np;
  if (num_coeffs <= 0) {
    p[0] = 0.0;
    np = 1;
  } else {
    if (num_coeffs - 1 > kMaxDegree) return -1;
    for (int i = 0; i < num_coeffs; ++i) p[i] = coeffs[i];
    np = num_coeffs;
    SpanTrim(p, &np);
  }
  const double scale = SpanMaxAbs(p, np);
  if (scale > 0.0) {
    const double inv = 1.0 / scale;
    for (int i = 0; i < np; ++i) p[i] *= inv;
    SpanTrim(p, &np);
  }
  if (SpanIsZero(p, np)) return 0;
  if (np - 1 == 0) return 0;
  chain_len_[0] = np;

  if (np - 1 == 1) {
    const double root = -p[0] / p[1];
    if (root >= lo - tol && root <= hi + tol) {
      roots[0] = std::min(std::max(root, lo), hi);
      return 1;
    }
    return 0;
  }

  BuildSturmChain();

  const double pad = std::max(1e-12, (hi - lo) * 1e-12);
  const double a = lo - pad;
  const double b = hi + pad;
  const int count_a = SignChangesAt(a);
  const int count_b = SignChangesAt(b);
  int count = 0;
  IsolateRoots(a, b, count_a, count_b, tol, roots, capacity, &count);
  for (int i = 0; i < count; ++i) {
    roots[i] = std::min(std::max(roots[i], lo), hi);
  }
  std::sort(roots, roots + count);
  int unique = 0;
  for (int i = 0; i < count; ++i) {
    if (unique == 0 || std::fabs(roots[i] - roots[unique - 1]) > 10.0 * tol) {
      roots[unique++] = roots[i];
    }
  }
  return unique;
}

int Polynomial::RealRootsInInterval(double lo, double hi, double tol,
                                    PolynomialRootWorkspace* workspace,
                                    double* roots, int capacity) const {
  const int count = workspace->RealRootsInInterval(
      coeffs_.data(), static_cast<int>(coeffs_.size()), lo, hi, tol, roots,
      capacity);
  if (count >= 0) return count;
  // Degree beyond the workspace's fixed capacity: allocating fallback.
  const std::vector<double> fallback = RealRootsInInterval(lo, hi, tol);
  const int n = std::min(capacity, static_cast<int>(fallback.size()));
  for (int i = 0; i < n; ++i) roots[i] = fallback[static_cast<size_t>(i)];
  return n;
}

std::vector<double> Polynomial::RealRootsInInterval(double lo, double hi,
                                                    double tol) const {
  std::vector<double> roots;
  if (lo > hi) return roots;
  Polynomial p = *this;
  // Scale coefficients to unit magnitude for numerical headroom.
  const double scale = MaxAbsCoeff(p.coeffs_);
  if (scale > 0.0) p = p * (1.0 / scale);
  if (p.IsZero()) return roots;  // identically zero: no isolated roots
  if (p.degree() == 0) return roots;

  if (p.degree() == 1) {
    const double root = -p.coeffs_[0] / p.coeffs_[1];
    if (root >= lo - tol && root <= hi + tol) {
      roots.push_back(std::min(std::max(root, lo), hi));
    }
    return roots;
  }

  const std::vector<Polynomial> seq = SturmSequence(p);
  const Polynomial dp = p.Derivative();

  // Sturm counts exclude roots exactly at the endpoints; nudge the window
  // outward slightly and clamp results back.
  const double pad = std::max(1e-12, (hi - lo) * 1e-12);
  const double a = lo - pad;
  const double b = hi + pad;
  const int count_a = SignChangesAt(seq, a);
  const int count_b = SignChangesAt(seq, b);
  IsolateRoots(seq, p, dp, a, b, count_a, count_b, tol, &roots);
  for (double& r : roots) r = std::min(std::max(r, lo), hi);
  std::sort(roots.begin(), roots.end());
  // Deduplicate near-identical roots.
  std::vector<double> unique;
  for (double r : roots) {
    if (unique.empty() || std::fabs(r - unique.back()) > 10.0 * tol) {
      unique.push_back(r);
    }
  }
  return unique;
}

}  // namespace rpc::opt
