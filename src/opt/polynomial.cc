#include "opt/polynomial.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/stringutil.h"

namespace rpc::opt {
namespace {

// Relative magnitude below which a coefficient counts as zero.
constexpr double kCoeffEps = 1e-12;

double MaxAbsCoeff(const std::vector<double>& coeffs) {
  double best = 0.0;
  for (double c : coeffs) best = std::max(best, std::fabs(c));
  return best;
}

// Sturm sequence: p0 = p, p1 = p', p_{k+1} = -rem(p_{k-1}, p_k).
std::vector<Polynomial> SturmSequence(const Polynomial& p) {
  std::vector<Polynomial> seq;
  seq.push_back(p);
  Polynomial deriv = p.Derivative();
  if (deriv.IsZero()) return seq;
  seq.push_back(deriv);
  while (true) {
    const Polynomial& a = seq[seq.size() - 2];
    const Polynomial& b = seq.back();
    if (b.degree() == 0) break;
    Polynomial rem = a.Remainder(b);
    if (rem.IsZero()) break;
    seq.push_back(rem * -1.0);
    if (seq.back().degree() == 0) break;
  }
  return seq;
}

// Number of sign changes of the Sturm sequence at x (zeros are skipped).
int SignChangesAt(const std::vector<Polynomial>& seq, double x) {
  int changes = 0;
  int prev_sign = 0;
  for (const Polynomial& p : seq) {
    const double value = p.Evaluate(x);
    const int sign = value > 0.0 ? 1 : (value < 0.0 ? -1 : 0);
    if (sign == 0) continue;
    if (prev_sign != 0 && sign != prev_sign) ++changes;
    prev_sign = sign;
  }
  return changes;
}

// Refines a root bracketed in [lo, hi] (f(lo), f(hi) of opposite sign or one
// of them zero) by bisection with Newton acceleration.
double RefineRoot(const Polynomial& p, const Polynomial& dp, double lo,
                  double hi, double tol) {
  double flo = p.Evaluate(lo);
  if (flo == 0.0) return lo;
  double fhi = p.Evaluate(hi);
  if (fhi == 0.0) return hi;
  double x = 0.5 * (lo + hi);
  for (int iter = 0; iter < 200 && hi - lo > tol; ++iter) {
    // Newton step from the midpoint; fall back to bisection when it leaves
    // the bracket or the derivative vanishes.
    const double fx = p.Evaluate(x);
    if (fx == 0.0) return x;
    const double dfx = dp.Evaluate(x);
    double next;
    if (dfx != 0.0) {
      next = x - fx / dfx;
      if (next <= lo || next >= hi) next = 0.5 * (lo + hi);
    } else {
      next = 0.5 * (lo + hi);
    }
    // Maintain the bracket.
    if ((fx > 0.0) == (flo > 0.0)) {
      lo = x;
      flo = fx;
    } else {
      hi = x;
      fhi = fx;
    }
    x = next;
    if (x <= lo || x >= hi) x = 0.5 * (lo + hi);
  }
  return 0.5 * (lo + hi);
}

// Recursively isolates roots using Sturm counts.
void IsolateRoots(const std::vector<Polynomial>& seq, const Polynomial& p,
                  const Polynomial& dp, double lo, double hi, int count_lo,
                  int count_hi, double tol, std::vector<double>* roots) {
  const int num_roots = count_lo - count_hi;
  if (num_roots <= 0) return;
  if (num_roots == 1) {
    roots->push_back(RefineRoot(p, dp, lo, hi, tol));
    return;
  }
  if (hi - lo <= tol) {
    // Cluster of roots tighter than the tolerance: report the midpoint once.
    roots->push_back(0.5 * (lo + hi));
    return;
  }
  const double mid = 0.5 * (lo + hi);
  const int count_mid = SignChangesAt(seq, mid);
  IsolateRoots(seq, p, dp, lo, mid, count_lo, count_mid, tol, roots);
  IsolateRoots(seq, p, dp, mid, hi, count_mid, count_hi, tol, roots);
}

}  // namespace

Polynomial::Polynomial(std::vector<double> coeffs)
    : coeffs_(std::move(coeffs)) {
  if (coeffs_.empty()) coeffs_.push_back(0.0);
  Trim();
}

void Polynomial::Trim() {
  const double scale = MaxAbsCoeff(coeffs_);
  const double cutoff = scale * kCoeffEps;
  while (coeffs_.size() > 1 && std::fabs(coeffs_.back()) <= cutoff) {
    coeffs_.pop_back();
  }
}

bool Polynomial::IsZero() const {
  return coeffs_.size() == 1 && coeffs_[0] == 0.0;
}

double Polynomial::Evaluate(double x) const {
  double value = 0.0;
  for (size_t i = coeffs_.size(); i-- > 0;) {
    value = value * x + coeffs_[i];
  }
  return value;
}

Polynomial Polynomial::Derivative() const {
  if (coeffs_.size() <= 1) return Polynomial({0.0});
  std::vector<double> deriv(coeffs_.size() - 1);
  for (size_t i = 1; i < coeffs_.size(); ++i) {
    deriv[i - 1] = static_cast<double>(i) * coeffs_[i];
  }
  return Polynomial(std::move(deriv));
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  std::vector<double> sum(std::max(coeffs_.size(), other.coeffs_.size()), 0.0);
  for (size_t i = 0; i < coeffs_.size(); ++i) sum[i] += coeffs_[i];
  for (size_t i = 0; i < other.coeffs_.size(); ++i) sum[i] += other.coeffs_[i];
  return Polynomial(std::move(sum));
}

Polynomial Polynomial::operator-(const Polynomial& other) const {
  return *this + (other * -1.0);
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  std::vector<double> prod(coeffs_.size() + other.coeffs_.size() - 1, 0.0);
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i] == 0.0) continue;
    for (size_t j = 0; j < other.coeffs_.size(); ++j) {
      prod[i + j] += coeffs_[i] * other.coeffs_[j];
    }
  }
  return Polynomial(std::move(prod));
}

Polynomial Polynomial::operator*(double scalar) const {
  std::vector<double> scaled = coeffs_;
  for (double& c : scaled) c *= scalar;
  return Polynomial(std::move(scaled));
}

Polynomial Polynomial::Remainder(const Polynomial& divisor) const {
  assert(!divisor.IsZero());
  std::vector<double> rem = coeffs_;
  const std::vector<double>& div = divisor.coeffs_;
  const double lead = div.back();
  while (rem.size() >= div.size()) {
    const double factor = rem.back() / lead;
    const size_t offset = rem.size() - div.size();
    for (size_t i = 0; i < div.size(); ++i) {
      rem[offset + i] -= factor * div[i];
    }
    rem.pop_back();
    // Trim any zero coefficients newly exposed at the top.
    const double scale = std::max(MaxAbsCoeff(rem), MaxAbsCoeff(coeffs_));
    while (rem.size() > 1 && std::fabs(rem.back()) <= scale * kCoeffEps) {
      rem.pop_back();
    }
    if (rem.empty()) {
      rem.push_back(0.0);
      break;
    }
  }
  return Polynomial(std::move(rem));
}

std::string Polynomial::ToString() const {
  std::string out;
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    if (i > 0) out += " + ";
    out += FormatDouble(coeffs_[i]);
    if (i >= 1) out += StrFormat("*x^%zu", i);
  }
  return out;
}

std::vector<double> Polynomial::RealRootsInInterval(double lo, double hi,
                                                    double tol) const {
  std::vector<double> roots;
  if (lo > hi) return roots;
  Polynomial p = *this;
  // Scale coefficients to unit magnitude for numerical headroom.
  const double scale = MaxAbsCoeff(p.coeffs_);
  if (scale > 0.0) p = p * (1.0 / scale);
  if (p.IsZero()) return roots;  // identically zero: no isolated roots
  if (p.degree() == 0) return roots;

  if (p.degree() == 1) {
    const double root = -p.coeffs_[0] / p.coeffs_[1];
    if (root >= lo - tol && root <= hi + tol) {
      roots.push_back(std::min(std::max(root, lo), hi));
    }
    return roots;
  }

  const std::vector<Polynomial> seq = SturmSequence(p);
  const Polynomial dp = p.Derivative();

  // Sturm counts exclude roots exactly at the endpoints; nudge the window
  // outward slightly and clamp results back.
  const double pad = std::max(1e-12, (hi - lo) * 1e-12);
  const double a = lo - pad;
  const double b = hi + pad;
  const int count_a = SignChangesAt(seq, a);
  const int count_b = SignChangesAt(seq, b);
  IsolateRoots(seq, p, dp, a, b, count_a, count_b, tol, &roots);
  for (double& r : roots) r = std::min(std::max(r, lo), hi);
  std::sort(roots.begin(), roots.end());
  // Deduplicate near-identical roots.
  std::vector<double> unique;
  for (double r : roots) {
    if (unique.empty() || std::fabs(r - unique.back()) > 10.0 * tol) {
      unique.push_back(r);
    }
  }
  return unique;
}

}  // namespace rpc::opt
