#include "opt/incremental_projector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rpc::opt {

using curve::BezierCurve;
using linalg::Matrix;
using linalg::Vector;

void IncrementalProjector::Bind(const Matrix& data,
                                const IncrementalProjectorOptions& options,
                                ThreadPool* pool) {
  data_ = &data;
  options_ = options;
  // Warm-started calls refine via ProjectLocal's Newton step, which needs
  // the hodograph state whatever the configured method — except kGridOnly,
  // whose ProjectLocal delegates straight to the global search.
  options_.projection.enable_local_refinement =
      options.projection.method != ProjectionMethod::kGridOnly;
  pool_ = pool;
  const int parallelism =
      pool != nullptr ? std::max(pool->parallelism(), 1) : 1;
  // vector(count) value-constructs in place, which is all the non-movable
  // ProjectionWorkspace supports; the move-assignment only swaps buffers.
  workspaces_ = std::vector<ProjectionWorkspace>(
      static_cast<size_t>(parallelism));
  const size_t n = static_cast<size_t>(data.rows());
  s_.assign(n, 0.0);
  dist_.assign(n, 0.0);
  squared_.assign(n, 0.0);
  fallback_slots_.assign(static_cast<size_t>(parallelism), 0);
  calls_ = 0;
  last_was_full_ = false;
  last_fallbacks_ = 0;
}

Vector IncrementalProjector::Project(const BezierCurve& curve,
                                     double* total_squared_distance) {
  Vector scores;
  ProjectInto(curve, &scores, total_squared_distance);
  return scores;
}

void IncrementalProjector::ProjectInto(const BezierCurve& curve,
                                       Vector* scores_out,
                                       double* total_squared_distance) {
  assert(bound());
  assert(data_->cols() == curve.dimension() || data_->rows() == 0);
  const int n = data_->rows();
  // resize, not assign: every entry is overwritten below, so the zero-fill
  // would be a wasted O(n) sweep per outer iteration.
  scores_out->data().resize(static_cast<size_t>(n));
  Vector& scores = *scores_out;

  const int period = options_.resync_period;
  // kGridOnly has no refinement stage to localise, so a warm call would be
  // the full grid argmin plus per-row bookkeeping — run it as a plain full
  // pass instead.
  const bool full = calls_ == 0 || period <= 1 || calls_ % period == 0 ||
                    options_.projection.method == ProjectionMethod::kGridOnly;

  // Bound on how far any curve point moved since the previous call: by the
  // convex-hull property, max_s |f_t(s) - f_{t-1}(s)| <= max_r |dp_r|.
  double delta = 0.0;
  if (!full) {
    const Matrix& now = curve.control_points();
    assert(now.rows() == prev_control_.rows() &&
           now.cols() == prev_control_.cols());
    for (int r = 0; r < now.cols(); ++r) {
      double sq = 0.0;
      for (int i = 0; i < now.rows(); ++i) {
        const double diff = now(i, r) - prev_control_(i, r);
        sq += diff * diff;
      }
      delta = std::max(delta, sq);
    }
    delta = std::sqrt(delta);
  }

  // The curve's control points changed since the last call (the learner
  // mutates it between projections), so every workspace re-derives its
  // per-curve state here, on the calling thread.
  for (ProjectionWorkspace& w : workspaces_) w.Bind(curve, options_.projection);

  const int parallelism = static_cast<int>(workspaces_.size());
  std::int64_t fallbacks = 0;
  if (parallelism <= 1 || n < 2) {
    ProjectRange(&workspaces_[0], full, delta, 0, n, scores.data().data(),
                 squared_.data(), &fallbacks);
  } else {
    // Same chunking as ProjectRowsBatch: ~4 chunks per worker. The
    // per-worker counters live in the bound fallback_slots_ buffer so the
    // steady-state pass stays allocation-free.
    std::fill(fallback_slots_.begin(), fallback_slots_.end(), 0);
    const std::int64_t grain = std::max<std::int64_t>(
        1, (n + 4 * parallelism - 1) / (4 * parallelism));
    pool_->ParallelFor(
        n, grain, [&](std::int64_t begin, std::int64_t end, int worker) {
          ProjectRange(&workspaces_[static_cast<size_t>(worker)], full, delta,
                       begin, end, scores.data().data(), squared_.data(),
                       &fallback_slots_[static_cast<size_t>(worker)]);
        });
    for (std::int64_t count : fallback_slots_) fallbacks += count;
  }

  if (total_squared_distance != nullptr) {
    // Row-ordered reduction: J is bit-identical across thread counts.
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += squared_[static_cast<size_t>(i)];
    *total_squared_distance = total;
  }

  prev_control_ = curve.control_points();
  ++calls_;
  last_was_full_ = full;
  last_fallbacks_ = fallbacks;
}

void IncrementalProjector::ProjectRange(ProjectionWorkspace* workspace,
                                        bool full, double delta,
                                        std::int64_t begin, std::int64_t end,
                                        double* scores, double* squared,
                                        std::int64_t* fallbacks) {
  const Matrix& data = *data_;
  const int g = std::max(options_.projection.grid_points, 2);
  const double half = options_.bracket_cells / g;
  for (std::int64_t i = begin; i < end; ++i) {
    const double* x = data.RowPtr(static_cast<int>(i));
    ProjectionResult result;
    if (full) {
      result = workspace->Project(x);
    } else {
      const double s_prev = s_[static_cast<size_t>(i)];
      const double lo = std::max(0.0, s_prev - half);
      const double hi = std::min(1.0, s_prev + half);
      bool hit_edge = false;
      result = workspace->ProjectLocal(x, lo, hi, &hit_edge);
      // Certified distance bound: the previous s* is inside the bracket and
      // the curve moved at most delta, so any honest local refinement must
      // land at or below (sqrt(d_prev) + delta)^2. Above it, something went
      // wrong (e.g. the bracket was clipped away from s_prev at a domain
      // boundary) — pay for the global search.
      const double certified =
          std::sqrt(dist_[static_cast<size_t>(i)]) + delta;
      const bool distance_suspect =
          result.squared_distance > certified * certified + 1e-12;
      if (hit_edge || distance_suspect) {
        ++*fallbacks;
        // The rejected local probe's evaluations were really performed (and
        // counted by the workspace); keep them in the row's total so the
        // per-point accounting invariant holds.
        const int local_evaluations = result.evaluations;
        result = workspace->Project(x);
        result.evaluations += local_evaluations;
      }
    }
    s_[static_cast<size_t>(i)] = result.s;
    dist_[static_cast<size_t>(i)] = result.squared_distance;
    scores[i] = result.s;
    squared[i] = result.squared_distance;
  }
}

}  // namespace rpc::opt
