#include "opt/incremental_projector.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace rpc::opt {

using curve::BezierCurve;
using linalg::Matrix;
using linalg::Vector;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void IncrementalProjector::Bind(const Matrix& data,
                                const IncrementalProjectorOptions& options,
                                ThreadPool* pool) {
  data_ = &data;
  options_ = options;
  // Warm-started calls refine via ProjectLocal's Newton step, which needs
  // the hodograph state whatever the configured method — except kGridOnly,
  // whose ProjectLocal delegates straight to the global search.
  options_.projection.enable_local_refinement =
      options.projection.method != ProjectionMethod::kGridOnly;
  pool_ = pool;
  const int parallelism =
      pool != nullptr ? std::max(pool->parallelism(), 1) : 1;
  // vector(count) value-constructs in place, which is all the non-movable
  // ProjectionWorkspace supports; the move-assignment only swaps buffers.
  workspaces_ = std::vector<ProjectionWorkspace>(
      static_cast<size_t>(parallelism));
  const size_t n = static_cast<size_t>(data.rows());
  s_.assign(n, 0.0);
  dist_.assign(n, 0.0);
  // No drift has been observed yet: infinity keeps the adaptive bracket at
  // its full width until a row has two calls of history.
  drift_.assign(n, kInf);
  squared_.assign(n, 0.0);
  counter_slots_.assign(static_cast<size_t>(parallelism), RangeCounters());
  fused_segments_ = nullptr;
  fused_segment_rows_ = 0;
  calls_ = 0;
  last_was_full_ = false;
  last_fallbacks_ = 0;
  last_probe_skips_ = 0;
}

void IncrementalProjector::ImportState(const Vector& s,
                                       const Matrix& control_points) {
  assert(bound());
  assert(s.size() == data_->rows());
  std::copy(s.data().begin(), s.data().end(), s_.begin());
  // The imported rows' previous distances are unknown; the infinity
  // sentinel disarms the certified bound for the first warm call (the
  // bracket-edge check still guards it) and the first call's results
  // re-arm it.
  std::fill(dist_.begin(), dist_.end(), kInf);
  // Imported state is by definition a *converged* model's state — every
  // row was settled when it was exported — so under adaptive brackets the
  // first warm call may take the probe-free fast path immediately (zero
  // observed drift). That path's own bracket-edge detection still guards
  // the call while the distance certificate is disarmed; with adaptive
  // brackets off this value is unread. Any row the import mis-seeded is
  // further repaired by the resync cadence and the learner's final full
  // verification pass.
  std::fill(drift_.begin(), drift_.end(), 0.0);
  prev_control_ = control_points;
  // A non-zero call count makes the next Project() warm; resyncs then fire
  // on the usual cadence counted from the import.
  calls_ = 1;
}

void IncrementalProjector::ExportState(Vector* s, Vector* dist) const {
  assert(bound());
  if (s != nullptr) {
    s->data().assign(s_.begin(), s_.end());
  }
  if (dist != nullptr) {
    dist->data().assign(dist_.begin(), dist_.end());
  }
}

void IncrementalProjector::SetFusedAccumulators(
    std::vector<curve::BernsteinDesignAccumulator>* segments,
    int segment_rows) {
  assert(segments == nullptr || segment_rows >= 1);
  fused_segments_ = segments;
  fused_segment_rows_ = segment_rows;
}

Vector IncrementalProjector::Project(const BezierCurve& curve,
                                     double* total_squared_distance) {
  Vector scores;
  ProjectInto(curve, &scores, total_squared_distance);
  return scores;
}

void IncrementalProjector::ProjectInto(const BezierCurve& curve,
                                       Vector* scores_out,
                                       double* total_squared_distance) {
  assert(bound());
  assert(data_->cols() == curve.dimension() || data_->rows() == 0);
  const int n = data_->rows();
  // resize, not assign: every entry is overwritten below, so the zero-fill
  // would be a wasted O(n) sweep per outer iteration.
  scores_out->data().resize(static_cast<size_t>(n));
  Vector& scores = *scores_out;

  const int period = options_.resync_period;
  // kGridOnly has no refinement stage to localise, so a warm call would be
  // the full grid argmin plus per-row bookkeeping — run it as a plain full
  // pass instead.
  const bool full = calls_ == 0 || period <= 1 || calls_ % period == 0 ||
                    options_.projection.method == ProjectionMethod::kGridOnly;

  // Bound on how far any curve point moved since the previous call: by the
  // convex-hull property, max_s |f_t(s) - f_{t-1}(s)| <= max_r |dp_r|.
  double delta = 0.0;
  if (!full) {
    const Matrix& now = curve.control_points();
    assert(now.rows() == prev_control_.rows() &&
           now.cols() == prev_control_.cols());
    for (int r = 0; r < now.cols(); ++r) {
      double sq = 0.0;
      for (int i = 0; i < now.rows(); ++i) {
        const double diff = now(i, r) - prev_control_(i, r);
        sq += diff * diff;
      }
      delta = std::max(delta, sq);
    }
    delta = std::sqrt(delta);
  }

  // The curve's control points changed since the last call (the learner
  // mutates it between projections), so every workspace re-derives its
  // per-curve state here, on the calling thread.
  for (ProjectionWorkspace& w : workspaces_) w.Bind(curve, options_.projection);

  const int parallelism = static_cast<int>(workspaces_.size());
  std::fill(counter_slots_.begin(), counter_slots_.end(), RangeCounters());
  if (fused_segments_ != nullptr && n > 0) {
    // Fused Step 5 accumulation: the unit of work is one fixed-size row
    // segment, so exactly one worker fills each segment's accumulator,
    // sweeping its rows in order — the ordered-reduction determinism
    // contract — while also writing the ordinary projection outputs.
    const std::int64_t num_segments =
        (n + fused_segment_rows_ - 1) / fused_segment_rows_;
    assert(static_cast<size_t>(num_segments) <= fused_segments_->size());
    const auto run_segment = [&](std::int64_t segment, int worker) {
      curve::BernsteinDesignAccumulator& acc =
          (*fused_segments_)[static_cast<size_t>(segment)];
      acc.Reset();
      const std::int64_t begin = segment * fused_segment_rows_;
      const std::int64_t end =
          std::min<std::int64_t>(n, begin + fused_segment_rows_);
      ProjectRange(&workspaces_[static_cast<size_t>(worker)], full, delta,
                   begin, end, scores.data().data(), squared_.data(),
                   &counter_slots_[static_cast<size_t>(worker)], &acc);
    };
    if (parallelism <= 1 || num_segments <= 1) {
      for (std::int64_t seg = 0; seg < num_segments; ++seg) {
        run_segment(seg, 0);
      }
    } else {
      pool_->ParallelFor(num_segments, /*grain=*/1,
                         [&](std::int64_t begin, std::int64_t end,
                             int worker) {
                           for (std::int64_t seg = begin; seg < end; ++seg) {
                             run_segment(seg, worker);
                           }
                         });
    }
  } else if (parallelism <= 1 || n < 2) {
    ProjectRange(&workspaces_[0], full, delta, 0, n, scores.data().data(),
                 squared_.data(), &counter_slots_[0], nullptr);
  } else {
    // Same chunking as ProjectRowsBatch: ~4 chunks per worker. The
    // per-worker counters live in the bound counter_slots_ buffer so the
    // steady-state pass stays allocation-free.
    const std::int64_t grain = std::max<std::int64_t>(
        1, (n + 4 * parallelism - 1) / (4 * parallelism));
    pool_->ParallelFor(
        n, grain, [&](std::int64_t begin, std::int64_t end, int worker) {
          ProjectRange(&workspaces_[static_cast<size_t>(worker)], full, delta,
                       begin, end, scores.data().data(), squared_.data(),
                       &counter_slots_[static_cast<size_t>(worker)], nullptr);
        });
  }
  std::int64_t fallbacks = 0;
  std::int64_t probe_skips = 0;
  for (const RangeCounters& slot : counter_slots_) {
    fallbacks += slot.fallbacks;
    probe_skips += slot.probe_skips;
  }

  if (total_squared_distance != nullptr) {
    // Row-ordered reduction: J is bit-identical across thread counts.
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += squared_[static_cast<size_t>(i)];
    *total_squared_distance = total;
  }

  prev_control_ = curve.control_points();
  ++calls_;
  last_was_full_ = full;
  last_fallbacks_ = fallbacks;
  last_probe_skips_ = probe_skips;
}

void IncrementalProjector::ProjectRange(
    ProjectionWorkspace* workspace, bool full, double delta,
    std::int64_t begin, std::int64_t end, double* scores, double* squared,
    RangeCounters* counters, curve::BernsteinDesignAccumulator* accumulator) {
  const Matrix& data = *data_;
  if (begin >= end) return;
  if (full) {
    // Full resync: no per-row warm state feeds the projection, so the
    // whole range runs as one SoA block sweep through the SIMD grid
    // kernels (bit-identical to the per-row Project loop), followed by a
    // plain in-order bookkeeping pass.
    workspace->ProjectBlock(data.RowPtr(static_cast<int>(begin)),
                            static_cast<int>(end - begin), data.cols(),
                            scores + begin, squared + begin);
    for (std::int64_t i = begin; i < end; ++i) {
      const size_t row = static_cast<size_t>(i);
      drift_[row] = std::fabs(scores[i] - s_[row]);
      s_[row] = scores[i];
      dist_[row] = squared[i];
      if (accumulator != nullptr) {
        accumulator->AccumulateRow(scores[i],
                                   data.RowPtr(static_cast<int>(i)));
      }
    }
    return;
  }
  const int g = std::max(options_.projection.grid_points, 2);
  const double default_half = options_.bracket_cells / g;
  const double min_half =
      std::min(default_half, options_.min_bracket_cells / g);
  for (std::int64_t i = begin; i < end; ++i) {
    const double* x = data.RowPtr(static_cast<int>(i));
    const double s_prev = s_[static_cast<size_t>(i)];
    ProjectionResult result;
    {
      const double drift = drift_[static_cast<size_t>(i)];
      // Certified distance bound: the previous s* is inside the bracket and
      // the curve moved at most delta, so any honest local refinement must
      // land at or below (sqrt(d_prev) + delta)^2. Above it, something went
      // wrong (e.g. the bracket was clipped away from s_prev at a domain
      // boundary) — pay for the global search. (Infinity — a freshly
      // imported row — disarms the check for this one call.)
      const double certified =
          std::sqrt(dist_[static_cast<size_t>(i)]) + delta;
      const bool adaptive =
          options_.adaptive_brackets && std::isfinite(drift);
      if (adaptive && drift <= options_.drift_skip_tol) {
        // Settled row: skip the bracket probe, Newton-refine straight from
        // the previous s* on the floor-width bracket. The refinement
        // walking to a bracket edge that is not a domain boundary means
        // the minimiser escaped the floor bracket — treat it like
        // ProjectLocal's edge detection. This guard matters most for
        // freshly imported rows, whose infinity distance sentinel disarms
        // the certified bound for one call.
        const double lo = std::max(0.0, s_prev - min_half);
        const double hi = std::min(1.0, s_prev + min_half);
        result = workspace->ProjectSeeded(x, s_prev, lo, hi);
        ++counters->probe_skips;
        const bool hit_edge = (result.s <= lo + 1e-12 && lo > 0.0) ||
                              (result.s >= hi - 1e-12 && hi < 1.0);
        if (hit_edge ||
            result.squared_distance > certified * certified + 1e-12) {
          ++counters->fallbacks;
          const int local_evaluations = result.evaluations;
          result = workspace->Project(x);
          result.evaluations += local_evaluations;
        }
      } else {
        const double half =
            adaptive ? std::clamp(options_.bracket_drift_factor * drift,
                                  min_half, default_half)
                     : default_half;
        const double lo = std::max(0.0, s_prev - half);
        const double hi = std::min(1.0, s_prev + half);
        bool hit_edge = false;
        result = workspace->ProjectLocal(x, lo, hi, &hit_edge);
        const bool distance_suspect =
            result.squared_distance > certified * certified + 1e-12;
        if (hit_edge || distance_suspect) {
          ++counters->fallbacks;
          // The rejected local probe's evaluations were really performed
          // (and counted by the workspace); keep them in the row's total so
          // the per-point accounting invariant holds.
          const int local_evaluations = result.evaluations;
          result = workspace->Project(x);
          result.evaluations += local_evaluations;
        }
      }
    }
    drift_[static_cast<size_t>(i)] = std::fabs(result.s - s_prev);
    s_[static_cast<size_t>(i)] = result.s;
    dist_[static_cast<size_t>(i)] = result.squared_distance;
    scores[i] = result.s;
    squared[i] = result.squared_distance;
    if (accumulator != nullptr) accumulator->AccumulateRow(result.s, x);
  }
}

}  // namespace rpc::opt
