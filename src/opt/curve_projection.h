#ifndef RPC_OPT_CURVE_PROJECTION_H_
#define RPC_OPT_CURVE_PROJECTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "curve/bezier.h"
#include "linalg/vector.h"
#include "opt/polynomial.h"
#include "opt/row_block.h"

namespace rpc::opt {

/// How the per-point projection index s_f(x) (Eq. A-2 / Eq. 20-22) is found.
enum class ProjectionMethod {
  /// Coarse grid to bracket local minima, Golden Section Search to refine —
  /// the method Algorithm 1 adopts.
  kGoldenSection,
  /// Solve the stationarity polynomial f'(s).(x - f(s)) = 0 exactly (degree
  /// 2k-1, the quintic of Eq. 20 for cubics) with Sturm root isolation,
  /// standing in for Jenkins-Traub [32].
  kQuinticRoots,
  /// Pure grid argmin; ablation baseline showing why refinement matters.
  kGridOnly,
  /// Safeguarded Newton on the stationarity condition from the best grid
  /// bracket — the Gradient/Gauss-Newton family Pastva [20] used for
  /// Bezier fitting. Quadratic local convergence, cheaper than GSS.
  kNewton,
};

struct ProjectionOptions {
  ProjectionMethod method = ProjectionMethod::kGoldenSection;
  /// Grid resolution for bracketing (kGoldenSection) or the answer itself
  /// (kGridOnly).
  int grid_points = 32;
  /// Bracket-width tolerance for Golden Section refinement and root
  /// tolerance for kQuinticRoots.
  double tol = 1e-10;
  /// Build the hodograph / second-derivative state ProjectLocal's Newton
  /// refinement needs even when `method` is not kNewton. Set by
  /// IncrementalProjector for its warm-start workspaces; leave off for
  /// global-search-only binds so ProjectRowsBatch's per-iteration rebinds
  /// stay as cheap as before.
  bool enable_local_refinement = false;
};

struct ProjectionResult {
  /// The projection index; ties between equally near curve points are broken
  /// toward the largest s (the `sup` in Hastie's Eq. A-2).
  double s = 0.0;
  double squared_distance = 0.0;
  /// Number of evaluations the solver performed for this point: every
  /// squared-distance evaluation plus, for kNewton, every stationarity
  /// evaluation and, for kQuinticRoots, every Horner evaluation of the
  /// stationarity polynomial's Sturm chain during root isolation and
  /// refinement (so method cost comparisons are honest). No evaluation is
  /// counted twice — reusing a precomputed grid value (e.g. the s = 1
  /// boundary probe) costs nothing here. The same definition holds for all
  /// four methods; ProjectionWorkspace's counters let tests assert it.
  int evaluations = 0;
};

/// Reusable per-worker engine for projecting many points onto one curve.
///
/// Bind() hoists all per-curve work out of the per-point loop — the Bezier
/// evaluation workspace (with its cubic Horner fast path), the grid scratch,
/// the hodograph / second-derivative curves (kNewton and the warm-start
/// local refinement), and the power-basis coefficients of the stationarity
/// polynomial (kQuinticRoots). After the Bind, Project() and ProjectLocal()
/// are heap-allocation-free for every method — kQuinticRoots runs its Sturm
/// root isolation inside a fixed-capacity PolynomialRootWorkspace.
///
/// One workspace per thread: Project() mutates the scratch, so workspaces
/// must not be shared across concurrent callers (see ProjectRowsBatch).
class ProjectionWorkspace {
 public:
  ProjectionWorkspace() = default;
  // Not copyable/movable: hodograph_eval_ / second_eval_ hold pointers into
  // this object's own hodograph_ / second_ members, which a copy or move
  // would leave aimed at the source.
  ProjectionWorkspace(const ProjectionWorkspace&) = delete;
  ProjectionWorkspace& operator=(const ProjectionWorkspace&) = delete;

  /// Binds to a curve + options; the curve must outlive the binding.
  void Bind(const curve::BezierCurve& curve, const ProjectionOptions& options);

  /// Binds to an immutable shared curve, taking shared ownership: the
  /// workspace itself keeps the model alive for as long as it stays bound.
  /// This is the serving-tier contract — a shard can be evicted or swapped
  /// (copy-on-write) while a checked-out workspace is mid-query without the
  /// query ever seeing a torn or freed model. Rebinding (either overload)
  /// or destroying the workspace releases the reference.
  void BindShared(std::shared_ptr<const curve::BezierCurve> curve,
                  const ProjectionOptions& options);

  bool bound() const { return curve_ != nullptr; }

  /// Projects one point given as `dimension()` contiguous doubles.
  ProjectionResult Project(const double* x);

  /// Projects `count` row-major rows (row i at rows + i * row_stride) in
  /// RowBlock-sized sub-blocks: the rows are transposed into the bound
  /// structure-of-arrays tile and the grid stage runs through the active
  /// curve::SimdOps kernels — the curve value f(s_g) is evaluated once per
  /// grid point for the whole block (instead of once per row) and the
  /// residual distances vectorise across rows, one row per SIMD lane.
  /// Refinement (Golden Section / Newton) then runs per row exactly as
  /// Project would. Writes s_out[i] and, when non-null, squared_out[i].
  ///
  /// Bit-identical to calling Project(row i) for every row, for every
  /// method and every backend (the SimdOps contract): the serial, batch,
  /// warm-start and serving paths may mix the two entry points freely.
  /// kQuinticRoots has no grid stage and simply loops Project. Evaluation
  /// accounting is preserved: the workspace counters and the implied
  /// per-row evaluations match the per-row path exactly.
  void ProjectBlock(const double* rows, int count, int row_stride,
                    double* s_out, double* squared_out);

  /// The ProjectBlock core for rows already packed into a caller-owned
  /// tile: `block` must hold the same `count <= RowBlock::kMaxRows` rows as
  /// the row-major `rows` pointer (refinement reads the row-major form).
  /// Exposed so batch-of-curves evaluation can pack a block once and score
  /// it against many bound workspaces (see ProjectRowsBatchMultiCurve).
  void ProjectPackedBlock(const RowBlock& block, const double* rows,
                          int row_stride, double* s_out, double* squared_out);

  /// Warm-start local refinement: finds the best candidate inside the
  /// bracket [lo, hi] (a sub-interval of [0, 1]) only, via a small interior
  /// grid plus safeguarded Newton on the stationarity condition (with
  /// bisection safeguards when a step leaves the bracket).
  /// Sets *hit_edge when the interior grid's argmin landed on a bracket
  /// edge that is not a domain boundary — the true minimiser may then lie
  /// outside the bracket and the caller (IncrementalProjector) must fall
  /// back to the global Project(). kGridOnly has no refinement stage, so
  /// this method delegates straight to Project() for it. Requires a Bind
  /// with kNewton or ProjectionOptions::enable_local_refinement set (the
  /// Newton step reads the hodograph state). No global guarantees; same
  /// sup tie-break as Project within the bracket.
  ProjectionResult ProjectLocal(const double* x, double lo, double hi,
                                bool* hit_edge);

  /// Probe-free warm refinement for rows whose minimiser has stopped
  /// moving (IncrementalProjector's adaptive-bracket fast path): evaluates
  /// the seed s only, then runs the safeguarded Newton refinement over
  /// [lo, hi] directly — no interior bracket grid, so a settled row costs
  /// a couple of evaluations instead of ProjectLocal's probe. There is no
  /// edge detection; the caller must guard the result with the certified
  /// curve-movement distance bound and fall back to Project() when it
  /// fails. Same bind requirements and sup tie-break as ProjectLocal.
  ProjectionResult ProjectSeeded(const double* x, double seed, double lo,
                                 double hi);

  /// Evaluation accounting since the last Bind/ResetEvaluationCounts:
  /// squared-distance evaluations plus stationarity evaluations (kNewton
  /// and the warm-start refinement count curve-space evaluations of
  /// g(s) = f'(s).(x - f(s)); kQuinticRoots counts the Sturm-chain Horner
  /// evaluations of the same polynomial). Tests assert that the sum matches
  /// the accumulated ProjectionResult::evaluations for every method.
  std::int64_t objective_evaluations() const { return objective_evals_; }
  std::int64_t stationarity_evaluations() const { return stationarity_evals_; }
  void ResetEvaluationCounts();

 private:
  friend struct ProjectionObjective;

  double ObjectiveAt(const double* x, double s);
  double StationarityAt(const double* x, double s);
  double StationarityDerivativeAt(const double* x, double s);
  /// g(s) and g'(s) in one pass (f, f', f'' each evaluated once); counts as
  /// a single stationarity evaluation, like StationarityAt.
  double StationarityWithSlopeAt(const double* x, double s, double* slope);
  void ConsiderCandidate(const double* x, double s, ProjectionResult* best);
  /// Same comparison/tie-break as ConsiderCandidate for a value that was
  /// already evaluated (and counted) elsewhere; performs no evaluation.
  static void ConsiderPrecomputed(double s, double dist,
                                  ProjectionResult* best);

  ProjectionResult ProjectViaGrid(const double* x, bool refine);
  ProjectionResult ProjectViaNewton(const double* x);
  ProjectionResult ProjectViaPolynomialRoots(const double* x);
  /// Shared back halves of the grid methods: given the g+1 grid distances
  /// for one point (entry i at gd[i * stride]), run the bracket detection
  /// and refinement exactly as ProjectViaGrid / ProjectViaNewton do. The
  /// per-point path passes grid_dist_ with stride 1; the block path passes
  /// a kernel-filled column of grid_dist_block_ with stride kLaneStride.
  ProjectionResult FinishGridFromDists(const double* x, const double* gd,
                                       int stride, bool refine);
  ProjectionResult FinishNewtonFromDists(const double* x, const double* gd,
                                         int stride);
  /// Lock-step Golden Section refinement, the kGoldenSection back half of
  /// ProjectPackedBlock: collects every grid-local-minimum bracket of the
  /// block's rows into tasks and advances all of their searches together —
  /// each round moves every active task's state machine by exactly one
  /// objective evaluation, and a single batched kernel sweep
  /// (SimdOps::power_squared_distances_multi) evaluates the whole round's
  /// probes at once, one task per SIMD lane. Per task the evaluation
  /// sequence, iteration count and result are GoldenSectionMinimizeWith's
  /// exactly, so the refined minimisers, tie-breaks and evaluation
  /// counters are bit-identical to the per-row path; only the interleaving
  /// of evaluations across rows differs. Applies each task's refined
  /// candidate to results[task.row] in the per-row path's bracket order.
  void RefineGoldenBlock(const double* rows, int row_stride, int count,
                         ProjectionResult* results);
  /// Fills grid_f_ (f(s_g) for every grid point, lazily, once per Bind) for
  /// the block path's shared-curve-value kernels.
  void EnsureGridCurveValues();
  /// Safeguarded Newton on g(s) = f'(s).(x - f(s)) over [lo, hi], seeded at
  /// the midpoint; the shared refinement core of kNewton and ProjectLocal.
  double NewtonRefine(const double* x, double lo, double hi,
                      ProjectionResult* best);

  const curve::BezierCurve* curve_ = nullptr;
  /// Non-null only after BindShared: co-owns the bound curve.
  std::shared_ptr<const curve::BezierCurve> shared_curve_;
  ProjectionOptions options_;
  curve::BezierEvalWorkspace eval_;

  // Hodograph and second derivative, built per Bind: kNewton's solver and
  // the warm-start local refinement both need them.
  curve::BezierCurve hodograph_;
  curve::BezierCurve second_;
  curve::BezierEvalWorkspace hodograph_eval_;
  curve::BezierEvalWorkspace second_eval_;
  std::vector<double> deriv_;      // d scratch: f'(s)
  std::vector<double> curvature_;  // d scratch: f''(s)
  std::vector<double> point_;      // d scratch: f(s)

  // kQuinticRoots: power-basis coefficients of the curve (per Bind), the
  // stationarity coefficients (rebuilt per point, fixed size 2k), and the
  // fixed-capacity Sturm scratch + root output buffer.
  linalg::Matrix power_;
  std::vector<double> stationarity_coeffs_;
  PolynomialRootWorkspace root_workspace_;
  double roots_[PolynomialRootWorkspace::kMaxDegree];

  std::vector<double> grid_dist_;  // grid_points + 1 distances

  // Block-path state (sized per Bind, so the block sweeps stay
  // allocation-free): the SoA tile, the shared curve values f(s_g) for all
  // grid points ((g+1) x d, filled lazily once per Bind), and the
  // kernel-written grid distances ((g+1) x kLaneStride; the column with
  // stride kLaneStride holds one row's grid).
  RowBlock block_;
  std::vector<double> grid_f_;
  std::vector<double> grid_dist_block_;
  bool grid_f_ready_ = false;

  /// Where a lock-step Golden Section task is in its search (see
  /// RefineGoldenBlock): the initial probes (c then d), the per-iteration
  /// decide/evaluate split of GoldenSectionMinimizeWith's loop — the
  /// branch update happens when the round's probe is chosen, the write of
  /// fc/fd when its batched evaluation lands — and the degenerate
  /// already-narrow bracket that evaluates its midpoint once.
  enum class GoldenStage : unsigned char {
    kNarrow,
    kInitC,
    kInitD,
    kDecide,
    kEvalC,
    kEvalD,
  };
  /// One bracket's Golden Section Search, advanced in lock step with every
  /// other bracket of its block.
  struct GoldenTask {
    int row = 0;                  // block-local row index
    const double* x = nullptr;    // the row's coordinates (row-major)
    double a = 0.0, b = 0.0, h = 0.0;  // current bracket
    double c = 0.0, d = 0.0;      // interior probe parameters
    double fc = 0.0, fd = 0.0;    // objective at the probes
    double probe = 0.0;           // parameter evaluated this round
    double result_x = 0.0, result_fx = 0.0;
    int evaluations = 0;
    int iterations = 0;
    GoldenStage stage = GoldenStage::kInitC;
    bool pending = false;  // emitted a probe this round
    bool active = false;
  };
  // Lock-step refinement scratch (sized per Bind with the other block
  // buffers): the task list, the task-major transpose of one wave's rows
  // (column t = task t's coordinates, lane stride kMaxRows), the per-lane
  // probe parameters and kernel results, and the per-row result scratch.
  std::vector<GoldenTask> golden_tasks_;
  std::vector<double> golden_xt_;
  std::vector<double> golden_s_;
  std::vector<double> golden_dist_;
  std::vector<ProjectionResult> block_results_;

  std::int64_t objective_evals_ = 0;
  std::int64_t stationarity_evals_ = 0;
};

/// Projects x onto the curve over s in [0, 1]: the global minimiser of
/// ||x - f(s)||^2, with the sup tie-break. Convenience wrapper that builds
/// a ProjectionWorkspace per call; loops over many points should hold a
/// workspace (or use ProjectRowsBatch) instead.
ProjectionResult ProjectOntoCurve(const curve::BezierCurve& curve,
                                  const linalg::Vector& x,
                                  const ProjectionOptions& options = {});

/// Projects every row of `data` (n x d); returns the n projection indices
/// and accumulates the summed squared distance J (Eq. 19) when
/// `total_squared_distance` is non-null. Serial; equivalent to
/// ProjectRowsBatch with a null pool.
linalg::Vector ProjectRows(const curve::BezierCurve& curve,
                           const linalg::Matrix& data,
                           const ProjectionOptions& options = {},
                           double* total_squared_distance = nullptr);

}  // namespace rpc::opt

#endif  // RPC_OPT_CURVE_PROJECTION_H_
