#ifndef RPC_OPT_CURVE_PROJECTION_H_
#define RPC_OPT_CURVE_PROJECTION_H_

#include "curve/bezier.h"
#include "linalg/vector.h"

namespace rpc::opt {

/// How the per-point projection index s_f(x) (Eq. A-2 / Eq. 20-22) is found.
enum class ProjectionMethod {
  /// Coarse grid to bracket local minima, Golden Section Search to refine —
  /// the method Algorithm 1 adopts.
  kGoldenSection,
  /// Solve the stationarity polynomial f'(s).(x - f(s)) = 0 exactly (degree
  /// 2k-1, the quintic of Eq. 20 for cubics) with Sturm root isolation,
  /// standing in for Jenkins-Traub [32].
  kQuinticRoots,
  /// Pure grid argmin; ablation baseline showing why refinement matters.
  kGridOnly,
  /// Safeguarded Newton on the stationarity condition from the best grid
  /// bracket — the Gradient/Gauss-Newton family Pastva [20] used for
  /// Bezier fitting. Quadratic local convergence, cheaper than GSS.
  kNewton,
};

struct ProjectionOptions {
  ProjectionMethod method = ProjectionMethod::kGoldenSection;
  /// Grid resolution for bracketing (kGoldenSection) or the answer itself
  /// (kGridOnly).
  int grid_points = 32;
  /// Bracket-width tolerance for Golden Section refinement and root
  /// tolerance for kQuinticRoots.
  double tol = 1e-10;
};

struct ProjectionResult {
  /// The projection index; ties between equally near curve points are broken
  /// toward the largest s (the `sup` in Hastie's Eq. A-2).
  double s = 0.0;
  double squared_distance = 0.0;
  int evaluations = 0;
};

/// Projects x onto the curve over s in [0, 1]: the global minimiser of
/// ||x - f(s)||^2, with the sup tie-break.
ProjectionResult ProjectOntoCurve(const curve::BezierCurve& curve,
                                  const linalg::Vector& x,
                                  const ProjectionOptions& options = {});

/// Projects every row of `data` (n x d); returns the n projection indices
/// and accumulates the summed squared distance J (Eq. 19) when
/// `total_squared_distance` is non-null.
linalg::Vector ProjectRows(const curve::BezierCurve& curve,
                           const linalg::Matrix& data,
                           const ProjectionOptions& options = {},
                           double* total_squared_distance = nullptr);

}  // namespace rpc::opt

#endif  // RPC_OPT_CURVE_PROJECTION_H_
