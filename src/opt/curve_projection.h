#ifndef RPC_OPT_CURVE_PROJECTION_H_
#define RPC_OPT_CURVE_PROJECTION_H_

#include <cstdint>
#include <vector>

#include "curve/bezier.h"
#include "linalg/vector.h"

namespace rpc::opt {

/// How the per-point projection index s_f(x) (Eq. A-2 / Eq. 20-22) is found.
enum class ProjectionMethod {
  /// Coarse grid to bracket local minima, Golden Section Search to refine —
  /// the method Algorithm 1 adopts.
  kGoldenSection,
  /// Solve the stationarity polynomial f'(s).(x - f(s)) = 0 exactly (degree
  /// 2k-1, the quintic of Eq. 20 for cubics) with Sturm root isolation,
  /// standing in for Jenkins-Traub [32].
  kQuinticRoots,
  /// Pure grid argmin; ablation baseline showing why refinement matters.
  kGridOnly,
  /// Safeguarded Newton on the stationarity condition from the best grid
  /// bracket — the Gradient/Gauss-Newton family Pastva [20] used for
  /// Bezier fitting. Quadratic local convergence, cheaper than GSS.
  kNewton,
};

struct ProjectionOptions {
  ProjectionMethod method = ProjectionMethod::kGoldenSection;
  /// Grid resolution for bracketing (kGoldenSection) or the answer itself
  /// (kGridOnly).
  int grid_points = 32;
  /// Bracket-width tolerance for Golden Section refinement and root
  /// tolerance for kQuinticRoots.
  double tol = 1e-10;
};

struct ProjectionResult {
  /// The projection index; ties between equally near curve points are broken
  /// toward the largest s (the `sup` in Hastie's Eq. A-2).
  double s = 0.0;
  double squared_distance = 0.0;
  /// Number of curve evaluations the solver performed for this point: every
  /// squared-distance evaluation plus, for kNewton, every stationarity
  /// evaluation. No evaluation is counted twice — reusing a precomputed
  /// grid value (e.g. the s = 1 boundary probe) costs nothing here. The
  /// same definition holds for all four methods; ProjectionWorkspace's
  /// counters let tests assert it.
  int evaluations = 0;
};

/// Reusable per-worker engine for projecting many points onto one curve.
///
/// Bind() hoists all per-curve work out of the per-point loop — the Bezier
/// evaluation workspace (with its cubic Horner fast path), the grid scratch,
/// and, per method, the hodograph / second-derivative curves (kNewton) or
/// the power-basis coefficients of the stationarity polynomial
/// (kQuinticRoots). After the Bind, Project() is heap-allocation-free for
/// kGoldenSection, kGridOnly and kNewton; kQuinticRoots still allocates
/// inside Sturm root isolation.
///
/// One workspace per thread: Project() mutates the scratch, so workspaces
/// must not be shared across concurrent callers (see ProjectRowsBatch).
class ProjectionWorkspace {
 public:
  ProjectionWorkspace() = default;
  // Not copyable/movable: hodograph_eval_ / second_eval_ hold pointers into
  // this object's own hodograph_ / second_ members, which a copy or move
  // would leave aimed at the source.
  ProjectionWorkspace(const ProjectionWorkspace&) = delete;
  ProjectionWorkspace& operator=(const ProjectionWorkspace&) = delete;

  /// Binds to a curve + options; the curve must outlive the binding.
  void Bind(const curve::BezierCurve& curve, const ProjectionOptions& options);
  bool bound() const { return curve_ != nullptr; }

  /// Projects one point given as `dimension()` contiguous doubles.
  ProjectionResult Project(const double* x);

  /// Evaluation accounting since the last Bind/ResetEvaluationCounts:
  /// squared-distance evaluations and (kNewton only) stationarity
  /// evaluations. Tests assert that the sum matches the accumulated
  /// ProjectionResult::evaluations for every method.
  std::int64_t objective_evaluations() const { return objective_evals_; }
  std::int64_t stationarity_evaluations() const { return stationarity_evals_; }
  void ResetEvaluationCounts();

 private:
  friend struct ProjectionObjective;

  double ObjectiveAt(const double* x, double s);
  double StationarityAt(const double* x, double s);
  double StationarityDerivativeAt(const double* x, double s);
  void ConsiderCandidate(const double* x, double s, ProjectionResult* best);
  /// Same comparison/tie-break as ConsiderCandidate for a value that was
  /// already evaluated (and counted) elsewhere; performs no evaluation.
  static void ConsiderPrecomputed(double s, double dist,
                                  ProjectionResult* best);

  ProjectionResult ProjectViaGrid(const double* x, bool refine);
  ProjectionResult ProjectViaNewton(const double* x);
  ProjectionResult ProjectViaPolynomialRoots(const double* x);

  const curve::BezierCurve* curve_ = nullptr;
  ProjectionOptions options_;
  curve::BezierEvalWorkspace eval_;

  // kNewton: hodograph and second derivative, built once per Bind.
  curve::BezierCurve hodograph_;
  curve::BezierCurve second_;
  curve::BezierEvalWorkspace hodograph_eval_;
  curve::BezierEvalWorkspace second_eval_;
  std::vector<double> deriv_;      // d scratch: f'(s)
  std::vector<double> curvature_;  // d scratch: f''(s)
  std::vector<double> point_;      // d scratch: f(s)

  // kQuinticRoots: power-basis coefficients of the curve (per Bind) and the
  // stationarity coefficients (rebuilt per point, fixed size 2k).
  linalg::Matrix power_;
  std::vector<double> stationarity_coeffs_;

  std::vector<double> grid_dist_;  // grid_points + 1 distances

  std::int64_t objective_evals_ = 0;
  std::int64_t stationarity_evals_ = 0;
};

/// Projects x onto the curve over s in [0, 1]: the global minimiser of
/// ||x - f(s)||^2, with the sup tie-break. Convenience wrapper that builds
/// a ProjectionWorkspace per call; loops over many points should hold a
/// workspace (or use ProjectRowsBatch) instead.
ProjectionResult ProjectOntoCurve(const curve::BezierCurve& curve,
                                  const linalg::Vector& x,
                                  const ProjectionOptions& options = {});

/// Projects every row of `data` (n x d); returns the n projection indices
/// and accumulates the summed squared distance J (Eq. 19) when
/// `total_squared_distance` is non-null. Serial; equivalent to
/// ProjectRowsBatch with a null pool.
linalg::Vector ProjectRows(const curve::BezierCurve& curve,
                           const linalg::Matrix& data,
                           const ProjectionOptions& options = {},
                           double* total_squared_distance = nullptr);

}  // namespace rpc::opt

#endif  // RPC_OPT_CURVE_PROJECTION_H_
