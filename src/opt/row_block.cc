#include "opt/row_block.h"

#include <cassert>
#include <cstddef>

namespace rpc::opt {

void RowBlock::Bind(int dim) {
  assert(dim >= 0);
  dim_ = dim;
  rows_ = 0;
  tile_.resize(static_cast<std::size_t>(dim) * kLaneStride);
}

void RowBlock::Pack(const double* rows, int count, int row_stride) {
  assert(count >= 0 && count <= kMaxRows);
  assert(row_stride >= dim_);
  rows_ = count;
  // Row-major to lane-major transpose. The write side is the contiguous
  // one: each lane fills stride-1, so the kernels read sequential memory.
  for (int j = 0; j < dim_; ++j) {
    double* lane = tile_.data() + static_cast<std::size_t>(j) * kLaneStride;
    for (int i = 0; i < count; ++i) {
      lane[i] = rows[static_cast<std::size_t>(i) * row_stride + j];
    }
  }
}

}  // namespace rpc::opt
