#include "opt/batch_projection.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace rpc::opt {

using curve::BezierCurve;
using linalg::Matrix;
using linalg::Vector;

Vector ProjectRowsBatch(const BezierCurve& curve, const Matrix& data,
                        const ProjectionOptions& options, ThreadPool* pool,
                        double* total_squared_distance) {
  assert(data.cols() == curve.dimension() || data.rows() == 0);
  const int n = data.rows();
  Vector scores(n);
  // Per-row squared distances; the final reduction runs in row order so the
  // total is independent of the partitioning.
  std::vector<double> squared(static_cast<size_t>(n));

  const int parallelism = pool != nullptr ? pool->parallelism() : 1;
  if (parallelism <= 1 || n < 2) {
    ProjectionWorkspace workspace;
    workspace.Bind(curve, options);
    if (n > 0) {
      // SoA block sweep: the grid stage runs through the active SIMD
      // backend, bit-identical to the per-row Project loop it replaces.
      workspace.ProjectBlock(data.RowPtr(0), n, data.cols(),
                             scores.data().data(), squared.data());
    }
  } else {
    std::vector<ProjectionWorkspace> workspaces(
        static_cast<size_t>(parallelism));
    for (ProjectionWorkspace& w : workspaces) w.Bind(curve, options);
    // ~4 chunks per worker: enough slack for dynamic load balancing, few
    // enough that chunk dispatch stays negligible next to the projections.
    const std::int64_t grain = std::max<std::int64_t>(
        1, (n + 4 * parallelism - 1) / (4 * parallelism));
    pool->ParallelFor(
        n, grain,
        [&](std::int64_t begin, std::int64_t end, int worker) {
          ProjectionWorkspace& workspace =
              workspaces[static_cast<size_t>(worker)];
          workspace.ProjectBlock(data.RowPtr(static_cast<int>(begin)),
                                 static_cast<int>(end - begin), data.cols(),
                                 scores.data().data() + begin,
                                 squared.data() + begin);
        });
  }

  if (total_squared_distance != nullptr) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += squared[static_cast<size_t>(i)];
    *total_squared_distance = total;
  }
  return scores;
}

Vector ProjectRowsBatchFused(
    const BezierCurve& curve, const Matrix& data,
    const ProjectionOptions& options, ThreadPool* pool,
    std::vector<curve::BernsteinDesignAccumulator>* segments,
    int segment_rows, double* total_squared_distance) {
  assert(data.cols() == curve.dimension() || data.rows() == 0);
  assert(segments != nullptr && segment_rows >= 1);
  const int n = data.rows();
  const std::int64_t num_segments =
      n == 0 ? 0 : (n + segment_rows - 1) / segment_rows;
  assert(static_cast<size_t>(num_segments) <= segments->size());
  Vector scores(n);
  std::vector<double> squared(static_cast<size_t>(n));

  const int parallelism = pool != nullptr ? pool->parallelism() : 1;
  std::vector<ProjectionWorkspace> workspaces(static_cast<size_t>(
      parallelism <= 1 || num_segments <= 1 ? 1 : parallelism));
  for (ProjectionWorkspace& w : workspaces) w.Bind(curve, options);

  // One worker owns one whole segment: its accumulator is filled by a
  // single in-order row sweep, so the later segment-ordered merge matches
  // the serial sweep bit for bit whatever the thread count.
  const auto run_segment = [&](std::int64_t segment, int worker) {
    curve::BernsteinDesignAccumulator& acc =
        (*segments)[static_cast<size_t>(segment)];
    acc.Reset();
    ProjectionWorkspace& workspace = workspaces[static_cast<size_t>(worker)];
    const std::int64_t begin = segment * segment_rows;
    const std::int64_t end = std::min<std::int64_t>(n, begin + segment_rows);
    // Block-projected scores, then the same in-order row sweep into the
    // segment's accumulator the per-row loop ran — the segment-ordered
    // merge contract only cares that rows accumulate in order.
    workspace.ProjectBlock(data.RowPtr(static_cast<int>(begin)),
                           static_cast<int>(end - begin), data.cols(),
                           scores.data().data() + begin,
                           squared.data() + begin);
    for (std::int64_t i = begin; i < end; ++i) {
      acc.AccumulateRow(scores[static_cast<int>(i)],
                        data.RowPtr(static_cast<int>(i)));
    }
  };
  if (workspaces.size() == 1) {
    for (std::int64_t seg = 0; seg < num_segments; ++seg) run_segment(seg, 0);
  } else {
    pool->ParallelFor(num_segments, /*grain=*/1,
                      [&](std::int64_t begin, std::int64_t end, int worker) {
                        for (std::int64_t seg = begin; seg < end; ++seg) {
                          run_segment(seg, worker);
                        }
                      });
  }

  if (total_squared_distance != nullptr) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += squared[static_cast<size_t>(i)];
    *total_squared_distance = total;
  }
  return scores;
}

std::vector<Vector> ProjectRowsBatchMultiCurve(
    const std::vector<const BezierCurve*>& curves, const Matrix& data,
    const ProjectionOptions& options, ThreadPool* pool,
    std::vector<double>* total_squared_distances) {
  const int m = static_cast<int>(curves.size());
  const int n = data.rows();
  std::vector<Vector> scores(static_cast<size_t>(m));
  for (Vector& v : scores) v = Vector(n);
  // Per-curve per-row squared distances; reduced per curve in row order so
  // each total matches the single-curve batch bitwise.
  std::vector<std::vector<double>> squared(static_cast<size_t>(m));
  for (auto& v : squared) v.resize(static_cast<size_t>(n));
  if (total_squared_distances != nullptr) {
    total_squared_distances->assign(static_cast<size_t>(m), 0.0);
  }
  if (m == 0 || n == 0) return scores;
  for (const BezierCurve* curve : curves) {
    assert(curve != nullptr && curve->dimension() == data.cols());
    (void)curve;
  }

  if (options.method == ProjectionMethod::kQuinticRoots) {
    // No grid stage to share across curves; the exact solver runs the
    // plain single-curve batch per curve.
    for (int c = 0; c < m; ++c) {
      double total = 0.0;
      scores[static_cast<size_t>(c)] =
          ProjectRowsBatch(*curves[static_cast<size_t>(c)], data, options,
                           pool, &total);
      if (total_squared_distances != nullptr) {
        (*total_squared_distances)[static_cast<size_t>(c)] = total;
      }
    }
    return scores;
  }

  const int parallelism = pool != nullptr ? pool->parallelism() : 1;
  const int workers = (parallelism <= 1 || n < 2) ? 1 : parallelism;
  // Worker w's workspace for curve c lives at [w * m + c]; one SoA block
  // per worker is packed once per chunk and scored against all m curves.
  std::vector<ProjectionWorkspace> workspaces(
      static_cast<size_t>(workers) * static_cast<size_t>(m));
  for (int w = 0; w < workers; ++w) {
    for (int c = 0; c < m; ++c) {
      workspaces[static_cast<size_t>(w) * m + c].Bind(
          *curves[static_cast<size_t>(c)], options);
    }
  }
  std::vector<RowBlock> blocks(static_cast<size_t>(workers));
  for (RowBlock& block : blocks) block.Bind(data.cols());

  const auto run_range = [&](std::int64_t begin, std::int64_t end,
                             int worker) {
    RowBlock& block = blocks[static_cast<size_t>(worker)];
    for (std::int64_t b = begin; b < end; b += RowBlock::kMaxRows) {
      const int chunk =
          static_cast<int>(std::min<std::int64_t>(RowBlock::kMaxRows, end - b));
      const double* rows = data.RowPtr(static_cast<int>(b));
      block.Pack(rows, chunk, data.cols());
      for (int c = 0; c < m; ++c) {
        ProjectionWorkspace& workspace =
            workspaces[static_cast<size_t>(worker) * m + c];
        workspace.ProjectPackedBlock(
            block, rows, data.cols(),
            scores[static_cast<size_t>(c)].data().data() + b,
            squared[static_cast<size_t>(c)].data() + b);
      }
    }
  };
  if (workers == 1) {
    run_range(0, n, 0);
  } else {
    // Block-aligned grain so chunks pack whole tiles.
    const std::int64_t grain = std::max<std::int64_t>(
        RowBlock::kMaxRows,
        (n + 4 * workers - 1) / (4 * workers));
    pool->ParallelFor(n, grain, run_range);
  }

  if (total_squared_distances != nullptr) {
    for (int c = 0; c < m; ++c) {
      double total = 0.0;
      const std::vector<double>& sq = squared[static_cast<size_t>(c)];
      for (int i = 0; i < n; ++i) total += sq[static_cast<size_t>(i)];
      (*total_squared_distances)[static_cast<size_t>(c)] = total;
    }
  }
  return scores;
}

}  // namespace rpc::opt
