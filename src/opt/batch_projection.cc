#include "opt/batch_projection.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace rpc::opt {

using curve::BezierCurve;
using linalg::Matrix;
using linalg::Vector;

Vector ProjectRowsBatch(const BezierCurve& curve, const Matrix& data,
                        const ProjectionOptions& options, ThreadPool* pool,
                        double* total_squared_distance) {
  assert(data.cols() == curve.dimension() || data.rows() == 0);
  const int n = data.rows();
  Vector scores(n);
  // Per-row squared distances; the final reduction runs in row order so the
  // total is independent of the partitioning.
  std::vector<double> squared(static_cast<size_t>(n));

  const int parallelism = pool != nullptr ? pool->parallelism() : 1;
  if (parallelism <= 1 || n < 2) {
    ProjectionWorkspace workspace;
    workspace.Bind(curve, options);
    for (int i = 0; i < n; ++i) {
      const ProjectionResult proj = workspace.Project(data.RowPtr(i));
      scores[i] = proj.s;
      squared[static_cast<size_t>(i)] = proj.squared_distance;
    }
  } else {
    std::vector<ProjectionWorkspace> workspaces(
        static_cast<size_t>(parallelism));
    for (ProjectionWorkspace& w : workspaces) w.Bind(curve, options);
    // ~4 chunks per worker: enough slack for dynamic load balancing, few
    // enough that chunk dispatch stays negligible next to the projections.
    const std::int64_t grain = std::max<std::int64_t>(
        1, (n + 4 * parallelism - 1) / (4 * parallelism));
    pool->ParallelFor(
        n, grain,
        [&](std::int64_t begin, std::int64_t end, int worker) {
          ProjectionWorkspace& workspace =
              workspaces[static_cast<size_t>(worker)];
          for (std::int64_t i = begin; i < end; ++i) {
            const ProjectionResult proj =
                workspace.Project(data.RowPtr(static_cast<int>(i)));
            scores[static_cast<int>(i)] = proj.s;
            squared[static_cast<size_t>(i)] = proj.squared_distance;
          }
        });
  }

  if (total_squared_distance != nullptr) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += squared[static_cast<size_t>(i)];
    *total_squared_distance = total;
  }
  return scores;
}

}  // namespace rpc::opt
