#include "opt/batch_projection.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace rpc::opt {

using curve::BezierCurve;
using linalg::Matrix;
using linalg::Vector;

Vector ProjectRowsBatch(const BezierCurve& curve, const Matrix& data,
                        const ProjectionOptions& options, ThreadPool* pool,
                        double* total_squared_distance) {
  assert(data.cols() == curve.dimension() || data.rows() == 0);
  const int n = data.rows();
  Vector scores(n);
  // Per-row squared distances; the final reduction runs in row order so the
  // total is independent of the partitioning.
  std::vector<double> squared(static_cast<size_t>(n));

  const int parallelism = pool != nullptr ? pool->parallelism() : 1;
  if (parallelism <= 1 || n < 2) {
    ProjectionWorkspace workspace;
    workspace.Bind(curve, options);
    for (int i = 0; i < n; ++i) {
      const ProjectionResult proj = workspace.Project(data.RowPtr(i));
      scores[i] = proj.s;
      squared[static_cast<size_t>(i)] = proj.squared_distance;
    }
  } else {
    std::vector<ProjectionWorkspace> workspaces(
        static_cast<size_t>(parallelism));
    for (ProjectionWorkspace& w : workspaces) w.Bind(curve, options);
    // ~4 chunks per worker: enough slack for dynamic load balancing, few
    // enough that chunk dispatch stays negligible next to the projections.
    const std::int64_t grain = std::max<std::int64_t>(
        1, (n + 4 * parallelism - 1) / (4 * parallelism));
    pool->ParallelFor(
        n, grain,
        [&](std::int64_t begin, std::int64_t end, int worker) {
          ProjectionWorkspace& workspace =
              workspaces[static_cast<size_t>(worker)];
          for (std::int64_t i = begin; i < end; ++i) {
            const ProjectionResult proj =
                workspace.Project(data.RowPtr(static_cast<int>(i)));
            scores[static_cast<int>(i)] = proj.s;
            squared[static_cast<size_t>(i)] = proj.squared_distance;
          }
        });
  }

  if (total_squared_distance != nullptr) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += squared[static_cast<size_t>(i)];
    *total_squared_distance = total;
  }
  return scores;
}

Vector ProjectRowsBatchFused(
    const BezierCurve& curve, const Matrix& data,
    const ProjectionOptions& options, ThreadPool* pool,
    std::vector<curve::BernsteinDesignAccumulator>* segments,
    int segment_rows, double* total_squared_distance) {
  assert(data.cols() == curve.dimension() || data.rows() == 0);
  assert(segments != nullptr && segment_rows >= 1);
  const int n = data.rows();
  const std::int64_t num_segments =
      n == 0 ? 0 : (n + segment_rows - 1) / segment_rows;
  assert(static_cast<size_t>(num_segments) <= segments->size());
  Vector scores(n);
  std::vector<double> squared(static_cast<size_t>(n));

  const int parallelism = pool != nullptr ? pool->parallelism() : 1;
  std::vector<ProjectionWorkspace> workspaces(static_cast<size_t>(
      parallelism <= 1 || num_segments <= 1 ? 1 : parallelism));
  for (ProjectionWorkspace& w : workspaces) w.Bind(curve, options);

  // One worker owns one whole segment: its accumulator is filled by a
  // single in-order row sweep, so the later segment-ordered merge matches
  // the serial sweep bit for bit whatever the thread count.
  const auto run_segment = [&](std::int64_t segment, int worker) {
    curve::BernsteinDesignAccumulator& acc =
        (*segments)[static_cast<size_t>(segment)];
    acc.Reset();
    ProjectionWorkspace& workspace = workspaces[static_cast<size_t>(worker)];
    const std::int64_t begin = segment * segment_rows;
    const std::int64_t end = std::min<std::int64_t>(n, begin + segment_rows);
    for (std::int64_t i = begin; i < end; ++i) {
      const double* x = data.RowPtr(static_cast<int>(i));
      const ProjectionResult proj = workspace.Project(x);
      scores[static_cast<int>(i)] = proj.s;
      squared[static_cast<size_t>(i)] = proj.squared_distance;
      acc.AccumulateRow(proj.s, x);
    }
  };
  if (workspaces.size() == 1) {
    for (std::int64_t seg = 0; seg < num_segments; ++seg) run_segment(seg, 0);
  } else {
    pool->ParallelFor(num_segments, /*grain=*/1,
                      [&](std::int64_t begin, std::int64_t end, int worker) {
                        for (std::int64_t seg = begin; seg < end; ++seg) {
                          run_segment(seg, worker);
                        }
                      });
  }

  if (total_squared_distance != nullptr) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += squared[static_cast<size_t>(i)];
    *total_squared_distance = total;
  }
  return scores;
}

}  // namespace rpc::opt
