#include "obs/metrics.h"

#include <map>

namespace rpc::obs {

namespace internal {

int ThisThreadShard() {
  static std::atomic<unsigned> next{0};
  // Round-robin assignment at first use; stable for the thread's lifetime.
  static thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(slot % static_cast<unsigned>(kMetricShards));
}

HistogramCells::HistogramCells(std::vector<double> bounds)
    : upper_bounds(std::move(bounds)) {
  for (auto& shard : shards) {
    shard.counts = std::vector<std::atomic<std::int64_t>>(
        upper_bounds.size() + 1);
  }
}

}  // namespace internal

double HistogramSnapshot::QuantileUpperBound(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::int64_t rank =
      std::min<std::int64_t>(count - 1, static_cast<std::int64_t>(q * count));
  const double inf_edge =
      upper_bounds.empty() ? 0.0 : upper_bounds.back() * 2.0;
  std::int64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen > rank) {
      return i < upper_bounds.size() ? upper_bounds[i] : inf_edge;
    }
  }
  return inf_edge;
}

void Histogram::Record(double value) const {
  if (cells_ == nullptr) return;
  const auto& bounds = cells_->upper_bounds;
  // First bound strictly greater than the value: buckets are half-open
  // [lower, upper), matching obs::LatencyBucketForUs (see buckets.h).
  const auto bucket = static_cast<size_t>(
      std::upper_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  auto& shard =
      cells_->shards[static_cast<size_t>(internal::ThisThreadShard())];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Merge() const {
  HistogramSnapshot out;
  if (cells_ == nullptr) return out;
  out.upper_bounds = cells_->upper_bounds;
  out.counts.assign(out.upper_bounds.size() + 1, 0);
  for (const auto& shard : cells_->shards) {
    for (size_t b = 0; b < out.counts.size(); ++b) {
      out.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    out.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (const std::int64_t c : out.counts) out.count += c;
  return out;
}

struct Registry::Series {
  std::string name;
  MetricType type = MetricType::kCounter;
  Labels labels;
  std::string help;
  std::unique_ptr<internal::CounterCells> counter;
  std::unique_ptr<internal::GaugeCell> gauge;
  std::unique_ptr<internal::HistogramCells> histogram;
  std::function<double()> callback;  // callback gauges only
  std::uint64_t callback_id = 0;
};

struct Registry::Impl {
  // std::map: node-based, so Series addresses are stable across inserts
  // and handles may point into their cells for the registry's lifetime.
  std::map<std::string, Series> series;
  // Fallback cells handed out on a (name, labels) type conflict so the
  // mismatched caller still gets a working, if unexported, handle.
  std::vector<std::unique_ptr<internal::CounterCells>> detached_counters;
  std::vector<std::unique_ptr<internal::GaugeCell>> detached_gauges;
  std::vector<std::unique_ptr<internal::HistogramCells>> detached_histograms;
};

namespace {

Labels SortedLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string SeriesKey(const std::string& name, const Labels& sorted_labels) {
  std::string key = name;
  for (const auto& [k, v] : sorted_labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

}  // namespace

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Registry& Registry::Global() {
  // Intentionally leaked: handles (including ones held by static-lifetime
  // objects) stay valid through program shutdown.
  static Registry* global = new Registry();
  return *global;
}

Registry::Series& Registry::GetOrCreate(const std::string& name,
                                        MetricType type, const Labels& labels,
                                        const std::string& help) {
  // Caller holds mu_.
  const std::string key = SeriesKey(name, labels);
  auto [it, inserted] = impl_->series.try_emplace(key);
  if (inserted) {
    it->second.name = name;
    it->second.type = type;
    it->second.labels = labels;
    it->second.help = help;
  }
  return it->second;
}

Counter Registry::GetCounter(const std::string& name, Labels labels,
                             const std::string& help) {
  const Labels sorted = SortedLabels(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  Series& series = GetOrCreate(name, MetricType::kCounter, sorted, help);
  if (series.type == MetricType::kCounter && series.callback == nullptr) {
    if (series.counter == nullptr) {
      series.counter = std::make_unique<internal::CounterCells>();
    }
    return Counter(series.counter.get());
  }
  impl_->detached_counters.push_back(
      std::make_unique<internal::CounterCells>());
  return Counter(impl_->detached_counters.back().get());
}

Gauge Registry::GetGauge(const std::string& name, Labels labels,
                         const std::string& help) {
  const Labels sorted = SortedLabels(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  Series& series = GetOrCreate(name, MetricType::kGauge, sorted, help);
  if (series.type == MetricType::kGauge && series.callback == nullptr) {
    if (series.gauge == nullptr) {
      series.gauge = std::make_unique<internal::GaugeCell>();
    }
    return Gauge(series.gauge.get());
  }
  impl_->detached_gauges.push_back(std::make_unique<internal::GaugeCell>());
  return Gauge(impl_->detached_gauges.back().get());
}

Histogram Registry::GetHistogram(const std::string& name,
                                 std::vector<double> upper_bounds,
                                 Labels labels, const std::string& help) {
  const Labels sorted = SortedLabels(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  Series& series = GetOrCreate(name, MetricType::kHistogram, sorted, help);
  if (series.type == MetricType::kHistogram) {
    if (series.histogram == nullptr) {
      series.histogram =
          std::make_unique<internal::HistogramCells>(std::move(upper_bounds));
    }
    return Histogram(series.histogram.get());
  }
  impl_->detached_histograms.push_back(
      std::make_unique<internal::HistogramCells>(std::move(upper_bounds)));
  return Histogram(impl_->detached_histograms.back().get());
}

Registry::CallbackHandle Registry::GetCallbackGauge(const std::string& name,
                                                    Labels labels,
                                                    std::function<double()> fn,
                                                    const std::string& help) {
  const Labels sorted = SortedLabels(std::move(labels));
  CallbackHandle handle;
  std::lock_guard<std::mutex> lock(mu_);
  Series& series = GetOrCreate(name, MetricType::kGauge, sorted, help);
  if (series.type != MetricType::kGauge || series.gauge != nullptr ||
      series.callback != nullptr) {
    return handle;  // conflicting series: no-op handle
  }
  series.callback = std::move(fn);
  series.callback_id = next_callback_id_.fetch_add(1);
  handle.registry_ = this;
  handle.id_ = series.callback_id;
  return handle;
}

Registry::CallbackHandle& Registry::CallbackHandle::operator=(
    CallbackHandle&& other) noexcept {
  if (this != &other) {
    Release();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void Registry::CallbackHandle::Release() {
  if (registry_ == nullptr || id_ == 0) return;
  std::lock_guard<std::mutex> lock(registry_->mu_);
  auto& series = registry_->impl_->series;
  for (auto it = series.begin(); it != series.end(); ++it) {
    if (it->second.callback_id == id_) {
      series.erase(it);
      break;
    }
  }
  registry_ = nullptr;
  id_ = 0;
}

std::vector<Registry::Sample> Registry::Snapshot() const {
  std::vector<Sample> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(impl_->series.size());
  for (const auto& [key, series] : impl_->series) {
    Sample sample;
    sample.name = series.name;
    sample.type = series.type;
    sample.labels = series.labels;
    sample.help = series.help;
    switch (series.type) {
      case MetricType::kCounter:
        sample.value = static_cast<double>(Counter(series.counter.get()).Value());
        break;
      case MetricType::kGauge:
        sample.value = series.callback != nullptr
                           ? series.callback()
                           : Gauge(series.gauge.get()).Value();
        break;
      case MetricType::kHistogram:
        sample.histogram = Histogram(series.histogram.get()).Merge();
        break;
    }
    out.push_back(std::move(sample));
  }
  return out;
}

}  // namespace rpc::obs
