#ifndef RPC_OBS_METRICS_H_
#define RPC_OBS_METRICS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rpc::obs {

/// Compile-time kill switch (-DRPC_OBS_DISABLED): trace spans, the span
/// ring buffers and slow-query emission compile down to no-ops, and the
/// metric cells collapse to a single shard — one relaxed atomic add per
/// event, exactly what the legacy hand-rolled stats structs paid — so the
/// legacy views (serve::ServiceStats, stream::StreamStats, ...) keep
/// working bit-identically in disabled builds.
#ifdef RPC_OBS_DISABLED
inline constexpr bool kObsEnabled = false;
inline constexpr int kMetricShards = 1;
#else
inline constexpr bool kObsEnabled = true;
/// Power of two; threads hash onto shards round-robin, so hot-path adds
/// from different threads usually hit different cache lines.
inline constexpr int kMetricShards = 8;
#endif

enum class MetricType { kCounter, kGauge, kHistogram };

/// Label set of one series, e.g. {{"svc", "0"}, {"priority", "batch"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace internal {

/// Stable per-thread shard index in [0, kMetricShards).
int ThisThreadShard();

struct alignas(64) PaddedCount {
  std::atomic<std::int64_t> value{0};
};

struct CounterCells {
  std::array<PaddedCount, kMetricShards> shards;
};

struct GaugeCell {
  std::atomic<double> value{0.0};
};

struct HistogramCells {
  /// Finite upper bounds, ascending; the implicit last bucket is +Inf.
  std::vector<double> upper_bounds;
  struct Shard {
    std::vector<std::atomic<std::int64_t>> counts;  // upper_bounds.size()+1
    std::atomic<double> sum{0.0};
  };
  std::array<Shard, kMetricShards> shards;

  explicit HistogramCells(std::vector<double> bounds);
};

}  // namespace internal

/// Merged (cross-shard) view of one histogram; also the unit the merge
/// tests exercise. Counts are per-bucket (not cumulative).
struct HistogramSnapshot {
  std::vector<double> upper_bounds;     // finite bounds; last bucket = +Inf
  std::vector<std::int64_t> counts;     // upper_bounds.size() + 1 entries
  double sum = 0.0;
  std::int64_t count = 0;               // total observations

  /// Upper bucket edge containing quantile q in [0,1]; 0 when empty. For
  /// the +Inf bucket returns twice the last finite bound (nominal edge),
  /// or 0 when there are no finite bounds.
  double QuantileUpperBound(double q) const;
};

/// Handle onto a registered counter. Trivially copyable; Add is ~one
/// relaxed atomic add on the calling thread's shard. A default-constructed
/// handle is a safe no-op.
class Counter {
 public:
  Counter() = default;

  void Add(std::int64_t delta) const {
    if (cells_ == nullptr) return;
    cells_->shards[static_cast<size_t>(internal::ThisThreadShard())]
        .value.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() const { Add(1); }

  std::int64_t Value() const {
    if (cells_ == nullptr) return 0;
    std::int64_t total = 0;
    for (const auto& shard : cells_->shards) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class Registry;
  explicit Counter(internal::CounterCells* cells) : cells_(cells) {}
  internal::CounterCells* cells_ = nullptr;
};

/// Handle onto a registered gauge (a last-writer-wins double).
class Gauge {
 public:
  Gauge() = default;

  void Set(double value) const {
    if (cells_ != nullptr) {
      cells_->value.store(value, std::memory_order_relaxed);
    }
  }
  void Add(double delta) const {
    if (cells_ != nullptr) {
      cells_->value.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  double Value() const {
    return cells_ == nullptr ? 0.0
                             : cells_->value.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Gauge(internal::GaugeCell* cells) : cells_(cells) {}
  internal::GaugeCell* cells_ = nullptr;
};

/// Handle onto a registered fixed-bucket histogram. Record is a short
/// bounds search plus two relaxed atomic adds on the calling thread's
/// shard; Merge sums the shards into one consistent-enough snapshot
/// (relaxed reads — observability, not synchronisation).
class Histogram {
 public:
  Histogram() = default;

  void Record(double value) const;
  HistogramSnapshot Merge() const;
  std::int64_t TotalCount() const { return Merge().count; }

 private:
  friend class Registry;
  explicit Histogram(internal::HistogramCells* cells) : cells_(cells) {}
  internal::HistogramCells* cells_ = nullptr;
};

/// Process-wide metrics registry. Series are identified by (name, labels);
/// asking twice for the same series returns handles onto the same cells.
/// Registered cells are never deallocated (handles stay valid for the
/// process lifetime); Registry::Global() itself is intentionally leaked so
/// static-lifetime holders can Add during shutdown.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Global();

  Counter GetCounter(const std::string& name, Labels labels = {},
                     const std::string& help = "");
  Gauge GetGauge(const std::string& name, Labels labels = {},
                 const std::string& help = "");
  /// `upper_bounds` must be ascending finite bounds (the +Inf bucket is
  /// implicit). Re-requesting an existing histogram series ignores the
  /// bounds argument and returns the original cells.
  Histogram GetHistogram(const std::string& name,
                         std::vector<double> upper_bounds, Labels labels = {},
                         const std::string& help = "");

  /// RAII registration of a gauge computed on demand (at Snapshot time).
  /// The callback must stay valid until the handle is destroyed, and must
  /// not touch the registry itself (it runs under the registry mutex).
  class CallbackHandle {
   public:
    CallbackHandle() = default;
    CallbackHandle(CallbackHandle&& other) noexcept { *this = std::move(other); }
    CallbackHandle& operator=(CallbackHandle&& other) noexcept;
    ~CallbackHandle() { Release(); }
    CallbackHandle(const CallbackHandle&) = delete;
    CallbackHandle& operator=(const CallbackHandle&) = delete;

   private:
    friend class Registry;
    void Release();
    Registry* registry_ = nullptr;
    std::uint64_t id_ = 0;
  };
  [[nodiscard]] CallbackHandle GetCallbackGauge(const std::string& name,
                                                Labels labels,
                                                std::function<double()> fn,
                                                const std::string& help = "");

  /// One exported series, merged across shards (callbacks evaluated).
  struct Sample {
    std::string name;
    MetricType type = MetricType::kCounter;
    Labels labels;
    std::string help;
    double value = 0.0;          // counter / gauge
    HistogramSnapshot histogram;  // histograms only
  };
  /// Every registered series, sorted by (name, labels).
  std::vector<Sample> Snapshot() const;

 private:
  struct Series;
  /// Defined in metrics.cc: a node-based map keyed by name+labels, so
  /// Series addresses stay stable while handles point into their cells.
  struct Impl;
  Series& GetOrCreate(const std::string& name, MetricType type,
                      const Labels& labels, const std::string& help);

  mutable std::mutex mu_;
  std::unique_ptr<Impl> impl_;
  std::atomic<std::uint64_t> next_callback_id_{1};
};

}  // namespace rpc::obs

#endif  // RPC_OBS_METRICS_H_
