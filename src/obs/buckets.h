#ifndef RPC_OBS_BUCKETS_H_
#define RPC_OBS_BUCKETS_H_

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

namespace rpc::obs {

/// The one latency-bucket scheme shared by serve::LatencyHistogram and the
/// registry histograms: bucket i counts values in [2^i, 2^(i+1))
/// microseconds, bucket 0 additionally holds sub-microsecond values, and
/// the last bucket is unbounded above (2^19 us ~ 0.5 s). Half-open on the
/// upper edge: a value exactly equal to a bucket boundary lands in the
/// *next* bucket.
inline constexpr int kLatencyBuckets = 20;

/// Bucket index for a latency in whole microseconds.
inline int LatencyBucketForUs(std::int64_t us) {
  if (us <= 1) return 0;
  const int bucket =
      static_cast<int>(std::bit_width(static_cast<std::uint64_t>(us))) - 1;
  return std::min(kLatencyBuckets - 1, bucket);
}

/// Upper edge (exclusive, in us) of bucket i: 2^(i+1). The last bucket has
/// no upper edge; this returns its nominal 2^kLatencyBuckets for quantile
/// reporting, exactly as the legacy serve histogram did.
inline double LatencyBucketUpperUs(int bucket) {
  return std::ldexp(1.0, bucket + 1);
}

/// The kLatencyBuckets - 1 finite upper bounds {2, 4, ..., 2^19} us; the
/// implicit last bucket is +Inf. This is the bounds vector registry
/// histograms are built with so their bucket mapping is bit-identical to
/// LatencyBucketForUs.
inline std::vector<double> LatencyBucketUpperBoundsUs() {
  std::vector<double> bounds;
  bounds.reserve(kLatencyBuckets - 1);
  for (int i = 0; i + 1 < kLatencyBuckets; ++i) {
    bounds.push_back(LatencyBucketUpperUs(i));
  }
  return bounds;
}

}  // namespace rpc::obs

#endif  // RPC_OBS_BUCKETS_H_
