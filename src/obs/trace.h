#ifndef RPC_OBS_TRACE_H_
#define RPC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <vector>

namespace rpc::obs {

/// Trace-context: a nonzero id groups the spans of one logical operation
/// (one query, one refresh, one replica session) into a reconstructable
/// timeline. 0 = "not traced" everywhere.
using TraceId = std::uint64_t;

/// Steady-clock nanoseconds; the time base every span start/end uses.
inline std::int64_t TraceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One completed span as read back from the rings. `name` points at the
/// static string literal the emitter passed.
struct SpanRecord {
  TraceId trace_id = 0;
  const char* name = "";
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::uint32_t thread = 0;  // emitting thread's ring ordinal
};

#ifndef RPC_OBS_DISABLED

/// Fresh nonzero trace id, or 0 while runtime tracing is off (callers then
/// skip every span on that operation's path). A caller-supplied nonzero
/// QueryOptions-style id bypasses this and forces tracing.
TraceId NewTraceId();

/// Runtime switch (default on). Off stops NewTraceId from handing out ids;
/// explicitly propagated nonzero ids still record. The overhead bench's
/// "disabled" row flips this off.
void SetTracingEnabled(bool enabled);
bool TracingEnabled();

/// Appends one completed span to the calling thread's lock-free ring.
/// `name` must be a string literal (or otherwise immortal). No-op when
/// trace == 0. Timestamps come from the caller so hot paths can reuse
/// clock reads they already paid for.
void EmitSpan(TraceId trace, const char* name, std::int64_t start_ns,
              std::int64_t end_ns);

/// The most recent spans of every thread (each ring keeps the last 4096),
/// merged and sorted by start time. Entries overwritten mid-read are
/// discarded, never returned torn.
std::vector<SpanRecord> CollectSpans();

/// CollectSpans filtered to one trace id ({} for trace 0).
std::vector<SpanRecord> CollectTrace(TraceId trace);

#else  // RPC_OBS_DISABLED: spans compile to nothing.

inline TraceId NewTraceId() { return 0; }
inline void SetTracingEnabled(bool) {}
inline bool TracingEnabled() { return false; }
inline void EmitSpan(TraceId, const char*, std::int64_t, std::int64_t) {}
inline std::vector<SpanRecord> CollectSpans() { return {}; }
inline std::vector<SpanRecord> CollectTrace(TraceId) { return {}; }

#endif  // RPC_OBS_DISABLED

/// RAII span for paths cold enough to afford their own clock reads
/// (refresh phases, fit iterations, replica RPCs). Hot paths should call
/// EmitSpan with timestamps they already have instead. No-op on trace 0.
class Span {
 public:
  Span(TraceId trace, const char* name)
      : trace_(kSpansEnabled ? trace : 0),
        name_(name),
        start_ns_(trace_ != 0 ? TraceNowNs() : 0) {}
  ~Span() {
    if (trace_ != 0) EmitSpan(trace_, name_, start_ns_, TraceNowNs());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
#ifdef RPC_OBS_DISABLED
  static constexpr bool kSpansEnabled = false;
#else
  static constexpr bool kSpansEnabled = true;
#endif
  const TraceId trace_;
  const char* const name_;
  const std::int64_t start_ns_;
};

}  // namespace rpc::obs

#endif  // RPC_OBS_TRACE_H_
