#include "obs/trace.h"

#ifndef RPC_OBS_DISABLED

#include <algorithm>
#include <atomic>
#include <mutex>

namespace rpc::obs {

namespace {

std::atomic<bool> g_tracing_enabled{true};

/// Per-thread single-writer ring. All slot fields are relaxed atomics and
/// the head is release-published, so concurrent readers (CollectSpans) are
/// data-race-free; a reader detects slots overwritten during its pass by
/// re-reading the head and drops them (see CollectSpans).
struct SpanRing {
  static constexpr std::uint64_t kCapacity = 4096;  // power of two
  static constexpr std::uint64_t kMask = kCapacity - 1;

  struct Slot {
    std::atomic<TraceId> trace{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<std::int64_t> start_ns{0};
    std::atomic<std::int64_t> end_ns{0};
  };

  std::uint32_t thread_ordinal = 0;
  std::atomic<std::uint64_t> head{0};  // next write index (monotone)
  std::vector<Slot> slots{kCapacity};
};

std::mutex& RingsMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<SpanRing*>& Rings() {
  // Leaked (with their rings): spans written by a thread stay collectable
  // after the thread exits, and handles never dangle.
  static std::vector<SpanRing*>* rings = new std::vector<SpanRing*>();
  return *rings;
}

SpanRing& ThisThreadRing() {
  static thread_local SpanRing* ring = [] {
    auto* fresh = new SpanRing();
    std::lock_guard<std::mutex> lock(RingsMutex());
    fresh->thread_ordinal = static_cast<std::uint32_t>(Rings().size());
    Rings().push_back(fresh);
    return fresh;
  }();
  return *ring;
}

}  // namespace

TraceId NewTraceId() {
  if (!g_tracing_enabled.load(std::memory_order_relaxed)) return 0;
  static std::atomic<TraceId> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void EmitSpan(TraceId trace, const char* name, std::int64_t start_ns,
              std::int64_t end_ns) {
  if (trace == 0) return;
  SpanRing& ring = ThisThreadRing();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  SpanRing::Slot& slot = ring.slots[head & SpanRing::kMask];
  slot.trace.store(trace, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.end_ns.store(end_ns, std::memory_order_relaxed);
  ring.head.store(head + 1, std::memory_order_release);
}

std::vector<SpanRecord> CollectSpans() {
  std::vector<SpanRing*> rings;
  {
    std::lock_guard<std::mutex> lock(RingsMutex());
    rings = Rings();
  }
  std::vector<SpanRecord> out;
  for (SpanRing* ring : rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t lo =
        head > SpanRing::kCapacity ? head - SpanRing::kCapacity : 0;
    const size_t base = out.size();
    for (std::uint64_t i = lo; i < head; ++i) {
      const SpanRing::Slot& slot = ring->slots[i & SpanRing::kMask];
      SpanRecord record;
      record.trace_id = slot.trace.load(std::memory_order_relaxed);
      record.name = slot.name.load(std::memory_order_relaxed);
      record.start_ns = slot.start_ns.load(std::memory_order_relaxed);
      record.end_ns = slot.end_ns.load(std::memory_order_relaxed);
      record.thread = ring->thread_ordinal;
      out.push_back(record);
    }
    // Re-validate: any index the writer lapped while we read may be torn.
    const std::uint64_t head2 = ring->head.load(std::memory_order_acquire);
    const std::uint64_t lo2 =
        head2 > SpanRing::kCapacity ? head2 - SpanRing::kCapacity : 0;
    if (lo2 > lo) {
      const std::uint64_t torn = std::min(lo2 - lo, head - lo);
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(base),
                out.begin() + static_cast<std::ptrdiff_t>(base + torn));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.end_ns < b.end_ns;
            });
  return out;
}

std::vector<SpanRecord> CollectTrace(TraceId trace) {
  std::vector<SpanRecord> out;
  if (trace == 0) return out;
  for (const SpanRecord& record : CollectSpans()) {
    if (record.trace_id == trace) out.push_back(record);
  }
  return out;
}

}  // namespace rpc::obs

#endif  // RPC_OBS_DISABLED
