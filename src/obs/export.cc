#include "obs/export.h"

#include <cmath>
#include <cstdint>
#include <cstdio>

#include "common/stringutil.h"

namespace rpc::obs {

namespace {

/// Counters and bucket counts are integral; print them without an
/// exponent. Everything else gets enough digits to round-trip a reading.
std::string FormatMetricValue(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.0e15) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  return StrFormat("%.10g", value);
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

void AppendPromEscaped(std::string* out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

/// {label="value",...} with an optional extra (le) pair; empty string when
/// there are no labels at all.
std::string PromLabelBlock(const Labels& labels, const char* extra_key,
                           const std::string& extra_value) {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    AppendPromEscaped(&out, value);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    AppendPromEscaped(&out, extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

void VectorSink::Emit(std::string_view kind, std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({std::string(kind), std::string(payload)});
}

std::vector<VectorSink::Event> VectorSink::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<VectorSink::Event> VectorSink::EventsOfKind(
    std::string_view kind) const {
  std::vector<Event> out;
  for (const Event& event : events()) {
    if (event.kind == kind) out.push_back(event);
  }
  return out;
}

FileSink::FileSink(const std::string& path) : path_(path) {}

void FileSink::Emit(std::string_view kind, std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  std::FILE* file = std::fopen(path_.c_str(), "a");
  if (file == nullptr) return;
  std::fprintf(file, "%.*s\t%.*s\n", static_cast<int>(kind.size()),
               kind.data(), static_cast<int>(payload.size()), payload.data());
  std::fclose(file);
}

void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
}

std::string PrometheusText(const Registry& registry) {
  const std::vector<Registry::Sample> samples = registry.Snapshot();
  std::string out;
  std::string last_family;
  for (const Registry::Sample& sample : samples) {
    if (sample.name != last_family) {
      last_family = sample.name;
      if (!sample.help.empty()) {
        out += "# HELP " + sample.name + ' ';
        AppendPromEscaped(&out, sample.help);
        out += '\n';
      }
      out += "# TYPE " + sample.name + ' ';
      out += TypeName(sample.type);
      out += '\n';
    }
    if (sample.type == MetricType::kHistogram) {
      const HistogramSnapshot& hist = sample.histogram;
      std::int64_t cumulative = 0;
      for (size_t b = 0; b < hist.counts.size(); ++b) {
        cumulative += hist.counts[b];
        const std::string le =
            b < hist.upper_bounds.size()
                ? FormatMetricValue(hist.upper_bounds[b])
                : std::string("+Inf");
        out += sample.name + "_bucket" +
               PromLabelBlock(sample.labels, "le", le) + ' ' +
               StrFormat("%lld", static_cast<long long>(cumulative)) + '\n';
      }
      out += sample.name + "_sum" + PromLabelBlock(sample.labels, nullptr, "") +
             ' ' + FormatMetricValue(hist.sum) + '\n';
      out += sample.name + "_count" +
             PromLabelBlock(sample.labels, nullptr, "") + ' ' +
             StrFormat("%lld", static_cast<long long>(hist.count)) + '\n';
    } else {
      out += sample.name + PromLabelBlock(sample.labels, nullptr, "") + ' ' +
             FormatMetricValue(sample.value) + '\n';
    }
  }
  return out;
}

std::string SpansToJson(const std::vector<SpanRecord>& spans) {
  std::string out = "[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"trace\":\"" + StrFormat("%llu", static_cast<unsigned long long>(
                                                   span.trace_id)) +
           "\",\"name\":\"";
    AppendJsonEscaped(&out, span.name != nullptr ? span.name : "");
    out += StrFormat("\",\"thread\":%u,\"start_ns\":%lld,\"end_ns\":%lld}",
                     span.thread, static_cast<long long>(span.start_ns),
                     static_cast<long long>(span.end_ns));
  }
  out += ']';
  return out;
}

std::string JsonSnapshot(const Registry& registry, bool include_spans) {
  const std::vector<Registry::Sample> samples = registry.Snapshot();
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const Registry::Sample& sample : samples) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, sample.name);
    out += "\",\"type\":\"";
    out += TypeName(sample.type);
    out += "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [key, value] : sample.labels) {
      if (!first_label) out += ',';
      first_label = false;
      out += '"';
      AppendJsonEscaped(&out, key);
      out += "\":\"";
      AppendJsonEscaped(&out, value);
      out += '"';
    }
    out += '}';
    if (sample.type == MetricType::kHistogram) {
      const HistogramSnapshot& hist = sample.histogram;
      out += ",\"bounds\":[";
      for (size_t b = 0; b < hist.upper_bounds.size(); ++b) {
        if (b != 0) out += ',';
        out += FormatMetricValue(hist.upper_bounds[b]);
      }
      out += "],\"counts\":[";
      for (size_t b = 0; b < hist.counts.size(); ++b) {
        if (b != 0) out += ',';
        out += StrFormat("%lld", static_cast<long long>(hist.counts[b]));
      }
      out += "],\"sum\":" + FormatMetricValue(hist.sum) +
             ",\"count\":" +
             StrFormat("%lld", static_cast<long long>(hist.count));
    } else {
      out += ",\"value\":" + FormatMetricValue(sample.value);
    }
    out += '}';
  }
  out += "],\"spans\":";
  out += include_spans ? SpansToJson(CollectSpans()) : std::string("[]");
  out += '}';
  return out;
}

PeriodicFlusher::PeriodicFlusher(TelemetrySink* sink)
    : PeriodicFlusher(sink, Options()) {}

PeriodicFlusher::PeriodicFlusher(TelemetrySink* sink, Options options,
                                 const Registry* registry)
    : sink_(sink), options_(options), registry_(registry) {
  thread_ = std::thread([this] { Loop(); });
}

PeriodicFlusher::~PeriodicFlusher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  FlushNow();  // final snapshot so short-lived processes export something
}

void PeriodicFlusher::FlushNow() {
  sink_->Emit("metrics", JsonSnapshot(*registry_, options_.include_spans));
}

void PeriodicFlusher::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, options_.period, [this] { return stop_; })) break;
    lock.unlock();
    FlushNow();
    lock.lock();
  }
}

}  // namespace rpc::obs
