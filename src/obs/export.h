#ifndef RPC_OBS_EXPORT_H_
#define RPC_OBS_EXPORT_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rpc::obs {

/// Destination for telemetry events: periodic metric snapshots, slow-query
/// records, whatever a subsystem wants to surface. `kind` is a short event
/// class ("metrics", "slow_query", ...), `payload` one JSON object.
/// Implementations must be safe to call from any thread.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void Emit(std::string_view kind, std::string_view payload) = 0;
};

/// In-memory sink for tests and the demo.
class VectorSink : public TelemetrySink {
 public:
  struct Event {
    std::string kind;
    std::string payload;
  };

  void Emit(std::string_view kind, std::string_view payload) override;
  std::vector<Event> events() const;
  /// Events of one kind, in emission order.
  std::vector<Event> EventsOfKind(std::string_view kind) const;

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// Appends one line per event — "<kind>\t<payload>\n" — to a file.
class FileSink : public TelemetrySink {
 public:
  explicit FileSink(const std::string& path);
  void Emit(std::string_view kind, std::string_view payload) override;

 private:
  std::mutex mu_;
  std::string path_;
};

/// Appends `text` JSON-escaped (quotes, backslashes, control chars) to
/// `*out` — shared by the exporters and the serve slow-query writer.
void AppendJsonEscaped(std::string* out, std::string_view text);

/// Prometheus text exposition (version 0.0.4) of every registered series:
/// # HELP / # TYPE per family, counters/gauges as bare samples, histograms
/// as cumulative _bucket{le=...} + _sum + _count.
std::string PrometheusText(const Registry& registry = Registry::Global());

/// JSON object {"metrics": [...], "spans": [...]} — per-bucket (not
/// cumulative) histogram counts, spans from CollectSpans() (always [] in
/// RPC_OBS_DISABLED builds or when include_spans is false).
std::string JsonSnapshot(const Registry& registry = Registry::Global(),
                         bool include_spans = true);

/// The JSON array the "spans" field of JsonSnapshot carries, for callers
/// that already hold a filtered set (e.g. one trace's timeline).
std::string SpansToJson(const std::vector<SpanRecord>& spans);

/// Background thread emitting a "metrics" JsonSnapshot to a sink every
/// `period`. Stops (after one final flush) on destruction.
class PeriodicFlusher {
 public:
  struct Options {
    std::chrono::milliseconds period{1000};
    bool include_spans = false;
  };

  explicit PeriodicFlusher(TelemetrySink* sink);
  PeriodicFlusher(TelemetrySink* sink, Options options,
                  const Registry* registry = &Registry::Global());
  ~PeriodicFlusher();
  PeriodicFlusher(const PeriodicFlusher&) = delete;
  PeriodicFlusher& operator=(const PeriodicFlusher&) = delete;

  void FlushNow();

 private:
  void Loop();

  TelemetrySink* sink_;
  Options options_;
  const Registry* registry_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace rpc::obs

#endif  // RPC_OBS_EXPORT_H_
