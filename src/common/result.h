#ifndef RPC_COMMON_RESULT_H_
#define RPC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace rpc {

/// A value-or-status holder, the library's exception-free way of returning
/// fallible values (akin to absl::StatusOr).
///
/// Example:
///   rpc::Result<Matrix> inv = PseudoInverse(a);
///   if (!inv.ok()) return inv.status();
///   Use(inv.value());
template <typename T>
class Result {
 public:
  /// Implicit construction from a value means `return my_matrix;` works.
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status means error propagation is
  /// a single `return some_status;`. Constructing from an OK status without
  /// a value is a programming error.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace rpc

#define RPC_INTERNAL_CONCAT_IMPL(a, b) a##b
#define RPC_INTERNAL_CONCAT(a, b) RPC_INTERNAL_CONCAT_IMPL(a, b)

#define RPC_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

/// Assigns the value of a Result expression to `lhs` or propagates its error
/// status. Usable in functions returning rpc::Status or rpc::Result<U>.
#define RPC_ASSIGN_OR_RETURN(lhs, expr)                                  \
  RPC_INTERNAL_ASSIGN_OR_RETURN(                                         \
      RPC_INTERNAL_CONCAT(rpc_result_tmp_, __LINE__), lhs, expr)

#endif  // RPC_COMMON_RESULT_H_
