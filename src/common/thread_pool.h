#ifndef RPC_COMMON_THREAD_POOL_H_
#define RPC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rpc {

/// A small reusable worker pool for data-parallel loops and asynchronous
/// tasks. Workers are started once and reused across ParallelFor/Submit
/// calls, so per-call overhead is one wakeup, not a thread spawn.
///
/// Determinism contract: ParallelFor partitions [0, n) into fixed
/// contiguous chunks; which worker runs which chunk is scheduling-dependent
/// but the chunks themselves are not, so a body that writes only to
/// locations derived from its index range produces results independent of
/// thread count and scheduling.
///
/// The same workers also drain a task queue (Submit) — the serving tier's
/// execution substrate. A worker prefers pending tasks over joining an
/// in-flight ParallelFor job; the two modes never interleave within one
/// worker, and ParallelFor's barrier never waits on submitted tasks.
class ThreadPool {
 public:
  /// `num_threads` counts the calling thread too: 1 (or a negative value)
  /// means every ParallelFor runs inline with no worker threads at all;
  /// 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (worker threads + the calling thread); >= 1.
  int parallelism() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(begin, end, worker) over a fixed partition of [0, n) into
  /// contiguous chunks of `grain` indices (the last chunk may be shorter);
  /// grain < 1 is treated as 1. `worker` is in [0, parallelism()) and is
  /// stable for the duration of one chunk, so per-worker scratch indexed by
  /// it is race-free. Blocks until every chunk has run; the first exception
  /// thrown by any chunk is rethrown here (remaining chunks are skipped).
  /// Calls may not be nested (a body must not call ParallelFor on the same
  /// pool); concurrent calls from different threads are serialised.
  void ParallelFor(
      std::int64_t n, std::int64_t grain,
      const std::function<void(std::int64_t, std::int64_t, int)>& body);

  /// Enqueues `task` for asynchronous execution on one worker thread and
  /// returns immediately. Tasks run concurrently with each other and with
  /// ParallelFor jobs (on different workers); FIFO dispatch order, no
  /// fairness guarantee beyond that. A task must not call ParallelFor on
  /// this pool (the job barrier could then starve) but may Submit further
  /// tasks. Exceptions thrown by a task are swallowed after marking the
  /// task finished — tasks signal failures through their own channels
  /// (the serving tier records a Status per request).
  ///
  /// On a pool with no workers (parallelism() == 1) the task runs inline
  /// before Submit returns, preserving the pool's fully-serial mode.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished. Called by the
  /// destructor so queued tasks never outlive the pool.
  void WaitTasks();

 private:
  void WorkerLoop(int worker_index);
  /// Claims and runs chunks of the current job until none remain; returns
  /// the number of chunks this thread completed.
  std::int64_t RunChunks(int worker_index);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a new job, task or shutdown
  std::condition_variable done_cv_;  // caller: all chunks finished
  std::condition_variable tasks_cv_; // WaitTasks: task queue drained
  bool shutdown_ = false;
  std::uint64_t job_id_ = 0;  // bumped when a job is published

  // State of the in-flight job, written under mu_ before the job is
  // published; chunk claiming is lock-free via next_chunk_.
  const std::function<void(std::int64_t, std::int64_t, int)>* body_ = nullptr;
  std::int64_t n_ = 0;
  std::int64_t grain_ = 1;
  std::int64_t num_chunks_ = 0;
  std::int64_t chunks_done_ = 0;
  int active_workers_ = 0;  // workers currently inside RunChunks
  std::atomic<std::int64_t> next_chunk_{0};
  std::atomic<bool> job_failed_{false};
  std::exception_ptr first_error_;

  // Submitted tasks (FIFO) and the number currently executing; guarded by
  // mu_. Workers prefer tasks over joining a published job.
  std::deque<std::function<void()>> tasks_;
  int tasks_running_ = 0;

  std::mutex call_mu_;  // serialises whole ParallelFor invocations
};

}  // namespace rpc

#endif  // RPC_COMMON_THREAD_POOL_H_
