#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace rpc {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling removes modulo bias.
  const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % n);
  uint64_t x;
  do {
    x = NextUint64();
  } while (x >= limit);
  return x % n;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::LogNormal(double mu_log, double sigma_log) {
  return std::exp(Gaussian(mu_log, sigma_log));
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  for (int i = n - 1; i > 0; --i) {
    const int j = static_cast<int>(UniformInt(static_cast<uint64_t>(i) + 1));
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

}  // namespace rpc
