#ifndef RPC_COMMON_BOUNDED_QUEUE_H_
#define RPC_COMMON_BOUNDED_QUEUE_H_

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace rpc {

/// A bounded multi-producer multi-consumer FIFO queue. The fixed capacity
/// is the backpressure mechanism of the serving tier: producers pushing
/// into a full queue block (Push) or are rejected (TryPush) instead of
/// growing an unbounded backlog. Consumers block on Pop until an item or
/// Close() arrives.
///
/// Close() transitions the queue to draining: further pushes fail, but
/// items already queued are still handed out; once empty, Pop returns
/// nullopt to every waiter. All operations are safe to call concurrently
/// from any number of threads.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(int capacity) : capacity_(capacity) {
    assert(capacity >= 1);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  int capacity() const { return capacity_; }

  int size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(items_.size());
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Largest queue depth observed by any push so far — the admission
  /// high-water mark the serving stats report.
  int peak_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }

  /// Blocks while the queue is full; returns false when the queue was (or
  /// became, while waiting) closed and the item was not enqueued.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] {
      return closed_ || static_cast<int>(items_.size()) < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    peak_ = std::max(peak_, static_cast<int>(items_.size()));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || static_cast<int>(items_.size()) >= capacity_) return false;
    items_.push_back(std::move(item));
    peak_ = std::max(peak_, static_cast<int>(items_.size()));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained
  /// (then nullopt).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    const bool drained = closed_ && items_.empty();
    lock.unlock();
    not_full_.notify_one();
    if (drained) drained_.notify_all();
    return item;
  }

  /// Non-blocking pop; nullopt when currently empty.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    const bool drained = closed_ && items_.empty();
    lock.unlock();
    not_full_.notify_one();
    if (drained) drained_.notify_all();
    return item;
  }

  /// Rejects future pushes and wakes every blocked producer and consumer;
  /// queued items remain poppable (drain semantics). Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Close(), then block until consumers have popped every queued item —
  /// the graceful-shutdown guarantee that no accepted event is dropped.
  /// Every item admitted by a Push/TryPush that returned true before this
  /// call is handed to a consumer before CloseAndDrain returns; consumers
  /// must keep popping (Pop returns the remaining items, then nullopt).
  /// Safe to call from several threads; all of them block until drained.
  void CloseAndDrain() {
    std::unique_lock<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
    drained_.wait(lock, [&] { return items_.empty(); });
  }

 private:
  const int capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::condition_variable drained_;
  std::deque<T> items_;
  bool closed_ = false;
  int peak_ = 0;
};

/// Why a push did not (or did) enqueue its item.
enum class QueuePushResult {
  kOk,       // enqueued
  kFull,     // occupancy at/over the lane's admission limit (TryPush only)
  kClosed,   // queue closed before the item could be enqueued
  kTimeout,  // deadline passed while blocked on a full queue (PushUntil only)
};

/// A bounded MPMC queue with priority lanes and per-lane admission
/// watermarks — the traffic-shaping half of the serving tier's QoS story.
///
///   * One shared capacity across `lanes` FIFO lanes; lane 0 is the most
///     important. Pop hands out the front of the lowest-indexed non-empty
///     lane, so under backlog high-priority items overtake low ones while
///     each lane stays FIFO internally.
///   * Each lane has an admission limit (<= capacity, default = capacity):
///     a push into lane L is admitted only while total occupancy is below
///     limit(L). Giving deeper lanes smaller limits reserves headroom for
///     the important lanes — under saturation low-priority pushes are shed
///     first while lane 0 can still use the full capacity.
///   * Push blocks until admitted, closed, or (PushUntil) a deadline;
///     TryPush refuses instead of blocking. Close() keeps the drain
///     semantics of BoundedQueue: queued items remain poppable, then Pop
///     returns nullopt.
///
/// All operations are safe to call concurrently from any number of threads.
template <typename T>
class PriorityBoundedQueue {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  PriorityBoundedQueue(int capacity, int lanes)
      : capacity_(capacity),
        lanes_(static_cast<size_t>(lanes)),
        limits_(static_cast<size_t>(lanes), capacity) {
    assert(capacity >= 1);
    assert(lanes >= 1);
  }

  PriorityBoundedQueue(const PriorityBoundedQueue&) = delete;
  PriorityBoundedQueue& operator=(const PriorityBoundedQueue&) = delete;

  int capacity() const { return capacity_; }
  int lanes() const { return static_cast<int>(lanes_.size()); }

  /// Sets lane `lane`'s admission limit, clamped into [1, capacity]. Not
  /// synchronised against concurrent pushes — configure before use.
  void SetLaneLimit(int lane, int limit) {
    limits_[static_cast<size_t>(lane)] =
        std::clamp(limit, 1, capacity_);
  }

  int lane_limit(int lane) const { return limits_[static_cast<size_t>(lane)]; }

  int size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Largest total occupancy observed by any push — the admission
  /// high-water mark the serving stats report as peak_queue_depth.
  int peak_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }

  /// Blocks while occupancy is at/over the lane's limit; kClosed when the
  /// queue was (or became, while waiting) closed.
  QueuePushResult Push(T item, int lane) {
    return PushUntil(std::move(item), lane, TimePoint::max());
  }

  /// Push with a wall-clock bound: gives up with kTimeout once `deadline`
  /// passes while the lane is still over its limit. TimePoint::max() waits
  /// indefinitely (identical to Push).
  QueuePushResult PushUntil(T item, int lane, TimePoint deadline) {
    const int limit = limits_[static_cast<size_t>(lane)];
    std::unique_lock<std::mutex> lock(mu_);
    const auto admissible = [&] { return closed_ || size_ < limit; };
    if (deadline == TimePoint::max()) {
      not_full_.wait(lock, admissible);
    } else if (!not_full_.wait_until(lock, deadline, admissible)) {
      return QueuePushResult::kTimeout;
    }
    if (closed_) return QueuePushResult::kClosed;
    Enqueue(std::move(item), lane);
    lock.unlock();
    not_empty_.notify_one();
    return QueuePushResult::kOk;
  }

  /// Non-blocking push; kFull when the lane is at/over its limit.
  QueuePushResult TryPush(T item, int lane) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return QueuePushResult::kClosed;
    if (size_ >= limits_[static_cast<size_t>(lane)]) {
      return QueuePushResult::kFull;
    }
    Enqueue(std::move(item), lane);
    lock.unlock();
    not_empty_.notify_one();
    return QueuePushResult::kOk;
  }

  /// Blocks until an item is available or the queue is closed and drained
  /// (then nullopt). Highest-priority (lowest-index) non-empty lane first.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || size_ > 0; });
    if (size_ == 0) return std::nullopt;  // closed and drained
    return Dequeue(lock);
  }

  /// Non-blocking pop; nullopt when currently empty.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (size_ == 0) return std::nullopt;
    return Dequeue(lock);
  }

  /// Rejects future pushes and wakes every blocked producer and consumer;
  /// queued items remain poppable (drain semantics). Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

 private:
  void Enqueue(T item, int lane) {
    lanes_[static_cast<size_t>(lane)].push_back(std::move(item));
    ++size_;
    peak_ = std::max(peak_, size_);
  }

  std::optional<T> Dequeue(std::unique_lock<std::mutex>& lock) {
    for (auto& lane : lanes_) {
      if (lane.empty()) continue;
      std::optional<T> item(std::move(lane.front()));
      lane.pop_front();
      --size_;
      lock.unlock();
      not_full_.notify_all();  // waiters have different limits
      return item;
    }
    return std::nullopt;  // unreachable: size_ > 0
  }

  const int capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<std::deque<T>> lanes_;
  std::vector<int> limits_;
  int size_ = 0;
  int peak_ = 0;
  bool closed_ = false;
};

}  // namespace rpc

#endif  // RPC_COMMON_BOUNDED_QUEUE_H_
