#ifndef RPC_COMMON_BOUNDED_QUEUE_H_
#define RPC_COMMON_BOUNDED_QUEUE_H_

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace rpc {

/// A bounded multi-producer multi-consumer FIFO queue. The fixed capacity
/// is the backpressure mechanism of the serving tier: producers pushing
/// into a full queue block (Push) or are rejected (TryPush) instead of
/// growing an unbounded backlog. Consumers block on Pop until an item or
/// Close() arrives.
///
/// Close() transitions the queue to draining: further pushes fail, but
/// items already queued are still handed out; once empty, Pop returns
/// nullopt to every waiter. All operations are safe to call concurrently
/// from any number of threads.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(int capacity) : capacity_(capacity) {
    assert(capacity >= 1);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  int capacity() const { return capacity_; }

  int size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(items_.size());
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Largest queue depth observed by any push so far — the admission
  /// high-water mark the serving stats report.
  int peak_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }

  /// Blocks while the queue is full; returns false when the queue was (or
  /// became, while waiting) closed and the item was not enqueued.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] {
      return closed_ || static_cast<int>(items_.size()) < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    peak_ = std::max(peak_, static_cast<int>(items_.size()));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || static_cast<int>(items_.size()) >= capacity_) return false;
    items_.push_back(std::move(item));
    peak_ = std::max(peak_, static_cast<int>(items_.size()));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained
  /// (then nullopt).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    const bool drained = closed_ && items_.empty();
    lock.unlock();
    not_full_.notify_one();
    if (drained) drained_.notify_all();
    return item;
  }

  /// Non-blocking pop; nullopt when currently empty.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    const bool drained = closed_ && items_.empty();
    lock.unlock();
    not_full_.notify_one();
    if (drained) drained_.notify_all();
    return item;
  }

  /// Rejects future pushes and wakes every blocked producer and consumer;
  /// queued items remain poppable (drain semantics). Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Close(), then block until consumers have popped every queued item —
  /// the graceful-shutdown guarantee that no accepted event is dropped.
  /// Every item admitted by a Push/TryPush that returned true before this
  /// call is handed to a consumer before CloseAndDrain returns; consumers
  /// must keep popping (Pop returns the remaining items, then nullopt).
  /// Safe to call from several threads; all of them block until drained.
  void CloseAndDrain() {
    std::unique_lock<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
    drained_.wait(lock, [&] { return items_.empty(); });
  }

 private:
  const int capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::condition_variable drained_;
  std::deque<T> items_;
  bool closed_ = false;
  int peak_ = 0;
};

}  // namespace rpc

#endif  // RPC_COMMON_BOUNDED_QUEUE_H_
