#include "common/status.h"

namespace rpc {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace rpc
