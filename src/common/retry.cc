#include "common/retry.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "common/stringutil.h"

namespace rpc {

namespace {

double SteadyNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RetryState::RetryState(const RetryPolicy& policy, Rng* rng, NowFn now)
    : policy_(policy), rng_(rng), now_(now ? std::move(now) : SteadyNow) {
  assert((rng_ != nullptr || policy_.jitter_fraction == 0.0) &&
         "jitter requires an Rng");
  Reset();
}

void RetryState::Reset() {
  attempts_ = 0;
  next_backoff_ = std::max(policy_.initial_backoff_seconds, 0.0);
  deadline_at_ =
      policy_.deadline_seconds > 0.0 ? now_() + policy_.deadline_seconds : 0.0;
}

bool RetryState::NextDelay(double* delay_seconds) {
  ++attempts_;
  if (policy_.max_attempts > 0 && attempts_ > policy_.max_attempts) {
    return false;
  }
  double delay = next_backoff_;
  next_backoff_ = std::min(next_backoff_ * std::max(policy_.backoff_multiplier,
                                                    1.0),
                           policy_.max_backoff_seconds);
  if (policy_.jitter_fraction > 0.0) {
    delay *= rng_->Uniform(1.0 - policy_.jitter_fraction,
                           1.0 + policy_.jitter_fraction);
  }
  if (deadline_at_ > 0.0) {
    const double remaining = deadline_at_ - now_();
    if (remaining <= 0.0) return false;
    // A shortened final wait is still useful; a wait that would end past
    // the deadline is not.
    delay = std::min(delay, remaining);
  }
  *delay_seconds = delay;
  return true;
}

Status RetryState::NextDelayOr(const Status& last_error,
                               double* delay_seconds) {
  if (NextDelay(delay_seconds)) return Status::Ok();
  const bool out_of_time =
      deadline_at_ > 0.0 && now_() >= deadline_at_;
  const std::string detail = StrFormat(
      "retry budget exhausted after %d attempt(s): %s", attempts_ - 1,
      last_error.ToString().c_str());
  return out_of_time ? Status::DeadlineExceeded(detail)
                     : Status::Unavailable(detail);
}

}  // namespace rpc
