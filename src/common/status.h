#ifndef RPC_COMMON_STATUS_H_
#define RPC_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace rpc {

/// Error categories used across the library. Mirrors the usual database
/// library convention (RocksDB/Abseil style) since exceptions are not used.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kFailedPrecondition,// object not in a state where the call is legal
  kOutOfRange,        // index/parameter outside its domain
  kNotFound,          // lookup failed (column name, file, ...)
  kDataLoss,          // unreadable/corrupt input data
  kNumericalError,    // algorithm failed to converge / singular matrix
  kInternal,          // invariant violation inside the library
  kDeadlineExceeded,  // an operation's time budget ran out (RPC timeout)
  kUnavailable,       // peer/transport gone; retrying may succeed
  kAborted,           // fenced off: a newer epoch owns the lineage
};

/// Returns a stable human-readable name such as "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Value-semantic success/error indicator. A default-constructed Status is
/// OK. Non-OK statuses carry a code and a message describing the failure.
///
/// Example:
///   rpc::Status s = learner.Fit(data);
///   if (!s.ok()) { std::cerr << s.ToString() << "\n"; return 1; }
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace rpc

/// Propagates a non-OK status to the caller. Usable in functions returning
/// rpc::Status.
#define RPC_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::rpc::Status rpc_status_tmp_ = (expr);      \
    if (!rpc_status_tmp_.ok()) return rpc_status_tmp_; \
  } while (false)

#endif  // RPC_COMMON_STATUS_H_
