#ifndef RPC_COMMON_RETRY_H_
#define RPC_COMMON_RETRY_H_

#include <functional>

#include "common/rng.h"
#include "common/status.h"

namespace rpc {

/// Shared retry/backoff configuration for anything that talks to a flaky
/// peer (the replication session layer is the first user). The schedule is
/// classic exponential backoff with multiplicative jitter, bounded by two
/// independent budgets: an attempt count and a wall-clock deadline. Either
/// budget at 0 means unbounded.
struct RetryPolicy {
  /// Delay before the first retry; later retries multiply it.
  double initial_backoff_seconds = 0.05;
  /// Ceiling the exponential schedule saturates at.
  double max_backoff_seconds = 2.0;
  /// Growth factor between consecutive delays (>= 1).
  double backoff_multiplier = 2.0;
  /// Each delay is scaled by a uniform draw from [1 - j, 1 + j]; 0 makes
  /// the schedule fully deterministic. Jitter decorrelates a fleet of
  /// standbys that all lost the same primary at the same instant.
  double jitter_fraction = 0.2;
  /// Failures tolerated before giving up; 0 = unlimited.
  int max_attempts = 8;
  /// Total wall-clock budget measured from Begin() (or construction); a
  /// retry whose delay would end past the deadline is refused. 0 = none.
  double deadline_seconds = 0.0;
};

/// One retry sequence: feed it every failure, sleep what it hands back,
/// stop when it refuses. Reset() on success restarts the schedule (and the
/// deadline budget), so a long-lived session pays the full budget per
/// outage, not per lifetime.
///
/// Time and randomness are injected — `now` is any monotonic seconds
/// source and the jitter draws from a caller-owned Rng — so unit tests
/// replay the exact schedule deterministically with a fake clock.
class RetryState {
 public:
  using NowFn = std::function<double()>;

  /// `rng` may be null only when the policy's jitter_fraction is 0.
  /// A default-constructed `now` uses std::chrono::steady_clock.
  RetryState(const RetryPolicy& policy, Rng* rng, NowFn now = {});

  /// Restarts the attempt counter, the backoff ladder and the deadline
  /// window (the deadline re-anchors at now()).
  void Reset();

  /// Records one failure. Returns true with the next delay (jittered,
  /// capped, clamped into the remaining deadline) in *delay_seconds, or
  /// false when a budget is exhausted — the caller should surface the
  /// underlying error.
  bool NextDelay(double* delay_seconds);

  /// Convenience wrapper: NextDelay, mapping exhaustion onto a
  /// DeadlineExceeded/Unavailable status that wraps `last_error`.
  Status NextDelayOr(const Status& last_error, double* delay_seconds);

  int attempts() const { return attempts_; }

 private:
  const RetryPolicy policy_;
  Rng* rng_;
  NowFn now_;
  int attempts_ = 0;
  double next_backoff_ = 0.0;
  double deadline_at_ = 0.0;  // absolute, in now() units; 0 = none
};

}  // namespace rpc

#endif  // RPC_COMMON_RETRY_H_
