#ifndef RPC_COMMON_RNG_H_
#define RPC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace rpc {

/// Deterministic pseudo-random number generator (xoshiro256++). All
/// stochastic pieces of the library (learner initialisation, synthetic data
/// generators, property tests) draw from this so experiments are exactly
/// reproducible from a seed, independent of the platform's std::mt19937
/// distribution implementations.
class Rng {
 public:
  /// Seeds the four-word state from `seed` via splitmix64, so nearby seeds
  /// produce unrelated streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit word.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached pair).
  double Gaussian();

  /// Normal with given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Log-normal: exp(N(mu_log, sigma_log)).
  double LogNormal(double mu_log, double sigma_log);

  /// In-place Fisher-Yates shuffle of indices [0, n).
  std::vector<int> Permutation(int n);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace rpc

#endif  // RPC_COMMON_RNG_H_
