#ifndef RPC_COMMON_CRC32C_H_
#define RPC_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace rpc {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// checksum the durable tier stamps on every write-ahead-log record and
/// snapshot payload. Software slice-by-8 table implementation: ~1 GB/s,
/// far above the fsync-bound log path it protects.
///
/// `Crc32c(data, n)` is the one-shot form; `Crc32cExtend` continues a
/// running checksum (pass the previous return value) so multi-buffer
/// payloads need no concatenation.
std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t length);

inline std::uint32_t Crc32c(const void* data, std::size_t length) {
  return Crc32cExtend(0, data, length);
}

}  // namespace rpc

#endif  // RPC_COMMON_CRC32C_H_
