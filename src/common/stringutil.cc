#include "common/stringutil.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace rpc {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      break;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool ParseDouble(std::string_view text, double* out) {
  const std::string_view trimmed = Trim(text);
  if (trimmed.empty()) return false;
  std::string buffer(trimmed);
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return false;
  *out = value;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.append(sep);
    out += items[i];
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  return StrFormat("%.*g", digits, value);
}

}  // namespace rpc
