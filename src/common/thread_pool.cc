#include "common/thread_pool.h"

#include <algorithm>

namespace rpc {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads == 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads = std::max(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int w = 1; w < num_threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  // Drain submitted tasks first: a queued task may reference state the
  // caller destroys right after the pool, so it must run (or at least
  // finish) before the workers go away.
  WaitTasks();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Fully-serial pool: run inline, mirroring ParallelFor's inline path.
    try {
      task();
    } catch (...) {
      // Tasks report failures through their own channels; see header.
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitTasks() {
  if (workers_.empty()) return;  // inline mode: Submit already ran the task
  std::unique_lock<std::mutex> lock(mu_);
  tasks_cv_.wait(lock, [&] { return tasks_.empty() && tasks_running_ == 0; });
}

std::int64_t ThreadPool::RunChunks(int worker_index) {
  std::int64_t completed = 0;
  for (;;) {
    const std::int64_t chunk = next_chunk_.fetch_add(1);
    if (chunk >= num_chunks_) break;
    if (!job_failed_.load()) {
      const std::int64_t begin = chunk * grain_;
      const std::int64_t end = std::min(n_, begin + grain_);
      try {
        (*body_)(begin, end, worker_index);
      } catch (...) {
        // Keep the first error; later chunks are claimed but not run.
        if (!job_failed_.exchange(true)) {
          std::lock_guard<std::mutex> lock(mu_);
          first_error_ = std::current_exception();
        }
      }
    }
    ++completed;
  }
  return completed;
}

void ThreadPool::WorkerLoop(int worker_index) {
  std::uint64_t last_job = 0;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || !tasks_.empty() || job_id_ != last_job;
      });
      if (!tasks_.empty()) {
        // Tasks win over joining a job: the job barrier is completed by the
        // publishing caller regardless, while a task has exactly one home.
        task = std::move(tasks_.front());
        tasks_.pop_front();
        ++tasks_running_;
      } else if (job_id_ != last_job) {
        last_job = job_id_;
        ++active_workers_;
      } else {
        // shutdown_ — and the queue is drained (destructor ran WaitTasks).
        return;
      }
    }

    if (task) {
      try {
        task();
      } catch (...) {
        // Tasks report failures through their own channels; see header.
      }
      std::lock_guard<std::mutex> lock(mu_);
      --tasks_running_;
      if (tasks_.empty() && tasks_running_ == 0) tasks_cv_.notify_all();
      continue;
    }

    const std::int64_t completed = RunChunks(worker_index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_workers_;
      chunks_done_ += completed;
      // Wakes the caller (chunks_done_ == num_chunks_) and any publisher
      // waiting for stragglers to leave RunChunks (active_workers_ == 0).
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    std::int64_t n, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t, int)>& body) {
  if (n <= 0) return;
  grain = std::max<std::int64_t>(grain, 1);
  const std::int64_t num_chunks = (n + grain - 1) / grain;

  if (workers_.empty() || num_chunks == 1) {
    // Inline fast path: no publication, no wakeups.
    for (std::int64_t chunk = 0; chunk < num_chunks; ++chunk) {
      const std::int64_t begin = chunk * grain;
      body(begin, std::min(n, begin + grain), /*worker=*/0);
    }
    return;
  }

  std::lock_guard<std::mutex> call_lock(call_mu_);
  {
    std::unique_lock<std::mutex> lock(mu_);
    // A worker that accepted the previous job but was scheduled late may
    // still be inside RunChunks reading the job fields; publishing over
    // them would let it claim chunks of the new job through a half-written
    // state. Wait until every straggler has left before rewriting.
    done_cv_.wait(lock, [&] { return active_workers_ == 0; });
    body_ = &body;
    n_ = n;
    grain_ = grain;
    num_chunks_ = num_chunks;
    chunks_done_ = 0;
    next_chunk_.store(0);
    job_failed_.store(false);
    first_error_ = nullptr;
    ++job_id_;
  }
  work_cv_.notify_all();

  const std::int64_t completed = RunChunks(/*worker_index=*/0);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    chunks_done_ += completed;
    done_cv_.wait(lock, [&] { return chunks_done_ == num_chunks_; });
    error = first_error_;
    first_error_ = nullptr;
    body_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace rpc
