#ifndef RPC_COMMON_STRINGUTIL_H_
#define RPC_COMMON_STRINGUTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rpc {

/// Splits `text` on `delim`, keeping empty fields ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Parses a double; returns false on empty/garbage/partial input.
bool ParseDouble(std::string_view text, double* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins items with `sep`.
std::string Join(const std::vector<std::string>& items, std::string_view sep);

/// Formats a double with `digits` significant digits, trimming zeros the way
/// table output wants ("0.5000" stays, "1e-12" stays readable).
std::string FormatDouble(double value, int digits = 6);

}  // namespace rpc

#endif  // RPC_COMMON_STRINGUTIL_H_
