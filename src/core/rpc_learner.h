#ifndef RPC_CORE_RPC_LEARNER_H_
#define RPC_CORE_RPC_LEARNER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/rpc_curve.h"
#include "linalg/matrix.h"
#include "obs/trace.h"
#include "opt/curve_projection.h"
#include "order/orientation.h"

namespace rpc::core {

class FitWorkspace;

/// How Step 4 (re-projection of all n rows) is executed across outer
/// iterations.
enum class ReprojectionMode {
  /// Every iteration re-projects every row from scratch: coarse grid over
  /// the whole of [0, 1] plus per-bracket refinement. Today's behaviour and
  /// the reference the warm-start path is validated against.
  kFull,
  /// Warm-started incremental re-projection (opt::IncrementalProjector):
  /// after the first iteration each row is refined locally around its
  /// previous s* — near convergence the curve barely moves, so the optimal
  /// s* shifts only slightly per iteration (Eq. 19-20). A row falls back to
  /// the full global search when its local result is suspect (bracket-edge
  /// argmin, or squared distance above the certified curve-movement bound),
  /// and every `reprojection_resync_period`-th iteration re-projects all
  /// rows globally as a safety resync. On convergence the final scores and
  /// J always come from one last full projection (skipped only when the
  /// last in-loop pass already was one), so the reported fit quality is
  /// measured exactly like kFull. Mid-trajectory J values are warm-measured
  /// upper bounds on the full-search J (within the certified-fallback
  /// slack), so convergence/rollback decisions can differ from kFull's by
  /// that slack. Multi-x faster on large n for the refining methods
  /// (kGridOnly has nothing to localise and runs full passes); final J
  /// matches kFull within `tolerance` on the paper's fixtures.
  kWarmStart,
};

/// How the interior control points are initialised (Step 2 of Algorithm 1).
enum class RpcInit {
  /// Two random data rows, ordered along the diagonal — the paper's
  /// "randomly select samples as control points".
  kRandomSamples,
  /// Per-attribute 1/3 and 2/3 quantiles of the data (deterministic).
  kQuantiles,
  /// 1/3 and 2/3 of the worst-to-best diagonal (deterministic, shape-free).
  kDiagonal,
};

/// Degree of the Bezier ranking curve. The paper fixes k = 3 (Section 4.2:
/// k < 3 is too simple, k > 3 overfits); other degrees are exposed for the
/// ablation of that claim (E10). Degrees other than 3 use the same
/// alternating scheme with the generalised Bernstein design matrix.
struct RpcLearnOptions {
  int degree = 3;
  int max_iterations = 300;
  /// ΔJ threshold xi of Algorithm 1.
  double tolerance = 1e-7;
  /// Projection solver (Step 4): GSS by default.
  opt::ProjectionOptions projection;
  /// Step 4 execution strategy: kFull re-projects from scratch each
  /// iteration; kWarmStart reuses each row's previous s* (see
  /// ReprojectionMode). Default off — results are equivalent but not
  /// bit-identical mid-trajectory, so opt in where fit time matters.
  ReprojectionMode reprojection = ReprojectionMode::kFull;
  /// Resync heuristic for kWarmStart: every `reprojection_resync_period`-th
  /// iteration runs the full global search for every row, bounding how long
  /// a row can track a stale local minimum; between resyncs only suspect
  /// rows (bracket-edge argmin or a squared distance above the certified
  /// curve-movement bound) pay for the global search. <= 1 resyncs every
  /// iteration (kFull behaviour at kFull cost).
  int reprojection_resync_period = 8;
  /// Adaptive warm-start brackets (kWarmStart only): shrink each row's
  /// bracket from its observed per-iteration s* drift and skip the bracket
  /// probe entirely for rows whose drift is below tolerance (see
  /// opt::IncrementalProjectorOptions::adaptive_brackets). The same
  /// fallback safety net and final full verification apply, so the
  /// reported fit quality is measured exactly as without it; the
  /// trajectory is equivalent but not bit-identical to the fixed-width
  /// bracket. The streaming tier's warm refresh enables this.
  bool reprojection_adaptive_brackets = false;
  /// Keep p0/p3 pinned to the alpha corners (Proposition 1 — guarantees the
  /// meta-rules). When false, end points are learned too and merely clamped
  /// into [0,1]^d, the freer behaviour Table 2's printed end points suggest.
  bool fix_end_points = true;
  /// Clamp margin keeping interior control points strictly inside (0,1).
  double clamp_margin = 1e-3;
  /// Richardson preconditioner (Section 5); off reproduces the unstable raw
  /// iteration for ablation E11.
  bool use_preconditioner = true;
  /// Fixed Richardson step; unset = 2 / (lambda_min + lambda_max) (Eq. 28).
  std::optional<double> gamma;
  /// Richardson steps per outer iteration.
  int richardson_steps_per_iteration = 4;
  /// Use the direct pseudo-inverse solve P = X (MZ)^+ (Eq. 26) instead of
  /// Richardson — the ill-conditioned baseline of ablation E11.
  bool use_pseudo_inverse_update = false;
  RpcInit init = RpcInit::kRandomSamples;
  uint64_t seed = 1234;
  /// Record J after every iteration (Proposition 2 diagnostics).
  bool record_history = true;
  /// Number of independent runs (different random initialisations); the
  /// fit with the lowest J wins. Theorem 3 guarantees a minimiser exists;
  /// restarts are the practical way to approach it when the alternating
  /// scheme lands in a local optimum. Only meaningful with
  /// RpcInit::kRandomSamples (deterministic inits always produce the same
  /// run). Must be >= 1.
  int restarts = 1;
  /// Worker-thread budget for Fit: 0 = hardware concurrency, 1 = fully
  /// serial (the pre-parallel behaviour), n > 1 = exactly n threads. The
  /// budget drives both levels of parallelism — Step 4's batch projection
  /// (rows partitioned across the pool, one evaluation workspace per
  /// worker) and, when restarts > 1, the independent restarts themselves
  /// (safe because each restart derives its RNG stream from its own seed).
  /// Results are bit-identical for every value: per-row projections are
  /// independent, the J reduction is ordered, and the best-restart
  /// selection scans in restart order.
  int num_threads = 0;
  /// Telemetry trace-context: a nonzero id makes Fit/Refit emit per-stage
  /// spans (fit.projection / fit.update / fit.convergence per outer
  /// iteration) under this trace. Never touches the fit arithmetic.
  obs::TraceId trace_id = 0;
};

/// Output of Algorithm 1.
struct RpcFitResult {
  RpcCurve curve;
  /// Projection scores s_i in [0,1] for the training rows (higher = closer
  /// to the best corner = ranked better).
  linalg::Vector scores;
  /// Final summed squared residual J(P*, s*) (Eq. 19).
  double final_j = 0.0;
  /// 1 - J / total scatter, the Section 6.2.1 metric.
  double explained_variance = 0.0;
  int iterations = 0;
  /// True when the ΔJ < xi criterion fired (as opposed to the iteration cap
  /// or the ΔJ < 0 safeguard).
  bool converged = false;
  /// J(P_t, s_t) per iteration when record_history is set; non-increasing
  /// by Proposition 2.
  std::vector<double> j_history;
  /// Wall-clock seconds this Fit spent in Step 4 (projection, including the
  /// final verification passes) and in Step 5 (normal-equation streaming +
  /// control-point update), summed over every restart that ran — the stage
  /// split `bench_projection_throughput --fit` reports.
  double projection_seconds = 0.0;
  double update_seconds = 0.0;
};

/// Warm-start seed for RpcLearner::Refit: the previous (live) model's
/// control points and, optionally, its per-row projection indices.
struct RpcWarmStartState {
  /// d x (k+1), columns p0..pk, in the normalised space of the data the
  /// refit will run on. A model fit under different normalisation bounds
  /// must be remapped first (Eq. 16: affine maps move control points, not
  /// scores) — see stream::RemapControlPoints.
  linalg::Matrix control_points;
  /// Per-row s* aligned with the refit's rows (empty = seed the control
  /// points only). Under ReprojectionMode::kWarmStart these are imported
  /// into the incremental projector (opt::IncrementalProjector::
  /// ImportState), so the very first outer iteration runs warm local
  /// refinements instead of the cold full search.
  linalg::Vector scores;
};

/// Learns a ranking principal curve from observations already normalised
/// into [0,1]^d (Algorithm 1). Use RpcRanker for the end-to-end pipeline on
/// raw data.
class RpcLearner {
 public:
  explicit RpcLearner(RpcLearnOptions options = {});

  /// `normalized_data` is n x d with every entry in [0,1] (small numerical
  /// slack allowed); n >= 4 rows are required to determine the cubic.
  Result<RpcFitResult> Fit(const linalg::Matrix& normalized_data,
                           const order::Orientation& alpha) const;

  /// Warm refit: one fit trajectory (no restarts — the seed pins the
  /// basin) seeded from `seed` instead of the Step 2 initialisation. With
  /// kWarmStart reprojection and per-row seed scores, a refresh whose data
  /// barely moved converges in a few warm outer iterations instead of a
  /// cold multi-restart fit — the streaming tier's model-refresh
  /// primitive. The returned scores and J come from the same final full
  /// projection as Fit, so refit quality is measured identically.
  /// Deterministic: same data + same seed state => bit-identical result,
  /// for every thread count.
  Result<RpcFitResult> Refit(const linalg::Matrix& normalized_data,
                             const order::Orientation& alpha,
                             const RpcWarmStartState& seed) const;

  const RpcLearnOptions& options() const { return options_; }

 private:
  /// One restart. `pool` (nullable) parallelises the per-iteration batch
  /// projections and the update-stage segment accumulation; when restarts
  /// run concurrently each gets a null pool instead, so the two levels of
  /// parallelism never nest. `workspace` holds the Step 5 scratch and
  /// persists across outer iterations and restarts (serial restarts share
  /// one; concurrent restarts use one per worker). `warm_seed` (nullable)
  /// replaces the Step 2 initialisation with a previous model's state.
  Result<RpcFitResult> FitOnce(const linalg::Matrix& normalized_data,
                               const order::Orientation& alpha, uint64_t seed,
                               ThreadPool* pool, FitWorkspace* workspace,
                               const RpcWarmStartState* warm_seed) const;

  RpcLearnOptions options_;
};

/// Affinely rescales scores so the worst maps to 0 and the best to 1 — the
/// presentation convention of Table 2 (Luxembourg 1.0000, Swaziland 0).
linalg::Vector RescaleToUnit(const linalg::Vector& scores);

}  // namespace rpc::core

#endif  // RPC_CORE_RPC_LEARNER_H_
