#ifndef RPC_CORE_RPC_CURVE_H_
#define RPC_CORE_RPC_CURVE_H_

#include "common/result.h"
#include "curve/bezier.h"
#include "linalg/matrix.h"
#include "order/monotonicity.h"
#include "order/orientation.h"

namespace rpc::core {

/// A ranking principal curve (Definition 7): a Bezier curve in [0,1]^d
/// whose end points sit at the orientation's worst/best corners
/// (p0 = (1-alpha)/2, p_k = (1+alpha)/2) and whose interior control points
/// live in the open unit cube. For the paper's cubic (k = 3) these are the
/// Proposition 1 conditions that make the curve strictly monotone and hence
/// a legal ranking skeleton; other degrees are supported for the degree
/// ablation (for k > 3 the corner/interior conditions do NOT imply
/// monotonicity — CheckMonotonicity reports it empirically).
class RpcCurve {
 public:
  /// Validates the corner/interior constraints: `control_points` is
  /// d x (k+1) with columns p0..p_k, p0/p_k at the alpha corners (within
  /// `corner_tol`), the rest strictly inside [0,1]^d. Returns
  /// kInvalidArgument otherwise.
  static Result<RpcCurve> FromControlPoints(
      const linalg::Matrix& control_points, const order::Orientation& alpha,
      double corner_tol = 1e-9);

  /// Builds a curve without the corner check, for the learn_end_points
  /// variant where all four columns are free inside [0,1]^d. Still rejects
  /// control points outside [0,1]^d.
  static Result<RpcCurve> FromControlPointsUnchecked(
      const linalg::Matrix& control_points, const order::Orientation& alpha);

  /// A canonical strictly monotone starting curve: interior control points
  /// placed at 1/3 and 2/3 of the corner-to-corner diagonal.
  static RpcCurve Diagonal(const order::Orientation& alpha);

  int dimension() const { return curve_.dimension(); }
  int degree() const { return curve_.degree(); }
  const order::Orientation& alpha() const { return alpha_; }
  const curve::BezierCurve& bezier() const { return curve_; }
  const linalg::Matrix& control_points() const {
    return curve_.control_points();
  }

  linalg::Vector Evaluate(double s) const { return curve_.Evaluate(s); }
  linalg::Vector Derivative(double s) const { return curve_.Derivative(s); }

  /// Certifies strict monotonicity against alpha on a derivative grid.
  order::CurveMonotonicityReport CheckMonotonicity(int grid = 512) const;

  /// grid+1 samples of the curve, rows ordered by s.
  linalg::Matrix Sample(int grid) const { return curve_.Sample(grid); }

 private:
  RpcCurve(curve::BezierCurve curve, order::Orientation alpha)
      : curve_(std::move(curve)), alpha_(std::move(alpha)) {}

  curve::BezierCurve curve_;
  order::Orientation alpha_;
};

}  // namespace rpc::core

#endif  // RPC_CORE_RPC_CURVE_H_
