#ifndef RPC_CORE_MODEL_IO_H_
#define RPC_CORE_MODEL_IO_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "core/rpc_curve.h"
#include "data/normalizer.h"
#include "order/orientation.h"

namespace rpc::core {

/// A fitted RPC model in portable form: the orientation, the normalisation
/// bounds, and the control points — everything needed to score new
/// observations (the "white box" of Section 6.2.1 is literally this
/// struct). Serialised as a small self-describing text format:
///
///   rpc-model v1
///   version 7
///   dimension 4
///   degree 3
///   alpha +1 +1 -1 -1
///   mins <d numbers>
///   maxs <d numbers>
///   control p0 <d numbers>
///   ...
///   control p3 <d numbers>
struct PortableRpcModel {
  order::Orientation alpha = order::Orientation::AllBenefit(1);
  linalg::Vector mins;
  linalg::Vector maxs;
  /// d x (k+1), columns p0..pk, in the *normalised* space.
  linalg::Matrix control_points;
  /// Monotone model version, 0 for a one-shot batch fit. The streaming
  /// tier bumps it on every published warm refresh so a serving fleet (and
  /// serve::RankingService::DatasetVersion) can tell which snapshot of a
  /// continuously refreshed model it is holding. Absent in pre-versioning
  /// files; Deserialize then leaves it 0.
  std::uint64_t version = 0;

  /// Serialises to the text format above.
  std::string Serialize() const;

  /// Parses the text format; validates shapes and the Proposition 1
  /// constraints via RpcCurve.
  static Result<PortableRpcModel> Deserialize(const std::string& text);

  /// Rebuilds the curve (validated) from the stored control points.
  Result<RpcCurve> BuildCurve() const;

  /// Scores a raw observation exactly like RpcRanker::Score.
  Result<double> Score(const linalg::Vector& x) const;
};

/// Writes/reads a model file. File-level errors map to kNotFound; parse
/// errors to kDataLoss.
Status SaveModel(const PortableRpcModel& model, const std::string& path);
Result<PortableRpcModel> LoadModel(const std::string& path);

}  // namespace rpc::core

#endif  // RPC_CORE_MODEL_IO_H_
