#include "core/model_selection.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/stringutil.h"
#include "opt/curve_projection.h"

namespace rpc::core {

using linalg::Matrix;
using linalg::Vector;

Result<DegreeSelectionResult> SelectDegreeByCrossValidation(
    const Matrix& normalized_data, const order::Orientation& alpha,
    const RpcLearnOptions& base_options,
    const DegreeSelectionOptions& options) {
  const int n = normalized_data.rows();
  if (options.folds < 2) {
    return Status::InvalidArgument("SelectDegree: need >= 2 folds");
  }
  if (options.candidate_degrees.empty()) {
    return Status::InvalidArgument("SelectDegree: no candidate degrees");
  }
  const int max_degree = *std::max_element(options.candidate_degrees.begin(),
                                           options.candidate_degrees.end());
  if (n < options.folds * (max_degree + 1)) {
    return Status::InvalidArgument(
        StrFormat("SelectDegree: %d rows too few for %d folds at degree %d",
                  n, options.folds, max_degree));
  }

  // A fixed random permutation defines the folds.
  Rng rng(options.seed);
  const std::vector<int> perm = rng.Permutation(n);

  DegreeSelectionResult result;
  for (int degree : options.candidate_degrees) {
    DegreeScore score;
    score.degree = degree;
    double total_j = 0.0;
    int total_points = 0;
    for (int fold = 0; fold < options.folds; ++fold) {
      std::vector<int> train;
      std::vector<int> test;
      for (int idx = 0; idx < n; ++idx) {
        (idx % options.folds == fold ? test : train)
            .push_back(perm[static_cast<size_t>(idx)]);
      }
      Matrix train_data(static_cast<int>(train.size()),
                        normalized_data.cols());
      for (size_t i = 0; i < train.size(); ++i) {
        train_data.SetRow(static_cast<int>(i),
                          normalized_data.Row(train[i]));
      }
      RpcLearnOptions fold_options = base_options;
      fold_options.degree = degree;
      fold_options.seed = options.seed + 31ULL * fold;
      RPC_ASSIGN_OR_RETURN(RpcFitResult fit,
                           RpcLearner(fold_options).Fit(train_data, alpha));
      if (!fit.curve.CheckMonotonicity().strictly_monotone) {
        score.always_monotone = false;
      }
      for (int idx : test) {
        const auto proj = opt::ProjectOntoCurve(
            fit.curve.bezier(), normalized_data.Row(idx),
            base_options.projection);
        total_j += proj.squared_distance;
        ++total_points;
      }
    }
    score.mean_holdout_j = total_points > 0 ? total_j / total_points : 0.0;
    result.scores.push_back(score);
  }

  // Pick the cubic unless a rival is both qualified (always monotone) and
  // better by more than the margin.
  double cubic_j = std::numeric_limits<double>::infinity();
  for (const DegreeScore& score : result.scores) {
    if (score.degree == 3 && score.always_monotone) {
      cubic_j = score.mean_holdout_j;
    }
  }
  int best_degree = -1;
  double best_j = std::numeric_limits<double>::infinity();
  for (const DegreeScore& score : result.scores) {
    if (!score.always_monotone) continue;
    if (score.mean_holdout_j < best_j) {
      best_j = score.mean_holdout_j;
      best_degree = score.degree;
    }
  }
  if (best_degree < 0) {
    return Status::NumericalError(
        "SelectDegree: no candidate degree stayed strictly monotone");
  }
  if (std::isfinite(cubic_j) &&
      best_j >= cubic_j * (1.0 - options.improvement_margin)) {
    best_degree = 3;
  }
  result.best_degree = best_degree;
  return result;
}

}  // namespace rpc::core
