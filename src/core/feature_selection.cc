#include "core/feature_selection.h"

#include <algorithm>
#include <cmath>

#include "core/interpretation.h"
#include "rank/metrics.h"

namespace rpc::core {

using linalg::Matrix;
using linalg::Vector;

Result<std::vector<AttributeImportance>> RankAttributes(
    const RpcRanker& ranker, const data::Dataset& dataset) {
  const data::Dataset complete = dataset.FilterCompleteRows();
  if (complete.num_attributes() != ranker.curve().dimension()) {
    return Status::InvalidArgument("RankAttributes: dimension mismatch");
  }
  const Vector scores = ranker.ScoreRows(complete.values());
  const std::vector<AttributeInterpretation> shapes =
      InterpretCurve(ranker.curve());
  std::vector<AttributeImportance> importances;
  for (int j = 0; j < complete.num_attributes(); ++j) {
    AttributeImportance imp;
    imp.index = j;
    imp.name = complete.attribute_name(j);
    imp.score_alignment =
        std::fabs(rank::SpearmanRho(complete.values().Column(j), scores));
    imp.nonlinearity = shapes[static_cast<size_t>(j)].nonlinearity;
    importances.push_back(imp);
  }
  std::stable_sort(importances.begin(), importances.end(),
                   [](const AttributeImportance& a,
                      const AttributeImportance& b) {
                     return a.score_alignment > b.score_alignment;
                   });
  return importances;
}

Result<FeatureSelectionResult> GreedySelectAttributes(
    const data::Dataset& dataset, const order::Orientation& alpha,
    double target_tau, const RpcLearnOptions& options) {
  const data::Dataset complete = dataset.FilterCompleteRows();
  const int d = complete.num_attributes();
  if (d < 2) {
    return Status::InvalidArgument("GreedySelectAttributes: need >= 2 attrs");
  }
  if (alpha.dimension() != d) {
    return Status::InvalidArgument("GreedySelectAttributes: alpha dimension");
  }

  // Reference ranking on the full attribute set.
  RPC_ASSIGN_OR_RETURN(RpcRanker full,
                       RpcRanker::Fit(complete.values(), alpha, options));
  const Vector reference = full.ScoreRows(complete.values());

  FeatureSelectionResult result;
  std::vector<int> remaining(static_cast<size_t>(d));
  for (int j = 0; j < d; ++j) remaining[static_cast<size_t>(j)] = j;

  while (!remaining.empty()) {
    double best_tau = -2.0;
    int best_attr = -1;
    for (int candidate : remaining) {
      std::vector<int> trial = result.selected;
      trial.push_back(candidate);
      std::sort(trial.begin(), trial.end());
      RPC_ASSIGN_OR_RETURN(data::Dataset subset,
                           complete.SelectAttributes(trial));
      Vector scores;
      if (trial.size() == 1) {
        // A single attribute ranks by its own (oriented) values; the RPC
        // needs >= 2 non-constant attributes.
        scores = subset.values().Column(0);
        if (alpha.sign(trial[0]) < 0) scores *= -1.0;
      } else {
        std::vector<int> signs;
        for (int j : trial) signs.push_back(alpha.sign(j));
        RPC_ASSIGN_OR_RETURN(order::Orientation sub_alpha,
                             order::Orientation::FromSigns(signs));
        auto sub_ranker = RpcRanker::Fit(subset.values(), sub_alpha, options);
        if (!sub_ranker.ok()) continue;
        scores = sub_ranker->ScoreRows(subset.values());
      }
      const double tau = rank::KendallTauB(scores, reference);
      if (tau > best_tau) {
        best_tau = tau;
        best_attr = candidate;
      }
    }
    if (best_attr < 0) break;
    result.selected.push_back(best_attr);
    result.tau_trajectory.push_back(best_tau);
    result.achieved_tau = best_tau;
    remaining.erase(
        std::find(remaining.begin(), remaining.end(), best_attr));
    if (best_tau >= target_tau) break;
  }
  return result;
}

}  // namespace rpc::core
