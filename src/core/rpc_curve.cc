#include "core/rpc_curve.h"

#include <cmath>

#include "common/stringutil.h"

namespace rpc::core {

using linalg::Matrix;
using linalg::Vector;

Result<RpcCurve> RpcCurve::FromControlPoints(const Matrix& control_points,
                                             const order::Orientation& alpha,
                                             double corner_tol) {
  if (control_points.cols() < 2) {
    return Status::InvalidArgument(
        "RpcCurve: need at least 2 control points (end points)");
  }
  if (control_points.rows() != alpha.dimension()) {
    return Status::InvalidArgument("RpcCurve: alpha dimension mismatch");
  }
  const int last = control_points.cols() - 1;
  const Vector worst = alpha.WorstCorner();
  const Vector best = alpha.BestCorner();
  for (int j = 0; j < control_points.rows(); ++j) {
    if (std::fabs(control_points(j, 0) - worst[j]) > corner_tol ||
        std::fabs(control_points(j, last) - best[j]) > corner_tol) {
      return Status::InvalidArgument(StrFormat(
          "RpcCurve: end points off the alpha corners at attribute %d", j));
    }
    for (int r = 1; r < last; ++r) {
      const double v = control_points(j, r);
      if (!(v > 0.0 && v < 1.0)) {
        return Status::InvalidArgument(StrFormat(
            "RpcCurve: control point p%d[%d] = %g not in (0,1)", r, j, v));
      }
    }
  }
  return RpcCurve(curve::BezierCurve(control_points), alpha);
}

Result<RpcCurve> RpcCurve::FromControlPointsUnchecked(
    const Matrix& control_points, const order::Orientation& alpha) {
  if (control_points.cols() < 2) {
    return Status::InvalidArgument(
        "RpcCurve: need at least 2 control points (end points)");
  }
  if (control_points.rows() != alpha.dimension()) {
    return Status::InvalidArgument("RpcCurve: alpha dimension mismatch");
  }
  for (int j = 0; j < control_points.rows(); ++j) {
    for (int r = 0; r < control_points.cols(); ++r) {
      const double v = control_points(j, r);
      if (v < 0.0 || v > 1.0) {
        return Status::InvalidArgument(StrFormat(
            "RpcCurve: control point p%d[%d] = %g outside [0,1]", r, j, v));
      }
    }
  }
  return RpcCurve(curve::BezierCurve(control_points), alpha);
}

RpcCurve RpcCurve::Diagonal(const order::Orientation& alpha) {
  const Vector worst = alpha.WorstCorner();
  const Vector best = alpha.BestCorner();
  Matrix control(alpha.dimension(), 4);
  for (int j = 0; j < alpha.dimension(); ++j) {
    control(j, 0) = worst[j];
    control(j, 1) = worst[j] + (best[j] - worst[j]) / 3.0;
    control(j, 2) = worst[j] + 2.0 * (best[j] - worst[j]) / 3.0;
    control(j, 3) = best[j];
  }
  return RpcCurve(curve::BezierCurve(control), alpha);
}

order::CurveMonotonicityReport RpcCurve::CheckMonotonicity(int grid) const {
  return order::CheckCurveMonotonicity(curve_, alpha_, grid);
}

}  // namespace rpc::core
