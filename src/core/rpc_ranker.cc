#include "core/rpc_ranker.h"

#include "opt/curve_projection.h"

namespace rpc::core {

using linalg::Matrix;
using linalg::Vector;

Result<RpcRanker> RpcRanker::Fit(const Matrix& raw_data,
                                 const order::Orientation& alpha,
                                 const RpcLearnOptions& options) {
  RPC_ASSIGN_OR_RETURN(data::Normalizer normalizer,
                       data::Normalizer::Fit(raw_data));
  const Matrix normalized = normalizer.Transform(raw_data);
  RpcLearner learner(options);
  RPC_ASSIGN_OR_RETURN(RpcFitResult fit, learner.Fit(normalized, alpha));
  RpcRanker ranker(std::move(normalizer), std::move(fit));
  ranker.projection_ = options.projection;
  return ranker;
}

Result<RpcRanker> RpcRanker::FitDataset(const data::Dataset& dataset,
                                        const order::Orientation& alpha,
                                        const RpcLearnOptions& options) {
  const data::Dataset complete = dataset.FilterCompleteRows();
  if (complete.num_objects() == 0) {
    return Status::InvalidArgument("RpcRanker: no complete rows");
  }
  return Fit(complete.values(), alpha, options);
}

double RpcRanker::Score(const Vector& x) const {
  const Vector normalized = normalizer_.Transform(x);
  return opt::ProjectOntoCurve(curve_.bezier(), normalized, projection_).s;
}

PortableRpcModel RpcRanker::ToPortableModel() const {
  PortableRpcModel model;
  model.alpha = curve_.alpha();
  model.mins = normalizer_.mins();
  model.maxs = normalizer_.maxs();
  model.control_points = curve_.control_points();
  return model;
}

Matrix RpcRanker::ControlPointsInOriginalSpace() const {
  // Control points are d x (k+1); report rows p0..p_k like Table 2.
  const Matrix& control = curve_.control_points();
  Matrix rows(control.cols(), control.rows());
  for (int r = 0; r < control.cols(); ++r) {
    rows.SetRow(r, normalizer_.InverseTransform(control.Column(r)));
  }
  return rows;
}

Matrix RpcRanker::SampleSkeletonRaw(int grid) const {
  return normalizer_.InverseTransform(curve_.Sample(grid));
}

rank::RankingList RpcRanker::RankDataset(const data::Dataset& dataset) const {
  const Vector scores = ScoreRows(dataset.values());
  return rank::RankingList(scores, dataset.labels(),
                           /*higher_is_better=*/true);
}

}  // namespace rpc::core
