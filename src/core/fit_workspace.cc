#include "core/fit_workspace.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

namespace rpc::core {

using linalg::Matrix;
using linalg::Vector;

void FitWorkspace::Bind(int n, int d, int degree) {
  assert(n > 0 && d > 0 && degree >= 1);
  const int num_segments =
      static_cast<int>((static_cast<std::int64_t>(n) + kFitSegmentRows - 1) /
                       kFitSegmentRows);
  if (n == n_ && d == d_ && degree == degree_) return;
  n_ = n;
  d_ = d;
  degree_ = degree;
  num_segments_ = num_segments;
  total_.Bind(degree, d);
  segments_.resize(static_cast<size_t>(num_segments));
  for (curve::BernsteinDesignAccumulator& segment : segments_) {
    segment.Bind(degree, d);
  }
  richardson_.Bind(d, degree);
  pinv_.Bind(degree + 1);
  gram_pinv_.Assign(degree + 1, degree + 1);
}

void FitWorkspace::AccumulateNormalEquations(const Matrix& data,
                                             const Vector& scores,
                                             ThreadPool* pool) {
  assert(bound() && data.rows() == n_ && data.cols() == d_ &&
         scores.size() == n_);
  const auto accumulate_segment = [&](int segment) {
    curve::BernsteinDesignAccumulator& acc =
        segments_[static_cast<size_t>(segment)];
    acc.Reset();
    const int begin = segment * kFitSegmentRows;
    const int end = std::min(n_, begin + kFitSegmentRows);
    for (int i = begin; i < end; ++i) {
      acc.AccumulateRow(scores[i], data.RowPtr(i));
    }
  };
  if (pool != nullptr && pool->parallelism() > 1 && num_segments_ > 1) {
    pool->ParallelFor(num_segments_, /*grain=*/1,
                      [&](std::int64_t begin, std::int64_t end, int) {
                        for (std::int64_t seg = begin; seg < end; ++seg) {
                          accumulate_segment(static_cast<int>(seg));
                        }
                      });
  } else {
    for (int seg = 0; seg < num_segments_; ++seg) accumulate_segment(seg);
  }
  // Ordered reduction: which worker filled a segment never changes what is
  // summed or in which order, so the totals are thread-count invariant.
  total_.Reset();
  for (const curve::BernsteinDesignAccumulator& segment : segments_) {
    total_.Merge(segment);
  }
}

void FitWorkspace::ReduceFusedSegments() {
  assert(bound());
  total_.Reset();
  for (const curve::BernsteinDesignAccumulator& segment : segments_) {
    total_.Merge(segment);
  }
}

Status FitWorkspace::UpdateControlPoints(const ControlUpdateOptions& options,
                                         Matrix* control) {
  assert(bound() && control->rows() == d_ &&
         control->cols() == degree_ + 1);
  const Matrix& gram = total_.gram();
  const Matrix& cross = total_.cross();
  if (options.use_pseudo_inverse_update) {
    // Eq. (26): P = X (MZ)^+ = cross * gram^+ — exact but ill-conditioned
    // mid-iteration (the motivation for Richardson).
    const Status pinv = pinv_.Compute(gram, &gram_pinv_);
    if (!pinv.ok()) return pinv;
    // control = cross * gram_pinv_, with operator*'s accumulation order.
    const int k1 = degree_ + 1;
    control->Assign(d_, k1);
    for (int i = 0; i < d_; ++i) {
      for (int k = 0; k < k1; ++k) {
        const double cik = cross(i, k);
        if (cik == 0.0) continue;
        double* out_row = control->RowPtr(i);
        for (int j = 0; j < k1; ++j) out_row[j] += cik * gram_pinv_(k, j);
      }
    }
    return Status::Ok();
  }
  for (int step = 0; step < options.richardson_steps; ++step) {
    const Status status =
        richardson_.Step(gram, cross, options.richardson, control);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

}  // namespace rpc::core
