#include "core/rpc_learner.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/stringutil.h"
#include "core/fit_workspace.h"
#include "linalg/stats.h"
#include "opt/batch_projection.h"
#include "opt/incremental_projector.h"

namespace rpc::core {

using linalg::Matrix;
using linalg::Vector;

namespace {

// Wall-clock seconds between the two reads; the per-stage timing the fit
// bench reports (two clock reads per outer iteration, noise next to one
// projection pass).
double SecondsBetween(std::chrono::steady_clock::time_point start,
                      std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

// steady_clock time_point on the span time base (obs::TraceNowNs uses the
// same clock), so traced stages reuse the stage-timing clock reads.
std::int64_t ToTraceNs(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

// Per-attribute quantile of the column values.
double ColumnQuantile(const Matrix& data, int col, double q) {
  std::vector<double> values(static_cast<size_t>(data.rows()));
  for (int i = 0; i < data.rows(); ++i) values[static_cast<size_t>(i)] =
      data(i, col);
  std::sort(values.begin(), values.end());
  const double pos = q * (data.rows() - 1);
  const int lo = static_cast<int>(std::floor(pos));
  const int hi = std::min(lo + 1, data.rows() - 1);
  const double frac = pos - lo;
  return (1.0 - frac) * values[static_cast<size_t>(lo)] +
         frac * values[static_cast<size_t>(hi)];
}

double Clamp01(double v, double margin) {
  return std::clamp(v, margin, 1.0 - margin);
}

}  // namespace

RpcLearner::RpcLearner(RpcLearnOptions options)
    : options_(std::move(options)) {}

Result<RpcFitResult> RpcLearner::Fit(const Matrix& normalized_data,
                                     const order::Orientation& alpha) const {
  if (options_.restarts < 1) {
    return Status::InvalidArgument("RpcLearner: restarts must be >= 1");
  }
  ThreadPool pool(options_.num_threads);
  if (options_.restarts == 1) {
    FitWorkspace workspace;
    return FitOnce(normalized_data, alpha, options_.seed, &pool, &workspace,
                   /*warm_seed=*/nullptr);
  }
  // Multi-restart: independent seeds, keep the lowest J (Theorem 3's
  // minimiser is approached from several basins). With a thread budget the
  // restarts run concurrently — each already has its own RNG stream — and
  // each runs its projections serially so pool parallelism never nests;
  // without one the pool accelerates the projections inside each restart.
  // The Step 5 workspace persists across the restarts a worker runs (one
  // shared workspace when they run serially), so only the first restart
  // pays the allocation.
  std::vector<Result<RpcFitResult>> fits;
  fits.reserve(static_cast<size_t>(options_.restarts));
  for (int r = 0; r < options_.restarts; ++r) {
    fits.emplace_back(Status::Internal("restart did not run"));
  }
  if (pool.parallelism() > 1) {
    std::vector<FitWorkspace> workspaces(
        static_cast<size_t>(pool.parallelism()));
    pool.ParallelFor(
        options_.restarts, /*grain=*/1,
        [&](std::int64_t begin, std::int64_t end, int worker) {
          for (std::int64_t r = begin; r < end; ++r) {
            fits[static_cast<size_t>(r)] =
                FitOnce(normalized_data, alpha,
                        options_.seed + 7919ULL * static_cast<uint64_t>(r),
                        /*pool=*/nullptr,
                        &workspaces[static_cast<size_t>(worker)],
                        /*warm_seed=*/nullptr);
          }
        });
  } else {
    FitWorkspace workspace;
    for (int r = 0; r < options_.restarts; ++r) {
      fits[static_cast<size_t>(r)] =
          FitOnce(normalized_data, alpha, options_.seed + 7919ULL * r, &pool,
                  &workspace, /*warm_seed=*/nullptr);
    }
  }
  // Whole-call stage timing: summed over every restart that ran, collected
  // before the selection loop moves the winners out.
  double projection_seconds = 0.0;
  double update_seconds = 0.0;
  for (const Result<RpcFitResult>& fit : fits) {
    if (!fit.ok()) continue;
    projection_seconds += fit->projection_seconds;
    update_seconds += fit->update_seconds;
  }
  // Selection scans in restart order, so the winner (and any propagated
  // error) is independent of how the restarts were scheduled.
  Result<RpcFitResult> best = Status::Internal("no restart succeeded");
  for (int r = 0; r < options_.restarts; ++r) {
    Result<RpcFitResult>& fit = fits[static_cast<size_t>(r)];
    if (!fit.ok()) {
      if (!best.ok()) best = std::move(fit);
      continue;
    }
    if (!best.ok() || fit->final_j < best->final_j) best = std::move(fit);
  }
  if (best.ok()) {
    best->projection_seconds = projection_seconds;
    best->update_seconds = update_seconds;
  }
  return best;
}

Result<RpcFitResult> RpcLearner::Refit(const Matrix& normalized_data,
                                       const order::Orientation& alpha,
                                       const RpcWarmStartState& seed) const {
  if (seed.control_points.rows() != normalized_data.cols() ||
      seed.control_points.cols() != options_.degree + 1) {
    return Status::InvalidArgument(StrFormat(
        "RpcLearner::Refit: seed control points are %d x %d, need %d x %d",
        seed.control_points.rows(), seed.control_points.cols(),
        normalized_data.cols(), options_.degree + 1));
  }
  if (seed.scores.size() != 0 &&
      seed.scores.size() != normalized_data.rows()) {
    return Status::InvalidArgument(StrFormat(
        "RpcLearner::Refit: %d seed scores for %d rows", seed.scores.size(),
        normalized_data.rows()));
  }
  ThreadPool pool(options_.num_threads);
  FitWorkspace workspace;
  return FitOnce(normalized_data, alpha, options_.seed, &pool, &workspace,
                 &seed);
}

Result<RpcFitResult> RpcLearner::FitOnce(const Matrix& normalized_data,
                                         const order::Orientation& alpha,
                                         uint64_t seed, ThreadPool* pool,
                                         FitWorkspace* workspace,
                                         const RpcWarmStartState* warm_seed)
    const {
  const int n = normalized_data.rows();
  const int d = normalized_data.cols();
  const int k = options_.degree;
  if (k < 1 || k > 10) {
    return Status::InvalidArgument("RpcLearner: degree must be in [1, 10]");
  }
  if (d != alpha.dimension()) {
    return Status::InvalidArgument("RpcLearner: alpha dimension mismatch");
  }
  // With end points pinned only k-1 control points are free, so k-1 rows
  // determine the fit; free end points need k+1. (The Gram matrix may be
  // rank deficient either way — Richardson tolerates that, the
  // pseudo-inverse path truncates the null space.)
  const int min_rows = options_.fix_end_points ? std::max(2, k - 1) : k + 1;
  if (n < min_rows) {
    return Status::InvalidArgument(
        StrFormat("RpcLearner: need at least %d rows for degree %d", min_rows,
                  k));
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) {
      const double v = normalized_data(i, j);
      // The negated comparison also rejects NaN (all comparisons false).
      if (!(v >= -1e-9 && v <= 1.0 + 1e-9)) {
        return Status::FailedPrecondition(
            StrFormat("RpcLearner: entry (%d,%d)=%g outside [0,1]; "
                      "normalise first (Eq. 29)",
                      i, j, v));
      }
    }
  }

  // Persistent Step 5 scratch: a no-op when the workspace already has this
  // shape (every outer iteration and every restart after the first).
  workspace->Bind(n, d, k);

  // --- Step 2: initialise control points. -------------------------------
  Rng rng(seed);
  const Vector worst = alpha.WorstCorner();
  const Vector best = alpha.BestCorner();
  Matrix control(d, k + 1);
  control.SetColumn(0, worst);
  control.SetColumn(k, best);
  const double margin = std::max(options_.clamp_margin, 1e-9);
  if (warm_seed != nullptr) {
    // Warm refit: the previous model's control points replace the Step 2
    // initialisation. Interior points are re-clamped into the open cube
    // (a normalisation-bound remap can push them onto the margin) and the
    // end points re-pinned/clamped per the usual Proposition 1 handling.
    for (int r = 1; r < k; ++r) {
      for (int j = 0; j < d; ++j) {
        control(j, r) = Clamp01(warm_seed->control_points(j, r), margin);
      }
    }
    if (!options_.fix_end_points) {
      for (int j = 0; j < d; ++j) {
        control(j, 0) = std::clamp(warm_seed->control_points(j, 0), 0.0, 1.0);
        control(j, k) = std::clamp(warm_seed->control_points(j, k), 0.0, 1.0);
      }
    }
  } else {
    for (int r = 1; r < k; ++r) {
      const double frac = static_cast<double>(r) / k;
      for (int j = 0; j < d; ++j) {
        double v = 0.0;
        switch (options_.init) {
          case RpcInit::kDiagonal:
            v = worst[j] + frac * (best[j] - worst[j]);
            break;
          case RpcInit::kQuantiles: {
            const double q = alpha.sign(j) > 0 ? frac : 1.0 - frac;
            v = ColumnQuantile(normalized_data, j, q);
            break;
          }
          case RpcInit::kRandomSamples:
            v = 0.0;  // filled below from whole sampled rows
            break;
        }
        control(j, r) = Clamp01(v, margin);
      }
    }
    if (options_.init == RpcInit::kRandomSamples) {
      // Draw k-1 distinct rows and order them by oriented progress so the
      // control polygon runs from worst to best.
      std::vector<int> picks;
      while (static_cast<int>(picks.size()) < k - 1) {
        const int candidate = static_cast<int>(rng.UniformInt(n));
        if (std::find(picks.begin(), picks.end(), candidate) == picks.end()) {
          picks.push_back(candidate);
        }
        if (static_cast<int>(picks.size()) == n) break;  // tiny datasets
      }
      std::sort(picks.begin(), picks.end(), [&](int a, int b) {
        double pa = 0.0, pb = 0.0;
        for (int j = 0; j < d; ++j) {
          pa += alpha.sign(j) * normalized_data(a, j);
          pb += alpha.sign(j) * normalized_data(b, j);
        }
        return pa < pb;
      });
      for (int r = 1; r < k; ++r) {
        const int row = picks[static_cast<size_t>(
            std::min<int>(r - 1, static_cast<int>(picks.size()) - 1))];
        for (int j = 0; j < d; ++j) {
          control(j, r) = Clamp01(normalized_data(row, j), margin);
        }
      }
    }
  }

  // --- Steps 3-9: alternate projection and control-point updates. -------
  RpcFitResult result{RpcCurve::Diagonal(alpha), Vector(), 0.0, 0.0, 0,
                      false, {}};
  curve::BezierCurve bezier(control);
  Vector scores;
  double j_current = std::numeric_limits<double>::infinity();
  double j_previous = std::numeric_limits<double>::infinity();
  Matrix previous_control = control;
  Vector previous_scores;

  ControlUpdateOptions update_options;
  update_options.use_pseudo_inverse_update = options_.use_pseudo_inverse_update;
  update_options.richardson_steps = options_.richardson_steps_per_iteration;
  update_options.richardson.use_preconditioner = options_.use_preconditioner;
  update_options.richardson.gamma = options_.gamma;

  double projection_seconds = 0.0;
  double update_seconds = 0.0;

  // Step 4 engine: the warm-start mode keeps per-row state (last s*, last
  // squared distance, last drift) across outer iterations and only falls
  // back to the full global search for suspect rows / periodic resyncs.
  // Either engine streams each projected row straight into the fit
  // workspace's per-segment Step 5 accumulators (fused
  // projection+accumulation), so the dataset is swept exactly once per
  // outer iteration.
  const bool warm_start =
      options_.reprojection == ReprojectionMode::kWarmStart;
  opt::IncrementalProjector incremental;
  if (warm_start) {
    opt::IncrementalProjectorOptions incremental_options;
    incremental_options.projection = options_.projection;
    incremental_options.resync_period = options_.reprojection_resync_period;
    incremental_options.adaptive_brackets =
        options_.reprojection_adaptive_brackets;
    incremental.Bind(normalized_data, incremental_options, pool);
    incremental.SetFusedAccumulators(workspace->fused_segments(),
                                     kFitSegmentRows);
    if (warm_seed != nullptr && warm_seed->scores.size() == n) {
      // Per-row warm seed: the first in-loop projection refines each row
      // locally around the live model's s* instead of running the cold
      // full search — the heart of the streaming tier's cheap refresh.
      incremental.ImportState(warm_seed->scores, control);
    }
  }

  int iter = 0;
  bool rolled_back = false;
  for (; iter < options_.max_iterations; ++iter) {
    // Step 4: projection indices s^(t) (GSS or the quintic alternative),
    // fanned out across the pool by the batch engine — or warm-started from
    // the previous iteration's s* by the incremental projector (which
    // writes into the same score buffer every iteration).
    const auto projection_start = std::chrono::steady_clock::now();
    if (warm_start) {
      incremental.ProjectInto(bezier, &scores, &j_current);
    } else {
      scores = opt::ProjectRowsBatchFused(
          bezier, normalized_data, options_.projection, pool,
          workspace->fused_segments(), kFitSegmentRows, &j_current);
    }
    const auto projection_end = std::chrono::steady_clock::now();
    projection_seconds += SecondsBetween(projection_start, projection_end);
    if (options_.trace_id != 0) {
      obs::EmitSpan(options_.trace_id, "fit.projection",
                    ToTraceNs(projection_start), ToTraceNs(projection_end));
    }
    if (options_.record_history) result.j_history.push_back(j_current);

    if (iter > 0) {
      const double delta = j_previous - j_current;
      if (delta < 0.0) {
        // Step 6-8: J increased — keep the previous local minimum. The
        // rejected trial is dropped from the history so the recorded
        // sequence is the accepted, non-increasing one (Proposition 2).
        control = previous_control;
        scores = previous_scores;
        j_current = j_previous;
        bezier.SetControlPoints(control);
        if (options_.record_history && !result.j_history.empty()) {
          result.j_history.pop_back();
        }
        rolled_back = true;
        break;
      }
      if (delta < options_.tolerance) {
        result.converged = true;
        break;
      }
    }
    j_previous = j_current;
    previous_control = control;
    previous_scores = scores;

    // Step 5: control-point update, allocation-free in steady state. The
    // projection pass above already streamed every (s_i, x_i) into the
    // workspace's per-segment Eq. (26) accumulators (fused
    // projection+accumulation — the dataset is not re-read here); the
    // segment-ordered reduction and the Eq. (26)/(27) solve run in the
    // persistent scratch, in place on `control`.
    const auto update_start = std::chrono::steady_clock::now();
    workspace->ReduceFusedSegments();
    const Status update_status =
        workspace->UpdateControlPoints(update_options, &control);
    if (!update_status.ok()) return update_status;

    // Re-impose the Proposition 1 constraints.
    for (int j = 0; j < d; ++j) {
      for (int r = 1; r < k; ++r) {
        control(j, r) = Clamp01(control(j, r), margin);
      }
      if (options_.fix_end_points) {
        control(j, 0) = worst[j];
        control(j, k) = best[j];
      } else {
        control(j, 0) = std::clamp(control(j, 0), 0.0, 1.0);
        control(j, k) = std::clamp(control(j, k), 0.0, 1.0);
      }
    }
    bezier.SetControlPoints(control);
    const auto update_end = std::chrono::steady_clock::now();
    update_seconds += SecondsBetween(update_start, update_end);
    if (options_.trace_id != 0) {
      obs::EmitSpan(options_.trace_id, "fit.update", ToTraceNs(update_start),
                    ToTraceNs(update_end));
    }
  }

  // Are the scores in hand the full global search's projections of the
  // current bezier? Always for kFull; for warm start only when the loop's
  // last projection was a full pass (resync iteration, or kGridOnly which
  // always runs full) and no rollback replaced them with an older call's
  // output.
  bool scores_are_full = !warm_start ||
                         (!rolled_back && incremental.last_was_full());

  // The loop exhausting max_iterations leaves the last Step 5 update
  // unvetted: `scores`/`j_current` describe the pre-update curve while
  // `bezier` is post-update. Apply the Step 6-8 acceptance to that final
  // update — keep it only if it did not increase J — so the returned curve,
  // scores and J are consistent and the accepted-J sequence stays
  // non-increasing (Proposition 2). Under kWarmStart the pre-update J may
  // be warm-measured, i.e. an upper bound on the full-search J within the
  // certified-fallback slack, so the acceptance (like the in-loop delta
  // test) is exact only up to that slack.
  if (iter == options_.max_iterations && scores.size() != 0) {
    double j_final = 0.0;
    const auto final_start = std::chrono::steady_clock::now();
    Vector final_scores = opt::ProjectRowsBatch(
        bezier, normalized_data, options_.projection, pool, &j_final);
    const auto final_end = std::chrono::steady_clock::now();
    projection_seconds += SecondsBetween(final_start, final_end);
    if (options_.trace_id != 0) {
      obs::EmitSpan(options_.trace_id, "fit.convergence",
                    ToTraceNs(final_start), ToTraceNs(final_end));
    }
    if (j_final <= j_current) {
      scores = std::move(final_scores);
      j_current = j_final;
      scores_are_full = true;
    } else {
      control = previous_control;
      bezier.SetControlPoints(control);
      // scores/j_current already describe this restored curve;
      // scores_are_full keeps whatever quality the last loop pass had.
    }
  }

  // Warm-started fits re-measure the accepted curve with one final full
  // projection, so the reported scores and J come from the same global
  // search as ReprojectionMode::kFull whatever mix of local refinements and
  // fallbacks the trajectory used — skipped when the scores in hand already
  // are that (no redundant O(n) pass). Also covers max_iterations == 0,
  // where the loop never projected at all.
  if (!scores_are_full || scores.size() == 0) {
    const auto final_start = std::chrono::steady_clock::now();
    scores = opt::ProjectRowsBatch(bezier, normalized_data,
                                   options_.projection, pool, &j_current);
    const auto final_end = std::chrono::steady_clock::now();
    projection_seconds += SecondsBetween(final_start, final_end);
    if (options_.trace_id != 0) {
      obs::EmitSpan(options_.trace_id, "fit.convergence",
                    ToTraceNs(final_start), ToTraceNs(final_end));
    }
  }

  Result<RpcCurve> curve_result =
      options_.fix_end_points
          ? RpcCurve::FromControlPoints(control, alpha,
                                        /*corner_tol=*/1e-6)
          : RpcCurve::FromControlPointsUnchecked(control, alpha);
  if (!curve_result.ok()) return curve_result.status();

  result.curve = std::move(curve_result).value();
  result.scores = scores;
  result.final_j = j_current;
  result.explained_variance =
      1.0 - j_current /
                std::max(linalg::TotalScatter(normalized_data), 1e-300);
  result.iterations = iter;
  result.projection_seconds = projection_seconds;
  result.update_seconds = update_seconds;
  return result;
}

Vector RescaleToUnit(const Vector& scores) {
  if (scores.size() == 0) return scores;
  double lo = scores[0];
  double hi = scores[0];
  for (int i = 1; i < scores.size(); ++i) {
    lo = std::min(lo, scores[i]);
    hi = std::max(hi, scores[i]);
  }
  Vector rescaled(scores.size());
  const double range = hi - lo;
  for (int i = 0; i < scores.size(); ++i) {
    rescaled[i] = range > 0.0 ? (scores[i] - lo) / range : 0.5;
  }
  return rescaled;
}

}  // namespace rpc::core
