#ifndef RPC_CORE_MODEL_SELECTION_H_
#define RPC_CORE_MODEL_SELECTION_H_

#include <vector>

#include "common/result.h"
#include "core/rpc_learner.h"
#include "linalg/matrix.h"
#include "order/orientation.h"

namespace rpc::core {

/// Per-degree cross-validation record.
struct DegreeScore {
  int degree = 0;
  double mean_holdout_j = 0.0;  // per held-out point
  bool always_monotone = true;  // every fold's curve strictly monotone
};

struct DegreeSelectionResult {
  int best_degree = 3;
  std::vector<DegreeScore> scores;
};

struct DegreeSelectionOptions {
  std::vector<int> candidate_degrees = {1, 2, 3, 4, 5};
  int folds = 5;
  /// Penalty multiplier: a rival degree must beat the cubic's held-out
  /// residual by more than this relative margin to be selected. The
  /// default encodes the paper's stance — k = 3 is the only degree with
  /// the Proposition 1 monotonicity guarantee and the smallest
  /// interpretable parameterisation, so marginal reconstruction gains
  /// (higher degrees shave a few percent off J on smooth arcs) do not
  /// justify abandoning it.
  double improvement_margin = 0.25;
  uint64_t seed = 29;
};

/// K-fold cross-validated Bezier-degree selection, automating the Section
/// 4.2 argument: degrees below 3 underfit bent skeletons, degrees above 3
/// rarely improve held-out reconstruction enough to give up guaranteed
/// monotonicity. `normalized_data` must already live in [0,1]^d. Degrees
/// whose folds ever produce a non-monotone curve are disqualified.
Result<DegreeSelectionResult> SelectDegreeByCrossValidation(
    const linalg::Matrix& normalized_data, const order::Orientation& alpha,
    const RpcLearnOptions& base_options = {},
    const DegreeSelectionOptions& options = {});

}  // namespace rpc::core

#endif  // RPC_CORE_MODEL_SELECTION_H_
