#ifndef RPC_CORE_INTERPRETATION_H_
#define RPC_CORE_INTERPRETATION_H_

#include <string>
#include <vector>

#include "core/rpc_curve.h"

namespace rpc::core {

/// The four basic monotone shapes of Fig. 4, determined by where the
/// interior control values sit relative to the straight diagonal.
enum class CurveShape {
  kLinear,     // both control values on the diagonal: straight line
  kConvex,     // slow start, fast finish (both below the diagonal)
  kConcave,    // fast start, slow finish (both above the diagonal)
  kSShape,     // slow-fast-slow (below then above)
  kInverseS,   // fast-slow-fast (above then below)
};

const char* CurveShapeToString(CurveShape shape);

/// Per-attribute interpretation of a fitted RPC, addressing the "white box"
/// claim of Section 6.2.1: each coordinate function f_j(s) is classified
/// into a Fig. 4 shape and measured for nonlinearity.
struct AttributeInterpretation {
  int attribute = 0;
  CurveShape shape = CurveShape::kLinear;
  /// Interior control values along the oriented axis (b1, b2 in [0,1]).
  double b1 = 0.0;
  double b2 = 0.0;
  /// Max deviation of f_j from the straight chord, in oriented units —
  /// 0 means the score is exactly linear in this attribute's skeleton.
  double nonlinearity = 0.0;
};

/// Classifies every coordinate of the (cubic) curve. For cost attributes
/// the classification happens on the oriented axis, so "convex" always
/// means slow improvement near the worst end.
std::vector<AttributeInterpretation> InterpretCurve(const RpcCurve& curve);

/// Human-readable report, optionally with attribute names.
std::string InterpretationReport(
    const RpcCurve& curve,
    const std::vector<std::string>& attribute_names = {});

}  // namespace rpc::core

#endif  // RPC_CORE_INTERPRETATION_H_
