#ifndef RPC_CORE_FIT_WORKSPACE_H_
#define RPC_CORE_FIT_WORKSPACE_H_

#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "curve/bernstein.h"
#include "linalg/matrix.h"
#include "linalg/pinv.h"
#include "linalg/vector.h"
#include "opt/richardson.h"

namespace rpc::core {

/// Step 5 configuration: the slice of RpcLearnOptions the control-point
/// update consumes.
struct ControlUpdateOptions {
  /// Use the direct pseudo-inverse solve P = X (MZ)^+ (Eq. 26) instead of
  /// Richardson — the ill-conditioned baseline of ablation E11.
  bool use_pseudo_inverse_update = false;
  /// Richardson steps per outer iteration (Eq. 27).
  int richardson_steps = 4;
  opt::RichardsonOptions richardson;
};

/// Rows per accumulation segment of AccumulateNormalEquations. The
/// segmentation is a property of the *data size only* — never of the thread
/// count — and partial sums are merged in segment order, so the accumulated
/// Gram/cross matrices are bit-identical for every thread count. A dataset
/// that fits one segment (n <= kFitSegmentRows, i.e. every unit-test
/// fixture) reduces to the plain streaming sweep, which itself matches the
/// historical dense design-matrix path bit for bit.
inline constexpr int kFitSegmentRows = 4096;

/// Persistent scratch for the Step 5 control-point update of Algorithm 1
/// (Li, Mei & Hu, ICDE 2016): the streaming Bernstein Gram/cross
/// accumulators, the Richardson workspace behind Eq. (27) and the
/// pseudo-inverse workspace behind Eq. (26) all live here, sized once by
/// Bind() and reused across outer iterations *and* restarts. After the
/// first Bind, steady-state AccumulateNormalEquations +
/// UpdateControlPoints perform zero heap allocations (asserted by
/// tests/core/fit_allocation_test.cc); the (k+1) x n design matrix the
/// pre-workspace update materialised every iteration is gone entirely.
///
/// Not thread-safe: one workspace per concurrently running fit (the
/// learner keeps one per restart worker). The *interior* of
/// AccumulateNormalEquations may fan segments out across a pool.
class FitWorkspace {
 public:
  FitWorkspace() = default;
  FitWorkspace(const FitWorkspace&) = delete;
  FitWorkspace& operator=(const FitWorkspace&) = delete;
  FitWorkspace(FitWorkspace&&) = default;
  FitWorkspace& operator=(FitWorkspace&&) = default;

  /// Sizes every buffer for an n x d dataset and a degree-k curve.
  /// Idempotent and cheap when the shape is unchanged (the restart /
  /// outer-iteration path); reallocates only on a shape change.
  void Bind(int n, int d, int degree);
  bool bound() const { return n_ > 0; }

  /// Streams the normal equations of Eq. (26) for the current scores:
  ///   gram  = (MZ)(MZ)^T   ((k+1) x (k+1)),
  ///   cross = X^T (MZ)^T   (d x (k+1)),
  /// accumulated over fixed kFitSegmentRows-row segments — in parallel
  /// across `pool` when it has workers and there is more than one segment —
  /// then reduced in segment order. Bit-identical for every thread count
  /// (pool may be null).
  void AccumulateNormalEquations(const linalg::Matrix& data,
                                 const linalg::Vector& scores,
                                 ThreadPool* pool);

  /// The accumulated matrices; valid until the next Accumulate call.
  const linalg::Matrix& gram() const { return total_.gram(); }
  const linalg::Matrix& cross() const { return total_.cross(); }

  /// Fused projection+accumulation access: the Step 4 projection pass
  /// (opt::IncrementalProjector::SetFusedAccumulators or
  /// opt::ProjectRowsBatchFused) streams each projected row straight into
  /// these per-segment accumulators, and ReduceFusedSegments() then merges
  /// them in segment order — the same ordered reduction
  /// AccumulateNormalEquations runs, so gram()/cross() are bit-identical
  /// to the separate sweep for every thread count. This removes the one
  /// remaining O(n) re-read of the dataset per outer iteration.
  std::vector<curve::BernsteinDesignAccumulator>* fused_segments() {
    return &segments_;
  }
  int num_segments() const { return num_segments_; }
  void ReduceFusedSegments();

  /// Step 5: updates *control (d x (k+1)) in place from the accumulated
  /// normal equations — Eq. (26) via the symmetric pseudo-inverse or
  /// `richardson_steps` preconditioned Richardson steps of Eq. (27). The
  /// arithmetic matches the historical allocating path bit for bit. On
  /// error *control may be partially updated; the learner aborts the fit.
  Status UpdateControlPoints(const ControlUpdateOptions& options,
                             linalg::Matrix* control);

 private:
  int n_ = 0;
  int d_ = 0;
  int degree_ = -1;
  int num_segments_ = 0;
  curve::BernsteinDesignAccumulator total_;
  std::vector<curve::BernsteinDesignAccumulator> segments_;
  opt::RichardsonWorkspace richardson_;
  linalg::SymmetricPinvWorkspace pinv_;
  linalg::Matrix gram_pinv_;  // (k+1)^2 scratch for the Eq. (26) path
};

}  // namespace rpc::core

#endif  // RPC_CORE_FIT_WORKSPACE_H_
