#ifndef RPC_CORE_RPC_RANKER_H_
#define RPC_CORE_RPC_RANKER_H_

#include <string>

#include "common/result.h"
#include "core/model_io.h"
#include "core/rpc_learner.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "rank/ranking_function.h"
#include "rank/ranking_list.h"

namespace rpc::core {

/// End-to-end RPC ranking pipeline on raw data: min-max normalisation
/// (Eq. 29) -> Algorithm 1 -> projection scores. Implements RankingFunction
/// so it can be audited against the five meta-rules and compared with the
/// baselines on equal footing.
class RpcRanker : public rank::RankingFunction {
 public:
  /// Fits on raw observations (rows) with the given orientation.
  static Result<RpcRanker> Fit(const linalg::Matrix& raw_data,
                               const order::Orientation& alpha,
                               const RpcLearnOptions& options = {});

  /// Convenience: filters complete rows of `dataset` and fits on them.
  static Result<RpcRanker> FitDataset(const data::Dataset& dataset,
                                      const order::Orientation& alpha,
                                      const RpcLearnOptions& options = {});

  /// Projection score s in [0,1] of a raw observation (higher = better).
  double Score(const linalg::Vector& x) const override;
  std::string name() const override { return "RPC"; }
  /// 4d for the cubic (Section 3.5 / Table 2's interpretability claim).
  std::optional<int> ParameterCount() const override {
    return curve_.dimension() * (curve_.degree() + 1);
  }

  const RpcCurve& curve() const { return curve_; }
  const data::Normalizer& normalizer() const { return normalizer_; }
  const RpcFitResult& fit_result() const { return fit_; }
  const order::Orientation& alpha() const { return curve_.alpha(); }

  /// Training scores rescaled to span [0, 1] — the presentation used in
  /// Table 2 (best anchor at 1, worst at 0).
  linalg::Vector UnitScores() const { return RescaleToUnit(fit_.scores); }

  /// Control/end points mapped back to the original data space — the
  /// interpretable parameters printed at the bottom of Table 2. Rows are
  /// p0..p_k, columns the attributes.
  linalg::Matrix ControlPointsInOriginalSpace() const;

  /// grid+1 skeleton samples mapped back to the raw space (for Fig. 7/8
  /// style projections).
  linalg::Matrix SampleSkeletonRaw(int grid) const;

  /// Ranking list of the training rows of `dataset` (labels preserved).
  rank::RankingList RankDataset(const data::Dataset& dataset) const;

  /// Everything needed to persist and re-score this model; see
  /// core/model_io.h for the serialisation format.
  /// The returned struct holds {alpha, mins, maxs, control points}.
  linalg::Matrix PortableControlPoints() const {
    return curve_.control_points();
  }

  /// The portable {alpha, mins, maxs, control points} form of this fitted
  /// model — the unit SaveModel persists and serve::RankingService loads.
  /// Scoring through the portable model is bit-identical to Score() (the
  /// text round-trip uses %.17g, which is exact for doubles).
  PortableRpcModel ToPortableModel() const;

 private:
  RpcRanker(data::Normalizer normalizer, RpcFitResult fit)
      : normalizer_(std::move(normalizer)),
        fit_(std::move(fit)),
        curve_(fit_.curve),
        projection_() {}

  data::Normalizer normalizer_;
  RpcFitResult fit_;
  RpcCurve curve_;
  opt::ProjectionOptions projection_;
};

}  // namespace rpc::core

#endif  // RPC_CORE_RPC_RANKER_H_
