#include "core/model_io.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/stringutil.h"
#include "opt/curve_projection.h"

namespace rpc::core {

using linalg::Matrix;
using linalg::Vector;

namespace {

std::string JoinNumbers(const Vector& values) {
  std::vector<std::string> parts;
  parts.reserve(static_cast<size_t>(values.size()));
  for (int i = 0; i < values.size(); ++i) {
    parts.push_back(StrFormat("%.17g", values[i]));
  }
  return Join(parts, " ");
}

Result<Vector> ParseNumbers(const std::vector<std::string>& tokens,
                            size_t offset, int expected) {
  if (static_cast<int>(tokens.size() - offset) != expected) {
    return Status::DataLoss(StrFormat(
        "model: expected %d numbers, found %zu", expected,
        tokens.size() - offset));
  }
  Vector values(expected);
  for (int i = 0; i < expected; ++i) {
    if (!ParseDouble(tokens[offset + static_cast<size_t>(i)], &values[i])) {
      return Status::DataLoss(StrFormat(
          "model: bad number '%s'",
          tokens[offset + static_cast<size_t>(i)].c_str()));
    }
  }
  return values;
}

std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

}  // namespace

std::string PortableRpcModel::Serialize() const {
  const int d = control_points.rows();
  const int k = control_points.cols() - 1;
  std::string out = "rpc-model v1\n";
  // The model version line is emitted only for versioned (streaming-tier)
  // snapshots, so batch-fit files stay byte-identical to the pre-versioning
  // format and remain loadable by older parsers.
  if (version != 0) {
    out += StrFormat("version %llu\n",
                     static_cast<unsigned long long>(version));
  }
  out += StrFormat("dimension %d\n", d);
  out += StrFormat("degree %d\n", k);
  out += "alpha";
  for (int j = 0; j < alpha.dimension(); ++j) {
    out += alpha.sign(j) > 0 ? " +1" : " -1";
  }
  out += "\n";
  out += "mins " + JoinNumbers(mins) + "\n";
  out += "maxs " + JoinNumbers(maxs) + "\n";
  for (int r = 0; r <= k; ++r) {
    out += StrFormat("control p%d ", r) +
           JoinNumbers(control_points.Column(r)) + "\n";
  }
  return out;
}

Result<PortableRpcModel> PortableRpcModel::Deserialize(
    const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  if (!std::getline(stream, line) || Trim(line) != "rpc-model v1") {
    return Status::DataLoss("model: missing 'rpc-model v1' header");
  }
  int dimension = -1;
  int degree = -1;
  std::uint64_t version = 0;
  std::vector<int> signs;
  Vector mins, maxs;
  std::vector<Vector> control;
  while (std::getline(stream, line)) {
    const std::vector<std::string> tokens = Tokens(line);
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];
    if (key == "version" && tokens.size() == 2) {
      // Parsed as an integer, not through ParseDouble: versions are
      // written with %llu and must round-trip exactly even above 2^53.
      const std::string& token = tokens[1];
      if (token.empty() ||
          token.find_first_not_of("0123456789") != std::string::npos) {
        return Status::DataLoss("model: bad version");
      }
      errno = 0;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
      if (errno == ERANGE || end == token.c_str() || *end != '\0') {
        return Status::DataLoss("model: bad version");
      }
      version = static_cast<std::uint64_t>(v);
    } else if (key == "dimension" && tokens.size() == 2) {
      double v;
      if (!ParseDouble(tokens[1], &v)) {
        return Status::DataLoss("model: bad dimension");
      }
      dimension = static_cast<int>(v);
    } else if (key == "degree" && tokens.size() == 2) {
      double v;
      if (!ParseDouble(tokens[1], &v)) {
        return Status::DataLoss("model: bad degree");
      }
      degree = static_cast<int>(v);
    } else if (key == "alpha") {
      for (size_t i = 1; i < tokens.size(); ++i) {
        double v;
        if (!ParseDouble(tokens[i], &v) || (v != 1.0 && v != -1.0)) {
          return Status::DataLoss("model: bad alpha entry");
        }
        signs.push_back(static_cast<int>(v));
      }
    } else if (key == "mins") {
      if (dimension <= 0) return Status::DataLoss("model: mins before dimension");
      RPC_ASSIGN_OR_RETURN(mins, ParseNumbers(tokens, 1, dimension));
    } else if (key == "maxs") {
      if (dimension <= 0) return Status::DataLoss("model: maxs before dimension");
      RPC_ASSIGN_OR_RETURN(maxs, ParseNumbers(tokens, 1, dimension));
    } else if (key == "control" && tokens.size() >= 2) {
      if (dimension <= 0) {
        return Status::DataLoss("model: control before dimension");
      }
      RPC_ASSIGN_OR_RETURN(Vector point, ParseNumbers(tokens, 2, dimension));
      control.push_back(std::move(point));
    } else {
      return Status::DataLoss(
          StrFormat("model: unknown line '%s'", key.c_str()));
    }
  }
  if (dimension <= 0 || degree < 1) {
    return Status::DataLoss("model: missing dimension/degree");
  }
  if (static_cast<int>(signs.size()) != dimension) {
    return Status::DataLoss("model: alpha size mismatch");
  }
  if (mins.size() != dimension || maxs.size() != dimension) {
    return Status::DataLoss("model: mins/maxs missing");
  }
  for (int j = 0; j < dimension; ++j) {
    if (!(maxs[j] > mins[j])) {
      return Status::DataLoss("model: maxs must exceed mins");
    }
  }
  if (static_cast<int>(control.size()) != degree + 1) {
    return Status::DataLoss(StrFormat(
        "model: expected %d control points, found %zu", degree + 1,
        control.size()));
  }
  PortableRpcModel model;
  model.version = version;
  RPC_ASSIGN_OR_RETURN(model.alpha,
                       order::Orientation::FromSigns(std::move(signs)));
  model.mins = std::move(mins);
  model.maxs = std::move(maxs);
  model.control_points = Matrix::FromColumns(control);
  // Validate the geometry before declaring success.
  RPC_RETURN_IF_ERROR(model.BuildCurve().status());
  return model;
}

Result<RpcCurve> PortableRpcModel::BuildCurve() const {
  // Accept both the pinned-corner and free-end-point variants.
  Result<RpcCurve> pinned =
      RpcCurve::FromControlPoints(control_points, alpha);
  if (pinned.ok()) return pinned;
  return RpcCurve::FromControlPointsUnchecked(control_points, alpha);
}

Result<double> PortableRpcModel::Score(const Vector& x) const {
  if (x.size() != control_points.rows()) {
    return Status::InvalidArgument("model: observation dimension mismatch");
  }
  RPC_ASSIGN_OR_RETURN(RpcCurve curve, BuildCurve());
  Vector normalized(x.size());
  for (int j = 0; j < x.size(); ++j) {
    normalized[j] = (x[j] - mins[j]) / (maxs[j] - mins[j]);
  }
  return opt::ProjectOntoCurve(curve.bezier(), normalized).s;
}

Status SaveModel(const PortableRpcModel& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound(StrFormat("cannot write '%s'", path.c_str()));
  }
  out << model.Serialize();
  return Status::Ok();
}

Result<PortableRpcModel> LoadModel(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return PortableRpcModel::Deserialize(buffer.str());
}

}  // namespace rpc::core
