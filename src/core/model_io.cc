#include "core/model_io.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "common/crc32c.h"
#include "common/stringutil.h"
#include "opt/curve_projection.h"

namespace rpc::core {

using linalg::Matrix;
using linalg::Vector;

namespace {

std::string JoinNumbers(const Vector& values) {
  std::vector<std::string> parts;
  parts.reserve(static_cast<size_t>(values.size()));
  for (int i = 0; i < values.size(); ++i) {
    parts.push_back(StrFormat("%.17g", values[i]));
  }
  return Join(parts, " ");
}

Result<Vector> ParseNumbers(const std::vector<std::string>& tokens,
                            size_t offset, int expected, const char* field,
                            int line_number) {
  if (static_cast<int>(tokens.size() - offset) != expected) {
    return Status::DataLoss(StrFormat(
        "model: field '%s' expects %d numbers, found %zu (line %d)", field,
        expected, tokens.size() - offset, line_number));
  }
  Vector values(expected);
  for (int i = 0; i < expected; ++i) {
    if (!ParseDouble(tokens[offset + static_cast<size_t>(i)], &values[i])) {
      return Status::DataLoss(StrFormat(
          "model: field '%s' has bad number '%s' (line %d)", field,
          tokens[offset + static_cast<size_t>(i)].c_str(), line_number));
    }
  }
  return values;
}

std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

}  // namespace

std::string PortableRpcModel::Serialize() const {
  const int d = control_points.rows();
  const int k = control_points.cols() - 1;
  std::string out = "rpc-model v1\n";
  // The model version line is emitted only for versioned (streaming-tier)
  // snapshots, so batch-fit files carry no meaningless `version 0` line.
  if (version != 0) {
    out += StrFormat("version %llu\n",
                     static_cast<unsigned long long>(version));
  }
  out += StrFormat("dimension %d\n", d);
  out += StrFormat("degree %d\n", k);
  out += "alpha";
  for (int j = 0; j < alpha.dimension(); ++j) {
    out += alpha.sign(j) > 0 ? " +1" : " -1";
  }
  out += "\n";
  out += "mins " + JoinNumbers(mins) + "\n";
  out += "maxs " + JoinNumbers(maxs) + "\n";
  for (int r = 0; r <= k; ++r) {
    out += StrFormat("control p%d ", r) +
           JoinNumbers(control_points.Column(r)) + "\n";
  }
  // Trailing checksum over every preceding byte. Textual truncation can
  // otherwise look valid — cutting a "%.17g" mid-number still parses — so
  // the checksum line is mandatory: Deserialize rejects input without it,
  // and any strict prefix or bit flip of a serialized model fails to load.
  out += StrFormat("crc32c %08x\n", Crc32c(out.data(), out.size()));
  return out;
}

Result<PortableRpcModel> PortableRpcModel::Deserialize(
    const std::string& text) {
  // Manual line walk (not getline) so every error can name its line and
  // the checksum line can cover exactly the bytes before itself.
  int dimension = -1;
  int degree = -1;
  std::uint64_t version = 0;
  std::vector<int> signs;
  Vector mins, maxs;
  std::vector<Vector> control;
  std::unordered_set<std::string> seen_keys;
  std::unordered_set<std::string> control_labels;
  bool saw_header = false;
  bool saw_crc = false;
  int line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    const size_t line_start = pos;
    const size_t line_end = eol == std::string::npos ? text.size() : eol;
    const std::string line = text.substr(line_start, line_end - line_start);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++line_number;

    if (!saw_header) {
      if (Trim(line) != "rpc-model v1") {
        return Status::DataLoss("model: missing 'rpc-model v1' header");
      }
      saw_header = true;
      continue;
    }
    const std::vector<std::string> tokens = Tokens(line);
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];
    if (saw_crc) {
      return Status::DataLoss(StrFormat(
          "model: trailing garbage after checksum line (line %d)",
          line_number));
    }
    if (key != "control" && key != "crc32c" && !seen_keys.insert(key).second) {
      return Status::DataLoss(StrFormat(
          "model: duplicate field '%s' (line %d)", key.c_str(), line_number));
    }
    if (key == "version") {
      if (tokens.size() != 2) {
        return Status::DataLoss(StrFormat(
            "model: field 'version' expects 1 value (line %d)", line_number));
      }
      // Parsed as an integer, not through ParseDouble: versions are
      // written with %llu and must round-trip exactly even above 2^53.
      const std::string& token = tokens[1];
      errno = 0;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
      if (token.empty() ||
          token.find_first_not_of("0123456789") != std::string::npos ||
          errno == ERANGE || end == token.c_str() || *end != '\0') {
        return Status::DataLoss(StrFormat(
            "model: field 'version' has bad value '%s' (line %d)",
            token.c_str(), line_number));
      }
      version = static_cast<std::uint64_t>(v);
    } else if (key == "dimension" || key == "degree") {
      double v;
      if (tokens.size() != 2 || !ParseDouble(tokens[1], &v)) {
        return Status::DataLoss(StrFormat(
            "model: field '%s' expects 1 number (line %d)", key.c_str(),
            line_number));
      }
      (key == "dimension" ? dimension : degree) = static_cast<int>(v);
    } else if (key == "alpha") {
      for (size_t i = 1; i < tokens.size(); ++i) {
        double v;
        if (!ParseDouble(tokens[i], &v) || (v != 1.0 && v != -1.0)) {
          return Status::DataLoss(StrFormat(
              "model: field 'alpha' has bad entry '%s' (line %d)",
              tokens[i].c_str(), line_number));
        }
        signs.push_back(static_cast<int>(v));
      }
    } else if (key == "mins" || key == "maxs") {
      if (dimension <= 0) {
        return Status::DataLoss(StrFormat(
            "model: field '%s' before dimension (line %d)", key.c_str(),
            line_number));
      }
      RPC_ASSIGN_OR_RETURN(
          (key == "mins" ? mins : maxs),
          ParseNumbers(tokens, 1, dimension, key.c_str(), line_number));
    } else if (key == "control" && tokens.size() >= 2) {
      if (dimension <= 0) {
        return Status::DataLoss(StrFormat(
            "model: field 'control' before dimension (line %d)",
            line_number));
      }
      if (!control_labels.insert(tokens[1]).second) {
        return Status::DataLoss(StrFormat(
            "model: duplicate control point '%s' (line %d)",
            tokens[1].c_str(), line_number));
      }
      RPC_ASSIGN_OR_RETURN(
          Vector point,
          ParseNumbers(tokens, 2, dimension, "control", line_number));
      control.push_back(std::move(point));
    } else if (key == "crc32c") {
      unsigned long long stored = 0;
      if (tokens.size() != 2 ||
          std::sscanf(tokens[1].c_str(), "%8llx", &stored) != 1 ||
          tokens[1].size() != 8 ||
          tokens[1].find_first_not_of("0123456789abcdef") !=
              std::string::npos) {
        return Status::DataLoss(StrFormat(
            "model: field 'crc32c' has bad value (line %d)", line_number));
      }
      const std::uint32_t actual = Crc32c(text.data(), line_start);
      if (static_cast<std::uint32_t>(stored) != actual) {
        return Status::DataLoss(StrFormat(
            "model: checksum mismatch at line %d — stored %08llx, computed "
            "%08x (truncated or corrupted input)",
            line_number, stored, actual));
      }
      saw_crc = true;
    } else {
      return Status::DataLoss(StrFormat(
          "model: unknown field '%s' (line %d)", key.c_str(), line_number));
    }
  }
  if (!saw_header) {
    return Status::DataLoss("model: missing 'rpc-model v1' header");
  }
  if (!saw_crc) {
    return Status::DataLoss(
        "model: missing trailing 'crc32c' line (truncated input?)");
  }
  if (dimension <= 0 || degree < 1) {
    return Status::DataLoss("model: missing field 'dimension' or 'degree'");
  }
  if (static_cast<int>(signs.size()) != dimension) {
    return Status::DataLoss("model: field 'alpha' size mismatch");
  }
  if (mins.size() != dimension || maxs.size() != dimension) {
    return Status::DataLoss("model: field 'mins' or 'maxs' missing");
  }
  for (int j = 0; j < dimension; ++j) {
    if (!(maxs[j] > mins[j])) {
      return Status::DataLoss("model: maxs must exceed mins");
    }
  }
  if (static_cast<int>(control.size()) != degree + 1) {
    return Status::DataLoss(StrFormat(
        "model: expected %d control points, found %zu", degree + 1,
        control.size()));
  }
  PortableRpcModel model;
  model.version = version;
  RPC_ASSIGN_OR_RETURN(model.alpha,
                       order::Orientation::FromSigns(std::move(signs)));
  model.mins = std::move(mins);
  model.maxs = std::move(maxs);
  model.control_points = Matrix::FromColumns(control);
  // Validate the geometry before declaring success.
  RPC_RETURN_IF_ERROR(model.BuildCurve().status());
  return model;
}

Result<RpcCurve> PortableRpcModel::BuildCurve() const {
  // Accept both the pinned-corner and free-end-point variants.
  Result<RpcCurve> pinned =
      RpcCurve::FromControlPoints(control_points, alpha);
  if (pinned.ok()) return pinned;
  return RpcCurve::FromControlPointsUnchecked(control_points, alpha);
}

Result<double> PortableRpcModel::Score(const Vector& x) const {
  if (x.size() != control_points.rows()) {
    return Status::InvalidArgument("model: observation dimension mismatch");
  }
  RPC_ASSIGN_OR_RETURN(RpcCurve curve, BuildCurve());
  Vector normalized(x.size());
  for (int j = 0; j < x.size(); ++j) {
    normalized[j] = (x[j] - mins[j]) / (maxs[j] - mins[j]);
  }
  return opt::ProjectOntoCurve(curve.bezier(), normalized).s;
}

Status SaveModel(const PortableRpcModel& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound(StrFormat("cannot write '%s'", path.c_str()));
  }
  out << model.Serialize();
  return Status::Ok();
}

Result<PortableRpcModel> LoadModel(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return PortableRpcModel::Deserialize(buffer.str());
}

}  // namespace rpc::core
