#include "core/interpretation.h"

#include <cmath>

#include "common/stringutil.h"

namespace rpc::core {

const char* CurveShapeToString(CurveShape shape) {
  switch (shape) {
    case CurveShape::kLinear:
      return "linear";
    case CurveShape::kConvex:
      return "convex (slow start, fast finish)";
    case CurveShape::kConcave:
      return "concave (fast start, slow finish)";
    case CurveShape::kSShape:
      return "S-shaped (slow-fast-slow)";
    case CurveShape::kInverseS:
      return "inverse-S (fast-slow-fast)";
  }
  return "unknown";
}

std::vector<AttributeInterpretation> InterpretCurve(const RpcCurve& curve) {
  std::vector<AttributeInterpretation> out;
  const linalg::Matrix& control = curve.control_points();
  const int k = curve.degree();
  const double kShapeTol = 0.04;  // deviation treated as "on the diagonal"
  for (int j = 0; j < curve.dimension(); ++j) {
    AttributeInterpretation interp;
    interp.attribute = j;
    // Express interior control values along the oriented axis: 0 at the
    // worst end, 1 at the best end of this attribute.
    const double start = control(j, 0);
    const double end = control(j, k);
    const double span = end - start;
    const double denom = std::fabs(span) > 1e-12 ? span : 1.0;
    // For degrees != 3 use the first/last interior points as b1/b2.
    const int r1 = 1;
    const int r2 = k >= 2 ? k - 1 : 1;
    interp.b1 = (control(j, r1) - start) / denom;
    interp.b2 = (control(j, r2) - start) / denom;
    // Straight-diagonal references for those control indices.
    const double diag1 = static_cast<double>(r1) / k;
    const double diag2 = static_cast<double>(r2) / k;
    const double d1 = interp.b1 - diag1;
    const double d2 = interp.b2 - diag2;
    if (std::fabs(d1) < kShapeTol && std::fabs(d2) < kShapeTol) {
      interp.shape = CurveShape::kLinear;
    } else if (d1 <= 0.0 && d2 <= 0.0) {
      interp.shape = CurveShape::kConvex;
    } else if (d1 >= 0.0 && d2 >= 0.0) {
      interp.shape = CurveShape::kConcave;
    } else if (d1 < 0.0 && d2 > 0.0) {
      interp.shape = CurveShape::kSShape;
    } else {
      interp.shape = CurveShape::kInverseS;
    }
    // Nonlinearity: max deviation of f_j(s) from the chord on a grid.
    double worst = 0.0;
    const int grid = 128;
    for (int g = 0; g <= grid; ++g) {
      const double s = static_cast<double>(g) / grid;
      const double f = curve.Evaluate(s)[j];
      const double chord = start + s * span;
      worst = std::max(worst, std::fabs(f - chord));
    }
    interp.nonlinearity = worst;
    out.push_back(interp);
  }
  return out;
}

std::string InterpretationReport(
    const RpcCurve& curve, const std::vector<std::string>& attribute_names) {
  std::string out =
      StrFormat("RPC interpretation (%d attributes, %d parameters)\n",
                curve.dimension(),
                curve.dimension() * (curve.degree() + 1));
  for (const AttributeInterpretation& interp : InterpretCurve(curve)) {
    const std::string name =
        interp.attribute < static_cast<int>(attribute_names.size())
            ? attribute_names[static_cast<size_t>(interp.attribute)]
            : StrFormat("attr%d", interp.attribute);
    out += StrFormat(
        "  %-16s %-34s b1=%.3f b2=%.3f nonlinearity=%.3f\n", name.c_str(),
        CurveShapeToString(interp.shape), interp.b1, interp.b2,
        interp.nonlinearity);
  }
  return out;
}

}  // namespace rpc::core
