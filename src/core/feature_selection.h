#ifndef RPC_CORE_FEATURE_SELECTION_H_
#define RPC_CORE_FEATURE_SELECTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/rpc_ranker.h"
#include "data/dataset.h"
#include "order/orientation.h"

namespace rpc::core {

/// Importance of one attribute for a fitted RPC ranking — the concrete form
/// of the feature-selection direction Section 7 leaves as future work.
struct AttributeImportance {
  int index = 0;
  std::string name;
  /// |Spearman correlation| between the attribute values and the RPC
  /// scores: how much of the final order this attribute alone carries.
  double score_alignment = 0.0;
  /// Nonlinearity of f_j (chord deviation), from InterpretCurve.
  double nonlinearity = 0.0;
};

/// Ranks attributes by score alignment (descending) for a fitted ranker on
/// its training data.
Result<std::vector<AttributeImportance>> RankAttributes(
    const RpcRanker& ranker, const data::Dataset& dataset);

/// Greedy forward selection: starting from the single best-aligned
/// attribute, adds attributes until the RPC ranking computed on the subset
/// reaches `target_tau` Kendall tau-b against the full-attribute ranking.
struct FeatureSelectionResult {
  std::vector<int> selected;          // attribute indices, selection order
  std::vector<double> tau_trajectory; // tau after each addition
  double achieved_tau = 0.0;
};
Result<FeatureSelectionResult> GreedySelectAttributes(
    const data::Dataset& dataset, const order::Orientation& alpha,
    double target_tau = 0.95, const RpcLearnOptions& options = {});

}  // namespace rpc::core

#endif  // RPC_CORE_FEATURE_SELECTION_H_
