// durable::Snapshot: milestone state capture for bounded-replay recovery.
// The encode/decode pair must round-trip every field bit-for-bit (the
// normalizer statistics especially — recovery promises bit-identical
// state), and the reader must refuse anything damaged: truncation, bit
// flips, trailing garbage, half-written temp files.
#include "durable/snapshot.h"

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "durable/file_util.h"

namespace rpc::durable {
namespace {

SnapshotState SampleState() {
  SnapshotState state;
  state.d = 3;
  state.last_seq = 4242;
  state.next_row_id = 97;
  state.model_text = "rpc-model v1\nnot actually parsed by the codec\n";
  state.norm_count = 41;
  state.norm_bounds_stale = true;
  state.norm_mins = {-1.25, 0.0, 3.5e-9};
  state.norm_maxs = {2.5, 1.0, 7.25e9};
  // Deliberately awkward doubles: denormals, negative zero, exact halves.
  state.norm_mean = {0.1 + 0.2, -0.0, 5e-324};
  state.norm_m2 = {1.0 / 3.0, 0.0, 2.2250738585072014e-308};
  state.row_ids = {5, 7, 11};
  state.rows = {0.5, 1.5, 2.5, -0.5, -1.5, -2.5, 9.0, 8.0, 7.0};
  state.s = {0.25, 0.5, 0.75};
  state.appended = 12;
  state.retired = 3;
  state.retire_misses = 1;
  state.events_processed = 15;
  state.refreshes = 4;
  state.skipped_refreshes = 2;
  state.failed_refreshes = 1;
  state.publish_failures = 0;
  state.events_since_refresh = 6;
  state.events_since_cold = 9;
  state.last_drift = 0.0375;
  return state;
}

void ExpectBitIdentical(const SnapshotState& a, const SnapshotState& b) {
  EXPECT_EQ(a.d, b.d);
  EXPECT_EQ(a.last_seq, b.last_seq);
  EXPECT_EQ(a.next_row_id, b.next_row_id);
  EXPECT_EQ(a.model_text, b.model_text);
  EXPECT_EQ(a.norm_count, b.norm_count);
  EXPECT_EQ(a.norm_bounds_stale, b.norm_bounds_stale);
  const auto bits = [](const std::vector<double>& v) {
    std::vector<std::uint64_t> out;
    out.reserve(v.size());
    for (const double x : v) out.push_back(std::bit_cast<std::uint64_t>(x));
    return out;
  };
  EXPECT_EQ(bits(a.norm_mins), bits(b.norm_mins));
  EXPECT_EQ(bits(a.norm_maxs), bits(b.norm_maxs));
  EXPECT_EQ(bits(a.norm_mean), bits(b.norm_mean));
  EXPECT_EQ(bits(a.norm_m2), bits(b.norm_m2));
  EXPECT_EQ(a.row_ids, b.row_ids);
  EXPECT_EQ(bits(a.rows), bits(b.rows));
  EXPECT_EQ(bits(a.s), bits(b.s));
  EXPECT_EQ(a.appended, b.appended);
  EXPECT_EQ(a.retired, b.retired);
  EXPECT_EQ(a.retire_misses, b.retire_misses);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.refreshes, b.refreshes);
  EXPECT_EQ(a.skipped_refreshes, b.skipped_refreshes);
  EXPECT_EQ(a.failed_refreshes, b.failed_refreshes);
  EXPECT_EQ(a.publish_failures, b.publish_failures);
  EXPECT_EQ(a.events_since_refresh, b.events_since_refresh);
  EXPECT_EQ(a.events_since_cold, b.events_since_cold);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.last_drift),
            std::bit_cast<std::uint64_t>(b.last_drift));
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char templ[] = "/tmp/rpc_snapshot_test_XXXXXX";
    ASSERT_NE(::mkdtemp(templ), nullptr);
    dir_ = templ;
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_F(SnapshotTest, EncodeDecodeRoundTripsEveryFieldBitForBit) {
  const SnapshotState state = SampleState();
  const std::string encoded = EncodeSnapshot(state);
  const auto decoded = DecodeSnapshot(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectBitIdentical(state, *decoded);
}

TEST_F(SnapshotTest, EveryTruncationIsRejected) {
  const std::string encoded = EncodeSnapshot(SampleState());
  for (size_t length = 0; length < encoded.size(); ++length) {
    const auto decoded =
        DecodeSnapshot(std::string_view(encoded).substr(0, length));
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << length;
  }
}

TEST_F(SnapshotTest, EverySingleBitFlipIsRejected) {
  std::string encoded = EncodeSnapshot(SampleState());
  for (size_t byte = 0; byte < encoded.size(); ++byte) {
    encoded[byte] ^= 0x01;
    EXPECT_FALSE(DecodeSnapshot(encoded).ok()) << "byte " << byte;
    encoded[byte] ^= 0x01;
  }
  // Sanity: restored buffer decodes again.
  EXPECT_TRUE(DecodeSnapshot(encoded).ok());
}

TEST_F(SnapshotTest, TrailingGarbageIsRejected) {
  const std::string encoded = EncodeSnapshot(SampleState());
  EXPECT_FALSE(DecodeSnapshot(encoded + "x").ok());
  EXPECT_FALSE(DecodeSnapshot(encoded + std::string(64, '\0')).ok());
}

TEST_F(SnapshotTest, WriteThenLoadLatestFindsTheNewest) {
  SnapshotState old_state = SampleState();
  old_state.last_seq = 100;
  SnapshotState new_state = SampleState();
  new_state.last_seq = 200;
  new_state.next_row_id = 1234;
  ASSERT_TRUE(WriteSnapshot(dir_, old_state, nullptr).ok());
  ASSERT_TRUE(WriteSnapshot(dir_, new_state, nullptr).ok());

  const auto loaded = LoadLatestSnapshot(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->fallbacks, 0);
  ExpectBitIdentical(new_state, loaded->state);

  const std::vector<std::uint64_t> seqs = ListSnapshotSeqs(dir_);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0], 100u);
  EXPECT_EQ(seqs[1], 200u);
}

TEST_F(SnapshotTest, CorruptNewestFallsBackToOlderSnapshot) {
  SnapshotState old_state = SampleState();
  old_state.last_seq = 100;
  SnapshotState new_state = SampleState();
  new_state.last_seq = 200;
  ASSERT_TRUE(WriteSnapshot(dir_, old_state, nullptr).ok());
  ASSERT_TRUE(WriteSnapshot(dir_, new_state, nullptr).ok());

  // Rot one byte of the newest snapshot on disk.
  const std::string victim = dir_ + "/snapshot-00000000000000c8.snap";
  auto data = ReadFile(victim);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  std::string bytes = *data;
  bytes[bytes.size() / 2] ^= 0x40;
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const auto loaded = LoadLatestSnapshot(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->fallbacks, 1);  // the rotten one was skipped
  ExpectBitIdentical(old_state, loaded->state);
}

TEST_F(SnapshotTest, HalfWrittenTempFileIsInvisible) {
  SnapshotState state = SampleState();
  state.last_seq = 300;
  ASSERT_TRUE(WriteSnapshot(dir_, state, nullptr).ok());

  // A crash mid-write leaves `<name>.tmp`; it must never shadow the real
  // snapshot nor appear in the listing.
  std::ofstream(dir_ + "/snapshot-ffffffffffffffff.snap.tmp")
      << "half written";
  EXPECT_EQ(ListSnapshotSeqs(dir_).size(), 1u);
  const auto loaded = LoadLatestSnapshot(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->state.last_seq, 300u);
}

TEST_F(SnapshotTest, EmptyDirectoryIsNotFound) {
  const auto loaded = LoadLatestSnapshot(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotTest, RemoveOldSnapshotsKeepsTheNewest) {
  for (std::uint64_t seq : {10u, 20u, 30u, 40u}) {
    SnapshotState state = SampleState();
    state.last_seq = seq;
    ASSERT_TRUE(WriteSnapshot(dir_, state, nullptr).ok());
  }
  ASSERT_TRUE(RemoveOldSnapshots(dir_, 2).ok());
  const std::vector<std::uint64_t> seqs = ListSnapshotSeqs(dir_);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0], 30u);
  EXPECT_EQ(seqs[1], 40u);
}

TEST_F(SnapshotTest, PartialSnapshotFailpointLeavesPreviousSnapshotIntact) {
  SnapshotState good = SampleState();
  good.last_seq = 50;
  ASSERT_TRUE(WriteSnapshot(dir_, good, nullptr).ok());

  FaultInjector injector;
  injector.Arm(FailPoint::kPartialSnapshot, 1);
  SnapshotState doomed = SampleState();
  doomed.last_seq = 60;
  EXPECT_FALSE(WriteSnapshot(dir_, doomed, &injector).ok());
  EXPECT_TRUE(injector.crashed());

  const auto loaded = LoadLatestSnapshot(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->state.last_seq, 50u);
}

TEST_F(SnapshotTest, CrashBetweenFsyncAndRenameLeavesPreviousIntact) {
  SnapshotState good = SampleState();
  good.last_seq = 50;
  ASSERT_TRUE(WriteSnapshot(dir_, good, nullptr).ok());

  FaultInjector injector;
  injector.Arm(FailPoint::kCrashBetweenFsyncAndRename, 1);
  SnapshotState doomed = SampleState();
  doomed.last_seq = 60;
  EXPECT_FALSE(WriteSnapshot(dir_, doomed, &injector).ok());

  // The temp is complete on disk but was never renamed: invisible.
  const auto loaded = LoadLatestSnapshot(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->state.last_seq, 50u);
}

TEST_F(SnapshotTest, InternallyInconsistentSizesAreRejected) {
  SnapshotState state = SampleState();
  state.s.pop_back();  // 2 scores for 3 rows
  const auto decoded = DecodeSnapshot(EncodeSnapshot(state));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace rpc::durable
