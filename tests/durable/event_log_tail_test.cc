// durable::ReadLogTail — the WAL shipper's read path. Its contracts are
// what replication leans on: records come back in order and bit-identical,
// the caps (records / bytes / max_seq) bound each batch, a torn record at
// the very tail is "not finished landing yet" rather than an error, and a
// reader racing the live group-commit writer across segment rollovers
// never sees corruption or an out-of-order sequence.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "durable/event_log.h"
#include "durable/file_util.h"

namespace rpc::durable {
namespace {

class EventLogTailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char templ[] = "/tmp/rpc_event_log_tail_test_XXXXXX";
    ASSERT_NE(::mkdtemp(templ), nullptr);
    dir_ = templ;
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string dir_;
};

TEST_F(EventLogTailTest, CollectsAfterSeqInOrderWithOwnedPayloads) {
  auto log = EventLog::Open(dir_, 2, 1, {});
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 6; ++i) {
    (*log)->Append(RecordType::kAppend, "payload-" + std::to_string(i));
  }
  ASSERT_TRUE((*log)->Sync().ok());

  TailLimits limits;
  auto batch = ReadLogTail(dir_, 2, /*after_seq=*/2, limits);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_FALSE(batch->hit_limit);
  EXPECT_EQ(batch->last_seq, 6u);
  ASSERT_EQ(batch->records.size(), 4u);
  for (size_t i = 0; i < batch->records.size(); ++i) {
    EXPECT_EQ(batch->records[i].seq, 3 + i);
    EXPECT_EQ(batch->records[i].payload,
              "payload-" + std::to_string(2 + i));
  }

  // Reading from the very end is an empty batch, not an error (the
  // shipper's heartbeat case).
  auto empty = ReadLogTail(dir_, 2, 6, limits);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->records.empty());
  EXPECT_EQ(empty->last_seq, 6u);
  EXPECT_FALSE(empty->hit_limit);
}

TEST_F(EventLogTailTest, MaxRecordsAndMaxBytesBoundTheBatch) {
  auto log = EventLog::Open(dir_, 2, 1, {});
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 10; ++i) {
    (*log)->Append(RecordType::kAppend, std::string(100, 'x'));
  }
  ASSERT_TRUE((*log)->Sync().ok());

  TailLimits by_count;
  by_count.max_records = 3;
  auto counted = ReadLogTail(dir_, 2, 0, by_count);
  ASSERT_TRUE(counted.ok());
  EXPECT_TRUE(counted->hit_limit);
  EXPECT_EQ(counted->records.size(), 3u);
  EXPECT_EQ(counted->last_seq, 3u);

  TailLimits by_bytes;
  by_bytes.max_bytes = 250;  // two and a half records' worth of payload
  auto sized = ReadLogTail(dir_, 2, 0, by_bytes);
  ASSERT_TRUE(sized.ok());
  EXPECT_TRUE(sized->hit_limit);
  EXPECT_GE(sized->records.size(), 2u);
  EXPECT_LT(sized->records.size(), 10u);

  // hit_limit means "ask again from last_seq": the chained reads cover
  // everything exactly once.
  std::uint64_t after = 0;
  std::size_t total = 0;
  for (int guard = 0; guard < 10; ++guard) {
    auto chunk = ReadLogTail(dir_, 2, after, by_count);
    ASSERT_TRUE(chunk.ok());
    total += chunk->records.size();
    after = chunk->last_seq;
    if (!chunk->hit_limit) break;
  }
  EXPECT_EQ(total, 10u);
}

TEST_F(EventLogTailTest, MaxSeqCapsAtThePrimarysSyncedFrontier) {
  auto log = EventLog::Open(dir_, 2, 1, {});
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 4; ++i) {
    (*log)->Append(RecordType::kAppend, "synced");
  }
  ASSERT_TRUE((*log)->Sync().ok());
  // Staged but NOT synced: a shipper capping at last_synced_seq must
  // never see these even once they land on disk.
  (*log)->Append(RecordType::kAppend, "unsynced");
  (*log)->Append(RecordType::kAppend, "unsynced");

  TailLimits limits;
  limits.max_seq = (*log)->last_synced_seq();
  auto batch = ReadLogTail(dir_, 2, 0, limits);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->records.size(), 4u);
  EXPECT_EQ(batch->last_seq, 4u);
  EXPECT_FALSE(batch->hit_limit);  // stopped at the cap, nothing pending
}

TEST_F(EventLogTailTest, TornTailRecordIsEndOfLogNotAnError) {
  auto log = EventLog::Open(dir_, 2, 1, {});
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 4; ++i) {
    (*log)->Append(RecordType::kAppend, "record-" + std::to_string(i));
  }
  ASSERT_TRUE((*log)->Sync().ok());

  // Model a group commit caught mid-write(2): cut the final record in
  // half. A replication read must treat the valid prefix as the whole
  // log — the writer simply hasn't finished landing the batch.
  const auto segments = ListFiles(dir_, "wal-", ".log");
  ASSERT_EQ(segments.size(), 1u);
  const std::string segment = dir_ + "/" + segments.front();
  auto full = ReadFile(segment);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(::truncate(segment.c_str(),
                       static_cast<off_t>(full->size() - 10)),
            0);

  TailLimits limits;
  auto batch = ReadLogTail(dir_, 2, 0, limits);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->records.size(), 3u);
  EXPECT_EQ(batch->last_seq, 3u);

  // The "writer" finishes the commit (the full bytes reappear): the next
  // chained read picks up exactly the completed record.
  {
    std::ofstream out(segment, std::ios::binary | std::ios::trunc);
    out.write(full->data(), static_cast<std::streamsize>(full->size()));
  }
  auto rest = ReadLogTail(dir_, 2, batch->last_seq, limits);
  ASSERT_TRUE(rest.ok());
  ASSERT_EQ(rest->records.size(), 1u);
  EXPECT_EQ(rest->records.front().seq, 4u);
  EXPECT_EQ(rest->records.front().payload, "record-3");
}

TEST_F(EventLogTailTest, OldestWalSeqTracksTruncation) {
  EXPECT_EQ(OldestWalSeq(dir_), 0u);  // nothing on disk yet
  EventLog::Options options;
  options.segment_bytes = 64;  // several segments
  auto log = EventLog::Open(dir_, 2, 1, options);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(OldestWalSeq(dir_), 1u);
  for (int i = 0; i < 8; ++i) {
    (*log)->Append(RecordType::kAppend, "some-sizable-payload-here");
    ASSERT_TRUE((*log)->Sync().ok());
  }
  ASSERT_TRUE((*log)->TruncateThrough(5).ok());
  const std::uint64_t oldest = OldestWalSeq(dir_);
  EXPECT_GT(oldest, 1u);
  // Segment-granular: the oldest surviving segment may still start at or
  // before the truncation point, never after it.
  EXPECT_LE(oldest, 6u);
}

// The race the WAL shipper actually runs: one writer thread appending and
// group-committing through rolling segments (the streaming tier's aux
// lane), one reader thread chasing the synced frontier with ReadLogTail.
// Whatever the interleaving, the reader must see a gapless, in-order,
// bit-identical prefix — mid-commit partial frames and half-written
// segment headers must look like end-of-log, never corruption.
TEST_F(EventLogTailTest, TailReaderRacesRollingGroupCommitWriter) {
  constexpr int kRecords = 400;
  EventLog::Options options;
  options.segment_bytes = 256;  // constant rollover under the reader
  auto log = EventLog::Open(dir_, 2, 1, options);
  ASSERT_TRUE(log.ok());

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < kRecords; ++i) {
      (*log)->Append(RecordType::kAppend, "race-payload-" + std::to_string(i));
      if (i % 3 == 0) EXPECT_TRUE((*log)->Sync().ok());
    }
    EXPECT_TRUE((*log)->Sync().ok());
    done.store(true);
  });

  std::vector<TailRecord> collected;
  std::uint64_t after = 0;
  Status read_error = Status::Ok();
  while (true) {
    const bool writer_done = done.load();
    TailLimits limits;
    limits.max_records = 32;
    limits.max_seq = (*log)->last_synced_seq();
    auto batch = ReadLogTail(dir_, 2, after, limits);
    if (!batch.ok()) {
      read_error = batch.status();
      break;
    }
    for (auto& record : batch->records) {
      collected.push_back(std::move(record));
    }
    after = batch->last_seq;
    if (writer_done && !batch->hit_limit &&
        after == (*log)->last_synced_seq()) {
      break;
    }
  }
  writer.join();
  ASSERT_TRUE(read_error.ok()) << read_error.ToString();
  ASSERT_EQ(collected.size(), static_cast<size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(collected[static_cast<size_t>(i)].seq,
              static_cast<std::uint64_t>(i) + 1);
    EXPECT_EQ(collected[static_cast<size_t>(i)].payload,
              "race-payload-" + std::to_string(i));
  }
}

// Same race with the log compacting underneath: the writer truncates
// behind a moving "snapshot" while the reader stays close to the tail.
// The reader never needs the dropped segments (its offset is past them),
// so it must never notice the truncation.
TEST_F(EventLogTailTest, TailReaderSurvivesConcurrentTruncation) {
  constexpr int kRecords = 300;
  EventLog::Options options;
  options.segment_bytes = 256;
  auto log = EventLog::Open(dir_, 2, 1, options);
  ASSERT_TRUE(log.ok());

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reader_at{0};
  std::thread writer([&] {
    for (int i = 0; i < kRecords; ++i) {
      (*log)->Append(RecordType::kAppend, "compact-race-" + std::to_string(i));
      EXPECT_TRUE((*log)->Sync().ok());
      if (i % 25 == 24) {
        // A milestone snapshot landed well behind the tail; compact — but
        // never past the standby's acked offset (the wal_keep_events
        // contract a replicating primary honors).
        const std::uint64_t horizon = std::min(
            static_cast<std::uint64_t>(i) - 20, reader_at.load());
        EXPECT_TRUE((*log)->TruncateThrough(horizon).ok());
      }
    }
    done.store(true);
  });

  std::uint64_t after = 0;
  std::uint64_t seen = 0;
  Status read_error = Status::Ok();
  while (true) {
    const bool writer_done = done.load();
    TailLimits limits;
    limits.max_records = 16;
    limits.max_seq = (*log)->last_synced_seq();
    auto batch = ReadLogTail(dir_, 2, after, limits);
    if (!batch.ok()) {
      read_error = batch.status();
      break;
    }
    for (size_t i = 0; i < batch->records.size(); ++i) {
      ++seen;
      ASSERT_EQ(batch->records[i].seq, after + i + 1);
    }
    after = batch->last_seq;
    reader_at.store(after);
    if (writer_done && !batch->hit_limit &&
        after == (*log)->last_synced_seq()) {
      break;
    }
  }
  writer.join();
  ASSERT_TRUE(read_error.ok()) << read_error.ToString();
  EXPECT_EQ(seen, static_cast<std::uint64_t>(kRecords));
}

}  // namespace
}  // namespace rpc::durable
