// durable::FaultInjector: the deterministic crash driver for the
// kill-and-recover tests. Countdown semantics and the crashed() latch are
// what make "kill the process at exactly the N-th write" reproducible.
#include "durable/fault_injector.h"

#include <gtest/gtest.h>

namespace rpc::durable {
namespace {

TEST(FaultInjectorTest, UnarmedNeverFires) {
  FaultInjector injector;
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(injector.Fire(FailPoint::kTornTailWrite));
  }
  EXPECT_FALSE(injector.crashed());
}

TEST(FaultInjectorTest, FiresExactlyOnCountdownThenStaysCrashed) {
  FaultInjector injector;
  injector.Arm(FailPoint::kChecksumFlip, 3);
  EXPECT_FALSE(injector.Fire(FailPoint::kChecksumFlip));
  EXPECT_FALSE(injector.Fire(FailPoint::kChecksumFlip));
  EXPECT_FALSE(injector.crashed());
  EXPECT_TRUE(injector.Fire(FailPoint::kChecksumFlip));
  EXPECT_TRUE(injector.crashed());
  // A crashed process cannot fire again; it is gone.
  EXPECT_FALSE(injector.Fire(FailPoint::kChecksumFlip));
  EXPECT_TRUE(injector.crashed());
}

TEST(FaultInjectorTest, OnlyTheArmedPointFires) {
  FaultInjector injector;
  injector.Arm(FailPoint::kPartialSnapshot, 1);
  EXPECT_FALSE(injector.Fire(FailPoint::kTornTailWrite));
  EXPECT_FALSE(injector.Fire(FailPoint::kCrashBetweenFsyncAndRename));
  EXPECT_FALSE(injector.crashed());
  EXPECT_TRUE(injector.Fire(FailPoint::kPartialSnapshot));
}

TEST(FaultInjectorTest, KillCrashesWithoutFiring) {
  FaultInjector injector;
  injector.Arm(FailPoint::kTornTailWrite, 5);
  injector.Kill();
  EXPECT_TRUE(injector.crashed());
  EXPECT_FALSE(injector.Fire(FailPoint::kTornTailWrite));
}

TEST(FaultInjectorTest, ReArmingReplacesCountdown) {
  FaultInjector injector;
  injector.Arm(FailPoint::kTornTailWrite, 10);
  injector.Arm(FailPoint::kTornTailWrite, 1);
  EXPECT_TRUE(injector.Fire(FailPoint::kTornTailWrite));
}

TEST(FaultInjectorTest, FailPointNamesRoundTripThroughSpecs) {
  const FailPoint points[] = {
      FailPoint::kTornTailWrite, FailPoint::kChecksumFlip,
      FailPoint::kPartialSnapshot, FailPoint::kCrashBetweenFsyncAndRename};
  for (const FailPoint point : points) {
    FaultInjector injector;
    ASSERT_TRUE(injector.ArmFromSpec(FailPointName(point)).ok())
        << FailPointName(point);
    EXPECT_TRUE(injector.Fire(point)) << FailPointName(point);
  }
}

TEST(FaultInjectorTest, SpecWithCountArmsTheCountdown) {
  FaultInjector injector;
  ASSERT_TRUE(injector.ArmFromSpec("torn_tail_write:2").ok());
  EXPECT_FALSE(injector.Fire(FailPoint::kTornTailWrite));
  EXPECT_TRUE(injector.Fire(FailPoint::kTornTailWrite));
}

TEST(FaultInjectorTest, BadSpecsAreRejected) {
  FaultInjector injector;
  EXPECT_FALSE(injector.ArmFromSpec("no_such_failpoint").ok());
  EXPECT_FALSE(injector.ArmFromSpec("torn_tail_write:0").ok());
  EXPECT_FALSE(injector.ArmFromSpec("torn_tail_write:abc").ok());
  EXPECT_FALSE(injector.ArmFromSpec("").ok());
  EXPECT_FALSE(injector.crashed());
}

}  // namespace
}  // namespace rpc::durable
