// rpc::Crc32c: the checksum under every durable artefact (WAL records,
// snapshots, serialized models). Pinned to the Castagnoli polynomial's
// published test vector so an implementation change can never silently
// invalidate existing logs on disk.
#include "common/crc32c.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

namespace rpc {
namespace {

TEST(Crc32cTest, MatchesPublishedCastagnoliVector) {
  // RFC 3720 appendix / the canonical CRC-32C check value.
  const std::string msg = "123456789";
  EXPECT_EQ(Crc32c(msg.data(), msg.size()), 0xE3069283u);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, ExtendComposesWithOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = Crc32c(msg.data(), msg.size());
  // Any split point must give the same digest via Extend.
  for (size_t cut = 0; cut <= msg.size(); ++cut) {
    std::uint32_t crc = Crc32cExtend(0, msg.data(), cut);
    crc = Crc32cExtend(crc, msg.data() + cut, msg.size() - cut);
    EXPECT_EQ(crc, whole) << "cut " << cut;
  }
}

TEST(Crc32cTest, DetectsEverySingleBitFlip) {
  std::string msg = "durable event log record payload";
  const std::uint32_t clean = Crc32c(msg.data(), msg.size());
  for (size_t byte = 0; byte < msg.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      msg[byte] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32c(msg.data(), msg.size()), clean)
          << "byte " << byte << " bit " << bit;
      msg[byte] ^= static_cast<char>(1 << bit);
    }
  }
}

TEST(Crc32cTest, DistinguishesPrefixes) {
  const std::string msg = "abcdefgh";
  std::uint32_t previous = Crc32c(msg.data(), 0);
  for (size_t n = 1; n <= msg.size(); ++n) {
    const std::uint32_t crc = Crc32c(msg.data(), n);
    EXPECT_NE(crc, previous) << "length " << n;
    previous = crc;
  }
}

}  // namespace
}  // namespace rpc
