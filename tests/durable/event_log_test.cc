// durable::EventLog: the write-ahead log under the streaming tier. The
// contracts tested here are exactly what Recover() leans on — synced
// records replay in order and bit-identically, a torn or bit-rotted tail
// is dropped as if never written, any *mid-log* corruption or sequence gap
// is loudly unrecoverable, and truncation never removes uncovered records.
#include "durable/event_log.h"

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "durable/file_util.h"

namespace rpc::durable {
namespace {

class EventLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char templ[] = "/tmp/rpc_event_log_test_XXXXXX";
    ASSERT_NE(::mkdtemp(templ), nullptr);
    dir_ = templ;
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  struct Collected {
    std::uint64_t seq;
    RecordType type;
    std::string payload;
  };

  Result<ReplayResult> Replay(int d, std::uint64_t after_seq,
                              std::vector<Collected>* out) {
    return ReplayEventLog(dir_, d, after_seq,
                          [out](const ReplayRecord& record) {
                            out->push_back({record.seq, record.type,
                                            std::string(record.payload)});
                            return Status::Ok();
                          });
  }

  std::string dir_;
};

TEST_F(EventLogTest, SyncedRecordsReplayInOrderBitIdentically) {
  auto log = EventLog::Open(dir_, 3, 1, {});
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ((*log)->Append(RecordType::kAppend, "row-a"), 1u);
  EXPECT_EQ((*log)->Append(RecordType::kRetire, "row-b"), 2u);
  EXPECT_EQ((*log)->Append(RecordType::kBounds, std::string("\0x\0y", 4)),
            3u);
  EXPECT_EQ((*log)->last_appended_seq(), 3u);
  EXPECT_EQ((*log)->last_synced_seq(), 0u);  // staged only
  ASSERT_TRUE((*log)->Sync().ok());
  EXPECT_EQ((*log)->last_synced_seq(), 3u);
  ASSERT_TRUE((*log)->Sync().ok());  // idempotent with nothing staged

  std::vector<Collected> records;
  const auto replay = Replay(3, 0, &records);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->replayed, 3u);
  EXPECT_EQ(replay->last_seq, 3u);
  EXPECT_FALSE(replay->tail_truncated);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, RecordType::kAppend);
  EXPECT_EQ(records[0].payload, "row-a");
  EXPECT_EQ(records[1].type, RecordType::kRetire);
  EXPECT_EQ(records[2].payload, std::string("\0x\0y", 4));
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(records[i].seq, i + 1);
}

TEST_F(EventLogTest, ReplayAfterSeqSkipsCoveredRecords) {
  auto log = EventLog::Open(dir_, 2, 1, {});
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 6; ++i) {
    (*log)->Append(RecordType::kAppend, std::string(1, 'a' + i));
  }
  ASSERT_TRUE((*log)->Sync().ok());

  std::vector<Collected> records;
  const auto replay = Replay(2, 4, &records);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->replayed, 2u);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].seq, 5u);
  EXPECT_EQ(records[1].seq, 6u);
}

TEST_F(EventLogTest, ReopenContinuesSegmentAndSequence) {
  {
    auto log = EventLog::Open(dir_, 2, 1, {});
    ASSERT_TRUE(log.ok());
    (*log)->Append(RecordType::kAppend, "first");
    ASSERT_TRUE((*log)->Sync().ok());
  }
  {
    auto log = EventLog::Open(dir_, 2, 2, {});
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    EXPECT_EQ((*log)->Append(RecordType::kAppend, "second"), 2u);
    ASSERT_TRUE((*log)->Sync().ok());
  }
  std::vector<Collected> records;
  const auto replay = Replay(2, 0, &records);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].payload, "first");
  EXPECT_EQ(records[1].payload, "second");
  // Still one segment: Open continued it rather than starting another.
  EXPECT_EQ(ListFiles(dir_, "wal-", ".log").size(), 1u);
}

TEST_F(EventLogTest, InjectedTornTailDropsOnlyTheUnsyncedRecord) {
  auto injector = std::make_shared<FaultInjector>();
  EventLog::Options options;
  options.injector = injector.get();
  auto log = EventLog::Open(dir_, 2, 1, options);
  ASSERT_TRUE(log.ok());
  (*log)->Append(RecordType::kAppend, "acknowledged-1");
  (*log)->Append(RecordType::kAppend, "acknowledged-2");
  ASSERT_TRUE((*log)->Sync().ok());

  injector->Arm(FailPoint::kTornTailWrite, 1);
  (*log)->Append(RecordType::kAppend, "torn-away");
  EXPECT_FALSE((*log)->Sync().ok());  // the injected crash
  EXPECT_TRUE(injector->crashed());
  // The log is dead now, like the process that owned it.
  (*log)->Append(RecordType::kAppend, "after-death");
  EXPECT_FALSE((*log)->Sync().ok());

  std::vector<Collected> records;
  const auto replay = Replay(2, 0, &records);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->tail_truncated);
  EXPECT_FALSE(replay->tail_segment_path.empty());
  EXPECT_GT(replay->tail_valid_bytes, 0);
  ASSERT_EQ(records.size(), 2u);  // both synced records, nothing else
  EXPECT_EQ(records[0].payload, "acknowledged-1");
  EXPECT_EQ(records[1].payload, "acknowledged-2");

  // Recovery's cleanup: cut the torn bytes, reopen, append, replay clean.
  ASSERT_EQ(::truncate(replay->tail_segment_path.c_str(),
                       static_cast<off_t>(replay->tail_valid_bytes)),
            0);
  auto reopened = EventLog::Open(dir_, 2, replay->last_seq + 1, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->Append(RecordType::kAppend, "post-recovery"), 3u);
  ASSERT_TRUE((*reopened)->Sync().ok());
  records.clear();
  const auto after = Replay(2, 0, &records);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->tail_truncated);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].payload, "post-recovery");
}

TEST_F(EventLogTest, InjectedChecksumFlipIsDetectedAndDropped) {
  auto injector = std::make_shared<FaultInjector>();
  EventLog::Options options;
  options.injector = injector.get();
  auto log = EventLog::Open(dir_, 2, 1, options);
  ASSERT_TRUE(log.ok());
  (*log)->Append(RecordType::kAppend, "good");
  ASSERT_TRUE((*log)->Sync().ok());

  injector->Arm(FailPoint::kChecksumFlip, 1);
  (*log)->Append(RecordType::kAppend, "rotten");
  EXPECT_FALSE((*log)->Sync().ok());

  std::vector<Collected> records;
  const auto replay = Replay(2, 0, &records);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->tail_truncated);  // CRC caught the rot
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "good");
}

TEST_F(EventLogTest, SmallSegmentsRollAndReplayAcrossFiles) {
  EventLog::Options options;
  options.segment_bytes = 64;  // force a roll almost every batch
  auto log = EventLog::Open(dir_, 2, 1, options);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 10; ++i) {
    (*log)->Append(RecordType::kAppend,
                   "payload-payload-payload-" + std::to_string(i));
    ASSERT_TRUE((*log)->Sync().ok());  // one batch per record
  }
  EXPECT_GT(ListFiles(dir_, "wal-", ".log").size(), 2u);

  std::vector<Collected> records;
  const auto replay = Replay(2, 0, &records);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(records.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(records[i].seq, i + 1);
    EXPECT_EQ(records[i].payload,
              "payload-payload-payload-" + std::to_string(i));
  }
}

TEST_F(EventLogTest, TruncateThroughDeletesOnlyFullyCoveredSegments) {
  EventLog::Options options;
  options.segment_bytes = 64;
  auto log = EventLog::Open(dir_, 2, 1, options);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 8; ++i) {
    (*log)->Append(RecordType::kAppend, "some-sizable-payload-here");
    ASSERT_TRUE((*log)->Sync().ok());
  }
  const auto before = ListFiles(dir_, "wal-", ".log");
  ASSERT_GT(before.size(), 2u);

  // Truncating through 0 covers nothing: every segment must survive.
  ASSERT_TRUE((*log)->TruncateThrough(0).ok());
  EXPECT_EQ(ListFiles(dir_, "wal-", ".log").size(), before.size());

  // A snapshot at seq 4: segments holding only records <= 4 go away, and
  // the replay suffix after 4 is untouched.
  ASSERT_TRUE((*log)->TruncateThrough(4).ok());
  const auto after = ListFiles(dir_, "wal-", ".log");
  EXPECT_LT(after.size(), before.size());
  std::vector<Collected> records;
  const auto replay = Replay(2, 4, &records);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->replayed, 4u);
  EXPECT_EQ(records.front().seq, 5u);
  EXPECT_EQ(records.back().seq, 8u);

  // Covering everything still keeps the segment being written.
  ASSERT_TRUE((*log)->TruncateThrough(8).ok());
  EXPECT_GE(ListFiles(dir_, "wal-", ".log").size(), 1u);
}

TEST_F(EventLogTest, MidLogCorruptionIsUnrecoverable) {
  EventLog::Options options;
  options.segment_bytes = 64;  // several segments
  auto log = EventLog::Open(dir_, 2, 1, options);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 6; ++i) {
    (*log)->Append(RecordType::kAppend, "a-payload-long-enough-to-roll");
    ASSERT_TRUE((*log)->Sync().ok());
  }
  const auto segments = ListFiles(dir_, "wal-", ".log");
  ASSERT_GT(segments.size(), 2u);

  // Flip one payload bit in the FIRST segment — not the tail, so this is
  // real corruption, not a torn write, and replay must refuse to continue.
  const std::string victim = dir_ + "/" + segments.front();
  auto data = ReadFile(victim);
  ASSERT_TRUE(data.ok());
  std::string bytes = *data;
  bytes[bytes.size() - 3] ^= 0x01;
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::vector<Collected> records;
  const auto replay = Replay(2, 0, &records);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kDataLoss);
}

TEST_F(EventLogTest, SequenceGapIsUnrecoverable) {
  {
    auto log = EventLog::Open(dir_, 2, 1, {});
    ASSERT_TRUE(log.ok());
    (*log)->Append(RecordType::kAppend, "one");
    (*log)->Append(RecordType::kAppend, "two");
    ASSERT_TRUE((*log)->Sync().ok());
  }
  {
    // A writer that lost track of the sequence: records jump 2 -> 4.
    auto log = EventLog::Open(dir_, 2, 4, {});
    ASSERT_TRUE(log.ok());
    (*log)->Append(RecordType::kAppend, "four");
    ASSERT_TRUE((*log)->Sync().ok());
  }
  std::vector<Collected> records;
  const auto replay = Replay(2, 0, &records);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kDataLoss);
}

TEST_F(EventLogTest, DimensionMismatchIsRejected) {
  {
    auto log = EventLog::Open(dir_, 3, 1, {});
    ASSERT_TRUE(log.ok());
    (*log)->Append(RecordType::kAppend, "d3");
    ASSERT_TRUE((*log)->Sync().ok());
  }
  // Both the appender and the replayer check the header's dimension.
  EXPECT_FALSE(EventLog::Open(dir_, 5, 2, {}).ok());
  std::vector<Collected> records;
  EXPECT_FALSE(Replay(5, 0, &records).ok());
}

TEST_F(EventLogTest, StatsCountRecordsSyncsAndSegments) {
  EventLog::Options options;
  options.segment_bytes = 64;
  auto log = EventLog::Open(dir_, 2, 1, options);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 4; ++i) {
    (*log)->Append(RecordType::kAppend, "stat-payload-stat-payload");
    ASSERT_TRUE((*log)->Sync().ok());
  }
  const EventLog::Stats stats = (*log)->stats();
  EXPECT_EQ(stats.records, 4);
  EXPECT_EQ(stats.syncs, 4);
  EXPECT_GT(stats.bytes_written, 0);
  EXPECT_GT(stats.segments_created, 1);
  ASSERT_TRUE((*log)->TruncateThrough(3).ok());
  EXPECT_GT((*log)->stats().segments_deleted, 0);
}

}  // namespace
}  // namespace rpc::durable
