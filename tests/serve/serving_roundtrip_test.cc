// model_io round-trip through the serving path: fit -> ToPortableModel ->
// SaveModel -> RegisterDatasetFromFile -> Query must reproduce the
// in-process RpcRanker bit for bit (the text format stores %.17g, which is
// exact for doubles, and the serving hot loop runs the same normalise +
// project arithmetic as RpcRanker::Score).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_io.h"
#include "core/rpc_ranker.h"
#include "data/generators.h"
#include "rank/ranking_list.h"
#include "serve/ranking_service.h"

namespace rpc::serve {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(ServingRoundTripTest, ServedScoresBitIdenticalToRpcRanker) {
  const data::Dataset ds = data::GenerateCountryData(60, 3, false);
  const auto alpha = order::Orientation::FromSigns({1, 1, -1, -1});
  const auto ranker = core::RpcRanker::Fit(ds.values(), *alpha);
  ASSERT_TRUE(ranker.ok()) << ranker.status().ToString();

  const std::string path = testing::TempDir() + "/serving_roundtrip_model.txt";
  ASSERT_TRUE(core::SaveModel(ranker->ToPortableModel(), path).ok());

  const Matrix& rows = ds.values();
  const Vector expected = ranker->ScoreRows(rows);
  const rank::RankingList expected_list(expected, /*higher_is_better=*/true);

  for (const int threads : {1, 2, 8}) {
    RankingService::Options options;
    options.num_threads = threads;
    options.segment_rows = 16;  // force multi-segment execution
    RankingService service(options);
    ASSERT_TRUE(service.RegisterDatasetFromFile("countries", path).ok());

    // Route through the unified Query entry point with a generous deadline:
    // QoS bookkeeping must never perturb the arithmetic.
    QueryOptions qopts;
    qopts.deadline = QueryDeadline(std::chrono::minutes(5));
    qopts.priority = QueryPriority::kInteractive;
    const auto batch = service.Query("countries", rows, qopts);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->scores.size(), expected.size());
    EXPECT_GE(batch->trace.segments, 1);
    for (int i = 0; i < expected.size(); ++i) {
      // EXPECT_EQ, not NEAR: the whole point is bit-identity.
      EXPECT_EQ(batch->scores[i], expected[i])
          << "threads=" << threads << " row " << i;
    }
    for (int i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(batch->ranks[static_cast<size_t>(i)],
                expected_list.PositionOf(i))
          << "threads=" << threads << " row " << i;
    }
  }
  std::remove(path.c_str());
}

TEST(ServingRoundTripTest, NonDefaultProjectionMethodAlsoRoundTrips) {
  // The serving tier must match whatever solver the model is served with;
  // run the same check under kNewton to cover the hodograph state path.
  const data::Dataset ds = data::GenerateCountryData(40, 5, false);
  const auto alpha = order::Orientation::FromSigns({1, 1, -1, -1});
  core::RpcLearnOptions learn;
  learn.projection.method = opt::ProjectionMethod::kNewton;
  const auto ranker = core::RpcRanker::Fit(ds.values(), *alpha, learn);
  ASSERT_TRUE(ranker.ok()) << ranker.status().ToString();

  RankingService::Options options;
  options.num_threads = 2;
  options.projection = learn.projection;
  RankingService service(options);
  ASSERT_TRUE(service.RegisterDataset("c", ranker->ToPortableModel()).ok());

  const auto batch = service.ScoreBatch("c", ds.values());
  ASSERT_TRUE(batch.ok());
  for (int i = 0; i < ds.values().rows(); ++i) {
    EXPECT_EQ(batch->scores[i], ranker->Score(ds.values().Row(i)))
        << "row " << i;
  }
}

}  // namespace
}  // namespace rpc::serve
