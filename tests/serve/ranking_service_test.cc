#include "serve/ranking_service.h"

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/model_io.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "order/orientation.h"

namespace rpc::serve {
namespace {

using linalg::Matrix;
using linalg::Vector;

// A synthetic all-benefit model with a random strictly monotone cubic in
// [0,1]^d — no fitting needed, so service tests stay fast. Keep in sync
// with the copy in bench/bench_serving_throughput.cc: the bench must
// verify the same model family these tests pin down.
core::PortableRpcModel MonotoneModel(int d, uint64_t seed) {
  Rng rng(seed);
  Matrix control(d, 4);
  for (int i = 0; i < d; ++i) {
    control(i, 0) = 0.0;
    control(i, 1) = rng.Uniform(0.1, 0.45);
    control(i, 2) = rng.Uniform(0.55, 0.9);
    control(i, 3) = 1.0;
  }
  core::PortableRpcModel model;
  model.alpha = order::Orientation::AllBenefit(d);
  model.mins = Vector(d, 0.0);
  model.maxs = Vector(d, 1.0);
  model.control_points = control;
  return model;
}

Matrix RandomRows(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix rows(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) rows(i, j) = rng.Uniform(-0.1, 1.1);
  }
  return rows;
}

// Rows away from the shared corners: two different curves then project each
// row to a different s (a corner-adjacent row saturates to s = 0/1 under
// *any* monotone model, which would make models indistinguishable).
Matrix InteriorRows(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix rows(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) rows(i, j) = rng.Uniform(0.2, 0.8);
  }
  return rows;
}

TEST(RankingServiceTest, LifecycleRegisterListEvict) {
  RankingService service;
  EXPECT_FALSE(service.HasDataset("a"));
  ASSERT_TRUE(service.RegisterDataset("a", MonotoneModel(3, 1)).ok());
  ASSERT_TRUE(service.RegisterDataset("b", MonotoneModel(2, 2)).ok());
  EXPECT_TRUE(service.HasDataset("a"));
  EXPECT_EQ(service.DatasetIds(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(service.stats().datasets, 2);

  EXPECT_TRUE(service.EvictDataset("a").ok());
  EXPECT_FALSE(service.HasDataset("a"));
  EXPECT_EQ(service.EvictDataset("a").code(), StatusCode::kNotFound);
  EXPECT_EQ(service.stats().datasets, 1);
}

TEST(RankingServiceTest, RejectsEmptyIdAndInvalidModel) {
  RankingService service;
  EXPECT_EQ(service.RegisterDataset("", MonotoneModel(2, 3)).code(),
            StatusCode::kInvalidArgument);
  core::PortableRpcModel bad = MonotoneModel(2, 4);
  bad.control_points(0, 1) = 1.5;  // interior point outside [0,1]
  EXPECT_FALSE(service.RegisterDataset("bad", bad).ok());
  EXPECT_FALSE(service.HasDataset("bad"));

  // Degenerate normalisation bounds must be rejected on the in-memory path
  // exactly like Deserialize rejects them from a file — otherwise the hot
  // loop would divide by zero and serve NaN scores.
  core::PortableRpcModel degenerate = MonotoneModel(2, 5);
  degenerate.maxs[0] = degenerate.mins[0];
  EXPECT_EQ(service.RegisterDataset("deg", degenerate).code(),
            StatusCode::kInvalidArgument);
  core::PortableRpcModel short_bounds = MonotoneModel(2, 6);
  short_bounds.mins = Vector(1, 0.0);
  EXPECT_EQ(service.RegisterDataset("short", short_bounds).code(),
            StatusCode::kInvalidArgument);
}

TEST(RankingServiceTest, UnknownDatasetAndShapeMismatch) {
  RankingService service;
  ASSERT_TRUE(service.RegisterDataset("d3", MonotoneModel(3, 5)).ok());
  EXPECT_EQ(service.ScoreBatch("nope", RandomRows(4, 3, 6)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.ScoreBatch("d3", RandomRows(4, 2, 7)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RankingServiceTest, EmptyBatchShortCircuits) {
  RankingService service;
  ASSERT_TRUE(service.RegisterDataset("d", MonotoneModel(2, 8)).ok());
  const auto batch = service.ScoreBatch("d", Matrix(0, 2));
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->scores.size(), 0);
  EXPECT_TRUE(batch->ranks.empty());
}

TEST(RankingServiceTest, ScoresMatchThePortableModel) {
  const core::PortableRpcModel model = MonotoneModel(3, 9);
  RankingService service;
  ASSERT_TRUE(service.RegisterDataset("d", model).ok());
  const Matrix rows = RandomRows(32, 3, 10);
  const auto batch = service.ScoreBatch("d", rows);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->scores.size(), 32);
  for (int i = 0; i < rows.rows(); ++i) {
    const auto expected = model.Score(rows.Row(i));
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(batch->scores[i], *expected) << "row " << i;
  }
}

TEST(RankingServiceTest, RanksAreTheWithinBatchOrder) {
  RankingService service;
  ASSERT_TRUE(service.RegisterDataset("d", MonotoneModel(2, 11)).ok());
  const Matrix rows = RandomRows(16, 2, 12);
  const auto batch = service.ScoreBatch("d", rows);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(static_cast<int>(batch->ranks.size()), 16);
  // rank r means: exactly r-1 rows score strictly better (or tie with a
  // lower index).
  for (int i = 0; i < 16; ++i) {
    int better = 0;
    for (int j = 0; j < 16; ++j) {
      if (batch->scores[j] > batch->scores[i] ||
          (batch->scores[j] == batch->scores[i] && j < i)) {
        ++better;
      }
    }
    EXPECT_EQ(batch->ranks[static_cast<size_t>(i)], better + 1) << "row " << i;
  }
}

TEST(RankingServiceTest, BitIdenticalAcrossThreadCountsAndSegmentSizes) {
  const core::PortableRpcModel model = MonotoneModel(4, 13);
  const Matrix rows = RandomRows(257, 4, 14);  // not a multiple of segments

  Vector reference;
  for (const int threads : {1, 2, 8}) {
    for (const int segment_rows : {1024, 7}) {
      RankingService::Options options;
      options.num_threads = threads;
      options.segment_rows = segment_rows;
      RankingService service(options);
      ASSERT_TRUE(service.RegisterDataset("d", model).ok());
      const auto batch = service.ScoreBatch("d", rows);
      ASSERT_TRUE(batch.ok());
      if (reference.empty()) {
        reference = batch->scores;
        continue;
      }
      ASSERT_EQ(batch->scores.size(), reference.size());
      for (int i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(batch->scores[i], reference[i])
            << "threads=" << threads << " segment_rows=" << segment_rows
            << " row " << i;
      }
    }
  }
}

TEST(RankingServiceTest, RegisterReplacesAtomicallyAndQueriesNeverTear) {
  // Two distinct models under the same id; a writer thread keeps swapping
  // them while readers hammer ScoreBatch. Every returned batch must match
  // one model exactly — row-wise mixtures would mean a torn snapshot.
  const core::PortableRpcModel model_a = MonotoneModel(2, 15);
  const core::PortableRpcModel model_b = MonotoneModel(2, 16);
  const Matrix rows = InteriorRows(13, 2, 17);

  Vector expect_a(rows.rows());
  Vector expect_b(rows.rows());
  for (int i = 0; i < rows.rows(); ++i) {
    expect_a[i] = *model_a.Score(rows.Row(i));
    expect_b[i] = *model_b.Score(rows.Row(i));
    // The test below needs the two models to be distinguishable per row.
    ASSERT_NE(expect_a[i], expect_b[i]) << "row " << i;
  }

  RankingService::Options options;
  options.num_threads = 4;
  options.segment_rows = 3;  // several segments per query
  RankingService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", model_a).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const auto batch = service.ScoreBatch("d", rows);
        if (!batch.ok()) continue;  // swapped out mid-lookup: never expected
        bool all_a = true;
        bool all_b = true;
        for (int i = 0; i < rows.rows(); ++i) {
          all_a = all_a && batch->scores[i] == expect_a[i];
          all_b = all_b && batch->scores[i] == expect_b[i];
        }
        if (!all_a && !all_b) ++torn;
      }
    });
  }
  for (int swap = 0; swap < 50; ++swap) {
    ASSERT_TRUE(
        service.RegisterDataset("d", swap % 2 == 0 ? model_b : model_a).ok());
  }
  stop = true;
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);
}

TEST(RankingServiceTest, EvictionDoesNotDisturbInFlightQueries) {
  const core::PortableRpcModel model = MonotoneModel(3, 18);
  const Matrix rows = RandomRows(64, 3, 19);
  Vector expected(rows.rows());
  for (int i = 0; i < rows.rows(); ++i) expected[i] = *model.Score(rows.Row(i));

  RankingService::Options options;
  options.num_threads = 4;
  options.segment_rows = 4;
  RankingService service(options);

  std::atomic<bool> stop{false};
  std::atomic<int> wrong{0};
  std::thread reader([&] {
    while (!stop.load()) {
      const auto batch = service.ScoreBatch("d", rows);
      if (!batch.ok()) continue;  // evicted: kNotFound is the correct answer
      for (int i = 0; i < rows.rows(); ++i) {
        if (batch->scores[i] != expected[i]) ++wrong;
      }
    }
  });
  for (int round = 0; round < 30; ++round) {
    ASSERT_TRUE(service.RegisterDataset("d", model).ok());
    (void)service.EvictDataset("d");
  }
  stop = true;
  reader.join();
  EXPECT_EQ(wrong.load(), 0);
}

TEST(RankingServiceTest, ConcurrentQueriesAcrossManyShards) {
  RankingService::Options options;
  options.num_threads = 4;
  options.segment_rows = 8;
  RankingService service(options);

  constexpr int kShards = 6;
  std::vector<core::PortableRpcModel> models;
  std::vector<Matrix> queries;
  std::vector<Vector> expected;
  for (int s = 0; s < kShards; ++s) {
    models.push_back(MonotoneModel(2 + s % 3, 100 + static_cast<uint64_t>(s)));
    ASSERT_TRUE(
        service.RegisterDataset("ds" + std::to_string(s), models.back()).ok());
    queries.push_back(
        RandomRows(40, 2 + s % 3, 200 + static_cast<uint64_t>(s)));
    Vector exp(queries.back().rows());
    for (int i = 0; i < queries.back().rows(); ++i) {
      exp[i] = *models.back().Score(queries.back().Row(i));
    }
    expected.push_back(std::move(exp));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&, c] {
      for (int q = 0; q < 25; ++q) {
        const int s = (c + q) % kShards;
        const auto batch =
            service.ScoreBatch("ds" + std::to_string(s), queries[s]);
        if (!batch.ok()) {
          ++mismatches;
          continue;
        }
        for (int i = 0; i < expected[s].size(); ++i) {
          if (batch->scores[i] != expected[s][i]) ++mismatches;
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, 4 * 25);
  EXPECT_EQ(stats.rows, 4 * 25 * 40);
  EXPECT_GE(stats.segments, stats.queries);
  EXPECT_GE(stats.peak_queue_depth, 1);
}

TEST(RankingServiceTest, TryScoreBatchRejectsWhenBacklogged) {
  RankingService::Options options;
  options.num_threads = 2;     // one worker draining
  options.queue_capacity = 1;  // tiny admission window
  options.segment_rows = 1;    // every row is its own segment
  RankingService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", MonotoneModel(2, 20)).ok());

  // 4096 one-row segments through a 1-deep queue: the single worker cannot
  // keep up with the push loop, so admission must refuse at some point.
  const Matrix rows = RandomRows(4096, 2, 21);
  bool rejected = false;
  for (int attempt = 0; attempt < 3 && !rejected; ++attempt) {
    const auto batch = service.TryScoreBatch("d", rows);
    if (!batch.ok()) {
      EXPECT_EQ(batch.status().code(), StatusCode::kFailedPrecondition);
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected);
  EXPECT_GE(service.stats().rejected, 1);

  // The service stays fully usable after rejections.
  const auto ok_batch = service.ScoreBatch("d", RandomRows(8, 2, 22));
  EXPECT_TRUE(ok_batch.ok());
}

// Version-aware registration: the service reports the registered model's
// version, a copy-on-write replacement advances it atomically, and evict
// forgets it.
TEST(RankingServiceTest, DatasetVersionTracksRegistrations) {
  RankingService service;
  EXPECT_EQ(service.DatasetVersion("v").status().code(),
            StatusCode::kNotFound);

  core::PortableRpcModel model = MonotoneModel(2, 91);
  model.version = 1;
  ASSERT_TRUE(service.RegisterDataset("v", model).ok());
  ASSERT_TRUE(service.DatasetVersion("v").ok());
  EXPECT_EQ(*service.DatasetVersion("v"), 1u);

  model.version = 2;
  ASSERT_TRUE(service.RegisterDataset("v", model).ok());
  EXPECT_EQ(*service.DatasetVersion("v"), 2u);
  EXPECT_EQ(service.stats().registrations, 2);

  ASSERT_TRUE(service.EvictDataset("v").ok());
  EXPECT_EQ(service.DatasetVersion("v").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace rpc::serve
